// Grid-based input features (paper §III-B).
//
// Six maps extracted from a placement, stacked as a [6, H, W] tensor in the
// paper's order:
//   0 Macro Map          - macro occupancy of each grid cell
//   1 Horizontal Net Density - sum over nets of 1/bbox_height inside the bbox
//   2 Vertical Net Density   - sum over nets of 1/bbox_width inside the bbox
//   3 RUDY                   - superposition of (1) and (2)
//   4 Pin RUDY               - sum over nets of #pins / bbox area inside bbox
//   5 Cell Density            - number of cells per grid cell
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/device.h"
#include "netlist/design.h"
#include "tensor/tensor.h"

namespace mfa::features {

enum Channel : std::int64_t {
  kMacro = 0,
  kHorizNetDensity = 1,
  kVertNetDensity = 2,
  kRudy = 3,
  kPinRudy = 4,
  kCellDensity = 5,
  kNumChannels = 6,
};

struct FeatureOptions {
  std::int64_t grid_width = 64;
  std::int64_t grid_height = 64;
  /// Scale each channel to [0, 1] by its per-sample maximum (stabilises
  /// training; matches the resize-and-normalise pipeline of §V-A).
  bool normalize = true;
};

/// Extracts the six feature maps for a placement given per-cell coordinates
/// in device units. Returns a [6, grid_height, grid_width] tensor.
Tensor extract_features(const netlist::Design& design,
                        const fpga::DeviceGrid& device,
                        const std::vector<double>& cell_x,
                        const std::vector<double>& cell_y,
                        const FeatureOptions& options = {});

const char* channel_name(Channel c);

}  // namespace mfa::features
