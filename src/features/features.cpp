#include "features/features.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mfa::features {

const char* channel_name(Channel c) {
  switch (c) {
    case kMacro:
      return "macro";
    case kHorizNetDensity:
      return "hnet";
    case kVertNetDensity:
      return "vnet";
    case kRudy:
      return "rudy";
    case kPinRudy:
      return "pin_rudy";
    case kCellDensity:
      return "cell_density";
    default:
      return "?";
  }
}

Tensor extract_features(const netlist::Design& design,
                        const fpga::DeviceGrid& device,
                        const std::vector<double>& cell_x,
                        const std::vector<double>& cell_y,
                        const FeatureOptions& options) {
  const auto ncells = design.num_cells();
  if (static_cast<std::int64_t>(cell_x.size()) != ncells ||
      static_cast<std::int64_t>(cell_y.size()) != ncells)
    throw std::invalid_argument("extract_features: coordinate size mismatch");
  const std::int64_t gw = options.grid_width;
  const std::int64_t gh = options.grid_height;
  const double sx = static_cast<double>(gw) / static_cast<double>(device.cols());
  const double sy = static_cast<double>(gh) / static_cast<double>(device.rows());
  const auto clamp_gx = [&](double x) {
    return std::clamp<std::int64_t>(static_cast<std::int64_t>(x * sx), 0,
                                    gw - 1);
  };
  const auto clamp_gy = [&](double y) {
    return std::clamp<std::int64_t>(static_cast<std::int64_t>(y * sy), 0,
                                    gh - 1);
  };

  Tensor out = Tensor::zeros({kNumChannels, gh, gw});
  float* data = out.data();
  const auto plane = [&](Channel c) {
    return data + static_cast<std::int64_t>(c) * gh * gw;
  };

  // ---- macro map and cell density ----
  for (std::int64_t i = 0; i < ncells; ++i) {
    const auto gx = clamp_gx(cell_x[static_cast<size_t>(i)]);
    const auto gy = clamp_gy(cell_y[static_cast<size_t>(i)]);
    const auto idx = gy * gw + gx;
    if (design.cells[static_cast<size_t>(i)].is_macro())
      plane(kMacro)[idx] += 1.0f;
    else
      plane(kCellDensity)[idx] += 1.0f;
  }

  // ---- net-derived maps ----
  for (const auto& net : design.nets) {
    double lox = 1e30, hix = -1e30, loy = 1e30, hiy = -1e30;
    for (const auto pin : net.pins) {
      lox = std::min(lox, cell_x[static_cast<size_t>(pin)]);
      hix = std::max(hix, cell_x[static_cast<size_t>(pin)]);
      loy = std::min(loy, cell_y[static_cast<size_t>(pin)]);
      hiy = std::max(hiy, cell_y[static_cast<size_t>(pin)]);
    }
    const auto gx0 = clamp_gx(lox), gx1 = clamp_gx(hix);
    const auto gy0 = clamp_gy(loy), gy1 = clamp_gy(hiy);
    const auto bw = static_cast<double>(gx1 - gx0 + 1);
    const auto bh = static_cast<double>(gy1 - gy0 + 1);
    // RUDY decomposition: horizontal wiring demand 1/bh, vertical 1/bw,
    // pin demand #pins / area, uniformly over the bounding box.
    const float hdens = static_cast<float>(net.weight / bh);
    const float vdens = static_cast<float>(net.weight / bw);
    const float pdens =
        static_cast<float>(static_cast<double>(net.pins.size()) / (bw * bh));
    for (std::int64_t gy = gy0; gy <= gy1; ++gy)
      for (std::int64_t gx = gx0; gx <= gx1; ++gx) {
        const auto idx = gy * gw + gx;
        plane(kHorizNetDensity)[idx] += hdens;
        plane(kVertNetDensity)[idx] += vdens;
        plane(kPinRudy)[idx] += pdens;
      }
  }

  // RUDY = horizontal + vertical superposition (paper §III-B).
  for (std::int64_t i = 0; i < gh * gw; ++i)
    plane(kRudy)[i] = plane(kHorizNetDensity)[i] + plane(kVertNetDensity)[i];

  if (options.normalize) {
    for (std::int64_t c = 0; c < kNumChannels; ++c) {
      float* p = plane(static_cast<Channel>(c));
      float mx = 0.0f;
      for (std::int64_t i = 0; i < gh * gw; ++i) mx = std::max(mx, p[i]);
      if (mx > 0.0f)
        for (std::int64_t i = 0; i < gh * gw; ++i) p[i] /= mx;
    }
  }
  return out;
}

}  // namespace mfa::features
