// Multi-head self-attention and the vision-transformer encoder layer
// (paper §III-C3, Fig. 4): pre-LN, MSA + MLP with residual connections.
#pragma once

#include <memory>

#include "nn/layers.h"

namespace mfa::nn {

/// Multi-head scaled dot-product self-attention over token sequences
/// [N, L, D] (Eq. 9). qkv and output projections are single Linear layers.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(std::int64_t dim, std::int64_t heads, Rng& rng);
  Tensor forward(const Tensor& x) override;

 private:
  std::shared_ptr<Linear> qkv_;
  std::shared_ptr<Linear> proj_;
  std::int64_t dim_, heads_, head_dim_;
};

/// One vision-transformer layer (Eqs. 8 and 10):
///   a_l = MSA(LN(z_{l-1})) + z_{l-1}
///   z_l = MLP(LN(a_l)) + a_l
/// (The paper's Eq. 10 writes MSA for the second block; per the cited ViT
/// architecture in Fig. 4 this is the MLP block.)
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(std::int64_t dim, std::int64_t heads,
                          std::int64_t mlp_hidden, Rng& rng);
  Tensor forward(const Tensor& x) override;

 private:
  std::shared_ptr<LayerNorm> ln1_, ln2_;
  std::shared_ptr<MultiHeadSelfAttention> msa_;
  std::shared_ptr<Linear> fc1_, fc2_;
};

}  // namespace mfa::nn
