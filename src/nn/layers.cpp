#include "nn/layers.h"

#include <cmath>

#include "common/check.h"

namespace mfa::nn {

Tensor kaiming_normal(Shape shape, std::int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::randn(std::move(shape), rng, stddev);
}

Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                      Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::uniform(std::move(shape), rng, -a, a);
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, Rng& rng, std::int64_t stride,
               std::int64_t padding, bool bias)
    : stride_(stride), padding_(padding) {
  weight_ = register_parameter(
      "weight", kaiming_normal({out_channels, in_channels, kernel, kernel},
                               in_channels * kernel * kernel, rng));
  if (bias) bias_ = register_parameter("bias", Tensor::zeros({out_channels}));
}

Tensor Conv2d::forward(const Tensor& x) {
  MFA_CHECK(x.defined() && x.dim() == 4)
      << " Conv2d expects a defined NCHW input";
  MFA_CHECK_EQ(x.size(1), weight_.size(1))
      << " Conv2d: input channels of " << shape_str(x.shape())
      << " do not match weight " << shape_str(weight_.shape());
  return ops::conv2d(x, weight_, bias_, stride_, padding_);
}

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_(in_features), out_(out_features) {
  weight_ = register_parameter(
      "weight", xavier_uniform({in_features, out_features}, in_features,
                               out_features, rng));
  if (bias) bias_ = register_parameter("bias", Tensor::zeros({out_features}));
}

Tensor Linear::forward(const Tensor& x) {
  MFA_CHECK(x.defined() && x.dim() >= 1)
      << " Linear expects a defined input of rank >= 1";
  MFA_CHECK_EQ(x.size(-1), in_)
      << " Linear: last dim of " << shape_str(x.shape())
      << " does not match in_features";
  // Flatten leading dims to rows, multiply, restore shape.
  Shape out_shape = x.shape();
  out_shape.back() = out_;
  Tensor rows = ops::reshape(x, {-1, in_});
  Tensor y = ops::matmul(rows, weight_);
  if (bias_.defined()) y = ops::add(y, bias_);
  return ops::reshape(y, std::move(out_shape));
}

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : momentum_(momentum), eps_(eps) {
  gamma_ = register_parameter("weight", Tensor::ones({channels}));
  beta_ = register_parameter("bias", Tensor::zeros({channels}));
  running_mean_ = register_buffer("running_mean", Tensor::zeros({channels}));
  running_var_ = register_buffer("running_var", Tensor::ones({channels}));
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  MFA_CHECK(x.defined() && x.dim() == 4)
      << " BatchNorm2d expects a defined NCHW input";
  MFA_CHECK_EQ(x.size(1), gamma_.numel())
      << " BatchNorm2d: channels of " << shape_str(x.shape())
      << " do not match the layer width";
  return ops::batch_norm2d(x, gamma_, beta_, running_mean_, running_var_,
                           is_training(), momentum_, eps_);
}

LayerNorm::LayerNorm(std::int64_t dim, float eps) : eps_(eps) {
  gamma_ = register_parameter("weight", Tensor::ones({dim}));
  beta_ = register_parameter("bias", Tensor::zeros({dim}));
}

Tensor LayerNorm::forward(const Tensor& x) {
  return ops::layer_norm(x, gamma_, beta_, eps_);
}

}  // namespace mfa::nn
