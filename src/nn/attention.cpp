#include "nn/attention.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace mfa::nn {

using namespace mfa::ops;

MultiHeadSelfAttention::MultiHeadSelfAttention(std::int64_t dim,
                                               std::int64_t heads, Rng& rng)
    : dim_(dim), heads_(heads), head_dim_(dim / heads) {
  if (dim % heads != 0)
    throw std::invalid_argument("MSA: dim must be divisible by heads");
  qkv_ = register_module("qkv", std::make_shared<Linear>(dim, 3 * dim, rng));
  proj_ = register_module("proj", std::make_shared<Linear>(dim, dim, rng));
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x) {
  MFA_CHECK(x.defined() && x.dim() == 3)
      << " MSA expects a defined [N, L, D] input";
  MFA_CHECK_EQ(x.size(2), dim_)
      << " MSA: embedding dim of " << shape_str(x.shape())
      << " does not match the layer";
  const std::int64_t N = x.size(0);
  const std::int64_t L = x.size(1);
  Tensor qkv = qkv_->forward(x);  // [N, L, 3D]
  // Split into q/k/v and reorganise to [N*H, L, Dh].
  auto split_heads = [&](std::int64_t part) {
    Tensor t = narrow(qkv, 2, part * dim_, dim_);            // [N, L, D]
    t = reshape(t, {N, L, heads_, head_dim_});               // [N, L, H, Dh]
    t = permute(t, {0, 2, 1, 3});                            // [N, H, L, Dh]
    return reshape(t, {N * heads_, L, head_dim_});           // [N*H, L, Dh]
  };
  Tensor q = split_heads(0);
  Tensor k = split_heads(1);
  Tensor v = split_heads(2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Tensor scores = matmul(q, transpose2d(k)) * scale;  // [N*H, L, L]
  Tensor attn = softmax(scores, 2);
  Tensor out = matmul(attn, v);                        // [N*H, L, Dh]
  out = reshape(out, {N, heads_, L, head_dim_});
  out = permute(out, {0, 2, 1, 3});  // [N, L, H, Dh]
  out = reshape(out, {N, L, dim_});
  return proj_->forward(out);
}

TransformerEncoderLayer::TransformerEncoderLayer(std::int64_t dim,
                                                 std::int64_t heads,
                                                 std::int64_t mlp_hidden,
                                                 Rng& rng) {
  ln1_ = register_module("ln1", std::make_shared<LayerNorm>(dim));
  msa_ = register_module("msa",
                         std::make_shared<MultiHeadSelfAttention>(dim, heads, rng));
  ln2_ = register_module("ln2", std::make_shared<LayerNorm>(dim));
  fc1_ = register_module("fc1", std::make_shared<Linear>(dim, mlp_hidden, rng));
  fc2_ = register_module("fc2", std::make_shared<Linear>(mlp_hidden, dim, rng));
}

Tensor TransformerEncoderLayer::forward(const Tensor& x) {
  Tensor a = add(msa_->forward(ln1_->forward(x)), x);          // Eq. 8
  Tensor m = fc2_->forward(gelu(fc1_->forward(ln2_->forward(a))));
  return add(m, a);                                            // Eq. 10
}

}  // namespace mfa::nn
