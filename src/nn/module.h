// Module base class: a named tree of parameters and sub-modules, mirroring
// the torch.nn.Module contract the paper's PyTorch reference relies on.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace mfa::nn {

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual Tensor forward(const Tensor& x) = 0;
  Tensor operator()(const Tensor& x) { return forward(x); }

  /// All trainable parameters, depth first (stable order across runs).
  std::vector<Tensor> parameters() const;
  /// Parameter names aligned with parameters(), for checkpoints/debugging.
  std::vector<std::string> parameter_names() const;
  std::int64_t num_parameters() const;

  /// Switches train/eval mode for this module and all children (affects
  /// batch-norm statistics).
  void train(bool on = true);
  bool is_training() const { return training_; }

  void zero_grad();

 protected:
  /// Registers a trainable parameter; returns it for member initialisation.
  Tensor register_parameter(std::string name, Tensor t);
  /// Registers a non-trainable buffer (e.g. batch-norm running stats).
  Tensor register_buffer(std::string name, Tensor t);
  /// Registers a child module; returns the argument for chaining.
  template <typename M>
  std::shared_ptr<M> register_module(std::string name, std::shared_ptr<M> m) {
    children_.emplace_back(std::move(name), m);
    return m;
  }

 private:
  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, Tensor>>& out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Tensor>> buffers_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

}  // namespace mfa::nn
