// Immutable weight snapshots for serving: a named set of parameter buffers
// that can be validated against a live model's shape manifest and then
// published atomically without copying any floats per request.
//
// A WeightSnapshot owns one refcounted tensor::Storage handle per parameter.
// Publishing a snapshot into a module (install_snapshot) shares those
// handles into the module's parameter tensors — a refcount bump per
// parameter, no data copy — so every in-flight forward pass that started
// before the swap keeps reading the blocks it captured while new passes read
// the new ones; the old blocks return to the pool when the last reader
// drops. The convention that makes this safe: a snapshot's storages are
// immutable once built, and a module serving from a snapshot is
// inference-only (optimizers would write through the shared blocks).
//
// Validation is strict and typed: swap-time and checkpoint-load-time
// mismatches (wrong architecture, renamed layer, reshaped tensor, duplicate
// entries) throw SnapshotError carrying a machine-checkable Kind, so a
// serving loop can distinguish "reject this snapshot, keep serving the old
// one" from an I/O failure worth retrying.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "nn/checkpoint.h"
#include "nn/module.h"
#include "tensor/storage.h"
#include "tensor/tensor.h"

namespace mfa::nn {

/// Typed rejection of a weight snapshot. Derives from CheckError (a rejected
/// snapshot is a broken contract between trainer and server, not an
/// environmental condition), with a Kind for dispatch in recovery code.
class SnapshotError : public check::CheckError {
 public:
  enum class Kind {
    kCountMismatch,    // entry count != module parameter count
    kDuplicateName,    // the same parameter name appears twice
    kUnknownParameter, // an entry names no parameter of the module
    kRankMismatch,     // entry and parameter disagree on rank
    kShapeMismatch,    // same rank, different dims
    kSizeMismatch,     // storage length disagrees with the entry's shape
  };

  SnapshotError(Kind kind, const std::string& what)
      : check::CheckError(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

const char* to_string(SnapshotError::Kind kind);

/// One immutable parameter buffer plus the manifest entry describing it.
struct SnapshotEntry {
  std::string name;
  Shape shape;
  tensor::Storage data;  // treat as read-only once the snapshot is built
};

struct WeightSnapshot {
  std::vector<SnapshotEntry> entries;
  /// Training metadata carried over when the snapshot came from a
  /// checkpoint (defaults when built directly from a module).
  CheckpointMeta meta;

  std::int64_t total_floats() const;
};

/// Deep-copies every parameter of `module` into fresh pooled storages.
/// O(parameter bytes) — done once per publication, never per request.
WeightSnapshot snapshot_parameters(const Module& module);

/// Verifies that `snapshot` is exactly publishable into `module`: same
/// parameter count, every entry naming a distinct existing parameter with an
/// identical shape, every storage sized to its shape. Throws SnapshotError
/// on the first violation; returns normally otherwise. Read-only on both
/// sides, so it is safe to run against a model that is concurrently serving.
void validate_snapshot(const WeightSnapshot& snapshot, const Module& module);

/// Shares the snapshot's storages into the module's parameters (refcount
/// bump per parameter, no float copy). Callers must validate_snapshot()
/// first; this function re-checks cheaply via MFA_CHECK and must only be
/// called on a module that no other thread is reading mid-forward.
void install_snapshot(const WeightSnapshot& snapshot, Module& module);

/// Parses a checkpoint file (same "MFACKPT2" format as load_checkpoint,
/// magic + CRC32 verified) into a standalone snapshot, without needing a
/// module of the right architecture up front. Validation against the serving
/// model is the caller's job (validate_snapshot) — the whole point is to
/// reject a wrong-architecture file *before* anything touches live weights.
/// Throws std::runtime_error on I/O or corruption, SnapshotError
/// (kDuplicateName) on files with duplicate parameter entries.
WeightSnapshot load_snapshot(const std::string& path);

}  // namespace mfa::nn
