// Parameter checkpointing: save/load a Module's named parameters to a
// simple self-describing binary file so a congestion model can be trained
// once and reused across placement runs (or shipped with a release).
//
// Crash safety: every save is atomic — the image is serialised in memory,
// written to `<path>.tmp`, fsynced, and renamed over `path` — so a crash at
// any instant leaves either the previous checkpoint or a complete new one,
// never a torn file. A CRC32 footer over the whole image catches silent
// corruption (bit flips, short writes that somehow pass parsing) at load.
//
// Format (little-endian):
//   magic "MFACKPT2"
//   u32 has_meta; if 1: i64 epoch, f32 learning_rate
//   u64 parameter count
//   per parameter: u32 name length, name bytes,
//                  u32 rank, i64 dims[rank], f32 data[numel]
//   u32 CRC32 of all preceding bytes
#pragma once

#include <cstdint>
#include <string>

#include "nn/module.h"

namespace mfa::nn {

/// Training-state metadata embedded in a checkpoint, enabling resume: which
/// epoch the snapshot closed and the learning rate in force (divergence
/// rollback halves it, and the halved value must survive a restart).
struct CheckpointMeta {
  std::int64_t epoch = -1;
  float learning_rate = 0.0f;
};

/// Writes all parameters of `module` to `path` atomically (temp + fsync +
/// rename) with a CRC32 footer. Throws std::runtime_error on I/O failure.
void save_checkpoint(const Module& module, const std::string& path);

/// Same, embedding training metadata for resumable runs.
void save_checkpoint(const Module& module, const std::string& path,
                     const CheckpointMeta& meta);

/// Loads parameters into `module`; fills `meta` when non-null (fields keep
/// their defaults for checkpoints saved without metadata). Every parameter
/// in the file must match an existing parameter by name and shape (strict),
/// so architecture changes are caught instead of silently misloaded. The
/// CRC32 footer is verified before any parsing. Throws std::runtime_error on
/// corruption, mismatch, or I/O failure.
void load_checkpoint(Module& module, const std::string& path,
                     CheckpointMeta* meta = nullptr);

/// Reads only the metadata of a checkpoint (magic and CRC32 footer are still
/// fully verified; no parameters are touched). Lets a resume decide between
/// candidate checkpoints — e.g. prefer the divergence-rollback last-good
/// spill over an older periodic snapshot — without loading either into the
/// module first. Throws std::runtime_error on corruption or I/O failure.
CheckpointMeta load_checkpoint_meta(const std::string& path);

/// CRC32 (IEEE 802.3, reflected) of `data[0..n)`, continuing from `crc`
/// (pass 0 to start). Exposed for tests that hand-corrupt checkpoints.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc = 0);

}  // namespace mfa::nn
