// Parameter checkpointing: save/load a Module's named parameters to a
// simple self-describing binary file so a congestion model can be trained
// once and reused across placement runs (or shipped with a release).
//
// Format (little-endian):
//   magic "MFACKPT1"
//   u64 parameter count
//   per parameter: u32 name length, name bytes,
//                  u32 rank, i64 dims[rank], f32 data[numel]
#pragma once

#include <string>

#include "nn/module.h"

namespace mfa::nn {

/// Writes all parameters of `module` to `path`. Throws std::runtime_error on
/// I/O failure.
void save_checkpoint(const Module& module, const std::string& path);

/// Loads parameters into `module`. Every parameter in the file must match an
/// existing parameter by name and shape (strict), so architecture changes
/// are caught instead of silently misloaded. Throws std::runtime_error on
/// mismatch or I/O failure.
void load_checkpoint(Module& module, const std::string& path);

}  // namespace mfa::nn
