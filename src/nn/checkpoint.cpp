#include "nn/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/backoff.h"
#include "common/check.h"
#include "common/fault.h"
#include "common/log.h"
#include "nn/snapshot.h"

namespace mfa::nn {
namespace {

constexpr char kMagic[8] = {'M', 'F', 'A', 'C', 'K', 'P', 'T', '2'};

// ---- serialisation into a memory image ----

template <typename T>
void append_pod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

std::string serialize(const Module& module, const CheckpointMeta* meta) {
  std::string image;
  image.append(kMagic, sizeof(kMagic));
  append_pod<std::uint32_t>(image, meta ? 1u : 0u);
  if (meta) {
    append_pod<std::int64_t>(image, meta->epoch);
    append_pod<float>(image, meta->learning_rate);
  }
  const auto params = module.parameters();
  const auto names = module.parameter_names();
  MFA_CHECK_EQ(static_cast<std::int64_t>(params.size()),
               static_cast<std::int64_t>(names.size()))
      << " save_checkpoint: module reports inconsistent parameter lists";
  append_pod<std::uint64_t>(image, params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const auto& name = names[i];
    const auto& p = params[i];
    append_pod<std::uint32_t>(image, static_cast<std::uint32_t>(name.size()));
    image.append(name.data(), name.size());
    const auto& shape = p.shape();
    append_pod<std::uint32_t>(image, static_cast<std::uint32_t>(shape.size()));
    for (const auto d : shape) append_pod<std::int64_t>(image, d);
    image.append(reinterpret_cast<const char*>(p.data()),
                 static_cast<size_t>(p.numel()) * sizeof(float));
  }
  append_pod<std::uint32_t>(
      image, crc32(image.data(), image.size()));
  return image;
}

/// Writes `image` to `path` via temp file + fsync + rename, so the
/// destination is either the old file or the complete new one at every
/// instant. The fault point simulates a crash in the vulnerable window.
void write_atomic_once(const std::string& image, const std::string& path) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    throw std::runtime_error("checkpoint: cannot open '" + tmp +
                             "' for writing");
  size_t off = 0;
  while (off < image.size()) {
    const ssize_t n = ::write(fd, image.data() + off, image.size() - off);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::runtime_error("checkpoint: write failed for " + tmp);
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw std::runtime_error("checkpoint: fsync failed for " + tmp);
  }
  ::close(fd);
  if (MFA_FAULT_POINT("checkpoint.crash_before_rename"))
    throw std::runtime_error(
        "checkpoint: fault-injected crash before rename (temp file left at " +
        tmp + ")");
  // Transient-I/O simulation: a failure in the fsync/rename window that a
  // retry of the whole temp-write sequence would clear (NFS hiccup, EINTR
  // storm). Thrown as CheckError so write_atomic can tell it apart from the
  // crash simulation above, which must NOT be retried (a "crash" retrying
  // itself back to health would hide the recovery path under test).
  if (MFA_FAULT_POINT("checkpoint.transient_io")) {
    ::unlink(tmp.c_str());
    throw check::CheckError(
        "checkpoint: fault-injected transient I/O failure for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("checkpoint: rename to '" + path + "' failed");
  }
}

/// write_atomic_once plus a deterministic backoff-retry loop around
/// transient failures (the checkpoint.transient_io fault point; real-world
/// analogue: a flaky network filesystem). Crash-simulation and permanent
/// errors (std::runtime_error) propagate immediately — only the transient
/// class (CheckError) is retried, up to the budget below.
void write_atomic(const std::string& image, const std::string& path) {
  common::BackoffOptions bopt;
  bopt.base_seconds = 1e-4;  // local-fs retries are cheap; keep tests fast
  bopt.max_seconds = 5e-3;
  bopt.max_retries = 3;
  // Seeded from the path so the delay schedule is reproducible per file but
  // two writers racing on different files never sync up.
  common::Backoff backoff(bopt, Rng::hash(path));
  for (;;) {
    try {
      write_atomic_once(image, path);
      return;
    } catch (const check::CheckError& transient) {
      const auto delay = backoff.next_delay_seconds();
      if (!delay)
        throw std::runtime_error(
            std::string("checkpoint: transient I/O failure persisted past ") +
            std::to_string(bopt.max_retries) +
            " retries: " + transient.what());
      log::warn("checkpoint: transient I/O failure (%s); retry %lld in %g s",
                transient.what(), static_cast<long long>(backoff.retries()),
                *delay);
      std::this_thread::sleep_for(std::chrono::duration<double>(*delay));
    }
  }
}

void save_impl(const Module& module, const std::string& path,
               const CheckpointMeta* meta) {
  std::string image = serialize(module, meta);
  // Torn-write simulation: one flipped byte in the middle of the image must
  // be caught by the CRC footer at load time.
  if (MFA_FAULT_POINT("checkpoint.torn_write"))
    image[image.size() / 2] = static_cast<char>(image[image.size() / 2] ^ 0x40);
  write_atomic(image, path);
}

// ---- parsing from a memory image ----

/// Bounds-checked cursor over the loaded image; any read past the end means
/// the file was truncated.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T pod() {
    T value{};
    std::memcpy(&value, bytes(sizeof(T), "field"), sizeof(T));
    return value;
  }

  const char* bytes(size_t n, const char* what) {
    if (n > size_ - pos_)
      throw std::runtime_error(std::string("checkpoint: truncated ") + what);
    const char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc) {
  // Table-driven reflected CRC32 (polynomial 0xEDB88320), table built once.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void save_checkpoint(const Module& module, const std::string& path) {
  save_impl(module, path, nullptr);
}

void save_checkpoint(const Module& module, const std::string& path,
                     const CheckpointMeta& meta) {
  save_impl(module, path, &meta);
}

namespace {

/// Reads `path` fully and verifies magic + CRC footer before any field is
/// trusted: a corrupt length or dim would otherwise drive allocation /
/// parsing off garbage.
std::string read_verified_image(const std::string& path) {
  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in)
      throw std::runtime_error("checkpoint: cannot open '" + path +
                               "' for reading");
    std::ostringstream oss;
    oss << in.rdbuf();
    image = std::move(oss).str();
  }
  // Smallest valid image: magic + has_meta + count + footer.
  if (image.size() < sizeof(kMagic) + 4 + 8 + 4)
    throw std::runtime_error("checkpoint: truncated file " + path);
  if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("checkpoint: bad magic in " + path);
  std::uint32_t stored = 0;
  std::memcpy(&stored, image.data() + image.size() - 4, 4);
  const std::uint32_t actual = crc32(image.data(), image.size() - 4);
  if (stored != actual)
    throw std::runtime_error(log::format(
        "checkpoint: CRC mismatch in %s (stored %08x, computed %08x)",
        path.c_str(), stored, actual));
  return image;
}

}  // namespace

CheckpointMeta load_checkpoint_meta(const std::string& path) {
  const std::string image = read_verified_image(path);
  Reader r(image.data() + sizeof(kMagic), image.size() - sizeof(kMagic) - 4);
  const auto has_meta = r.pod<std::uint32_t>();
  if (has_meta > 1)
    throw std::runtime_error(
        log::format("checkpoint: bad metadata flag %u", has_meta));
  CheckpointMeta parsed;
  if (has_meta == 1) {
    parsed.epoch = r.pod<std::int64_t>();
    parsed.learning_rate = r.pod<float>();
  }
  return parsed;
}

void load_checkpoint(Module& module, const std::string& path,
                     CheckpointMeta* meta) {
  const std::string image = read_verified_image(path);
  Reader r(image.data() + sizeof(kMagic),
           image.size() - sizeof(kMagic) - 4);
  const auto has_meta = r.pod<std::uint32_t>();
  if (has_meta > 1)
    throw std::runtime_error(
        log::format("checkpoint: bad metadata flag %u", has_meta));
  CheckpointMeta parsed;
  if (has_meta == 1) {
    parsed.epoch = r.pod<std::int64_t>();
    parsed.learning_rate = r.pod<float>();
  }

  auto params = module.parameters();
  const auto names = module.parameter_names();
  std::map<std::string, Tensor*> by_name;
  std::map<std::string, bool> loaded;  // duplicate-entry guard, see below
  for (size_t i = 0; i < params.size(); ++i) by_name[names[i]] = &params[i];

  const auto count = r.pod<std::uint64_t>();
  if (count != params.size())
    throw std::runtime_error(log::format(
        "checkpoint: parameter count mismatch (file %llu vs module %zu)",
        static_cast<unsigned long long>(count), params.size()));
  // Sanity caps: reject obviously corrupt headers before allocating.
  constexpr std::uint32_t kMaxNameLen = 4096;
  constexpr std::uint32_t kMaxRank = 16;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = r.pod<std::uint32_t>();
    if (name_len == 0 || name_len > kMaxNameLen)
      throw std::runtime_error(log::format(
          "checkpoint: implausible name length %u", name_len));
    const std::string name(r.bytes(name_len, "parameter name"), name_len);
    const auto rank = r.pod<std::uint32_t>();
    if (rank > kMaxRank)
      throw std::runtime_error(
          log::format("checkpoint: implausible rank %u for '%s'", rank,
                      name.c_str()));
    Shape shape(rank);
    for (auto& d : shape) {
      d = r.pod<std::int64_t>();
      if (d < 0)
        throw std::runtime_error(
            log::format("checkpoint: negative dim %lld for '%s'",
                        static_cast<long long>(d), name.c_str()));
    }
    const auto it = by_name.find(name);
    if (it == by_name.end())
      throw std::runtime_error("checkpoint: unknown parameter '" + name + "'");
    // Duplicate guard: a file carrying the same name twice passes the count
    // check while leaving some other parameter silently at its initial
    // values — a wrong-but-shape-compatible checkpoint must never load.
    if (loaded[name])
      throw SnapshotError(
          SnapshotError::Kind::kDuplicateName,
          "checkpoint: duplicate parameter entry '" + name + "' in " + path);
    loaded[name] = true;
    Tensor& target = *it->second;
    if (target.shape() != shape)
      throw std::runtime_error(
          log::format("checkpoint: shape mismatch for '%s' (file %s vs %s)",
                      name.c_str(), shape_str(shape).c_str(),
                      shape_str(target.shape()).c_str()));
    // The shape matched the module's tensor, so the byte count it implies is
    // exactly what the target holds; a short image means a cut-off file.
    MFA_CHECK_EQ(shape_numel(shape), target.numel())
        << " load_checkpoint: '" << name << "' byte count disagrees with "
        << shape_str(target.shape());
    const auto nbytes = static_cast<size_t>(target.numel()) * sizeof(float);
    std::memcpy(target.data(), r.bytes(nbytes, "tensor data"), nbytes);
  }
  // Every parameter was consumed; any remaining byte is trailing garbage
  // (e.g. a concatenated or corrupt file) and deserves a hard error.
  if (r.remaining() != 0)
    throw std::runtime_error(
        "checkpoint: trailing garbage after last tensor in " + path);
  if (meta) *meta = parsed;
}

// Defined here (declared in nn/snapshot.h) to reuse the verified-image
// reader: the snapshot path must enforce exactly the same magic / CRC /
// bounds / sanity-cap discipline as load_checkpoint, just without needing a
// module of the right architecture to parse into.
WeightSnapshot load_snapshot(const std::string& path) {
  const std::string image = read_verified_image(path);
  Reader r(image.data() + sizeof(kMagic), image.size() - sizeof(kMagic) - 4);
  const auto has_meta = r.pod<std::uint32_t>();
  if (has_meta > 1)
    throw std::runtime_error(
        log::format("checkpoint: bad metadata flag %u", has_meta));
  WeightSnapshot snap;
  if (has_meta == 1) {
    snap.meta.epoch = r.pod<std::int64_t>();
    snap.meta.learning_rate = r.pod<float>();
  }
  const auto count = r.pod<std::uint64_t>();
  constexpr std::uint64_t kMaxParams = 1u << 20;
  constexpr std::uint32_t kMaxNameLen = 4096;
  constexpr std::uint32_t kMaxRank = 16;
  if (count > kMaxParams)
    throw std::runtime_error(log::format(
        "checkpoint: implausible parameter count %llu",
        static_cast<unsigned long long>(count)));
  std::map<std::string, bool> seen;
  snap.entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SnapshotEntry e;
    const auto name_len = r.pod<std::uint32_t>();
    if (name_len == 0 || name_len > kMaxNameLen)
      throw std::runtime_error(
          log::format("checkpoint: implausible name length %u", name_len));
    e.name.assign(r.bytes(name_len, "parameter name"), name_len);
    if (seen[e.name])
      throw SnapshotError(
          SnapshotError::Kind::kDuplicateName,
          "checkpoint: duplicate parameter entry '" + e.name + "' in " + path);
    seen[e.name] = true;
    const auto rank = r.pod<std::uint32_t>();
    if (rank > kMaxRank)
      throw std::runtime_error(log::format(
          "checkpoint: implausible rank %u for '%s'", rank, e.name.c_str()));
    e.shape.resize(rank);
    std::int64_t numel = 1;
    // The CRC-verified image bounds every plausible element count; checking
    // against it per-dim keeps the product from ever overflowing.
    const auto max_numel =
        static_cast<std::int64_t>(r.remaining() / sizeof(float));
    for (auto& d : e.shape) {
      d = r.pod<std::int64_t>();
      if (d < 0 || (d > 0 && numel > max_numel / d))
        throw std::runtime_error(
            log::format("checkpoint: implausible dim %lld for '%s'",
                        static_cast<long long>(d), e.name.c_str()));
      numel *= d;
    }
    // The remaining-byte bound in Reader::bytes caps the allocation: a
    // corrupt dim cannot drive it past the (CRC-verified) image size.
    const auto* raw = reinterpret_cast<const float*>(
        r.bytes(static_cast<size_t>(numel) * sizeof(float), "tensor data"));
    e.data.copy_from(raw, numel);
    snap.entries.push_back(std::move(e));
  }
  if (r.remaining() != 0)
    throw std::runtime_error(
        "checkpoint: trailing garbage after last tensor in " + path);
  return snap;
}

}  // namespace mfa::nn
