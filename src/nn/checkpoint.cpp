#include "nn/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>

#include "common/log.h"

namespace mfa::nn {
namespace {

constexpr char kMagic[8] = {'M', 'F', 'A', 'C', 'K', 'P', 'T', '1'};

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return value;
}

}  // namespace

void save_checkpoint(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw std::runtime_error("checkpoint: cannot open '" + path +
                             "' for writing");
  out.write(kMagic, sizeof(kMagic));
  const auto params = module.parameters();
  const auto names = module.parameter_names();
  write_pod<std::uint64_t>(out, params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const auto& name = names[i];
    const auto& p = params[i];
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto& shape = p.shape();
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(shape.size()));
    for (const auto d : shape) write_pod<std::int64_t>(out, d);
    out.write(reinterpret_cast<const char*>(p.data()),
              static_cast<std::streamsize>(p.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("checkpoint: write failed for " + path);
}

void load_checkpoint(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("checkpoint: cannot open '" + path +
                             "' for reading");
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("checkpoint: bad magic in " + path);

  auto params = module.parameters();
  const auto names = module.parameter_names();
  std::map<std::string, Tensor*> by_name;
  for (size_t i = 0; i < params.size(); ++i) by_name[names[i]] = &params[i];

  const auto count = read_pod<std::uint64_t>(in);
  if (count != params.size())
    throw std::runtime_error(log::format(
        "checkpoint: parameter count mismatch (file %llu vs module %zu)",
        static_cast<unsigned long long>(count), params.size()));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    const auto rank = read_pod<std::uint32_t>(in);
    Shape shape(rank);
    for (auto& d : shape) d = read_pod<std::int64_t>(in);
    const auto it = by_name.find(name);
    if (it == by_name.end())
      throw std::runtime_error("checkpoint: unknown parameter '" + name + "'");
    Tensor& target = *it->second;
    if (target.shape() != shape)
      throw std::runtime_error(
          log::format("checkpoint: shape mismatch for '%s' (file %s vs %s)",
                      name.c_str(), shape_str(shape).c_str(),
                      shape_str(target.shape()).c_str()));
    in.read(reinterpret_cast<char*>(target.data()),
            static_cast<std::streamsize>(target.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("checkpoint: truncated tensor data");
  }
}

}  // namespace mfa::nn
