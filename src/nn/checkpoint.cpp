#include "nn/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>

#include "common/check.h"
#include "common/log.h"

namespace mfa::nn {
namespace {

constexpr char kMagic[8] = {'M', 'F', 'A', 'C', 'K', 'P', 'T', '1'};

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("checkpoint: truncated file");
  return value;
}

}  // namespace

void save_checkpoint(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw std::runtime_error("checkpoint: cannot open '" + path +
                             "' for writing");
  out.write(kMagic, sizeof(kMagic));
  const auto params = module.parameters();
  const auto names = module.parameter_names();
  MFA_CHECK_EQ(static_cast<std::int64_t>(params.size()),
               static_cast<std::int64_t>(names.size()))
      << " save_checkpoint: module reports inconsistent parameter lists";
  write_pod<std::uint64_t>(out, params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const auto& name = names[i];
    const auto& p = params[i];
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const auto& shape = p.shape();
    write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(shape.size()));
    for (const auto d : shape) write_pod<std::int64_t>(out, d);
    out.write(reinterpret_cast<const char*>(p.data()),
              static_cast<std::streamsize>(p.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("checkpoint: write failed for " + path);
}

void load_checkpoint(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("checkpoint: cannot open '" + path +
                             "' for reading");
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("checkpoint: bad magic in " + path);

  auto params = module.parameters();
  const auto names = module.parameter_names();
  std::map<std::string, Tensor*> by_name;
  for (size_t i = 0; i < params.size(); ++i) by_name[names[i]] = &params[i];

  const auto count = read_pod<std::uint64_t>(in);
  if (count != params.size())
    throw std::runtime_error(log::format(
        "checkpoint: parameter count mismatch (file %llu vs module %zu)",
        static_cast<unsigned long long>(count), params.size()));
  // Sanity caps: reject obviously corrupt headers before allocating.
  constexpr std::uint32_t kMaxNameLen = 4096;
  constexpr std::uint32_t kMaxRank = 16;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint32_t>(in);
    if (name_len == 0 || name_len > kMaxNameLen)
      throw std::runtime_error(log::format(
          "checkpoint: implausible name length %u", name_len));
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in.good())
      throw std::runtime_error("checkpoint: truncated parameter name");
    const auto rank = read_pod<std::uint32_t>(in);
    if (rank > kMaxRank)
      throw std::runtime_error(
          log::format("checkpoint: implausible rank %u for '%s'", rank,
                      name.c_str()));
    Shape shape(rank);
    for (auto& d : shape) {
      d = read_pod<std::int64_t>(in);
      if (d < 0)
        throw std::runtime_error(
            log::format("checkpoint: negative dim %lld for '%s'",
                        static_cast<long long>(d), name.c_str()));
    }
    const auto it = by_name.find(name);
    if (it == by_name.end())
      throw std::runtime_error("checkpoint: unknown parameter '" + name + "'");
    Tensor& target = *it->second;
    if (target.shape() != shape)
      throw std::runtime_error(
          log::format("checkpoint: shape mismatch for '%s' (file %s vs %s)",
                      name.c_str(), shape_str(shape).c_str(),
                      shape_str(target.shape()).c_str()));
    // The shape matched the module's tensor, so the byte count it implies is
    // exactly what the target holds; a short read means the file was cut off.
    MFA_CHECK_EQ(shape_numel(shape), target.numel())
        << " load_checkpoint: '" << name << "' byte count disagrees with "
        << shape_str(target.shape());
    in.read(reinterpret_cast<char*>(target.data()),
            static_cast<std::streamsize>(target.numel() * sizeof(float)));
    if (!in.good())
      throw std::runtime_error("checkpoint: truncated tensor data for '" +
                               name + "'");
  }
  // Every parameter was consumed; any remaining byte is trailing garbage
  // (e.g. a concatenated or corrupt file) and deserves a hard error.
  if (in.peek() != std::ifstream::traits_type::eof())
    throw std::runtime_error("checkpoint: trailing garbage after last tensor in " +
                             path);
}

}  // namespace mfa::nn
