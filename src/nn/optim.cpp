#include "nn/optim.h"

#include <cmath>

namespace mfa::nn {

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i)
    velocity_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
}

void Sgd::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    // Read the leaf gradient buffer in place (grad() would deep-copy every
    // step). An untouched gradient reads as zero, matching grad().
    const tensor::Storage& gs = p.impl()->grad;
    const float* gv = gs.empty() ? nullptr : gs.data();
    float* pv = p.data();
    float* vel = velocity_[i].data();
    const auto n = p.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      vel[j] = momentum_ * vel[j] + (gv ? gv[j] : 0.0f);
      pv[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
    v_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const tensor::Storage& gs = p.impl()->grad;
    const float* gv = gs.empty() ? nullptr : gs.data();
    float* pv = p.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const auto n = p.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      const float grad = gv ? gv[j] : 0.0f;
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      pv[j] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * pv[j]);
    }
  }
}

}  // namespace mfa::nn
