#include "nn/snapshot.h"

#include <map>
#include <set>

#include "common/log.h"

namespace mfa::nn {

const char* to_string(SnapshotError::Kind kind) {
  switch (kind) {
    case SnapshotError::Kind::kCountMismatch: return "count_mismatch";
    case SnapshotError::Kind::kDuplicateName: return "duplicate_name";
    case SnapshotError::Kind::kUnknownParameter: return "unknown_parameter";
    case SnapshotError::Kind::kRankMismatch: return "rank_mismatch";
    case SnapshotError::Kind::kShapeMismatch: return "shape_mismatch";
    case SnapshotError::Kind::kSizeMismatch: return "size_mismatch";
  }
  return "?";
}

std::int64_t WeightSnapshot::total_floats() const {
  std::int64_t n = 0;
  for (const auto& e : entries) n += static_cast<std::int64_t>(e.data.size());
  return n;
}

WeightSnapshot snapshot_parameters(const Module& module) {
  const auto params = module.parameters();
  const auto names = module.parameter_names();
  MFA_CHECK_EQ(static_cast<std::int64_t>(params.size()),
               static_cast<std::int64_t>(names.size()))
      << " snapshot_parameters: module reports inconsistent parameter lists";
  WeightSnapshot snap;
  snap.entries.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    SnapshotEntry e;
    e.name = names[i];
    e.shape = params[i].shape();
    e.data.copy_from(params[i].data(), params[i].numel());
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void validate_snapshot(const WeightSnapshot& snapshot, const Module& module) {
  const auto params = module.parameters();
  const auto names = module.parameter_names();
  if (snapshot.entries.size() != params.size())
    throw SnapshotError(
        SnapshotError::Kind::kCountMismatch,
        log::format("snapshot: %zu entries vs %zu model parameters",
                    snapshot.entries.size(), params.size()));
  std::map<std::string, const Tensor*> by_name;
  for (size_t i = 0; i < params.size(); ++i) by_name[names[i]] = &params[i];
  std::set<std::string> seen;
  for (const auto& e : snapshot.entries) {
    if (!seen.insert(e.name).second)
      throw SnapshotError(
          SnapshotError::Kind::kDuplicateName,
          "snapshot: duplicate parameter entry '" + e.name + "'");
    const auto it = by_name.find(e.name);
    if (it == by_name.end())
      throw SnapshotError(
          SnapshotError::Kind::kUnknownParameter,
          "snapshot: entry '" + e.name + "' names no model parameter");
    const Tensor& target = *it->second;
    if (e.shape.size() != target.shape().size())
      throw SnapshotError(
          SnapshotError::Kind::kRankMismatch,
          log::format("snapshot: '%s' rank %zu vs model rank %zu",
                      e.name.c_str(), e.shape.size(), target.shape().size()));
    if (e.shape != target.shape())
      throw SnapshotError(
          SnapshotError::Kind::kShapeMismatch,
          "snapshot: '" + e.name + "' shape " + shape_str(e.shape) +
              " vs model " + shape_str(target.shape()));
    if (static_cast<std::int64_t>(e.data.size()) != shape_numel(e.shape))
      throw SnapshotError(
          SnapshotError::Kind::kSizeMismatch,
          log::format("snapshot: '%s' holds %zu floats for shape %s",
                      e.name.c_str(), e.data.size(),
                      shape_str(e.shape).c_str()));
  }
  // Count equal + every entry distinct and resolved => the mapping is a
  // bijection; no model parameter can be left unpublished.
}

void install_snapshot(const WeightSnapshot& snapshot, Module& module) {
  const auto params = module.parameters();
  const auto names = module.parameter_names();
  MFA_CHECK_EQ(static_cast<std::int64_t>(snapshot.entries.size()),
               static_cast<std::int64_t>(params.size()))
      << " install_snapshot: run validate_snapshot first";
  std::map<std::string, Tensor> by_name;
  for (size_t i = 0; i < params.size(); ++i)
    by_name.emplace(names[i], params[i]);
  for (const auto& e : snapshot.entries) {
    const auto it = by_name.find(e.name);
    MFA_CHECK(it != by_name.end())
        << " install_snapshot: unknown parameter '" << e.name
        << "' (run validate_snapshot first)";
    auto impl = it->second.impl();
    MFA_CHECK_EQ(static_cast<std::int64_t>(e.data.size()),
                 static_cast<std::int64_t>(impl->data.size()))
        << " install_snapshot: size mismatch for '" << e.name << "'";
    // Share the block: the parameter now reads the snapshot's floats.
    impl->data = e.data;
  }
}

}  // namespace mfa::nn
