// Core neural-network layers built on the tensor op set.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace mfa::nn {

/// 2-D convolution (NCHW), Kaiming-normal initialised.
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, Rng& rng, std::int64_t stride = 1,
         std::int64_t padding = 0, bool bias = true);
  Tensor forward(const Tensor& x) override;

 private:
  Tensor weight_, bias_;
  std::int64_t stride_, padding_;
};

/// Fully connected layer, Xavier-uniform initialised. Accepts [.., in].
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true);
  Tensor forward(const Tensor& x) override;

 private:
  Tensor weight_;  // [in, out] so forward is x @ W
  Tensor bias_;
  std::int64_t in_, out_;
};

/// Batch normalisation over (N, H, W) per channel with running statistics.
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);
  Tensor forward(const Tensor& x) override;
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  Tensor gamma_, beta_, running_mean_, running_var_;
  float momentum_, eps_;
};

/// Layer normalisation over the last dimension.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t dim, float eps = 1e-5f);
  Tensor forward(const Tensor& x) override;

 private:
  Tensor gamma_, beta_;
  float eps_;
};

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x) override { return ops::relu(x); }
};

class GELU : public Module {
 public:
  Tensor forward(const Tensor& x) override { return ops::gelu(x); }
};

class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::int64_t kernel, std::int64_t stride)
      : kernel_(kernel), stride_(stride) {}
  Tensor forward(const Tensor& x) override {
    return ops::max_pool2d(x, kernel_, stride_);
  }

 private:
  std::int64_t kernel_, stride_;
};

/// Nearest-neighbour 2x spatial upsampling.
class Upsample2x : public Module {
 public:
  Tensor forward(const Tensor& x) override {
    return ops::upsample_nearest2x(x);
  }
};

/// Runs children in order.
class Sequential : public Module {
 public:
  Sequential() = default;
  /// Appends a module (registered as a child).
  template <typename M>
  Sequential& add(std::shared_ptr<M> m) {
    modules_.push_back(register_module(std::to_string(modules_.size()), m));
    return *this;
  }
  Tensor forward(const Tensor& x) override {
    Tensor y = x;
    for (auto& m : modules_) y = m->forward(y);
    return y;
  }
  size_t size() const { return modules_.size(); }

 private:
  std::vector<std::shared_ptr<Module>> modules_;
};

// ---- weight init helpers ----

/// N(0, sqrt(2/fan_in)) — He initialisation for ReLU networks.
Tensor kaiming_normal(Shape shape, std::int64_t fan_in, Rng& rng);
/// U(-a, a) with a = sqrt(6/(fan_in+fan_out)) — Glorot initialisation.
Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                      Rng& rng);

}  // namespace mfa::nn
