#include "nn/module.h"

namespace mfa::nn {

void Module::collect(const std::string& prefix,
                     std::vector<std::pair<std::string, Tensor>>& out) const {
  for (const auto& [name, t] : params_) out.emplace_back(prefix + name, t);
  for (const auto& [name, child] : children_)
    child->collect(prefix + name + ".", out);
}

std::vector<Tensor> Module::parameters() const {
  std::vector<std::pair<std::string, Tensor>> named;
  collect("", named);
  std::vector<Tensor> out;
  out.reserve(named.size());
  for (auto& [name, t] : named) out.push_back(t);
  return out;
}

std::vector<std::string> Module::parameter_names() const {
  std::vector<std::pair<std::string, Tensor>> named;
  collect("", named);
  std::vector<std::string> out;
  out.reserve(named.size());
  for (auto& [name, t] : named) out.push_back(name);
  return out;
}

std::int64_t Module::num_parameters() const {
  std::int64_t n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

void Module::train(bool on) {
  training_ = on;
  for (auto& [name, child] : children_) child->train(on);
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

Tensor Module::register_parameter(std::string name, Tensor t) {
  t.set_requires_grad(true);
  params_.emplace_back(std::move(name), t);
  return t;
}

Tensor Module::register_buffer(std::string name, Tensor t) {
  buffers_.emplace_back(std::move(name), t);
  return t;
}

}  // namespace mfa::nn
