// First-order optimizers. The paper trains with Adam at lr = 1e-3.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace mfa::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;
  virtual void step() = 0;
  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

 protected:
  std::vector<Tensor> params_;
};

/// SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float lr_, momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba) with optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace mfa::nn
