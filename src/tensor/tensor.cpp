#include "tensor/tensor.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/check.h"
#include "common/log.h"
#include "common/sanitize.h"
#include "tensor/tape.h"

namespace mfa {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool GradMode::enabled() { return g_grad_enabled; }
void GradMode::set_enabled(bool on) { g_grad_enabled = on; }

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) n *= d;
  return n;
}

std::string shape_str(const Shape& shape) {
  // Single formatting source: MFA_CHECK_SHAPE messages use the same helper,
  // so op errors and check failures render shapes identically.
  return check::detail::vec_str(shape);
}

Tensor Tensor::wrap(std::shared_ptr<detail::TensorImpl> impl) {
  return Tensor(std::move(impl));
}

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  return full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::ones(Shape shape, bool requires_grad) {
  return full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::full(Shape shape, float value, bool requires_grad) {
  auto impl = std::make_shared<detail::TensorImpl>();
  const auto n = shape_numel(shape);
  impl->shape = std::move(shape);
  impl->data.assign(n, value);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::from_data(Shape shape, std::vector<float> data,
                         bool requires_grad) {
  MFA_CHECK_EQ(shape_numel(shape), static_cast<std::int64_t>(data.size()))
      << " from_data: shape " << shape_str(shape)
      << " disagrees with the data length";
  auto impl = std::make_shared<detail::TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.copy_from(data.data(), static_cast<std::int64_t>(data.size()));
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::scalar(float value, bool requires_grad) {
  return full({1}, value, requires_grad);
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev, bool requires_grad) {
  Tensor t = zeros(std::move(shape), requires_grad);
  for (auto& v : t.impl_->data)
    v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi,
                       bool requires_grad) {
  Tensor t = zeros(std::move(shape), requires_grad);
  for (auto& v : t.impl_->data) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

const Shape& Tensor::shape() const {
  MFA_CHECK(impl_) << " shape() on undefined tensor";
  return impl_->shape;
}

std::int64_t Tensor::dim() const {
  return static_cast<std::int64_t>(shape().size());
}

std::int64_t Tensor::size(std::int64_t d) const {
  const auto nd = dim();
  if (d < 0) d += nd;
  MFA_CHECK_BOUNDS(d, nd) << " size() dim on " << shape_str(shape());
  return impl_->shape[static_cast<size_t>(d)];
}

std::int64_t Tensor::numel() const {
  return impl_ ? static_cast<std::int64_t>(impl_->data.size()) : 0;
}

float* Tensor::data() {
  MFA_CHECK(impl_) << " data() on undefined tensor";
  return impl_->data.data();
}
const float* Tensor::data() const {
  MFA_CHECK(impl_) << " data() on undefined tensor";
  return impl_->data.data();
}

float Tensor::item() const {
  MFA_CHECK_EQ(numel(), 1) << " item() requires a single-element tensor";
  return impl_->data[0];
}

namespace {
size_t flat_index(const Shape& shape, std::initializer_list<std::int64_t> idx) {
  MFA_CHECK_EQ(static_cast<std::int64_t>(idx.size()),
               static_cast<std::int64_t>(shape.size()))
      << " index rank mismatch on " << shape_str(shape);
  size_t flat = 0;
  size_t d = 0;
  for (const auto i : idx) {
    MFA_CHECK_BOUNDS(i, shape[d])
        << " index in dim " << d << " of " << shape_str(shape);
    flat = flat * static_cast<size_t>(shape[d]) + static_cast<size_t>(i);
    ++d;
  }
  return flat;
}
}  // namespace

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  MFA_CHECK(impl_) << " at() on undefined tensor";
  return impl_->data[flat_index(impl_->shape, idx)];
}

void Tensor::set(std::initializer_list<std::int64_t> idx, float v) {
  MFA_CHECK(impl_) << " set() on undefined tensor";
  impl_->data[flat_index(impl_->shape, idx)] = v;
}

std::vector<float> Tensor::to_vector() const {
  MFA_CHECK(impl_) << " to_vector() on undefined tensor";
  return impl_->data.to_vector();
}

bool Tensor::requires_grad() const { return impl_ && impl_->requires_grad; }

Tensor& Tensor::set_requires_grad(bool on) {
  MFA_CHECK(impl_) << " set_requires_grad() on undefined tensor";
  impl_->requires_grad = on;
  return *this;
}

Tensor Tensor::grad() const {
  MFA_CHECK(impl_) << " grad() on undefined tensor";
  Tensor g = zeros(impl_->shape);
  if (impl_->grad.size() == impl_->data.size())
    g.impl_->data.copy_from(impl_->grad);
  return g;
}

void Tensor::zero_grad() {
  if (!impl_) return;
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

void Tensor::backward() {
  MFA_CHECK(impl_) << " backward() on undefined tensor";
  MFA_CHECK_EQ(numel(), 1)
      << " backward() requires a scalar root, got shape "
      << shape_str(impl_->shape);
  // The calling thread's tape owns the recorded graph; it plans the
  // reverse-topological schedule, runs the closures (sequentially or
  // level-parallel, see tensor/tape.h), and retires the whole tape.
  tensor::Tape::current().execute_backward(impl_);
}

void Tensor::backward_multi(const std::vector<Tensor>& roots) {
  MFA_CHECK(!roots.empty()) << " backward_multi() with no roots";
  std::vector<std::shared_ptr<detail::TensorImpl>> impls;
  impls.reserve(roots.size());
  for (const Tensor& r : roots) {
    MFA_CHECK(r.impl_) << " backward_multi() on undefined tensor";
    MFA_CHECK_EQ(r.numel(), 1)
        << " backward_multi() requires scalar roots, got shape "
        << shape_str(r.impl_->shape);
    impls.push_back(r.impl_);
  }
  tensor::Tape::current().execute_backward(impls);
}

Tensor Tensor::detach() const {
  MFA_CHECK(impl_) << " detach() on undefined tensor";
  auto impl = std::make_shared<detail::TensorImpl>();
  impl->shape = impl_->shape;
  impl->data.copy_from(impl_->data);
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

Tensor Tensor::clone() const { return detach(); }

void Tensor::add_(const Tensor& other, float alpha) {
  MFA_CHECK_EQ(numel(), other.numel()) << " add_: size mismatch";
  const float* src = other.data();
  float* dst = data();
  const auto n = numel();
  for (std::int64_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Tensor::mul_(float s) {
  MFA_CHECK(impl_) << " mul_() on undefined tensor";
  for (auto& v : impl_->data) v *= s;
}

void Tensor::fill_(float v) {
  MFA_CHECK(impl_) << " fill_() on undefined tensor";
  std::fill(impl_->data.begin(), impl_->data.end(), v);
}

void Tensor::copy_from(const Tensor& src) {
  MFA_CHECK_EQ(numel(), src.numel()) << " copy_from: size mismatch";
  impl_->data.copy_from(src.impl_->data);
}

Tensor Tensor::make_result(Shape shape, std::vector<Tensor> inputs,
                           std::function<void(detail::TensorImpl&)> backward,
                           unsigned flags) {
  auto& tape = tensor::Tape::current();
  bool needs = false;
  if (GradMode::enabled() && backward)
    for (const auto& in : inputs) needs = needs || in.requires_grad();
  auto impl = std::make_shared<detail::TensorImpl>();
  const auto n = shape_numel(shape);
  impl->shape = std::move(shape);
  // Op outputs draw from the tape arena when it may serve (recording, or an
  // inference ArenaScope is active); leaves and parameters built through the
  // plain factories stay on StoragePool.
  impl->data = tape.intermediate_storage(n, needs);
  Tensor out(std::move(impl));
  if (!needs) return out;
  out.impl_->requires_grad = true;
  out.impl_->tape_id = tape.record(sanitize::current_op(), out.impl_, inputs,
                                   std::move(backward), flags);
  out.impl_->tape_epoch = tape.epoch();
  return out;
}

}  // namespace mfa
