#include "tensor/gradcheck.h"

#include <cmath>

#include "common/log.h"

namespace mfa {

GradCheckResult gradcheck(const std::function<Tensor()>& fn,
                          const std::vector<Tensor>& inputs, float eps,
                          float tol) {
  GradCheckResult result;
  // Analytic pass.
  for (const auto& in : inputs) const_cast<Tensor&>(in).zero_grad();
  Tensor loss = fn();
  loss.backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (const auto& in : inputs) analytic.push_back(in.grad().to_vector());

  // Numeric pass (central differences), one coordinate at a time. No tape:
  // these forwards are never backward'd, and recording them would pile nodes
  // onto the thread's Tape until the next retire (as well as wasting closure
  // allocations — the old shared_ptr web freed them per-temporary, the tape
  // frees in bulk).
  const NoGradGuard no_grad;
  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor in = inputs[t];
    const auto n = in.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const float orig = in.data()[i];
      in.data()[i] = orig + eps;
      const float up = fn().item();
      in.data()[i] = orig - eps;
      const float dn = fn().item();
      in.data()[i] = orig;
      const float numeric = (up - dn) / (2.0f * eps);
      const float exact = analytic[t][static_cast<size_t>(i)];
      const float abs_err = std::fabs(numeric - exact);
      const float denom = std::max(1.0f, std::max(std::fabs(numeric), std::fabs(exact)));
      const float rel_err = abs_err / denom;
      result.max_abs_err = std::max(result.max_abs_err, abs_err);
      result.max_rel_err = std::max(result.max_rel_err, rel_err);
      if (rel_err > tol && abs_err > tol && result.ok) {
        result.ok = false;
        result.detail = log::format(
            "input %zu elem %lld: analytic=%.6f numeric=%.6f", t,
            static_cast<long long>(i), static_cast<double>(exact),
            static_cast<double>(numeric));
      }
    }
  }
  return result;
}

}  // namespace mfa
