// AVX2 + FMA GEMM kernels. This TU is compiled with -mavx2 -mfma (see
// src/tensor/CMakeLists.txt) and must only be entered on hosts that pass the
// dispatch front-end's cpuid check — everything here except avx2_strips()
// lives in the anonymous namespace so no AVX2-encoded symbol can be picked
// up by another TU at link time.
#if defined(MFA_GEMM_X86)

#include <immintrin.h>

#include <cstdint>

#include "tensor/gemm_variant.h"

namespace mfa::kernels::detail {
namespace {

struct V {
  static constexpr int W = 8;
  using vf = __m256;
  static vf load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, vf v) { _mm256_storeu_ps(p, v); }
  static vf broadcast(float f) { return _mm256_set1_ps(f); }
  static vf fma(vf a, vf b, vf c) { return _mm256_fmadd_ps(a, b, c); }
  static vf zero() { return _mm256_setzero_ps(); }

  // Sliding window over {-1 x8, 0 x8} yields a mask with the low `rem`
  // lanes active (rem in 1..8). maskload zeroes inactive lanes, so tail
  // FMAs compute a*0+0 in the dead lanes and maskstore never writes them.
  static __m256i mask(int rem) {
    alignas(32) static const std::int32_t kTable[16] = {
        -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kTable + 8 - rem));
  }
  static vf maskload(const float* p, int rem) {
    return _mm256_maskload_ps(p, mask(rem));
  }
  static void maskstore(float* p, int rem, vf v) {
    _mm256_maskstore_ps(p, mask(rem), v);
  }

  static constexpr int DW = 4;
  using vd = __m256d;
  static vd dzero() { return _mm256_setzero_pd(); }
  static vd dload_cvt(const float* p) {
    return _mm256_cvtps_pd(_mm_loadu_ps(p));
  }
  static vd dfma(vd a, vd b, vd c) { return _mm256_fmadd_pd(a, b, c); }
  static double dhsum_seq(vd v) {
    alignas(32) double t[4];
    _mm256_store_pd(t, v);
    return ((t[0] + t[1]) + t[2]) + t[3];
  }

  // 2x2 nt register tile: 4 double accumulators + 4 operand vectors fits
  // comfortably in 16 ymm registers.
  static constexpr int kNtRows = 2;
  static constexpr int kNtCols = 2;
};

#include "tensor/gemm_simd.inl"

}  // namespace

StripKernels avx2_strips() {
  StripKernels s;
  s.nn = simd_nn;
  s.nt = strip_nt;
  s.tn = simd_tn;
  return s;
}

}  // namespace mfa::kernels::detail

#endif  // MFA_GEMM_X86
