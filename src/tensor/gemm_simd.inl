// Shared SIMD GEMM skeleton — textually included by gemm_avx2.cpp and
// gemm_avx512.cpp inside `namespace mfa::kernels::detail { namespace {`,
// after each TU defines a vector policy struct `V`:
//
//   V::vf / V::W              float vector type and lane count
//   load/store/broadcast/fma  unmasked float-vector ops (fma single-rounded)
//   maskload/maskstore        no-fault partial vectors for the j tail
//   zero                      all-zero vector
//   V::vd / V::DW             double vector type and lane count (gemm_nt)
//   dzero/dload_cvt/dfma      double ops; dload_cvt widens DW floats
//   dhsum_seq                 lane 0 + lane 1 + ... strictly in lane order
//   V::kNtRows / V::kNtCols   register-tile shape for gemm_nt
//
// This file holds no #includes and no exported symbols: everything lands in
// the including TU's anonymous namespace, so the two ISA TUs never share an
// inline symbol the linker could resolve to the wrong instruction set.
//
// Determinism contract (gemm_tiles.h): every C[i][j] of nn/tn is reduced as
// a chain of single-rounded FMAs in strictly ascending k, whether the
// element sits in a full register tile, a masked j tail, or a packed-panel
// pass — so the (mr, nv, nc, kc, pack_min) tile parameters and the
// pack/no-pack decision can never change a result bit. gemm_nt reduces in
// V::DW double lanes (lane t owns l ≡ t mod DW), summed in fixed lane order
// plus a scalar k tail — again independent of the register-tile grouping.

// ---- nn / tn register-tiled microkernel ---------------------------------
//
// Computes C[r, jc+j] += sum_l a(r, l) * b(l, j) for r in [0, MR), j in
// [0, jn), l in [0, kk), where a(r, l) = a0[r*a_si + l*a_sl] (a_sl = 1 for
// nn, = m for tn), b(l, j) = b0[l*b_rs + j] (B in place or a packed panel),
// and C rows are c0 + r*c_rs. Accumulators stay in registers across the
// whole l loop; the j tail runs one masked vector at a time with the exact
// same per-lane FMA chain.
template <int MR, int NV>
inline void tile_rows(const float* a0, std::int64_t a_si, std::int64_t a_sl,
                      const float* b0, std::int64_t b_rs, float* c0,
                      std::int64_t c_rs, std::int64_t kk, std::int64_t jn) {
  constexpr int W = V::W;
  std::int64_t j = 0;
  for (; j + NV * W <= jn; j += NV * W) {
    typename V::vf acc[MR][NV];
    for (int r = 0; r < MR; ++r)
      for (int v = 0; v < NV; ++v)
        acc[r][v] = V::load(c0 + r * c_rs + j + v * W);
    for (std::int64_t l = 0; l < kk; ++l) {
      typename V::vf bv[NV];
      const float* brow = b0 + l * b_rs + j;
      for (int v = 0; v < NV; ++v) bv[v] = V::load(brow + v * W);
      for (int r = 0; r < MR; ++r) {
        const typename V::vf av = V::broadcast(a0[r * a_si + l * a_sl]);
        for (int v = 0; v < NV; ++v) acc[r][v] = V::fma(av, bv[v], acc[r][v]);
      }
    }
    for (int r = 0; r < MR; ++r)
      for (int v = 0; v < NV; ++v)
        V::store(c0 + r * c_rs + j + v * W, acc[r][v]);
  }
  for (; j < jn; j += W) {
    const int rem = static_cast<int>(jn - j < W ? jn - j : W);
    typename V::vf acc[MR];
    for (int r = 0; r < MR; ++r) acc[r] = V::maskload(c0 + r * c_rs + j, rem);
    for (std::int64_t l = 0; l < kk; ++l) {
      const typename V::vf bv = V::maskload(b0 + l * b_rs + j, rem);
      for (int r = 0; r < MR; ++r)
        acc[r] = V::fma(V::broadcast(a0[r * a_si + l * a_sl]), bv, acc[r]);
    }
    for (int r = 0; r < MR; ++r) V::maskstore(c0 + r * c_rs + j, rem, acc[r]);
  }
}

/// Runs tile_rows over rows [r0, r1), decomposing the strip into the largest
/// instantiated row counts <= mr (8/4/2/1): a tuned mr only regroups rows,
/// never changes any element's reduction.
template <int NV>
inline void rows_block(const float* A, std::int64_t a_si, std::int64_t a_sl,
                       const float* b0, std::int64_t b_rs, float* C,
                       std::int64_t c_rs, std::int64_t r0, std::int64_t r1,
                       std::int64_t kk, std::int64_t jn, int mr) {
  std::int64_t i = r0;
  while (i < r1) {
    const std::int64_t left = r1 - i;
    const int avail = static_cast<int>(left < mr ? left : mr);
    const float* a = A + i * a_si;
    float* c = C + i * c_rs;
    int step;
    if (avail >= 8) {
      step = 8;
      tile_rows<8, NV>(a, a_si, a_sl, b0, b_rs, c, c_rs, kk, jn);
    } else if (avail >= 4) {
      step = 4;
      tile_rows<4, NV>(a, a_si, a_sl, b0, b_rs, c, c_rs, kk, jn);
    } else if (avail >= 2) {
      step = 2;
      tile_rows<2, NV>(a, a_si, a_sl, b0, b_rs, c, c_rs, kk, jn);
    } else {
      step = 1;
      tile_rows<1, NV>(a, a_si, a_sl, b0, b_rs, c, c_rs, kk, jn);
    }
    i += step;
  }
}

inline void rows_block_nv(const float* A, std::int64_t a_si, std::int64_t a_sl,
                          const float* b0, std::int64_t b_rs, float* C,
                          std::int64_t c_rs, std::int64_t r0, std::int64_t r1,
                          std::int64_t kk, std::int64_t jn, int mr, int nv) {
  if (nv >= 4)
    rows_block<4>(A, a_si, a_sl, b0, b_rs, C, c_rs, r0, r1, kk, jn, mr);
  else if (nv >= 2)
    rows_block<2>(A, a_si, a_sl, b0, b_rs, C, c_rs, r0, r1, kk, jn, mr);
  else
    rows_block<1>(A, a_si, a_sl, b0, b_rs, C, c_rs, r0, r1, kk, jn, mr);
}

// ---- nn / tn strip driver: no-pack fast path + packed panels ------------
//
// a(i, l) = A[i*a_si + l*a_sl]; nn passes (k, 1), tn passes (1, m). Small
// shapes (k*n < pack_min, or strips shorter than one register tile) stream B
// in place — the per-batch conv GEMMs take this path and never pay a copy.
// Large shapes copy kc x nc panels of B into the 64-byte-aligned thread-
// local pack buffer, rows padded to the vector width, so the l loop streams
// contiguous cache-resident lines; when the strip's A volume clears
// pack_min_a, the A panel for the k slice is also copied, into row-major
// k-contiguous form (slot-4 buffer), so tn's stride-m broadcasts become unit
// stride. The k slices run in the outer loop so one A panel serves every
// column block. All panels ascend in k and every copy is value-preserving,
// so the per-element FMA chain is the same one the no-pack path runs —
// pack decisions and loop order can never change a result bit.
inline void strip_nn_tn(const float* A, std::int64_t a_si, std::int64_t a_sl,
                        const float* B, float* C, std::int64_t i0,
                        std::int64_t i1, std::int64_t k, std::int64_t n,
                        const GemmTiles& t) {
  constexpr int W = V::W;
  const int mr = t.mr > 0 ? t.mr : 4;
  const int nv = t.nv > 0 ? t.nv : 2;
  const std::int64_t rows = i1 - i0;
  const bool pack = k * n >= t.pack_min && rows >= mr && k > 1;
  if (!pack) {
    rows_block_nv(A, a_si, a_sl, B, n, C, n, i0, i1, k, n, mr, nv);
    return;
  }
  const bool pack_a = rows * k >= t.pack_min_a;
  const std::int64_t nc = t.nc > W ? t.nc : W;
  const std::int64_t kc = t.kc > 1 ? t.kc : 1;
  for (std::int64_t pc = 0; pc < k; pc += kc) {
    const std::int64_t kcb = k - pc < kc ? k - pc : kc;
    // A operand for this k slice: in place, or the packed panel with rows
    // renumbered to [0, rows) and k contiguous.
    const float* a0 = A + pc * a_sl;
    std::int64_t as_i = a_si, as_l = a_sl, r0 = i0, r1 = i1;
    float* c0 = C;
    if (pack_a) {
      float* Q = pack_buffer_a(rows * kcb);
      for (std::int64_t r = 0; r < rows; ++r) {
        const float* src = A + (i0 + r) * a_si + pc * a_sl;
        float* dst = Q + r * kcb;
        for (std::int64_t l = 0; l < kcb; ++l) dst[l] = src[l * a_sl];
      }
      note_packed_a_panel();
      a0 = Q;
      as_i = kcb;
      as_l = 1;
      r0 = 0;
      r1 = rows;
      c0 = C + i0 * n;
    }
    for (std::int64_t jc = 0; jc < n; jc += nc) {
      const std::int64_t ncb = n - jc < nc ? n - jc : nc;
      const std::int64_t pad = (ncb + W - 1) / W * W;
      float* P = pack_buffer(kcb * pad);
      for (std::int64_t l = 0; l < kcb; ++l) {
        const float* src = B + (pc + l) * n + jc;
        float* dst = P + l * pad;
        for (std::int64_t j = 0; j < ncb; ++j) dst[j] = src[j];
        for (std::int64_t j = ncb; j < pad; ++j) dst[j] = 0.0f;
      }
      note_packed_panel();
      rows_block_nv(a0, as_i, as_l, P, pad, c0 + jc, n, r0, r1, kcb, ncb, mr,
                    nv);
    }
  }
}

// ---- nt: lane-split double-accumulator dot kernel -----------------------
//
// One register tile of MRD x NRD independent dot products: lane t of each
// accumulator owns the l ≡ t (mod DW) terms, widened to double exactly like
// the scalar kernel's promotion; the horizontal sum runs in fixed lane
// order and the k tail is added scalar, ascending. Only DW (fixed per
// variant) shapes the result — the tile grouping never does.
template <int MRD, int NRD>
inline void nt_tile(const float* A, const float* B, float* C, std::int64_t i,
                    std::int64_t j, std::int64_t k, std::int64_t n) {
  constexpr int DW = V::DW;
  const float* a[MRD];
  const float* b[NRD];
  for (int r = 0; r < MRD; ++r) a[r] = A + (i + r) * k;
  for (int c = 0; c < NRD; ++c) b[c] = B + (j + c) * k;
  typename V::vd acc[MRD][NRD];
  for (int r = 0; r < MRD; ++r)
    for (int c = 0; c < NRD; ++c) acc[r][c] = V::dzero();
  std::int64_t l = 0;
  for (; l + DW <= k; l += DW) {
    typename V::vd av[MRD], bv[NRD];
    for (int r = 0; r < MRD; ++r) av[r] = V::dload_cvt(a[r] + l);
    for (int c = 0; c < NRD; ++c) bv[c] = V::dload_cvt(b[c] + l);
    for (int r = 0; r < MRD; ++r)
      for (int c = 0; c < NRD; ++c)
        acc[r][c] = V::dfma(av[r], bv[c], acc[r][c]);
  }
  for (int r = 0; r < MRD; ++r)
    for (int c = 0; c < NRD; ++c) {
      double s = V::dhsum_seq(acc[r][c]);
      for (std::int64_t lt = l; lt < k; ++lt)
        s += static_cast<double>(a[r][lt]) * static_cast<double>(b[c][lt]);
      C[(i + r) * n + j + c] += static_cast<float>(s);
    }
}

inline void strip_nt(const float* A, const float* B, float* C, std::int64_t i0,
                     std::int64_t i1, std::int64_t m, std::int64_t k,
                     std::int64_t n, const GemmTiles& t) {
  (void)m;
  (void)t;
  constexpr int MRD = V::kNtRows;
  constexpr int NRD = V::kNtCols;
  std::int64_t i = i0;
  for (; i + MRD <= i1; i += MRD) {
    std::int64_t j = 0;
    for (; j + NRD <= n; j += NRD) nt_tile<MRD, NRD>(A, B, C, i, j, k, n);
    for (; j < n; ++j) nt_tile<MRD, 1>(A, B, C, i, j, k, n);
  }
  for (; i < i1; ++i) {
    std::int64_t j = 0;
    for (; j + NRD <= n; j += NRD) nt_tile<1, NRD>(A, B, C, i, j, k, n);
    for (; j < n; ++j) nt_tile<1, 1>(A, B, C, i, j, k, n);
  }
}

// ---- strip-kernel entry points (StripKernels signature) -----------------

inline void simd_nn(const float* A, const float* B, float* C, std::int64_t i0,
                    std::int64_t i1, std::int64_t m, std::int64_t k,
                    std::int64_t n, const GemmTiles& t) {
  (void)m;
  strip_nn_tn(A, k, 1, B, C, i0, i1, k, n, t);
}

inline void simd_tn(const float* A, const float* B, float* C, std::int64_t i0,
                    std::int64_t i1, std::int64_t m, std::int64_t k,
                    std::int64_t n, const GemmTiles& t) {
  strip_nn_tn(A, 1, m, B, C, i0, i1, k, n, t);
}
