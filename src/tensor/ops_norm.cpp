#include <cmath>
#include <stdexcept>

#include "common/check.h"
#include "common/sanitize.h"
#include "tensor/ops.h"

namespace mfa::ops {

Tensor batch_norm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                    Tensor& running_mean, Tensor& running_var, bool training,
                    float momentum, float eps) {
  const sanitize::OpScope op_scope("batch_norm2d");
  MFA_CHECK_EQ(x.dim(), 4) << " batch_norm2d expects NCHW, got "
                           << shape_str(x.shape());
  const std::int64_t N = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  MFA_CHECK(gamma.numel() == C && beta.numel() == C &&
            running_mean.numel() == C && running_var.numel() == C)
      << " batch_norm2d: parameter size disagrees with C of "
      << shape_str(x.shape());
  const std::int64_t M = N * H * W;  // reduction size per channel

  // Per-channel statistics used for this pass.
  // Pool-backed and captured by value below: the closure shares the block
  // (refcount) instead of copying, and both buffers recycle once the tape
  // node dies.
  tensor::Storage mean = tensor::Storage::full(C, 0.0f);
  tensor::Storage inv_std = tensor::Storage::full(C, 0.0f);
  const float* xv = x.data();
  if (training) {
    for (std::int64_t c = 0; c < C; ++c) {
      double acc = 0.0;
      for (std::int64_t n = 0; n < N; ++n) {
        const float* plane = xv + (n * C + c) * H * W;
        for (std::int64_t i = 0; i < H * W; ++i) acc += plane[i];
      }
      const double mu = acc / static_cast<double>(M);
      double var = 0.0;
      for (std::int64_t n = 0; n < N; ++n) {
        const float* plane = xv + (n * C + c) * H * W;
        for (std::int64_t i = 0; i < H * W; ++i) {
          const double d = plane[i] - mu;
          var += d * d;
        }
      }
      var /= static_cast<double>(M);
      mean[static_cast<size_t>(c)] = static_cast<float>(mu);
      inv_std[static_cast<size_t>(c)] =
          static_cast<float>(1.0 / std::sqrt(var + eps));
      // Update running stats (not part of the tape).
      running_mean.data()[c] =
          (1.0f - momentum) * running_mean.data()[c] + momentum * static_cast<float>(mu);
      running_var.data()[c] =
          (1.0f - momentum) * running_var.data()[c] + momentum * static_cast<float>(var);
    }
  } else {
    for (std::int64_t c = 0; c < C; ++c) {
      mean[static_cast<size_t>(c)] = running_mean.data()[c];
      inv_std[static_cast<size_t>(c)] =
          1.0f / std::sqrt(running_var.data()[c] + eps);
    }
  }

  Tensor out = Tensor::make_result(
      x.shape(), {x, gamma, beta},
      [x, gamma, beta, mean, inv_std, N, C, H, W, M,
       training](detail::TensorImpl& o) {
        auto xi = x.impl();
        auto gi = gamma.impl();
        auto bi = beta.impl();
        const float* go = o.grad.data();
        const float* xvv = xi->data.data();
        if (gi->requires_grad) gi->ensure_grad();
        if (bi->requires_grad) bi->ensure_grad();
        if (xi->requires_grad) xi->ensure_grad();
        for (std::int64_t c = 0; c < C; ++c) {
          const float mu = mean[static_cast<size_t>(c)];
          const float istd = inv_std[static_cast<size_t>(c)];
          const float gam = gi->data[static_cast<size_t>(c)];
          // Channel-wise sums over the batch.
          double sum_g = 0.0, sum_gx = 0.0;
          for (std::int64_t n = 0; n < N; ++n) {
            const float* gp = go + (n * C + c) * H * W;
            const float* xp = xvv + (n * C + c) * H * W;
            for (std::int64_t i = 0; i < H * W; ++i) {
              sum_g += gp[i];
              sum_gx += static_cast<double>(gp[i]) * (xp[i] - mu) * istd;
            }
          }
          if (gi->requires_grad)
            gi->grad[static_cast<size_t>(c)] += static_cast<float>(sum_gx);
          if (bi->requires_grad)
            bi->grad[static_cast<size_t>(c)] += static_cast<float>(sum_g);
          if (!xi->requires_grad) continue;
          const float mean_g = static_cast<float>(sum_g / M);
          const float mean_gx = static_cast<float>(sum_gx / M);
          for (std::int64_t n = 0; n < N; ++n) {
            const float* gp = go + (n * C + c) * H * W;
            const float* xp = xvv + (n * C + c) * H * W;
            float* dxp = xi->grad.data() + (n * C + c) * H * W;
            for (std::int64_t i = 0; i < H * W; ++i) {
              const float xhat = (xp[i] - mu) * istd;
              if (training) {
                dxp[i] += gam * istd * (gp[i] - mean_g - xhat * mean_gx);
              } else {
                dxp[i] += gam * istd * gp[i];
              }
            }
          }
        }
      });

  float* ov = out.data();
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c) {
      const float mu = mean[static_cast<size_t>(c)];
      const float istd = inv_std[static_cast<size_t>(c)];
      const float gam = gamma.data()[c];
      const float bet = beta.data()[c];
      const float* xp = xv + (n * C + c) * H * W;
      float* op = ov + (n * C + c) * H * W;
      for (std::int64_t i = 0; i < H * W; ++i)
        op[i] = (xp[i] - mu) * istd * gam + bet;
    }
  return out;
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  const sanitize::OpScope op_scope("layer_norm");
  const auto nd = x.dim();
  MFA_CHECK_GE(nd, 1) << " layer_norm on " << shape_str(x.shape());
  const std::int64_t D = x.size(nd - 1);
  const std::int64_t rows = x.numel() / D;
  MFA_CHECK(gamma.numel() == D && beta.numel() == D)
      << " layer_norm: gamma " << shape_str(gamma.shape()) << " / beta "
      << shape_str(beta.shape()) << " must match last dim of "
      << shape_str(x.shape());

  tensor::Storage mean = tensor::Storage::full(rows, 0.0f);
  tensor::Storage inv_std = tensor::Storage::full(rows, 0.0f);
  const float* xv = x.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = xv + r * D;
    double acc = 0.0;
    for (std::int64_t i = 0; i < D; ++i) acc += row[i];
    const double mu = acc / static_cast<double>(D);
    double var = 0.0;
    for (std::int64_t i = 0; i < D; ++i) {
      const double d = row[i] - mu;
      var += d * d;
    }
    var /= static_cast<double>(D);
    mean[static_cast<size_t>(r)] = static_cast<float>(mu);
    inv_std[static_cast<size_t>(r)] =
        static_cast<float>(1.0 / std::sqrt(var + eps));
  }

  Tensor out = Tensor::make_result(
      x.shape(), {x, gamma, beta},
      [x, gamma, beta, mean, inv_std, rows, D](detail::TensorImpl& o) {
        auto xi = x.impl();
        auto gi = gamma.impl();
        auto bi = beta.impl();
        const float* go = o.grad.data();
        const float* xvv = xi->data.data();
        if (gi->requires_grad) gi->ensure_grad();
        if (bi->requires_grad) bi->ensure_grad();
        if (xi->requires_grad) xi->ensure_grad();
        for (std::int64_t r = 0; r < rows; ++r) {
          const float mu = mean[static_cast<size_t>(r)];
          const float istd = inv_std[static_cast<size_t>(r)];
          const float* grow = go + r * D;
          const float* xrow = xvv + r * D;
          double sum_dg = 0.0, sum_dgx = 0.0;
          for (std::int64_t i = 0; i < D; ++i) {
            const float xhat = (xrow[i] - mu) * istd;
            const float dg = grow[i] * gi->data[static_cast<size_t>(i)];
            sum_dg += dg;
            sum_dgx += static_cast<double>(dg) * xhat;
            if (gi->requires_grad)
              gi->grad[static_cast<size_t>(i)] += grow[i] * xhat;
            if (bi->requires_grad) bi->grad[static_cast<size_t>(i)] += grow[i];
          }
          if (!xi->requires_grad) continue;
          const float mean_dg = static_cast<float>(sum_dg / D);
          const float mean_dgx = static_cast<float>(sum_dgx / D);
          float* dxrow = xi->grad.data() + r * D;
          for (std::int64_t i = 0; i < D; ++i) {
            const float xhat = (xrow[i] - mu) * istd;
            const float dg = grow[i] * gi->data[static_cast<size_t>(i)];
            dxrow[i] += istd * (dg - mean_dg - xhat * mean_dgx);
          }
        }
      });

  float* ov = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float mu = mean[static_cast<size_t>(r)];
    const float istd = inv_std[static_cast<size_t>(r)];
    const float* xrow = xv + r * D;
    float* orow = ov + r * D;
    for (std::int64_t i = 0; i < D; ++i)
      orow[i] = (xrow[i] - mu) * istd * gamma.data()[i] + beta.data()[i];
  }
  return out;
}

}  // namespace mfa::ops
