#include "tensor/tape.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/sanitize.h"
#include "common/thread_pool.h"

namespace mfa::tensor {

namespace {

// Level dispatch heuristic: a level fans out across the pool only when the
// average task carries at least this many output floats — below that the
// submit/claim overhead exceeds the closure work. Derived from the graph
// alone, so the decision (and therefore the schedule) is identical for every
// MFA_THREADS; and since every schedule is bit-identical anyway, this is a
// pure throughput knob.
constexpr std::int64_t kMinParallelTaskFloats = 2048;

bool env_flag_off(const char* name) {
  const char* v = std::getenv(name);
  if (!v) return false;
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
         std::strcmp(v, "false") == 0;
}

Executor env_default_executor() {
  static const Executor e = [] {
    const char* v = std::getenv("MFA_EXEC");
    if (!v || std::strcmp(v, "graph") == 0) return Executor::kGraph;
    if (std::strcmp(v, "seq") == 0) return Executor::kSeq;
    log::warn("MFA_EXEC=%s is not 'seq' or 'graph'; using graph", v);
    return Executor::kGraph;
  }();
  return e;
}

// Process-wide counters exported to mfa::obs (leaky singleton, same rationale
// as the pool/sanitizer registries: tapes are thread_local and may die on
// worker-thread exit, so the obs source must outlive them all).
struct GlobalStats {
  std::atomic<std::int64_t> nodes_recorded{0};
  std::atomic<std::int64_t> backwards{0};
  std::atomic<std::int64_t> graph_backwards{0};
  std::atomic<std::int64_t> fused_nodes{0};
  std::atomic<std::int64_t> parallel_levels{0};
  std::atomic<std::int64_t> parallel_tasks{0};
  std::atomic<std::int64_t> arena_hits{0};
  std::atomic<std::int64_t> arena_misses{0};

  GlobalStats() {
    obs::Registry::instance().register_source("tape", [this] {
      return std::vector<std::pair<std::string, double>>{
          {"nodes_recorded", static_cast<double>(nodes_recorded.load())},
          {"backwards", static_cast<double>(backwards.load())},
          {"graph_backwards", static_cast<double>(graph_backwards.load())},
          {"fused_nodes", static_cast<double>(fused_nodes.load())},
          {"parallel_levels", static_cast<double>(parallel_levels.load())},
          {"parallel_tasks", static_cast<double>(parallel_tasks.load())},
          {"arena_hits", static_cast<double>(arena_hits.load())},
          {"arena_misses", static_cast<double>(arena_misses.load())},
      };
    });
  }
};

GlobalStats& gstats() {
  static GlobalStats* s = new GlobalStats;
  return *s;
}

int bucket_index_for(std::int64_t n) {
  // Smallest power-of-two bucket holding n floats, as an index into the
  // arena's ring array; -1 when the request belongs to the pool (oversize).
  int p = 5;  // kMinBucket
  while ((std::int64_t{1} << p) < n) {
    ++p;
    if (p > 26) return -1;  // kMaxBucket
  }
  return p - 5;
}

}  // namespace

// ---------------------------------------------------------------------------
// TapeArena

bool TapeArena::try_acquire(std::int64_t n, Storage& out) {
  const int b = bucket_index_for(n);
  if (b < 0) return false;
  Ring& r = rings_[b];
  const std::size_t sz = r.entries.size();
  for (std::size_t k = 0; k < sz; ++k) {
    std::size_t j = r.cursor + k;
    if (j >= sz) j -= sz;
    Storage& e = r.entries[j];
    // The arena holds exactly one reference to a parked entry; any extra
    // reference is an outstanding tensor handle (possibly escaped from a
    // previous step), which pins the entry until it drops. The refcount is
    // atomic, so a handle released concurrently on another thread is at
    // worst missed this probe — never handed out twice.
    if (e.shared()) continue;
    r.cursor = static_cast<std::uint32_t>(j + 1 == sz ? 0 : j + 1);
    if (r.touched_stamp[j] != r.step_token) {
      r.touched_stamp[j] = r.step_token;
      ++r.used_this_step;
    }
    out = e.share_prefix(n);
    std::fill(out.begin(), out.end(), 0.0f);
    gstats().arena_hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (sz >= kMaxEntries) return false;
  // Grow the ring: one pooled bucket-capacity block, zero-filled (so the
  // prefix handout below needs no extra fill). This is the warm-up path; a
  // steady-state step reuses parked entries and never reaches here.
  const std::int64_t cap = std::int64_t{1} << (kMinBucket + b);
  r.entries.push_back(Storage::full(cap, 0.0f));
  r.touched_stamp.push_back(r.step_token);
  ++r.used_this_step;
  out = r.entries.back().share_prefix(n);
  gstats().arena_misses.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TapeArena::end_step() {
  for (Ring& r : rings_) {
    if (r.entries.empty() && r.used_prev_step == 0) continue;
    // Keep the high-water mark of the last two steps; give back the rest
    // (pinned tail entries stay until their escaped handles drop).
    const std::uint32_t keep = std::max(r.used_this_step, r.used_prev_step);
    while (r.entries.size() > keep && !r.entries.back().shared()) {
      r.entries.pop_back();
      r.touched_stamp.pop_back();
    }
    r.used_prev_step = r.used_this_step;
    r.used_this_step = 0;
    r.cursor = 0;
    if (++r.step_token == 0) {
      std::fill(r.touched_stamp.begin(), r.touched_stamp.end(), 0u);
      r.step_token = 1;
    }
  }
}

void TapeArena::clear() {
  for (Ring& r : rings_) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < r.entries.size(); ++i) {
      if (!r.entries[i].shared()) continue;  // pinned: must stay referenced
      if (w != i) {
        r.entries[w] = std::move(r.entries[i]);
        r.touched_stamp[w] = r.touched_stamp[i];
      }
      ++w;
    }
    r.entries.resize(w);
    r.touched_stamp.resize(w);
    r.cursor = 0;
    r.used_this_step = 0;
    r.used_prev_step = 0;
  }
}

std::int64_t TapeArena::held_floats() const {
  std::int64_t total = 0;
  for (const Ring& r : rings_)
    for (const Storage& e : r.entries)
      total += static_cast<std::int64_t>(e.size());
  return total;
}

std::int64_t TapeArena::entries() const {
  std::int64_t total = 0;
  for (const Ring& r : rings_)
    total += static_cast<std::int64_t>(r.entries.size());
  return total;
}

void TapeArena::verify_guards() const {
  for (const Ring& r : rings_)
    for (const Storage& e : r.entries) e.verify_guards();
}

// ---------------------------------------------------------------------------
// Tape — recording

Tape& Tape::current() {
  thread_local Tape tape;
  return tape;
}

Tape::Tape()
    : executor_(env_default_executor()),
      fusion_(!env_flag_off("MFA_FUSE")),
      arena_on_(!env_flag_off("MFA_ARENA")) {}

std::int32_t Tape::record(const char* op_name,
                          std::shared_ptr<mfa::detail::TensorImpl> out,
                          const std::vector<Tensor>& inputs,
                          std::function<void(mfa::detail::TensorImpl&)> fn,
                          unsigned flags) {
  MFA_CHECK(!executing_)
      << " make_result while backward() is executing: taped ops inside a "
         "backward closure are not supported";
  const auto id = static_cast<std::int32_t>(nodes_.size());
  const auto parent_begin = static_cast<std::uint32_t>(parents_.size());
  for (const auto& in : inputs) {
    if (!in.defined()) continue;
    auto impl = in.impl();
    // An input recorded before the last retire is a leaf of this graph: its
    // producing closure is gone, so gradient flow stops there (it keeps the
    // gradient scattered into it, like any parameter).
    const std::int32_t parent_node =
        (impl->tape_epoch == epoch_ && impl->tape_id >= 0) ? impl->tape_id
                                                           : -1;
    parents_.push_back({std::move(impl), parent_node});
  }
  nodes_.push_back(Node{op_name, std::move(out), std::move(fn), parent_begin,
                        static_cast<std::uint32_t>(parents_.size()), flags});
  gstats().nodes_recorded.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Storage Tape::intermediate_storage(std::int64_t n, bool recording) {
  if (n > 0 && arena_on_ && (recording || arena_scope_depth_ > 0) &&
      StoragePool::instance().enabled()) {
    Storage s;
    if (arena_.try_acquire(n, s)) return s;
  }
  Storage s;
  s.assign(n, 0.0f);
  return s;
}

void Tape::begin_arena_scope() { ++arena_scope_depth_; }

void Tape::end_arena_scope() {
  MFA_CHECK_GT(arena_scope_depth_, 0) << " unbalanced ArenaScope";
  if (--arena_scope_depth_ == 0 && !executing_) arena_.end_step();
}

// ---------------------------------------------------------------------------
// Tape — planning

void Tape::plan_order(const std::int32_t* roots, std::size_t num_roots) {
  const std::size_t node_count = nodes_.size();
  plan_grow(visit_, node_count);
  if (++visit_token_ == 0) {
    std::fill(visit_.begin(), visit_.end(), 0u);
    visit_token_ = 1;
  }
  plan_grow(order_, node_count);
  plan_grow(stack_, node_count);
  // Iterative post-order DFS over node ids, parents in op-input order — the
  // exact traversal the closure-web walker used, so the reversed result
  // preserves its gradient accumulation order bit for bit. Leaves carry no
  // closure and are skipped; their relative position never influenced the
  // order of real nodes (each was a size-1 subtree).
  //
  // Multi-root backward restarts the DFS per root over the same visited set
  // and reverses the concatenated post-orders. That is a topological order
  // of the union DAG: for any consumer->parent edge the parent finishes
  // first (a parent still on the stack would imply a cycle), so it lands
  // earlier in post-order and later in execution order, exactly as needed.
  std::size_t sp = 0;
  std::size_t produced = 0;
  for (std::size_t r = 0; r < num_roots; ++r) {
    const std::int32_t root_id = roots[r];
    if (visit_[static_cast<std::size_t>(root_id)] == visit_token_) continue;
    visit_[static_cast<std::size_t>(root_id)] = visit_token_;
    stack_[sp++] = DfsFrame{root_id, 0};
    while (sp > 0) {
      DfsFrame& f = stack_[sp - 1];
      const Node& n = nodes_[static_cast<std::size_t>(f.node)];
      const std::uint32_t parent_count = n.parent_end - n.parent_begin;
      bool descended = false;
      while (f.next < parent_count) {
        const ParentRef& pr = parents_[n.parent_begin + f.next];
        ++f.next;
        const std::int32_t pn = pr.node;
        if (pn < 0 || visit_[static_cast<std::size_t>(pn)] == visit_token_)
          continue;
        visit_[static_cast<std::size_t>(pn)] = visit_token_;
        stack_[sp++] = DfsFrame{pn, 0};
        descended = true;
        break;
      }
      if (descended) continue;
      order_[produced++] = f.node;
      --sp;
    }
  }
  // Reverse post-order = execution order (roots first).
  order_.resize(produced);
  std::reverse(order_.begin(), order_.end());
}

void Tape::plan_schedule() {
  const std::size_t m = order_.size();
  const std::size_t node_count = nodes_.size();

  // Reachable-consumer counts (an unreachable recorded node never runs, so
  // it must not block fusion of the nodes it consumes).
  plan_grow(consumers_, node_count);
  for (const std::int32_t id : order_)
    consumers_[static_cast<std::size_t>(id)] = 0;
  for (const std::int32_t id : order_) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    for (std::uint32_t p = n.parent_begin; p < n.parent_end; ++p)
      if (parents_[p].node >= 0)
        ++consumers_[static_cast<std::size_t>(parents_[p].node)];
  }

  // Fusion: merge an elementwise node into its sole consumer's task when the
  // two are adjacent in execution order. Tasks stay contiguous runs of
  // order_, so contracting them cannot create a cycle — every dependency
  // still points from a lower task to a higher one.
  plan_grow(task_of_node_, node_count);
  plan_grow(task_begin_, m + 1);
  std::uint32_t task_count = 0;
  std::int64_t fused = 0;
  std::size_t i = 0;
  while (i < m) {
    task_begin_[task_count] = static_cast<std::uint32_t>(i);
    task_of_node_[static_cast<std::size_t>(order_[i])] = task_count;
    while (fusion_ && i + 1 < m) {
      const auto cur = static_cast<std::size_t>(order_[i]);
      const auto nxt = static_cast<std::size_t>(order_[i + 1]);
      if (!(nodes_[cur].flags & Tensor::kOpFlagElementwise)) break;
      if (!(nodes_[nxt].flags & Tensor::kOpFlagElementwise)) break;
      if (consumers_[nxt] != 1) break;
      // The sole consumer must be the task tail itself (true chain link).
      bool tail_consumes_next = false;
      const Node& tail = nodes_[cur];
      for (std::uint32_t p = tail.parent_begin; p < tail.parent_end; ++p)
        if (parents_[p].node == order_[i + 1]) {
          tail_consumes_next = true;
          break;
        }
      if (!tail_consumes_next) break;
      ++i;
      task_of_node_[nxt] = task_count;
      ++fused;
    }
    ++i;
    ++task_count;
  }
  task_begin_[task_count] = static_cast<std::uint32_t>(m);

  // Level assignment in one ascending pass. Two edge families, both embedded
  // in execution order (edge tail always a lower task):
  //  * chain edges — consecutive consumers of a shared parent tensor (leaf
  //    or node) serialize in execution order, preserving the sequential
  //    accumulation order into that parent's grad and making same-level
  //    tasks write-disjoint;
  //  * data edges — a producer task runs only after every consumer task has
  //    scattered into its output's grad (accumulated forward into
  //    task_min_level_, since producers execute later in backward).
  plan_grow(task_level_, task_count);
  plan_grow(task_min_level_, task_count);
  plan_grow(task_weight_, task_count);
  for (std::uint32_t t = 0; t < task_count; ++t) task_min_level_[t] = 0;
  ++plan_token_;
  std::uint32_t max_level = 0;
  for (std::uint32_t t = 0; t < task_count; ++t) {
    std::uint32_t lvl = task_min_level_[t];
    std::int64_t weight = 0;
    for (std::uint32_t pos = task_begin_[t]; pos < task_begin_[t + 1]; ++pos) {
      const Node& n = nodes_[static_cast<std::size_t>(order_[pos])];
      weight += static_cast<std::int64_t>(n.out->data.size());
      for (std::uint32_t p = n.parent_begin; p < n.parent_end; ++p) {
        mfa::detail::TensorImpl* pi = parents_[p].impl.get();
        // A parent that doesn't require grad is never written by any
        // closure (every op guards its scatter on requires_grad), so its
        // consumers need no serialisation — e.g. a non-grad input feature
        // map feeding several branches must not chain them.
        if (!pi->requires_grad) continue;
        if (pi->plan_stamp == plan_token_) {
          const std::int32_t prev = pi->plan_last;
          if (prev != static_cast<std::int32_t>(t) &&
              task_level_[static_cast<std::uint32_t>(prev)] >= lvl)
            lvl = task_level_[static_cast<std::uint32_t>(prev)] + 1;
        } else {
          pi->plan_stamp = plan_token_;
        }
        pi->plan_last = static_cast<std::int32_t>(t);
      }
    }
    task_level_[t] = lvl;
    task_weight_[t] = weight;
    if (lvl > max_level) max_level = lvl;
    for (std::uint32_t pos = task_begin_[t]; pos < task_begin_[t + 1]; ++pos) {
      const Node& n = nodes_[static_cast<std::size_t>(order_[pos])];
      for (std::uint32_t p = n.parent_begin; p < n.parent_end; ++p) {
        if (parents_[p].node < 0) continue;
        const std::uint32_t pt =
            task_of_node_[static_cast<std::size_t>(parents_[p].node)];
        if (pt != t && task_min_level_[pt] <= lvl) task_min_level_[pt] = lvl + 1;
      }
    }
  }

  // Counting sort of tasks into levels (stable: ascending task order within
  // a level, which run_graph's sequential fallback then executes in plain
  // execution order).
  const std::uint32_t level_total = max_level + 1;
  plan_grow(level_start_, level_total + 1);
  for (std::uint32_t l = 0; l <= level_total; ++l) level_start_[l] = 0;
  for (std::uint32_t t = 0; t < task_count; ++t)
    ++level_start_[task_level_[t] + 1];
  for (std::uint32_t l = 1; l <= level_total; ++l)
    level_start_[l] += level_start_[l - 1];
  plan_grow(level_cursor_, level_total);
  for (std::uint32_t l = 0; l < level_total; ++l)
    level_cursor_[l] = level_start_[l];
  plan_grow(level_tasks_, task_count);
  for (std::uint32_t t = 0; t < task_count; ++t)
    level_tasks_[level_cursor_[task_level_[t]]++] = t;

  last_plan_ = TapePlanStats{};
  last_plan_.nodes = static_cast<std::int64_t>(m);
  last_plan_.tasks = static_cast<std::int64_t>(task_count);
  last_plan_.fused_nodes = fused;
  last_plan_.levels = static_cast<std::int64_t>(level_total);
  gstats().fused_nodes.fetch_add(fused, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Tape — execution

void Tape::scan_grad_finite(mfa::detail::TensorImpl* impl) const {
  bool ok = true;
  for (const float v : impl->grad)
    if (!std::isfinite(v)) {
      ok = false;
      break;
    }
  if (ok) return;
  const std::string what = log::format(
      "backward() gradient of tensor shape %s (written by tape node #%lld)",
      shape_str(impl->shape).c_str(),
      static_cast<long long>(impl->last_grad_writer));
  check::check_all_finite(impl->grad.data(),
                          static_cast<std::int64_t>(impl->grad.size()),
                          what.c_str());
}

void Tape::run_node(std::size_t pos) {
  Node& n = nodes_[static_cast<std::size_t>(order_[pos])];
  {
    // Backtrace-lite for mfa::sanitize: violations raised inside this
    // closure report the op that recorded it plus its position in the
    // execution order (identical for MFA_EXEC=seq and =graph).
    const sanitize::OpScope op_scope(n.op_name ? n.op_name : "backward",
                                     static_cast<std::int64_t>(pos));
    n.fn(*n.out);
  }
  if (MFA_FAULT_POINT("tensor.nan_grad") && n.parent_end > n.parent_begin) {
    auto& pg = parents_[n.parent_begin].impl->grad;
    if (!pg.empty()) pg[0] = std::numeric_limits<float>::quiet_NaN();
  }
}

void Tape::run_seq(bool scan_grads) {
  if (scan_grads) {
    // Reset the writer attribution stamped by a previous walk, and collect
    // the reachable leaves (deduplicated via plan stamps) so their final
    // gradients are scanned after the walk — a leaf keeps its gradient for
    // the optimizer, so a NaN scattered into it must still be caught.
    ++plan_token_;
    leaves_.clear();
    for (const std::int32_t id : order_) {
      const Node& n = nodes_[static_cast<std::size_t>(id)];
      n.out->last_grad_writer = -1;
      for (std::uint32_t p = n.parent_begin; p < n.parent_end; ++p) {
        if (parents_[p].node >= 0) continue;
        mfa::detail::TensorImpl* leaf = parents_[p].impl.get();
        if (leaf->plan_stamp == plan_token_) continue;
        leaf->plan_stamp = plan_token_;
        leaf->last_grad_writer = -1;
        leaves_.push_back(leaf);
      }
    }
  }
  const std::size_t m = order_.size();
  for (std::size_t pos = 0; pos < m; ++pos) {
    Node& n = nodes_[static_cast<std::size_t>(order_[pos])];
    // Dirty-set NaN/Inf guard: a node's gradient is final when the walk
    // reaches it (all consumers already ran), so it is scanned exactly once.
    if (scan_grads && !n.out->grad.empty()) scan_grad_finite(n.out.get());
    run_node(pos);
    if (scan_grads)
      for (std::uint32_t p = n.parent_begin; p < n.parent_end; ++p)
        parents_[p].impl->last_grad_writer = static_cast<std::int32_t>(pos);
    // The node is retired: its gradient was fully scattered into the
    // parents, and no later node reads it (reverse topo order), so the
    // buffer goes back to the pool now instead of when the tape retires.
    // Leaves keep their gradient for the optimizer.
    n.out->grad.reset();
  }
  if (scan_grads)
    for (mfa::detail::TensorImpl* leaf : leaves_)
      if (!leaf->grad.empty()) scan_grad_finite(leaf);
}

void Tape::run_task(std::uint32_t task) {
  for (std::uint32_t pos = task_begin_[task]; pos < task_begin_[task + 1];
       ++pos) {
    run_node(pos);
    nodes_[static_cast<std::size_t>(order_[pos])].out->grad.reset();
  }
}

void Tape::run_graph() {
  auto& pool = common::ThreadPool::instance();
  const std::size_t level_total = last_plan_.levels == 0
                                      ? 0
                                      : static_cast<std::size_t>(
                                            last_plan_.levels);
  for (std::size_t lvl = 0; lvl < level_total; ++lvl) {
    const std::uint32_t begin = level_start_[lvl];
    const std::uint32_t end = level_start_[lvl + 1];
    const std::uint32_t width = end - begin;
    bool fan_out = width >= 2 && pool.size() > 1;
    if (fan_out) {
      std::int64_t level_weight = 0;
      for (std::uint32_t j = begin; j < end; ++j)
        level_weight += task_weight_[level_tasks_[j]];
      fan_out = level_weight / width >= kMinParallelTaskFloats;
    }
    if (!fan_out) {
      for (std::uint32_t j = begin; j < end; ++j) run_task(level_tasks_[j]);
      continue;
    }
    // Same-level tasks are provably write-disjoint (chain edges split the
    // consumers of every shared tensor across levels), and each closure's
    // own parallel_for runs inline inside the worker — numerics equal the
    // sequential walk bit for bit.
    parallel_for(
        static_cast<std::int64_t>(width),
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i)
            run_task(level_tasks_[begin + static_cast<std::uint32_t>(i)]);
        },
        /*grain=*/1);
    ++last_plan_.parallel_levels;
    last_plan_.parallel_tasks += width;
  }
  gstats().parallel_levels.fetch_add(last_plan_.parallel_levels,
                                     std::memory_order_relaxed);
  gstats().parallel_tasks.fetch_add(last_plan_.parallel_tasks,
                                    std::memory_order_relaxed);
}

void Tape::retire() {
  nodes_.clear();
  parents_.clear();
  ++epoch_;
  arena_.end_step();
}

void Tape::execute_backward(
    const std::shared_ptr<mfa::detail::TensorImpl>& root) {
  root->ensure_grad();
  root->grad[0] = 1.0f;
  const bool on_tape =
      root->tape_id >= 0 && root->tape_epoch == epoch_ &&
      static_cast<std::size_t>(root->tape_id) < nodes_.size();
  if (!on_tape) {
    gstats().backwards.fetch_add(1, std::memory_order_relaxed);
    // Leaf root (parameter, detached tensor, or survivor of a retired
    // graph): d(root)/d(root) = 1 and nothing propagates. The recorded
    // graph, if any, stays live for a later backward from a taped root.
    return;
  }
  root_ids_.clear();
  root_ids_.push_back(root->tape_id);
  run_planned();
}

void Tape::execute_backward(
    const std::vector<std::shared_ptr<mfa::detail::TensorImpl>>& roots) {
  root_ids_.clear();
  for (const auto& root : roots) {
    // Seed with += (not =): the pass computes d(sum of roots)/dθ, and a
    // root listed twice contributes twice, matching the sum semantics.
    root->ensure_grad();
    root->grad[0] += 1.0f;
    const bool on_tape =
        root->tape_id >= 0 && root->tape_epoch == epoch_ &&
        static_cast<std::size_t>(root->tape_id) < nodes_.size();
    if (on_tape) root_ids_.push_back(root->tape_id);
  }
  if (root_ids_.empty()) {
    // Every root is a leaf: each got its seed, nothing propagates, and the
    // recorded graph (if any) stays live — same contract as the single-root
    // leaf case.
    gstats().backwards.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  run_planned();
}

void Tape::run_planned() {
  gstats().backwards.fetch_add(1, std::memory_order_relaxed);
  MFA_CHECK(!executing_) << " re-entrant backward()";
  executing_ = true;
  const bool scan_grads = check::finite_grad_checks_enabled();
  try {
    plan_order(root_ids_.data(), root_ids_.size());
    // Diagnostics pin the sequential walk: race tracking so declared-write
    // reports observe one canonical schedule (byte-identical across
    // MFA_EXEC), finite-grad scanning so NaN attribution follows the
    // documented single-scan walk order.
    const bool graph = executor_ == Executor::kGraph && !scan_grads &&
                       !sanitize::race_check_active();
    if (graph) {
      plan_schedule();
      gstats().graph_backwards.fetch_add(1, std::memory_order_relaxed);
      run_graph();
    } else {
      last_plan_ = TapePlanStats{};
      last_plan_.nodes = static_cast<std::int64_t>(order_.size());
      last_plan_.tasks = last_plan_.nodes;
      last_plan_.levels = last_plan_.nodes;
      run_seq(scan_grads);
    }
  } catch (...) {
    // Retire even on failure: closures up to the fault already scattered
    // partial gradients, the rest never will — the graph is unusable, and a
    // later forward must start from a clean tape (the FiniteGradGuard
    // recovery path in tests/test_check.cpp depends on this).
    executing_ = false;
    retire();
    throw;
  }
  executing_ = false;
  retire();
}

}  // namespace mfa::tensor
