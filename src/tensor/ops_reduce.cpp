#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/check.h"
#include "tensor/ops.h"

namespace mfa::ops {
namespace {

// Decomposes a shape around `dim` into [outer, d, inner] so reductions can be
// expressed as three nested loops over contiguous memory.
struct Split {
  std::int64_t outer = 1;
  std::int64_t d = 1;
  std::int64_t inner = 1;
};

Split split_at(const Tensor& a, std::int64_t& dim) {
  const auto nd = a.dim();
  if (dim < 0) dim += nd;
  MFA_CHECK_BOUNDS(dim, nd) << " reduce dim on " << shape_str(a.shape());
  Split s;
  for (std::int64_t d = 0; d < dim; ++d) s.outer *= a.size(d);
  s.d = a.size(dim);
  for (std::int64_t d = dim + 1; d < nd; ++d) s.inner *= a.size(d);
  return s;
}

Shape reduced_shape(const Tensor& a, std::int64_t dim, bool keepdim) {
  Shape out = a.shape();
  if (keepdim) {
    out[static_cast<size_t>(dim)] = 1;
  } else {
    out.erase(out.begin() + static_cast<std::ptrdiff_t>(dim));
    if (out.empty()) out = {1};
  }
  return out;
}

}  // namespace

Tensor sum(const Tensor& a) {
  Tensor out = Tensor::make_result({1}, {a}, [a](detail::TensorImpl& o) {
    auto ai = a.impl();
    if (!ai->requires_grad) return;
    ai->ensure_grad();
    const float g = o.grad[0];
    for (auto& v : ai->grad) v += g;
  });
  double acc = 0.0;
  const float* av = a.data();
  const auto n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += av[i];
  out.data()[0] = static_cast<float>(acc);
  return out;
}

Tensor mean(const Tensor& a) {
  return mul_scalar(sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor sum_dim(const Tensor& a, std::int64_t dim, bool keepdim) {
  const Split sp = split_at(a, dim);
  Tensor out = Tensor::make_result(
      reduced_shape(a, dim, keepdim), {a}, [a, sp](detail::TensorImpl& o) {
        auto ai = a.impl();
        if (!ai->requires_grad) return;
        ai->ensure_grad();
        const float* go = o.grad.data();
        float* ga = ai->grad.data();
        for (std::int64_t r = 0; r < sp.outer; ++r)
          for (std::int64_t j = 0; j < sp.d; ++j)
            for (std::int64_t k = 0; k < sp.inner; ++k)
              ga[(r * sp.d + j) * sp.inner + k] += go[r * sp.inner + k];
      });
  const float* av = a.data();
  float* ov = out.data();
  std::fill(ov, ov + out.numel(), 0.0f);
  for (std::int64_t r = 0; r < sp.outer; ++r)
    for (std::int64_t j = 0; j < sp.d; ++j)
      for (std::int64_t k = 0; k < sp.inner; ++k)
        ov[r * sp.inner + k] += av[(r * sp.d + j) * sp.inner + k];
  return out;
}

Tensor mean_dim(const Tensor& a, std::int64_t dim, bool keepdim) {
  const auto nd = a.dim();
  const std::int64_t d = dim < 0 ? dim + nd : dim;
  return mul_scalar(sum_dim(a, dim, keepdim),
                    1.0f / static_cast<float>(a.size(d)));
}

Tensor max_dim(const Tensor& a, std::int64_t dim, bool keepdim) {
  const Split sp = split_at(a, dim);
  // Record argmax positions for the backward scatter.
  auto arg = std::make_shared<std::vector<std::int64_t>>(
      static_cast<size_t>(sp.outer * sp.inner));
  Tensor out = Tensor::make_result(
      reduced_shape(a, dim, keepdim), {a}, [a, sp, arg](detail::TensorImpl& o) {
        auto ai = a.impl();
        if (!ai->requires_grad) return;
        ai->ensure_grad();
        const float* go = o.grad.data();
        float* ga = ai->grad.data();
        for (std::int64_t r = 0; r < sp.outer; ++r)
          for (std::int64_t k = 0; k < sp.inner; ++k) {
            const std::int64_t j = (*arg)[static_cast<size_t>(r * sp.inner + k)];
            ga[(r * sp.d + j) * sp.inner + k] += go[r * sp.inner + k];
          }
      });
  const float* av = a.data();
  float* ov = out.data();
  for (std::int64_t r = 0; r < sp.outer; ++r)
    for (std::int64_t k = 0; k < sp.inner; ++k) {
      float best = -std::numeric_limits<float>::infinity();
      std::int64_t bj = 0;
      for (std::int64_t j = 0; j < sp.d; ++j) {
        const float v = av[(r * sp.d + j) * sp.inner + k];
        if (v > best) {
          best = v;
          bj = j;
        }
      }
      ov[r * sp.inner + k] = best;
      (*arg)[static_cast<size_t>(r * sp.inner + k)] = bj;
    }
  return out;
}

std::vector<std::int64_t> argmax_dim(const Tensor& a, std::int64_t dim) {
  const Split sp = split_at(a, dim);
  std::vector<std::int64_t> out(static_cast<size_t>(sp.outer * sp.inner));
  const float* av = a.data();
  for (std::int64_t r = 0; r < sp.outer; ++r)
    for (std::int64_t k = 0; k < sp.inner; ++k) {
      float best = -std::numeric_limits<float>::infinity();
      std::int64_t bj = 0;
      for (std::int64_t j = 0; j < sp.d; ++j) {
        const float v = av[(r * sp.d + j) * sp.inner + k];
        if (v > best) {
          best = v;
          bj = j;
        }
      }
      out[static_cast<size_t>(r * sp.inner + k)] = bj;
    }
  return out;
}

Tensor softmax(const Tensor& a, std::int64_t dim) {
  const Split sp = split_at(a, dim);
  // Fused kernel: softmax backward is y * (g - sum(g*y)).
  Tensor out = Tensor::make_result(
      a.shape(), {a}, [a, sp](detail::TensorImpl& o) {
        auto ai = a.impl();
        if (!ai->requires_grad) return;
        ai->ensure_grad();
        const float* y = o.data.data();
        const float* go = o.grad.data();
        float* ga = ai->grad.data();
        for (std::int64_t r = 0; r < sp.outer; ++r)
          for (std::int64_t k = 0; k < sp.inner; ++k) {
            double dot = 0.0;
            for (std::int64_t j = 0; j < sp.d; ++j) {
              const auto ix = (r * sp.d + j) * sp.inner + k;
              dot += static_cast<double>(go[ix]) * y[ix];
            }
            for (std::int64_t j = 0; j < sp.d; ++j) {
              const auto ix = (r * sp.d + j) * sp.inner + k;
              ga[ix] += y[ix] * (go[ix] - static_cast<float>(dot));
            }
          }
      });
  const float* av = a.data();
  float* ov = out.data();
  for (std::int64_t r = 0; r < sp.outer; ++r)
    for (std::int64_t k = 0; k < sp.inner; ++k) {
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < sp.d; ++j)
        mx = std::max(mx, av[(r * sp.d + j) * sp.inner + k]);
      double z = 0.0;
      for (std::int64_t j = 0; j < sp.d; ++j) {
        const auto ix = (r * sp.d + j) * sp.inner + k;
        ov[ix] = std::exp(av[ix] - mx);
        z += ov[ix];
      }
      const float inv = static_cast<float>(1.0 / z);
      for (std::int64_t j = 0; j < sp.d; ++j)
        ov[(r * sp.d + j) * sp.inner + k] *= inv;
    }
  return out;
}

Tensor log_softmax(const Tensor& a, std::int64_t dim) {
  const Split sp = split_at(a, dim);
  // Backward: ga += g - exp(y) * sum(g).
  Tensor out = Tensor::make_result(
      a.shape(), {a}, [a, sp](detail::TensorImpl& o) {
        auto ai = a.impl();
        if (!ai->requires_grad) return;
        ai->ensure_grad();
        const float* y = o.data.data();
        const float* go = o.grad.data();
        float* ga = ai->grad.data();
        for (std::int64_t r = 0; r < sp.outer; ++r)
          for (std::int64_t k = 0; k < sp.inner; ++k) {
            double gs = 0.0;
            for (std::int64_t j = 0; j < sp.d; ++j)
              gs += go[(r * sp.d + j) * sp.inner + k];
            for (std::int64_t j = 0; j < sp.d; ++j) {
              const auto ix = (r * sp.d + j) * sp.inner + k;
              ga[ix] += go[ix] - std::exp(y[ix]) * static_cast<float>(gs);
            }
          }
      });
  const float* av = a.data();
  float* ov = out.data();
  for (std::int64_t r = 0; r < sp.outer; ++r)
    for (std::int64_t k = 0; k < sp.inner; ++k) {
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < sp.d; ++j)
        mx = std::max(mx, av[(r * sp.d + j) * sp.inner + k]);
      double z = 0.0;
      for (std::int64_t j = 0; j < sp.d; ++j)
        z += std::exp(av[(r * sp.d + j) * sp.inner + k] - mx);
      const float lz = mx + static_cast<float>(std::log(z));
      for (std::int64_t j = 0; j < sp.d; ++j) {
        const auto ix = (r * sp.d + j) * sp.inner + k;
        ov[ix] = av[ix] - lz;
      }
    }
  return out;
}

}  // namespace mfa::ops
