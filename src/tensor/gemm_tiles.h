// Tile parameters and variant identifiers for the dispatched GEMM family.
//
// This header is included by the baseline dispatch TU (gemm.cpp) AND by the
// per-ISA kernel TUs (gemm_scalar.cpp, gemm_avx2.cpp, gemm_avx512.cpp), which
// are compiled with different -m flags. Keep it to plain data and constants:
// an inline function defined here would be emitted in several TUs with
// different instruction sets, and the linker keeping the wrong copy would
// crash a host that lacks the wider ISA.
#pragma once

#include <cstdint>

namespace mfa::kernels {

/// The compiled kernel variants, in increasing ISA order. Dispatch picks the
/// widest one the host supports unless MFA_SIMD forces a narrower one.
enum class Variant : int {
  kScalar = 0,  // portable C++, auto-vectorised at the build baseline
  kAvx2 = 1,    // 8-lane AVX2 + FMA intrinsics
  kAvx512 = 2,  // 16-lane AVX-512F + FMA intrinsics
};
inline constexpr int kNumVariants = 3;

/// Tunable tile parameters for one variant. The register tile is mr rows by
/// nv SIMD vectors of C; nc/kc are the cache-blocking panel dimensions used
/// by the packed-B path; pack_min is the minimum B volume (k * n floats)
/// before packing pays for itself — below it the kernels stream B in place,
/// so small per-batch conv GEMMs never pay the copy.
///
/// Determinism contract: within a variant, every C[i][j] is reduced in fixed
/// k-ascending order with a uniform per-element operation (mul+add for
/// scalar, single-rounded FMA for the SIMD variants; gemm_nt accumulates in
/// lane-split doubles with a fixed lane count per variant). The tile
/// parameters only regroup independent accumulator streams, so any value of
/// (mr, nv, nc, kc, pack_min) yields bit-identical results — the autotuner
/// may pick freely. Across variants results differ (FMA contracts the
/// product rounding), which is why the golden gate pins one hash per
/// variant.
struct GemmTiles {
  int mr = 4;                     // register-tile rows (1, 2, 4, or 8)
  int nv = 2;                     // register-tile width in SIMD vectors
  std::int64_t nc = 512;          // packed-panel / column-block width (floats)
  std::int64_t kc = 256;          // packed-panel depth (k rows per panel)
  std::int64_t pack_min = 1 << 17;  // min k*n floats before packing B
  // Min strip-rows * k floats before the packed-B path also packs the A
  // panel (contiguous k-major rows; pays most for tn, whose in-place A reads
  // stride by m). Only consulted when B packing is already on.
  std::int64_t pack_min_a = 1 << 16;
};

}  // namespace mfa::kernels
