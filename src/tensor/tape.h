// mfa::tensor::Tape — explicit autograd tape with a per-tape storage arena
// and a parallel graph executor for backward().
//
// Before this layer existed, every op that produced a grad-requiring output
// linked a std::shared_ptr<TensorImpl> web: each node owned its backward
// closure plus shared_ptr edges to its parents, Tensor::backward() walked
// that web with a fresh unordered_set + frame stack per call, and execution
// was strictly sequential even where the DAG has parallel branches (the MFA
// model's dual attention arms, encoder/decoder skips). The tape makes all
// three costs explicit and fixes them:
//
//  * Representation. make_result records into the calling thread's Tape: a
//    flat std::vector of plain nodes (op name, backward thunk, parent index
//    range into one shared parent array) instead of a pointer web. The
//    node's output tensor draws its buffer from the tape's arena (below);
//    leaves and parameters stay on StoragePool. backward() retires the WHOLE
//    tape when it completes (success or exception): closures are dropped,
//    node slots recycle, and the arena's buffers become reusable in one bulk
//    step instead of one refcount chain collapse per node.
//
//  * Scheduling. backward() plans a reverse-topological level schedule over
//    the recorded graph and dispatches independent branches across the
//    existing ThreadPool. Determinism contract: gradient accumulation into a
//    shared parent keeps the exact consumer order of the sequential walk —
//    the planner adds chain edges serialising the consumers of every shared
//    parent in that order, so two consumers of one tensor always land in
//    different levels and scatter in the same order as MFA_EXEC=seq. Every
//    edge embeds into the sequential execution order (a linear extension),
//    so the task graph is acyclic by construction and the result is
//    bit-identical for any MFA_THREADS — pinned by the golden hash.
//
//  * Fusion + lifetime. Trivial elementwise chains (add -> relu -> scale)
//    are marked at record time (Tensor::kOpFlagElementwise); the planner
//    merges a marked node into its sole consumer's task when the two are
//    adjacent in the execution order. Merging only order-adjacent pairs
//    keeps the contracted task graph a contraction of a linear-extension
//    interval, which cannot introduce cycles. Fusion changes scheduling
//    only, never numerics. Buffer lifetime is handled by the arena: a
//    buffer whose last reader retired has refcount 1 again and is reused by
//    the next acquisition in the same step.
//
// The arena (TapeArena) is a per-thread recycling ring per size bucket:
// acquire scans for an entry whose block the arena is the sole owner of
// (refcount 1), zero-fills the requested prefix and hands out a sharing
// handle; release is the tensor handle's ordinary refcount drop — no pool
// mutex, no thread-cache traffic, no stats atomics on the per-op hot path.
// At step end (backward() retire, or ArenaScope exit on inference paths) the
// cursors reset and the ring trims to the high-water mark of the last two
// steps, so a shrinking workload gives memory back. MFA_POOL=off disables
// the arena entirely: every acquisition is a raw heap allocation again and
// ASan sees full poisoning, exactly as before.
//
// Escape hatches and diagnostics:
//  * MFA_EXEC=seq pins the sequential walk (identical numerics, one thread).
//  * MFA_ARENA=off keeps the pool-per-op path with the tape executor.
//  * MFA_FUSE=off disables backward task fusion.
//  * When finite-grad scanning (MFA_CI_FINITE_GRADS) or the storage
//    sanitizer's declared-write race tracking is active, backward() always
//    takes the sequential path: diagnostic reports then observe the one
//    canonical schedule, byte-identical across MFA_EXEC modes.
//
// Thread model: Tape::current() is thread_local. A graph must be recorded
// and executed on one thread (true for every current caller: trainer, flow,
// serve workers each build and backprop on their own thread). Closures may
// run on ThreadPool workers during graph execution; they call parallel_for
// freely (nested regions run inline).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/storage.h"
#include "tensor/tensor.h"

namespace mfa::tensor {

/// Backward execution strategy. kGraph is the default; MFA_EXEC=seq selects
/// the sequential walk (bit-identical numerics, no task dispatch).
enum class Executor : int { kSeq = 0, kGraph = 1 };

/// Shape of the last planned backward, for tests and benchmarks.
struct TapePlanStats {
  std::int64_t nodes = 0;            // reachable nodes executed
  std::int64_t tasks = 0;            // tasks after fusion
  std::int64_t fused_nodes = 0;      // nodes merged into a predecessor task
  std::int64_t levels = 0;           // depth of the level schedule
  std::int64_t parallel_levels = 0;  // levels dispatched across the pool
  std::int64_t parallel_tasks = 0;   // tasks inside those levels
};

/// Per-thread bucketed recycling ring for intermediate tensor buffers.
/// Entries are Storage handles the arena keeps referenced; an entry is free
/// exactly when the arena holds the only reference. See the file comment.
class TapeArena {
 public:
  /// Zero-fills and hands out a buffer of n floats sharing an arena block.
  /// Returns false (out untouched) when the arena cannot serve the request:
  /// pool disabled, n outside the bucket range, or the ring at its cap.
  bool try_acquire(std::int64_t n, Storage& out);

  /// Step boundary: resets the scan cursors and trims each ring to the
  /// high-water mark of the last two steps (unpinned tail entries only).
  void end_step();

  /// Drops every unpinned entry regardless of high-water (tests / teardown).
  void clear();

  /// Floats currently held across all rings (pinned or free).
  std::int64_t held_floats() const;
  /// Entries currently held across all rings.
  std::int64_t entries() const;

  /// mfa::sanitize sweep over every held entry (no-op when the checker is
  /// off). Arena blocks never pass through the pool's release/reacquire
  /// checks while held, so tests sweep them explicitly.
  void verify_guards() const;

 private:
  // Buckets mirror StoragePool's power-of-two sizing over the range the
  // model's intermediates actually occupy; larger requests fall through to
  // the pool. kMaxEntries bounds one ring so a pathological workload cannot
  // scan (or pin) an unbounded entry list.
  static constexpr int kMinBucket = 5;    // 32 floats
  static constexpr int kMaxBucket = 26;   // 64 Mi floats (256 MiB)
  static constexpr int kNumBuckets = kMaxBucket - kMinBucket + 1;
  static constexpr std::uint32_t kMaxEntries = 256;

  struct Ring {
    std::vector<Storage> entries;
    std::vector<std::uint32_t> touched_stamp;  // last step an entry served
    std::uint32_t cursor = 0;        // next probe start (ring position)
    std::uint32_t used_this_step = 0;
    std::uint32_t used_prev_step = 0;
    std::uint32_t step_token = 1;
  };

  Ring rings_[kNumBuckets];
};

/// The per-thread autograd tape. Ops record through Tensor::make_result;
/// Tensor::backward() delegates to execute_backward().
class Tape {
 public:
  /// The calling thread's tape (constructed on first use).
  static Tape& current();

  Tape();
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // ---- recording (called by Tensor::make_result) ----

  /// Appends a node; returns its id. `op_name` must have static storage
  /// duration (or be null). Parent refs are resolved against the current
  /// epoch: an input recorded before the last retire is treated as a leaf.
  std::int32_t record(const char* op_name,
                      std::shared_ptr<mfa::detail::TensorImpl> out,
                      const std::vector<Tensor>& inputs,
                      std::function<void(mfa::detail::TensorImpl&)> fn,
                      unsigned flags);

  /// Monotonic tape generation; bumped by every retire. A TensorImpl's
  /// (tape_id, tape_epoch) pair is valid only while the epochs match.
  std::uint64_t epoch() const { return epoch_; }

  /// Nodes currently recorded (live, pre-retire). Test/diagnostic hook.
  std::int64_t recorded_nodes() const {
    return static_cast<std::int64_t>(nodes_.size());
  }

  // ---- execution (called by Tensor::backward) ----

  /// Runs reverse-mode AD from `root` (already validated as a scalar), then
  /// retires the whole tape — also on exception, so a later graph starts
  /// clean after a throwing backward.
  void execute_backward(const std::shared_ptr<mfa::detail::TensorImpl>& root);

  /// Multi-root variant: computes the gradient of the SUM of the (scalar)
  /// roots in one reverse pass over the union of their subgraphs — the
  /// two-head training shape (main loss + auxiliary head, or a cGAN's
  /// generator/discriminator pair sharing a trunk). Each root is seeded with
  /// +1 (a root listed twice therefore contributes twice); roots that are
  /// leaves or ancestors of other roots are both fine — an interior root
  /// simply receives its seed on top of the gradient scattered by its
  /// consumers. The execution order is the reverse of the concatenated DFS
  /// post-orders (restarted per root over one shared visited set), a linear
  /// extension of the union DAG, so the chain-edge determinism contract and
  /// the seq/graph bit-identity carry over unchanged.
  void execute_backward(
      const std::vector<std::shared_ptr<mfa::detail::TensorImpl>>& roots);

  // ---- arena ----

  /// Buffer for an op output: zero-filled, from the arena when it may serve
  /// (recording, or inside an ArenaScope; pool enabled; arena enabled),
  /// otherwise a plain pooled/heap buffer — bit-identical either way.
  Storage intermediate_storage(std::int64_t n, bool recording);

  void begin_arena_scope();
  void end_arena_scope();

  TapeArena& arena() { return arena_; }

  // ---- knobs (env-seeded; per-thread setters for tests/benchmarks) ----

  Executor executor() const { return executor_; }
  void set_executor_for_testing(Executor e) { executor_ = e; }
  bool fusion_enabled() const { return fusion_; }
  void set_fusion_for_testing(bool on) { fusion_ = on; }
  bool arena_enabled() const { return arena_on_; }
  void set_arena_for_testing(bool on) { arena_on_ = on; }

  // ---- diagnostics ----

  const TapePlanStats& last_plan() const { return last_plan_; }

  /// Cumulative count of plan-buffer capacity growths on this thread's tape.
  /// Zero growth over an iteration proves backward() bookkeeping allocates
  /// nothing in the steady state (the satellite claim bench.sh --check
  /// asserts via bench_micro's tape_plan_allocs_per_iter).
  std::int64_t plan_grow_events() const { return plan_grow_events_; }

 private:
  struct ParentRef {
    std::shared_ptr<mfa::detail::TensorImpl> impl;  // autograd edge
    std::int32_t node;  // producing node id, or -1 for a leaf
  };

  struct Node {
    const char* op_name;
    std::shared_ptr<mfa::detail::TensorImpl> out;
    std::function<void(mfa::detail::TensorImpl&)> fn;
    std::uint32_t parent_begin;
    std::uint32_t parent_end;
    unsigned flags;
  };

  struct DfsFrame {
    std::int32_t node;
    std::uint32_t next;  // next parent slot to visit
  };

  void plan_order(const std::int32_t* roots, std::size_t num_roots);
  void plan_schedule();  // fusion + levels; graph mode only
  void run_planned();    // plan + execute + retire from root_ids_
  void run_seq(bool scan_grads);
  void run_graph();
  void run_task(std::uint32_t task);
  void run_node(std::size_t pos);
  void scan_grad_finite(mfa::detail::TensorImpl* impl) const;
  void retire();

  /// Reserves n slots in a reused plan vector, counting capacity growth.
  template <typename T>
  void plan_grow(std::vector<T>& v, std::size_t n) {
    if (v.capacity() < n) {
      ++plan_grow_events_;
      v.reserve(n);
    }
    v.resize(n);
  }

  // ---- recorded graph ----
  std::vector<Node> nodes_;
  std::vector<ParentRef> parents_;
  std::uint64_t epoch_ = 1;
  bool executing_ = false;

  // ---- plan scratch, reused across backward() calls (epoch-stamped visit
  // marks instead of a per-call unordered_set) ----
  std::vector<std::uint32_t> visit_;  // per node id, stamped with visit token
  std::uint32_t visit_token_ = 0;
  std::uint64_t plan_token_ = 0;  // stamps TensorImpl::plan_stamp
  std::vector<DfsFrame> stack_;
  std::vector<std::int32_t> order_;  // execution order (root first)
  std::vector<std::int32_t> root_ids_;  // taped roots of the current backward
  std::vector<mfa::detail::TensorImpl*> leaves_;  // scan-mode leaf list
  std::vector<std::uint32_t> consumers_;          // per node id
  std::vector<std::uint32_t> task_begin_;  // task t = order_[begin[t], begin[t+1])
  std::vector<std::uint32_t> task_of_node_;       // per node id
  std::vector<std::uint32_t> task_level_;         // per task
  std::vector<std::uint32_t> task_min_level_;     // accumulated data edges
  std::vector<std::int64_t> task_weight_;         // output floats per task
  std::vector<std::uint32_t> level_start_;        // counting-sort offsets
  std::vector<std::uint32_t> level_cursor_;       // counting-sort fill state
  std::vector<std::uint32_t> level_tasks_;        // tasks grouped by level
  std::int64_t plan_grow_events_ = 0;

  TapeArena arena_;
  int arena_scope_depth_ = 0;

  Executor executor_;
  bool fusion_;
  bool arena_on_;

  TapePlanStats last_plan_;
};

/// RAII inference-step scope: while active, make_result outputs on this
/// thread draw from the tape arena even when nothing records (NoGrad
/// forward); on exit of the outermost scope the arena ends its step.
/// predict_levels() brackets each call so flow and serve recycle per-request
/// intermediates through the arena exactly like a training step does.
class ArenaScope {
 public:
  ArenaScope() : tape_(Tape::current()) { tape_.begin_arena_scope(); }
  ~ArenaScope() { tape_.end_arena_scope(); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Tape& tape_;
};

}  // namespace mfa::tensor
