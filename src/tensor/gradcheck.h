// Finite-difference gradient verification for autograd kernels.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mfa {

struct GradCheckResult {
  bool ok = true;
  float max_abs_err = 0.0f;
  float max_rel_err = 0.0f;
  std::string detail;  // first offending element, for diagnostics
};

/// Compares analytic gradients of `fn` (a scalar-valued function of `inputs`)
/// against central finite differences. All inputs must require grad.
/// `eps` is the finite-difference step; `tol` bounds max(abs_err, rel_err).
GradCheckResult gradcheck(const std::function<Tensor()>& fn,
                          const std::vector<Tensor>& inputs, float eps = 1e-3f,
                          float tol = 5e-2f);

}  // namespace mfa
