// Per-host tuned-tile cache for the dispatched GEMM (tensor/gemm.h).
//
// The offline autotuner (bench/bench_gemm.cpp, driven by `scripts/bench.sh
// --tune-gemm`) sweeps GemmTiles candidates over the model's real GEMM
// shapes and writes the winners to bench/tuned/<fingerprint>.json. At
// startup the dispatch front-end loads that file — MFA_GEMM_TUNED overrides
// the path — and falls back to compiled defaults when the file is missing,
// malformed, fails the sanity bounds, or carries another host's fingerprint.
// A bad cache file must never break startup: every failure path is a warning
// plus defaults.
//
// The fingerprint hashes the /proc/cpuinfo model name and the core count —
// the same identity scripts/bench.sh pins in bench/baseline.json — so a
// cache captured on one machine is inert on any other.
#pragma once

#include <string>

#include "tensor/gemm_tiles.h"

namespace mfa::kernels::tune {

/// Identity of the machine we are running on.
struct HostId {
  std::string cpu;          // /proc/cpuinfo "model name" ("unknown" if absent)
  int cores = 0;            // std::thread::hardware_concurrency()
  std::string fingerprint;  // fnv1a64 hex of "<cpu>|<cores>"
};
HostId host_id();

/// FNV-1a 64-bit hex digest of "<cpu>|<cores>" (exposed for tests).
std::string fingerprint_of(const std::string& cpu, int cores);

/// Tuned tiles per variant; have[v] marks which variants the file carried.
struct TunedTable {
  bool have[kNumVariants] = {false, false, false};
  GemmTiles tiles[kNumVariants];
};

/// Bounds check for untrusted tile parameters: mr in {1,2,4,8}, nv in
/// {1,2,4}, nc in [16, 65536], kc in [8, 65536], pack_min in [0, 2^40].
bool tiles_sane(const GemmTiles& t);

/// Renders the cache-file JSON (stable field order, for tests and writing).
std::string render(const HostId& host, const TunedTable& table);

/// Parses a cache file. On success fills `table` and `fingerprint` (the
/// file's claim — the caller compares it against the live host) and returns
/// true. Returns false with a reason in `err` for a missing file, malformed
/// JSON, an unknown variant name, or out-of-bounds tiles.
bool parse_file(const std::string& path, TunedTable* table,
                std::string* fingerprint, std::string* err);

/// Same, from an in-memory JSON string (unit-test seam; `err` required).
bool parse_text(const std::string& text, TunedTable* table,
                std::string* fingerprint, std::string* err);

/// Writes render(host, table) to `path`, creating parent directories.
/// Returns false with a reason in `err` on I/O failure.
bool write_file(const std::string& path, const HostId& host,
                const TunedTable& table, std::string* err);

/// "bench/tuned/<fingerprint>.json" — relative to the working directory,
/// which is the repo root for scripts/bench.sh runs.
std::string default_cache_path();

}  // namespace mfa::kernels::tune
