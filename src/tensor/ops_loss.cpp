#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/check.h"
#include "common/log.h"
#include "tensor/ops.h"

namespace mfa::ops {

Tensor cross_entropy(const Tensor& logits, const Tensor& targets) {
  // Normalise both layouts to [outer, C, inner]:
  //   [N, C] + [N]            -> outer=N, inner=1
  //   [N, C, H, W] + [N,H,W]  -> outer=N, inner=H*W
  const auto nd = logits.dim();
  std::int64_t outer = 0, classes = 0, inner = 0;
  MFA_CHECK(nd == 2 || nd == 4)
      << " cross_entropy: logits must be 2-D or 4-D, got "
      << shape_str(logits.shape());
  outer = logits.size(0);
  classes = logits.size(1);
  inner = nd == 4 ? logits.size(2) * logits.size(3) : 1;
  MFA_CHECK_EQ(targets.numel(), outer * inner)
      << " cross_entropy: target count mismatch, logits "
      << shape_str(logits.shape()) << " vs targets "
      << shape_str(targets.shape());
  const std::int64_t count = outer * inner;

  Tensor out = Tensor::make_result(
      {1}, {logits}, [logits, targets, outer, classes, inner,
                      count](detail::TensorImpl& o) {
        auto li = logits.impl();
        if (!li->requires_grad) return;
        li->ensure_grad();
        const float g = o.grad[0] / static_cast<float>(count);
        const float* lv = li->data.data();
        const float* tv = targets.data();
        float* gl = li->grad.data();
        for (std::int64_t r = 0; r < outer; ++r)
          for (std::int64_t k = 0; k < inner; ++k) {
            const auto base = r * classes * inner + k;
            float mx = -std::numeric_limits<float>::infinity();
            for (std::int64_t c = 0; c < classes; ++c)
              mx = std::max(mx, lv[base + c * inner]);
            double z = 0.0;
            for (std::int64_t c = 0; c < classes; ++c)
              z += std::exp(lv[base + c * inner] - mx);
            const auto target =
                static_cast<std::int64_t>(tv[r * inner + k]);
            for (std::int64_t c = 0; c < classes; ++c) {
              const float p = static_cast<float>(
                  std::exp(lv[base + c * inner] - mx) / z);
              gl[base + c * inner] += g * (p - (c == target ? 1.0f : 0.0f));
            }
          }
      });
  // Forward: mean of -log p(target).
  const float* lv = logits.data();
  const float* tv = targets.data();
  double loss = 0.0;
  for (std::int64_t r = 0; r < outer; ++r)
    for (std::int64_t k = 0; k < inner; ++k) {
      const auto base = r * classes * inner + k;
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t c = 0; c < classes; ++c)
        mx = std::max(mx, lv[base + c * inner]);
      double z = 0.0;
      for (std::int64_t c = 0; c < classes; ++c)
        z += std::exp(lv[base + c * inner] - mx);
      const auto target = static_cast<std::int64_t>(tv[r * inner + k]);
      MFA_CHECK_BOUNDS(target, classes) << " cross_entropy target class";
      loss -= (lv[base + target * inner] - mx) - std::log(z);
    }
  out.data()[0] = static_cast<float>(loss / static_cast<double>(count));
  return out;
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  MFA_CHECK_SHAPE(pred.shape(), target.shape()) << " in mse_loss";
  const auto n = pred.numel();
  Tensor out = Tensor::make_result(
      {1}, {pred, target}, [pred, target, n](detail::TensorImpl& o) {
        const float g = o.grad[0] * 2.0f / static_cast<float>(n);
        auto pi = pred.impl();
        auto ti = target.impl();
        const float* pv = pi->data.data();
        const float* tv = ti->data.data();
        if (pi->requires_grad) {
          pi->ensure_grad();
          float* gp = pi->grad.data();
          for (std::int64_t i = 0; i < n; ++i) gp[i] += g * (pv[i] - tv[i]);
        }
        if (ti->requires_grad) {
          ti->ensure_grad();
          float* gt = ti->grad.data();
          for (std::int64_t i = 0; i < n; ++i) gt[i] -= g * (pv[i] - tv[i]);
        }
      });
  const float* pv = pred.data();
  const float* tv = target.data();
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pv[i]) - tv[i];
    acc += d * d;
  }
  out.data()[0] = static_cast<float>(acc / static_cast<double>(n));
  return out;
}

}  // namespace mfa::ops
