#include "tensor/gemm_tune.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace mfa::kernels::tune {
namespace {

constexpr const char* kVariantKeys[kNumVariants] = {"scalar", "avx2",
                                                    "avx512"};

// ---- minimal JSON reader -------------------------------------------------
//
// The cache schema is a flat object of strings, integers, and one nested
// object per variant; this parser accepts exactly JSON's grammar for those
// (plus skipping unknown members of any value shape) and rejects everything
// else. Untrusted input: every failure surfaces as parse failure → compiled
// defaults, never UB.

struct Reader {
  const char* p;
  const char* end;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty()) err = what;
    return false;
  }
  void ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }
  bool expect(char c) {
    ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }
  bool peek(char c) {
    ws();
    return p < end && *p == c;
  }
  bool string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p >= end) return fail("dangling escape");
        const char e = *p++;
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: return fail("unsupported escape");
        }
      }
      out->push_back(c);
    }
    if (p >= end) return fail("unterminated string");
    ++p;
    return true;
  }
  bool integer(std::int64_t* out) {
    ws();
    const bool neg = p < end && *p == '-';
    if (neg) ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p)))
      return fail("expected integer");
    std::int64_t v = 0;
    while (p < end && std::isdigit(static_cast<unsigned char>(*p))) {
      if (v > (INT64_MAX - 9) / 10) return fail("integer overflow");
      v = v * 10 + (*p - '0');
      ++p;
    }
    *out = neg ? -v : v;
    return true;
  }
  // Skips one value of any supported shape (unknown members stay ignorable
  // so future fields do not invalidate old binaries' caches).
  bool skip_value() {
    ws();
    if (p >= end) return fail("unexpected end");
    const char c = *p;
    if (c == '"') {
      std::string s;
      return string(&s);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++p;
      ws();
      if (p < end && *p == close) {
        ++p;
        return true;
      }
      while (true) {
        if (c == '{') {
          std::string key;
          if (!string(&key) || !expect(':')) return false;
        }
        if (!skip_value()) return false;
        ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        return expect(close);
      }
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v;
      return integer(&v);
    }
    for (const char* lit : {"true", "false", "null"}) {
      const std::int64_t len = static_cast<std::int64_t>(std::strlen(lit));
      if (end - p >= len && std::strncmp(p, lit, len) == 0) {
        p += len;
        return true;
      }
    }
    return fail("unsupported value");
  }
};

bool parse_tiles(Reader& r, GemmTiles* t) {
  if (!r.expect('{')) return false;
  if (r.peek('}')) return r.expect('}');
  while (true) {
    std::string key;
    if (!r.string(&key) || !r.expect(':')) return false;
    std::int64_t v;
    if (!r.integer(&v)) return false;
    if (key == "mr")
      t->mr = static_cast<int>(v);
    else if (key == "nv")
      t->nv = static_cast<int>(v);
    else if (key == "nc")
      t->nc = v;
    else if (key == "kc")
      t->kc = v;
    else if (key == "pack_min")
      t->pack_min = v;
    else if (key == "pack_min_a")
      t->pack_min_a = v;
    else
      return r.fail("unknown tile field '" + key + "'");
    if (r.peek(',')) {
      r.expect(',');
      continue;
    }
    return r.expect('}');
  }
}

bool parse_variants(Reader& r, TunedTable* out) {
  if (!r.expect('{')) return false;
  if (r.peek('}')) return r.expect('}');
  while (true) {
    std::string key;
    if (!r.string(&key) || !r.expect(':')) return false;
    int idx = -1;
    for (int v = 0; v < kNumVariants; ++v)
      if (key == kVariantKeys[v]) idx = v;
    if (idx < 0) return r.fail("unknown variant '" + key + "'");
    GemmTiles t;
    if (!parse_tiles(r, &t)) return false;
    if (!tiles_sane(t)) return r.fail("tiles out of bounds for '" + key + "'");
    out->tiles[idx] = t;
    out->have[idx] = true;
    if (r.peek(',')) {
      r.expect(',');
      continue;
    }
    return r.expect('}');
  }
}

}  // namespace

std::string fingerprint_of(const std::string& cpu, int cores) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis
  auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 1099511628211ull;
  };
  for (const char c : cpu) mix(static_cast<unsigned char>(c));
  mix('|');
  for (const char c : std::to_string(cores))
    mix(static_cast<unsigned char>(c));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

HostId host_id() {
  HostId id;
  id.cpu = "unknown";
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find("model name");
    if (pos != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) break;
    auto start = colon + 1;
    while (start < line.size() && line[start] == ' ') ++start;
    id.cpu = line.substr(start);
    break;
  }
  id.cores = static_cast<int>(std::thread::hardware_concurrency());
  id.fingerprint = fingerprint_of(id.cpu, id.cores);
  return id;
}

bool tiles_sane(const GemmTiles& t) {
  const bool mr_ok = t.mr == 1 || t.mr == 2 || t.mr == 4 || t.mr == 8;
  const bool nv_ok = t.nv == 1 || t.nv == 2 || t.nv == 4;
  return mr_ok && nv_ok && t.nc >= 16 && t.nc <= 65536 && t.kc >= 8 &&
         t.kc <= 65536 && t.pack_min >= 0 &&
         t.pack_min <= (std::int64_t{1} << 40) && t.pack_min_a >= 0 &&
         t.pack_min_a <= (std::int64_t{1} << 40);
}

std::string render(const HostId& host, const TunedTable& table) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"fingerprint\": \"" << host.fingerprint << "\",\n";
  std::string cpu;
  for (const char c : host.cpu) {
    if (c == '"' || c == '\\') cpu.push_back('\\');
    cpu.push_back(c);
  }
  out << "  \"cpu\": \"" << cpu << "\",\n";
  out << "  \"cores\": " << host.cores << ",\n";
  out << "  \"variants\": {";
  bool first = true;
  for (int v = 0; v < kNumVariants; ++v) {
    if (!table.have[v]) continue;
    const GemmTiles& t = table.tiles[v];
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    \"" << kVariantKeys[v] << "\": {\"mr\": " << t.mr
        << ", \"nv\": " << t.nv << ", \"nc\": " << t.nc
        << ", \"kc\": " << t.kc << ", \"pack_min\": " << t.pack_min
        << ", \"pack_min_a\": " << t.pack_min_a << "}";
  }
  out << "\n  }\n}\n";
  return out.str();
}

bool parse_text(const std::string& text, TunedTable* table,
                std::string* fingerprint, std::string* err) {
  *table = TunedTable{};
  fingerprint->clear();
  Reader r{text.data(), text.data() + text.size(), {}};
  bool ok = [&] {
    if (!r.expect('{')) return false;
    if (r.peek('}')) return r.expect('}');
    while (true) {
      std::string key;
      if (!r.string(&key) || !r.expect(':')) return false;
      if (key == "fingerprint") {
        if (!r.string(fingerprint)) return false;
      } else if (key == "variants") {
        if (!parse_variants(r, table)) return false;
      } else {
        if (!r.skip_value()) return false;
      }
      if (r.peek(',')) {
        r.expect(',');
        continue;
      }
      return r.expect('}');
    }
  }();
  if (ok) {
    r.ws();
    if (r.p != r.end) {
      ok = false;
      r.fail("trailing content");
    }
  }
  if (ok && fingerprint->empty()) {
    ok = false;
    r.fail("missing fingerprint");
  }
  if (!ok) *err = r.err.empty() ? "parse error" : r.err;
  return ok;
}

bool parse_file(const std::string& path, TunedTable* table,
                std::string* fingerprint, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *err = "missing";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_text(buf.str(), table, fingerprint, err);
}

bool write_file(const std::string& path, const HostId& host,
                const TunedTable& table, std::string* err) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *err = "cannot open " + path;
    return false;
  }
  out << render(host, table);
  out.flush();
  if (!out) {
    *err = "write failed for " + path;
    return false;
  }
  return true;
}

std::string default_cache_path() {
  return "bench/tuned/" + host_id().fingerprint + ".json";
}

}  // namespace mfa::kernels::tune
