// Internal seam between the dispatch front-end (gemm.cpp) and the per-ISA
// kernel TUs. Not part of the public surface — include tensor/gemm.h instead.
//
// Each variant TU exports one StripKernels table of plain function pointers.
// A strip kernel computes rows [i0, i1) of the output under the caller's
// parallel_for partition; the dispatch front-end owns the threading, the
// declared-write ranges for the race checker, and the obs counters, so the
// ISA TUs stay free of inline library code (see gemm_tiles.h for why).
#pragma once

#include <cstdint>

#include "tensor/gemm_tiles.h"

namespace mfa::kernels::detail {

/// Row-strip kernels for one variant. All three accumulate into C (C += ...)
/// and must reduce each C[i][j] in fixed k-ascending order regardless of the
/// tile parameters (see the determinism contract in gemm_tiles.h).
///   nn: C[m,n] += A[m,k]   * B[k,n]
///   nt: C[m,n] += A[m,k]   * B[n,k]^T
///   tn: C[m,n] += A[k,m]^T * B[k,n]
struct StripKernels {
  using StripFn = void (*)(const float* A, const float* B, float* C,
                           std::int64_t i0, std::int64_t i1, std::int64_t m,
                           std::int64_t k, std::int64_t n, const GemmTiles& t);
  StripFn nn = nullptr;
  StripFn nt = nullptr;
  StripFn tn = nullptr;
};

/// Per-variant kernel tables. scalar_strips() always exists; the SIMD tables
/// are compiled whenever the target is x86-64 (MFA_GEMM_X86) and must only
/// be *called* when the host supports the ISA.
StripKernels scalar_strips();
#if defined(MFA_GEMM_X86)
StripKernels avx2_strips();
StripKernels avx512_strips();
#endif

/// Bumps the gemm.packed_panels counter; defined in gemm.cpp so the ISA TUs
/// do not pull the obs headers into a -mavx* compilation.
void note_packed_panel();
/// Bumps the gemm.packed_a_panels counter (A-panel copies).
void note_packed_a_panel();

/// Thread-local packing buffer for the SIMD variants' B panels, 64-byte
/// aligned. Defined in gemm.cpp (it is kernels::scratch slot 2 — slots 0 and
/// 1 belong to callers, see tensor/gemm.h).
float* pack_buffer(std::int64_t floats);
/// Same, for the A panels (kernels::scratch slot 4): A and B panels are live
/// simultaneously inside one strip, so they need distinct slots.
float* pack_buffer_a(std::int64_t floats);

}  // namespace mfa::kernels::detail
