#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/sanitize.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace mfa::ops {

using kernels::gemm_nn;
using kernels::gemm_nt;
using kernels::gemm_tn;

namespace {

// Fixed number of dW accumulation slots in conv2d backward. Chosen once
// (independent of MFA_THREADS / pool size) so the sequential slot-order
// reduction after the join adds per-sample contributions in the same order
// on every machine — deterministic, and lock-free while the workers run.
constexpr std::int64_t kDwSlots = 16;

struct ConvDims {
  std::int64_t N, Cin, H, W, Cout, Kh, Kw, Hout, Wout, stride, pad;
};

ConvDims conv_dims(const Tensor& x, const Tensor& w, std::int64_t stride,
                   std::int64_t pad) {
  MFA_CHECK(x.dim() == 4 && w.dim() == 4)
      << " conv2d: x and w must be 4-D (NCHW), got " << shape_str(x.shape())
      << " and " << shape_str(w.shape());
  MFA_CHECK(stride > 0 && pad >= 0)
      << " conv2d: stride " << stride << ", padding " << pad;
  ConvDims d{};
  d.N = x.size(0);
  d.Cin = x.size(1);
  d.H = x.size(2);
  d.W = x.size(3);
  d.Cout = w.size(0);
  d.Kh = w.size(2);
  d.Kw = w.size(3);
  d.stride = stride;
  d.pad = pad;
  MFA_CHECK_EQ(w.size(1), d.Cin)
      << " conv2d: Cin mismatch, x " << shape_str(x.shape()) << " vs w "
      << shape_str(w.shape());
  d.Hout = (d.H + 2 * pad - d.Kh) / stride + 1;
  d.Wout = (d.W + 2 * pad - d.Kw) / stride + 1;
  MFA_CHECK(d.Hout > 0 && d.Wout > 0)
      << " conv2d: empty output for x " << shape_str(x.shape()) << ", kernel "
      << shape_str(w.shape()) << ", stride " << stride << ", padding " << pad;
  return d;
}

/// Unfolds one image [Cin,H,W] into columns [Cin*Kh*Kw, Hout*Wout].
void im2col(const float* img, const ConvDims& d, float* col) {
  const std::int64_t HW = d.Hout * d.Wout;
  for (std::int64_t c = 0; c < d.Cin; ++c)
    for (std::int64_t kh = 0; kh < d.Kh; ++kh)
      for (std::int64_t kw = 0; kw < d.Kw; ++kw) {
        float* dst = col + ((c * d.Kh + kh) * d.Kw + kw) * HW;
        for (std::int64_t oh = 0; oh < d.Hout; ++oh) {
          const std::int64_t ih = oh * d.stride - d.pad + kh;
          if (ih < 0 || ih >= d.H) {
            std::fill(dst + oh * d.Wout, dst + (oh + 1) * d.Wout, 0.0f);
            continue;
          }
          const float* src_row = img + (c * d.H + ih) * d.W;
          for (std::int64_t ow = 0; ow < d.Wout; ++ow) {
            const std::int64_t iw = ow * d.stride - d.pad + kw;
            dst[oh * d.Wout + ow] =
                (iw >= 0 && iw < d.W) ? src_row[iw] : 0.0f;
          }
        }
      }
}

/// Scatter-adds columns [Cin*Kh*Kw, Hout*Wout] back into an image gradient.
void col2im(const float* col, const ConvDims& d, float* img) {
  const std::int64_t HW = d.Hout * d.Wout;
  for (std::int64_t c = 0; c < d.Cin; ++c)
    for (std::int64_t kh = 0; kh < d.Kh; ++kh)
      for (std::int64_t kw = 0; kw < d.Kw; ++kw) {
        const float* src = col + ((c * d.Kh + kh) * d.Kw + kw) * HW;
        for (std::int64_t oh = 0; oh < d.Hout; ++oh) {
          const std::int64_t ih = oh * d.stride - d.pad + kh;
          if (ih < 0 || ih >= d.H) continue;
          float* dst_row = img + (c * d.H + ih) * d.W;
          for (std::int64_t ow = 0; ow < d.Wout; ++ow) {
            const std::int64_t iw = ow * d.stride - d.pad + kw;
            if (iw >= 0 && iw < d.W) dst_row[iw] += src[oh * d.Wout + ow];
          }
        }
      }
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b,
              std::int64_t stride, std::int64_t padding) {
  const sanitize::OpScope op_scope("conv2d");
  const ConvDims d = conv_dims(x, w, stride, padding);
  if (b.defined()) {
    MFA_CHECK_EQ(b.numel(), d.Cout)
        << " conv2d: bias " << shape_str(b.shape())
        << " does not match Cout of w " << shape_str(w.shape());
  }
  const std::int64_t CKK = d.Cin * d.Kh * d.Kw;
  const std::int64_t HW = d.Hout * d.Wout;

  std::vector<Tensor> inputs = {x, w};
  if (b.defined()) inputs.push_back(b);
  Tensor out = Tensor::make_result(
      {d.N, d.Cout, d.Hout, d.Wout}, inputs,
      [x, w, b, d, CKK, HW](detail::TensorImpl& o) {
        auto xi = x.impl();
        auto wi = w.impl();
        const float* go = o.grad.data();
        if (xi->requires_grad) xi->ensure_grad();
        if (wi->requires_grad) wi->ensure_grad();
        // Batch-parallel backward over a fixed slot partition: dx writes are
        // disjoint per sample, and each slot owns a private dW accumulator
        // that is reduced sequentially (slot 0, 1, ...) after the join. No
        // merge lock, and the FP accumulation order is the sample order
        // 0..N-1 for every thread count.
        const std::int64_t slots =
            std::max<std::int64_t>(1, std::min(d.N, kDwSlots));
        const std::int64_t per_slot = (d.N + slots - 1) / slots;
        tensor::Storage dw_slots;
        if (wi->requires_grad) dw_slots.assign(slots * d.Cout * CKK, 0.0f);
        parallel_for(
            slots,
            [&](std::int64_t s0, std::int64_t s1) {
              // Declared writes: this chunk owns dW slots [s0, s1) and the
              // dx slices of the samples those slots cover.
              if (wi->requires_grad)
                sanitize::note_parallel_write(dw_slots.data(),
                                              s0 * d.Cout * CKK,
                                              s1 * d.Cout * CKK);
              if (xi->requires_grad)
                sanitize::note_parallel_write(
                    xi->grad.data(), s0 * per_slot * d.Cin * d.H * d.W,
                    std::min(d.N, s1 * per_slot) * d.Cin * d.H * d.W);
              // col / dcol panels come from the worker's thread-local arena;
              // steady-state training allocates nothing here.
              float* col = kernels::scratch(0, CKK * HW);
              float* dcol = kernels::scratch(1, CKK * HW);
              for (std::int64_t s = s0; s < s1; ++s) {
                float* dw =
                    wi->requires_grad ? dw_slots.data() + s * d.Cout * CKK
                                      : nullptr;
                const std::int64_t n_end = std::min(d.N, (s + 1) * per_slot);
                for (std::int64_t n = s * per_slot; n < n_end; ++n) {
                  const float* gout = go + n * d.Cout * HW;
                  if (wi->requires_grad) {
                    im2col(xi->data.data() + n * d.Cin * d.H * d.W, d, col);
                    // dW[Cout,CKK] += gO[Cout,HW] * col[CKK,HW]^T
                    gemm_nt(gout, col, dw, d.Cout, HW, CKK);
                  }
                  if (xi->requires_grad) {
                    std::fill(dcol, dcol + CKK * HW, 0.0f);
                    // dcol[CKK,HW] += W[Cout,CKK]^T * gO[Cout,HW]
                    gemm_tn(wi->data.data(), gout, dcol, CKK, d.Cout, HW);
                    col2im(dcol, d, xi->grad.data() + n * d.Cin * d.H * d.W);
                  }
                }
              }
            },
            /*grain=*/1);
        if (wi->requires_grad) {
          float* gw = wi->grad.data();
          for (std::int64_t s = 0; s < slots; ++s) {
            const float* dw = dw_slots.data() + s * d.Cout * CKK;
            for (std::int64_t i = 0; i < d.Cout * CKK; ++i) gw[i] += dw[i];
          }
        }
        if (b.defined() && b.impl()->requires_grad) {
          auto bi = b.impl();
          bi->ensure_grad();
          for (std::int64_t n = 0; n < d.N; ++n)
            for (std::int64_t c = 0; c < d.Cout; ++c) {
              const float* src = go + (n * d.Cout + c) * HW;
              double acc = 0.0;
              for (std::int64_t i = 0; i < HW; ++i) acc += src[i];
              bi->grad[static_cast<size_t>(c)] += static_cast<float>(acc);
            }
        }
      });

  // Batch-parallel forward: each sample writes a disjoint output slice.
  {
    const float* xv = x.data();
    const float* wv = w.data();
    float* ov = out.data();
    parallel_for(
        d.N,
        [&](std::int64_t n0, std::int64_t n1) {
          sanitize::note_parallel_write(ov, n0 * d.Cout * HW,
                                        n1 * d.Cout * HW);
          float* col = kernels::scratch(0, CKK * HW);
          for (std::int64_t n = n0; n < n1; ++n) {
            im2col(xv + n * d.Cin * d.H * d.W, d, col);
            float* dst = ov + n * d.Cout * HW;
            gemm_nn(wv, col, dst, d.Cout, CKK, HW);
            if (b.defined()) {
              for (std::int64_t c = 0; c < d.Cout; ++c) {
                const float bv = b.data()[c];
                float* row = dst + c * HW;
                for (std::int64_t i = 0; i < HW; ++i) row[i] += bv;
              }
            }
          }
        },
        /*grain=*/1);
  }
  return out;
}

Tensor max_pool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride) {
  const sanitize::OpScope op_scope("max_pool2d");
  MFA_CHECK_EQ(x.dim(), 4) << " max_pool2d expects NCHW, got "
                           << shape_str(x.shape());
  const std::int64_t N = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  MFA_CHECK(kernel > 0 && stride > 0 && kernel <= H && kernel <= W)
      << " max_pool2d: kernel " << kernel << ", stride " << stride
      << " on input " << shape_str(x.shape());
  const std::int64_t Hout = (H - kernel) / stride + 1;
  const std::int64_t Wout = (W - kernel) / stride + 1;
  auto arg = std::make_shared<std::vector<std::int64_t>>(
      static_cast<size_t>(N * C * Hout * Wout));
  Tensor out = Tensor::make_result(
      {N, C, Hout, Wout}, {x}, [x, arg](detail::TensorImpl& o) {
        auto xi = x.impl();
        if (!xi->requires_grad) return;
        xi->ensure_grad();
        const float* go = o.grad.data();
        float* gx = xi->grad.data();
        const auto n = static_cast<std::int64_t>(o.data.size());
        for (std::int64_t i = 0; i < n; ++i)
          gx[(*arg)[static_cast<size_t>(i)]] += go[i];
      });
  const float* xv = x.data();
  float* ov = out.data();
  std::int64_t oi = 0;
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c) {
      const float* plane = xv + (n * C + c) * H * W;
      const std::int64_t plane_off = (n * C + c) * H * W;
      for (std::int64_t oh = 0; oh < Hout; ++oh)
        for (std::int64_t ow = 0; ow < Wout; ++ow, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t bix = 0;
          for (std::int64_t kh = 0; kh < kernel; ++kh)
            for (std::int64_t kw = 0; kw < kernel; ++kw) {
              const std::int64_t ih = oh * stride + kh;
              const std::int64_t iw = ow * stride + kw;
              const float v = plane[ih * W + iw];
              if (v > best) {
                best = v;
                bix = plane_off + ih * W + iw;
              }
            }
          ov[oi] = best;
          (*arg)[static_cast<size_t>(oi)] = bix;
        }
    }
  return out;
}

Tensor avg_pool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride) {
  const sanitize::OpScope op_scope("avg_pool2d");
  MFA_CHECK_EQ(x.dim(), 4) << " avg_pool2d expects NCHW, got "
                           << shape_str(x.shape());
  const std::int64_t N = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  MFA_CHECK(kernel > 0 && stride > 0 && kernel <= H && kernel <= W)
      << " avg_pool2d: kernel " << kernel << ", stride " << stride
      << " on input " << shape_str(x.shape());
  const std::int64_t Hout = (H - kernel) / stride + 1;
  const std::int64_t Wout = (W - kernel) / stride + 1;
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  Tensor out = Tensor::make_result(
      {N, C, Hout, Wout}, {x},
      [x, kernel, stride, N, C, H, W, Hout, Wout, inv](detail::TensorImpl& o) {
        auto xi = x.impl();
        if (!xi->requires_grad) return;
        xi->ensure_grad();
        const float* go = o.grad.data();
        float* gx = xi->grad.data();
        std::int64_t oi = 0;
        for (std::int64_t n = 0; n < N; ++n)
          for (std::int64_t c = 0; c < C; ++c) {
            float* plane = gx + (n * C + c) * H * W;
            for (std::int64_t oh = 0; oh < Hout; ++oh)
              for (std::int64_t ow = 0; ow < Wout; ++ow, ++oi) {
                const float g = go[oi] * inv;
                for (std::int64_t kh = 0; kh < kernel; ++kh)
                  for (std::int64_t kw = 0; kw < kernel; ++kw)
                    plane[(oh * stride + kh) * W + (ow * stride + kw)] += g;
              }
          }
      });
  const float* xv = x.data();
  float* ov = out.data();
  std::int64_t oi = 0;
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c) {
      const float* plane = xv + (n * C + c) * H * W;
      for (std::int64_t oh = 0; oh < Hout; ++oh)
        for (std::int64_t ow = 0; ow < Wout; ++ow, ++oi) {
          double acc = 0.0;
          for (std::int64_t kh = 0; kh < kernel; ++kh)
            for (std::int64_t kw = 0; kw < kernel; ++kw)
              acc += plane[(oh * stride + kh) * W + (ow * stride + kw)];
          ov[oi] = static_cast<float>(acc) * inv;
        }
    }
  return out;
}

Tensor upsample_nearest2x(const Tensor& x) {
  const sanitize::OpScope op_scope("upsample_nearest2x");
  MFA_CHECK_EQ(x.dim(), 4) << " upsample_nearest2x expects NCHW, got "
                           << shape_str(x.shape());
  const std::int64_t N = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  Tensor out = Tensor::make_result(
      {N, C, H * 2, W * 2}, {x}, [x, N, C, H, W](detail::TensorImpl& o) {
        auto xi = x.impl();
        if (!xi->requires_grad) return;
        xi->ensure_grad();
        const float* go = o.grad.data();
        float* gx = xi->grad.data();
        for (std::int64_t p = 0; p < N * C; ++p) {
          const float* gplane = go + p * 4 * H * W;
          float* xplane = gx + p * H * W;
          for (std::int64_t h = 0; h < H; ++h)
            for (std::int64_t w = 0; w < W; ++w) {
              xplane[h * W + w] += gplane[(2 * h) * 2 * W + 2 * w] +
                                   gplane[(2 * h) * 2 * W + 2 * w + 1] +
                                   gplane[(2 * h + 1) * 2 * W + 2 * w] +
                                   gplane[(2 * h + 1) * 2 * W + 2 * w + 1];
            }
        }
      });
  const float* xv = x.data();
  float* ov = out.data();
  for (std::int64_t p = 0; p < N * C; ++p) {
    const float* xplane = xv + p * H * W;
    float* oplane = ov + p * 4 * H * W;
    for (std::int64_t h = 0; h < H; ++h)
      for (std::int64_t w = 0; w < W; ++w) {
        const float v = xplane[h * W + w];
        oplane[(2 * h) * 2 * W + 2 * w] = v;
        oplane[(2 * h) * 2 * W + 2 * w + 1] = v;
        oplane[(2 * h + 1) * 2 * W + 2 * w] = v;
        oplane[(2 * h + 1) * 2 * W + 2 * w + 1] = v;
      }
  }
  return out;
}

Tensor global_avg_pool(const Tensor& x) {
  const sanitize::OpScope op_scope("global_avg_pool");
  const std::int64_t N = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  const float inv = 1.0f / static_cast<float>(H * W);
  Tensor out = Tensor::make_result(
      {N, C, 1, 1}, {x}, [x, N, C, H, W, inv](detail::TensorImpl& o) {
        auto xi = x.impl();
        if (!xi->requires_grad) return;
        xi->ensure_grad();
        const float* go = o.grad.data();
        float* gx = xi->grad.data();
        for (std::int64_t p = 0; p < N * C; ++p) {
          const float g = go[p] * inv;
          float* plane = gx + p * H * W;
          for (std::int64_t i = 0; i < H * W; ++i) plane[i] += g;
        }
      });
  const float* xv = x.data();
  float* ov = out.data();
  for (std::int64_t p = 0; p < N * C; ++p) {
    const float* plane = xv + p * H * W;
    double acc = 0.0;
    for (std::int64_t i = 0; i < H * W; ++i) acc += plane[i];
    ov[p] = static_cast<float>(acc) * inv;
  }
  return out;
}

}  // namespace mfa::ops
