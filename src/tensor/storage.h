// Pooled, refcounted float storage for tensors.
//
// Storage is the buffer behind every TensorImpl's data and grad (and the
// per-op float workspaces that are not thread-local scratch). Buffers come
// from StoragePool, a process-wide caching allocator that recycles
// same-bucket blocks across iterations: after one warm-up step, a training
// epoch or a predict_levels call acquires every tensor buffer from a free
// list instead of the heap. See DESIGN.md "Threading and memory model".
//
//  * Refcounted handle. Copying a Storage shares the underlying block
//    (atomic refcount); the block returns to the pool when the last handle
//    drops. Tensor code deep-copies (copy_from) wherever value semantics are
//    required — sharing is reserved for read-only captures such as the
//    saved mean/inv_std of a normalisation op.
//  * Size-bucketed. Requests round up to the next power of two (min 32
//    floats), so buffers recycle across ops whose shapes differ slightly.
//    Requests past the largest bucket fall through to exact heap blocks.
//  * Thread-aware. Each thread front-ends the pool with a small lock-free
//    (thread-local) cache, so parallel_for bodies allocate without touching
//    the shared mutex in the steady state; overflow spills to a global,
//    mutex-protected free list. Blocks may be freed on a different thread
//    than they were acquired on.
//  * Observable. hits/misses/releases plus live and cached high-water marks
//    let tests pin the no-leak bound and let scripts/bench.sh assert the
//    steady-state allocation count (see "heap_allocs_per_iter").
//  * Escape hatch. MFA_POOL=off (or 0/false) bypasses the free lists: every
//    acquisition is an exact heap allocation and every release frees it, so
//    ASan sees raw allocations with full poisoning/quarantine. Numerics are
//    bit-identical pool on or off: every acquisition is filled before use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sanitize.h"

namespace mfa::tensor {

namespace detail {
struct Block;  // defined in storage.cpp; handles cache the payload pointer
}  // namespace detail

/// Counter snapshot from StoragePool::stats(). Counts are cumulative since
/// process start (or reset_stats()); gauges reflect the instant of the call.
struct PoolStats {
  std::uint64_t hits = 0;      // acquisitions served from a free list
  std::uint64_t misses = 0;    // acquisitions that went to the heap
  std::uint64_t releases = 0;  // blocks parked on a free list for reuse
  std::uint64_t heap_frees = 0;  // blocks returned to the heap (bypass/trim)
  std::int64_t live_floats = 0;  // floats in blocks currently referenced
  std::int64_t live_floats_high_water = 0;
  std::int64_t cached_floats = 0;  // floats parked on free lists
  std::int64_t cached_floats_high_water = 0;
};

/// Refcounted handle to a pooled float buffer. Vector-like surface so tensor
/// kernels can use it exactly as they used std::vector<float>.
class Storage {
 public:
  Storage() = default;
  Storage(const Storage& other);
  Storage(Storage&& other) noexcept;
  Storage& operator=(const Storage& other);
  Storage& operator=(Storage&& other) noexcept;
  ~Storage();

  /// Pool-backed buffer of n floats, every element set to `value`.
  static Storage full(std::int64_t n, float value);

  /// std::vector::assign semantics: afterwards size() == n and every element
  /// equals `value`. Reuses the current block when it is exclusively owned
  /// and already the right size; otherwise swaps in a fresh pooled block.
  void assign(std::int64_t n, float value);
  /// Deep copy (resizes to match src).
  void copy_from(const Storage& src);
  void copy_from(const float* src, std::int64_t n);
  void fill(float value);
  std::vector<float> to_vector() const;
  /// Drops this handle's reference; the block returns to the pool once the
  /// last handle lets go. Afterwards empty().
  void reset();

  float* data() {
    check_alive();
    return data_;
  }
  const float* data() const {
    check_alive();
    return data_;
  }
  std::size_t size() const { return static_cast<std::size_t>(size_); }
  bool empty() const { return size_ == 0; }
  // operator[] stays uninstrumented: per-element granularity is too hot even
  // for a Debug diagnostic; begin()/end()/data() cover every loop entry.
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }
  float* begin() {
    check_alive();
    return data_;
  }
  float* end() { return data_ + size_; }
  const float* begin() const {
    check_alive();
    return data_;
  }
  const float* end() const { return data_ + size_; }

  /// True when other handles reference the same block.
  bool shared() const;

  /// Handle sharing this handle's block (refcount bump, no copy) but exposing
  /// only the first n floats (n <= size()). The tape arena hands out
  /// bucket-capacity blocks through prefix handles so one parked entry serves
  /// any op whose output fits the bucket.
  Storage share_prefix(std::int64_t n) const;

  /// On-demand sanitizer check (no-op when mfa::sanitize is off): verifies
  /// this handle is still backed by the block generation it acquired, and
  /// that the block's guard zones are intact. Throws check::CheckError on a
  /// violation.
  void verify_guards() const;

  // ---- mfa::sanitize self-test hooks (Debug builds only) ----------------
  // Manufacture the lifetime / double-release defect classes without UB:
  // sanitize_corrupt_release() drops the block's refcount as if this handle
  // had been destroyed while leaving the handle's pointers in place (the
  // block recycles into the pool's free lists, so the memory itself stays
  // valid — exactly the hazard ASan cannot see). sanitize_abandon() then
  // clears the handle WITHOUT releasing, so scope exit stays balanced.
  void sanitize_corrupt_release();
  void sanitize_abandon();

 private:
  /// Replaces the current block with a fresh (uninitialised) one of n floats.
  void acquire_new(std::int64_t n);

  /// Lifetime check: the handle's stamped generation must match the block's
  /// current one (it diverges when the block is released/recycled under a
  /// live handle). One relaxed load + branch when the checker is off.
  void check_alive() const {
#if MFA_SANITIZE_STORAGE_ON
    if (block_ && ::mfa::sanitize::enabled()) check_alive_slow();
#endif
  }
#if MFA_SANITIZE_STORAGE_ON
  void check_alive_slow() const;  // needs detail::Block (storage.cpp)
#endif

  detail::Block* block_ = nullptr;
  float* data_ = nullptr;
  std::int64_t size_ = 0;
#if MFA_SANITIZE_STORAGE_ON
  // Block generation stamped at acquire; maintained even while the runtime
  // switch is off so enabling mid-process never yields false positives.
  std::uint64_t gen_ = 0;
#endif
};

/// Process-wide caching allocator behind Storage (leaky singleton: safe to
/// use from thread-exit destructors of the worker pool).
class StoragePool {
 public:
  static StoragePool& instance();

  /// False when MFA_POOL=off (or set_enabled(false)): acquisitions bypass
  /// the free lists and releases free immediately.
  bool enabled() const;
  /// Test hook; the initial value comes from MFA_POOL. Blocks carry their
  /// origin, so toggling with buffers outstanding is safe.
  void set_enabled(bool on);

  PoolStats stats() const;
  /// Zeroes the cumulative counters and re-bases the high-water marks on the
  /// current gauges.
  void reset_stats();
  /// Frees every block cached globally and in the calling thread's cache
  /// (other threads' caches drain on their exit). Live blocks are untouched.
  void trim();

  /// mfa::sanitize on-demand sweep (no-op when the checker is off): verifies
  /// the guard zones of every block parked in the calling thread's cache and
  /// in the global free lists. Catches writes through stale pointers into
  /// recycled blocks even when no op happens to reacquire them.
  void verify_cached_guards();

  /// mfa::sanitize leak audit: reports a "leak" violation when the pool's
  /// current live float count exceeds `baseline_live_floats` (as captured
  /// from stats().live_floats before the audited scope). `what` names the
  /// scope in the violation message. No-op when the checker is off.
  void audit_leaks(std::int64_t baseline_live_floats, const char* what);

 private:
  friend class Storage;
  StoragePool();
  detail::Block* acquire(std::int64_t n);
  void release(detail::Block* block);
  void recycle(detail::Block* block);  // refcount already zero

  struct Impl;
  Impl* impl_;
};

}  // namespace mfa::tensor
