// Pooled, refcounted float storage for tensors.
//
// Storage is the buffer behind every TensorImpl's data and grad (and the
// per-op float workspaces that are not thread-local scratch). Buffers come
// from StoragePool, a process-wide caching allocator that recycles
// same-bucket blocks across iterations: after one warm-up step, a training
// epoch or a predict_levels call acquires every tensor buffer from a free
// list instead of the heap. See DESIGN.md "Threading and memory model".
//
//  * Refcounted handle. Copying a Storage shares the underlying block
//    (atomic refcount); the block returns to the pool when the last handle
//    drops. Tensor code deep-copies (copy_from) wherever value semantics are
//    required — sharing is reserved for read-only captures such as the
//    saved mean/inv_std of a normalisation op.
//  * Size-bucketed. Requests round up to the next power of two (min 32
//    floats), so buffers recycle across ops whose shapes differ slightly.
//    Requests past the largest bucket fall through to exact heap blocks.
//  * Thread-aware. Each thread front-ends the pool with a small lock-free
//    (thread-local) cache, so parallel_for bodies allocate without touching
//    the shared mutex in the steady state; overflow spills to a global,
//    mutex-protected free list. Blocks may be freed on a different thread
//    than they were acquired on.
//  * Observable. hits/misses/releases plus live and cached high-water marks
//    let tests pin the no-leak bound and let scripts/bench.sh assert the
//    steady-state allocation count (see "heap_allocs_per_iter").
//  * Escape hatch. MFA_POOL=off (or 0/false) bypasses the free lists: every
//    acquisition is an exact heap allocation and every release frees it, so
//    ASan sees raw allocations with full poisoning/quarantine. Numerics are
//    bit-identical pool on or off: every acquisition is filled before use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mfa::tensor {

namespace detail {
struct Block;  // defined in storage.cpp; handles cache the payload pointer
}  // namespace detail

/// Counter snapshot from StoragePool::stats(). Counts are cumulative since
/// process start (or reset_stats()); gauges reflect the instant of the call.
struct PoolStats {
  std::uint64_t hits = 0;      // acquisitions served from a free list
  std::uint64_t misses = 0;    // acquisitions that went to the heap
  std::uint64_t releases = 0;  // blocks parked on a free list for reuse
  std::uint64_t heap_frees = 0;  // blocks returned to the heap (bypass/trim)
  std::int64_t live_floats = 0;  // floats in blocks currently referenced
  std::int64_t live_floats_high_water = 0;
  std::int64_t cached_floats = 0;  // floats parked on free lists
  std::int64_t cached_floats_high_water = 0;
};

/// Refcounted handle to a pooled float buffer. Vector-like surface so tensor
/// kernels can use it exactly as they used std::vector<float>.
class Storage {
 public:
  Storage() = default;
  Storage(const Storage& other);
  Storage(Storage&& other) noexcept;
  Storage& operator=(const Storage& other);
  Storage& operator=(Storage&& other) noexcept;
  ~Storage();

  /// Pool-backed buffer of n floats, every element set to `value`.
  static Storage full(std::int64_t n, float value);

  /// std::vector::assign semantics: afterwards size() == n and every element
  /// equals `value`. Reuses the current block when it is exclusively owned
  /// and already the right size; otherwise swaps in a fresh pooled block.
  void assign(std::int64_t n, float value);
  /// Deep copy (resizes to match src).
  void copy_from(const Storage& src);
  void copy_from(const float* src, std::int64_t n);
  void fill(float value);
  std::vector<float> to_vector() const;
  /// Drops this handle's reference; the block returns to the pool once the
  /// last handle lets go. Afterwards empty().
  void reset();

  float* data() { return data_; }
  const float* data() const { return data_; }
  std::size_t size() const { return static_cast<std::size_t>(size_); }
  bool empty() const { return size_ == 0; }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }
  float* begin() { return data_; }
  float* end() { return data_ + size_; }
  const float* begin() const { return data_; }
  const float* end() const { return data_ + size_; }

  /// True when other handles reference the same block.
  bool shared() const;

 private:
  /// Replaces the current block with a fresh (uninitialised) one of n floats.
  void acquire_new(std::int64_t n);

  detail::Block* block_ = nullptr;
  float* data_ = nullptr;
  std::int64_t size_ = 0;
};

/// Process-wide caching allocator behind Storage (leaky singleton: safe to
/// use from thread-exit destructors of the worker pool).
class StoragePool {
 public:
  static StoragePool& instance();

  /// False when MFA_POOL=off (or set_enabled(false)): acquisitions bypass
  /// the free lists and releases free immediately.
  bool enabled() const;
  /// Test hook; the initial value comes from MFA_POOL. Blocks carry their
  /// origin, so toggling with buffers outstanding is safe.
  void set_enabled(bool on);

  PoolStats stats() const;
  /// Zeroes the cumulative counters and re-bases the high-water marks on the
  /// current gauges.
  void reset_stats();
  /// Frees every block cached globally and in the calling thread's cache
  /// (other threads' caches drain on their exit). Live blocks are untouched.
  void trim();

 private:
  friend class Storage;
  StoragePool();
  detail::Block* acquire(std::int64_t n);
  void release(detail::Block* block);
  void recycle(detail::Block* block);  // refcount already zero

  struct Impl;
  Impl* impl_;
};

}  // namespace mfa::tensor
