// Sparse row ops over an index tensor: the gather/scatter/segment family
// that graph-native models (LHNN's lattice hypergraph) are built from.
//
// Index tensors follow the cross_entropy-targets idiom: a 1-D float tensor
// holding integral ids. Every op decodes the ids once per call into a shared
// int64 vector — an O(M) pass that also bounds-checks each id with always-on
// MFA_CHECKs (out-of-range ids throw check::CheckError in every build type).
// The decoded vector is captured by the backward closure, so the inner
// kernels (forward and backward) run without per-element checks: that is the
// documented Release fast path. Integrality (id == floor(id)) is an
// MFA_DCHECK — a Debug-only diagnosis of a malformed index tensor, since a
// truncated fractional id is still in range and memory-safe.
//
// Determinism contract (same scheme as conv2d's dW reduction): every
// scatter-style reduction partitions the index dimension into a fixed number
// of contiguous slots — kScatterSlots, never MFA_THREADS — accumulates each
// slot into a private dense buffer under a declared-write range, and reduces
// the slots sequentially in slot order after the join. The floating-point
// grouping therefore depends only on the problem size, making results
// bit-identical across MFA_THREADS x MFA_POOL x MFA_EXEC (pinned by the
// property suite and the LHNN golden hash). Gathers parallelise over the
// output rows, which are disjoint by construction.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/sanitize.h"
#include "tensor/ops.h"
#include "tensor/storage.h"

namespace mfa::ops {
namespace {

// Fixed slot count for scatter reductions; see the file comment.
constexpr std::int64_t kScatterSlots = 16;

using IndexVec = std::shared_ptr<const std::vector<std::int64_t>>;

/// Decodes a float index tensor into int64 ids, validating every id against
/// [0, limit). `what` names the op and operand for the error message.
IndexVec decode_index(const Tensor& index, std::int64_t limit,
                      const char* what) {
  MFA_CHECK(index.defined()) << " " << what << ": undefined index tensor";
  MFA_CHECK_EQ(index.dim(), 1)
      << " " << what << ": index must be 1-D, got "
      << shape_str(index.shape());
  const std::int64_t m = index.numel();
  auto ids = std::make_shared<std::vector<std::int64_t>>(
      static_cast<std::size_t>(m));
  const float* iv = index.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float v = iv[i];
    MFA_DCHECK_EQ(v, std::floor(v))
        << " " << what << ": non-integral id " << v << " at position " << i;
    const auto id = static_cast<std::int64_t>(v);
    MFA_CHECK(id >= 0 && id < limit)
        << " " << what << ": id " << id << " at position " << i
        << " out of range [0, " << limit << ")";
    (*ids)[static_cast<std::size_t>(i)] = id;
  }
  return ids;
}

/// Row width (floats per row) of a tensor whose leading dim is the row dim.
std::int64_t row_width(const Tensor& t) {
  std::int64_t d = 1;
  for (std::int64_t i = 1; i < t.dim(); ++i) d *= t.size(i);
  return d;
}

/// out[ids[m]] += src[m] for every m, deterministically: contiguous m-slots
/// accumulate into private buffers, then a sequential slot-order reduce.
/// `scale` (optional, length num_rows) scales src row m by scale[ids[m]]
/// — the segment_mean forward reuses the sum kernel with 1/count weights.
void scatter_add_slotted(const float* src, const std::vector<std::int64_t>& ids,
                         std::int64_t d, float* out, std::int64_t num_rows,
                         const float* scale = nullptr) {
  const auto m = static_cast<std::int64_t>(ids.size());
  const std::int64_t rd = num_rows * d;
  if (m == 0 || rd == 0) return;
  const std::int64_t slots = std::max<std::int64_t>(
      1, std::min<std::int64_t>(m, kScatterSlots));
  if (slots == 1) {
    for (std::int64_t i = 0; i < m; ++i) {
      const float* s = src + i * d;
      float* o = out + ids[static_cast<std::size_t>(i)] * d;
      const float w =
          scale ? scale[ids[static_cast<std::size_t>(i)]] : 1.0f;
      for (std::int64_t k = 0; k < d; ++k) o[k] += w * s[k];
    }
    return;
  }
  const std::int64_t per_slot = (m + slots - 1) / slots;
  tensor::Storage acc;
  acc.assign(slots * rd, 0.0f);
  float* av = acc.data();
  parallel_for(
      slots,
      [&](std::int64_t s0, std::int64_t s1) {
        sanitize::note_parallel_write(av, s0 * rd, s1 * rd);
        for (std::int64_t s = s0; s < s1; ++s) {
          float* slot = av + s * rd;
          const std::int64_t i0 = s * per_slot;
          const std::int64_t i1 = std::min(m, i0 + per_slot);
          for (std::int64_t i = i0; i < i1; ++i) {
            const float* sp = src + i * d;
            float* o = slot + ids[static_cast<std::size_t>(i)] * d;
            const float w =
                scale ? scale[ids[static_cast<std::size_t>(i)]] : 1.0f;
            for (std::int64_t k = 0; k < d; ++k) o[k] += w * sp[k];
          }
        }
      },
      /*grain=*/1);
  // Sequential slot-order reduce: the grouping is fixed by (m, slots), so
  // the sum is bit-identical for any thread count.
  for (std::int64_t s = 0; s < slots; ++s) {
    const float* slot = av + s * rd;
    for (std::int64_t i = 0; i < rd; ++i) out[i] += slot[i];
  }
}

/// out[m] += weight(m) * table[ids[m]] for every m — the gather kernel, also
/// the backward of every scatter-style op. Output rows are disjoint, so it
/// parallelises over m directly.
void gather_kernel(const float* table, const std::vector<std::int64_t>& ids,
                   std::int64_t d, float* out, const float* scale = nullptr) {
  const auto m = static_cast<std::int64_t>(ids.size());
  if (m == 0 || d == 0) return;
  parallel_for(
      m,
      [&](std::int64_t i0, std::int64_t i1) {
        sanitize::note_parallel_write(out, i0 * d, i1 * d);
        for (std::int64_t i = i0; i < i1; ++i) {
          const float* s = table + ids[static_cast<std::size_t>(i)] * d;
          const float w =
              scale ? scale[ids[static_cast<std::size_t>(i)]] : 1.0f;
          float* o = out + i * d;
          for (std::int64_t k = 0; k < d; ++k) o[k] += w * s[k];
        }
      },
      /*grain=*/std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(1, d)));
}

/// Per-segment reciprocal sizes for segment_mean (empty segments -> 0).
std::shared_ptr<const std::vector<float>> segment_inv_counts(
    const std::vector<std::int64_t>& ids, std::int64_t num_segments) {
  auto inv = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(num_segments), 0.0f);
  for (const std::int64_t id : ids) (*inv)[static_cast<std::size_t>(id)] += 1.0f;
  for (float& v : *inv) v = v > 0.0f ? 1.0f / v : 0.0f;
  return inv;
}

Shape rows_shape(const Tensor& like, std::int64_t rows) {
  Shape out = like.shape();
  out[0] = rows;
  return out;
}

/// Shared forward+backward of segment_sum / segment_mean / scatter_add_rows:
/// mean passes the 1/count weights, sum passes none.
Tensor scatter_like(const char* op_name, const Tensor& src,
                    const Tensor& index, std::int64_t num_rows, bool mean) {
  const sanitize::OpScope op_scope(op_name);
  MFA_CHECK(src.defined()) << " " << op_name << ": undefined source";
  MFA_CHECK_GE(src.dim(), 1) << " " << op_name << ": source must have a row "
                             << "dim, got " << shape_str(src.shape());
  MFA_CHECK_GT(num_rows, 0) << " " << op_name << ": num_rows";
  const IndexVec ids = decode_index(index, num_rows, op_name);
  MFA_CHECK_EQ(static_cast<std::int64_t>(ids->size()), src.size(0))
      << " " << op_name << ": index length vs source rows, source "
      << shape_str(src.shape());
  const std::int64_t d = row_width(src);
  std::shared_ptr<const std::vector<float>> inv;
  if (mean) inv = segment_inv_counts(*ids, num_rows);
  Tensor out = Tensor::make_result(
      rows_shape(src, num_rows), {src},
      [src, ids, inv, d](detail::TensorImpl& o) {
        auto si = src.impl();
        if (!si->requires_grad) return;
        si->ensure_grad();
        gather_kernel(o.grad.data(), *ids, d, si->grad.data(),
                      inv ? inv->data() : nullptr);
      });
  scatter_add_slotted(src.data(), *ids, d, out.data(), num_rows,
                      inv ? inv->data() : nullptr);
  return out;
}

}  // namespace

Tensor gather_rows(const Tensor& x, const Tensor& index) {
  const sanitize::OpScope op_scope("gather_rows");
  MFA_CHECK(x.defined()) << " gather_rows: undefined source";
  MFA_CHECK_GE(x.dim(), 1)
      << " gather_rows: source must have a row dim, got "
      << shape_str(x.shape());
  const std::int64_t rows = x.size(0);
  const IndexVec ids = decode_index(index, rows, "gather_rows");
  const std::int64_t d = row_width(x);
  Tensor out = Tensor::make_result(
      rows_shape(x, static_cast<std::int64_t>(ids->size())), {x},
      [x, ids, d, rows](detail::TensorImpl& o) {
        auto xi = x.impl();
        if (!xi->requires_grad) return;
        xi->ensure_grad();
        scatter_add_slotted(o.grad.data(), *ids, d, xi->grad.data(), rows);
      });
  gather_kernel(x.data(), *ids, d, out.data());
  return out;
}

Tensor scatter_add_rows(const Tensor& src, const Tensor& index,
                        std::int64_t num_rows) {
  return scatter_like("scatter_add_rows", src, index, num_rows, false);
}

Tensor segment_sum(const Tensor& src, const Tensor& segment_ids,
                   std::int64_t num_segments) {
  return scatter_like("segment_sum", src, segment_ids, num_segments, false);
}

Tensor segment_mean(const Tensor& src, const Tensor& segment_ids,
                    std::int64_t num_segments) {
  return scatter_like("segment_mean", src, segment_ids, num_segments, true);
}

Tensor index_select(const Tensor& x, std::int64_t dim, const Tensor& index) {
  const sanitize::OpScope op_scope("index_select");
  MFA_CHECK(x.defined()) << " index_select: undefined source";
  const std::int64_t nd = x.dim();
  const std::int64_t dd = dim < 0 ? dim + nd : dim;
  MFA_CHECK_BOUNDS(dd, nd)
      << " index_select dim on " << shape_str(x.shape());
  if (dd == 0) return gather_rows(x, index);
  const std::int64_t extent = x.size(dd);
  const IndexVec ids = decode_index(index, extent, "index_select");
  const auto m = static_cast<std::int64_t>(ids->size());
  std::int64_t outer = 1, inner = 1;
  for (std::int64_t i = 0; i < dd; ++i) outer *= x.size(i);
  for (std::int64_t i = dd + 1; i < nd; ++i) inner *= x.size(i);
  Shape out_shape = x.shape();
  out_shape[static_cast<std::size_t>(dd)] = m;
  Tensor out = Tensor::make_result(
      std::move(out_shape), {x},
      [x, ids, m, extent, outer, inner](detail::TensorImpl& o) {
        auto xi = x.impl();
        if (!xi->requires_grad) return;
        xi->ensure_grad();
        const float* go = o.grad.data();
        float* gx = xi->grad.data();
        // Outer slices write disjoint [extent, inner] blocks; within one
        // slice the m-loop runs sequentially, so the accumulation order into
        // a duplicated id matches the sequential walk exactly.
        parallel_for(
            outer,
            [&](std::int64_t r0, std::int64_t r1) {
              sanitize::note_parallel_write(gx, r0 * extent * inner,
                                            r1 * extent * inner);
              for (std::int64_t r = r0; r < r1; ++r)
                for (std::int64_t i = 0; i < m; ++i) {
                  const std::int64_t id = (*ids)[static_cast<std::size_t>(i)];
                  const float* g = go + (r * m + i) * inner;
                  float* dst = gx + (r * extent + id) * inner;
                  for (std::int64_t k = 0; k < inner; ++k) dst[k] += g[k];
                }
            },
            /*grain=*/1);
      });
  const float* xv = x.data();
  float* ov = out.data();
  parallel_for(
      outer,
      [&](std::int64_t r0, std::int64_t r1) {
        sanitize::note_parallel_write(ov, r0 * m * inner, r1 * m * inner);
        for (std::int64_t r = r0; r < r1; ++r)
          for (std::int64_t i = 0; i < m; ++i) {
            const std::int64_t id = (*ids)[static_cast<std::size_t>(i)];
            const float* s = xv + (r * extent + id) * inner;
            float* o = ov + (r * m + i) * inner;
            for (std::int64_t k = 0; k < inner; ++k) o[k] = s[k];
          }
      },
      /*grain=*/1);
  return out;
}

}  // namespace mfa::ops
