// Dispatch front-end for the GEMM kernel family (see tensor/gemm.h).
//
// Owns everything the per-ISA kernel TUs must not touch: variant selection
// (cpuid + MFA_SIMD + tuned-tile cache, resolved once), the row-parallel
// partition, the sanitizer's declared-write ranges, the obs counters, and
// the thread-local scratch arena. The kernel TUs (gemm_scalar.cpp,
// gemm_avx2.cpp, gemm_avx512.cpp) export plain function-pointer tables and
// contain only arithmetic — this TU is compiled at the build baseline, so
// no wide instruction can leak onto an unsupported host before dispatch.
#include "tensor/gemm.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/sanitize.h"
#include "common/thread_pool.h"
#include "tensor/gemm_tune.h"
#include "tensor/gemm_variant.h"

namespace mfa::kernels {
namespace {

// Row-parallel grain: a GEMM this small is not worth waking the pool for.
constexpr std::int64_t kRowGrain = 16;

constexpr const char* kVariantNames[kNumVariants] = {"scalar", "avx2",
                                                     "avx512"};

#if defined(MFA_GEMM_X86)
// __builtin_cpu_supports also verifies the OS saves the wider register
// state (XGETBV), so a positive answer means the ISA is safe to execute.
bool host_has_avx2() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
bool host_has_avx512() { return __builtin_cpu_supports("avx512f"); }
#else
bool host_has_avx2() { return false; }
bool host_has_avx512() { return false; }
#endif

GemmTiles compiled_defaults(Variant v) {
  GemmTiles t;  // the scalar strips read only nc (the legacy kColBlock)
  switch (v) {
    case Variant::kScalar:
      break;
    case Variant::kAvx2:
      t.mr = 4;
      t.nv = 2;
      break;
    case Variant::kAvx512:
      t.mr = 4;
      t.nv = 2;
      break;
  }
  return t;
}

struct VariantState {
  detail::StripKernels strips;
  bool supported = false;
  GemmTiles base;   // startup tiles: tuned cache or compiled defaults
  GemmTiles tiles;  // currently effective (== base unless overridden)
};

struct Dispatch {
  VariantState v[kNumVariants];
  Variant chosen = Variant::kScalar;
  bool tuned_loaded = false;
  std::string tuned_path;
};

Dispatch& dispatch();

std::atomic<int> g_variant_override{-1};

Variant active_in(const Dispatch& d) {
  const int o = g_variant_override.load(std::memory_order_relaxed);
  if (o >= 0 && o < kNumVariants && d.v[o].supported)
    return static_cast<Variant>(o);
  return d.chosen;
}

Dispatch make_dispatch() {
  Dispatch d;
  d.v[0].strips = detail::scalar_strips();
  d.v[0].supported = true;
#if defined(MFA_GEMM_X86)
  if (host_has_avx2()) {
    d.v[1].strips = detail::avx2_strips();
    d.v[1].supported = true;
    if (host_has_avx512()) {
      d.v[2].strips = detail::avx512_strips();
      d.v[2].supported = true;
    }
  }
#endif
  for (int i = 0; i < kNumVariants; ++i)
    d.v[i].base = compiled_defaults(static_cast<Variant>(i));

  // Tuned-tile cache: MFA_GEMM_TUNED path, else bench/tuned/<fp>.json.
  // Any failure — missing, malformed, out-of-bounds, foreign host — means
  // compiled defaults; a bad cache file must never break startup.
  const char* env_path = std::getenv("MFA_GEMM_TUNED");
  const std::string path =
      env_path && *env_path ? env_path : tune::default_cache_path();
  tune::TunedTable table;
  std::string fp, err;
  if (tune::parse_file(path, &table, &fp, &err)) {
    const std::string host_fp = tune::host_id().fingerprint;
    if (fp == host_fp) {
      for (int i = 0; i < kNumVariants; ++i)
        if (table.have[i]) d.v[i].base = table.tiles[i];
      d.tuned_loaded = true;
      d.tuned_path = path;
    } else {
      log::warn(
          "gemm: tuned cache %s is for another host (fingerprint %s, this "
          "host %s); using compiled default tiles",
          path.c_str(), fp.c_str(), host_fp.c_str());
    }
  } else if (err != "missing") {
    log::warn("gemm: ignoring tuned cache %s (%s); using compiled defaults",
              path.c_str(), err.c_str());
  }
  for (int i = 0; i < kNumVariants; ++i) d.v[i].tiles = d.v[i].base;

  d.chosen = detail::resolve_variant(std::getenv("MFA_SIMD"),
                                     d.v[1].supported, d.v[2].supported);
  const GemmTiles& ct = d.v[static_cast<int>(d.chosen)].tiles;
  log::info(
      "gemm: dispatch=%s (avx2=%d avx512=%d, tiles %s: mr=%d nv=%d nc=%lld "
      "kc=%lld pack_min=%lld pack_min_a=%lld)",
      kVariantNames[static_cast<int>(d.chosen)], d.v[1].supported ? 1 : 0,
      d.v[2].supported ? 1 : 0, d.tuned_loaded ? "tuned" : "default", ct.mr,
      ct.nv, static_cast<long long>(ct.nc), static_cast<long long>(ct.kc),
      static_cast<long long>(ct.pack_min),
      static_cast<long long>(ct.pack_min_a));

  // Pull source: snapshot-time values survive MFA_OBS toggling and always
  // reflect the live override state.
  obs::Registry::instance().register_source("gemm", [] {
    const Dispatch& s = dispatch();
    const Variant a = active_in(s);
    const GemmTiles& t = s.v[static_cast<int>(a)].tiles;
    return std::vector<std::pair<std::string, double>>{
        {"dispatch", static_cast<double>(static_cast<int>(a))},
        {"supported.avx2", s.v[1].supported ? 1.0 : 0.0},
        {"supported.avx512", s.v[2].supported ? 1.0 : 0.0},
        {"tuned", s.tuned_loaded ? 1.0 : 0.0},
        {"tiles.mr", static_cast<double>(t.mr)},
        {"tiles.nv", static_cast<double>(t.nv)},
        {"tiles.nc", static_cast<double>(t.nc)},
        {"tiles.kc", static_cast<double>(t.kc)},
        {"tiles.pack_min", static_cast<double>(t.pack_min)},
        {"tiles.pack_min_a", static_cast<double>(t.pack_min_a)},
    };
  });
  return d;
}

Dispatch& dispatch() {
  static Dispatch d = make_dispatch();
  return d;
}

/// Shared row-parallel driver. Declared writes: each chunk owns C rows
/// [i0, i1). Nested calls (conv's batch loop) skip the declaration — their
/// outputs are either ranges the enclosing chunk already declared (dW
/// slots, output slices) or thread-local scratch that is reused across
/// chunks and would read as a cross-chunk overlap to the checker.
void run_rows(detail::StripKernels::StripFn fn, const float* A,
              const float* B, float* C, std::int64_t m, std::int64_t k,
              std::int64_t n, const GemmTiles& t) {
  static obs::Counter calls = obs::counter("gemm.calls");
  calls.add();
  const bool top_level = !common::ThreadPool::in_parallel_region();
  parallel_for(
      m,
      [&](std::int64_t i0, std::int64_t i1) {
        if (top_level) sanitize::note_parallel_write(C, i0 * n, i1 * n);
        fn(A, B, C, i0, i1, m, k, n, t);
      },
      kRowGrain);
}

}  // namespace

void gemm_nn(const float* A, const float* B, float* C, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  const Dispatch& d = dispatch();
  const VariantState& vs = d.v[static_cast<int>(active_in(d))];
  run_rows(vs.strips.nn, A, B, C, m, k, n, vs.tiles);
}

void gemm_nt(const float* A, const float* B, float* C, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  const Dispatch& d = dispatch();
  const VariantState& vs = d.v[static_cast<int>(active_in(d))];
  run_rows(vs.strips.nt, A, B, C, m, k, n, vs.tiles);
}

void gemm_tn(const float* A, const float* B, float* C, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  const Dispatch& d = dispatch();
  const VariantState& vs = d.v[static_cast<int>(active_in(d))];
  run_rows(vs.strips.tn, A, B, C, m, k, n, vs.tiles);
}

Variant active_variant() { return active_in(dispatch()); }

bool variant_supported(Variant v) {
  const int i = static_cast<int>(v);
  return i >= 0 && i < kNumVariants && dispatch().v[i].supported;
}

const char* variant_name(Variant v) {
  const int i = static_cast<int>(v);
  return i >= 0 && i < kNumVariants ? kVariantNames[i] : "invalid";
}

GemmTiles variant_tiles(Variant v) {
  const int i = static_cast<int>(v);
  MFA_CHECK(i >= 0 && i < kNumVariants)
      << " gemm: variant " << i << " out of range";
  return dispatch().v[i].tiles;
}

bool set_variant_override(int v) {
  if (v < 0) {
    g_variant_override.store(-1, std::memory_order_relaxed);
    return true;
  }
  if (v >= kNumVariants || !dispatch().v[v].supported) {
    log::warn("gemm: ignoring variant override %d (%s)", v,
              v >= kNumVariants ? "out of range" : "unsupported on this host");
    return false;
  }
  g_variant_override.store(v, std::memory_order_relaxed);
  return true;
}

void set_tiles_override(Variant v, const GemmTiles* tiles) {
  const int i = static_cast<int>(v);
  MFA_CHECK(i >= 0 && i < kNumVariants)
      << " gemm: variant " << i << " out of range";
  VariantState& vs = dispatch().v[i];
  vs.tiles = tiles ? *tiles : vs.base;
}

bool tuned_tiles_loaded() { return dispatch().tuned_loaded; }

std::string tuned_tiles_path() { return dispatch().tuned_path; }

namespace detail {

Variant resolve_variant(const char* mfa_simd, bool has_avx2,
                        bool has_avx512) {
  const Variant widest = has_avx512 ? Variant::kAvx512
                         : has_avx2 ? Variant::kAvx2
                                    : Variant::kScalar;
  if (mfa_simd == nullptr || *mfa_simd == '\0') return widest;
  const std::string s(mfa_simd);
  if (s == "auto") return widest;
  if (s == "scalar") return Variant::kScalar;
  if (s == "avx2") {
    if (has_avx2) return Variant::kAvx2;
    log::warn("gemm: MFA_SIMD=avx2 but the host lacks AVX2+FMA; using scalar");
    return Variant::kScalar;
  }
  if (s == "avx512") {
    if (has_avx512) return Variant::kAvx512;
    log::warn("gemm: MFA_SIMD=avx512 but the host lacks AVX-512F; using %s",
              has_avx2 ? "avx2" : "scalar");
    return has_avx2 ? Variant::kAvx2 : Variant::kScalar;
  }
  log::warn(
      "gemm: unrecognised MFA_SIMD=\"%s\" (want scalar|avx2|avx512); "
      "using %s",
      s.c_str(), kVariantNames[static_cast<int>(widest)]);
  return widest;
}

void note_packed_panel() {
  static obs::Counter packed = obs::counter("gemm.packed_panels");
  packed.add();
}

void note_packed_a_panel() {
  static obs::Counter packed = obs::counter("gemm.packed_a_panels");
  packed.add();
}

float* pack_buffer(std::int64_t floats) { return scratch(2, floats); }

float* pack_buffer_a(std::int64_t floats) { return scratch(4, floats); }

}  // namespace detail

float* scratch(int slot, std::int64_t floats) {
  MFA_CHECK(slot >= 0 && slot < kScratchSlots)
      << " gemm scratch: slot " << slot << " out of range";
  MFA_CHECK(floats >= 0) << " gemm scratch: negative size " << floats;
  // 64-byte aligned so packed panels and im2col columns start on a cache
  // line (and a full AVX-512 vector) regardless of the allocator.
  struct Buffer {
    float* data = nullptr;
    std::int64_t cap = 0;
    ~Buffer() { ::operator delete(data, std::align_val_t{64}); }
  };
  thread_local Buffer buffers[kScratchSlots];
  Buffer& buf = buffers[slot];
  if (floats > buf.cap) {
    ::operator delete(buf.data, std::align_val_t{64});
    buf.data = nullptr;
    buf.cap = 0;
    buf.data = static_cast<float*>(::operator new(
        static_cast<std::size_t>(floats) * sizeof(float),
        std::align_val_t{64}));
    buf.cap = floats;
  }
  return buf.data;
}

}  // namespace mfa::kernels
