#include "tensor/storage.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/sanitize.h"

namespace mfa::tensor {

namespace detail {

// Header placed immediately before the float payload. alignas(64) pads the
// header to one cache line, so the payload is 64-byte aligned and the hot
// refcount never false-shares with payload data.
//
// With mfa::sanitize compiled in (Debug), the header additionally carries a
// generation counter (bumped every time the block leaves the live state, so
// stale handles are detected exactly) and a flag recording whether guard
// zones were laid out around the payload when the block was heap-allocated.
// The extra fields still fit the 64-byte line, so layout-sensitive tests and
// the "payload is 64-byte aligned" property are unchanged.
struct alignas(64) Block {
  std::atomic<std::uint32_t> refs;
  std::int32_t bucket;     // free-list index, or -1 for exact heap blocks
  std::int64_t capacity;   // floats in the payload (guard zones excluded)
  Block* next;             // free-list link while cached
#if MFA_SANITIZE_STORAGE_ON
  std::atomic<std::uint64_t> generation;  // bumped on every recycle
  std::uint32_t redzoned;  // 1 when guard zones bracket the payload
#endif
};
static_assert(sizeof(Block) == 64, "payload must stay 64-byte aligned");

#if MFA_SANITIZE_STORAGE_ON
// Guard zone: 64 bytes (16 floats) on each side of the payload, so the
// payload keeps its 64-byte alignment. Filled with a byte pattern and
// verified bytewise — any float-typed overrun store changes it.
constexpr std::int64_t kRedzoneFloats = 16;
constexpr unsigned char kRedzoneByte = 0xA5;

inline float* payload(Block* b) {
  return reinterpret_cast<float*>(b + 1) + (b->redzoned ? kRedzoneFloats : 0);
}
#else
inline float* payload(Block* b) { return reinterpret_cast<float*>(b + 1); }
#endif

}  // namespace detail

namespace {

using detail::Block;

// Buckets are powers of two: bucket b holds blocks of exactly 2^b floats,
// b in [kMinBucket, kMaxBucket]. Anything larger is an exact heap block.
constexpr int kMinBucket = 5;   // 32 floats
constexpr int kMaxBucket = 30;  // 2^30 floats (4 GiB)
constexpr int kNumBuckets = kMaxBucket + 1;

// Per-thread cache caps: a few blocks per bucket and a total byte budget,
// so one thread cannot strand an unbounded amount of memory.
constexpr int kThreadCacheBlocksPerBucket = 4;
constexpr std::int64_t kThreadCacheMaxFloats = std::int64_t{8} << 20;  // 32 MiB

int bucket_for(std::int64_t n) {
  if (n > (std::int64_t{1} << kMaxBucket)) return -1;
  int b = kMinBucket;
  while ((std::int64_t{1} << b) < n) ++b;
  return b;
}

#if MFA_SANITIZE_STORAGE_ON

void write_redzones(Block* b) {
  if (!b->redzoned) return;
  float* pay = detail::payload(b);
  std::memset(pay - detail::kRedzoneFloats, detail::kRedzoneByte,
              detail::kRedzoneFloats * sizeof(float));
  std::memset(pay + b->capacity, detail::kRedzoneByte,
              detail::kRedzoneFloats * sizeof(float));
}

/// Verifies both guard zones; on a stomped byte reports a redzone violation
/// naming the zone, the offset, and the op context, then repaints the zone
/// so count-only mode reports each corruption once. `allow_throw` is false
/// on paths reachable from (noexcept) destructors.
void verify_redzones(Block* b, const char* when, bool allow_throw) {
  if (!b->redzoned || !sanitize::enabled()) return;
  sanitize::detail::add_redzone_checks(1);
  // Self-test hook: pretend guard byte 0 of the trailing zone was stomped.
  // Proves the detection/report path end to end without real corruption.
  if (MFA_FAULT_POINT("sanitize.redzone_corrupt")) {
    std::ostringstream oss;
    oss << "sanitize[redzone]: guard byte 0 after a pooled block of "
        << b->capacity << " floats was overwritten (detected at " << when
        << ") — fault-injected self-test";
    sanitize::report_violation(sanitize::Defect::kRedzone, oss.str(),
                               allow_throw);
    return;
  }
  const float* pay = detail::payload(b);
  const auto* lo = reinterpret_cast<const unsigned char*>(
      pay - detail::kRedzoneFloats);
  const auto* hi = reinterpret_cast<const unsigned char*>(pay + b->capacity);
  const std::size_t zone = detail::kRedzoneFloats * sizeof(float);
  for (std::size_t i = 0; i < zone; ++i) {
    const bool lo_bad = lo[i] != detail::kRedzoneByte;
    if (!lo_bad && hi[i] == detail::kRedzoneByte) continue;
    std::ostringstream oss;
    oss << "sanitize[redzone]: guard byte " << i << " "
        << (lo_bad ? "before" : "after") << " a pooled block of "
        << b->capacity << " floats was overwritten (detected at " << when
        << ") — a kernel wrote " << (lo_bad ? "before float 0" : "past the end")
        << " of the buffer";
    write_redzones(b);  // repaint: one report per corruption, not per check
    sanitize::report_violation(sanitize::Defect::kRedzone, oss.str(),
                               allow_throw);
    return;
  }
}

#endif  // MFA_SANITIZE_STORAGE_ON

Block* heap_block(std::int64_t capacity, int bucket) {
  std::size_t bytes =
      sizeof(Block) + static_cast<std::size_t>(capacity) * sizeof(float);
#if MFA_SANITIZE_STORAGE_ON
  // Guard zones are laid out only when the checker is live at allocation
  // time; the flag travels with the block so runtime toggling stays safe.
  const bool redzoned = sanitize::enabled();
  if (redzoned)
    bytes += 2 * detail::kRedzoneFloats * sizeof(float);
#endif
  void* mem = ::operator new(bytes, std::align_val_t{alignof(Block)});
  auto* b = new (mem) Block;
  b->refs.store(1, std::memory_order_relaxed);
  b->bucket = bucket;
  b->capacity = capacity;
  b->next = nullptr;
#if MFA_SANITIZE_STORAGE_ON
  b->generation.store(1, std::memory_order_relaxed);
  b->redzoned = redzoned ? 1u : 0u;
  write_redzones(b);
#endif
  return b;
}

void heap_free(Block* b) {
  b->~Block();
  ::operator delete(b, std::align_val_t{alignof(Block)});
}

bool env_pool_enabled() {
  const char* v = std::getenv("MFA_POOL");
  if (!v) return true;
  const std::string s(v);
  return !(s == "off" || s == "0" || s == "false");
}

}  // namespace

struct StoragePool::Impl {
  std::atomic<bool> enabled{true};

  // Cumulative counters (relaxed: they are statistics, not synchronisation).
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> releases{0};
  std::atomic<std::uint64_t> heap_frees{0};
  std::atomic<std::int64_t> live_floats{0};
  std::atomic<std::int64_t> live_high_water{0};
  std::atomic<std::int64_t> cached_floats{0};
  std::atomic<std::int64_t> cached_high_water{0};

  // Global free lists; overflow target of the thread caches.
  std::mutex mutex;
  Block* free_list[kNumBuckets] = {};

  // Thread-local front-end cache. The destructor drains into the global
  // lists, so worker threads that exit hand their blocks back.
  struct ThreadCache {
    Block* head[kNumBuckets] = {};
    int count[kNumBuckets] = {};
    std::int64_t floats = 0;
    ~ThreadCache() {
      auto& impl = *StoragePool::instance().impl_;
      std::lock_guard<std::mutex> lock(impl.mutex);
      for (int b = 0; b < kNumBuckets; ++b) {
        while (head[b]) {
          Block* blk = head[b];
          head[b] = blk->next;
          blk->next = impl.free_list[b];
          impl.free_list[b] = blk;
        }
      }
    }
  };

  static ThreadCache& cache() {
    thread_local ThreadCache tc;
    return tc;
  }

  static void raise_high_water(std::atomic<std::int64_t>& mark,
                               std::int64_t value) {
    std::int64_t seen = mark.load(std::memory_order_relaxed);
    while (value > seen &&
           !mark.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  void note_acquired(std::int64_t capacity) {
    const auto live =
        live_floats.fetch_add(capacity, std::memory_order_relaxed) + capacity;
    raise_high_water(live_high_water, live);
  }

  void note_cached(std::int64_t capacity) {
    const auto cached =
        cached_floats.fetch_add(capacity, std::memory_order_relaxed) +
        capacity;
    raise_high_water(cached_high_water, cached);
  }
};

StoragePool::StoragePool() : impl_(new Impl) {
  impl_->enabled.store(env_pool_enabled(), std::memory_order_relaxed);
  // Adopt the pool's existing counters into the metrics registry so
  // metrics_json() snapshots include allocator behaviour without adding a
  // second bump to the acquire/release hot path. `this` is the leaked
  // instance() singleton, so the callback never dangles.
  obs::Registry::instance().register_source("storage_pool", [this] {
    const PoolStats s = stats();
    return std::vector<std::pair<std::string, double>>{
        {"hits", static_cast<double>(s.hits)},
        {"misses", static_cast<double>(s.misses)},
        {"releases", static_cast<double>(s.releases)},
        {"heap_frees", static_cast<double>(s.heap_frees)},
        {"live_floats", static_cast<double>(s.live_floats)},
        {"live_floats_high_water",
         static_cast<double>(s.live_floats_high_water)},
        {"cached_floats", static_cast<double>(s.cached_floats)},
        {"cached_floats_high_water",
         static_cast<double>(s.cached_floats_high_water)},
    };
  });
}

StoragePool& StoragePool::instance() {
  // Leaky on purpose: thread caches drain into the pool from thread-exit
  // destructors, which may run after static destruction would have killed a
  // normal singleton.
  static StoragePool* pool = new StoragePool;
  return *pool;
}

bool StoragePool::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void StoragePool::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

PoolStats StoragePool::stats() const {
  PoolStats s;
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  s.releases = impl_->releases.load(std::memory_order_relaxed);
  s.heap_frees = impl_->heap_frees.load(std::memory_order_relaxed);
  s.live_floats = impl_->live_floats.load(std::memory_order_relaxed);
  s.live_floats_high_water =
      impl_->live_high_water.load(std::memory_order_relaxed);
  s.cached_floats = impl_->cached_floats.load(std::memory_order_relaxed);
  s.cached_floats_high_water =
      impl_->cached_high_water.load(std::memory_order_relaxed);
  return s;
}

void StoragePool::reset_stats() {
  impl_->hits.store(0, std::memory_order_relaxed);
  impl_->misses.store(0, std::memory_order_relaxed);
  impl_->releases.store(0, std::memory_order_relaxed);
  impl_->heap_frees.store(0, std::memory_order_relaxed);
  impl_->live_high_water.store(
      impl_->live_floats.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  impl_->cached_high_water.store(
      impl_->cached_floats.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

void StoragePool::trim() {
  auto& tc = Impl::cache();
  for (int b = 0; b < kNumBuckets; ++b) {
    while (tc.head[b]) {
      Block* blk = tc.head[b];
      tc.head[b] = blk->next;
      tc.count[b] = 0;
      tc.floats -= blk->capacity;
      impl_->cached_floats.fetch_sub(blk->capacity,
                                     std::memory_order_relaxed);
      impl_->heap_frees.fetch_add(1, std::memory_order_relaxed);
      heap_free(blk);
    }
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (int b = 0; b < kNumBuckets; ++b) {
    while (impl_->free_list[b]) {
      Block* blk = impl_->free_list[b];
      impl_->free_list[b] = blk->next;
      impl_->cached_floats.fetch_sub(blk->capacity,
                                     std::memory_order_relaxed);
      impl_->heap_frees.fetch_add(1, std::memory_order_relaxed);
      heap_free(blk);
    }
  }
}

void StoragePool::verify_cached_guards() {
#if MFA_SANITIZE_STORAGE_ON
  if (!sanitize::enabled()) return;
  auto& tc = Impl::cache();
  for (int b = 0; b < kNumBuckets; ++b)
    for (Block* blk = tc.head[b]; blk; blk = blk->next)
      verify_redzones(blk, "cached-block sweep (thread cache)", true);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (int b = 0; b < kNumBuckets; ++b)
    for (Block* blk = impl_->free_list[b]; blk; blk = blk->next)
      verify_redzones(blk, "cached-block sweep (global free list)", true);
#endif
}

void StoragePool::audit_leaks(std::int64_t baseline_live_floats,
                              const char* what) {
#if MFA_SANITIZE_STORAGE_ON
  if (!sanitize::enabled()) return;
  const std::int64_t live =
      impl_->live_floats.load(std::memory_order_relaxed);
  if (live <= baseline_live_floats) return;
  std::ostringstream oss;
  oss << "sanitize[leak]: " << (live - baseline_live_floats)
      << " floats acquired inside '" << (what ? what : "?")
      << "' are still live at the audit point (baseline "
      << baseline_live_floats << ", now " << live
      << ") — a Storage handle outlived its owner scope";
  sanitize::report_violation(sanitize::Defect::kLeak, oss.str());
#else
  (void)baseline_live_floats;
  (void)what;
#endif
}

Block* StoragePool::acquire(std::int64_t n) {
  MFA_CHECK_GE(n, 0) << " Storage: negative size";
  if (n == 0) return nullptr;
  const bool pooled = enabled();
  const int bucket = pooled ? bucket_for(n) : -1;
  if (bucket >= 0) {
    auto& tc = Impl::cache();
    if (Block* blk = tc.head[bucket]) {
      tc.head[bucket] = blk->next;
      --tc.count[bucket];
      tc.floats -= blk->capacity;
      impl_->cached_floats.fetch_sub(blk->capacity,
                                     std::memory_order_relaxed);
      impl_->hits.fetch_add(1, std::memory_order_relaxed);
      impl_->note_acquired(blk->capacity);
#if MFA_SANITIZE_STORAGE_ON
      // Reacquire check: a write through a stale pointer while the block sat
      // in the cache is caught here, before the new owner sees the buffer.
      verify_redzones(blk, "reacquire from thread cache", true);
#endif
      blk->refs.store(1, std::memory_order_relaxed);
      blk->next = nullptr;
      return blk;
    }
    Block* blk = nullptr;
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      blk = impl_->free_list[bucket];
      if (blk) impl_->free_list[bucket] = blk->next;
    }
    if (blk) {
      impl_->cached_floats.fetch_sub(blk->capacity,
                                     std::memory_order_relaxed);
      impl_->hits.fetch_add(1, std::memory_order_relaxed);
      impl_->note_acquired(blk->capacity);
#if MFA_SANITIZE_STORAGE_ON
      verify_redzones(blk, "reacquire from global free list", true);
#endif
      blk->refs.store(1, std::memory_order_relaxed);
      blk->next = nullptr;
      return blk;
    }
  }
  const std::int64_t capacity =
      bucket >= 0 ? (std::int64_t{1} << bucket) : n;
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  impl_->note_acquired(capacity);
  return heap_block(capacity, bucket);
}

void StoragePool::recycle(Block* block) {
#if MFA_SANITIZE_STORAGE_ON
  // Release check: an overrun is pinned to the op that still held the block,
  // not to whichever op later trips over the corrupted free list. recycle()
  // is reachable from Storage destructors, so this path reports without
  // throwing (the violation still counts and logs).
  verify_redzones(block, "release", /*allow_throw=*/false);
  // The block leaves the live state: stale handles (and their cached raw
  // pointers) are invalid from here on, whether it is cached or freed.
  block->generation.fetch_add(1, std::memory_order_relaxed);
#endif
  impl_->live_floats.fetch_sub(block->capacity, std::memory_order_relaxed);
  if (block->bucket < 0 || !enabled()) {
    impl_->heap_frees.fetch_add(1, std::memory_order_relaxed);
    heap_free(block);
    return;
  }
  impl_->releases.fetch_add(1, std::memory_order_relaxed);
  impl_->note_cached(block->capacity);
  const int bucket = block->bucket;
  auto& tc = Impl::cache();
  if (tc.count[bucket] < kThreadCacheBlocksPerBucket &&
      tc.floats + block->capacity <= kThreadCacheMaxFloats) {
    block->next = tc.head[bucket];
    tc.head[bucket] = block;
    ++tc.count[bucket];
    tc.floats += block->capacity;
    return;
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  block->next = impl_->free_list[bucket];
  impl_->free_list[bucket] = block;
}

void StoragePool::release(Block* block) {
  const std::uint32_t prev =
      block->refs.fetch_sub(1, std::memory_order_release);
#if MFA_SANITIZE_STORAGE_ON
  if (prev == 0 && sanitize::enabled()) {
    // The refcount was already zero: this is a double release (the unsigned
    // counter just wrapped — the "negative refcount" case). Restore the
    // count before reporting so the pool stays consistent either way.
    block->refs.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream oss;
    oss << "sanitize[refcount]: double release of a pooled block of "
        << block->capacity
        << " floats (refcount was already zero — it would have gone negative)";
    sanitize::report_violation(sanitize::Defect::kRefcount, oss.str());
    return;
  }
#endif
  if (prev != 1) return;
  std::atomic_thread_fence(std::memory_order_acquire);
  recycle(block);
}

// ---- Storage handle ----

// The copy/move members replicate gen_ alongside the pointers: sibling
// handles share both the block and the generation they acquired it at.
#if MFA_SANITIZE_STORAGE_ON
#define MFA_STORAGE_COPY_GEN_(other) gen_ = (other).gen_;
#else
#define MFA_STORAGE_COPY_GEN_(other)
#endif

Storage::Storage(const Storage& other)
    : block_(other.block_), data_(other.data_), size_(other.size_) {
  MFA_STORAGE_COPY_GEN_(other)
  if (block_) block_->refs.fetch_add(1, std::memory_order_relaxed);
}

Storage::Storage(Storage&& other) noexcept
    : block_(other.block_), data_(other.data_), size_(other.size_) {
  MFA_STORAGE_COPY_GEN_(other)
  other.block_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
}

Storage& Storage::operator=(const Storage& other) {
  if (this == &other) return *this;
  if (other.block_) other.block_->refs.fetch_add(1, std::memory_order_relaxed);
  reset();
  block_ = other.block_;
  data_ = other.data_;
  size_ = other.size_;
  MFA_STORAGE_COPY_GEN_(other)
  return *this;
}

Storage& Storage::operator=(Storage&& other) noexcept {
  if (this == &other) return *this;
  reset();
  block_ = other.block_;
  data_ = other.data_;
  size_ = other.size_;
  MFA_STORAGE_COPY_GEN_(other)
  other.block_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

#undef MFA_STORAGE_COPY_GEN_

#if MFA_SANITIZE_STORAGE_ON

void Storage::check_alive_slow() const {
  const std::uint64_t now =
      block_->generation.load(std::memory_order_relaxed);
  if (now == gen_) return;
  std::ostringstream oss;
  oss << "sanitize[lifetime]: use of a Storage handle (" << size_
      << " floats) after its block was released/recycled: handle holds "
         "generation "
      << gen_ << ", block is at generation " << now;
  sanitize::report_violation(sanitize::Defect::kLifetime, oss.str());
}

void Storage::verify_guards() const {
  if (!block_ || !sanitize::enabled()) return;
  check_alive_slow();
  verify_redzones(block_, "on-demand verify", true);
}

void Storage::sanitize_corrupt_release() {
  if (block_) StoragePool::instance().release(block_);
}

void Storage::sanitize_abandon() {
  block_ = nullptr;
  data_ = nullptr;
  size_ = 0;
}

#else  // !MFA_SANITIZE_STORAGE_ON — the hooks keep their (trivial) ABI so
       // test binaries link in Release; the checks themselves are gone.

void Storage::verify_guards() const {}
void Storage::sanitize_corrupt_release() {}
void Storage::sanitize_abandon() {}

#endif  // MFA_SANITIZE_STORAGE_ON

Storage::~Storage() { reset(); }

void Storage::reset() {
  if (block_) StoragePool::instance().release(block_);
  block_ = nullptr;
  data_ = nullptr;
  size_ = 0;
}

bool Storage::shared() const {
  return block_ && block_->refs.load(std::memory_order_relaxed) > 1;
}

Storage Storage::share_prefix(std::int64_t n) const {
  MFA_CHECK(n >= 0 && n <= size_)
      << " share_prefix(" << n << ") out of range on a " << size_
      << "-float storage";
  Storage s(*this);  // shares the block, bumps the refcount
  s.size_ = n;
  return s;
}

void Storage::acquire_new(std::int64_t n) {
  Block* fresh = StoragePool::instance().acquire(n);
  reset();
  block_ = fresh;
  data_ = fresh ? detail::payload(fresh) : nullptr;
  size_ = fresh ? n : 0;
#if MFA_SANITIZE_STORAGE_ON
  gen_ = fresh ? fresh->generation.load(std::memory_order_relaxed) : 0;
#endif
}

Storage Storage::full(std::int64_t n, float value) {
  Storage s;
  s.assign(n, value);
  return s;
}

void Storage::assign(std::int64_t n, float value) {
  if (n != size_ || shared()) acquire_new(n);
  if (size_ > 0) std::fill(data_, data_ + size_, value);
}

void Storage::fill(float value) {
  check_alive();
  if (size_ > 0) std::fill(data_, data_ + size_, value);
}

void Storage::copy_from(const Storage& src) {
  copy_from(src.data_, src.size_);
}

void Storage::copy_from(const float* src, std::int64_t n) {
  if (n != size_ || shared())
    acquire_new(n);
  else
    check_alive();
  if (size_ > 0)
    std::memcpy(data_, src, static_cast<std::size_t>(size_) * sizeof(float));
}

std::vector<float> Storage::to_vector() const {
  check_alive();
  return std::vector<float>(data_, data_ + size_);
}

}  // namespace mfa::tensor
