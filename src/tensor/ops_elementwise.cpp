#include <cmath>
#include <stdexcept>

#include "common/check.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/sanitize.h"
#include "tensor/ops.h"

namespace mfa::ops {
namespace {

// Same-shape elementwise loops go parallel only past this many elements:
// below it the loop is cheaper than a pool hand-off. Broadcast paths stay
// sequential — their gradient scatter writes overlap across output indices.
constexpr std::int64_t kElemwiseGrain = 1 << 15;

// Broadcast plan: output shape plus per-input element strides aligned to the
// output rank (stride 0 on broadcast dimensions). Walking the output with an
// odometer then yields the matching input offsets without div/mod.
struct Bcast {
  Shape out;
  std::vector<std::int64_t> astride;
  std::vector<std::int64_t> bstride;
  std::int64_t numel = 0;
  bool same_shape = false;
};

std::vector<std::int64_t> contiguous_strides(const Shape& s) {
  std::vector<std::int64_t> st(s.size(), 1);
  for (auto d = static_cast<std::int64_t>(s.size()) - 2; d >= 0; --d)
    st[static_cast<size_t>(d)] =
        st[static_cast<size_t>(d) + 1] * s[static_cast<size_t>(d) + 1];
  return st;
}

Bcast make_bcast(const Shape& a, const Shape& b) {
  Bcast bc;
  bc.same_shape = (a == b);
  const size_t nd = std::max(a.size(), b.size());
  bc.out.resize(nd);
  bc.astride.assign(nd, 0);
  bc.bstride.assign(nd, 0);
  const auto ast = contiguous_strides(a);
  const auto bst = contiguous_strides(b);
  for (size_t d = 0; d < nd; ++d) {
    // Align trailing dims.
    const std::int64_t ad =
        d >= nd - a.size() ? a[d - (nd - a.size())] : 1;
    const std::int64_t bd =
        d >= nd - b.size() ? b[d - (nd - b.size())] : 1;
    MFA_CHECK(ad == bd || ad == 1 || bd == 1)
        << " broadcast mismatch: " << shape_str(a) << " vs " << shape_str(b);
    bc.out[d] = std::max(ad, bd);
    if (ad != 1 && d >= nd - a.size()) bc.astride[d] = ast[d - (nd - a.size())];
    if (bd != 1 && d >= nd - b.size()) bc.bstride[d] = bst[d - (nd - b.size())];
  }
  bc.numel = shape_numel(bc.out);
  return bc;
}

/// Calls f(out_flat, a_off, b_off) for every output element.
template <typename F>
void bcast_walk(const Bcast& bc, F&& f) {
  const auto nd = static_cast<std::int64_t>(bc.out.size());
  if (nd == 0) {
    f(0, 0, 0);
    return;
  }
  std::vector<std::int64_t> idx(static_cast<size_t>(nd), 0);
  std::int64_t aoff = 0, boff = 0;
  for (std::int64_t i = 0; i < bc.numel; ++i) {
    f(i, aoff, boff);
    for (std::int64_t d = nd - 1; d >= 0; --d) {
      const auto du = static_cast<size_t>(d);
      ++idx[du];
      aoff += bc.astride[du];
      boff += bc.bstride[du];
      if (idx[du] < bc.out[du]) break;
      aoff -= bc.astride[du] * bc.out[du];
      boff -= bc.bstride[du] * bc.out[du];
      idx[du] = 0;
    }
  }
}

/// Generic broadcasting binary op. FwdFn: (a,b)->out. The gradient callbacks
/// give d(out)/d(a) and d(out)/d(b) as functions of the input values. `name`
/// must have static storage duration (string literal): it is stamped into
/// the result's tape node for mfa::sanitize violation reports.
template <typename FwdFn, typename DaFn, typename DbFn>
Tensor binary_op(const char* name, const Tensor& a, const Tensor& b, FwdFn fwd,
                 DaFn dfa, DbFn dfb) {
  const sanitize::OpScope op_scope(name);
  MFA_CHECK(a.defined() && b.defined())
      << " binary op on an undefined tensor";
  const Bcast bc = make_bcast(a.shape(), b.shape());
  Tensor out = Tensor::make_result(
      bc.out, {a, b}, [a, b, bc, dfa, dfb](detail::TensorImpl& o) {
        auto ai = a.impl();
        auto bi = b.impl();
        const bool need_a = ai->requires_grad;
        const bool need_b = bi->requires_grad;
        if (need_a) ai->ensure_grad();
        if (need_b) bi->ensure_grad();
        const float* av = ai->data.data();
        const float* bv = bi->data.data();
        const float* go = o.grad.data();
        float* ga = need_a ? ai->grad.data() : nullptr;
        float* gb = need_b ? bi->grad.data() : nullptr;
        if (bc.same_shape) {
          parallel_for(
              bc.numel,
              [&](std::int64_t i0, std::int64_t i1) {
                if (need_a) sanitize::note_parallel_write(ga, i0, i1);
                if (need_b) sanitize::note_parallel_write(gb, i0, i1);
                for (std::int64_t i = i0; i < i1; ++i) {
                  if (need_a) ga[i] += go[i] * dfa(av[i], bv[i]);
                  if (need_b) gb[i] += go[i] * dfb(av[i], bv[i]);
                }
              },
              kElemwiseGrain);
        } else {
          bcast_walk(bc, [&](std::int64_t i, std::int64_t ao, std::int64_t bo) {
            if (need_a) ga[ao] += go[i] * dfa(av[ao], bv[bo]);
            if (need_b) gb[bo] += go[i] * dfb(av[ao], bv[bo]);
          });
        }
      },
      Tensor::kOpFlagElementwise);
  const float* av = a.data();
  const float* bv = b.data();
  float* ov = out.data();
  if (bc.same_shape) {
    parallel_for(
        bc.numel,
        [&](std::int64_t i0, std::int64_t i1) {
          sanitize::note_parallel_write(ov, i0, i1);
          for (std::int64_t i = i0; i < i1; ++i) ov[i] = fwd(av[i], bv[i]);
        },
        kElemwiseGrain);
  } else {
    bcast_walk(bc, [&](std::int64_t i, std::int64_t ao, std::int64_t bo) {
      ov[i] = fwd(av[ao], bv[bo]);
    });
  }
  return out;
}

/// Generic unary op. DFn gives d(out)/d(in) as a function of (in, out).
template <typename FwdFn, typename DFn>
Tensor unary_op(const char* name, const Tensor& a, FwdFn fwd, DFn dfn) {
  const sanitize::OpScope op_scope(name);
  MFA_CHECK(a.defined()) << " unary op on an undefined tensor";
  Tensor out = Tensor::make_result(
      a.shape(), {a}, [a, dfn](detail::TensorImpl& o) {
        auto ai = a.impl();
        if (!ai->requires_grad) return;
        ai->ensure_grad();
        const float* av = ai->data.data();
        const float* ov = o.data.data();
        const float* go = o.grad.data();
        float* ga = ai->grad.data();
        parallel_for(
            static_cast<std::int64_t>(o.data.size()),
            [&](std::int64_t i0, std::int64_t i1) {
              sanitize::note_parallel_write(ga, i0, i1);
              for (std::int64_t i = i0; i < i1; ++i)
                ga[i] += go[i] * dfn(av[i], ov[i]);
            },
            kElemwiseGrain);
      },
      Tensor::kOpFlagElementwise);
  const float* av = a.data();
  float* ov = out.data();
  parallel_for(
      a.numel(),
      [&](std::int64_t i0, std::int64_t i1) {
        sanitize::note_parallel_write(ov, i0, i1);
        for (std::int64_t i = i0; i < i1; ++i) ov[i] = fwd(av[i]);
      },
      kElemwiseGrain);
  return out;
}

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(
      "add", a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(
      "sub", a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(
      "mul", a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(
      "div", a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(
      "add_scalar", a, [s](float x) { return x + s; }, [](float, float) { return 1.0f; });
}

Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(
      "mul_scalar", a, [s](float x) { return x * s; }, [s](float, float) { return s; });
}

Tensor pow_scalar(const Tensor& a, float p) {
  return unary_op(
      "pow_scalar", a, [p](float x) { return std::pow(x, p); },
      [p](float x, float) { return p * std::pow(x, p - 1.0f); });
}

Tensor neg(const Tensor& a) { return mul_scalar(a, -1.0f); }

Tensor exp(const Tensor& a) {
  return unary_op(
      "exp", a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor log(const Tensor& a) {
  return unary_op(
      "log", a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor sqrt(const Tensor& a) {
  return unary_op(
      "sqrt", a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / y; });
}

Tensor relu(const Tensor& a) {
  return unary_op(
      "relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor leaky_relu(const Tensor& a, float slope) {
  return unary_op(
      "leaky_relu", a, [slope](float x) { return x > 0.0f ? x : slope * x; },
      [slope](float x, float) { return x > 0.0f ? 1.0f : slope; });
}

Tensor sigmoid(const Tensor& a) {
  return unary_op(
      "sigmoid", a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor tanh(const Tensor& a) {
  return unary_op(
      "tanh", a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor gelu(const Tensor& a) {
  return unary_op(
      "gelu", a,
      [](float x) {
        return 0.5f * x * (1.0f + std::tanh(kGeluC * (x + 0.044715f * x * x * x)));
      },
      [](float x, float) {
        const float u = kGeluC * (x + 0.044715f * x * x * x);
        const float t = std::tanh(u);
        const float du = kGeluC * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      });
}

Tensor clamp_min(const Tensor& a, float lo) {
  return unary_op(
      "clamp_min", a, [lo](float x) { return x > lo ? x : lo; },
      [lo](float x, float) { return x > lo ? 1.0f : 0.0f; });
}

}  // namespace mfa::ops
