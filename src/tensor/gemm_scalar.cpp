// Portable scalar-source strip kernels — the dispatch fallback.
//
// These are the pre-dispatch kernels of src/tensor/gemm.cpp reshaped into
// row-strip form: 4-row register strips with j-blocked column passes, relying
// on the compiler's auto-vectoriser at the build baseline (this TU is
// compiled -O3 -funroll-loops but with NO -m flags, so it runs on any
// x86-64). The arithmetic is bit-identical to the original kernels — plain
// mul+add in k-ascending order per C element, gemm_nt in double — which
// keeps the historical golden pipeline hash valid for the scalar variant.
//
// Tile parameters: the scalar strips honour t.nc as the column block (the
// old kColBlock; any value is bit-identical, see gemm_tiles.h) and ignore
// mr/nv/kc/pack_min — the fixed 4-row strip shape is what the baseline
// auto-vectoriser handles best, and packing only pays with wide SIMD loads.
#include <algorithm>

#include "tensor/gemm_variant.h"

namespace mfa::kernels::detail {
namespace {

/// One 4-row strip of gemm_nn: C[4,n] += A_rows * B[k,n], j-blocked.
inline void nn_block4(const float* __restrict a0, const float* __restrict a1,
                      const float* __restrict a2, const float* __restrict a3,
                      const float* __restrict B, float* __restrict c0,
                      float* __restrict c1, float* __restrict c2,
                      float* __restrict c3, std::int64_t k, std::int64_t n,
                      std::int64_t col_block) {
  for (std::int64_t j0 = 0; j0 < n; j0 += col_block) {
    const std::int64_t j1 = std::min(n, j0 + col_block);
    for (std::int64_t l = 0; l < k; ++l) {
      const float av0 = a0[l], av1 = a1[l], av2 = a2[l], av3 = a3[l];
      const float* __restrict b = B + l * n;
      for (std::int64_t j = j0; j < j1; ++j) {
        c0[j] += av0 * b[j];
        c1[j] += av1 * b[j];
        c2[j] += av2 * b[j];
        c3[j] += av3 * b[j];
      }
    }
  }
}

/// One remaining row of gemm_nn.
inline void nn_block1(const float* __restrict a, const float* __restrict B,
                      float* __restrict c, std::int64_t k, std::int64_t n,
                      std::int64_t col_block) {
  for (std::int64_t j0 = 0; j0 < n; j0 += col_block) {
    const std::int64_t j1 = std::min(n, j0 + col_block);
    for (std::int64_t l = 0; l < k; ++l) {
      const float av = a[l];
      const float* __restrict b = B + l * n;
      for (std::int64_t j = j0; j < j1; ++j) c[j] += av * b[j];
    }
  }
}

void strip_nn(const float* A, const float* B, float* C, std::int64_t i0,
              std::int64_t i1, std::int64_t m, std::int64_t k, std::int64_t n,
              const GemmTiles& t) {
  (void)m;
  const std::int64_t col_block = std::max<std::int64_t>(1, t.nc);
  std::int64_t i = i0;
  for (; i + 4 <= i1; i += 4)
    nn_block4(A + i * k, A + (i + 1) * k, A + (i + 2) * k, A + (i + 3) * k, B,
              C + i * n, C + (i + 1) * n, C + (i + 2) * n, C + (i + 3) * n, k,
              n, col_block);
  for (; i < i1; ++i) nn_block1(A + i * k, B, C + i * n, k, n, col_block);
}

void strip_nt(const float* A, const float* B, float* C, std::int64_t i0,
              std::int64_t i1, std::int64_t m, std::int64_t k, std::int64_t n,
              const GemmTiles& t) {
  (void)m;
  (void)t;
  std::int64_t i = i0;
  // 4x4 register tile of double accumulators: 16 independent dot products
  // over contiguous rows of A and B, reduced k-ascending so each C element
  // sees the exact order the scalar kernel always used.
  for (; i + 4 <= i1; i += 4) {
    const float* __restrict a0 = A + i * k;
    const float* __restrict a1 = a0 + k;
    const float* __restrict a2 = a1 + k;
    const float* __restrict a3 = a2 + k;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* __restrict b0 = B + j * k;
      const float* __restrict b1 = b0 + k;
      const float* __restrict b2 = b1 + k;
      const float* __restrict b3 = b2 + k;
      double s00 = 0, s01 = 0, s02 = 0, s03 = 0;
      double s10 = 0, s11 = 0, s12 = 0, s13 = 0;
      double s20 = 0, s21 = 0, s22 = 0, s23 = 0;
      double s30 = 0, s31 = 0, s32 = 0, s33 = 0;
      for (std::int64_t l = 0; l < k; ++l) {
        const double av0 = a0[l], av1 = a1[l], av2 = a2[l], av3 = a3[l];
        const double bv0 = b0[l], bv1 = b1[l], bv2 = b2[l], bv3 = b3[l];
        s00 += av0 * bv0; s01 += av0 * bv1; s02 += av0 * bv2; s03 += av0 * bv3;
        s10 += av1 * bv0; s11 += av1 * bv1; s12 += av1 * bv2; s13 += av1 * bv3;
        s20 += av2 * bv0; s21 += av2 * bv1; s22 += av2 * bv2; s23 += av2 * bv3;
        s30 += av3 * bv0; s31 += av3 * bv1; s32 += av3 * bv2; s33 += av3 * bv3;
      }
      float* __restrict c0 = C + i * n + j;
      float* __restrict c1 = c0 + n;
      float* __restrict c2 = c1 + n;
      float* __restrict c3 = c2 + n;
      c0[0] += static_cast<float>(s00); c0[1] += static_cast<float>(s01);
      c0[2] += static_cast<float>(s02); c0[3] += static_cast<float>(s03);
      c1[0] += static_cast<float>(s10); c1[1] += static_cast<float>(s11);
      c1[2] += static_cast<float>(s12); c1[3] += static_cast<float>(s13);
      c2[0] += static_cast<float>(s20); c2[1] += static_cast<float>(s21);
      c2[2] += static_cast<float>(s22); c2[3] += static_cast<float>(s23);
      c3[0] += static_cast<float>(s30); c3[1] += static_cast<float>(s31);
      c3[2] += static_cast<float>(s32); c3[3] += static_cast<float>(s33);
    }
    for (; j < n; ++j) {
      const float* __restrict b = B + j * k;
      double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (std::int64_t l = 0; l < k; ++l) {
        const double bv = b[l];
        s0 += a0[l] * bv;
        s1 += a1[l] * bv;
        s2 += a2[l] * bv;
        s3 += a3[l] * bv;
      }
      C[i * n + j] += static_cast<float>(s0);
      C[(i + 1) * n + j] += static_cast<float>(s1);
      C[(i + 2) * n + j] += static_cast<float>(s2);
      C[(i + 3) * n + j] += static_cast<float>(s3);
    }
  }
  for (; i < i1; ++i) {
    const float* __restrict a = A + i * k;
    float* __restrict c = C + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* __restrict b = B + j * k;
      double s = 0;
      for (std::int64_t l = 0; l < k; ++l)
        s += static_cast<double>(a[l]) * b[l];
      c[j] += static_cast<float>(s);
    }
  }
}

void strip_tn(const float* A, const float* B, float* C, std::int64_t i0,
              std::int64_t i1, std::int64_t m, std::int64_t k, std::int64_t n,
              const GemmTiles& t) {
  const std::int64_t col_block = std::max<std::int64_t>(1, t.nc);
  std::int64_t i = i0;
  // A is walked transposed: a[l*m + i .. i+3] is a contiguous quad, so the
  // 4-row strip reads both inputs unit-stride.
  for (; i + 4 <= i1; i += 4) {
    float* __restrict c0 = C + i * n;
    float* __restrict c1 = c0 + n;
    float* __restrict c2 = c1 + n;
    float* __restrict c3 = c2 + n;
    for (std::int64_t j0 = 0; j0 < n; j0 += col_block) {
      const std::int64_t j1 = std::min(n, j0 + col_block);
      for (std::int64_t l = 0; l < k; ++l) {
        const float* __restrict aq = A + l * m + i;
        const float av0 = aq[0], av1 = aq[1], av2 = aq[2], av3 = aq[3];
        const float* __restrict b = B + l * n;
        for (std::int64_t j = j0; j < j1; ++j) {
          c0[j] += av0 * b[j];
          c1[j] += av1 * b[j];
          c2[j] += av2 * b[j];
          c3[j] += av3 * b[j];
        }
      }
    }
  }
  for (; i < i1; ++i) {
    float* __restrict c = C + i * n;
    for (std::int64_t j0 = 0; j0 < n; j0 += col_block) {
      const std::int64_t j1 = std::min(n, j0 + col_block);
      for (std::int64_t l = 0; l < k; ++l) {
        const float av = A[l * m + i];
        const float* __restrict b = B + l * n;
        for (std::int64_t j = j0; j < j1; ++j) c[j] += av * b[j];
      }
    }
  }
}

}  // namespace

StripKernels scalar_strips() {
  StripKernels s;
  s.nn = strip_nn;
  s.nt = strip_nt;
  s.tn = strip_tn;
  return s;
}

}  // namespace mfa::kernels::detail
