// Differentiable tensor operations.
//
// Every function returns a fresh tensor; when autograd recording is active
// and any input requires gradients, the result carries a backward closure.
// Binary elementwise ops support full NumPy-style broadcasting; gradients of
// broadcast inputs are reduced back to the input shape.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mfa::ops {

// ---- elementwise binary (broadcasting) ----
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// ---- scalar variants ----
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
/// a^p elementwise (a must be positive when p is non-integral).
Tensor pow_scalar(const Tensor& a, float p);

// ---- elementwise unary ----
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor leaky_relu(const Tensor& a, float slope = 0.01f);
Tensor sigmoid(const Tensor& a);
Tensor tanh(const Tensor& a);
/// Gaussian error linear unit (tanh approximation).
Tensor gelu(const Tensor& a);
/// max(a, lo) elementwise; gradient passes where a > lo.
Tensor clamp_min(const Tensor& a, float lo);

// ---- linear algebra ----
/// [m,k] x [k,n] -> [m,n], or batched [b,m,k] x [b,k,n] -> [b,m,n].
/// A 2-D rhs with a 3-D lhs broadcasts over the batch.
Tensor matmul(const Tensor& a, const Tensor& b);

// ---- shape ----
Tensor reshape(const Tensor& a, Shape new_shape);
/// Generic dimension permutation (copies).
Tensor permute(const Tensor& a, const std::vector<std::int64_t>& dims);
/// Swap the last two dims.
Tensor transpose2d(const Tensor& a);
Tensor concat(const std::vector<Tensor>& parts, std::int64_t dim);
/// Slice `len` entries of `dim` starting at `start` (copies).
Tensor narrow(const Tensor& a, std::int64_t dim, std::int64_t start,
              std::int64_t len);

// ---- reductions ----
Tensor sum(const Tensor& a);
Tensor mean(const Tensor& a);
Tensor sum_dim(const Tensor& a, std::int64_t dim, bool keepdim = false);
Tensor mean_dim(const Tensor& a, std::int64_t dim, bool keepdim = false);
/// Max over `dim` (values only; gradient routed to the arg-max element).
Tensor max_dim(const Tensor& a, std::int64_t dim, bool keepdim = false);
/// Index of the maximum along `dim` (not differentiable).
std::vector<std::int64_t> argmax_dim(const Tensor& a, std::int64_t dim);

// ---- sparse / hypergraph (index tensors hold integral ids as floats) ----
//
// Determinism contract: the scatter-style reductions (gather_rows backward,
// scatter_add_rows / segment_sum / segment_mean forward) accumulate through
// a fixed number of contiguous index slots with a sequential slot-order
// reduce after the join — like conv2d's dW reduction — so results are
// bit-identical across MFA_THREADS x MFA_POOL x MFA_EXEC. Index values are
// validated once per op call with always-on MFA_CHECKs during the
// float->int decode pass; the inner kernels then run unchecked (the Release
// fast path — see DESIGN.md, "Sparse ops and hypergraph models").

/// Row gather: x [R, ...], index [M] with ids in [0, R) -> out [M, ...]
/// where out[m] = x[index[m]]. Duplicate and out-of-order ids are fine.
Tensor gather_rows(const Tensor& x, const Tensor& index);
/// Row scatter-add: src [M, ...], index [M] with ids in [0, num_rows) ->
/// out [num_rows, ...] with out[index[m]] += src[m] (deterministic order).
/// Rows never referenced by `index` are zero.
Tensor scatter_add_rows(const Tensor& src, const Tensor& index,
                        std::int64_t num_rows);
/// Segment sum: src [M, ...], segment_ids [M] in [0, num_segments) ->
/// out [num_segments, ...]. Ids need not be sorted or contiguous.
Tensor segment_sum(const Tensor& src, const Tensor& segment_ids,
                   std::int64_t num_segments);
/// Segment mean: like segment_sum divided by the segment sizes; empty
/// segments stay zero.
Tensor segment_mean(const Tensor& src, const Tensor& segment_ids,
                    std::int64_t num_segments);
/// General gather along `dim` (supports negative dim): out shape equals
/// x.shape() with shape[dim] = index.numel(). index_select(x, 0, i) is
/// gather_rows(x, i).
Tensor index_select(const Tensor& x, std::int64_t dim, const Tensor& index);

// ---- normalising / losses ----
Tensor softmax(const Tensor& a, std::int64_t dim);
Tensor log_softmax(const Tensor& a, std::int64_t dim);
/// Mean cross-entropy. logits: [N, C] with targets [N], or [N, C, H, W] with
/// targets [N, H, W] (targets hold integral class ids as floats).
Tensor cross_entropy(const Tensor& logits, const Tensor& targets);
/// Mean squared error.
Tensor mse_loss(const Tensor& pred, const Tensor& target);

// ---- convolution / pooling / resampling (NCHW) ----
/// 2-D convolution; w: [Cout, Cin, Kh, Kw], optional bias [Cout].
Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor& b,
              std::int64_t stride = 1, std::int64_t padding = 0);
Tensor max_pool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride);
Tensor avg_pool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride);
/// Nearest-neighbour 2x upsampling.
Tensor upsample_nearest2x(const Tensor& x);
/// Global average pool: [N,C,H,W] -> [N,C,1,1].
Tensor global_avg_pool(const Tensor& x);

// ---- fused normalisation layers ----
/// Batch norm over (N,H,W) per channel. In training mode uses batch stats and
/// updates running stats in place; in eval mode uses the running stats.
Tensor batch_norm2d(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                    Tensor& running_mean, Tensor& running_var, bool training,
                    float momentum = 0.1f, float eps = 1e-5f);
/// Layer norm over the last dimension.
Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps = 1e-5f);

// ---- operators ----
inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }
inline Tensor operator+(const Tensor& a, float s) { return add_scalar(a, s); }
inline Tensor operator*(const Tensor& a, float s) { return mul_scalar(a, s); }
inline Tensor operator*(float s, const Tensor& a) { return mul_scalar(a, s); }
inline Tensor operator-(const Tensor& a) { return neg(a); }

}  // namespace mfa::ops
