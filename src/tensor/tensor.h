// Dense float32 tensor with define-by-run reverse-mode automatic
// differentiation.
//
// Design notes:
//  * Every Tensor owns contiguous row-major storage; shape-changing ops copy.
//    This keeps the aliasing story trivial (no views, no stride arithmetic in
//    kernels) at the cost of some copies that are negligible at the scales
//    this library targets.
//  * Autograd is a dynamic tape: each op that produces a grad-requiring
//    output records a node (backward closure + parent references) on the
//    calling thread's mfa::tensor::Tape (see tensor/tape.h).
//    Tensor::backward() hands execution to the tape: a reverse-topological
//    schedule runs the closures — sequentially or level-parallel across the
//    ThreadPool depending on MFA_EXEC — then retires the whole tape in one
//    bulk step. As each non-leaf node retires, its gradient buffer is
//    released back to the storage pool (leaves keep theirs for the
//    optimizer).
//  * All buffers are tensor::Storage handles drawn from the recycling
//    StoragePool (see tensor/storage.h); op intermediates additionally
//    recycle through the tape's arena. Steady-state training and inference
//    loops stop allocating after a warm-up iteration.
//  * GradMode (thread-local) disables tape construction for inference.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/storage.h"

namespace mfa {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape.
std::int64_t shape_numel(const Shape& shape);
/// Human-readable "[2, 3, 4]".
std::string shape_str(const Shape& shape);

namespace detail {

struct TensorImpl {
  Shape shape;
  tensor::Storage data;
  tensor::Storage grad;  // lazily acquired from the pool, same length as data
  bool requires_grad = false;
  // Tape linkage: the node id this impl's producing op recorded on the
  // calling thread's Tape, valid only while tape_epoch matches the tape's
  // current epoch (backward() retires the whole tape and bumps the epoch).
  // -1 / stale epoch means leaf: parameters, inputs, detached tensors, and
  // survivors of an already-retired graph.
  std::int32_t tape_id = -1;
  std::uint64_t tape_epoch = 0;
  // Scratch owned by the tape planner/executor (see tensor/tape.h); stamped
  // fields so backward() bookkeeping allocates nothing per call.
  std::uint64_t plan_stamp = 0;
  std::int32_t plan_last = -1;
  std::int32_t last_grad_writer = -1;  // finite-grad scan attribution
  void ensure_grad() {
    if (grad.size() != data.size())
      grad.assign(static_cast<std::int64_t>(data.size()), 0.0f);
  }
};

}  // namespace detail

/// RAII guard and query point for autograd recording.
struct GradMode {
  static bool enabled();
  static void set_enabled(bool on);
};

/// Disables autograd recording within a scope (inference / label generation).
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::enabled()) { GradMode::set_enabled(false); }
  ~NoGradGuard() { GradMode::set_enabled(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

class Tensor {
 public:
  /// Default-constructed tensors are empty (defined() == false).
  Tensor() = default;

  // ---- factories ----
  static Tensor zeros(Shape shape, bool requires_grad = false);
  static Tensor ones(Shape shape, bool requires_grad = false);
  static Tensor full(Shape shape, float value, bool requires_grad = false);
  static Tensor from_data(Shape shape, std::vector<float> data,
                          bool requires_grad = false);
  static Tensor scalar(float value, bool requires_grad = false);
  /// i.i.d. N(0, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f,
                      bool requires_grad = false);
  /// i.i.d. U[lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi,
                        bool requires_grad = false);

  // ---- structure ----
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  std::int64_t dim() const;
  std::int64_t size(std::int64_t d) const;  // supports negative d
  std::int64_t numel() const;

  // ---- data access ----
  float* data();
  const float* data() const;
  /// Value of a 0-d / 1-element tensor.
  float item() const;
  /// Multi-dimensional element access (bounds-checked); for tests and glue
  /// code, not kernels.
  float at(std::initializer_list<std::int64_t> idx) const;
  void set(std::initializer_list<std::int64_t> idx, float v);
  /// Copies the contents into a std::vector.
  std::vector<float> to_vector() const;

  // ---- autograd ----
  bool requires_grad() const;
  Tensor& set_requires_grad(bool on);
  /// Gradient accumulated by the last backward(); zeros if never touched.
  Tensor grad() const;
  void zero_grad();
  /// Runs reverse-mode AD from this (scalar) tensor.
  void backward();
  /// Runs reverse-mode AD from several scalar roots in one pass, computing
  /// the gradient of their SUM over the union of their subgraphs (two-head
  /// training: main loss + auxiliary head). All roots must live on the
  /// calling thread's tape; the whole tape retires afterwards, exactly like
  /// backward(). Duplicate roots accumulate; leaf roots just receive their
  /// seed gradient.
  static void backward_multi(const std::vector<Tensor>& roots);
  /// Same data, detached from the tape.
  Tensor detach() const;
  /// Deep copy (data only, leaf).
  Tensor clone() const;

  // ---- in-place (leaf-only helpers for optimizers; never taped) ----
  void add_(const Tensor& other, float alpha = 1.0f);
  void mul_(float s);
  void fill_(float v);
  void copy_from(const Tensor& src);

  // ---- internals shared by the op kernels ----
  std::shared_ptr<detail::TensorImpl> impl() const { return impl_; }
  static Tensor wrap(std::shared_ptr<detail::TensorImpl> impl);
  /// make_result flags: the op's backward closure is a trivial elementwise
  /// scatter (output grad read once per element, parents written once per
  /// element, no reduction) — the tape's graph executor may fuse a chain of
  /// such nodes into one task. Scheduling hint only; never changes numerics.
  static constexpr unsigned kOpFlagElementwise = 1u << 0;
  /// Creates the result tensor of an op, recording a tape node when autograd
  /// is active. `backward` may be null for non-differentiable ops.
  static Tensor make_result(Shape shape, std::vector<Tensor> inputs,
                            std::function<void(detail::TensorImpl&)> backward,
                            unsigned flags = 0);

 private:
  explicit Tensor(std::shared_ptr<detail::TensorImpl> impl)
      : impl_(std::move(impl)) {}
  std::shared_ptr<detail::TensorImpl> impl_;
};

}  // namespace mfa
