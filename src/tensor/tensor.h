// Dense float32 tensor with define-by-run reverse-mode automatic
// differentiation.
//
// Design notes:
//  * Every Tensor owns contiguous row-major storage; shape-changing ops copy.
//    This keeps the aliasing story trivial (no views, no stride arithmetic in
//    kernels) at the cost of some copies that are negligible at the scales
//    this library targets.
//  * Autograd is a dynamic tape: each op that produces a grad-requiring
//    output records a closure that scatters the output gradient into its
//    inputs. Tensor::backward() topologically sorts the captured graph and
//    runs the closures in reverse order. As each non-leaf node retires, its
//    gradient buffer is released back to the storage pool (leaves keep
//    theirs for the optimizer).
//  * All buffers are tensor::Storage handles drawn from the recycling
//    StoragePool (see tensor/storage.h), so steady-state training and
//    inference loops stop allocating after a warm-up iteration.
//  * GradMode (thread-local) disables tape construction for inference.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/storage.h"

namespace mfa {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape.
std::int64_t shape_numel(const Shape& shape);
/// Human-readable "[2, 3, 4]".
std::string shape_str(const Shape& shape);

namespace detail {

struct TensorImpl {
  Shape shape;
  tensor::Storage data;
  tensor::Storage grad;  // lazily acquired from the pool, same length as data
  bool requires_grad = false;
  // Name of the op that produced this node (static-storage string stamped by
  // make_result from sanitize::current_op()); backtrace-lite context for
  // mfa::sanitize violation reports. Null for leaves / when the checker is
  // off.
  const char* op_name = nullptr;
  std::function<void()> backward_fn;                 // null for leaves
  std::vector<std::shared_ptr<TensorImpl>> parents;  // autograd edges
  void ensure_grad() {
    if (grad.size() != data.size())
      grad.assign(static_cast<std::int64_t>(data.size()), 0.0f);
  }
};

}  // namespace detail

/// RAII guard and query point for autograd recording.
struct GradMode {
  static bool enabled();
  static void set_enabled(bool on);
};

/// Disables autograd recording within a scope (inference / label generation).
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::enabled()) { GradMode::set_enabled(false); }
  ~NoGradGuard() { GradMode::set_enabled(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

class Tensor {
 public:
  /// Default-constructed tensors are empty (defined() == false).
  Tensor() = default;

  // ---- factories ----
  static Tensor zeros(Shape shape, bool requires_grad = false);
  static Tensor ones(Shape shape, bool requires_grad = false);
  static Tensor full(Shape shape, float value, bool requires_grad = false);
  static Tensor from_data(Shape shape, std::vector<float> data,
                          bool requires_grad = false);
  static Tensor scalar(float value, bool requires_grad = false);
  /// i.i.d. N(0, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f,
                      bool requires_grad = false);
  /// i.i.d. U[lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi,
                        bool requires_grad = false);

  // ---- structure ----
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  std::int64_t dim() const;
  std::int64_t size(std::int64_t d) const;  // supports negative d
  std::int64_t numel() const;

  // ---- data access ----
  float* data();
  const float* data() const;
  /// Value of a 0-d / 1-element tensor.
  float item() const;
  /// Multi-dimensional element access (bounds-checked); for tests and glue
  /// code, not kernels.
  float at(std::initializer_list<std::int64_t> idx) const;
  void set(std::initializer_list<std::int64_t> idx, float v);
  /// Copies the contents into a std::vector.
  std::vector<float> to_vector() const;

  // ---- autograd ----
  bool requires_grad() const;
  Tensor& set_requires_grad(bool on);
  /// Gradient accumulated by the last backward(); zeros if never touched.
  Tensor grad() const;
  void zero_grad();
  /// Runs reverse-mode AD from this (scalar) tensor.
  void backward();
  /// Same data, detached from the tape.
  Tensor detach() const;
  /// Deep copy (data only, leaf).
  Tensor clone() const;

  // ---- in-place (leaf-only helpers for optimizers; never taped) ----
  void add_(const Tensor& other, float alpha = 1.0f);
  void mul_(float s);
  void fill_(float v);
  void copy_from(const Tensor& src);

  // ---- internals shared by the op kernels ----
  std::shared_ptr<detail::TensorImpl> impl() const { return impl_; }
  static Tensor wrap(std::shared_ptr<detail::TensorImpl> impl);
  /// Creates the result tensor of an op, wiring requires_grad/parents when
  /// recording is active. `backward` may be null for non-differentiable ops.
  static Tensor make_result(Shape shape, std::vector<Tensor> inputs,
                            std::function<void(detail::TensorImpl&)> backward);

 private:
  explicit Tensor(std::shared_ptr<detail::TensorImpl> impl)
      : impl_(std::move(impl)) {}
  std::shared_ptr<detail::TensorImpl> impl_;
};

}  // namespace mfa
