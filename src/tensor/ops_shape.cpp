#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/check.h"
#include "common/log.h"
#include "tensor/ops.h"

namespace mfa::ops {
namespace {

std::vector<std::int64_t> contiguous_strides(const Shape& s) {
  std::vector<std::int64_t> st(s.size(), 1);
  for (auto d = static_cast<std::int64_t>(s.size()) - 2; d >= 0; --d)
    st[static_cast<size_t>(d)] =
        st[static_cast<size_t>(d) + 1] * s[static_cast<size_t>(d) + 1];
  return st;
}

}  // namespace

Tensor reshape(const Tensor& a, Shape new_shape) {
  // One entry may be -1 (inferred).
  std::int64_t known = 1;
  std::int64_t infer = -1;
  for (size_t d = 0; d < new_shape.size(); ++d) {
    if (new_shape[d] == -1) {
      MFA_CHECK(infer < 0) << " reshape: two -1 dims in "
                           << shape_str(new_shape);
      infer = static_cast<std::int64_t>(d);
    } else {
      known *= new_shape[d];
    }
  }
  if (infer >= 0) new_shape[static_cast<size_t>(infer)] = a.numel() / known;
  MFA_CHECK_EQ(shape_numel(new_shape), a.numel())
      << " reshape: " << shape_str(a.shape()) << " -> "
      << shape_str(new_shape) << " element mismatch";
  Tensor out = Tensor::make_result(
      new_shape, {a}, [a](detail::TensorImpl& o) {
        auto ai = a.impl();
        if (!ai->requires_grad) return;
        ai->ensure_grad();
        const auto n = static_cast<std::int64_t>(o.data.size());
        const float* go = o.grad.data();
        float* ga = ai->grad.data();
        for (std::int64_t i = 0; i < n; ++i) ga[i] += go[i];
      });
  std::copy(a.data(), a.data() + a.numel(), out.data());
  return out;
}

Tensor permute(const Tensor& a, const std::vector<std::int64_t>& dims) {
  const auto nd = a.dim();
  MFA_CHECK_EQ(static_cast<std::int64_t>(dims.size()), nd)
      << " permute: rank mismatch for " << shape_str(a.shape());
  Shape out_shape(static_cast<size_t>(nd));
  for (std::int64_t d = 0; d < nd; ++d)
    out_shape[static_cast<size_t>(d)] = a.size(dims[static_cast<size_t>(d)]);
  const auto in_strides = contiguous_strides(a.shape());
  // src stride for each output dim.
  std::vector<std::int64_t> src_stride(static_cast<size_t>(nd));
  for (std::int64_t d = 0; d < nd; ++d)
    src_stride[static_cast<size_t>(d)] =
        in_strides[static_cast<size_t>(dims[static_cast<size_t>(d)])];

  // Walks the output in order, producing the source offset odometer-style.
  auto walk = [out_shape, src_stride, nd](auto&& f) {
    std::vector<std::int64_t> idx(static_cast<size_t>(nd), 0);
    std::int64_t src = 0;
    const std::int64_t n = shape_numel(out_shape);
    for (std::int64_t i = 0; i < n; ++i) {
      f(i, src);
      for (std::int64_t d = nd - 1; d >= 0; --d) {
        const auto du = static_cast<size_t>(d);
        ++idx[du];
        src += src_stride[du];
        if (idx[du] < out_shape[du]) break;
        src -= src_stride[du] * out_shape[du];
        idx[du] = 0;
      }
    }
  };

  Tensor out = Tensor::make_result(
      out_shape, {a}, [a, walk](detail::TensorImpl& o) {
        auto ai = a.impl();
        if (!ai->requires_grad) return;
        ai->ensure_grad();
        const float* go = o.grad.data();
        float* ga = ai->grad.data();
        walk([&](std::int64_t i, std::int64_t src) { ga[src] += go[i]; });
      });
  const float* av = a.data();
  float* ov = out.data();
  walk([&](std::int64_t i, std::int64_t src) { ov[i] = av[src]; });
  return out;
}

Tensor transpose2d(const Tensor& a) {
  const auto nd = a.dim();
  MFA_CHECK_GE(nd, 2) << " transpose2d on " << shape_str(a.shape());
  std::vector<std::int64_t> dims(static_cast<size_t>(nd));
  std::iota(dims.begin(), dims.end(), 0);
  std::swap(dims[static_cast<size_t>(nd - 1)], dims[static_cast<size_t>(nd - 2)]);
  return permute(a, dims);
}

Tensor concat(const std::vector<Tensor>& parts, std::int64_t dim) {
  MFA_CHECK(!parts.empty()) << " concat: no inputs";
  const auto nd = parts[0].dim();
  if (dim < 0) dim += nd;
  MFA_CHECK_BOUNDS(dim, nd) << " concat dim";
  Shape out_shape = parts[0].shape();
  out_shape[static_cast<size_t>(dim)] = 0;
  for (const auto& p : parts) {
    MFA_CHECK_EQ(p.dim(), nd) << " concat: rank mismatch, "
                              << shape_str(p.shape()) << " vs "
                              << shape_str(parts[0].shape());
    for (std::int64_t d = 0; d < nd; ++d) {
      MFA_CHECK(d == dim || p.size(d) == parts[0].size(d))
          << " concat: off-dim mismatch, " << shape_str(p.shape()) << " vs "
          << shape_str(parts[0].shape()) << " along dim " << dim;
    }
    out_shape[static_cast<size_t>(dim)] += p.size(dim);
  }
  // outer = product of dims before `dim`; inner = product after.
  std::int64_t outer = 1, inner = 1;
  for (std::int64_t d = 0; d < dim; ++d) outer *= out_shape[static_cast<size_t>(d)];
  for (std::int64_t d = dim + 1; d < nd; ++d)
    inner *= out_shape[static_cast<size_t>(d)];
  const std::int64_t out_dim = out_shape[static_cast<size_t>(dim)];

  Tensor out = Tensor::make_result(
      out_shape, parts,
      [parts, outer, inner, out_dim, dim](detail::TensorImpl& o) {
        const float* go = o.grad.data();
        std::int64_t off = 0;
        for (const auto& p : parts) {
          auto pi = p.impl();
          const std::int64_t pd = p.size(dim);
          if (pi->requires_grad) {
            pi->ensure_grad();
            float* gp = pi->grad.data();
            for (std::int64_t r = 0; r < outer; ++r) {
              const float* src = go + (r * out_dim + off) * inner;
              float* dst = gp + r * pd * inner;
              for (std::int64_t k = 0; k < pd * inner; ++k) dst[k] += src[k];
            }
          }
          off += pd;
        }
      });
  float* ov = out.data();
  std::int64_t off = 0;
  for (const auto& p : parts) {
    const std::int64_t pd = p.size(dim);
    const float* pv = p.data();
    for (std::int64_t r = 0; r < outer; ++r) {
      std::copy(pv + r * pd * inner, pv + (r + 1) * pd * inner,
                ov + (r * out_dim + off) * inner);
    }
    off += pd;
  }
  return out;
}

Tensor narrow(const Tensor& a, std::int64_t dim, std::int64_t start,
              std::int64_t len) {
  const auto nd = a.dim();
  if (dim < 0) dim += nd;
  MFA_CHECK(start >= 0 && len > 0 && start + len <= a.size(dim))
      << " narrow: slice [" << start << ", " << start + len
      << ") out of range for dim " << dim << " of " << shape_str(a.shape());
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(dim)] = len;
  std::int64_t outer = 1, inner = 1;
  for (std::int64_t d = 0; d < dim; ++d) outer *= a.size(d);
  for (std::int64_t d = dim + 1; d < nd; ++d) inner *= a.size(d);
  const std::int64_t in_dim = a.size(dim);

  Tensor out = Tensor::make_result(
      out_shape, {a},
      [a, outer, inner, in_dim, start, len](detail::TensorImpl& o) {
        auto ai = a.impl();
        if (!ai->requires_grad) return;
        ai->ensure_grad();
        const float* go = o.grad.data();
        float* ga = ai->grad.data();
        for (std::int64_t r = 0; r < outer; ++r) {
          float* dst = ga + (r * in_dim + start) * inner;
          const float* src = go + r * len * inner;
          for (std::int64_t k = 0; k < len * inner; ++k) dst[k] += src[k];
        }
      });
  const float* av = a.data();
  float* ov = out.data();
  for (std::int64_t r = 0; r < outer; ++r) {
    std::copy(av + (r * in_dim + start) * inner,
              av + (r * in_dim + start + len) * inner, ov + r * len * inner);
  }
  return out;
}

}  // namespace mfa::ops
