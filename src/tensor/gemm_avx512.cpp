// AVX-512F GEMM kernels. This TU is compiled with -mavx2 -mfma -mavx512f
// (see src/tensor/CMakeLists.txt) and must only be entered on hosts that
// pass the dispatch front-end's cpuid check — everything here except
// avx512_strips() lives in the anonymous namespace so no AVX-512-encoded
// symbol can be picked up by another TU at link time.
#if defined(MFA_GEMM_X86)

#include <immintrin.h>

#include <cstdint>

#include "tensor/gemm_variant.h"

namespace mfa::kernels::detail {
namespace {

struct V {
  static constexpr int W = 16;
  using vf = __m512;
  static vf load(const float* p) { return _mm512_loadu_ps(p); }
  static void store(float* p, vf v) { _mm512_storeu_ps(p, v); }
  static vf broadcast(float f) { return _mm512_set1_ps(f); }
  static vf fma(vf a, vf b, vf c) { return _mm512_fmadd_ps(a, b, c); }
  static vf zero() { return _mm512_setzero_ps(); }

  // Low `rem` lanes active (rem in 1..16); maskz load zeroes the rest, so
  // tail FMAs compute a*0+0 in dead lanes and the masked store skips them.
  static __mmask16 mask(int rem) {
    return static_cast<__mmask16>((1u << rem) - 1u);
  }
  static vf maskload(const float* p, int rem) {
    // mask_loadu with an explicit zero source rather than maskz_loadu: same
    // semantics, but gcc 12's maskz expansion trips -Wmaybe-uninitialized
    // at -O0 (the undef pass-through operand).
    return _mm512_mask_loadu_ps(zero(), mask(rem), p);
  }
  static void maskstore(float* p, int rem, vf v) {
    _mm512_mask_storeu_ps(p, mask(rem), v);
  }

  static constexpr int DW = 8;
  using vd = __m512d;
  static vd dzero() { return _mm512_setzero_pd(); }
  static vd dload_cvt(const float* p) {
    // Full-mask mask_cvtps_pd with an explicit zero source: identical to
    // plain cvtps_pd, but the latter's undef pass-through operand trips
    // gcc 12's -Wmaybe-uninitialized when inlined in Debug builds.
    return _mm512_mask_cvtps_pd(_mm512_setzero_pd(),
                                static_cast<__mmask8>(0xFF),
                                _mm256_loadu_ps(p));
  }
  static vd dfma(vd a, vd b, vd c) { return _mm512_fmadd_pd(a, b, c); }
  static double dhsum_seq(vd v) {
    alignas(64) double t[8];
    _mm512_store_pd(t, v);
    return ((((((t[0] + t[1]) + t[2]) + t[3]) + t[4]) + t[5]) + t[6]) + t[7];
  }

  // 2x4 nt register tile: 8 double accumulators + 6 operand vectors out of
  // 32 zmm registers.
  static constexpr int kNtRows = 2;
  static constexpr int kNtCols = 4;
};

#include "tensor/gemm_simd.inl"

}  // namespace

StripKernels avx512_strips() {
  StripKernels s;
  s.nn = simd_nn;
  s.nt = strip_nt;
  s.tn = simd_tn;
  return s;
}

}  // namespace mfa::kernels::detail

#endif  // MFA_GEMM_X86
