#include <stdexcept>

#include "common/check.h"
#include "common/log.h"
#include "common/sanitize.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace mfa::ops {

using kernels::gemm_nn;
using kernels::gemm_nt;
using kernels::gemm_tn;

Tensor matmul(const Tensor& a, const Tensor& b) {
  const sanitize::OpScope op_scope("matmul");
  const auto ad = a.dim();
  const auto bd = b.dim();
  MFA_CHECK((ad == 2 || ad == 3) && (bd == 2 || bd == 3) && bd <= ad)
      << " matmul: unsupported ranks " << shape_str(a.shape()) << " x "
      << shape_str(b.shape());
  const std::int64_t batch = ad == 3 ? a.size(0) : 1;
  const std::int64_t m = a.size(ad - 2);
  const std::int64_t k = a.size(ad - 1);
  const std::int64_t n = b.size(bd - 1);
  MFA_CHECK(b.size(bd - 2) == k && (bd != 3 || b.size(0) == batch))
      << " matmul: shape mismatch " << shape_str(a.shape()) << " x "
      << shape_str(b.shape());
  Shape out_shape = ad == 3 ? Shape{batch, m, n} : Shape{m, n};
  const bool b_batched = (bd == 3);

  Tensor out = Tensor::make_result(
      out_shape, {a, b},
      [a, b, batch, m, k, n, b_batched](detail::TensorImpl& o) {
        auto ai = a.impl();
        auto bi = b.impl();
        const float* go = o.grad.data();
        if (ai->requires_grad) {
          ai->ensure_grad();
          for (std::int64_t bt = 0; bt < batch; ++bt) {
            gemm_nt(go + bt * m * n,
                    bi->data.data() + (b_batched ? bt * k * n : 0),
                    ai->grad.data() + bt * m * k, m, n, k);
          }
        }
        if (bi->requires_grad) {
          bi->ensure_grad();
          for (std::int64_t bt = 0; bt < batch; ++bt) {
            gemm_tn(ai->data.data() + bt * m * k, go + bt * m * n,
                    bi->grad.data() + (b_batched ? bt * k * n : 0), k, m, n);
          }
        }
      });
  for (std::int64_t bt = 0; bt < batch; ++bt) {
    gemm_nn(a.data() + bt * m * k, b.data() + (b_batched ? bt * k * n : 0),
            out.data() + bt * m * n, m, k, n);
  }
  return out;
}

}  // namespace mfa::ops
