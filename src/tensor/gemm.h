// The single GEMM implementation behind matmul and conv2d (both directions).
//
// Three accumulating row-major kernels (C += op(A) * op(B)):
//   gemm_nn: C[m,n] += A[m,k]        * B[k,n]
//   gemm_nt: C[m,n] += A[m,k]        * B[n,k]^T
//   gemm_tn: C[m,n] += A[k,m]^T      * B[k,n]
//
// All three are register-blocked (4 output rows per microkernel step, inner
// loops over __restrict pointers that the compiler unrolls and vectorises)
// and parallelised over output rows with parallel_for. Nested use is safe:
// called from inside another parallel region (conv2d's batch loop) they run
// inline on that worker, so there is exactly one level of threading.
//
// Determinism: every output element C[i][j] is reduced in a fixed order
// (k ascending) regardless of row tiling, chunk schedule, or pool size —
// the row blocking only interleaves *independent* accumulator streams.
// gemm_nt accumulates its dot products in double, like the scalar kernel it
// replaced; backward-pass gradients (dA, conv dW) depend on that headroom.
//
// scratch() hands out thread-local grow-only buffers for im2col/col2im-style
// packing so steady-state conv calls allocate nothing (tensor/gemm.cpp owns
// the arena; see DESIGN.md "Threading and memory model").
#pragma once

#include <cstdint>

namespace mfa::kernels {

void gemm_nn(const float* A, const float* B, float* C, std::int64_t m,
             std::int64_t k, std::int64_t n);
void gemm_nt(const float* A, const float* B, float* C, std::int64_t m,
             std::int64_t k, std::int64_t n);
void gemm_tn(const float* A, const float* B, float* C, std::int64_t m,
             std::int64_t k, std::int64_t n);

/// Thread-local scratch buffer for kernel-internal packing. `slot` selects
/// one of a small number of independent buffers (a kernel that needs an
/// im2col panel and a gradient panel at once uses two slots); the returned
/// pointer stays valid until the same slot is requested again on the same
/// thread with a larger size. Contents are unspecified — callers that need
/// zeros must fill them. Buffers grow but never shrink, so the steady state
/// is allocation-free.
inline constexpr int kScratchSlots = 4;
float* scratch(int slot, std::int64_t floats);

}  // namespace mfa::kernels
