// The single GEMM family behind matmul and conv2d (both directions).
//
// Three accumulating row-major kernels (C += op(A) * op(B)):
//   gemm_nn: C[m,n] += A[m,k]        * B[k,n]
//   gemm_nt: C[m,n] += A[m,k]        * B[n,k]^T
//   gemm_tn: C[m,n] += A[k,m]^T      * B[k,n]
//
// Each call runs one of three compiled kernel variants — portable scalar,
// AVX2+FMA, or AVX-512F (see tensor/gemm_tiles.h) — selected once at startup
// from cpuid, overridable with MFA_SIMD=scalar|avx2|avx512. The SIMD
// variants use register-tiled microkernels parameterised by GemmTiles and
// pack B into cache-sized panels for large shapes (small shapes keep a
// no-pack fast path); tile parameters come from compiled defaults or a
// per-host autotuner cache (bench/tuned/<fingerprint>.json, written by
// `scripts/bench.sh --tune-gemm`, path overridable with MFA_GEMM_TUNED).
//
// The front-end (gemm.cpp) owns the row-parallel partition, the sanitizer's
// declared-write ranges, and the obs counters; kernel TUs contain only
// arithmetic. Nested use is safe: called from inside another parallel region
// (conv2d's batch loop) the kernels run inline on that worker.
//
// Determinism: every output element C[i][j] is reduced in fixed k-ascending
// order regardless of tile parameters, pack decisions, chunk schedule, or
// pool size — bit-identical results *within* a variant. Across variants
// results differ (FMA contraction), so the golden gate pins one hash per
// variant. gemm_nt accumulates dot products in double (lane-split for the
// SIMD variants); backward-pass gradients (dA, conv dW) depend on that
// headroom.
//
// scratch() hands out thread-local grow-only buffers for im2col/col2im-style
// packing so steady-state conv calls allocate nothing (tensor/gemm.cpp owns
// the arena; see DESIGN.md "Threading and memory model").
#pragma once

#include <cstdint>
#include <string>

#include "tensor/gemm_tiles.h"

namespace mfa::kernels {

void gemm_nn(const float* A, const float* B, float* C, std::int64_t m,
             std::int64_t k, std::int64_t n);
void gemm_nt(const float* A, const float* B, float* C, std::int64_t m,
             std::int64_t k, std::int64_t n);
void gemm_tn(const float* A, const float* B, float* C, std::int64_t m,
             std::int64_t k, std::int64_t n);

// ---- dispatch introspection and control ---------------------------------

/// The variant gemm_* calls will run: the override if one is set, else the
/// startup choice (widest supported ISA unless MFA_SIMD narrows it).
Variant active_variant();

/// Whether `v` was compiled in AND the host supports its ISA.
bool variant_supported(Variant v);

/// "scalar" / "avx2" / "avx512".
const char* variant_name(Variant v);

/// Tile parameters currently in effect for `v` (tuned cache or compiled
/// defaults, unless overridden via set_tiles_override).
GemmTiles variant_tiles(Variant v);

/// Forces the dispatch to variant `v` for subsequent gemm calls; -1 restores
/// the startup choice. Returns false (and changes nothing) if `v` is not
/// supported on this host. Test/tuner hook — call only while no gemm is in
/// flight.
bool set_variant_override(int v);

/// Replaces the tile parameters for `v` (nullptr restores the startup
/// values). Test/tuner hook — call only while no gemm is in flight.
void set_tiles_override(Variant v, const GemmTiles* tiles);

/// Whether a per-host tuned-tile cache file was loaded at startup, and its
/// path ("" when running on compiled defaults).
bool tuned_tiles_loaded();
std::string tuned_tiles_path();

namespace detail {
/// Pure MFA_SIMD resolution (unit-testable): picks the widest supported
/// variant, narrowed by `mfa_simd` ("scalar"/"avx2"/"avx512"; null, empty,
/// or "auto" keep the widest; a forced ISA the host lacks degrades to the
/// widest supported one with a warning, as does an unrecognised value).
Variant resolve_variant(const char* mfa_simd, bool has_avx2, bool has_avx512);
}  // namespace detail

// ---- thread-local scratch arena -----------------------------------------

/// Thread-local scratch buffer for kernel-internal packing. `slot` selects
/// one of a small number of independent buffers (a kernel that needs an
/// im2col panel and a gradient panel at once uses two slots); the returned
/// pointer is 64-byte aligned and stays valid until the same slot is
/// requested again on the same thread with a larger size. Contents are
/// unspecified — callers that need zeros must fill them. Buffers grow but
/// never shrink, so the steady state is allocation-free.
///
/// Slots 2 and 4 are reserved for the GEMM packed panels (B and A
/// respectively): any kernel that calls gemm_* while holding a scratch
/// pointer must use slots 0, 1, or 3.
inline constexpr int kScratchSlots = 5;
float* scratch(int slot, std::int64_t floats);

}  // namespace mfa::kernels
