// mfa::serve — congestion prediction as a long-lived in-process service.
//
// Many client threads submit single-placement feature maps; one serving
// worker coalesces them into batched forward passes over the N dimension of
// the tensor stack (the throughput lever: per-op overhead and allocator
// traffic amortise across the batch, see bench/bench_serve.cpp). The
// robustness layer around that hot loop is the point of this module:
//
//  * Bounded admission. The queue never grows past max_queue_depth and a
//    full queue sheds immediately with a retryable rejection — a client is
//    never blocked forever on an overloaded server. Retry policy lives
//    client-side (predict_with_retry, deterministic common::Backoff).
//  * Deadlines. A request whose deadline has passed by the time the worker
//    picks it up is not worth a model forward any more: it degrades to the
//    analytic congestion estimate (flow::analytic_levels), exactly the
//    fallback FlowOptions::predictor_time_budget_seconds applies inside the
//    placement flow, and the cut is reported per-request in
//    Response::incidents.
//  * Hot weight swap. All in-flight requests share one immutable weight
//    snapshot through refcounted tensor::Storage handles (no per-request
//    model copy). swap_weights() validates the snapshot's name/shape
//    manifest against the serving model (typed nn::SnapshotError on any
//    mismatch — a wrong-architecture or corrupt snapshot never reaches live
//    weights) and publishes it; the worker adopts at the next batch
//    boundary, so no forward pass ever sees half-swapped parameters.
//  * Crash containment. A failure inside a batch (CheckError from the
//    numeric stack, fault-injected via serve.batch_failure) poisons only
//    that batch: its requests resolve with the analytic fallback and an
//    incident naming the crash, the worker reinstalls the current snapshot
//    (discarding any suspect model state) and restarts its loop. Later
//    requests are served normally.
//  * Clean drain. shutdown() stops admission, lets the in-flight batch
//    complete, joins the worker, and flushes everything still queued with a
//    terminal shutting_down status. Every submitted request resolves exactly
//    once, no matter how the server goes down.
//
// Observability: serve.* counters/gauges/histograms in the mfa::obs registry
// (queue depth, batch occupancy, queue/total latency, sheds, deadline
// fallbacks, swaps, worker restarts) plus a serve.batch trace span.
// Fault points: serve.queue_full, serve.batch_failure, serve.swap_corrupt,
// serve.slow_worker (Debug builds; see common/fault.h).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "flow/strategies.h"
#include "models/congestion_model.h"
#include "nn/snapshot.h"
#include "tensor/tensor.h"

namespace mfa::serve {

/// Terminal disposition of a request. Every submitted request reaches
/// exactly one of these.
enum class Status {
  kOk,            // model forward produced the level map
  kFallback,      // degraded to the analytic estimate (deadline / crash)
  kShed,          // rejected at admission (queue full); retryable
  kShuttingDown,  // rejected or flushed because the server is draining
};

const char* to_string(Status status);

struct ServerOptions {
  /// Admission bound: a submit finding this many requests queued is shed.
  /// 0 sheds everything (useful for overload tests); in-flight batches do
  /// not count against the bound.
  std::int64_t max_queue_depth = 64;
  /// Batch former cap: at most this many requests per forward pass.
  std::int64_t max_batch = 8;
  /// Batch former patience: after the first request of a batch arrives, wait
  /// at most this long for the batch to fill before running it short. The
  /// latency-for-throughput knob — 0 serves whatever is queued immediately.
  double max_batch_wait_seconds = 1e-3;
  /// Deadline applied to requests that do not carry their own (0 = none).
  double default_deadline_seconds = 0.0;
  /// Analytic estimator used for deadline/crash degradation. Must not be
  /// Strategy::Ours (that is the model being degraded from).
  flow::Strategy fallback_strategy = flow::Strategy::Utda;
};

struct Request {
  /// Feature stack [6, H, W], the same normalised §III-B maps the model was
  /// trained on. (The quantile-based analytic fallback is invariant to the
  /// per-channel max-scaling for single-channel estimators such as Utda, so
  /// one tensor serves both paths.)
  Tensor features;
  /// Wall-clock budget from submit to the start of the model forward.
  /// < 0: use ServerOptions::default_deadline_seconds; 0: no deadline.
  double deadline_seconds = -1.0;
};

struct Response {
  Status status = Status::kShed;
  /// True for sheds worth retrying with backoff (queue pressure is
  /// transient); false for shutdown rejections and served requests.
  bool retryable = false;
  /// Human-readable disposition: shed reason, or what degraded and why.
  std::string reason;
  /// Per-request recovery actions (deadline fallback, batch crash), in the
  /// FlowIncident spirit: the request was answered, but not by the model.
  std::vector<std::string> incidents;
  /// Congestion level map [H, W]; defined for kOk and kFallback.
  Tensor levels;
  /// Snapshot generation the answer was computed with (kOk only).
  std::uint64_t weights_version = 0;
  /// Occupancy of the forward pass that served this request (kOk only).
  std::int64_t batch_size = 0;
  double queue_seconds = 0.0;  // submit -> picked up by the worker
  double total_seconds = 0.0;  // submit -> response ready
};

/// Monotonic service counters (atomics; exact whenever no request is in
/// flight). The terminal-resolution invariant the soak suite pins:
///   submitted == ok + fallbacks + shed + shutdown_rejected.
struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t ok = 0;
  std::int64_t fallbacks = 0;          // deadline + crash degradations
  std::int64_t shed = 0;               // admission rejections (queue full)
  std::int64_t shutdown_rejected = 0;  // drain flushes + post-drain submits
  std::int64_t batches = 0;            // forward passes run
  std::int64_t swaps = 0;              // snapshots published
  std::int64_t swap_rejects = 0;       // snapshots refused by validation
  std::int64_t worker_restarts = 0;    // batch crashes contained
};

class Server {
 public:
  /// Takes ownership of the serving model. The model's current parameters
  /// become snapshot generation 1. The worker thread starts immediately.
  Server(std::unique_ptr<models::CongestionModel> model,
         const ServerOptions& options);
  ~Server();  // shutdown() if the caller has not already

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admission: bounded-queue enqueue. Returns a future that always
  /// resolves — with a served level map, a shed, or a shutdown status —
  /// never blocks the submitting thread, and never waits forever.
  std::future<Response> submit(Request request);

  /// submit + wait. Convenience for synchronous callers.
  Response predict(Request request);

  /// predict with deterministic backoff-retry on retryable sheds: sleeps
  /// per the decorrelated-jitter schedule and resubmits until the request
  /// resolves terminally or the retry budget is exhausted (the last
  /// response is returned either way).
  Response predict_with_retry(Request request,
                              const common::BackoffOptions& backoff_options,
                              std::uint64_t seed);

  /// Validates the snapshot's manifest against the serving model and
  /// publishes it; the worker adopts it at the next batch boundary. Throws
  /// nn::SnapshotError (and leaves the serving weights untouched) on any
  /// mismatch — including a corruption injected via serve.swap_corrupt.
  /// Returns the new snapshot generation.
  std::uint64_t swap_weights(nn::WeightSnapshot snapshot);

  /// Generation of the snapshot the worker is currently serving from.
  std::uint64_t weights_version() const;

  /// Drain: stop admission, finish the in-flight batch, join the worker,
  /// flush everything still queued with kShuttingDown. Idempotent; called
  /// by the destructor. Bounded by one batch's work — there is no unbounded
  /// wait to interrupt.
  void shutdown();

  bool accepting() const;

  ServerStats stats() const;
  const ServerOptions& options() const { return options_; }

  /// Test hook: while paused, the worker finishes its current batch and
  /// then idles without collecting new ones, so tests can deterministically
  /// pile up queued requests (e.g. to exercise the drain flush).
  void pause_worker_for_testing(bool paused);

 private:
  struct Pending;
  using PendingPtr = std::unique_ptr<Pending>;

  void worker_thread_main();
  void worker_loop();
  std::vector<PendingPtr> collect_batch();
  void execute_batch(std::vector<PendingPtr>& batch);
  void adopt_snapshot_locked(std::unique_lock<std::mutex>& lock);
  void resolve_ok(Pending& p, Tensor levels, std::int64_t batch_size,
                  std::uint64_t version);
  void resolve_fallback(Pending& p, const std::string& incident);
  static void resolve_terminal(Pending& p, Status status, bool retryable,
                               const std::string& reason);
  void handle_worker_crash(const std::string& what);

  ServerOptions options_;
  std::unique_ptr<models::CongestionModel> model_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<PendingPtr> queue_;
  bool stopping_ = false;
  bool paused_ = false;
  // Snapshot staged by swap_weights, adopted by the worker at the next
  // batch boundary; also reinstalled after a contained crash.
  std::shared_ptr<const nn::WeightSnapshot> staged_snapshot_;
  std::shared_ptr<const nn::WeightSnapshot> current_snapshot_;
  std::uint64_t staged_version_ = 0;

  std::atomic<std::uint64_t> serving_version_{1};
  // In-flight batch, held as a member (not a worker_loop local) so the crash
  // handler can still resolve its members after the stack unwinds. Touched
  // only by the worker thread.
  std::vector<PendingPtr> current_batch_;

  struct AtomicStats;
  std::unique_ptr<AtomicStats> stats_;
  std::thread worker_;
  bool joined_ = false;
  std::mutex shutdown_mutex_;  // serialises shutdown() callers
};

}  // namespace mfa::serve
