#include "serve/server.h"

#include <atomic>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "tensor/ops.h"

namespace mfa::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

std::int64_t ns_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge g = obs::gauge("serve.queue_depth");
  return g;
}

}  // namespace

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kFallback: return "fallback";
    case Status::kShed: return "shed";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "?";
}

struct Server::Pending {
  Request request;
  std::promise<Response> promise;
  Clock::time_point submitted_at;
  double deadline_seconds = 0.0;  // effective (server default applied); 0=none
  double queue_seconds = 0.0;     // stamped when the worker picks it up
  bool resolved = false;
};

struct Server::AtomicStats {
  std::atomic<std::int64_t> submitted{0};
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> fallbacks{0};
  std::atomic<std::int64_t> shed{0};
  std::atomic<std::int64_t> shutdown_rejected{0};
  std::atomic<std::int64_t> batches{0};
  std::atomic<std::int64_t> swaps{0};
  std::atomic<std::int64_t> swap_rejects{0};
  std::atomic<std::int64_t> worker_restarts{0};
};

Server::Server(std::unique_ptr<models::CongestionModel> model,
               const ServerOptions& options)
    : options_(options),
      model_(std::move(model)),
      stats_(std::make_unique<AtomicStats>()) {
  MFA_CHECK(model_ != nullptr) << " serve: null model";
  MFA_CHECK_GE(options_.max_queue_depth, 0) << " serve: max_queue_depth";
  MFA_CHECK_GE(options_.max_batch, 1) << " serve: max_batch";
  MFA_CHECK_GE(options_.max_batch_wait_seconds, 0.0)
      << " serve: max_batch_wait_seconds";
  MFA_CHECK_GE(options_.default_deadline_seconds, 0.0)
      << " serve: default_deadline_seconds";
  MFA_CHECK(options_.fallback_strategy != flow::Strategy::Ours)
      << " serve: fallback_strategy must be an analytic estimator";
  // The model's current parameters are generation 1; keep a snapshot so a
  // contained crash can restore known-good weights.
  current_snapshot_ = std::make_shared<const nn::WeightSnapshot>(
      nn::snapshot_parameters(model_->network()));
  staged_version_ = 1;
  worker_ = std::thread([this] { worker_thread_main(); });
}

Server::~Server() { shutdown(); }

std::future<Response> Server::submit(Request request) {
  MFA_CHECK(request.features.defined()) << " serve: undefined feature tensor";
  MFA_CHECK_EQ(request.features.dim(), 3)
      << " serve: features must be [6, H, W], got "
      << shape_str(request.features.shape());
  MFA_CHECK_EQ(request.features.size(0), 6)
      << " serve: features must carry the 6-channel stack, got "
      << shape_str(request.features.shape());

  auto p = std::make_unique<Pending>();
  p->request = std::move(request);
  p->submitted_at = Clock::now();
  p->deadline_seconds = p->request.deadline_seconds < 0.0
                            ? options_.default_deadline_seconds
                            : p->request.deadline_seconds;
  std::future<Response> future = p->promise.get_future();
  stats_->submitted.fetch_add(1, std::memory_order_relaxed);
  {
    static obs::Counter requests = obs::counter("serve.requests");
    requests.add(1);
  }

  bool reject_shutdown = false;
  bool reject_shed = false;
  std::int64_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    depth = static_cast<std::int64_t>(queue_.size());
    if (stopping_) {
      reject_shutdown = true;
    } else if (depth >= options_.max_queue_depth ||
               MFA_FAULT_POINT("serve.queue_full")) {
      reject_shed = true;
    } else {
      queue_.push_back(std::move(p));
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
      work_cv_.notify_one();
    }
  }
  if (reject_shutdown) {
    stats_->shutdown_rejected.fetch_add(1, std::memory_order_relaxed);
    resolve_terminal(*p, Status::kShuttingDown, /*retryable=*/false,
                     "serve: server is shutting down");
  } else if (reject_shed) {
    stats_->shed.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter sheds = obs::counter("serve.sheds");
    sheds.add(1);
    resolve_terminal(*p, Status::kShed, /*retryable=*/true,
                     log::format("serve: admission queue full (%lld/%lld)",
                                 static_cast<long long>(depth),
                                 static_cast<long long>(
                                     options_.max_queue_depth)));
  }
  return future;
}

Response Server::predict(Request request) {
  return submit(std::move(request)).get();
}

Response Server::predict_with_retry(
    Request request, const common::BackoffOptions& backoff_options,
    std::uint64_t seed) {
  common::Backoff backoff(backoff_options, seed);
  while (true) {
    Response r = predict(request);  // Tensor copies share storage: cheap
    if (r.status != Status::kShed || !r.retryable) return r;
    const auto delay = backoff.next_delay_seconds();
    if (!delay.has_value()) return r;  // retry budget exhausted: last shed
    std::this_thread::sleep_for(std::chrono::duration<double>(*delay));
  }
}

std::uint64_t Server::swap_weights(nn::WeightSnapshot snapshot) {
  if (MFA_FAULT_POINT("serve.swap_corrupt")) {
    // A corrupted manifest must be caught by validation below, never
    // published: flip one entry's identity (or invent one for an empty
    // snapshot, which count-mismatches instead).
    if (!snapshot.entries.empty()) snapshot.entries.front().name += ".corrupt";
    else snapshot.entries.emplace_back();
  }
  try {
    nn::validate_snapshot(snapshot, model_->network());
  } catch (const nn::SnapshotError&) {
    stats_->swap_rejects.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter rejects = obs::counter("serve.swap_rejects");
    rejects.add(1);
    throw;
  }
  std::uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MFA_CHECK(!stopping_) << " serve: swap_weights on a shut-down server";
    version = ++staged_version_;
    staged_snapshot_ =
        std::make_shared<const nn::WeightSnapshot>(std::move(snapshot));
    work_cv_.notify_one();
  }
  stats_->swaps.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter swaps = obs::counter("serve.swaps");
  swaps.add(1);
  return version;
}

std::uint64_t Server::weights_version() const {
  return serving_version_.load(std::memory_order_acquire);
}

bool Server::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !stopping_;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = stats_->submitted.load(std::memory_order_relaxed);
  s.ok = stats_->ok.load(std::memory_order_relaxed);
  s.fallbacks = stats_->fallbacks.load(std::memory_order_relaxed);
  s.shed = stats_->shed.load(std::memory_order_relaxed);
  s.shutdown_rejected =
      stats_->shutdown_rejected.load(std::memory_order_relaxed);
  s.batches = stats_->batches.load(std::memory_order_relaxed);
  s.swaps = stats_->swaps.load(std::memory_order_relaxed);
  s.swap_rejects = stats_->swap_rejects.load(std::memory_order_relaxed);
  s.worker_restarts = stats_->worker_restarts.load(std::memory_order_relaxed);
  return s;
}

void Server::pause_worker_for_testing(bool paused) {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = paused;
  work_cv_.notify_all();
}

void Server::shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  if (!joined_ && worker_.joinable()) worker_.join();
  joined_ = true;
  // The worker is gone; whatever is still queued can only be flushed.
  std::deque<PendingPtr> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
    queue_depth_gauge().set(0.0);
  }
  for (auto& p : leftover) {
    stats_->shutdown_rejected.fetch_add(1, std::memory_order_relaxed);
    resolve_terminal(*p, Status::kShuttingDown, /*retryable=*/false,
                     "serve: server shut down before this request was served");
  }
}

// ---- worker side ----

void Server::worker_thread_main() {
  while (true) {
    try {
      worker_loop();
      return;  // clean drain
    } catch (const std::exception& e) {
      handle_worker_crash(e.what());
    } catch (...) {
      handle_worker_crash("unknown exception");
    }
  }
}

void Server::worker_loop() {
  while (true) {
    current_batch_ = collect_batch();
    if (current_batch_.empty()) return;  // stopping
    execute_batch(current_batch_);
    current_batch_.clear();
  }
}

std::vector<Server::PendingPtr> Server::collect_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stopping_ || staged_snapshot_ != nullptr ||
             (!paused_ && !queue_.empty());
    });
    adopt_snapshot_locked(lock);
    if (stopping_) return {};
    // Woken only for a snapshot adoption, or paused: nothing runnable yet.
    if (paused_ || queue_.empty()) continue;
    break;
  }

  std::vector<PendingPtr> batch;
  const auto take_available = [&] {
    while (!queue_.empty() &&
           static_cast<std::int64_t>(batch.size()) < options_.max_batch) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  };
  take_available();
  if (static_cast<std::int64_t>(batch.size()) < options_.max_batch &&
      options_.max_batch_wait_seconds > 0.0) {
    const auto fill_deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(options_.max_batch_wait_seconds));
    while (static_cast<std::int64_t>(batch.size()) < options_.max_batch &&
           !stopping_) {
      if (!work_cv_.wait_until(lock, fill_deadline, [&] {
            return stopping_ || !queue_.empty();
          }))
        break;  // patience expired: run the batch short
      take_available();
    }
  }
  queue_depth_gauge().set(static_cast<double>(queue_.size()));
  return batch;
}

void Server::adopt_snapshot_locked(std::unique_lock<std::mutex>& lock) {
  if (!staged_snapshot_) return;
  std::shared_ptr<const nn::WeightSnapshot> snap = std::move(staged_snapshot_);
  staged_snapshot_ = nullptr;
  const std::uint64_t version = staged_version_;
  lock.unlock();
  // Install outside the lock: submitters must not block on a weight copy.
  // Safe because only this thread ever touches the model.
  nn::install_snapshot(*snap, model_->network());
  serving_version_.store(version, std::memory_order_release);
  lock.lock();
  current_snapshot_ = std::move(snap);
}

void Server::execute_batch(std::vector<PendingPtr>& batch) {
  MFA_TRACE_SCOPE("serve.batch");
  const auto pickup = Clock::now();
  for (auto& p : batch) {
    p->queue_seconds = seconds_since(p->submitted_at, pickup);
    static obs::Histogram queue_ns = obs::histogram("serve.queue_ns");
    queue_ns.record(ns_since(p->submitted_at, pickup));
  }

  if (MFA_FAULT_POINT("serve.slow_worker"))
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Deadline check happens at the last moment before the forward: a request
  // that is already late degrades to the analytic estimate instead of
  // spending model time it no longer has.
  const auto forward_start = Clock::now();
  std::vector<Pending*> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (p->deadline_seconds > 0.0 &&
        seconds_since(p->submitted_at, forward_start) > p->deadline_seconds) {
      stats_->fallbacks.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter deadline_fallbacks =
          obs::counter("serve.deadline_fallbacks");
      deadline_fallbacks.add(1);
      resolve_fallback(
          *p, log::format(
                  "serve: deadline %.3fs expired after %.3fs in queue; "
                  "served by analytic fallback (%s)",
                  p->deadline_seconds,
                  seconds_since(p->submitted_at, forward_start),
                  flow::to_string(options_.fallback_strategy)));
    } else {
      live.push_back(p.get());
    }
  }
  if (live.empty()) return;

  if (MFA_FAULT_POINT("serve.batch_failure"))
    throw check::CheckError("serve: fault-injected batch failure");

  const std::int64_t n = static_cast<std::int64_t>(live.size());
  const Shape fshape = live.front()->request.features.shape();
  for (const Pending* p : live)
    MFA_CHECK(p->request.features.shape() == fshape)
        << " serve: mixed feature shapes in one batch ("
        << shape_str(p->request.features.shape()) << " vs "
        << shape_str(fshape) << ")";
  const std::int64_t h = fshape[1];
  const std::int64_t w = fshape[2];

  Tensor input;
  if (n == 1) {
    input = ops::reshape(live.front()->request.features, {1, 6, h, w});
  } else {
    std::vector<Tensor> parts;
    parts.reserve(live.size());
    for (const Pending* p : live)
      parts.push_back(ops::reshape(p->request.features, {1, 6, h, w}));
    input = ops::concat(parts, 0);
  }
  Tensor levels = model_->predict_levels(input);  // [n, h, w]

  stats_->batches.fetch_add(1, std::memory_order_relaxed);
  {
    static obs::Histogram occupancy = obs::histogram("serve.batch_occupancy");
    occupancy.record(n);
  }
  const std::uint64_t version =
      serving_version_.load(std::memory_order_acquire);
  for (std::int64_t i = 0; i < n; ++i) {
    Tensor one = ops::reshape(ops::narrow(levels, 0, i, 1), {h, w});
    resolve_ok(*live[static_cast<size_t>(i)], std::move(one), n, version);
  }
}

void Server::resolve_ok(Pending& p, Tensor levels, std::int64_t batch_size,
                        std::uint64_t version) {
  Response r;
  r.status = Status::kOk;
  r.retryable = false;
  r.levels = std::move(levels);
  r.weights_version = version;
  r.batch_size = batch_size;
  r.queue_seconds = p.queue_seconds;
  r.total_seconds = seconds_since(p.submitted_at, Clock::now());
  static obs::Histogram latency_ns = obs::histogram("serve.latency_ns");
  latency_ns.record(static_cast<std::int64_t>(r.total_seconds * 1e9));
  stats_->ok.fetch_add(1, std::memory_order_relaxed);
  p.resolved = true;
  p.promise.set_value(std::move(r));
}

void Server::resolve_fallback(Pending& p, const std::string& incident) {
  Response r;
  r.status = Status::kFallback;
  r.retryable = false;
  r.reason = incident;
  r.incidents.push_back(incident);
  const Shape& fs = p.request.features.shape();
  std::vector<float> levels =
      flow::analytic_levels(options_.fallback_strategy, p.request.features);
  r.levels = Tensor::from_data({fs[1], fs[2]}, std::move(levels));
  r.queue_seconds = p.queue_seconds;
  r.total_seconds = seconds_since(p.submitted_at, Clock::now());
  static obs::Histogram latency_ns = obs::histogram("serve.latency_ns");
  latency_ns.record(static_cast<std::int64_t>(r.total_seconds * 1e9));
  p.resolved = true;
  p.promise.set_value(std::move(r));
}

void Server::resolve_terminal(Pending& p, Status status, bool retryable,
                              const std::string& reason) {
  Response r;
  r.status = status;
  r.retryable = retryable;
  r.reason = reason;
  r.total_seconds = seconds_since(p.submitted_at, Clock::now());
  p.resolved = true;
  p.promise.set_value(std::move(r));
}

void Server::handle_worker_crash(const std::string& what) {
  stats_->worker_restarts.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter restarts = obs::counter("serve.worker_restarts");
  restarts.add(1);
  log::warn("serve: worker crashed (%s); poisoning %zu-request batch and "
            "restarting",
            what.c_str(), current_batch_.size());
  // Poison only this batch: every member that had not resolved before the
  // crash degrades to the analytic fallback with an incident naming the
  // crash. Requests still in the queue are untouched.
  for (auto& p : current_batch_) {
    if (!p || p->resolved) continue;
    stats_->fallbacks.fetch_add(1, std::memory_order_relaxed);
    resolve_fallback(
        *p, log::format("serve: batch crashed (%s); served by analytic "
                        "fallback (%s)",
                        what.c_str(),
                        flow::to_string(options_.fallback_strategy)));
  }
  current_batch_.clear();
  // The crash may have left the model mid-mutation; restore the last
  // known-good snapshot before serving again.
  std::shared_ptr<const nn::WeightSnapshot> snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap = current_snapshot_;
  }
  if (snap) nn::install_snapshot(*snap, model_->network());
}

}  // namespace mfa::serve
