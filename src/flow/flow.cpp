#include "flow/flow.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/check.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "features/features.h"
#include "place/legalizer.h"
#include "tensor/ops.h"

namespace mfa::flow {

namespace {
using Clock = std::chrono::steady_clock;
double minutes_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count() / 60.0;
}
}  // namespace

RoutabilityDrivenPlacer::RoutabilityDrivenPlacer(const netlist::Design& design,
                                                 const fpga::DeviceGrid& device,
                                                 FlowOptions options)
    : design_(&design), device_(&device), options_(options) {}

FlowResult RoutabilityDrivenPlacer::run(Strategy strategy,
                                        models::CongestionModel* model) {
  if (strategy == Strategy::Ours && model == nullptr && !options_.predictor)
    throw std::invalid_argument(
        "flow: Strategy::Ours needs a trained model or a predictor hook");
  const auto t_start = Clock::now();
  MFA_TRACE_SCOPE("flow.run");
  static obs::Counter obs_rounds = obs::counter("flow.rounds");
  static obs::Counter obs_fallbacks = obs::counter("flow.fallbacks");
  FlowResult result;

  // ---- stage 1: cascade clustering ----
  place::PlacementProblem problem(*design_, *device_);

  // ---- stage 2: region-aware global placement ----
  place::PlacerOptions popt = options_.placer;
  if (strategy == Strategy::MpkuImprove) {
    // Multi-electrostatics emphasis: stronger spreading + fence handling.
    popt.density_weight *= 1.5;
    popt.region_weight *= 2.0;
    popt.spread_interval = std::max<std::int64_t>(2, popt.spread_interval / 2);
  }
  place::GlobalPlacer placer(problem, popt);
  {
    MFA_TRACE_SCOPE("flow.gp");
    placer.init_random();
    placer.run_until_overflow_target();
    if (placer.total_iterations() < options_.min_gp_iterations)
      placer.iterate(options_.min_gp_iterations - placer.total_iterations());
  }

  // ---- stage 3: congestion prediction + inflation rounds ----
  features::FeatureOptions fopt;
  fopt.grid_width = options_.grid;
  fopt.grid_height = options_.grid;
  std::vector<double> cell_x, cell_y;
  std::int64_t inflated = 0;
  double predict_spent_seconds = 0.0;
  const auto predict_budget_spent = [&] {
    if (MFA_FAULT_POINT("flow.predict_budget")) return true;
    return options_.predictor_time_budget_seconds > 0.0 &&
           predict_spent_seconds > options_.predictor_time_budget_seconds;
  };
  for (std::int64_t round = 0; round < options_.inflation_rounds; ++round) {
    MFA_TRACE_SCOPE("flow.round");
    obs_rounds.add();
    placer.placement().expand(problem, cell_x, cell_y);
    std::vector<float> levels;
    bool use_analytic = strategy != Strategy::Ours;
    if (strategy == Strategy::Ours && predict_budget_spent()) {
      // The predictor is the flow's other hot stage; once its wall-clock
      // budget is gone the remaining rounds use the analytic estimate, same
      // degradation shape as the placer/router budgets.
      log::warn("flow: round %lld predictor wall-clock budget (%g s) "
                "exhausted; using analytic congestion estimate",
                static_cast<long long>(round),
                options_.predictor_time_budget_seconds);
      result.budget_exhausted = true;
      result.incidents.push_back(
          {round, "predict",
           "predictor wall-clock budget exhausted; used analytic estimate"});
      obs_fallbacks.add();
      use_analytic = true;
    } else if (strategy == Strategy::Ours) {
      MFA_TRACE_SCOPE("flow.predict");
      const auto predict_start = Clock::now();
      try {
        // Model input uses the normalised feature stack it was trained on.
        Tensor feats = features::extract_features(*design_, *device_, cell_x,
                                                  cell_y, fopt);
        if (options_.predictor) {
          levels = options_.predictor(feats);
          const auto want =
              static_cast<size_t>(feats.size(1) * feats.size(2));
          if (levels.size() != want)
            throw check::CheckError(log::format(
                "predictor hook returned %zu levels for a %lld x %lld grid",
                levels.size(), static_cast<long long>(feats.size(1)),
                static_cast<long long>(feats.size(2))));
        } else {
          Tensor batched = mfa::ops::reshape(
              feats, {1, feats.size(0), feats.size(1), feats.size(2)});
          Tensor pred = model->predict_levels(batched);
          levels.assign(pred.data(), pred.data() + pred.numel());
        }
        if (MFA_FAULT_POINT("flow.predictor_nan") && !levels.empty())
          levels[0] = std::numeric_limits<float>::quiet_NaN();
        if (!std::all_of(levels.begin(), levels.end(),
                         [](float v) { return std::isfinite(v); }))
          throw check::CheckError(
              "predictor produced non-finite congestion levels");
      } catch (const check::CheckError& e) {
        // Graceful degradation: a broken predictor (NaN output, invariant
        // failure in the numeric stack) must not kill the flow — fall back
        // to the analytic quantile estimate for this round.
        log::warn("flow: round %lld predictor failed (%s); falling back to "
                  "analytic congestion estimate",
                  static_cast<long long>(round), e.what());
        result.incidents.push_back(
            {round, "predict",
             std::string("ML predictor failed, used analytic fallback: ") +
                 e.what()});
        obs_fallbacks.add();
        use_analytic = true;
      }
      predict_spent_seconds +=
          std::chrono::duration<double>(Clock::now() - predict_start).count();
    }
    if (use_analytic) {
      features::FeatureOptions raw = fopt;
      raw.normalize = false;  // analytic estimates need raw demand units
      Tensor feats = features::extract_features(*design_, *device_, cell_x,
                                                cell_y, raw);
      levels = analytic_levels(
          strategy == Strategy::Ours ? Strategy::Utda : strategy, feats);
    }
    {
      MFA_TRACE_SCOPE("flow.inflate");
      const auto stats = place::apply_inflation(
          problem, placer.placement(), levels, options_.grid, options_.grid,
          options_.inflation);
      inflated += stats.inflated_objects;
    }
    {
      MFA_TRACE_SCOPE("flow.place");
      placer.iterate(options_.post_inflation_iterations);
    }
  }

  // ---- stage 4: macro legalisation ----
  MFA_TRACE_SCOPE("flow.legalize_and_route");
  place::Placement placement = placer.placement();
  const auto legal = place::Legalizer::legalize_macros(problem, placement);
  if (!legal.success)
    log::warn("flow: legalisation left %lld macros unplaced",
              static_cast<long long>(legal.macros_placed));
  const double t_macro = minutes_since(t_start);

  // ---- stage 5: routing + scoring ----
  placement.expand(problem, cell_x, cell_y);
  // Honour the caller's router options but derive grid dimensions and
  // capacities from the flow grid (capacities must track tile size).
  route::RouterOptions ropt = options_.router;
  const route::RouterOptions calibrated =
      route::calibrated_router_options(*device_, options_.grid, options_.grid);
  ropt.grid_width = calibrated.grid_width;
  ropt.grid_height = calibrated.grid_height;
  ropt.short_capacity = calibrated.short_capacity;
  ropt.global_capacity = calibrated.global_capacity;
  route::GlobalRouter router(*design_, *device_, ropt);
  router.initial_route(cell_x, cell_y);

  result.analysis = router.analyze();
  result.s_ir = route::score::s_ir(result.analysis);
  result.detailed_iterations = router.detailed_route();
  if (placer.budget_exhausted()) {
    result.budget_exhausted = true;
    result.incidents.push_back(
        {-1, "place",
         "placer wall-clock budget exhausted; scored best partial placement"});
  }
  if (router.budget_exhausted()) {
    result.budget_exhausted = true;
    result.incidents.push_back(
        {-1, "route",
         "router wall-clock budget exhausted; scored best partial routing"});
  }
  result.s_dr = route::score::s_dr(result.detailed_iterations);
  result.s_r = route::score::s_r(result.s_ir, result.s_dr);
  result.routed_wirelength = router.routed_wirelength();
  result.placed_wirelength = placer.wirelength();
  result.t_pr_hours =
      route::score::t_pr_hours(result.s_ir, result.s_dr,
                               result.routed_wirelength,
                               router.num_connections());
  result.t_macro_minutes = t_macro;
  result.s_score =
      route::score::s_score(result.t_macro_minutes, result.s_r,
                            result.t_pr_hours);
  result.inflated_objects = inflated;
  return result;
}

std::string FlowResult::metrics_json() const {
  std::string out = "{\"report\":{";
  out += log::format(
      "\"s_ir\":%.17g,\"s_dr\":%.17g,\"s_r\":%.17g,\"s_score\":%.17g,"
      "\"t_pr_hours\":%.17g,\"t_macro_minutes\":%.17g,"
      "\"detailed_iterations\":%lld,\"routed_wirelength\":%.17g,"
      "\"placed_wirelength\":%.17g,\"inflated_objects\":%lld,"
      "\"incidents\":%lld,\"budget_exhausted\":%s",
      s_ir, s_dr, s_r, s_score, t_pr_hours, t_macro_minutes,
      static_cast<long long>(detailed_iterations), routed_wirelength,
      placed_wirelength, static_cast<long long>(inflated_objects),
      static_cast<long long>(incidents.size()),
      budget_exhausted ? "true" : "false");
  out += "},\"metrics\":";
  out += obs::Registry::instance().metrics_json();
  out += "}";
  return out;
}

}  // namespace mfa::flow
