// End-to-end routability-driven FPGA macro placement flow (paper §IV,
// Fig. 6):
//   1. cascade clustering (in PlacementProblem),
//   2. region-aware global placement until the overflow gate
//      (Overflow < 0.25 macros / < 0.15 cells),
//   3. congestion prediction and instance inflation (Eqs. 11-13), repeated
//      for a configurable number of rounds with further GP in between,
//   4. macro legalisation,
//   5. routing and MLCAD scoring (S_IR, S_DR, S_R, S_score).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "flow/strategies.h"
#include "models/congestion_model.h"
#include "netlist/design.h"
#include "place/inflation.h"
#include "place/placer.h"
#include "route/router.h"
#include "route/score.h"

namespace mfa::flow {

struct FlowOptions {
  std::int64_t grid = 64;
  place::PlacerOptions placer;
  /// Router options; grid dimensions and capacities are overridden from
  /// `grid` via route::calibrated_router_options (capacity must track tile
  /// size), the remaining fields are honoured.
  route::RouterOptions router;
  place::InflationOptions inflation;
  /// Congestion-prediction + inflation rounds (Fig. 6 loop). One round by
  /// default: the analytical strategies' quantile estimates always nominate
  /// more inflation targets, so further rounds compound area without bound,
  /// while the ML strategy is naturally self-limiting.
  std::int64_t inflation_rounds = 1;
  /// GP iterations after each inflation round.
  std::int64_t post_inflation_iterations = 40;
  /// Minimum total GP iterations before the first inflation round: the
  /// overflow gate can be met early while wirelength is still far from
  /// converged, and inflating a half-converged placement is meaningless.
  std::int64_t min_gp_iterations = 120;
  /// Wall-clock budget for the ML predictor forward passes, accumulated
  /// across inflation rounds (0 = unlimited). Once spent, remaining rounds
  /// fall back to the analytic congestion estimate — mirroring the placer
  /// and router budgets — and the cut is surfaced as a FlowIncident plus
  /// FlowResult::budget_exhausted.
  double predictor_time_budget_seconds = 0.0;
  /// Dependency-injection hook for the Strategy::Ours predictor: when set,
  /// run() hands the normalised [6, H, W] feature stack to this callable
  /// instead of the in-process model — e.g. to route the prediction through
  /// a shared serve::Server. Must return H*W congestion levels; throwing
  /// check::CheckError degrades that round to the analytic fallback exactly
  /// like an in-process predictor failure. With the hook set the `model`
  /// argument of run() may be null.
  std::function<std::vector<float>(const Tensor& features)> predictor;
};

/// One recovery action taken during run(): the flow kept going, but a stage
/// degraded (e.g. the ML predictor failed and an analytic fallback was used,
/// or a wall-clock budget cut a stage short).
struct FlowIncident {
  std::int64_t round = -1;  // inflation round, or -1 for non-round stages
  std::string stage;        // "predict", "place", "route"
  std::string detail;       // human-readable description of what happened
};

struct FlowResult {
  double s_ir = 1.0;
  double s_dr = 5.0;
  double s_r = 5.0;
  double s_score = 0.0;
  double t_pr_hours = 0.0;
  double t_macro_minutes = 0.0;
  std::int64_t detailed_iterations = 0;
  double routed_wirelength = 0.0;
  double placed_wirelength = 0.0;
  std::int64_t inflated_objects = 0;
  /// Final routed congestion analysis (kept for reporting / Fig. 1 output).
  route::CongestionAnalysis analysis;
  /// Recovery actions taken (graceful degradations); empty on a clean run.
  std::vector<FlowIncident> incidents;
  /// True when a wall-clock budget stopped the placer or router early; the
  /// scores describe the best partial result.
  bool budget_exhausted = false;

  /// JSON view of this result plus the process metrics registry snapshot:
  /// {"report":{...},"metrics":{...}}. The metrics half carries the obs
  /// counters/histograms recorded during run() (per-stage timings, predictor
  /// fallbacks, router rip-ups); with MFA_OBS=off it is just "{}".
  std::string metrics_json() const;
};

class RoutabilityDrivenPlacer {
 public:
  RoutabilityDrivenPlacer(const netlist::Design& design,
                          const fpga::DeviceGrid& device, FlowOptions options);

  /// Runs the full flow. For Strategy::Ours a trained model must be given;
  /// analytic strategies ignore it. MPKU-Improve additionally strengthens
  /// the placer's spreading configuration (its multi-electrostatics
  /// emphasis).
  FlowResult run(Strategy strategy,
                 models::CongestionModel* model = nullptr);

 private:
  const netlist::Design* design_;
  const fpga::DeviceGrid* device_;
  FlowOptions options_;
};

}  // namespace mfa::flow
