#include "flow/strategies.h"

#include <algorithm>
#include <stdexcept>

#include "features/features.h"

namespace mfa::flow {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::Ours:
      return "Ours";
    case Strategy::Utda:
      return "UTDA";
    case Strategy::Seu:
      return "SEU";
    case Strategy::MpkuImprove:
      return "MPKU-Improve";
    default:
      return "?";
  }
}

Strategy strategy_from_name(const std::string& name) {
  if (name == "ours" || name == "Ours") return Strategy::Ours;
  if (name == "utda" || name == "UTDA") return Strategy::Utda;
  if (name == "seu" || name == "SEU") return Strategy::Seu;
  if (name == "mpku" || name == "MPKU-Improve" || name == "mpku-improve")
    return Strategy::MpkuImprove;
  throw std::invalid_argument("unknown strategy '" + name + "'");
}

std::vector<float> quantile_levels(const std::vector<float>& demand) {
  std::vector<float> sorted = demand;
  std::sort(sorted.begin(), sorted.end());
  const auto q = [&](double p) {
    return sorted[static_cast<size_t>(p * static_cast<double>(sorted.size() - 1))];
  };
  // Thresholds chosen to mirror a typical routed-level histogram: roughly
  // half the die quiet, a long tail of increasingly hot tiles.
  const float t1 = q(0.50), t2 = q(0.75), t3 = q(0.87), t4 = q(0.93),
              t5 = q(0.97), t6 = q(0.99);
  std::vector<float> levels(demand.size(), 0.0f);
  for (size_t i = 0; i < demand.size(); ++i) {
    const float v = demand[i];
    float level = 0.0f;
    if (v > t1) level = 1.0f;
    if (v > t2) level = 2.0f;
    if (v > t3) level = 3.0f;
    if (v > t4) level = 4.0f;
    if (v > t5) level = 5.0f;
    if (v > t6) level = 6.0f;
    levels[i] = level;
  }
  return levels;
}

std::vector<float> analytic_levels(Strategy strategy, const Tensor& features) {
  const std::int64_t hw = features.size(1) * features.size(2);
  const float* rudy =
      features.data() + static_cast<std::int64_t>(features::kRudy) * hw;
  const float* pin =
      features.data() + static_cast<std::int64_t>(features::kPinRudy) * hw;
  std::vector<float> demand(static_cast<size_t>(hw));
  switch (strategy) {
    case Strategy::Utda:
    case Strategy::MpkuImprove:
      // Plain RUDY demand (MPKU differs in placer configuration, not in the
      // congestion estimate).
      for (std::int64_t i = 0; i < hw; ++i)
        demand[static_cast<size_t>(i)] = rudy[i];
      break;
    case Strategy::Seu: {
      // RUDY + pin density, each normalised by its own maximum.
      float rmax = 1e-9f, pmax = 1e-9f;
      for (std::int64_t i = 0; i < hw; ++i) {
        rmax = std::max(rmax, rudy[i]);
        pmax = std::max(pmax, pin[i]);
      }
      for (std::int64_t i = 0; i < hw; ++i)
        demand[static_cast<size_t>(i)] =
            rudy[i] / rmax + 0.5f * pin[i] / pmax;
      break;
    }
    case Strategy::Ours:
      throw std::logic_error("analytic_levels: Ours uses the ML model");
  }
  return quantile_levels(demand);
}

}  // namespace mfa::flow
