// Congestion-estimation strategies for the inflation stage of the Fig. 6
// flow. The paper compares its ML predictor against the MLCAD 2023 winners,
// which refine RUDY-based analytical estimates [11]; these proxies reproduce
// that distinction:
//   * Ours      — the trained model predicts absolute congestion levels.
//   * UTDA [11] — plain RUDY, quantile-mapped to pseudo levels.
//   * SEU       — RUDY blended with pin density, quantile-mapped.
//   * MPKU [16] — multi-electrostatics emphasis: same RUDY estimate but a
//                 stronger spreading configuration of the placer.
// Quantile mapping is the key weakness the paper exploits: an analytical
// estimator knows which tiles are *relatively* hottest but not the absolute
// congestion level, so it always inflates a fixed fraction of the die.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace mfa::flow {

enum class Strategy {
  Ours = 0,       // ML congestion prediction (§IV)
  Utda,           // RUDY-based (contest winner [11])
  Seu,            // RUDY + pin-density hybrid (contest co-winner)
  MpkuImprove,    // multi-electrostatics + fence-region emphasis [16]
};

const char* to_string(Strategy s);
Strategy strategy_from_name(const std::string& name);

/// Maps an analytical demand map (RUDY-like, arbitrary units) to pseudo
/// congestion levels 0..7 by demand quantiles: the hottest ~1% of tiles get
/// the highest level, mirroring how RUDY-based flows pick inflation targets.
std::vector<float> quantile_levels(const std::vector<float>& demand);

/// Analytical congestion estimate for the given strategy from the §III-B
/// feature stack ([6, H, W], unnormalised). Not used for Strategy::Ours.
std::vector<float> analytic_levels(Strategy strategy, const Tensor& features);

}  // namespace mfa::flow
