// Interconnect tile grid (paper §II-B, Fig. 1).
//
// The Vivado initial router reports congestion per interconnect tile in four
// directions (east/south/west/north) for two wire classes (short and global).
// This class models that grid: a gw x gh array of tiles, each with a routing
// capacity per (direction, wire class), plus the mapping from device
// coordinates to tiles.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fpga/device.h"

namespace mfa::fpga {

enum class Direction : std::uint8_t { East = 0, South, West, North, Count };
constexpr std::size_t kNumDirections =
    static_cast<std::size_t>(Direction::Count);

enum class WireClass : std::uint8_t { Short = 0, Global, Count };
constexpr std::size_t kNumWireClasses =
    static_cast<std::size_t>(WireClass::Count);

const char* to_string(Direction d);
const char* to_string(WireClass w);

class InterconnectTileGrid {
 public:
  /// gw x gh tiles over a device of `dev_cols` x `dev_rows` sites.
  /// Short wires hop one tile; global wires are the longer class with lower
  /// per-tile capacity (as on UltraScale+, where long wires are scarcer).
  InterconnectTileGrid(std::int64_t gw, std::int64_t gh,
                       std::int64_t dev_cols, std::int64_t dev_rows,
                       std::int64_t short_capacity = 16,
                       std::int64_t global_capacity = 8);

  std::int64_t width() const { return gw_; }
  std::int64_t height() const { return gh_; }
  std::int64_t num_tiles() const { return gw_ * gh_; }

  std::int64_t tile_index(std::int64_t gx, std::int64_t gy) const {
    return gy * gw_ + gx;
  }
  bool tile_in_bounds(std::int64_t gx, std::int64_t gy) const {
    return gx >= 0 && gx < gw_ && gy >= 0 && gy < gh_;
  }

  /// Maps a continuous device coordinate to a tile coordinate (clamped).
  std::int64_t tile_x(double device_x) const;
  std::int64_t tile_y(double device_y) const;

  std::int64_t capacity(WireClass w) const {
    return capacity_[static_cast<size_t>(w)];
  }

  double tile_width_in_sites() const { return sx_; }
  double tile_height_in_sites() const { return sy_; }

 private:
  std::int64_t gw_, gh_;
  double sx_, sy_;  // device sites per tile
  std::array<std::int64_t, kNumWireClasses> capacity_;
};

}  // namespace mfa::fpga
