// Columnar FPGA device model patterned on the MLCAD 2023 contest target
// (16nm Xilinx UltraScale+ XCVU3P): heterogeneous site columns of CLB, DSP,
// BRAM and URAM sites (paper §II-A). DSP/BRAM/URAM instances are macros; LUT
// and FF cells map into CLB sites.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace mfa::fpga {

enum class SiteType : std::uint8_t { Clb = 0, Dsp, Bram, Uram, Count };

/// Placement resource classes used for area/overflow accounting (§IV).
enum class Resource : std::uint8_t { Lut = 0, Ff, Dsp, Bram, Uram, Count };

constexpr std::size_t kNumSiteTypes = static_cast<std::size_t>(SiteType::Count);
constexpr std::size_t kNumResources = static_cast<std::size_t>(Resource::Count);

const char* to_string(SiteType t);
const char* to_string(Resource r);

/// True if instances of resource `r` are macros on this architecture
/// (DSP, BRAM, URAM per §II-A).
constexpr bool is_macro_resource(Resource r) {
  return r == Resource::Dsp || r == Resource::Bram || r == Resource::Uram;
}

/// Site type hosting a given resource.
constexpr SiteType site_for_resource(Resource r) {
  switch (r) {
    case Resource::Dsp:
      return SiteType::Dsp;
    case Resource::Bram:
      return SiteType::Bram;
    case Resource::Uram:
      return SiteType::Uram;
    default:
      return SiteType::Clb;
  }
}

/// Per-site capacity of each resource (UltraScale+ CLB: 8 LUTs + 16 FFs;
/// macro sites hold one macro each).
constexpr std::int64_t site_capacity(SiteType site, Resource r) {
  if (site == SiteType::Clb) {
    if (r == Resource::Lut) return 8;
    if (r == Resource::Ff) return 16;
    return 0;
  }
  return site_for_resource(r) == site &&
                 (r == Resource::Dsp || r == Resource::Bram ||
                  r == Resource::Uram)
             ? 1
             : 0;
}

/// The device: a cols x rows array of sites where every column carries a
/// single site type, mirroring the UltraScale+ columnar fabric.
class DeviceGrid {
 public:
  /// Builds a device with a fixed repeating column pattern. The default
  /// pattern inserts a DSP column every `dsp_period` columns, a BRAM column
  /// every `bram_period`, and a small number of URAM columns, the rest CLB.
  DeviceGrid(std::int64_t cols, std::int64_t rows,
             std::int64_t dsp_period = 12, std::int64_t bram_period = 16,
             std::int64_t uram_period = 48);

  /// XCVU3P-like device scaled to library experiment sizes. The real part has
  /// ~49k CLBs, 2280 DSPs, 720 BRAM36 and 320 URAMs; the returned device
  /// preserves the columnar mix at roughly 1/16 the site count by default.
  static DeviceGrid make_xcvu3p_like(std::int64_t cols = 120,
                                     std::int64_t rows = 80);

  std::int64_t cols() const { return cols_; }
  std::int64_t rows() const { return rows_; }

  SiteType column_type(std::int64_t col) const {
    return column_types_[static_cast<size_t>(col)];
  }
  SiteType site_type(std::int64_t col, std::int64_t row) const;
  bool in_bounds(std::int64_t col, std::int64_t row) const {
    return col >= 0 && col < cols_ && row >= 0 && row < rows_;
  }

  /// All (col) indices whose column hosts `type`.
  const std::vector<std::int64_t>& columns_of(SiteType type) const;

  /// Total number of sites of a type.
  std::int64_t site_count(SiteType type) const;

  /// Total capacity of the device for resource r (sites x per-site capacity).
  std::int64_t resource_capacity(Resource r) const;

  /// Total *area* capacity for resource r where one unit of area corresponds
  /// to one resource slot (used by the inflation scaling in Eq. 12).
  double area_capacity(Resource r) const {
    return static_cast<double>(resource_capacity(r));
  }

 private:
  std::int64_t cols_, rows_;
  std::vector<SiteType> column_types_;
  std::array<std::vector<std::int64_t>, kNumSiteTypes> columns_by_type_;
};

}  // namespace mfa::fpga
