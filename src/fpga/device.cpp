#include "fpga/device.h"

#include <stdexcept>

namespace mfa::fpga {

const char* to_string(SiteType t) {
  switch (t) {
    case SiteType::Clb:
      return "CLB";
    case SiteType::Dsp:
      return "DSP";
    case SiteType::Bram:
      return "BRAM";
    case SiteType::Uram:
      return "URAM";
    default:
      return "?";
  }
}

const char* to_string(Resource r) {
  switch (r) {
    case Resource::Lut:
      return "LUT";
    case Resource::Ff:
      return "FF";
    case Resource::Dsp:
      return "DSP";
    case Resource::Bram:
      return "BRAM";
    case Resource::Uram:
      return "URAM";
    default:
      return "?";
  }
}

DeviceGrid::DeviceGrid(std::int64_t cols, std::int64_t rows,
                       std::int64_t dsp_period, std::int64_t bram_period,
                       std::int64_t uram_period)
    : cols_(cols), rows_(rows) {
  if (cols <= 0 || rows <= 0)
    throw std::invalid_argument("DeviceGrid: non-positive dimensions");
  column_types_.resize(static_cast<size_t>(cols), SiteType::Clb);
  for (std::int64_t c = 0; c < cols; ++c) {
    SiteType t = SiteType::Clb;
    // Offset the special columns so they do not collide; URAM wins over BRAM
    // wins over DSP when periods coincide (URAM columns are rarest).
    if (uram_period > 0 && c % uram_period == uram_period / 2) {
      t = SiteType::Uram;
    } else if (bram_period > 0 && c % bram_period == bram_period / 2) {
      t = SiteType::Bram;
    } else if (dsp_period > 0 && c % dsp_period == dsp_period / 3) {
      t = SiteType::Dsp;
    }
    column_types_[static_cast<size_t>(c)] = t;
    columns_by_type_[static_cast<size_t>(t)].push_back(c);
  }
}

DeviceGrid DeviceGrid::make_xcvu3p_like(std::int64_t cols, std::int64_t rows) {
  return DeviceGrid(cols, rows, /*dsp_period=*/10, /*bram_period=*/15,
                    /*uram_period=*/40);
}

SiteType DeviceGrid::site_type(std::int64_t col, std::int64_t row) const {
  if (!in_bounds(col, row)) throw std::out_of_range("site_type: off device");
  return column_types_[static_cast<size_t>(col)];
}

const std::vector<std::int64_t>& DeviceGrid::columns_of(SiteType type) const {
  return columns_by_type_[static_cast<size_t>(type)];
}

std::int64_t DeviceGrid::site_count(SiteType type) const {
  return static_cast<std::int64_t>(columns_of(type).size()) * rows_;
}

std::int64_t DeviceGrid::resource_capacity(Resource r) const {
  std::int64_t total = 0;
  for (std::size_t t = 0; t < kNumSiteTypes; ++t) {
    const auto site = static_cast<SiteType>(t);
    total += site_count(site) * site_capacity(site, r);
  }
  return total;
}

}  // namespace mfa::fpga
