#include "fpga/tile_grid.h"

#include <algorithm>
#include <stdexcept>

namespace mfa::fpga {

const char* to_string(Direction d) {
  switch (d) {
    case Direction::East:
      return "east";
    case Direction::South:
      return "south";
    case Direction::West:
      return "west";
    case Direction::North:
      return "north";
    default:
      return "?";
  }
}

const char* to_string(WireClass w) {
  return w == WireClass::Short ? "short" : "global";
}

InterconnectTileGrid::InterconnectTileGrid(std::int64_t gw, std::int64_t gh,
                                           std::int64_t dev_cols,
                                           std::int64_t dev_rows,
                                           std::int64_t short_capacity,
                                           std::int64_t global_capacity)
    : gw_(gw), gh_(gh) {
  if (gw <= 0 || gh <= 0 || dev_cols <= 0 || dev_rows <= 0)
    throw std::invalid_argument("InterconnectTileGrid: non-positive dims");
  sx_ = static_cast<double>(dev_cols) / static_cast<double>(gw);
  sy_ = static_cast<double>(dev_rows) / static_cast<double>(gh);
  capacity_[static_cast<size_t>(WireClass::Short)] = short_capacity;
  capacity_[static_cast<size_t>(WireClass::Global)] = global_capacity;
}

std::int64_t InterconnectTileGrid::tile_x(double device_x) const {
  const auto gx = static_cast<std::int64_t>(device_x / sx_);
  return std::clamp<std::int64_t>(gx, 0, gw_ - 1);
}

std::int64_t InterconnectTileGrid::tile_y(double device_y) const {
  const auto gy = static_cast<std::int64_t>(device_y / sy_);
  return std::clamp<std::int64_t>(gy, 0, gh_ - 1);
}

}  // namespace mfa::fpga
