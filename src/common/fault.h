// Deterministic fault injection for testing the recovery layer.
//
// Call sites name a fault point and ask whether it should fire; tests arm
// points with a trigger (once / nth call / seeded probability) and the
// production code path reacts exactly as it would to the real fault:
//
//     if (MFA_FAULT_POINT("checkpoint.crash_before_rename"))
//       throw std::runtime_error("checkpoint: fault-injected crash");
//
// Design rules:
//  * Deterministic. The probability trigger hashes (seed, hit index), so a
//    fixed seed reproduces the exact fire pattern regardless of wall clock,
//    thread timing of *other* points, or platform.
//  * Zero overhead in Release. With NDEBUG (and without
//    MFA_FORCE_FAULT_INJECTION) MFA_FAULT_POINT(name) expands to the literal
//    `false`, so the guarded branch is dead code and the registry is never
//    consulted. MFA_FAULT_INJECTION_ON reports the active mode.
//  * Thread safe. The registry is mutex-protected; points fired from
//    parallel_for workers count correctly.
//
// Fault points currently threaded through the library:
//     checkpoint.torn_write          corrupts one byte of a checkpoint image
//     checkpoint.crash_before_rename crash between temp write and rename
//     tensor.nan_grad                poisons a parent gradient in backward()
//     trainer.crash                  crash mid-epoch in Trainer::fit
//     flow.predictor_nan             predictor emits a non-finite level map
//     flow.predict_budget            predictor wall-clock budget reads exhausted
//     place.budget                   placer wall-clock budget reads exhausted
//     route.budget                   router wall-clock budget reads exhausted
//     trainer.budget                 trainer wall-clock budget reads exhausted
//     obs.export                     a metrics snapshot source fails mid-export
//     checkpoint.transient_io        retryable I/O failure in fsync/rename
//     serve.queue_full               admission queue reads full (load shed)
//     serve.batch_failure            serving worker fails mid-batch
//     serve.swap_corrupt             weight-swap snapshot arrives corrupted
//     serve.slow_worker              serving worker stalls before the forward
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mfa::common {

/// Per-point bookkeeping returned by FaultInjector::stats().
struct FaultPointStats {
  std::string name;
  std::int64_t hits = 0;   // times the point was evaluated while armed
  std::int64_t fires = 0;  // times it reported true
};

/// Process-wide registry of armed fault points (singleton; tests reset() it).
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Fires on the next hit only.
  void arm_once(const std::string& point);
  /// Fires on exactly the nth hit after arming (1-based).
  void arm_nth(const std::string& point, std::int64_t nth);
  /// Fires each hit independently with probability `p`, derived from
  /// (seed, hit index) so the pattern is reproducible.
  void arm_probability(const std::string& point, double p, std::uint64_t seed);
  /// Fires on every hit.
  void arm_always(const std::string& point);

  /// Stops the point from firing; its recorded counters survive until
  /// reset() so a test can still inspect what happened.
  void disarm(const std::string& point);
  /// Disarms every point and clears all counters.
  void reset();

  /// Trigger evaluation for an armed point; counts the hit. Unarmed points
  /// return false without recording anything. Called via MFA_FAULT_POINT.
  bool should_fire(const char* point);

  std::int64_t hit_count(const std::string& point) const;
  std::int64_t fire_count(const std::string& point) const;
  std::vector<FaultPointStats> stats() const;

  /// True when MFA_FAULT_POINT consults the registry in this build.
  static constexpr bool compiled_in();

 private:
  FaultInjector() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace mfa::common

#if !defined(NDEBUG) || defined(MFA_FORCE_FAULT_INJECTION)
#define MFA_FAULT_INJECTION_ON 1
#else
#define MFA_FAULT_INJECTION_ON 0
#endif

namespace mfa::common {
constexpr bool FaultInjector::compiled_in() {
  return MFA_FAULT_INJECTION_ON == 1;
}
}  // namespace mfa::common

#if MFA_FAULT_INJECTION_ON
/// True when the named fault point is armed and its trigger fires now.
#define MFA_FAULT_POINT(name) \
  (::mfa::common::FaultInjector::instance().should_fire(name))
#else
// Literal false: the guarded branch is removed entirely by the optimiser.
#define MFA_FAULT_POINT(name) (false)
#endif
