// mfa::sanitize — deterministic lifetime/race/redzone checker for the pooled
// tensor hot path (storage.h, parallel.h, thread_pool.h).
//
// Generic sanitizers (ASan/TSan) only catch what a given schedule happens to
// trip, and the StoragePool's recycling hides use-after-release from ASan
// entirely: a stale pointer into a recycled block reads perfectly valid
// memory. This module adds project-aware checks that fire deterministically,
// independent of thread schedule, for four defect classes:
//
//  * redzone  — guard bytes before/after every pooled payload, verified when
//    a block is released, when it is reacquired from a free list, and on
//    demand (Storage::verify_guards, StoragePool::verify_cached_guards). A
//    kernel overrun is caught at the faulting op, not as pool corruption N
//    iterations later.
//  * lifetime — per-block generation counters. Every Storage handle stamps
//    the block generation it acquired; any access after the block was
//    released/recycled (the eager-grad-release hazard in backward()) reports
//    the mismatch plus backtrace-lite context (current op name + tape node).
//  * race     — declared-write overlap detection for parallel_for regions.
//    Chunk kernels declare the float ranges they write
//    (note_parallel_write); at region end, two overlapping declarations from
//    different chunks are reported even if the schedule never actually
//    interleaved them (unlike TSan). Chunk partitioning is virtualised to a
//    fixed task count while the checker is on, so MFA_THREADS=1 detects the
//    same overlaps as MFA_THREADS=16.
//  * refcount — double-release / negative-refcount detection in the pool's
//    release path, plus leak-at-drain audits (StoragePool::audit_leaks).
//
// Gating mirrors common/fault.h: compiled in when NDEBUG is not defined (or
// MFA_FORCE_SANITIZE_STORAGE is), compiled to inline no-ops in Release —
// MFA_SANITIZE_STORAGE_ON reports the active mode. When compiled in, the
// runtime switch is the MFA_SANITIZE_STORAGE environment variable (default
// off; "on"/"1"/"true" enable) or set_enabled(). Generation stamping is
// always maintained while compiled in (one counter bump per recycle), so
// toggling at runtime never yields false positives.
//
// Violations format through MFA_CHECK-style streaming (MFA_SANITIZE_VIOLATION
// in sanitize.cpp / storage.cpp) and throw check::CheckError; paths that may
// run inside destructors report without throwing. Every violation bumps a
// per-class counter exported to mfa::obs as "sanitize.violations_<class>".
#pragma once

#include <cstdint>
#include <string>

#if !defined(NDEBUG) || defined(MFA_FORCE_SANITIZE_STORAGE)
#define MFA_SANITIZE_STORAGE_ON 1
#else
#define MFA_SANITIZE_STORAGE_ON 0
#endif

namespace mfa::sanitize {

/// The four defect classes plus the pool-drain leak audit.
enum class Defect : int {
  kRedzone = 0,
  kLifetime = 1,
  kRace = 2,
  kRefcount = 3,
  kLeak = 4,
};
inline constexpr int kNumDefects = 5;

/// "redzone", "lifetime", "race", "refcount", "leak".
const char* defect_name(Defect d);

/// Cumulative violation counters since process start (or reset_counts()).
struct Counts {
  std::int64_t redzone = 0;
  std::int64_t lifetime = 0;
  std::int64_t race = 0;
  std::int64_t refcount = 0;
  std::int64_t leak = 0;
  /// Redzone verifications performed (lets a clean run prove the checker
  /// actually executed, not just that nothing fired).
  std::int64_t redzone_checks = 0;
  std::int64_t total() const {
    return redzone + lifetime + race + refcount + leak;
  }
};

/// True in builds where the checker exists at all (Debug, or Release with
/// MFA_FORCE_SANITIZE_STORAGE).
constexpr bool compiled_in() { return MFA_SANITIZE_STORAGE_ON == 1; }

#if MFA_SANITIZE_STORAGE_ON

/// Runtime switch: compiled_in() && (MFA_SANITIZE_STORAGE env or
/// set_enabled). One relaxed atomic load when consulted on a hot path.
bool enabled();
void set_enabled(bool on);

/// Violation disposition. Default true: report() throws check::CheckError at
/// the faulting call site. Tests flip it off to observe several violations
/// in one scenario; counters are bumped either way.
bool throw_on_violation();
void set_throw_on_violation(bool on);

Counts counts();
void reset_counts();

namespace detail {

// Thread-local region/chunk identity, written by ChunkScope (thread_pool.cpp)
// and read by note_parallel_write's inline fast path. region 0 = not inside
// a tracked parallel region.
extern thread_local std::uint64_t t_region;
extern thread_local std::int64_t t_chunk;

void note_write_slow(const void* base, std::int64_t begin, std::int64_t end);

/// Bumps the Counts::redzone_checks statistic (called by storage.cpp once
/// per verified guard pair).
void add_redzone_checks(std::int64_t n);

/// Bumps the class counter, then throws CheckError with the streamed message
/// (plus op/tape-node context) unless throw_on_violation() is off or
/// allow_throw is false (destructor paths), in which case it logs instead.
void report(Defect d, const std::string& message, bool allow_throw);

}  // namespace detail

/// Records `message` (already formatted) as a violation of class d.
inline void report_violation(Defect d, const std::string& message,
                             bool allow_throw = true) {
  detail::report(d, message, allow_throw);
}

// ---- backtrace-lite op context -----------------------------------------
//
// Ops bracket their forward body with OpScope("conv2d"); backward() brackets
// each tape closure with OpScope(op_name, tape_node). Violation messages
// append " during op <name> (tape node #k)" so a redzone hit names the
// faulting kernel, not just the allocator call that noticed it.

class OpScope {
 public:
  explicit OpScope(const char* op, std::int64_t tape_node = -1);
  ~OpScope();
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  const char* prev_op_;
  std::int64_t prev_node_;
};

/// Innermost op scope on this thread; nullptr / -1 outside any scope.
const char* current_op();
std::int64_t current_tape_node();
/// " during op conv2d (tape node #7)" — empty outside any scope.
std::string context_suffix();

// ---- deterministic write-race detection --------------------------------

/// Sub-switch for the race class only (default on). Turning it off keeps
/// redzone/lifetime/refcount checks armed while dropping declared-write
/// tracking — used by tests that want the sanitizer live under a genuinely
/// parallel backward schedule (race tracking forces the tape executor
/// sequential so overlap reports stay schedule-independent; see
/// tensor/tape.h).
bool race_tracking();
void set_race_tracking(bool on);

/// True when declared-write tracking should run: compiled in, enabled, and
/// the race sub-switch on. parallel_for consults this to virtualise its
/// chunk partition; the tape executor consults it to pin the sequential
/// backward walk.
inline bool race_check_active() { return enabled() && race_tracking(); }

/// Opens a tracked region; returns its non-zero token, or 0 when the checker
/// is off (every later call with token 0 is a no-op). Called by
/// ThreadPool::run.
std::uint64_t begin_region();
/// Sweeps the region's declared writes for overlaps between different
/// chunks; reports Defect::kRace (throwing, unless disabled) and clears the
/// region's entries.
void end_region(std::uint64_t token);
/// Clears the region's entries without the overlap sweep (exception paths:
/// the kernel error supersedes the race report).
void abandon_region(std::uint64_t token);

/// RAII marker: "this thread is executing chunk [chunk_id] of region
/// [region]". Placed by ThreadPool around every chunk invocation.
class ChunkScope {
 public:
  ChunkScope(std::uint64_t region, std::int64_t chunk_id)
      : prev_region_(detail::t_region), prev_chunk_(detail::t_chunk) {
    detail::t_region = region;
    detail::t_chunk = chunk_id;
  }
  ~ChunkScope() {
    detail::t_region = prev_region_;
    detail::t_chunk = prev_chunk_;
  }
  ChunkScope(const ChunkScope&) = delete;
  ChunkScope& operator=(const ChunkScope&) = delete;

 private:
  std::uint64_t prev_region_;
  std::int64_t prev_chunk_;
};

/// Declares that the current chunk writes float range [begin, end) of the
/// buffer starting at `base`. Call once per chunk per output buffer, from
/// inside the parallel_for body. No-op outside a tracked region.
inline void note_parallel_write(const void* base, std::int64_t begin,
                                std::int64_t end) {
  if (detail::t_region == 0) return;
  detail::note_write_slow(base, begin, end);
}

#else  // !MFA_SANITIZE_STORAGE_ON — inline no-op stubs, zero Release cost.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline bool throw_on_violation() { return true; }
inline void set_throw_on_violation(bool) {}
inline Counts counts() { return {}; }
inline void reset_counts() {}
inline void report_violation(Defect, const std::string&, bool = true) {}

class OpScope {
 public:
  explicit OpScope(const char*, std::int64_t = -1) {}
};
inline const char* current_op() { return nullptr; }
inline std::int64_t current_tape_node() { return -1; }
inline std::string context_suffix() { return {}; }

inline bool race_tracking() { return true; }
inline void set_race_tracking(bool) {}
inline bool race_check_active() { return false; }
inline std::uint64_t begin_region() { return 0; }
inline void end_region(std::uint64_t) {}
inline void abandon_region(std::uint64_t) {}

class ChunkScope {
 public:
  ChunkScope(std::uint64_t, std::int64_t) {}
};
inline void note_parallel_write(const void*, std::int64_t, std::int64_t) {}

#endif  // MFA_SANITIZE_STORAGE_ON

}  // namespace mfa::sanitize
