// Persistent worker pool behind mfa::parallel_for (see common/parallel.h).
//
// The old parallel_for spawned and joined fresh std::threads on every call,
// which put thread-creation latency on the GEMM/conv hot path. The pool is
// created lazily on the first parallel region, keeps its workers parked on a
// condition variable between jobs, and hands out work with an atomic-counter
// dynamic chunk scheduler (workers race to claim the next chunk, so uneven
// chunks self-balance).
//
// Determinism contract: the pool never changes *what* is computed, only *who*
// computes it. Kernels built on it (tensor/gemm.h) keep a fixed per-element
// reduction order, so results are bit-identical for any pool size, including
// MFA_THREADS=1.
//
// Sizing: MFA_THREADS (clamped to [1, 256]) overrides the default of
// hardware_concurrency capped at 16. The env var is read once, when the pool
// is first constructed. Size 1 means "no workers": every region runs inline
// on the caller.
//
// Re-entrancy: a thread_local depth counter marks threads currently executing
// a parallel region (workers and participating callers alike). A nested
// parallel_for observes it and runs inline instead of deadlocking on the
// job slot or oversubscribing the machine. Likewise, when two independent
// caller threads race to submit jobs, the loser runs its loop inline rather
// than blocking (run() is try_lock based).
//
// Exception semantics match the old fork/join helper: the first exception a
// chunk throws (in completion order) is captured and rethrown in the caller
// after the whole region has drained; later exceptions are swallowed. All
// chunks still execute — an error does not cancel the remainder of the range.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mfa::common {

class ThreadPool {
 public:
  /// Type-erased chunk kernel: invoked as kernel(ctx, begin, end) over
  /// disjoint [begin, end) subranges. parallel_for supplies a trampoline
  /// around the user's callable, so no std::function allocation is involved.
  using Kernel = void (*)(void* ctx, std::int64_t begin, std::int64_t end);

  /// The process-wide pool, constructed (and its workers spawned) on first
  /// use. Callers that never enter a large parallel region never pay for it.
  static ThreadPool& instance();

  /// True on threads currently executing a chunk of some parallel region
  /// (pool workers and participating callers). Used by parallel_for to run
  /// nested regions inline.
  static bool in_parallel_region();

  /// Runs kernel over [0, n) in chunks of `chunk` claimed from an atomic
  /// counter. The caller participates; workers join in. Blocks until the
  /// region has fully drained, then rethrows the first captured exception.
  /// Must not be called with n <= 0 (parallel_for filters that out).
  void run(std::int64_t n, std::int64_t chunk, Kernel kernel, void* ctx);

  /// Total parallelism: participating caller + workers. A size of 1 means
  /// run() executes everything inline.
  int size() const { return size_; }

  /// Number of parallel regions actually dispatched to workers (inline runs
  /// don't count). Lets tests verify the n <= grain fast path never touches
  /// the scheduler.
  std::uint64_t jobs_run() const { return jobs_run_.load(); }

  /// Regions that ran inline on the caller (size-1 pool, nested regions
  /// filtered by parallel_for don't reach here, submit-race losers do).
  std::uint64_t inline_runs() const { return inline_runs_.load(); }

  /// Total chunks claimed across all regions (dispatched and inline); the
  /// dynamic scheduler's unit of work. chunks/jobs approximates how finely
  /// regions are being sliced.
  std::uint64_t chunks_run() const { return chunks_run_.load(); }

  /// True once instance() has been called (without forcing construction).
  static bool initialized();

  /// Joins the current workers and respawns with the given size (clamped
  /// like MFA_THREADS). Test-only: lets the determinism suite compare a
  /// size-1 pool against the parallel configuration inside one process.
  /// Must not be called while any parallel region is running.
  void resize_for_testing(int size);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  ~ThreadPool();

  struct Job {
    Kernel kernel = nullptr;
    void* ctx = nullptr;
    std::int64_t n = 0;
    std::int64_t chunk = 1;
    // Token of the mfa::sanitize declared-write region this job runs under
    // (0 when the storage sanitizer is off / compiled out).
    std::uint64_t sanitize_region = 0;
    std::atomic<std::int64_t> next{0};   // next unclaimed index
    std::atomic<int> in_flight{0};       // threads inside work_on()
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void spawn_workers(int workers);
  void join_workers();
  void worker_loop();
  /// Claims and executes chunks until the range is exhausted.
  static void work_on(Job& job);

  int size_ = 1;
  std::vector<std::thread> workers_;

  // Job hand-off: job_/seq_ guarded by mutex_; workers sleep on wake_ and the
  // submitting caller sleeps on done_. submit_mutex_ serialises top-level
  // callers (try_lock: losers run inline, see run()).
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Job* job_ = nullptr;
  std::uint64_t seq_ = 0;
  bool stop_ = false;
  std::mutex submit_mutex_;
  std::atomic<std::uint64_t> jobs_run_{0};
  std::atomic<std::uint64_t> inline_runs_{0};
  std::atomic<std::uint64_t> chunks_run_{0};
};

}  // namespace mfa::common
