#include "common/check.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace mfa::check {

namespace {

bool env_finite_grads() {
  const char* v = std::getenv("MFA_CHECK_FINITE_GRADS");
  return v != nullptr && std::strcmp(v, "0") != 0;
}

std::atomic<bool>& finite_grad_flag() {
  static std::atomic<bool> flag{env_finite_grads()};
  return flag;
}

}  // namespace

bool finite_grad_checks_enabled() {
  return finite_grad_flag().load(std::memory_order_relaxed);
}

void set_finite_grad_checks(bool on) {
  finite_grad_flag().store(on, std::memory_order_relaxed);
}

void check_all_finite(const float* data, std::int64_t n, const char* what) {
  for (std::int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) {
      std::ostringstream oss;
      oss << "non-finite value " << data[i] << " at flat index " << i
          << " of " << n << " in " << what;
      throw CheckError(oss.str());
    }
  }
}

namespace detail {

std::string vec_str(const std::vector<std::int64_t>& v) {
  std::string s = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(v[i]);
  }
  return s + "]";
}

CheckMessage::CheckMessage(const char* file, int line, const char* expr) {
  oss_ << file << ":" << line << ": check failed: " << expr;
}

FailValues shape_fail(const std::vector<std::int64_t>& a,
                      const std::vector<std::int64_t>& b) {
  if (a == b) return std::nullopt;
  return std::make_pair(vec_str(a), vec_str(b));
}

FailValues bounds_fail(long long index, long long size) {
  if (index >= 0 && index < size) return std::nullopt;
  return std::make_pair(std::to_string(index), std::to_string(size));
}

std::optional<double> finite_fail(double v) {
  if (std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace detail
}  // namespace mfa::check
