// Runtime invariant checking for the whole library (VPR's vtr_assert in
// spirit, glog's CHECK in syntax).
//
// Two severity tiers:
//  * MFA_CHECK*  — always compiled in. Guards API contracts and data-file
//    integrity at call granularity (per op / per connection, never per
//    element). Failure throws CheckError with file:line, the failed
//    expression, the offending values, and any streamed context:
//
//        MFA_CHECK(n > 0) << "layer " << name << " got an empty batch";
//        MFA_CHECK_EQ(a.numel(), b.numel()) << "in add_";
//        MFA_CHECK_SHAPE(a.shape(), b.shape()) << "conv weight";
//
//  * MFA_DCHECK* — same syntax, but compiled out (condition unevaluated)
//    when NDEBUG is defined and MFA_FORCE_DCHECK is not. Guards per-element
//    invariants in hot loops (grid bounds, non-negative demand) that are too
//    expensive for release builds. MFA_DCHECK_IS_ON reports the active mode.
//
// CheckError derives from std::invalid_argument (and therefore
// std::logic_error): a failed check is a broken programming contract, not an
// environmental condition. I/O and file-format errors stay std::runtime_error.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mfa::check {

/// Thrown by every MFA_CHECK* macro on failure.
class CheckError : public std::invalid_argument {
 public:
  explicit CheckError(const std::string& what) : std::invalid_argument(what) {}
};

/// Runtime toggle for the NaN/Inf gradient scan in Tensor::backward().
/// Off by default (it is O(tape size * tensor size)); seeded to on when the
/// MFA_CHECK_FINITE_GRADS environment variable is set and non-"0".
bool finite_grad_checks_enabled();
void set_finite_grad_checks(bool on);

/// Throws CheckError naming `what` if any of data[0..n) is NaN or infinite.
void check_all_finite(const float* data, std::int64_t n, const char* what);

namespace detail {

/// "[2, 3, 4]" — the canonical shape formatting; mfa::shape_str delegates
/// here so check messages and op error messages render shapes identically.
std::string vec_str(const std::vector<std::int64_t>& v);

/// Accumulates the failure message for one failed check.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr);
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }
  std::string str() const { return oss_.str(); }

 private:
  std::ostringstream oss_;
};

/// Lower precedence than <<, so it fires after the full message is streamed.
struct Thrower {
  [[noreturn]] void operator&(const CheckMessage& m) const {
    throw CheckError(m.str());
  }
};

template <typename T>
std::string value_str(const T& v) {
  std::ostringstream oss;
  oss << v;
  return oss.str();
}
inline std::string value_str(const std::vector<std::int64_t>& v) {
  return vec_str(v);
}

using FailValues = std::optional<std::pair<std::string, std::string>>;

/// Evaluates both operands exactly once; non-empty result carries their
/// stringified values when the comparison fails.
template <typename A, typename B, typename Op>
FailValues op_fail(const A& a, const B& b, Op op) {
  if (op(a, b)) return std::nullopt;
  return std::make_pair(value_str(a), value_str(b));
}

FailValues shape_fail(const std::vector<std::int64_t>& a,
                      const std::vector<std::int64_t>& b);
FailValues bounds_fail(long long index, long long size);
std::optional<double> finite_fail(double v);

}  // namespace detail
}  // namespace mfa::check

/// MFA_CHECK(cond) << "context";  — throws mfa::check::CheckError when cond
/// is false, after the streamed context has been appended to the message.
#define MFA_CHECK(cond)                                              \
  (__builtin_expect(static_cast<bool>(cond), 1))                     \
      ? (void)0                                                      \
      : ::mfa::check::detail::Thrower{} &                            \
            ::mfa::check::detail::CheckMessage(__FILE__, __LINE__, #cond)

// Binary comparison checks; the message carries both operand values.
// Operands are evaluated exactly once. `while` (not `if`) keeps the macros
// safe inside unbraced if/else; the body throws, so it runs at most once.
#define MFA_CHECK_OP_(a, b, op)                                               \
  while (auto mfa_check_fail_ = ::mfa::check::detail::op_fail(                \
             (a), (b),                                                        \
             [](const auto& x_, const auto& y_) { return x_ op y_; }))        \
  ::mfa::check::detail::Thrower{} &                                           \
      ::mfa::check::detail::CheckMessage(__FILE__, __LINE__,                  \
                                         #a " " #op " " #b)                   \
          << " (" << mfa_check_fail_->first << " vs "                         \
          << mfa_check_fail_->second << ")"

#define MFA_CHECK_EQ(a, b) MFA_CHECK_OP_(a, b, ==)
#define MFA_CHECK_NE(a, b) MFA_CHECK_OP_(a, b, !=)
#define MFA_CHECK_LT(a, b) MFA_CHECK_OP_(a, b, <)
#define MFA_CHECK_LE(a, b) MFA_CHECK_OP_(a, b, <=)
#define MFA_CHECK_GT(a, b) MFA_CHECK_OP_(a, b, >)
#define MFA_CHECK_GE(a, b) MFA_CHECK_OP_(a, b, >=)

/// Exact shape equality; the message shows both shapes as "[2, 3]" strings.
#define MFA_CHECK_SHAPE(a, b)                                                 \
  while (auto mfa_check_fail_ = ::mfa::check::detail::shape_fail((a), (b)))   \
  ::mfa::check::detail::Thrower{} &                                           \
      ::mfa::check::detail::CheckMessage(__FILE__, __LINE__,                  \
                                         #a " matches " #b)                   \
          << " (" << mfa_check_fail_->first << " vs "                         \
          << mfa_check_fail_->second << ")"

/// 0 <= index < size.
#define MFA_CHECK_BOUNDS(index, size)                                         \
  while (auto mfa_check_fail_ = ::mfa::check::detail::bounds_fail(            \
             static_cast<long long>(index), static_cast<long long>(size)))    \
  ::mfa::check::detail::Thrower{} &                                           \
      ::mfa::check::detail::CheckMessage(__FILE__, __LINE__,                  \
                                         "0 <= " #index " < " #size)          \
          << " (index " << mfa_check_fail_->first << ", size "                \
          << mfa_check_fail_->second << ")"

/// Value is neither NaN nor infinite.
#define MFA_CHECK_FINITE(v)                                                   \
  while (auto mfa_check_fail_ = ::mfa::check::detail::finite_fail(            \
             static_cast<double>(v)))                                         \
  ::mfa::check::detail::Thrower{} &                                           \
      ::mfa::check::detail::CheckMessage(__FILE__, __LINE__,                  \
                                         #v " is finite")                     \
          << " (value " << *mfa_check_fail_ << ")"

// ---- debug-only tier ----

#if defined(NDEBUG) && !defined(MFA_FORCE_DCHECK)
#define MFA_DCHECK_IS_ON 0
#else
#define MFA_DCHECK_IS_ON 1
#endif

#if MFA_DCHECK_IS_ON
#define MFA_DCHECK(cond) MFA_CHECK(cond)
#define MFA_DCHECK_EQ(a, b) MFA_CHECK_EQ(a, b)
#define MFA_DCHECK_NE(a, b) MFA_CHECK_NE(a, b)
#define MFA_DCHECK_LT(a, b) MFA_CHECK_LT(a, b)
#define MFA_DCHECK_LE(a, b) MFA_CHECK_LE(a, b)
#define MFA_DCHECK_GT(a, b) MFA_CHECK_GT(a, b)
#define MFA_DCHECK_GE(a, b) MFA_CHECK_GE(a, b)
#define MFA_DCHECK_SHAPE(a, b) MFA_CHECK_SHAPE(a, b)
#define MFA_DCHECK_BOUNDS(index, size) MFA_CHECK_BOUNDS(index, size)
#define MFA_DCHECK_FINITE(v) MFA_CHECK_FINITE(v)
#else
// `while (false)` keeps the operands syntax-checked but dead: they are never
// evaluated, and the optimiser removes the whole statement.
#define MFA_DCHECK(cond) \
  while (false) MFA_CHECK(cond)
#define MFA_DCHECK_EQ(a, b) \
  while (false) MFA_CHECK_EQ(a, b)
#define MFA_DCHECK_NE(a, b) \
  while (false) MFA_CHECK_NE(a, b)
#define MFA_DCHECK_LT(a, b) \
  while (false) MFA_CHECK_LT(a, b)
#define MFA_DCHECK_LE(a, b) \
  while (false) MFA_CHECK_LE(a, b)
#define MFA_DCHECK_GT(a, b) \
  while (false) MFA_CHECK_GT(a, b)
#define MFA_DCHECK_GE(a, b) \
  while (false) MFA_CHECK_GE(a, b)
#define MFA_DCHECK_SHAPE(a, b) \
  while (false) MFA_CHECK_SHAPE(a, b)
#define MFA_DCHECK_BOUNDS(index, size) \
  while (false) MFA_CHECK_BOUNDS(index, size)
#define MFA_DCHECK_FINITE(v) \
  while (false) MFA_CHECK_FINITE(v)
#endif
