#include "common/sanitize.h"

#if MFA_SANITIZE_STORAGE_ON

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/metrics.h"

namespace mfa::sanitize {

namespace {

bool env_enabled() {
  const char* v = std::getenv("MFA_SANITIZE_STORAGE");
  if (!v) return false;
  const std::string s(v);
  return s == "on" || s == "1" || s == "true";
}

// One declared write range. `region` scopes the entry to the parallel_for
// invocation that produced it (two top-level regions can run concurrently
// when a submit-race loser goes inline); `chunk` identifies the declaring
// chunk so a single chunk may legally revisit its own range.
struct WriteEntry {
  const void* base;
  std::int64_t begin;
  std::int64_t end;
  std::int64_t chunk;
  std::uint64_t region;
};

// Leaky singleton (same rationale as StoragePool / obs::Registry: the
// checker is consulted from thread-exit paths of the worker pool).
struct State {
  std::atomic<bool> enabled{env_enabled()};
  std::atomic<bool> race_tracking{true};
  std::atomic<bool> throw_on_violation{true};
  std::atomic<std::int64_t> counts[kNumDefects] = {};
  std::atomic<std::int64_t> redzone_checks{0};
  std::atomic<std::uint64_t> region_seq{0};

  // Declared-write log. A mutex-protected vector is fine here: entries are
  // per-chunk (not per-element), and the checker is a Debug diagnostic mode.
  std::mutex race_mutex;
  std::vector<WriteEntry> race_log;

  State() {
    obs::Registry::instance().register_source("sanitize", [this] {
      return std::vector<std::pair<std::string, double>>{
          {"violations_redzone", static_cast<double>(counts[0].load())},
          {"violations_lifetime", static_cast<double>(counts[1].load())},
          {"violations_race", static_cast<double>(counts[2].load())},
          {"violations_refcount", static_cast<double>(counts[3].load())},
          {"violations_leak", static_cast<double>(counts[4].load())},
          {"redzone_checks", static_cast<double>(redzone_checks.load())},
      };
    });
  }
};

State& state() {
  static State* s = new State;
  return *s;
}

thread_local const char* t_op = nullptr;
thread_local std::int64_t t_tape_node = -1;

}  // namespace

namespace detail {

thread_local std::uint64_t t_region = 0;
thread_local std::int64_t t_chunk = -1;

void note_write_slow(const void* base, std::int64_t begin, std::int64_t end) {
  auto& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  const std::lock_guard<std::mutex> lock(s.race_mutex);
  s.race_log.push_back({base, begin, end, t_chunk, t_region});
}

void report(Defect d, const std::string& message, bool allow_throw) {
  auto& s = state();
  s.counts[static_cast<int>(d)].fetch_add(1, std::memory_order_relaxed);
  const std::string full = message + context_suffix();
  if (allow_throw && s.throw_on_violation.load(std::memory_order_relaxed))
    throw check::CheckError(full);
  log::error("%s", full.c_str());
}

}  // namespace detail

const char* defect_name(Defect d) {
  switch (d) {
    case Defect::kRedzone:
      return "redzone";
    case Defect::kLifetime:
      return "lifetime";
    case Defect::kRace:
      return "race";
    case Defect::kRefcount:
      return "refcount";
    case Defect::kLeak:
      return "leak";
  }
  return "unknown";
}

bool enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  state().enabled.store(on, std::memory_order_relaxed);
}

bool race_tracking() {
  return state().race_tracking.load(std::memory_order_relaxed);
}

void set_race_tracking(bool on) {
  state().race_tracking.store(on, std::memory_order_relaxed);
}

bool throw_on_violation() {
  return state().throw_on_violation.load(std::memory_order_relaxed);
}

void set_throw_on_violation(bool on) {
  state().throw_on_violation.store(on, std::memory_order_relaxed);
}

Counts counts() {
  auto& s = state();
  Counts c;
  c.redzone = s.counts[0].load(std::memory_order_relaxed);
  c.lifetime = s.counts[1].load(std::memory_order_relaxed);
  c.race = s.counts[2].load(std::memory_order_relaxed);
  c.refcount = s.counts[3].load(std::memory_order_relaxed);
  c.leak = s.counts[4].load(std::memory_order_relaxed);
  c.redzone_checks = s.redzone_checks.load(std::memory_order_relaxed);
  return c;
}

void reset_counts() {
  auto& s = state();
  for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
  s.redzone_checks.store(0, std::memory_order_relaxed);
}

namespace detail {
void add_redzone_checks(std::int64_t n) {
  state().redzone_checks.fetch_add(n, std::memory_order_relaxed);
}
}  // namespace detail

OpScope::OpScope(const char* op, std::int64_t tape_node)
    : prev_op_(t_op), prev_node_(t_tape_node) {
  t_op = op;
  t_tape_node = tape_node;
}

OpScope::~OpScope() {
  t_op = prev_op_;
  t_tape_node = prev_node_;
}

const char* current_op() { return t_op; }
std::int64_t current_tape_node() { return t_tape_node; }

std::string context_suffix() {
  if (!t_op && t_tape_node < 0) return {};
  std::ostringstream oss;
  oss << " during op " << (t_op ? t_op : "?");
  if (t_tape_node >= 0) oss << " (tape node #" << t_tape_node << ")";
  return oss.str();
}

std::uint64_t begin_region() {
  auto& s = state();
  // Gate on the race sub-switch too, not just enabled: with tracking off the
  // tape executor runs backward tasks in parallel, and a nested parallel_for
  // that goes inline would otherwise log its full-range declarations under
  // the OUTER region's chunk id — two worker tasks then look like one
  // region's overlapping chunks and report a false race.
  if (!s.enabled.load(std::memory_order_relaxed) ||
      !s.race_tracking.load(std::memory_order_relaxed))
    return 0;
  // 0 is reserved for "inactive", so the first region gets token 1.
  return s.region_seq.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace {

/// Removes and returns the entries of one region from the shared log.
std::vector<WriteEntry> take_region_entries(std::uint64_t token) {
  auto& s = state();
  std::vector<WriteEntry> mine;
  const std::lock_guard<std::mutex> lock(s.race_mutex);
  auto keep = s.race_log.begin();
  for (auto& e : s.race_log) {
    if (e.region == token)
      mine.push_back(e);
    else
      *keep++ = e;
  }
  s.race_log.erase(keep, s.race_log.end());
  return mine;
}

}  // namespace

void end_region(std::uint64_t token) {
  if (token == 0) return;
  std::vector<WriteEntry> entries = take_region_entries(token);
  if (entries.size() < 2) return;
  // Sweep per buffer: sort by (base, begin) and compare neighbours. Two
  // ranges from different chunks that overlap are a deterministic write
  // race — the claim is about the declared partition, not about whether
  // this particular schedule interleaved the stores.
  std::sort(entries.begin(), entries.end(),
            [](const WriteEntry& a, const WriteEntry& b) {
              if (a.base != b.base) return a.base < b.base;
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end > b.end;
            });
  for (size_t i = 0; i + 1 < entries.size(); ++i) {
    const WriteEntry& a = entries[i];
    // `a` must be checked against every later overlapping range, not just
    // its immediate neighbour: [0,100) vs [10,20) vs [50,60).
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const WriteEntry& b = entries[j];
      if (b.base != a.base || b.begin >= a.end) break;
      if (b.chunk == a.chunk) continue;
      std::ostringstream oss;
      oss << "sanitize[race]: overlapping parallel writes to buffer " << a.base
          << ": chunk " << a.chunk << " declared floats [" << a.begin << ", "
          << a.end << ") and chunk " << b.chunk << " declared [" << b.begin
          << ", " << b.end << ")";
      detail::report(Defect::kRace, oss.str(), /*allow_throw=*/true);
      return;  // count-only mode: one report per region is enough signal
    }
  }
}

void abandon_region(std::uint64_t token) {
  if (token == 0) return;
  take_region_entries(token);
}

}  // namespace mfa::sanitize

#else  // !MFA_SANITIZE_STORAGE_ON

// Everything is an inline stub in the header; this translation unit is
// intentionally empty in Release builds.

#endif  // MFA_SANITIZE_STORAGE_ON
