// Tiny fork-join helper for data-parallel loops in the numeric kernels.
//
// parallel_for splits [0, n) into contiguous chunks across a small thread
// pool-less fork/join (threads are created per call; the kernels it guards are
// coarse enough that creation cost is negligible, and this keeps the library
// free of global state).
#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mfa {

/// Invokes fn(begin, end) over disjoint chunks covering [0, n).
/// Runs inline when the range is small or hardware_concurrency is 1.
///
/// If a worker throws, the first exception (in completion order) is captured
/// and rethrown in the caller after every thread has joined; later exceptions
/// are swallowed. Without this, an exception escaping a worker thread would
/// call std::terminate, turning any MFA_CHECK failure inside a parallel
/// kernel into a process abort instead of a catchable CheckError.
inline void parallel_for(std::int64_t n,
                         const std::function<void(std::int64_t, std::int64_t)>& fn,
                         std::int64_t grain = 1024) {
  if (n <= 0) return;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto max_threads = static_cast<std::int64_t>(std::min(hw, 16u));
  const std::int64_t threads = std::min(max_threads, (n + grain - 1) / grain);
  if (threads <= 1) {
    fn(0, n);
    return;
  }
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  const std::int64_t chunk = (n + threads - 1) / threads;
  for (std::int64_t t = 0; t < threads; ++t) {
    const std::int64_t begin = t * chunk;
    const std::int64_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&fn, &first_error, &error_mutex, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mfa
