// Data-parallel loop front-end for the numeric kernels.
//
// parallel_for splits [0, n) into chunks executed over the persistent worker
// pool (common/thread_pool.h). The callable is taken as a template parameter
// — no std::function allocation or indirect dispatch — and is type-erased
// into a single trampoline function pointer only when the loop actually
// leaves the calling thread.
//
// Fast paths, in order:
//  * n <= 0                      — nothing to do, returns immediately.
//  * n <= grain or pool size 1   — runs fn(0, n) inline; never touches the
//                                  scheduler (and never constructs the pool
//                                  when it is the first parallel call).
//  * nested inside a region      — runs inline: kernels may freely call
//                                  parallel kernels (conv's batch loop over
//                                  parallel GEMM) without oversubscription.
//
// If a chunk throws, the first exception (in completion order) is captured
// and rethrown in the caller after the region has drained; later exceptions
// are swallowed. Without this, an exception escaping a worker thread would
// call std::terminate, turning any MFA_CHECK failure inside a parallel
// kernel into a process abort instead of a catchable CheckError.
//
// Determinism: chunking only partitions the index range; as long as fn keeps
// a fixed reduction order per index (all kernels in tensor/ do), results are
// bit-identical for any pool size and any chunk schedule.
#pragma once

#include <algorithm>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "common/sanitize.h"
#include "common/thread_pool.h"

namespace mfa {

/// Invokes fn(begin, end) over disjoint chunks covering [0, n).
template <typename Fn>
void parallel_for(std::int64_t n, Fn&& fn, std::int64_t grain = 1024) {
  static_assert(std::is_invocable_v<Fn&, std::int64_t, std::int64_t>,
                "parallel_for body must be callable as fn(begin, end)");
  if (n <= 0) return;
  if (n <= grain || common::ThreadPool::in_parallel_region()) {
    fn(0, n);
    return;
  }
  auto& pool = common::ThreadPool::instance();
  // When the storage sanitizer's declared-write tracking is on (Debug
  // diagnostic, see common/sanitize.h), the region always goes through
  // ThreadPool::run with a FIXED virtual task count: a size-1 pool then
  // partitions [0, n) into the same chunks a size-16 pool would, so an
  // overlapping-write bug is reported identically for every MFA_THREADS.
  const bool sanitized = sanitize::race_check_active();
  if (!sanitized && pool.size() <= 1) {
    fn(0, n);
    return;
  }
  // Dynamic scheduling claims one chunk per atomic increment; scale the chunk
  // up from `grain` so a huge range still costs only O(8 * pool size) claims.
  const std::int64_t tasks =
      sanitized ? 32 : static_cast<std::int64_t>(pool.size()) * 8;
  const std::int64_t chunk = std::max(grain, (n + tasks - 1) / tasks);
  using Body = std::remove_reference_t<Fn>;
  pool.run(
      n, chunk,
      [](void* ctx, std::int64_t begin, std::int64_t end) {
        (*static_cast<Body*>(ctx))(begin, end);
      },
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
}

}  // namespace mfa
