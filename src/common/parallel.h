// Tiny fork-join helper for data-parallel loops in the numeric kernels.
//
// parallel_for splits [0, n) into contiguous chunks across a small thread
// pool-less fork/join (threads are created per call; the kernels it guards are
// coarse enough that creation cost is negligible, and this keeps the library
// free of global state).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace mfa {

/// Invokes fn(begin, end) over disjoint chunks covering [0, n).
/// Runs inline when the range is small or hardware_concurrency is 1.
inline void parallel_for(std::int64_t n,
                         const std::function<void(std::int64_t, std::int64_t)>& fn,
                         std::int64_t grain = 1024) {
  if (n <= 0) return;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const auto max_threads = static_cast<std::int64_t>(std::min(hw, 16u));
  const std::int64_t threads = std::min(max_threads, (n + grain - 1) / grain);
  if (threads <= 1) {
    fn(0, n);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  const std::int64_t chunk = (n + threads - 1) / threads;
  for (std::int64_t t = 0; t < threads; ++t) {
    const std::int64_t begin = t * chunk;
    const std::int64_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& th : pool) th.join();
}

}  // namespace mfa
