// Deterministic exponential backoff with decorrelated jitter and a bounded
// retry budget, for the transient-failure retry loops in the library (serve
// admission rejections, checkpoint I/O).
//
// The schedule is the AWS "decorrelated jitter" variant: each delay is drawn
// uniformly from [base, prev * multiplier] and capped at max, so consecutive
// retries spread out exponentially while two callers armed with different
// seeds never fall into lockstep. All randomness comes from a seeded
// mfa::Rng, so a fixed (options, seed) pair reproduces the exact delay
// sequence on any platform — retry behaviour is testable to the microsecond
// without sleeping.
//
// Usage:
//     common::Backoff backoff({.base_seconds = 1e-3}, /*seed=*/42);
//     while (auto delay = backoff.next_delay_seconds()) {
//       if (try_once()) return;
//       std::this_thread::sleep_for(std::chrono::duration<double>(*delay));
//     }
//     throw ...;  // retry budget exhausted
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.h"

namespace mfa::common {

struct BackoffOptions {
  /// Lower bound of every delay and the upper bound of the first one.
  double base_seconds = 1e-3;
  /// Hard cap applied to every delay.
  double max_seconds = 0.25;
  /// Upper-bound growth factor: delay_n is drawn from
  /// [base, min(max, delay_{n-1} * multiplier)].
  double multiplier = 3.0;
  /// Retry budget: next_delay_seconds() yields this many delays, then
  /// std::nullopt forever (until reset()).
  std::int64_t max_retries = 5;
};

class Backoff {
 public:
  Backoff(const BackoffOptions& options, std::uint64_t seed);

  /// The delay to sleep before the next retry, or std::nullopt when the
  /// retry budget is exhausted. Deterministic for a fixed (options, seed).
  std::optional<double> next_delay_seconds();

  /// Restores the schedule to its post-construction state (same seed, so the
  /// exact same delay sequence replays).
  void reset();

  /// Delays handed out since construction / the last reset().
  std::int64_t retries() const { return retries_; }

  const BackoffOptions& options() const { return options_; }

 private:
  BackoffOptions options_;
  std::uint64_t seed_;
  Rng rng_;
  double prev_ = 0.0;
  std::int64_t retries_ = 0;
};

}  // namespace mfa::common
