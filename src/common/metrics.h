// Process-wide metrics registry: counters, gauges, and histograms with fixed
// log2 buckets (VPR route-profiling / tcmalloc-stats in spirit).
//
// Design (see DESIGN.md, "Observability"):
//  * Named cells. obs::counter("router.ripups") returns a stable reference
//    that lives for the process; call sites cache it in a function-local
//    static so the name lookup happens once.
//  * Lock-free hot path. Counter increments go to a thread-local shard (one
//    plain-store atomic slot per counter, single writer), the same front-end
//    pattern as StoragePool's thread cache. Shards drain into the registry's
//    central cells at thread exit; readers aggregate central + live shards,
//    so value() is exact once the writing threads have synchronised with the
//    reader (e.g. after a parallel_for join). Histogram records and gauge
//    sets hit central atomics directly — they are orders of magnitude rarer
//    than counter bumps.
//  * Adopted sources. Subsystems with their own counters (StoragePool,
//    ThreadPool) register a snapshot source; their stats appear in
//    metrics_json() without double bookkeeping on their hot paths.
//  * Near-zero when off. MFA_OBS=off (or 0/false) short-circuits every
//    record call to one relaxed load + branch; compiling with
//    -DMFA_OBS_ENABLED=0 stubs the whole subsystem out (mirroring
//    MFA_POOL / MFA_CHECK). Registration still works when disabled — only
//    recording is suppressed — so cached cell references stay valid across
//    enable/disable toggles.
//
// Histogram buckets are fixed log2: bucket 0 holds value 0, bucket b >= 1
// holds values in [2^(b-1), 2^b - 1]. Values are int64 (negative clamps to
// 0); record durations in nanoseconds and sizes in raw units.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

/// Compile-time gate. Define MFA_OBS_ENABLED=0 to compile the observability
/// layer down to no-op stubs (macros expand to nothing, record calls inline
/// to empty bodies).
#ifndef MFA_OBS_ENABLED
#define MFA_OBS_ENABLED 1
#endif

namespace mfa::obs {

/// Number of log2 histogram buckets (covers the full non-negative int64
/// range: bucket 63 holds values >= 2^62).
inline constexpr int kHistogramBuckets = 64;

/// Runtime toggle, seeded from the MFA_OBS environment variable (default
/// on; "off"/"0"/"false" disable). Disabled mode records nothing and
/// allocates nothing; set_enabled is the test hook.
bool enabled();
void set_enabled(bool on);

#if MFA_OBS_ENABLED

namespace detail {
struct Cell;       // central counter/gauge storage, defined in metrics.cpp
struct HistCell;   // central histogram storage
}  // namespace detail

/// Monotonic event counter. add() is the only hot-path operation in the
/// subsystem: one enabled() check plus one single-writer relaxed store.
class Counter {
 public:
  void add(std::int64_t n = 1);
  /// Central value plus every live thread shard (exact after the writers
  /// have synchronised with this thread).
  std::int64_t value() const;

 private:
  friend class Registry;
  explicit Counter(detail::Cell* cell) : cell_(cell) {}
  detail::Cell* cell_;
};

/// Last-write-wins double value (e.g. trainer.loss).
class Gauge {
 public:
  void set(double v);
  double value() const;

 private:
  friend class Registry;
  explicit Gauge(detail::Cell* cell) : cell_(cell) {}
  detail::Cell* cell_;
};

/// Aggregated histogram snapshot (see Histogram::snapshot()).
struct HistogramStats {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  // 0 when count == 0
  std::int64_t max = 0;
  std::vector<std::int64_t> buckets;  // kHistogramBuckets entries
};

/// Fixed-log2-bucket histogram. record() clamps negatives to 0.
class Histogram {
 public:
  void record(std::int64_t v);
  HistogramStats snapshot() const;
  std::int64_t count() const;
  std::int64_t sum() const;

 private:
  friend class Registry;
  explicit Histogram(detail::HistCell* cell) : cell_(cell) {}
  detail::HistCell* cell_;
};

/// Bucket index for value v: 0 for v <= 0, else 1 + floor(log2(v)) capped at
/// kHistogramBuckets - 1. Exposed so schema tests can pin the layout.
int histogram_bucket(std::int64_t v);

/// Process-wide registry (leaky singleton, same rationale as StoragePool:
/// thread shards drain from thread-exit destructors).
class Registry {
 public:
  static Registry& instance();

  /// Looks up or creates a metric. References stay valid for the process
  /// lifetime; reset() zeroes values but never invalidates cells.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  /// Registers a pull source: fn() is invoked at snapshot time and its
  /// (suffix, value) pairs appear as "<prefix>.<suffix>". Re-registering a
  /// prefix replaces the source. Used to adopt StoragePool / ThreadPool
  /// counters without touching their hot paths.
  using Source = std::function<std::vector<std::pair<std::string, double>>()>;
  void register_source(const std::string& prefix, Source fn);

  /// Flat JSON object of every metric (sorted by name; histograms serialise
  /// as nested objects with count/sum/min/max and the non-empty buckets).
  /// A source that throws mid-snapshot (or the obs.export fault point) does
  /// not propagate: the snapshot closes cleanly with an "obs.export_errors"
  /// diagnostic entry — a partial snapshot must never crash the flow.
  std::string metrics_json();

  /// Zeroes every counter/gauge/histogram (live shards included). Test hook.
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();
  struct Impl;
  friend class Counter;
  Impl* impl_;
};

/// Convenience front-ends; cache the result in a function-local static at
/// hot call sites:  static obs::Counter c = obs::counter("router.ripups");
inline Counter counter(const std::string& name) {
  return Registry::instance().counter(name);
}
inline Gauge gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}
inline Histogram histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}

#else  // !MFA_OBS_ENABLED — inline no-op stubs with the same surface.

class Counter {
 public:
  void add(std::int64_t = 1) {}
  std::int64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(double) {}
  double value() const { return 0.0; }
};

struct HistogramStats {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::vector<std::int64_t> buckets;
};

class Histogram {
 public:
  void record(std::int64_t) {}
  HistogramStats snapshot() const { return {}; }
  std::int64_t count() const { return 0; }
  std::int64_t sum() const { return 0; }
};

inline int histogram_bucket(std::int64_t) { return 0; }

class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }
  Counter counter(const std::string&) { return {}; }
  Gauge gauge(const std::string&) { return {}; }
  Histogram histogram(const std::string&) { return {}; }
  using Source = std::function<std::vector<std::pair<std::string, double>>()>;
  void register_source(const std::string&, Source) {}
  std::string metrics_json() { return "{}"; }
  void reset() {}
};

inline Counter counter(const std::string&) { return {}; }
inline Gauge gauge(const std::string&) { return {}; }
inline Histogram histogram(const std::string&) { return {}; }

#endif  // MFA_OBS_ENABLED

}  // namespace mfa::obs
