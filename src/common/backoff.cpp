#include "common/backoff.h"

#include <algorithm>

#include "common/check.h"

namespace mfa::common {

Backoff::Backoff(const BackoffOptions& options, std::uint64_t seed)
    : options_(options), seed_(seed), rng_(seed) {
  MFA_CHECK(options_.base_seconds > 0.0)
      << " Backoff: base_seconds must be positive";
  MFA_CHECK(options_.max_seconds >= options_.base_seconds)
      << " Backoff: max_seconds must be >= base_seconds";
  MFA_CHECK(options_.multiplier >= 1.0)
      << " Backoff: multiplier must be >= 1";
  MFA_CHECK(options_.max_retries >= 0)
      << " Backoff: max_retries must be non-negative";
  prev_ = options_.base_seconds;
}

std::optional<double> Backoff::next_delay_seconds() {
  if (retries_ >= options_.max_retries) return std::nullopt;
  ++retries_;
  // Decorrelated jitter: uniform over [base, prev * multiplier], capped.
  const double hi =
      std::min(options_.max_seconds, prev_ * options_.multiplier);
  const double delay = rng_.uniform(options_.base_seconds,
                                    std::max(options_.base_seconds, hi));
  prev_ = delay;
  return delay;
}

void Backoff::reset() {
  rng_.reseed(seed_);
  prev_ = options_.base_seconds;
  retries_ = 0;
}

}  // namespace mfa::common
