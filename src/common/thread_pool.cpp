#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/metrics.h"
#include "common/sanitize.h"

namespace mfa::common {

namespace {

// Depth of nested parallel-region execution on this thread. Non-zero while a
// chunk kernel is running, so nested parallel_for calls go inline.
thread_local int g_region_depth = 0;

std::atomic<bool> g_pool_initialized{false};

int clamp_size(long value) {
  return static_cast<int>(std::clamp(value, 1L, 256L));
}

int default_size() {
  if (const char* env = std::getenv("MFA_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return clamp_size(parsed);
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return clamp_size(static_cast<long>(std::min(hw, 16u)));
}

struct RegionGuard {
  RegionGuard() { ++g_region_depth; }
  ~RegionGuard() { --g_region_depth; }
};

}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  g_pool_initialized.store(true, std::memory_order_release);
  return pool;
}

bool ThreadPool::initialized() {
  return g_pool_initialized.load(std::memory_order_acquire);
}

bool ThreadPool::in_parallel_region() { return g_region_depth > 0; }

ThreadPool::ThreadPool() {
  size_ = default_size();
  spawn_workers(size_ - 1);  // the submitting caller is participant #0
  // Adopt the pool's counters into the metrics registry: they show up in
  // metrics_json() snapshots without a second set of bumps on the dispatch
  // path. `this` is the function-local static from instance(), which
  // outlives every snapshot taken while the process is doing work.
  obs::Registry::instance().register_source("thread_pool", [this] {
    return std::vector<std::pair<std::string, double>>{
        {"size", static_cast<double>(size())},
        {"jobs", static_cast<double>(jobs_run())},
        {"inline_runs", static_cast<double>(inline_runs())},
        {"chunks", static_cast<double>(chunks_run())},
    };
  });
}

ThreadPool::~ThreadPool() { join_workers(); }

void ThreadPool::spawn_workers(int workers) {
  workers_.reserve(static_cast<size_t>(std::max(workers, 0)));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::join_workers() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
  }
}

void ThreadPool::resize_for_testing(int size) {
  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  join_workers();
  size_ = clamp_size(size);
  spawn_workers(size_ - 1);
}

void ThreadPool::work_on(Job& job) {
  const RegionGuard guard;
  for (;;) {
    const std::int64_t begin = job.next.fetch_add(job.chunk);
    if (begin >= job.n) break;
    const std::int64_t end = std::min(job.n, begin + job.chunk);
    // Chunk identity for the storage sanitizer's declared-write tracking:
    // `begin` is unique per chunk and independent of which thread claims it.
    const sanitize::ChunkScope chunk_scope(job.sanitize_region, begin);
    try {
      job.kernel(job.ctx, begin, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return stop_ || (job_ != nullptr && seq_ != seen); });
    if (stop_) return;
    seen = seq_;
    Job* job = job_;
    // Register under the lock so the submitter cannot observe "all chunks
    // claimed, nobody in flight" and retire the job while we are entering.
    job->in_flight.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    work_on(*job);
    lock.lock();
    if (job->in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1)
      done_.notify_all();
  }
}

void ThreadPool::run(std::int64_t n, std::int64_t chunk, Kernel kernel,
                     void* ctx) {
  chunk = std::max<std::int64_t>(1, chunk);
  // One region at a time. A second top-level caller racing in runs its loop
  // inline rather than blocking: it would otherwise just idle while the pool
  // is busy, and inline execution keeps results identical anyway.
  const std::uint64_t n_chunks =
      static_cast<std::uint64_t>((n + chunk - 1) / chunk);
  // Declared-write tracking (mfa::sanitize, Debug diagnostic): the whole
  // region is bracketed so chunk kernels can declare their write ranges; the
  // overlap sweep runs after the join. An inline region uses the exact same
  // chunk partition as a dispatched one, so detection does not depend on the
  // pool size. Token 0 (checker off / Release) makes every call a no-op.
  const std::uint64_t region = sanitize::begin_region();
  std::unique_lock<std::mutex> submit_lock(submit_mutex_, std::try_to_lock);
  if (!submit_lock.owns_lock() || workers_.empty()) {
    inline_runs_.fetch_add(1, std::memory_order_relaxed);
    chunks_run_.fetch_add(n_chunks, std::memory_order_relaxed);
    const RegionGuard guard;
    std::exception_ptr error;
    for (std::int64_t begin = 0; begin < n; begin += chunk) {
      const sanitize::ChunkScope chunk_scope(region, begin);
      try {
        kernel(ctx, begin, std::min(n, begin + chunk));
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) {
      sanitize::abandon_region(region);  // the kernel error wins
      std::rethrow_exception(error);
    }
    sanitize::end_region(region);  // may throw the race violation
    return;
  }

  Job job;
  job.kernel = kernel;
  job.ctx = ctx;
  job.n = n;
  job.chunk = chunk;
  job.sanitize_region = region;
  jobs_run_.fetch_add(1, std::memory_order_relaxed);
  chunks_run_.fetch_add(n_chunks, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++seq_;
  }
  wake_.notify_all();
  work_on(job);  // the caller is a participant, not just a waiter
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return job.next.load(std::memory_order_acquire) >= job.n &&
             job.in_flight.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;  // no new worker may join once we retire the job
  }
  if (job.error) {
    sanitize::abandon_region(region);
    std::rethrow_exception(job.error);
  }
  sanitize::end_region(region);
}

}  // namespace mfa::common
