#include "common/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <algorithm>
#include <mutex>
#include <sstream>

namespace mfa::obs {

#if !MFA_OBS_ENABLED

// Even the stubbed build must honour --trace by writing a valid (empty)
// Chrome trace file, so tooling downstream never sees a missing artifact.
bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string doc = chrome_trace_json();
  bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

#else  // MFA_OBS_ENABLED

namespace {

struct Slot {
  // All fields relaxed-atomic: slots are rewritten on ring wrap while other
  // threads may be reading, and plain fields would be a data race. `seq`
  // seals a write (release) and gates readers (acquire); 0 = never written.
  std::atomic<const char*> name{nullptr};
  std::atomic<std::int64_t> start_ns{0};
  std::atomic<std::int64_t> dur_ns{0};
  std::atomic<int> tid{0};
  std::atomic<std::uint64_t> seq{0};
};

constexpr std::size_t kDefaultCapacity = 65536;

struct Ring {
  std::mutex mu;                     // guards (re)allocation only
  std::atomic<Slot*> slots{nullptr}; // lazily allocated array
  std::atomic<std::size_t> capacity{kDefaultCapacity};
  std::atomic<std::uint64_t> next{0};  // total claims ever

  static Ring& instance() {
    static Ring* r = new Ring;  // leaked: recorded into from thread exits
    return *r;
  }

  Slot* ensure_slots() {
    Slot* s = slots.load(std::memory_order_acquire);
    if (s != nullptr) return s;
    std::lock_guard<std::mutex> lock(mu);
    s = slots.load(std::memory_order_acquire);
    if (s == nullptr) {
      s = new Slot[capacity.load(std::memory_order_relaxed)];
      slots.store(s, std::memory_order_release);
    }
    return s;
  }
};

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

std::int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

int trace_thread_id() {
  static std::atomic<int> next_tid{0};
  thread_local int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void trace_record(const char* name, std::int64_t start_ns,
                  std::int64_t dur_ns) {
  if (!enabled() || name == nullptr) return;
  Ring& ring = Ring::instance();
  Slot* slots = ring.ensure_slots();
  std::size_t cap = ring.capacity.load(std::memory_order_relaxed);
  std::uint64_t claim = ring.next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots[claim % cap];
  slot.seq.store(0, std::memory_order_relaxed);  // invalidate while writing
  slot.name.store(name, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.tid.store(trace_thread_id(), std::memory_order_relaxed);
  slot.seq.store(claim + 1, std::memory_order_release);
}

std::vector<TraceEvent> trace_snapshot() {
  Ring& ring = Ring::instance();
  Slot* slots = ring.slots.load(std::memory_order_acquire);
  if (slots == nullptr) return {};
  std::size_t cap = ring.capacity.load(std::memory_order_relaxed);
  std::vector<TraceEvent> out;
  out.reserve(std::min<std::uint64_t>(
      cap, ring.next.load(std::memory_order_relaxed)));
  for (std::size_t i = 0; i < cap; ++i) {
    if (slots[i].seq.load(std::memory_order_acquire) == 0) continue;
    TraceEvent e;
    e.name = slots[i].name.load(std::memory_order_relaxed);
    e.tid = slots[i].tid.load(std::memory_order_relaxed);
    e.start_ns = slots[i].start_ns.load(std::memory_order_relaxed);
    e.dur_ns = slots[i].dur_ns.load(std::memory_order_relaxed);
    if (e.name != nullptr) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

std::int64_t trace_total_recorded() {
  return static_cast<std::int64_t>(
      Ring::instance().next.load(std::memory_order_relaxed));
}

std::size_t trace_capacity() {
  return Ring::instance().capacity.load(std::memory_order_relaxed);
}

void trace_reset(std::size_t new_capacity) {
  Ring& ring = Ring::instance();
  std::lock_guard<std::mutex> lock(ring.mu);
  Slot* old = ring.slots.load(std::memory_order_acquire);
  if (new_capacity != 0 &&
      new_capacity != ring.capacity.load(std::memory_order_relaxed)) {
    ring.capacity.store(new_capacity, std::memory_order_relaxed);
    // The old array is leaked on resize: a racing trace_record may still
    // hold its pointer. Test-only path; bounded by the number of resizes.
    ring.slots.store(nullptr, std::memory_order_release);
  } else if (old != nullptr) {
    std::size_t cap = ring.capacity.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < cap; ++i) {
      old[i].seq.store(0, std::memory_order_relaxed);
    }
  }
  ring.next.store(0, std::memory_order_relaxed);
}

std::string chrome_trace_json() {
  std::vector<TraceEvent> events = trace_snapshot();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << e.name
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":";
    // Chrome expects microseconds; keep nanosecond precision as fractions.
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns) / 1000.0);
    out << buf << ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    out << buf << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool write_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string doc = chrome_trace_json();
  bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  ok = (std::fclose(f) == 0) && ok;
  return ok;
}

#endif  // MFA_OBS_ENABLED

}  // namespace mfa::obs
