// RAII wall-time trace spans over a fixed-capacity ring buffer, exported as
// Chrome trace_event JSON (load the file in chrome://tracing or Perfetto).
//
//     void GlobalPlacer::spread() {
//       MFA_TRACE_SCOPE("placer.spread");
//       ...
//     }
//
// Each MFA_TRACE_SCOPE also feeds an obs::Histogram of the same name (cached
// in a function-local static, so the name lookup happens once per call
// site), so span timings appear both on the timeline and in the flat
// metrics_json() snapshot.
//
// The ring holds the most recent `trace_capacity()` spans; older spans are
// overwritten and counted as dropped. Slots are written lock-free (one
// fetch_add claim plus relaxed field stores sealed by a release stamp), so
// concurrent workers never block each other. Exporting while spans are
// still being recorded is safe but may skip slots mid-overwrite; export
// from a quiesced process (end of flow / end of bench) for a complete
// timeline. Timestamps are nanoseconds on the steady clock, zeroed at the
// first use in the process.
//
// Gating matches metrics.h: runtime MFA_OBS env (spans become no-ops), and
// the MFA_OBS_ENABLED=0 compile gate makes MFA_TRACE_SCOPE expand to
// nothing. The ring is allocated lazily on the first recorded span, so a
// disabled process never pays the buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace mfa::obs {

/// One completed span, as read back from the ring.
struct TraceEvent {
  const char* name = nullptr;  // static string literal from the call site
  int tid = 0;                 // small per-thread ordinal, 0 = first thread
  std::int64_t start_ns = 0;   // steady-clock, relative to process trace epoch
  std::int64_t dur_ns = 0;
};

#if MFA_OBS_ENABLED

/// Nanoseconds since the process's trace epoch (first call wins).
std::int64_t trace_now_ns();

/// Small dense ordinal for the calling thread (stable for its lifetime).
int trace_thread_id();

/// Records one completed span. `name` must outlive the process (pass a
/// string literal). No-op when disabled.
void trace_record(const char* name, std::int64_t start_ns, std::int64_t dur_ns);

/// Copies out the valid spans, oldest first (by start time).
std::vector<TraceEvent> trace_snapshot();

/// Total spans ever recorded (including ones the ring has since dropped).
std::int64_t trace_total_recorded();

/// Ring capacity in spans (default 65536).
std::size_t trace_capacity();

/// Clears the ring; optionally resizes it (0 keeps the current capacity).
/// Test hook — callers must be quiesced.
void trace_reset(std::size_t new_capacity = 0);

/// Chrome trace_event JSON: {"traceEvents":[...]} with "X" (complete)
/// events, ts/dur in microseconds. Always well-formed, even when empty.
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// RAII span. Prefer the MFA_TRACE_SCOPE macro, which also wires the
/// histogram; construct directly only when the name is computed.
class TraceScope {
 public:
  explicit TraceScope(const char* name, Histogram* hist = nullptr)
      : name_(enabled() ? name : nullptr), hist_(hist) {
    if (name_ != nullptr) start_ns_ = trace_now_ns();
  }
  ~TraceScope() {
    if (name_ == nullptr) return;
    std::int64_t dur = trace_now_ns() - start_ns_;
    trace_record(name_, start_ns_, dur);
    if (hist_ != nullptr) hist_->record(dur);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_;
  Histogram* hist_;
  std::int64_t start_ns_ = 0;
};

#define MFA_OBS_CONCAT2(a, b) a##b
#define MFA_OBS_CONCAT(a, b) MFA_OBS_CONCAT2(a, b)
#define MFA_TRACE_SCOPE_IMPL(name_lit, ctr)                               \
  static ::mfa::obs::Histogram MFA_OBS_CONCAT(mfa_trace_hist_, ctr) =     \
      ::mfa::obs::histogram(name_lit);                                    \
  ::mfa::obs::TraceScope MFA_OBS_CONCAT(mfa_trace_scope_, ctr)(           \
      name_lit, &MFA_OBS_CONCAT(mfa_trace_hist_, ctr))
/// Times the enclosing scope under `name_lit` (must be a string literal).
#define MFA_TRACE_SCOPE(name_lit) MFA_TRACE_SCOPE_IMPL(name_lit, __COUNTER__)

#else  // !MFA_OBS_ENABLED

inline std::int64_t trace_now_ns() { return 0; }
inline int trace_thread_id() { return 0; }
inline void trace_record(const char*, std::int64_t, std::int64_t) {}
inline std::vector<TraceEvent> trace_snapshot() { return {}; }
inline std::int64_t trace_total_recorded() { return 0; }
inline std::size_t trace_capacity() { return 0; }
inline void trace_reset(std::size_t = 0) {}
inline std::string chrome_trace_json() { return "{\"traceEvents\":[]}"; }
bool write_chrome_trace(const std::string& path);

class TraceScope {
 public:
  explicit TraceScope(const char*, Histogram* = nullptr) {}
};

#define MFA_TRACE_SCOPE(name_lit) ((void)0)

#endif  // MFA_OBS_ENABLED

}  // namespace mfa::obs
