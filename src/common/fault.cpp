#include "common/fault.h"

#include <map>
#include <mutex>

namespace mfa::common {
namespace {

enum class Trigger { Once, Nth, Probability, Always };

struct Point {
  Trigger trigger = Trigger::Once;
  std::int64_t nth = 1;       // for Nth (1-based)
  double probability = 0.0;   // for Probability
  std::uint64_t seed = 0;     // for Probability
  std::int64_t hits = 0;
  std::int64_t fires = 0;
  bool spent = false;         // Once: already fired
  bool armed = true;          // false after disarm(); stats are kept
};

/// SplitMix64 finaliser: a high-quality 64 -> 64 bit mix. Hashing
/// (seed, hit index) instead of drawing from a shared stream keeps every
/// point's fire pattern independent of how often other points are hit.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

struct FaultInjector::Impl {
  mutable std::mutex mu;
  // std::map: stats() iterates in a stable order for reproducible logs.
  std::map<std::string, Point> points;
};

FaultInjector::Impl& FaultInjector::impl() const {
  static Impl instance;
  return instance;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm_once(const std::string& point) {
  auto& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  im.points[point] = Point{};  // defaults: Trigger::Once, fresh counters
}

void FaultInjector::arm_nth(const std::string& point, std::int64_t nth) {
  auto& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  Point p;
  p.trigger = Trigger::Nth;
  p.nth = nth;
  im.points[point] = p;
}

void FaultInjector::arm_probability(const std::string& point, double p,
                                    std::uint64_t seed) {
  auto& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  Point pt;
  pt.trigger = Trigger::Probability;
  pt.probability = p;
  pt.seed = seed;
  im.points[point] = pt;
}

void FaultInjector::arm_always(const std::string& point) {
  auto& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  Point p;
  p.trigger = Trigger::Always;
  im.points[point] = p;
}

void FaultInjector::disarm(const std::string& point) {
  auto& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.points.find(point);
  if (it != im.points.end()) it->second.armed = false;
}

void FaultInjector::reset() {
  auto& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  im.points.clear();
}

bool FaultInjector::should_fire(const char* point) {
  auto& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.points.find(point);
  if (it == im.points.end() || !it->second.armed) return false;
  Point& p = it->second;
  ++p.hits;
  bool fire = false;
  switch (p.trigger) {
    case Trigger::Once:
      fire = !p.spent;
      p.spent = true;
      break;
    case Trigger::Nth:
      fire = (p.hits == p.nth);
      break;
    case Trigger::Probability: {
      // Map mix64(seed, hit index) to [0, 1) with 53-bit precision.
      const double u =
          static_cast<double>(mix64(p.seed ^ static_cast<std::uint64_t>(
                                                 p.hits)) >>
                              11) *
          0x1.0p-53;
      fire = u < p.probability;
      break;
    }
    case Trigger::Always:
      fire = true;
      break;
  }
  if (fire) ++p.fires;
  return fire;
}

std::int64_t FaultInjector::hit_count(const std::string& point) const {
  auto& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.points.find(point);
  return it == im.points.end() ? 0 : it->second.hits;
}

std::int64_t FaultInjector::fire_count(const std::string& point) const {
  auto& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.points.find(point);
  return it == im.points.end() ? 0 : it->second.fires;
}

std::vector<FaultPointStats> FaultInjector::stats() const {
  auto& im = impl();
  const std::lock_guard<std::mutex> lock(im.mu);
  std::vector<FaultPointStats> out;
  out.reserve(im.points.size());
  for (const auto& [name, p] : im.points)
    out.push_back({name, p.hits, p.fires});
  return out;
}

}  // namespace mfa::common
