#include "common/rng.h"

#include <cmath>

namespace mfa {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork(std::uint64_t tag) {
  return Rng(next_u64() ^ (tag * 0x9e3779b97f4a7c15ull));
}

std::uint64_t Rng::hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace mfa
