// Minimal leveled logger used across the library.
//
// Kept deliberately simple: a global level, printf-style free functions, and
// an optional timestamp prefix. Benchmarks set the level to Warn so tables
// are not interleaved with progress chatter.
#pragma once

#include <cstdarg>
#include <string>

namespace mfa::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that is emitted.
void set_level(Level level);
Level level();

void debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// printf-style formatting into a std::string (used by error messages).
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mfa::log
