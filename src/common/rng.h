// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components in this repository (netlist generation, placer
// perturbations, weight initialisation, dataset shuffling) draw from Rng so a
// fixed seed reproduces a run bit-for-bit on any platform.
#pragma once

#include <cstdint>
#include <string_view>

namespace mfa {

/// xoshiro256** PRNG seeded through SplitMix64.
///
/// Chosen over std::mt19937 because its stream is identical across standard
/// library implementations and it is cheap to fork into independent
/// sub-streams (see fork()).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialises the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double p);

  /// Derives an independent stream keyed by `tag`; the parent state advances
  /// by one draw. Used to give each design / module its own stream so adding
  /// draws in one module does not perturb another.
  Rng fork(std::uint64_t tag);

  /// Stable 64-bit hash of a string (FNV-1a), for seeding from design names.
  static std::uint64_t hash(std::string_view s);

 private:
  std::uint64_t s_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mfa
