#include "common/metrics.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/fault.h"

namespace mfa::obs {
namespace {

bool env_obs_enabled() {
  const char* v = std::getenv("MFA_OBS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "false") == 0);
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_obs_enabled()};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

#if MFA_OBS_ENABLED

namespace detail {

// Central storage for one counter or gauge. Counters keep the drained /
// directly-added part in `central`; live thread shards hold the rest.
// Gauges reuse `central` as a double bit pattern.
struct Cell {
  std::atomic<std::int64_t> central{0};
  // Dense shard slot index for counters (assigned at creation, in
  // registration order). Gauges don't use shards.
  int slot = -1;
};

struct HistCell {
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> sum{0};
  std::atomic<std::int64_t> min{0};  // valid only when count > 0
  std::atomic<std::int64_t> max{0};
  std::atomic<std::int64_t> buckets[kHistogramBuckets] = {};

  void record(std::int64_t v) {
    if (v < 0) v = 0;
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
    buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    // min/max via CAS loops; contention here is negligible (histogram
    // records are per-span / per-round, not per-element).
    std::int64_t cur = min.load(std::memory_order_relaxed);
    while ((count.load(std::memory_order_relaxed) == 1 || v < cur) &&
           !min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max.load(std::memory_order_relaxed);
    while (v > cur &&
           !max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  void reset() {
    count.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
    min.store(0, std::memory_order_relaxed);
    max.store(0, std::memory_order_relaxed);
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  }
};

}  // namespace detail

int histogram_bucket(std::int64_t v) {
  if (v <= 0) return 0;
  int b = 64 - __builtin_clzll(static_cast<unsigned long long>(v));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

namespace {

// Fixed shard width: each thread that bumps a counter owns one Shard with a
// slot per counter id. 256 slots * 8 bytes = 2 KiB per thread; counters past
// the cap fall back to a central fetch_add (correct, just not sharded).
constexpr int kMaxShardedCounters = 256;

struct Shard {
  // Single-writer (the owning thread); readers aggregate with relaxed loads.
  std::atomic<std::int64_t> slots[kMaxShardedCounters] = {};
};

}  // namespace

struct Registry::Impl {
  std::mutex mu;  // guards the name maps, shard list, and sources
  // std::map keeps metrics_json() sorted without a snapshot-time sort and
  // never moves nodes, so Cell*/HistCell* handles stay valid forever.
  std::map<std::string, detail::Cell> counters;
  std::map<std::string, detail::Cell> gauges;
  std::map<std::string, detail::HistCell> histograms;
  std::vector<detail::Cell*> counters_by_slot;  // slot -> cell
  std::vector<Shard*> shards;                   // every live thread shard
  std::map<std::string, Source> sources;
  std::atomic<std::int64_t> export_errors{0};

  // Thread-local shard front-end. The holder's destructor drains the shard
  // into the central cells and unregisters it; the registry (and therefore
  // this Impl) is leaked, so it outlives every thread-exit destructor.
  struct ShardHolder {
    Registry::Impl* impl = nullptr;
    Shard shard;
    ~ShardHolder() {
      if (impl == nullptr) return;
      std::lock_guard<std::mutex> lock(impl->mu);
      for (std::size_t i = 0;
           i < impl->counters_by_slot.size() && i < kMaxShardedCounters; ++i) {
        std::int64_t v = shard.slots[i].load(std::memory_order_relaxed);
        if (v != 0) {
          impl->counters_by_slot[i]->central.fetch_add(
              v, std::memory_order_relaxed);
        }
      }
      auto& list = impl->shards;
      for (auto it = list.begin(); it != list.end(); ++it) {
        if (*it == &shard) {
          list.erase(it);
          break;
        }
      }
    }
  };

  Shard& local_shard() {
    thread_local ShardHolder holder;
    if (holder.impl == nullptr) {
      holder.impl = this;
      std::lock_guard<std::mutex> lock(mu);
      shards.push_back(&holder.shard);
    }
    return holder.shard;
  }
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::instance() {
  // Leaked (never destroyed): thread-exit shard destructors may run after
  // static destruction would have torn a non-leaked registry down. Same
  // pattern as StoragePool.
  static Registry* r = new Registry;
  return *r;
}

Counter Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto [it, inserted] = impl_->counters.try_emplace(name);
  if (inserted) {
    if (impl_->counters_by_slot.size() < kMaxShardedCounters) {
      it->second.slot = static_cast<int>(impl_->counters_by_slot.size());
      impl_->counters_by_slot.push_back(&it->second);
    }
  }
  return Counter(&it->second);
}

Gauge Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto [it, inserted] = impl_->gauges.try_emplace(name);
  (void)inserted;
  return Gauge(&it->second);
}

Histogram Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto [it, inserted] = impl_->histograms.try_emplace(name);
  (void)inserted;
  return Histogram(&it->second);
}

void Registry::register_source(const std::string& prefix, Source fn) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sources[prefix] = std::move(fn);
}

void Counter::add(std::int64_t n) {
  if (!enabled() || n == 0) return;
  auto& impl = *Registry::instance().impl_;
  if (cell_->slot >= 0) {
    // Single-writer relaxed store: only this thread writes this slot.
    auto& slot = impl.local_shard().slots[cell_->slot];
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  } else {
    cell_->central.fetch_add(n, std::memory_order_relaxed);
  }
}

std::int64_t Counter::value() const {
  auto& impl = *Registry::instance().impl_;
  std::int64_t total = cell_->central.load(std::memory_order_relaxed);
  if (cell_->slot >= 0) {
    std::lock_guard<std::mutex> lock(impl.mu);
    for (Shard* s : impl.shards) {
      total += s->slots[cell_->slot].load(std::memory_order_relaxed);
    }
  }
  return total;
}

void Gauge::set(double v) {
  if (!enabled()) return;
  std::int64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  cell_->central.store(bits, std::memory_order_relaxed);
}

double Gauge::value() const {
  std::int64_t bits = cell_->central.load(std::memory_order_relaxed);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void Histogram::record(std::int64_t v) {
  if (!enabled()) return;
  cell_->record(v);
}

HistogramStats Histogram::snapshot() const {
  HistogramStats s;
  s.count = cell_->count.load(std::memory_order_relaxed);
  s.sum = cell_->sum.load(std::memory_order_relaxed);
  s.min = s.count > 0 ? cell_->min.load(std::memory_order_relaxed) : 0;
  s.max = cell_->max.load(std::memory_order_relaxed);
  s.buckets.resize(kHistogramBuckets);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = cell_->buckets[i].load(std::memory_order_relaxed);
  }
  return s;
}

std::int64_t Histogram::count() const {
  return cell_->count.load(std::memory_order_relaxed);
}

std::int64_t Histogram::sum() const {
  return cell_->sum.load(std::memory_order_relaxed);
}

namespace {

void append_json_number(std::ostringstream& out, double v) {
  // Doubles that are exact integers print without a fraction so counter
  // values stay greppable; everything else gets full precision.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v > -9.0e15 && v < 9.0e15) {
    out << static_cast<std::int64_t>(v);
  } else {
    out.precision(17);
    out << v;
  }
}

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string Registry::metrics_json() {
  // Snapshot under the lock into plain structures, then serialise outside
  // it: a source callback (or the fault point) must not run with mu held.
  std::map<std::string, double> scalars;
  std::map<std::string, HistogramStats> hists;
  std::vector<std::pair<std::string, Source>> sources;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (auto& [name, cell] : impl_->counters) {
      std::int64_t total = cell.central.load(std::memory_order_relaxed);
      if (cell.slot >= 0) {
        for (Shard* s : impl_->shards) {
          total += s->slots[cell.slot].load(std::memory_order_relaxed);
        }
      }
      scalars[name] = static_cast<double>(total);
    }
    for (auto& [name, cell] : impl_->gauges) {
      std::int64_t bits = cell.central.load(std::memory_order_relaxed);
      double v;
      std::memcpy(&v, &bits, sizeof(v));
      scalars[name] = v;
    }
    for (auto& [name, cell] : impl_->histograms) {
      HistogramStats s;
      s.count = cell.count.load(std::memory_order_relaxed);
      s.sum = cell.sum.load(std::memory_order_relaxed);
      s.min = s.count > 0 ? cell.min.load(std::memory_order_relaxed) : 0;
      s.max = cell.max.load(std::memory_order_relaxed);
      s.buckets.resize(kHistogramBuckets);
      for (int i = 0; i < kHistogramBuckets; ++i) {
        s.buckets[i] = cell.buckets[i].load(std::memory_order_relaxed);
      }
      hists[name] = std::move(s);
    }
    for (auto& [prefix, fn] : impl_->sources) sources.emplace_back(prefix, fn);
  }

  // Pull the adopted sources. Each one runs inside its own try so a flaky
  // source degrades to a partial (still well-formed) snapshot instead of
  // crashing the flow; the obs.export fault point injects exactly that.
  std::int64_t errors = 0;
  for (auto& [prefix, fn] : sources) {
    try {
      if (MFA_FAULT_POINT("obs.export")) {
        throw std::runtime_error("obs: fault-injected export failure");
      }
      for (auto& [suffix, value] : fn()) {
        scalars[prefix + "." + suffix] = value;
      }
    } catch (const std::exception&) {
      ++errors;
    }
  }
  if (errors > 0) {
    impl_->export_errors.fetch_add(errors, std::memory_order_relaxed);
  }
  std::int64_t total_errors =
      impl_->export_errors.load(std::memory_order_relaxed);
  if (total_errors > 0) {
    scalars["obs.export_errors"] = static_cast<double>(total_errors);
  }

  std::ostringstream out;
  out << "{";
  bool first = true;
  // Scalars and histograms interleave in name order; both maps are sorted.
  auto sit = scalars.begin();
  auto hit = hists.begin();
  while (sit != scalars.end() || hit != hists.end()) {
    bool take_scalar =
        hit == hists.end() ||
        (sit != scalars.end() && sit->first < hit->first);
    if (!first) out << ",";
    first = false;
    if (take_scalar) {
      append_json_string(out, sit->first);
      out << ":";
      append_json_number(out, sit->second);
      ++sit;
    } else {
      append_json_string(out, hit->first);
      const HistogramStats& s = hit->second;
      out << ":{\"count\":" << s.count << ",\"sum\":" << s.sum
          << ",\"min\":" << s.min << ",\"max\":" << s.max << ",\"buckets\":{";
      bool bfirst = true;
      for (int i = 0; i < kHistogramBuckets; ++i) {
        if (s.buckets[i] == 0) continue;
        if (!bfirst) out << ",";
        bfirst = false;
        out << "\"" << i << "\":" << s.buckets[i];
      }
      out << "}}";
      ++hit;
    }
  }
  out << "}";
  return out.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, cell] : impl_->counters) {
    cell.central.store(0, std::memory_order_relaxed);
    if (cell.slot >= 0) {
      // Zeroing another thread's slot races with its next add only in the
      // benign lost-update sense; reset() is a test hook called while the
      // workers are quiescent (documented in the header).
      for (Shard* s : impl_->shards) {
        s->slots[cell.slot].store(0, std::memory_order_relaxed);
      }
    }
  }
  for (auto& [name, cell] : impl_->gauges) {
    cell.central.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : impl_->histograms) cell.reset();
  impl_->export_errors.store(0, std::memory_order_relaxed);
}

#endif  // MFA_OBS_ENABLED

}  // namespace mfa::obs
