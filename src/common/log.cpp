#include "common/log.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

namespace mfa::log {
namespace {

std::atomic<Level> g_level{Level::Info};

// Writes the whole buffer to stderr with one write(2) per attempt, retrying
// EINTR and short writes. A single write of a complete line is what keeps
// concurrent loggers from shearing each other's output: POSIX appends each
// write atomically for pipes/regular files of sane line sizes, whereas the
// previous three-stdio-call implementation interleaved fragments from
// parallel_for workers mid-line.
void write_all(const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(STDERR_FILENO, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // logging must never throw; drop on a dead fd
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

void vemit(Level lvl, const char* tag, const char* fmt, va_list args) {
  if (static_cast<int>(lvl) < static_cast<int>(g_level.load())) return;

  // Format "[tag] message\n" into one contiguous buffer, then emit it with
  // a single atomic append. Stack buffer covers virtually every message;
  // longer ones take one heap allocation.
  char stack_buf[512];
  va_list copy;
  va_copy(copy, args);
  int prefix = std::snprintf(stack_buf, sizeof(stack_buf), "[%s] ", tag);
  if (prefix < 0) {
    va_end(copy);
    return;
  }
  int body = std::vsnprintf(stack_buf + prefix,
                            sizeof(stack_buf) - static_cast<size_t>(prefix),
                            fmt, args);
  if (body < 0) {
    va_end(copy);
    return;
  }
  size_t total = static_cast<size_t>(prefix) + static_cast<size_t>(body);
  if (total + 1 < sizeof(stack_buf)) {  // +1 for the trailing newline
    stack_buf[total] = '\n';
    write_all(stack_buf, total + 1);
  } else {
    std::vector<char> buf(total + 2);
    std::snprintf(buf.data(), buf.size(), "[%s] ", tag);
    std::vsnprintf(buf.data() + prefix, buf.size() - static_cast<size_t>(prefix),
                   fmt, copy);
    buf[total] = '\n';
    write_all(buf.data(), total + 1);
  }
  va_end(copy);
}

}  // namespace

void set_level(Level level) { g_level.store(level); }
Level level() { return g_level.load(); }

#define MFA_LOG_IMPL(fn, lvl, tag)            \
  void fn(const char* fmt, ...) {             \
    va_list args;                             \
    va_start(args, fmt);                      \
    vemit(lvl, tag, fmt, args);               \
    va_end(args);                             \
  }

MFA_LOG_IMPL(debug, Level::Debug, "debug")
MFA_LOG_IMPL(info, Level::Info, "info")
MFA_LOG_IMPL(warn, Level::Warn, "warn")
MFA_LOG_IMPL(error, Level::Error, "error")
#undef MFA_LOG_IMPL

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    out.assign(buf.data(), static_cast<size_t>(n));
  }
  va_end(args);
  return out;
}

}  // namespace mfa::log
