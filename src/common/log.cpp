#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <vector>

namespace mfa::log {
namespace {

std::atomic<Level> g_level{Level::Info};

void vemit(Level lvl, const char* tag, const char* fmt, va_list args) {
  if (static_cast<int>(lvl) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%s] ", tag);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

void set_level(Level level) { g_level.store(level); }
Level level() { return g_level.load(); }

#define MFA_LOG_IMPL(fn, lvl, tag)            \
  void fn(const char* fmt, ...) {             \
    va_list args;                             \
    va_start(args, fmt);                      \
    vemit(lvl, tag, fmt, args);               \
    va_end(args);                             \
  }

MFA_LOG_IMPL(debug, Level::Debug, "debug")
MFA_LOG_IMPL(info, Level::Info, "info")
MFA_LOG_IMPL(warn, Level::Warn, "warn")
MFA_LOG_IMPL(error, Level::Error, "error")
#undef MFA_LOG_IMPL

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    out.assign(buf.data(), static_cast<size_t>(n));
  }
  va_end(args);
  return out;
}

}  // namespace mfa::log
