// Training loop for congestion models: Adam at lr 1e-3 (paper §V-A),
// per-tile cross-entropy over the congestion-level classes (§III-D).
//
// Fault tolerance (see DESIGN.md, "Fault model"): with a checkpoint_dir set,
// fit() writes atomic CRC-checked snapshots every checkpoint_interval epochs
// and resumes from the latest valid one after a crash; a diverging epoch
// (non-finite or spiking loss, or a CheckError out of the numeric stack)
// rolls the parameters back to the last good snapshot and halves the
// learning rate, up to max_rollbacks times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "models/congestion_model.h"
#include "nn/checkpoint.h"
#include "train/dataset.h"
#include "train/metrics.h"

namespace mfa::train {

struct TrainOptions {
  std::int64_t epochs = 4;
  std::int64_t batch_size = 4;
  float learning_rate = 1e-3f;  // paper: Adam, lr 0.001
  std::uint64_t seed = 1;
  bool verbose = false;
  // ---- crash-safe training ----
  /// Directory for epoch snapshots (created if missing); empty disables
  /// checkpointing and resume.
  std::string checkpoint_dir;
  /// Epochs between snapshots.
  std::int64_t checkpoint_interval = 1;
  /// Scan checkpoint_dir for the latest valid snapshot before training and
  /// continue from the epoch after it.
  bool resume = true;
  // ---- divergence rollback ----
  /// An epoch whose mean loss exceeds divergence_factor x the last good
  /// epoch's loss (or is non-finite) is rolled back.
  double divergence_factor = 3.0;
  /// Rollback retries before giving up (each halves the learning rate).
  std::int64_t max_rollbacks = 3;
  /// With a checkpoint_dir set, also spill the last-good snapshot to
  /// last-good.bin after every healthy epoch (atomic v2 writer), so
  /// divergence rollback state survives a crash: resume prefers the spill
  /// over an older periodic checkpoint.
  bool spill_last_good = true;
  // ---- wall-clock budget ----
  /// Budget for the whole fit (0 = unlimited), checked at epoch boundaries
  /// like the placer/router budgets: the epoch in flight when the clock runs
  /// out is the last one, the completed epochs' parameters are kept, and
  /// FitReport::budget_exhausted reports the cut.
  double time_budget_seconds = 0.0;
};

struct EvalResult {
  double acc = 0.0;
  double r2 = 0.0;
  double nrms = 0.0;
};

/// What fit() actually did — epochs run, recovery actions taken.
struct FitReport {
  double final_loss = 0.0;  // mean loss of the last completed epoch
  std::int64_t epochs_run = 0;
  std::int64_t start_epoch = 0;  // > 0 when resumed from a checkpoint
  std::int64_t rollbacks = 0;
  std::int64_t checkpoints_written = 0;
  /// True when max_rollbacks was exhausted; parameters are left at the last
  /// good snapshot rather than the diverged state.
  bool diverged = false;
  /// True when time_budget_seconds stopped training before options.epochs.
  bool budget_exhausted = false;
  float final_learning_rate = 0.0f;
  /// last-good.bin writes performed (one per healthy epoch when enabled).
  std::int64_t last_good_spills = 0;

  /// JSON view of this report plus the process metrics registry snapshot:
  /// {"report":{...},"metrics":{...}}. The metrics half carries the obs
  /// counters/histograms the fit recorded (trainer.epoch timings, rollback
  /// counts, pool/thread-pool stats); with MFA_OBS=off it is just "{}".
  std::string metrics_json() const;
};

class Trainer {
 public:
  /// Trains the model in place; returns the mean loss of the final epoch.
  /// Thin wrapper over fit_resumable for callers that only want the loss.
  static double fit(models::CongestionModel& model,
                    const std::vector<Sample>& train_set,
                    const TrainOptions& options);

  /// Full fault-tolerant training loop: checkpoint / resume / rollback per
  /// TrainOptions. The per-epoch shuffle is derived from (seed, epoch), so a
  /// resumed run replays the same batch order the uninterrupted run saw.
  static FitReport fit_resumable(models::CongestionModel& model,
                                 const std::vector<Sample>& train_set,
                                 const TrainOptions& options);

  /// Computes ACC / R^2 / NRMS of the model over a sample set.
  static EvalResult evaluate(models::CongestionModel& model,
                             const std::vector<Sample>& eval_set);
};

/// Scans `dir` for checkpoint files (checkpoint-NNNNN.bin) and loads the
/// newest one that validates into `module` (corrupt or truncated candidates
/// are skipped with a warning; *.tmp leftovers from interrupted saves are
/// ignored). Returns the loaded path, or "" when nothing valid was found.
std::string resume_from(nn::Module& module, const std::string& dir,
                        nn::CheckpointMeta* meta = nullptr);

/// Path of the snapshot for `epoch` inside `dir` (checkpoint-NNNNN.bin).
std::string checkpoint_path(const std::string& dir, std::int64_t epoch);

/// Path of the divergence-rollback last-good spill inside `dir`
/// (last-good.bin; see TrainOptions::spill_last_good).
std::string last_good_path(const std::string& dir);

/// Stacks samples [i0, i1) into batched feature [B,6,H,W] and label [B,H,W]
/// tensors (exposed for tests).
void stack_batch(const std::vector<Sample>& samples,
                 const std::vector<size_t>& order, size_t i0, size_t i1,
                 Tensor& features, Tensor& labels);

}  // namespace mfa::train
