// Training loop for congestion models: Adam at lr 1e-3 (paper §V-A),
// per-tile cross-entropy over the congestion-level classes (§III-D).
#pragma once

#include <cstdint>
#include <vector>

#include "models/congestion_model.h"
#include "train/dataset.h"
#include "train/metrics.h"

namespace mfa::train {

struct TrainOptions {
  std::int64_t epochs = 4;
  std::int64_t batch_size = 4;
  float learning_rate = 1e-3f;  // paper: Adam, lr 0.001
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct EvalResult {
  double acc = 0.0;
  double r2 = 0.0;
  double nrms = 0.0;
};

class Trainer {
 public:
  /// Trains the model in place; returns the mean loss of the final epoch.
  static double fit(models::CongestionModel& model,
                    const std::vector<Sample>& train_set,
                    const TrainOptions& options);

  /// Computes ACC / R^2 / NRMS of the model over a sample set.
  static EvalResult evaluate(models::CongestionModel& model,
                             const std::vector<Sample>& eval_set);
};

/// Stacks samples [i0, i1) into batched feature [B,6,H,W] and label [B,H,W]
/// tensors (exposed for tests).
void stack_batch(const std::vector<Sample>& samples,
                 const std::vector<size_t>& order, size_t i0, size_t i1,
                 Tensor& features, Tensor& labels);

}  // namespace mfa::train
