#include "train/dataset.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "features/features.h"
#include "place/legalizer.h"
#include "place/placer.h"
#include "route/router.h"

namespace mfa::train {

Tensor rotate90(const Tensor& t, std::int64_t k) {
  k = ((k % 4) + 4) % 4;
  if (k == 0) return t.clone();
  const bool has_channels = t.dim() == 3;
  const std::int64_t C = has_channels ? t.size(0) : 1;
  const std::int64_t H = t.size(has_channels ? 1 : 0);
  const std::int64_t W = t.size(has_channels ? 2 : 1);
  if (H != W && k % 2 == 1)
    throw std::invalid_argument("rotate90: odd rotations need square maps");
  const std::int64_t OH = (k % 2 == 0) ? H : W;
  const std::int64_t OW = (k % 2 == 0) ? W : H;
  Tensor out = has_channels ? Tensor::zeros({C, OH, OW})
                            : Tensor::zeros({OH, OW});
  const float* src = t.data();
  float* dst = out.data();
  for (std::int64_t c = 0; c < C; ++c)
    for (std::int64_t y = 0; y < H; ++y)
      for (std::int64_t x = 0; x < W; ++x) {
        std::int64_t ny = 0, nx = 0;
        switch (k) {
          case 1:  // 90 CCW: (y, x) -> (W-1-x, y)
            ny = W - 1 - x;
            nx = y;
            break;
          case 2:  // 180
            ny = H - 1 - y;
            nx = W - 1 - x;
            break;
          default:  // 270 CCW
            ny = x;
            nx = H - 1 - y;
            break;
        }
        dst[(c * OH + ny) * OW + nx] = src[(c * H + y) * W + x];
      }
  return out;
}

std::vector<Sample> DatasetBuilder::build_for_design(
    const netlist::DesignSpec& spec, const fpga::DeviceGrid& device,
    const DatasetOptions& options) {
  Rng rng(options.seed ^ Rng::hash(spec.name));
  const netlist::Design design =
      netlist::DesignGenerator::generate(spec, device);

  std::vector<Sample> samples;
  for (std::int64_t run = 0; run < options.placements_per_design; ++run) {
    // Parameter sweep (§V-A): vary seed, density weighting, step and noise.
    // A draw that produces an unroutable placement (label map saturated at
    // the top level almost everywhere) is rejected and redrawn — the
    // contest placements all come from flows that at least route.
    Tensor feats, label;
    for (std::int64_t attempt = 0; attempt < 6; ++attempt) {
      place::PlacementProblem problem(design, device);
      place::PlacerOptions popt;
      popt.seed = rng.next_u64();
      popt.density_weight = rng.uniform(0.3, 0.8);
      popt.step = rng.uniform(0.5, 1.1);
      popt.noise = rng.uniform(0.01, 0.06);
      popt.spread_interval = rng.uniform_int(2, 6);
      popt.max_iterations = options.placer_iterations;
      place::GlobalPlacer placer(problem, popt);
      placer.init_random();
      placer.iterate(options.placer_iterations);
      place::Placement placement = placer.placement();
      place::Legalizer::legalize_macros(problem, placement);

      std::vector<double> cell_x, cell_y;
      placement.expand(problem, cell_x, cell_y);

      features::FeatureOptions fopt;
      fopt.grid_width = options.grid;
      fopt.grid_height = options.grid;
      feats = features::extract_features(design, device, cell_x, cell_y,
                                         fopt);

      const route::RouterOptions ropt =
          route::calibrated_router_options(device, options.grid, options.grid);
      route::GlobalRouter router(design, device, ropt);
      router.initial_route(cell_x, cell_y);
      const auto analysis = router.analyze();
      label = Tensor::zeros({options.grid, options.grid});
      std::int64_t saturated = 0;
      for (std::int64_t i = 0; i < options.grid * options.grid; ++i) {
        label.data()[i] =
            std::min(analysis.label[static_cast<size_t>(i)],
                     static_cast<float>(options.num_classes - 1));
        saturated += (label.data()[i] >=
                      static_cast<float>(options.num_classes - 1));
      }
      if (saturated * 2 < options.grid * options.grid) break;  // accept
    }

    samples.push_back({feats, label});
    if (options.augment_rotations) {
      for (std::int64_t k = 1; k <= 3; ++k)
        samples.push_back({rotate90(feats, k), rotate90(label, k)});
    }
  }
  return samples;
}

void DatasetBuilder::split(const std::vector<Sample>& all,
                           std::int64_t holdout_every,
                           std::vector<Sample>& train,
                           std::vector<Sample>& eval) {
  train.clear();
  eval.clear();
  // Samples arrive grouped: 4 rotated copies of each placement (or 1 when
  // augmentation is off). Hold out whole placements so rotated copies of an
  // eval placement never appear in training.
  for (size_t i = 0; i < all.size(); ++i) {
    const auto placement_id = static_cast<std::int64_t>(i) / 4;
    if (holdout_every > 0 && placement_id % holdout_every == holdout_every - 1)
      eval.push_back(all[i]);
    else
      train.push_back(all[i]);
  }
}

}  // namespace mfa::train
