// Dataset generation (paper §V-A): for each benchmark, the macro-placement
// flow is run with varying parameters to produce distinct placements; each
// placement yields the six §III-B feature maps (input) and the routed
// congestion-level map (label), augmented by 90/180/270-degree rotations.
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/device.h"
#include "netlist/generator.h"
#include "tensor/tensor.h"

namespace mfa::train {

struct Sample {
  Tensor features;  // [6, H, W]
  Tensor label;     // [H, W] integral congestion levels as floats
};

struct DatasetOptions {
  std::int64_t grid = 64;
  /// Placements generated per design with varied placer parameters
  /// (paper: 30; library default is smaller for CPU budgets).
  std::int64_t placements_per_design = 6;
  /// Add the three rotated copies of every sample (x4 total, §V-A).
  bool augment_rotations = true;
  /// Global-placement iterations per placement run. Varying effort levels
  /// below this cap are part of the parameter sweep.
  std::int64_t placer_iterations = 120;
  /// Congestion levels are clamped to [0, num_classes - 1].
  std::int64_t num_classes = 8;
  std::uint64_t seed = 1;
};

/// Rotates a [C, H, W] (or [H, W]) tensor by k*90 degrees counter-clockwise.
Tensor rotate90(const Tensor& t, std::int64_t k);

class DatasetBuilder {
 public:
  /// Generates the full sample set for one design (placement sweep plus
  /// rotation augmentation). Deterministic in (spec.seed, options.seed).
  static std::vector<Sample> build_for_design(const netlist::DesignSpec& spec,
                                              const fpga::DeviceGrid& device,
                                              const DatasetOptions& options);

  /// Deterministic train/eval split: every `holdout_every`-th sample goes to
  /// eval (rotated copies follow their source placement to avoid leakage).
  static void split(const std::vector<Sample>& all, std::int64_t holdout_every,
                    std::vector<Sample>& train, std::vector<Sample>& eval);
};

}  // namespace mfa::train
