#include "train/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/check.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace mfa::train {

namespace fs = std::filesystem;

void stack_batch(const std::vector<Sample>& samples,
                 const std::vector<size_t>& order, size_t i0, size_t i1,
                 Tensor& features, Tensor& labels) {
  const auto b = static_cast<std::int64_t>(i1 - i0);
  const auto& first = samples[order[i0]];
  const std::int64_t C = first.features.size(0);
  const std::int64_t H = first.features.size(1);
  const std::int64_t W = first.features.size(2);
  features = Tensor::zeros({b, C, H, W});
  labels = Tensor::zeros({b, H, W});
  for (size_t i = i0; i < i1; ++i) {
    const auto& s = samples[order[i]];
    std::copy(s.features.data(), s.features.data() + C * H * W,
              features.data() + static_cast<std::int64_t>(i - i0) * C * H * W);
    std::copy(s.label.data(), s.label.data() + H * W,
              labels.data() + static_cast<std::int64_t>(i - i0) * H * W);
  }
}

std::string checkpoint_path(const std::string& dir, std::int64_t epoch) {
  return (fs::path(dir) /
          log::format("checkpoint-%05lld.bin", static_cast<long long>(epoch)))
      .string();
}

std::string last_good_path(const std::string& dir) {
  return (fs::path(dir) / "last-good.bin").string();
}

std::string resume_from(nn::Module& module, const std::string& dir,
                        nn::CheckpointMeta* meta) {
  std::error_code ec;
  if (dir.empty() || !fs::is_directory(dir, ec)) return "";
  // Collect candidates newest-first by epoch number in the filename.
  std::vector<std::pair<std::int64_t, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    // checkpoint-NNNNN.bin; anything else (including .tmp leftovers from an
    // interrupted atomic save) is not a valid snapshot.
    constexpr const char* kPrefix = "checkpoint-";
    constexpr const char* kSuffix = ".bin";
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) continue;
    if (name.compare(name.size() - std::strlen(kSuffix), std::strlen(kSuffix),
                     kSuffix) != 0)
      continue;
    const std::string digits = name.substr(
        std::strlen(kPrefix),
        name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    candidates.emplace_back(std::stoll(digits), entry.path().string());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [epoch, path] : candidates) {
    try {
      nn::CheckpointMeta parsed;
      nn::load_checkpoint(module, path, &parsed);
      if (meta) *meta = parsed;
      return path;
    } catch (const std::exception& e) {
      log::warn("resume_from: rejecting %s (%s)", path.c_str(), e.what());
    }
  }
  return "";
}

namespace {

/// Deterministic per-epoch shuffle stream: depends only on (seed, epoch), so
/// a resumed run replays the batch order of the uninterrupted run.
Rng epoch_rng(std::uint64_t seed, std::int64_t epoch) {
  return Rng(seed).fork(static_cast<std::uint64_t>(epoch) + 1);
}

void shuffle(std::vector<size_t>& order, Rng& rng) {
  for (auto i = static_cast<std::int64_t>(order.size()) - 1; i > 0; --i)
    std::swap(order[static_cast<size_t>(i)],
              order[static_cast<size_t>(rng.uniform_int(0, i))]);
}

}  // namespace

double Trainer::fit(models::CongestionModel& model,
                    const std::vector<Sample>& train_set,
                    const TrainOptions& options) {
  return fit_resumable(model, train_set, options).final_loss;
}

FitReport Trainer::fit_resumable(models::CongestionModel& model,
                                 const std::vector<Sample>& train_set,
                                 const TrainOptions& options) {
  FitReport report;
  report.final_learning_rate = options.learning_rate;
  if (train_set.empty()) return report;
  auto& net = model.network();
  net.train(true);

  float lr = options.learning_rate;
  std::int64_t start_epoch = 0;
  if (!options.checkpoint_dir.empty()) {
    fs::create_directories(options.checkpoint_dir);
    if (options.resume) {
      nn::CheckpointMeta meta;
      const auto loaded = resume_from(net, options.checkpoint_dir, &meta);
      if (!loaded.empty()) {
        start_epoch = meta.epoch + 1;
        if (meta.learning_rate > 0.0f) lr = meta.learning_rate;
        log::info("%s resuming from %s (epoch %lld, lr %g)", model.name(),
                  loaded.c_str(), static_cast<long long>(meta.epoch),
                  static_cast<double>(lr));
      }
      // Prefer the last-good spill when it is ahead of the periodic snapshot
      // (it is written every healthy epoch, so after a crash it usually is).
      // Peek the metadata first: blindly loading an *older* spill would
      // clobber the newer parameters already in the module.
      const std::string lg = last_good_path(options.checkpoint_dir);
      std::error_code lg_ec;
      if (options.spill_last_good && fs::is_regular_file(lg, lg_ec)) {
        try {
          const nn::CheckpointMeta lgm = nn::load_checkpoint_meta(lg);
          if (lgm.epoch + 1 > start_epoch) {
            nn::load_checkpoint(net, lg);
            start_epoch = lgm.epoch + 1;
            if (lgm.learning_rate > 0.0f) lr = lgm.learning_rate;
            log::info("%s resuming from last-good spill %s (epoch %lld, "
                      "lr %g)",
                      model.name(), lg.c_str(),
                      static_cast<long long>(lgm.epoch),
                      static_cast<double>(lr));
          }
        } catch (const std::exception& e) {
          log::warn("fit: rejecting last-good spill %s (%s)", lg.c_str(),
                    e.what());
        }
      }
    }
  }
  report.start_epoch = start_epoch;

  auto params = net.parameters();
  // Last-good snapshot for divergence rollback: the parameters after the
  // most recent healthy epoch (initially the starting weights). Held in
  // pooled Storage that copy_from refills in place, so re-snapshotting every
  // epoch allocates nothing after the first.
  std::vector<tensor::Storage> good(params.size());
  double good_loss = 0.0;
  bool have_good_loss = false;
  const auto snapshot = [&] {
    for (size_t i = 0; i < params.size(); ++i)
      good[i].copy_from(params[i].data(), params[i].numel());
  };
  const auto restore = [&] {
    for (size_t i = 0; i < params.size(); ++i) {
      std::copy(good[i].begin(), good[i].end(), params[i].data());
      params[i].zero_grad();
    }
  };
  snapshot();

  auto optimizer = std::make_unique<nn::Adam>(params, lr);
  std::vector<size_t> order(train_set.size());

  double final_loss = 0.0;
  const auto fit_start = std::chrono::steady_clock::now();
  const auto budget_spent = [&] {
    if (MFA_FAULT_POINT("trainer.budget")) return true;
    if (options.time_budget_seconds <= 0.0) return false;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      fit_start)
            .count();
    return elapsed > options.time_budget_seconds;
  };
  MFA_TRACE_SCOPE("trainer.fit");
  static obs::Counter obs_epochs = obs::counter("trainer.epochs");
  static obs::Counter obs_batches = obs::counter("trainer.batches");
  static obs::Counter obs_rollbacks = obs::counter("trainer.rollbacks");
  static obs::Counter obs_checkpoints = obs::counter("trainer.checkpoints");
  static obs::Counter obs_spills = obs::counter("trainer.spills");
  static obs::Gauge obs_loss = obs::gauge("trainer.loss");
  std::int64_t epoch = start_epoch;
  while (epoch < options.epochs) {
    MFA_TRACE_SCOPE("trainer.epoch");
    if (budget_spent()) {
      report.budget_exhausted = true;
      log::warn("%s wall-clock budget (%g s) exhausted after %lld epochs; "
                "keeping the parameters trained so far",
                model.name(), options.time_budget_seconds,
                static_cast<long long>(report.epochs_run));
      break;
    }
    order.resize(train_set.size());
    std::iota(order.begin(), order.end(), size_t{0});
    Rng rng = epoch_rng(options.seed, epoch);
    shuffle(order, rng);

    double epoch_loss = 0.0;
    std::int64_t batches = 0;
    bool failed = false;
    std::string why;
    try {
      for (size_t i0 = 0; i0 < order.size();
           i0 += static_cast<size_t>(options.batch_size)) {
        if (MFA_FAULT_POINT("trainer.crash"))
          throw std::runtime_error("trainer: fault-injected crash mid-epoch");
        const size_t i1 = std::min(
            order.size(), i0 + static_cast<size_t>(options.batch_size));
        Tensor features, labels;
        stack_batch(train_set, order, i0, i1, features, labels);
        optimizer->zero_grad();
        Tensor logits = model.forward(features);
        Tensor loss = ops::cross_entropy(logits, labels);
        // Auxiliary head (e.g. LHNN's net-level regression): both scalars
        // backpropagate in one multi-root pass over the shared subgraph,
        // and the auxiliary term joins the divergence monitor so a blowing
        // up side head triggers the same rollback as the main loss.
        Tensor aux = model.take_auxiliary_loss();
        double batch_loss = loss.item();
        if (aux.defined()) batch_loss += aux.item();
        if (!std::isfinite(batch_loss)) {
          failed = true;
          why = "non-finite batch loss";
          break;
        }
        if (aux.defined()) {
          Tensor::backward_multi({loss, aux});
        } else {
          loss.backward();
        }
        optimizer->step();
        epoch_loss += batch_loss;
        ++batches;
        obs_batches.add();
      }
    } catch (const check::CheckError& e) {
      // The numeric stack detected a broken invariant (e.g. the finite-grad
      // guard caught a NaN gradient): treat it like a diverged epoch.
      failed = true;
      why = e.what();
    }
    if (!failed) {
      epoch_loss /= static_cast<double>(std::max<std::int64_t>(1, batches));
      if (!std::isfinite(epoch_loss)) {
        failed = true;
        why = "non-finite epoch loss";
      } else if (have_good_loss &&
                 epoch_loss > options.divergence_factor * good_loss) {
        failed = true;
        why = log::format("loss spiked to %.4g (last good %.4g)", epoch_loss,
                          good_loss);
      }
    }

    if (failed) {
      restore();
      if (report.rollbacks >= options.max_rollbacks) {
        log::error("%s epoch %lld diverged (%s); rollback budget exhausted, "
                   "keeping last good parameters",
                   model.name(), static_cast<long long>(epoch + 1),
                   why.c_str());
        report.diverged = true;
        break;
      }
      ++report.rollbacks;
      obs_rollbacks.add();
      lr *= 0.5f;
      optimizer = std::make_unique<nn::Adam>(params, lr);
      log::warn("%s epoch %lld diverged (%s); rolled back, lr -> %g "
                "(retry %lld/%lld)",
                model.name(), static_cast<long long>(epoch + 1), why.c_str(),
                static_cast<double>(lr),
                static_cast<long long>(report.rollbacks),
                static_cast<long long>(options.max_rollbacks));
      continue;  // retry the same epoch
    }

    snapshot();
    good_loss = epoch_loss;
    have_good_loss = true;
    final_loss = epoch_loss;
    ++report.epochs_run;
    obs_epochs.add();
    obs_loss.set(epoch_loss);
    if (options.verbose)
      log::info("%s epoch %lld/%lld loss %.4f", model.name(),
                static_cast<long long>(epoch + 1),
                static_cast<long long>(options.epochs), epoch_loss);
    if (!options.checkpoint_dir.empty() &&
        ((epoch + 1) % std::max<std::int64_t>(1, options.checkpoint_interval)
             == 0 ||
         epoch == options.epochs - 1)) {
      nn::CheckpointMeta meta;
      meta.epoch = epoch;
      meta.learning_rate = lr;
      nn::save_checkpoint(net, checkpoint_path(options.checkpoint_dir, epoch),
                          meta);
      ++report.checkpoints_written;
      obs_checkpoints.add();
    }
    if (!options.checkpoint_dir.empty() && options.spill_last_good) {
      // Crash-survivable rollback state: the in-memory `good` snapshot dies
      // with the process, so mirror it to disk after every healthy epoch via
      // the same atomic CRC-checked writer as the periodic checkpoints.
      nn::CheckpointMeta meta;
      meta.epoch = epoch;
      meta.learning_rate = lr;
      nn::save_checkpoint(net, last_good_path(options.checkpoint_dir), meta);
      ++report.last_good_spills;
      obs_spills.add();
    }
    ++epoch;
  }
  report.final_loss = have_good_loss ? (report.diverged ? good_loss
                                                        : final_loss)
                                     : final_loss;
  report.final_learning_rate = lr;
  return report;
}

std::string FitReport::metrics_json() const {
  std::string out = "{\"report\":{";
  out += log::format(
      "\"final_loss\":%.17g,\"epochs_run\":%lld,\"start_epoch\":%lld,"
      "\"rollbacks\":%lld,\"checkpoints_written\":%lld,\"diverged\":%s,"
      "\"budget_exhausted\":%s,\"final_learning_rate\":%.9g,"
      "\"last_good_spills\":%lld",
      final_loss, static_cast<long long>(epochs_run),
      static_cast<long long>(start_epoch), static_cast<long long>(rollbacks),
      static_cast<long long>(checkpoints_written),
      diverged ? "true" : "false", budget_exhausted ? "true" : "false",
      static_cast<double>(final_learning_rate),
      static_cast<long long>(last_good_spills));
  out += "},\"metrics\":";
  out += obs::Registry::instance().metrics_json();
  out += "}";
  return out;
}

EvalResult Trainer::evaluate(models::CongestionModel& model,
                             const std::vector<Sample>& eval_set) {
  EvalResult result;
  if (eval_set.empty()) return result;
  // Concatenate predictions/labels over the whole set, then compute metrics
  // once (matches per-design averaging in Table I).
  const std::int64_t H = eval_set[0].label.size(0);
  const std::int64_t W = eval_set[0].label.size(1);
  const auto n = static_cast<std::int64_t>(eval_set.size());
  Tensor all_pred = Tensor::zeros({n, H, W});
  Tensor all_label = Tensor::zeros({n, H, W});
  std::vector<size_t> order(eval_set.size());
  std::iota(order.begin(), order.end(), size_t{0});
  const std::int64_t batch = 8;
  for (std::int64_t i0 = 0; i0 < n; i0 += batch) {
    const auto i1 = std::min(n, i0 + batch);
    Tensor features, labels;
    stack_batch(eval_set, order, static_cast<size_t>(i0),
                static_cast<size_t>(i1), features, labels);
    Tensor pred = model.predict_levels(features);
    std::copy(pred.data(), pred.data() + (i1 - i0) * H * W,
              all_pred.data() + i0 * H * W);
    std::copy(labels.data(), labels.data() + (i1 - i0) * H * W,
              all_label.data() + i0 * H * W);
  }
  result.acc = metrics::accuracy(all_pred, all_label);
  result.r2 = metrics::r_squared(all_pred, all_label);
  result.nrms = metrics::nrms(all_pred, all_label);
  return result;
}

}  // namespace mfa::train
