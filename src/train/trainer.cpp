#include "train/trainer.h"

#include <algorithm>
#include <numeric>

#include "common/log.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace mfa::train {

void stack_batch(const std::vector<Sample>& samples,
                 const std::vector<size_t>& order, size_t i0, size_t i1,
                 Tensor& features, Tensor& labels) {
  const auto b = static_cast<std::int64_t>(i1 - i0);
  const auto& first = samples[order[i0]];
  const std::int64_t C = first.features.size(0);
  const std::int64_t H = first.features.size(1);
  const std::int64_t W = first.features.size(2);
  features = Tensor::zeros({b, C, H, W});
  labels = Tensor::zeros({b, H, W});
  for (size_t i = i0; i < i1; ++i) {
    const auto& s = samples[order[i]];
    std::copy(s.features.data(), s.features.data() + C * H * W,
              features.data() + static_cast<std::int64_t>(i - i0) * C * H * W);
    std::copy(s.label.data(), s.label.data() + H * W,
              labels.data() + static_cast<std::int64_t>(i - i0) * H * W);
  }
}

double Trainer::fit(models::CongestionModel& model,
                    const std::vector<Sample>& train_set,
                    const TrainOptions& options) {
  if (train_set.empty()) return 0.0;
  auto& net = model.network();
  net.train(true);
  nn::Adam optimizer(net.parameters(), options.learning_rate);
  Rng rng(options.seed);

  std::vector<size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), size_t{0});

  double epoch_loss = 0.0;
  for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    // Deterministic shuffle.
    for (auto i = static_cast<std::int64_t>(order.size()) - 1; i > 0; --i)
      std::swap(order[static_cast<size_t>(i)],
                order[static_cast<size_t>(rng.uniform_int(0, i))]);
    epoch_loss = 0.0;
    std::int64_t batches = 0;
    for (size_t i0 = 0; i0 < order.size();
         i0 += static_cast<size_t>(options.batch_size)) {
      const size_t i1 = std::min(order.size(),
                                 i0 + static_cast<size_t>(options.batch_size));
      Tensor features, labels;
      stack_batch(train_set, order, i0, i1, features, labels);
      optimizer.zero_grad();
      Tensor logits = model.forward(features);
      Tensor loss = ops::cross_entropy(logits, labels);
      loss.backward();
      optimizer.step();
      epoch_loss += loss.item();
      ++batches;
    }
    epoch_loss /= std::max<std::int64_t>(1, batches);
    if (options.verbose)
      log::info("%s epoch %lld/%lld loss %.4f", model.name(),
                static_cast<long long>(epoch + 1),
                static_cast<long long>(options.epochs), epoch_loss);
  }
  return epoch_loss;
}

EvalResult Trainer::evaluate(models::CongestionModel& model,
                             const std::vector<Sample>& eval_set) {
  EvalResult result;
  if (eval_set.empty()) return result;
  // Concatenate predictions/labels over the whole set, then compute metrics
  // once (matches per-design averaging in Table I).
  const std::int64_t H = eval_set[0].label.size(0);
  const std::int64_t W = eval_set[0].label.size(1);
  const auto n = static_cast<std::int64_t>(eval_set.size());
  Tensor all_pred = Tensor::zeros({n, H, W});
  Tensor all_label = Tensor::zeros({n, H, W});
  std::vector<size_t> order(eval_set.size());
  std::iota(order.begin(), order.end(), size_t{0});
  const std::int64_t batch = 8;
  for (std::int64_t i0 = 0; i0 < n; i0 += batch) {
    const auto i1 = std::min(n, i0 + batch);
    Tensor features, labels;
    stack_batch(eval_set, order, static_cast<size_t>(i0),
                static_cast<size_t>(i1), features, labels);
    Tensor pred = model.predict_levels(features);
    std::copy(pred.data(), pred.data() + (i1 - i0) * H * W,
              all_pred.data() + i0 * H * W);
    std::copy(labels.data(), labels.data() + (i1 - i0) * H * W,
              all_label.data() + i0 * H * W);
  }
  result.acc = metrics::accuracy(all_pred, all_label);
  result.r2 = metrics::r_squared(all_pred, all_label);
  result.nrms = metrics::nrms(all_pred, all_label);
  return result;
}

}  // namespace mfa::train
