// Evaluation metrics of §V-B: ACC, R^2 and NRMS over congestion-level maps.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace mfa::train::metrics {

/// Classification accuracy: fraction of tiles whose predicted level equals
/// the ground-truth level. Both tensors hold integral levels as floats and
/// must have identical element counts.
double accuracy(const Tensor& predicted, const Tensor& label);

/// Coefficient of determination of predicted levels against true levels:
/// 1 - SS_res / SS_tot (can be negative for a bad predictor; 1 is perfect).
double r_squared(const Tensor& predicted, const Tensor& label);

/// Normalised root-mean-square error: RMSE divided by the label value range
/// (max - min); 0 is perfect.
double nrms(const Tensor& predicted, const Tensor& label);

}  // namespace mfa::train::metrics
