#include "train/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mfa::train::metrics {

namespace {
void check_sizes(const Tensor& predicted, const Tensor& label) {
  if (predicted.numel() != label.numel() || predicted.numel() == 0)
    throw std::invalid_argument("metrics: size mismatch or empty input");
}
}  // namespace

double accuracy(const Tensor& predicted, const Tensor& label) {
  check_sizes(predicted, label);
  const auto n = predicted.numel();
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i)
    correct += (std::lround(predicted.data()[i]) == std::lround(label.data()[i]));
  return static_cast<double>(correct) / static_cast<double>(n);
}

double r_squared(const Tensor& predicted, const Tensor& label) {
  check_sizes(predicted, label);
  const auto n = predicted.numel();
  double mean = 0.0;
  for (std::int64_t i = 0; i < n; ++i) mean += label.data()[i];
  mean /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double r = static_cast<double>(label.data()[i]) - predicted.data()[i];
    const double t = static_cast<double>(label.data()[i]) - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double nrms(const Tensor& predicted, const Tensor& label) {
  check_sizes(predicted, label);
  const auto n = predicted.numel();
  double mse = 0.0;
  float lo = label.data()[0], hi = label.data()[0];
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(predicted.data()[i]) - label.data()[i];
    mse += d * d;
    lo = std::min(lo, label.data()[i]);
    hi = std::max(hi, label.data()[i]);
  }
  // Congestion levels are integers; a range below one level (e.g. a
  // constant-label map) must not inflate the metric, so floor it at 1.
  const double range = std::max(1.0, static_cast<double>(hi - lo));
  return std::sqrt(mse / static_cast<double>(n)) / range;
}

}  // namespace mfa::train::metrics
