#include "route/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <cstdio>
#include <queue>

#include "common/check.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace mfa::route {
namespace {

/// One two-pin connection in tile coordinates with its current route choice.
struct Connection {
  std::int32_t x0, y0, x1, y1;
  WireClass wc;
  /// Pattern: 0 = HV (horizontal then vertical), 1 = VH, 2 = Z with
  /// horizontal split at mid-x, 3 = Z with vertical split at mid-y.
  std::int8_t choice = 0;
  bool routed = false;
  /// Non-empty after a maze reroute: explicit direction sequence from
  /// (x0, y0); overrides the pattern choice.
  std::vector<std::uint8_t> maze_path;
};

}  // namespace

struct GlobalRouter::Impl {
  const netlist::Design* design;
  const fpga::DeviceGrid* device;
  RouterOptions options;
  fpga::InterconnectTileGrid tiles;
  CongestionGrid grid;
  // History costs per (class, direction, tile) for negotiation.
  std::array<std::array<std::vector<double>, fpga::kNumDirections>,
             fpga::kNumWireClasses>
      history;
  std::vector<Connection> connections;
  double pressure = 1.0;  // escalates during negotiation (PathFinder-style)
  bool budget_exhausted = false;

  Impl(const netlist::Design& d, const fpga::DeviceGrid& dev,
       const RouterOptions& opt)
      : design(&d),
        device(&dev),
        options(opt),
        tiles(opt.grid_width, opt.grid_height, dev.cols(), dev.rows(),
              opt.short_capacity, opt.global_capacity),
        grid(tiles) {
    MFA_CHECK(opt.grid_width > 0 && opt.grid_height > 0)
        << " router grid must be non-empty, got " << opt.grid_width << "x"
        << opt.grid_height;
    MFA_CHECK(opt.short_capacity > 0 && opt.global_capacity > 0)
        << " router capacities must be positive";
    const auto n = static_cast<size_t>(tiles.num_tiles());
    for (auto& per_class : history)
      for (auto& per_dir : per_class) per_dir.assign(n, 0.0);
  }

  double edge_cost(WireClass wc, Direction d, std::int64_t gx,
                   std::int64_t gy) const {
    MFA_DCHECK_BOUNDS(gx, tiles.width()) << " edge_cost tile x";
    MFA_DCHECK_BOUNDS(gy, tiles.height()) << " edge_cost tile y";
    const double cap = static_cast<double>(tiles.capacity(wc));
    const double demand = grid.demand(wc, d, gx, gy);
    const double over = std::max(0.0, (demand + 1.0) - cap) / cap;
    return 1.0 + pressure * options.overflow_penalty * over +
           history[static_cast<size_t>(wc)][static_cast<size_t>(d)]
                  [static_cast<size_t>(tiles.tile_index(gx, gy))];
  }

  /// Walks the edges of `conn` under pattern `choice`, calling
  /// fn(gx, gy, direction) once per tile crossing.
  template <typename F>
  void walk(const Connection& conn, std::int8_t choice, F&& fn) const {
    const auto hseg = [&](std::int64_t y, std::int64_t xa, std::int64_t xb) {
      if (xa < xb)
        for (std::int64_t x = xa; x < xb; ++x) fn(x, y, Direction::East);
      else
        for (std::int64_t x = xa; x > xb; --x) fn(x, y, Direction::West);
    };
    const auto vseg = [&](std::int64_t x, std::int64_t ya, std::int64_t yb) {
      if (ya < yb)
        for (std::int64_t y = ya; y < yb; ++y) fn(x, y, Direction::North);
      else
        for (std::int64_t y = ya; y > yb; --y) fn(x, y, Direction::South);
    };
    switch (choice) {
      case 0:  // HV
        hseg(conn.y0, conn.x0, conn.x1);
        vseg(conn.x1, conn.y0, conn.y1);
        break;
      case 1:  // VH
        vseg(conn.x0, conn.y0, conn.y1);
        hseg(conn.y1, conn.x0, conn.x1);
        break;
      case 2: {  // Z horizontal: H to mid-x, V, H
        const std::int64_t mx = (conn.x0 + conn.x1) / 2;
        hseg(conn.y0, conn.x0, mx);
        vseg(mx, conn.y0, conn.y1);
        hseg(conn.y1, mx, conn.x1);
        break;
      }
      default: {  // Z vertical: V to mid-y, H, V
        const std::int64_t my = (conn.y0 + conn.y1) / 2;
        vseg(conn.x0, conn.y0, my);
        hseg(my, conn.x0, conn.x1);
        vseg(conn.x1, my, conn.y1);
        break;
      }
    }
  }

  /// Walks the connection's current route (maze path if present, else the
  /// chosen pattern).
  template <typename F>
  void walk_current(const Connection& conn, F&& fn) const {
    if (conn.maze_path.empty()) {
      walk(conn, conn.choice, std::forward<F>(fn));
      return;
    }
    std::int64_t x = conn.x0, y = conn.y0;
    for (const auto step : conn.maze_path) {
      const auto d = static_cast<Direction>(step);
      fn(x, y, d);
      switch (d) {
        case Direction::East:
          ++x;
          break;
        case Direction::West:
          --x;
          break;
        case Direction::North:
          ++y;
          break;
        default:
          --y;
          break;
      }
    }
  }

  double path_cost(const Connection& conn, std::int8_t choice) const {
    double cost = 0.0;
    walk(conn, choice, [&](std::int64_t gx, std::int64_t gy, Direction d) {
      cost += edge_cost(conn.wc, d, gx, gy);
    });
    return cost;
  }

  void apply(const Connection& conn, double sign) {
    walk_current(conn, [&](std::int64_t gx, std::int64_t gy, Direction d) {
      grid.add_demand(conn.wc, d, gx, gy, sign);
    });
  }

  void route_connection(Connection& conn) {
    conn.maze_path.clear();
    std::int8_t best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    // Degenerate straight connections: all patterns coincide; try one.
    const std::int8_t num_choices =
        (conn.x0 == conn.x1 || conn.y0 == conn.y1) ? 1 : 4;
    for (std::int8_t c = 0; c < num_choices; ++c) {
      const double cost = path_cost(conn, c);
      if (cost < best_cost) {
        best_cost = cost;
        best = c;
      }
    }
    conn.choice = best;
    apply(conn, +1.0);
    conn.routed = true;
  }

  bool crosses_overused(const Connection& conn) const {
    bool hit = false;
    walk_current(conn, [&](std::int64_t gx, std::int64_t gy, Direction d) {
      if (grid.utilisation(conn.wc, d, gx, gy) > 1.0) hit = true;
    });
    return hit;
  }

  /// A* maze route under the congestion-aware edge cost (the PathFinder
  /// reroute): finds the globally cheapest detour instead of picking among
  /// fixed patterns. Fills conn.maze_path and applies demand.
  void maze_route(Connection& conn) {
    const std::int64_t gw = tiles.width();
    const std::int64_t gh = tiles.height();
    // Restrict the search to the connection bounding box plus a detour
    // margin: full-grid A* for every overused connection is wasteful.
    constexpr std::int64_t kMargin = 10;
    const std::int64_t bx0 = std::max<std::int64_t>(0, std::min(conn.x0, conn.x1) - kMargin);
    const std::int64_t bx1 = std::min<std::int64_t>(gw - 1, std::max(conn.x0, conn.x1) + kMargin);
    const std::int64_t by0 = std::max<std::int64_t>(0, std::min(conn.y0, conn.y1) - kMargin);
    const std::int64_t by1 = std::min<std::int64_t>(gh - 1, std::max(conn.y0, conn.y1) + kMargin);
    const auto n = static_cast<size_t>(gw * gh);
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(n, kInf);
    std::vector<std::int8_t> from(n, -1);  // direction taken INTO the node
    using Item = std::pair<double, std::int64_t>;  // (f = g + h, node)
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> open;
    const auto node = [gw](std::int64_t x, std::int64_t y) {
      return y * gw + x;
    };
    const auto heuristic = [&](std::int64_t x, std::int64_t y) {
      return static_cast<double>(std::abs(x - conn.x1) +
                                 std::abs(y - conn.y1));
    };
    const std::int64_t start = node(conn.x0, conn.y0);
    const std::int64_t goal = node(conn.x1, conn.y1);
    dist[static_cast<size_t>(start)] = 0.0;
    open.emplace(heuristic(conn.x0, conn.y0), start);
    while (!open.empty()) {
      const auto [f, u] = open.top();
      open.pop();
      if (u == goal) break;
      const std::int64_t ux = u % gw, uy = u / gw;
      if (f - heuristic(ux, uy) > dist[static_cast<size_t>(u)] + 1e-12)
        continue;  // stale entry
      struct Step {
        Direction d;
        std::int64_t dx, dy;
      };
      constexpr Step kSteps[4] = {{Direction::East, 1, 0},
                                  {Direction::West, -1, 0},
                                  {Direction::North, 0, 1},
                                  {Direction::South, 0, -1}};
      for (const auto& step : kSteps) {
        const std::int64_t vx = ux + step.dx, vy = uy + step.dy;
        if (vx < bx0 || vx > bx1 || vy < by0 || vy > by1) continue;
        const double w = edge_cost(conn.wc, step.d, ux, uy);
        const std::int64_t v = node(vx, vy);
        if (dist[static_cast<size_t>(u)] + w <
            dist[static_cast<size_t>(v)] - 1e-12) {
          dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + w;
          from[static_cast<size_t>(v)] = static_cast<std::int8_t>(step.d);
          open.emplace(dist[static_cast<size_t>(v)] + heuristic(vx, vy), v);
        }
      }
    }
    // The search box always contains both endpoints and the grid is fully
    // connected within it, so an unreached goal means the A* bookkeeping is
    // broken; reconstructing from a -1 `from` entry would loop forever.
    MFA_CHECK(dist[static_cast<size_t>(goal)] < kInf)
        << " maze_route: goal (" << conn.x1 << ", " << conn.y1
        << ") unreached from (" << conn.x0 << ", " << conn.y0 << ")";
    // Reconstruct (goal -> start), then reverse.
    conn.maze_path.clear();
    std::int64_t cx = conn.x1, cy = conn.y1;
    while (!(cx == conn.x0 && cy == conn.y0)) {
      const auto step_dir = from[static_cast<size_t>(node(cx, cy))];
      MFA_DCHECK_GE(step_dir, 0)
          << " maze_route: broken back-pointer chain at (" << cx << ", " << cy
          << ")";
      const auto d = static_cast<Direction>(step_dir);
      conn.maze_path.push_back(static_cast<std::uint8_t>(d));
      switch (d) {  // step backwards
        case Direction::East:
          --cx;
          break;
        case Direction::West:
          ++cx;
          break;
        case Direction::North:
          --cy;
          break;
        default:
          ++cy;
          break;
      }
    }
    std::reverse(conn.maze_path.begin(), conn.maze_path.end());
    apply(conn, +1.0);
    conn.routed = true;
  }

  void bump_history() {
    for (size_t w = 0; w < fpga::kNumWireClasses; ++w)
      for (size_t d = 0; d < fpga::kNumDirections; ++d)
        for (std::int64_t gy = 0; gy < tiles.height(); ++gy)
          for (std::int64_t gx = 0; gx < tiles.width(); ++gx)
            if (grid.utilisation(static_cast<WireClass>(w),
                                 static_cast<Direction>(d), gx, gy) > 1.0)
              history[w][d][static_cast<size_t>(tiles.tile_index(gx, gy))] +=
                  options.history_increment;
  }
};

GlobalRouter::GlobalRouter(const netlist::Design& design,
                           const fpga::DeviceGrid& device,
                           RouterOptions options)
    : impl_(std::make_unique<Impl>(design, device, options)) {}

GlobalRouter::~GlobalRouter() = default;

void GlobalRouter::initial_route(const std::vector<double>& cell_x,
                                 const std::vector<double>& cell_y) {
  MFA_TRACE_SCOPE("router.initial_route");
  auto& im = *impl_;
  MFA_CHECK(cell_x.size() == cell_y.size() &&
            cell_x.size() >= im.design->cells.size())
      << " initial_route: placement arrays (" << cell_x.size() << ", "
      << cell_y.size() << ") must cover all " << im.design->cells.size()
      << " cells";
  im.grid.clear();
  im.budget_exhausted = false;
  for (auto& per_class : im.history)
    for (auto& per_dir : per_class)
      std::fill(per_dir.begin(), per_dir.end(), 0.0);
  im.connections.clear();

  // Net decomposition: Prim MST over pin tiles (nets are small).
  std::vector<std::int64_t> tx, ty;
  std::vector<char> in_tree;
  std::vector<double> dist;
  std::vector<std::int32_t> parent;
  for (const auto& net : im.design->nets) {
    const auto k = static_cast<std::int64_t>(net.pins.size());
    tx.clear();
    ty.clear();
    for (const auto pin : net.pins) {
      tx.push_back(im.tiles.tile_x(cell_x[static_cast<size_t>(pin)]));
      ty.push_back(im.tiles.tile_y(cell_y[static_cast<size_t>(pin)]));
    }
    in_tree.assign(static_cast<size_t>(k), 0);
    dist.assign(static_cast<size_t>(k),
                std::numeric_limits<double>::infinity());
    parent.assign(static_cast<size_t>(k), 0);
    dist[0] = 0.0;
    for (std::int64_t step = 0; step < k; ++step) {
      std::int64_t u = -1;
      double best = std::numeric_limits<double>::infinity();
      for (std::int64_t i = 0; i < k; ++i)
        if (!in_tree[static_cast<size_t>(i)] &&
            dist[static_cast<size_t>(i)] < best) {
          best = dist[static_cast<size_t>(i)];
          u = i;
        }
      if (u < 0) break;
      in_tree[static_cast<size_t>(u)] = 1;
      if (u != 0 && (tx[static_cast<size_t>(u)] !=
                         tx[static_cast<size_t>(parent[static_cast<size_t>(u)])] ||
                     ty[static_cast<size_t>(u)] !=
                         ty[static_cast<size_t>(parent[static_cast<size_t>(u)])])) {
        Connection conn;
        conn.x0 = static_cast<std::int32_t>(
            tx[static_cast<size_t>(parent[static_cast<size_t>(u)])]);
        conn.y0 = static_cast<std::int32_t>(
            ty[static_cast<size_t>(parent[static_cast<size_t>(u)])]);
        conn.x1 = static_cast<std::int32_t>(tx[static_cast<size_t>(u)]);
        conn.y1 = static_cast<std::int32_t>(ty[static_cast<size_t>(u)]);
        const auto len = std::abs(conn.x1 - conn.x0) + std::abs(conn.y1 - conn.y0);
        conn.wc = len > im.options.global_wire_threshold ? WireClass::Global
                                                         : WireClass::Short;
        im.connections.push_back(conn);
      }
      for (std::int64_t v = 0; v < k; ++v) {
        if (in_tree[static_cast<size_t>(v)]) continue;
        const double w = static_cast<double>(
            std::abs(tx[static_cast<size_t>(u)] - tx[static_cast<size_t>(v)]) +
            std::abs(ty[static_cast<size_t>(u)] - ty[static_cast<size_t>(v)]));
        if (w < dist[static_cast<size_t>(v)]) {
          dist[static_cast<size_t>(v)] = w;
          parent[static_cast<size_t>(v)] = static_cast<std::int32_t>(u);
        }
      }
    }
  }

  // Route short connections first: they have the least flexibility.
  std::sort(im.connections.begin(), im.connections.end(),
            [](const Connection& a, const Connection& b) {
              const auto la = std::abs(a.x1 - a.x0) + std::abs(a.y1 - a.y0);
              const auto lb = std::abs(b.x1 - b.x0) + std::abs(b.y1 - b.y0);
              return la < lb;
            });
  for (auto& conn : im.connections) im.route_connection(conn);
}

std::int64_t GlobalRouter::detailed_route() {
  using Clock = std::chrono::steady_clock;
  MFA_TRACE_SCOPE("router.detailed_route");
  static obs::Counter obs_rounds = obs::counter("router.negotiation_rounds");
  static obs::Counter obs_ripups = obs::counter("router.ripups");
  static obs::Counter obs_maze = obs::counter("router.maze_reroutes");
  static obs::Histogram obs_overused = obs::histogram("router.overused");
  auto& im = *impl_;
  im.pressure = 1.0;
  im.budget_exhausted = false;
  const auto t0 = Clock::now();
  const auto budget_spent = [&] {
    if (MFA_FAULT_POINT("route.budget")) return true;
    if (im.options.time_budget_seconds <= 0.0) return false;
    return std::chrono::duration<double>(Clock::now() - t0).count() >
           im.options.time_budget_seconds;
  };
  std::int64_t iterations = 0;
  std::int64_t best_overused = im.grid.overused_count(1.0);
  std::int64_t stalled = 0;
  while (iterations < im.options.max_detailed_iterations) {
    const auto overused = im.grid.overused_count(1.0);
    // Overflow history: one sample per negotiation round, so the histogram
    // shape shows how fast congestion collapsed (or that it plateaued).
    obs_overused.record(overused);
    if (overused == 0) break;
    if (budget_spent()) {
      // Budget exhausted: keep the best routing found so far (every
      // connection stays routed; only further negotiation is skipped).
      im.budget_exhausted = true;
      break;
    }
    // Stall detection: if three rounds bring no improvement, the residual
    // congestion is unroutable at this placement — report the cap (the
    // contest's worst detailed-routing experience).
    if (overused < best_overused) {
      best_overused = overused;
      stalled = 0;
    } else if (++stalled >= 3) {
      // A large residual means the placement is effectively unroutable
      // (report the cap); a handful of stubborn resources is normal router
      // noise (report the effort actually spent).
      const auto total = static_cast<std::int64_t>(
          fpga::kNumWireClasses * fpga::kNumDirections *
          static_cast<size_t>(im.tiles.num_tiles()));
      return overused * 1000 > total ? im.options.max_detailed_iterations
                                     : iterations;
    }
    ++iterations;
    obs_rounds.add();
    if (std::getenv("MFA_ROUTER_TRACE"))
      std::fprintf(stderr, "[router] iter %lld overused %lld\n",
                   static_cast<long long>(iterations),
                   static_cast<long long>(overused));
    im.bump_history();
    im.pressure *= 1.4;  // PathFinder-style escalation
    // Early iterations retry the cheap pattern candidates; once history has
    // built up, overused connections fall back to A* maze rerouting
    // (the PathFinder negotiation step).
    const bool use_maze = iterations >= 2;
    std::int64_t ripups = 0;
    std::int64_t mazed = 0;
    for (auto& conn : im.connections) {
      if (!im.crosses_overused(conn)) continue;
      im.apply(conn, -1.0);
      ++ripups;
      if (use_maze) {
        im.maze_route(conn);
        ++mazed;
      } else {
        im.route_connection(conn);
      }
    }
    obs_ripups.add(ripups);
    obs_maze.add(mazed);
  }
  return iterations;
}

const CongestionGrid& GlobalRouter::congestion() const { return impl_->grid; }

CongestionAnalysis GlobalRouter::analyze() const {
  return analyze_congestion(impl_->grid, impl_->options.analysis);
}

double GlobalRouter::routed_wirelength() const {
  double total = 0.0;
  for (const auto& conn : impl_->connections)
    total += std::abs(conn.x1 - conn.x0) + std::abs(conn.y1 - conn.y0);
  return total;
}

std::int64_t GlobalRouter::num_connections() const {
  return static_cast<std::int64_t>(impl_->connections.size());
}

bool GlobalRouter::budget_exhausted() const { return impl_->budget_exhausted; }

RouterOptions calibrated_router_options(const fpga::DeviceGrid& device,
                                        std::int64_t grid_width,
                                        std::int64_t grid_height) {
  RouterOptions options;
  options.grid_width = grid_width;
  options.grid_height = grid_height;
  // Sites per tile at the calibration point: 60 cols / 64 tiles = 0.9375.
  const double tile_sites =
      static_cast<double>(device.cols()) / static_cast<double>(grid_width);
  const double scale = tile_sites / 0.9375;
  options.short_capacity = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::lround(24.0 * scale)));
  options.global_capacity = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::lround(20.0 * scale)));
  (void)grid_height;
  return options;
}

}  // namespace mfa::route
