#include "route/congestion.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mfa::route {

CongestionGrid::CongestionGrid(const fpga::InterconnectTileGrid& tiles)
    : tiles_(&tiles) {
  const auto n = static_cast<size_t>(tiles.num_tiles());
  for (auto& per_class : demand_)
    for (auto& per_dir : per_class) per_dir.assign(n, 0.0);
}

void CongestionGrid::add_demand(WireClass w, Direction d, std::int64_t gx,
                                std::int64_t gy, double amount) {
  MFA_DCHECK_BOUNDS(gx, width()) << " add_demand tile x";
  MFA_DCHECK_BOUNDS(gy, height()) << " add_demand tile y";
  auto& cell = demand_[static_cast<size_t>(w)][static_cast<size_t>(d)]
                      [static_cast<size_t>(tiles_->tile_index(gx, gy))];
  cell += amount;
  // Demand is a count of routed crossings; ripping up more than was applied
  // indicates a router bookkeeping bug. Tolerance covers float accumulation.
  MFA_DCHECK_GE(cell, -1e-9)
      << " add_demand: negative demand at (" << gx << ", " << gy << ")";
}

double CongestionGrid::utilisation(WireClass w, Direction d, std::int64_t gx,
                                   std::int64_t gy) const {
  const auto cap = static_cast<double>(tiles_->capacity(w));
  return demand(w, d, gx, gy) / cap;
}

double CongestionGrid::max_utilisation(std::int64_t gx, std::int64_t gy) const {
  double best = 0.0;
  for (size_t w = 0; w < fpga::kNumWireClasses; ++w)
    for (size_t d = 0; d < fpga::kNumDirections; ++d)
      best = std::max(best, utilisation(static_cast<WireClass>(w),
                                        static_cast<Direction>(d), gx, gy));
  return best;
}

std::int64_t CongestionGrid::overused_count(double threshold) const {
  std::int64_t count = 0;
  for (size_t w = 0; w < fpga::kNumWireClasses; ++w)
    for (size_t d = 0; d < fpga::kNumDirections; ++d)
      for (std::int64_t gy = 0; gy < height(); ++gy)
        for (std::int64_t gx = 0; gx < width(); ++gx)
          count += (utilisation(static_cast<WireClass>(w),
                                static_cast<Direction>(d), gx, gy) > threshold);
  return count;
}

void CongestionGrid::clear() {
  for (auto& per_class : demand_)
    for (auto& per_dir : per_class)
      std::fill(per_dir.begin(), per_dir.end(), 0.0);
}

namespace {

/// Aligned-window level extraction for one utilisation field.
LevelMap extract_levels(const std::vector<double>& util, std::int64_t gw,
                        std::int64_t gh, double threshold,
                        std::int32_t max_level) {
  LevelMap out;
  out.level.assign(static_cast<size_t>(gw * gh), 0);
  // Summed-area table for O(1) window sums.
  std::vector<double> sat(static_cast<size_t>((gw + 1) * (gh + 1)), 0.0);
  for (std::int64_t y = 0; y < gh; ++y)
    for (std::int64_t x = 0; x < gw; ++x)
      sat[static_cast<size_t>((y + 1) * (gw + 1) + (x + 1))] =
          util[static_cast<size_t>(y * gw + x)] +
          sat[static_cast<size_t>(y * (gw + 1) + (x + 1))] +
          sat[static_cast<size_t>((y + 1) * (gw + 1) + x)] -
          sat[static_cast<size_t>(y * (gw + 1) + x)];
  const auto window_avg = [&](std::int64_t x0, std::int64_t y0,
                              std::int64_t s) {
    const std::int64_t x1 = std::min(gw, x0 + s);
    const std::int64_t y1 = std::min(gh, y0 + s);
    const double sum =
        sat[static_cast<size_t>(y1 * (gw + 1) + x1)] -
        sat[static_cast<size_t>(y0 * (gw + 1) + x1)] -
        sat[static_cast<size_t>(y1 * (gw + 1) + x0)] +
        sat[static_cast<size_t>(y0 * (gw + 1) + x0)];
    return sum / static_cast<double>((x1 - x0) * (y1 - y0));
  };

  for (std::int32_t k = 0; k <= max_level - 1; ++k) {
    const std::int64_t s = std::int64_t{1} << k;
    if (s > std::max(gw, gh)) break;
    bool any = false;
    for (std::int64_t y0 = 0; y0 < gh; y0 += s)
      for (std::int64_t x0 = 0; x0 < gw; x0 += s) {
        if (window_avg(x0, y0, s) < threshold) continue;
        any = true;
        const std::int32_t lvl = k + 1;
        for (std::int64_t y = y0; y < std::min(gh, y0 + s); ++y)
          for (std::int64_t x = x0; x < std::min(gw, x0 + s); ++x) {
            auto& cell = out.level[static_cast<size_t>(y * gw + x)];
            cell = std::max(cell, lvl);
          }
      }
    if (!any && k > 0) break;  // larger windows only get sparser
  }
  for (const auto lvl : out.level)
    out.design_level = std::max(out.design_level, lvl);
  return out;
}

}  // namespace

CongestionAnalysis analyze_congestion(const CongestionGrid& grid,
                                      const AnalysisOptions& options) {
  CongestionAnalysis out;
  out.gw = grid.width();
  out.gh = grid.height();
  out.max_level = options.max_level;
  const auto n = static_cast<size_t>(out.gw * out.gh);
  out.label.assign(n, 0.0f);
  std::vector<double> util(n);
  for (size_t w = 0; w < fpga::kNumWireClasses; ++w)
    for (size_t d = 0; d < fpga::kNumDirections; ++d) {
      for (std::int64_t gy = 0; gy < out.gh; ++gy)
        for (std::int64_t gx = 0; gx < out.gw; ++gx)
          util[static_cast<size_t>(gy * out.gw + gx)] = grid.utilisation(
              static_cast<WireClass>(w), static_cast<Direction>(d), gx, gy);
      out.levels[w][d] = extract_levels(util, out.gw, out.gh,
                                        options.threshold, options.max_level);
      for (size_t i = 0; i < n; ++i)
        out.label[i] = std::max(
            out.label[i], static_cast<float>(out.levels[w][d].level[i]));
    }
  return out;
}

}  // namespace mfa::route
