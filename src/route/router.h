// Global router over the interconnect tile grid.
//
// Stands in for the Vivado initial + detailed router of the contest flow
// (see DESIGN.md, substitutions). Nets are decomposed into two-pin
// connections by a per-net minimum spanning tree; each connection is routed
// with the cheapest of four pattern candidates (L-shapes and Z-shapes) under
// a congestion-aware cost. The detailed phase is PathFinder-style negotiated
// rip-up-and-reroute whose iteration count is the S_DR proxy: more residual
// congestion after placement means more iterations, exactly the signal
// Eq. 2 extracts from Vivado.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fpga/device.h"
#include "netlist/design.h"
#include "route/congestion.h"

namespace mfa::route {

struct RouterOptions {
  std::int64_t grid_width = 64;
  std::int64_t grid_height = 64;
  // Capacities calibrated so a converged global placement of the full-scale
  // MLCAD suite sits just below the congestion threshold at its 90th demand
  // percentile: hotspots and under-spread placements cross it, the
  // background does not (see DESIGN.md scale note).
  std::int64_t short_capacity = 24;
  std::int64_t global_capacity = 20;
  /// Connections longer than this many tiles (Manhattan) use global wires.
  std::int64_t global_wire_threshold = 8;
  /// Cost multiplier for routing through over-capacity tiles.
  double overflow_penalty = 8.0;
  /// History cost added per negotiation round to overused resources.
  double history_increment = 1.0;
  std::int64_t max_detailed_iterations = 24;
  /// Wall-clock budget for detailed_route() (0 = unlimited). When it runs
  /// out, negotiation stops early: the grid keeps the best routing found so
  /// far and budget_exhausted() reports true.
  double time_budget_seconds = 0.0;
  AnalysisOptions analysis;
};

/// Router options with capacities scaled to the tile size: wider tiles carry
/// proportionally more wires. Calibrated against the default experiment
/// point (60-column device, 64-tile grid -> short 24 / global 20).
RouterOptions calibrated_router_options(const fpga::DeviceGrid& device,
                                        std::int64_t grid_width,
                                        std::int64_t grid_height);

class GlobalRouter {
 public:
  GlobalRouter(const netlist::Design& design, const fpga::DeviceGrid& device,
               RouterOptions options = {});
  ~GlobalRouter();
  GlobalRouter(const GlobalRouter&) = delete;
  GlobalRouter& operator=(const GlobalRouter&) = delete;

  /// Builds two-pin connections from cell coordinates and routes each one
  /// congestion-aware (the "initial router"). Resets previous state.
  void initial_route(const std::vector<double>& cell_x,
                     const std::vector<double>& cell_y);

  /// Negotiated rip-up-and-reroute until no resource is over capacity or the
  /// iteration cap is hit. Returns the number of iterations used (>= 1 when
  /// any work was needed, 0 when the initial route was already clean).
  std::int64_t detailed_route();

  const CongestionGrid& congestion() const;
  CongestionAnalysis analyze() const;

  /// Total Manhattan length of all routed connections, in tiles.
  double routed_wirelength() const;
  std::int64_t num_connections() const;

  /// True when the last detailed_route() stopped on its wall-clock budget
  /// rather than convergence; the congestion grid holds the partial result.
  bool budget_exhausted() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mfa::route
