// MLCAD 2023 routability scoring (paper §II-B, Eqs. 1-3).
#pragma once

#include <cstdint>

#include "route/congestion.h"

namespace mfa::route::score {

/// Eq. 1: S_IR = 1 + sum_d [ max(0, L_short,d - 3)^2 + max(0, L_global,d - 3)^2 ].
double s_ir(const CongestionAnalysis& analysis);

/// Eq. 2 input: the contest derives S_DR from the Vivado detailed-router
/// iteration count. Our proxy maps the negotiation iterations of
/// GlobalRouter::detailed_route through an affine floor so scores land in
/// the contest's observed range (Table II: 6-15).
double s_dr(std::int64_t detailed_iterations);

/// Eq. 2: S_R = S_IR * S_DR.
inline double s_r(double s_ir_value, double s_dr_value) {
  return s_ir_value * s_dr_value;
}

/// Proxy for the Vivado place-and-route runtime T_P&R in hours: grows with
/// residual congestion and design size, matching the Table II correlation
/// between congested designs and long P&R times.
double t_pr_hours(double s_ir_value, double s_dr_value,
                  double routed_wirelength, std::int64_t num_connections);

/// Eq. 3: S_score = [1 + max(0, T_macro - 10)] * S_R * T_P&R
/// with T_macro in minutes and T_P&R in hours.
double s_score(double t_macro_minutes, double s_r_value, double t_pr_hours);

}  // namespace mfa::route::score
