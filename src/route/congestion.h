// Congestion bookkeeping over the interconnect tile grid and Vivado-style
// congestion-level extraction.
//
// Demand is tracked per (wire class, direction, tile). The congestion *level*
// of a tile follows the Vivado report convention the MLCAD 2023 contest
// scores against: level k (k >= 1) means the tile lies in an aligned
// 2^(k-1) x 2^(k-1) window whose average utilisation exceeds a threshold —
// i.e. higher levels indicate *regionally* saturated routing, which is
// exactly the long-range structure the paper's transformer layers target.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fpga/tile_grid.h"

namespace mfa::route {

using fpga::Direction;
using fpga::WireClass;

/// Mutable demand state for one routing pass.
class CongestionGrid {
 public:
  explicit CongestionGrid(const fpga::InterconnectTileGrid& tiles);

  const fpga::InterconnectTileGrid& tiles() const { return *tiles_; }
  std::int64_t width() const { return tiles_->width(); }
  std::int64_t height() const { return tiles_->height(); }

  double demand(WireClass w, Direction d, std::int64_t gx,
                std::int64_t gy) const {
    return demand_[static_cast<size_t>(w)][static_cast<size_t>(d)]
                  [static_cast<size_t>(tiles_->tile_index(gx, gy))];
  }
  void add_demand(WireClass w, Direction d, std::int64_t gx, std::int64_t gy,
                  double amount);

  /// demand / capacity for one (wire class, direction, tile).
  double utilisation(WireClass w, Direction d, std::int64_t gx,
                     std::int64_t gy) const;

  /// Worst utilisation over all classes/directions of one tile.
  double max_utilisation(std::int64_t gx, std::int64_t gy) const;

  /// Number of (class, direction, tile) entries above `threshold`.
  std::int64_t overused_count(double threshold = 1.0) const;

  void clear();

 private:
  const fpga::InterconnectTileGrid* tiles_;
  std::array<std::array<std::vector<double>, fpga::kNumDirections>,
             fpga::kNumWireClasses>
      demand_;
};

/// Result of level extraction for one (wire class, direction).
struct LevelMap {
  std::vector<std::int32_t> level;  // per tile, 0 .. max_level
  std::int32_t design_level = 0;    // max over tiles (the contest's L_{w,d})
};

struct CongestionAnalysis {
  /// levels[w][d] per wire class / direction.
  std::array<std::array<LevelMap, fpga::kNumDirections>, fpga::kNumWireClasses>
      levels;
  /// Per-tile combined level: max over classes and directions. This is the
  /// model's training label (floats holding integral levels).
  std::vector<float> label;
  std::int64_t gw = 0, gh = 0;
  std::int32_t max_level = 0;

  std::int32_t design_level(WireClass w, Direction d) const {
    return levels[static_cast<size_t>(w)][static_cast<size_t>(d)].design_level;
  }
};

struct AnalysisOptions {
  /// Window-average utilisation that counts as congested.
  double threshold = 0.9;
  /// Cap on reported levels (the label classifier uses max_level+1 classes).
  std::int32_t max_level = 7;
};

/// Extracts Vivado-style windowed congestion levels from the demand state.
CongestionAnalysis analyze_congestion(const CongestionGrid& grid,
                                      const AnalysisOptions& options = {});

}  // namespace mfa::route
