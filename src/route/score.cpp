#include "route/score.h"

#include <algorithm>
#include <cmath>

namespace mfa::route::score {

double s_ir(const CongestionAnalysis& analysis) {
  double total = 1.0;
  for (size_t d = 0; d < fpga::kNumDirections; ++d) {
    const double ls = analysis.design_level(WireClass::Short,
                                            static_cast<Direction>(d));
    const double lg = analysis.design_level(WireClass::Global,
                                            static_cast<Direction>(d));
    const double ps = std::max(0.0, ls - 3.0);
    const double pg = std::max(0.0, lg - 3.0);
    total += ps * ps + pg * pg;
  }
  return total;
}

double s_dr(std::int64_t detailed_iterations) {
  // Vivado's detailed router takes several iterations even on clean
  // placements; the +5 floor and the 1/2.5 compression align our negotiation
  // count (0..24) with the contest's observed S_DR range (roughly 6..15).
  return 5.0 + std::ceil(static_cast<double>(detailed_iterations) / 2.5);
}

double t_pr_hours(double s_ir_value, double s_dr_value,
                  double routed_wirelength, std::int64_t num_connections) {
  const double size_term =
      1.5e-6 * routed_wirelength + 2.0e-7 * static_cast<double>(num_connections);
  return 0.18 + 0.015 * s_dr_value + 0.008 * s_ir_value + size_term;
}

double s_score(double t_macro_minutes, double s_r_value, double t_pr) {
  return (1.0 + std::max(0.0, t_macro_minutes - 10.0)) * s_r_value * t_pr;
}

}  // namespace mfa::route::score
