// Analytical global placer (DREAMPlaceFPGA-style flow at library scale,
// paper §IV / Fig. 6).
//
// Minimises net wirelength under per-resource bin-density constraints with a
// region-tension term for region-constrained instances, alternating two
// phases in the style of SimPL / lookahead legalisation:
//   * wirelength descent: each object is pulled toward the weighted centroid
//     of each incident net (star model of HPWL), with a Poisson-potential
//     density force (ePlace-style) as gentle spreading pressure and a region
//     tension force for region-constrained objects (the "region tension
//     function" of §IV);
//   * lookahead spreading: over-capacity bins evict excess area to the
//     nearest bins with free capacity (LUT/FF), and macro objects are
//     re-distributed in the column domain of their site type — which also
//     keeps every macro x-aligned with a legal column, as cascades require.
// The loop runs until the Fig. 6 overflow gate is met
// (Overflow < 0.25 for DSP/BRAM/URAM, < 0.15 for LUT/FF).
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "place/problem.h"

namespace mfa::place {

struct PlacerOptions {
  std::int64_t bins_x = 32;
  std::int64_t bins_y = 32;
  std::int64_t max_iterations = 400;
  double step = 0.8;             // base move step, in sites
  double density_weight = 0.4;   // initial density-force weight
  double density_growth = 1.01;  // per-iteration annealing factor
  double region_weight = 3.0;    // region tension weight
  double noise = 0.02;           // per-iteration jitter (sample diversity)
  /// Lookahead-spreading cadence (iterations between spreading passes).
  std::int64_t spread_interval = 4;
  /// Fig. 6 overflow thresholds.
  double macro_overflow_target = 0.25;
  double cell_overflow_target = 0.15;
  std::uint64_t seed = 1;
  /// Wall-clock budget across all iterate() calls (0 = unlimited). When it
  /// runs out mid-call, iterate() finishes a final spreading pass, returns
  /// the iterations actually run, and budget_exhausted() reports true — the
  /// placement so far is the best partial result.
  double time_budget_seconds = 0.0;
};

class GlobalPlacer {
 public:
  GlobalPlacer(PlacementProblem& problem, PlacerOptions options);

  /// Spreads objects randomly across columns compatible with their resource
  /// (region-constrained objects start inside their region).
  void init_random();

  /// Runs `n` gradient iterations; returns the iteration count actually run.
  std::int64_t iterate(std::int64_t n);

  /// Runs iterations until the Fig. 6 overflow gate passes or the iteration
  /// budget is exhausted. Returns true if the gate was met.
  bool run_until_overflow_target();

  /// Current overflow per resource: sum over bins of max(0, usage - capacity)
  /// normalised by total usage of that resource (0 when nothing overflows).
  std::array<double, fpga::kNumResources> overflow() const;

  /// Total star-model wirelength (for monitoring/tests).
  double wirelength() const;

  /// True when every resource meets its Fig. 6 threshold.
  bool overflow_target_met() const;

  Placement& placement() { return placement_; }
  const Placement& placement() const { return placement_; }
  const PlacerOptions& options() const { return options_; }
  /// Total iterations executed so far across all iterate() calls.
  std::int64_t total_iterations() const { return global_iter_; }
  /// True once the wall-clock budget was exhausted (sticky; the placement is
  /// the best partial result at that point).
  bool budget_exhausted() const { return budget_exhausted_; }

 private:
  void compute_density_maps() const;
  void solve_potentials();
  void clamp_object(std::int64_t oi);
  /// Lookahead spreading: bin eviction for LUT/FF, column-domain
  /// redistribution (and x-snap) for macro resources.
  void spread_cells();
  void spread_macros();

  PlacementProblem* problem_;
  PlacerOptions options_;
  Placement placement_;
  Rng rng_;
  double density_weight_;
  double noise_scale_ = 1.0;  // decays once the overflow gate is met
  std::int64_t global_iter_ = 0;
  double budget_spent_seconds_ = 0.0;  // accumulated across iterate() calls
  bool budget_exhausted_ = false;
  // Per-resource bin maps. `usage_` is a cache of the density map for the
  // CURRENT placement_: it is recomputed from scratch by
  // compute_density_maps() and never carries information across calls, so
  // const accessors (overflow()) may refresh it without observable state
  // change — hence mutable.
  mutable std::array<std::vector<double>, fpga::kNumResources> usage_;
  std::array<std::vector<double>, fpga::kNumResources> capacity_;
  // Poisson potential per resource (warm-started across iterations).
  std::array<std::vector<double>, fpga::kNumResources> potential_;
  double bw_ = 1.0, bh_ = 1.0;  // bin extents in sites
};

}  // namespace mfa::place
