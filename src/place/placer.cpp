#include "place/placer.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace mfa::place {

using fpga::Resource;

GlobalPlacer::GlobalPlacer(PlacementProblem& problem, PlacerOptions options)
    : problem_(&problem),
      options_(options),
      rng_(options.seed),
      density_weight_(options.density_weight) {
  MFA_CHECK(options_.bins_x > 0 && options_.bins_y > 0)
      << " placer bin grid must be non-empty, got " << options_.bins_x << "x"
      << options_.bins_y;
  // Every net pin must reference a valid object; validated once here so the
  // hot force loops can index placement_ unchecked.
  const auto nobj = static_cast<std::int64_t>(problem.objects.size());
  for (const auto& pins : problem.net_pins)
    for (const auto& p : pins)
      MFA_CHECK_BOUNDS(p.obj, nobj) << " net pin object index";
  const auto& device = problem.device();
  bw_ = static_cast<double>(device.cols()) /
        static_cast<double>(options_.bins_x);
  bh_ = static_cast<double>(device.rows()) /
        static_cast<double>(options_.bins_y);
  const auto nbins = static_cast<size_t>(options_.bins_x * options_.bins_y);
  for (size_t r = 0; r < fpga::kNumResources; ++r) {
    capacity_[r].assign(nbins, 0.0);
    usage_[r].assign(nbins, 0.0);
    potential_[r].assign(nbins, 0.0);
  }
  // Per-resource capacity maps from the columnar site pattern.
  for (std::int64_t col = 0; col < device.cols(); ++col) {
    const auto st = device.column_type(col);
    const auto bx = std::min<std::int64_t>(
        options_.bins_x - 1,
        static_cast<std::int64_t>((static_cast<double>(col) + 0.5) / bw_));
    for (std::int64_t row = 0; row < device.rows(); ++row) {
      const auto by = std::min<std::int64_t>(
          options_.bins_y - 1,
          static_cast<std::int64_t>((static_cast<double>(row) + 0.5) / bh_));
      for (size_t r = 0; r < fpga::kNumResources; ++r)
        capacity_[r][static_cast<size_t>(by * options_.bins_x + bx)] +=
            static_cast<double>(
                fpga::site_capacity(st, static_cast<Resource>(r)));
    }
  }
  placement_.x.assign(problem.objects.size(), 0.0);
  placement_.y.assign(problem.objects.size(), 0.0);
}

void GlobalPlacer::init_random() {
  const auto& device = problem_->device();
  for (size_t oi = 0; oi < problem_->objects.size(); ++oi) {
    const auto& obj = problem_->objects[oi];
    if (obj.region >= 0) {
      const auto& region =
          problem_->design().regions[static_cast<size_t>(obj.region)];
      placement_.x[oi] = rng_.uniform(static_cast<double>(region.col_lo) + 0.5,
                                      static_cast<double>(region.col_hi) + 0.5);
      placement_.y[oi] = rng_.uniform(static_cast<double>(region.row_lo) + 0.5,
                                      static_cast<double>(region.row_hi) + 0.5);
    } else {
      // Start in a random column of the right type so macro columns are used.
      const auto& cols =
          device.columns_of(fpga::site_for_resource(obj.resource));
      const auto col = cols[static_cast<size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(cols.size()) - 1))];
      placement_.x[oi] = static_cast<double>(col) + rng_.uniform(0.0, 1.0);
      placement_.y[oi] =
          rng_.uniform(0.5, static_cast<double>(device.rows()) - obj.height);
    }
    clamp_object(static_cast<std::int64_t>(oi));
  }
}

void GlobalPlacer::clamp_object(std::int64_t oi) {
  const auto& device = problem_->device();
  const auto& obj = problem_->objects[static_cast<size_t>(oi)];
  placement_.x[static_cast<size_t>(oi)] =
      std::clamp(placement_.x[static_cast<size_t>(oi)], 0.25,
                 static_cast<double>(device.cols()) - 0.25);
  placement_.y[static_cast<size_t>(oi)] =
      std::clamp(placement_.y[static_cast<size_t>(oi)], 0.25,
                 static_cast<double>(device.rows()) - obj.height + 0.75);
}

void GlobalPlacer::compute_density_maps() const {
  for (size_t r = 0; r < fpga::kNumResources; ++r)
    std::fill(usage_[r].begin(), usage_[r].end(), 0.0);
  for (size_t oi = 0; oi < problem_->objects.size(); ++oi) {
    const auto& obj = problem_->objects[oi];
    // Smear cascade area across its vertical extent.
    const std::int64_t slices =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(obj.height));
    const double slice_area = obj.area / static_cast<double>(slices);
    for (std::int64_t s = 0; s < slices; ++s) {
      const double y = placement_.y[oi] + static_cast<double>(s);
      const auto bx = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(placement_.x[oi] / bw_), 0,
          options_.bins_x - 1);
      const auto by = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(y / bh_), 0, options_.bins_y - 1);
      usage_[static_cast<size_t>(obj.resource)]
            [static_cast<size_t>(by * options_.bins_x + bx)] += slice_area;
    }
  }
}

void GlobalPlacer::solve_potentials() {
  // For each resource, solve  laplacian(phi) = -(usage - fill * capacity)
  // with a few Jacobi sweeps, warm-started from the previous iteration's
  // solution. The resulting -grad(phi) is a long-range spreading force that
  // pushes mass from over-filled toward under-filled capacity.
  const auto bx = options_.bins_x;
  const auto by = options_.bins_y;
  const auto nbins = static_cast<size_t>(bx * by);
  std::vector<double> next(nbins);
  for (size_t r = 0; r < fpga::kNumResources; ++r) {
    double total_usage = 0.0, total_cap = 0.0;
    for (size_t b = 0; b < nbins; ++b) {
      total_usage += usage_[r][b];
      total_cap += capacity_[r][b];
    }
    if (total_usage <= 0.0 || total_cap <= 0.0) continue;
    const double fill = total_usage / total_cap;
    auto& phi = potential_[r];
    // Normalise charge by average bin usage so force scales are comparable
    // across resources of very different magnitudes.
    const double norm =
        static_cast<double>(nbins) / std::max(1e-12, total_usage);
    for (std::int64_t sweep = 0; sweep < 30; ++sweep) {
      for (std::int64_t y = 0; y < by; ++y)
        for (std::int64_t x = 0; x < bx; ++x) {
          const auto i = static_cast<size_t>(y * bx + x);
          const double n = phi[static_cast<size_t>(
              std::min(by - 1, y + 1) * bx + x)];
          const double s =
              phi[static_cast<size_t>(std::max<std::int64_t>(0, y - 1) * bx + x)];
          const double e = phi[static_cast<size_t>(
              y * bx + std::min(bx - 1, x + 1))];
          const double w = phi[static_cast<size_t>(
              y * bx + std::max<std::int64_t>(0, x - 1))];
          const double charge = (usage_[r][i] - fill * capacity_[r][i]) * norm;
          next[i] = 0.25 * (n + s + e + w + charge);
        }
      std::swap(phi, next);
    }
  }
}

std::int64_t GlobalPlacer::iterate(std::int64_t n) {
  using Clock = std::chrono::steady_clock;
  MFA_TRACE_SCOPE("placer.iterate");
  static obs::Counter obs_iters = obs::counter("placer.iterations");
  static obs::Histogram obs_overflow =
      obs::histogram("placer.overflow_permille");
  const auto nobj = problem_->num_objects();
  std::vector<double> fx(static_cast<size_t>(nobj));
  std::vector<double> fy(static_cast<size_t>(nobj));

  const auto t0 = Clock::now();
  const auto budget_spent = [&] {
    if (MFA_FAULT_POINT("place.budget")) return true;
    if (options_.time_budget_seconds <= 0.0) return false;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return budget_spent_seconds_ + elapsed > options_.time_budget_seconds;
  };

  std::int64_t done = 0;
  for (std::int64_t it = 0; it < n; ++it) {
    if (budget_exhausted_ || budget_spent()) {
      budget_exhausted_ = true;
      // Close with a spreading pass so the partial result keeps macros
      // column-aligned and density roughly legal.
      if (done > 0) {
        spread_macros();
        spread_cells();
      }
      break;
    }
    std::fill(fx.begin(), fx.end(), 0.0);
    std::fill(fy.begin(), fy.end(), 0.0);

    // ---- wirelength force (star model) ----
    for (size_t ni = 0; ni < problem_->net_pins.size(); ++ni) {
      const auto& pins = problem_->net_pins[ni];
      const double w =
          problem_->net_weights[ni] / static_cast<double>(pins.size());
      double cx = 0.0, cy = 0.0;
      for (const auto& p : pins) {
        cx += placement_.x[static_cast<size_t>(p.obj)];
        cy += placement_.y[static_cast<size_t>(p.obj)] + p.dy;
      }
      cx /= static_cast<double>(pins.size());
      cy /= static_cast<double>(pins.size());
      for (const auto& p : pins) {
        fx[static_cast<size_t>(p.obj)] +=
            w * (cx - placement_.x[static_cast<size_t>(p.obj)]);
        fy[static_cast<size_t>(p.obj)] +=
            w * (cy - placement_.y[static_cast<size_t>(p.obj)] - p.dy);
      }
    }

    // ---- electrostatic density force ----
    compute_density_maps();
    solve_potentials();
    for (std::int64_t oi = 0; oi < nobj; ++oi) {
      const auto& obj = problem_->objects[static_cast<size_t>(oi)];
      const auto& phi = potential_[static_cast<size_t>(obj.resource)];
      const auto bxi = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(placement_.x[static_cast<size_t>(oi)] / bw_),
          0, options_.bins_x - 1);
      const auto byi = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(placement_.y[static_cast<size_t>(oi)] / bh_),
          0, options_.bins_y - 1);
      const auto at = [&](std::int64_t x, std::int64_t y) {
        x = std::clamp<std::int64_t>(x, 0, options_.bins_x - 1);
        y = std::clamp<std::int64_t>(y, 0, options_.bins_y - 1);
        return phi[static_cast<size_t>(y * options_.bins_x + x)];
      };
      const double gx = 0.5 * (at(bxi + 1, byi) - at(bxi - 1, byi));
      const double gy = 0.5 * (at(bxi, byi + 1) - at(bxi, byi - 1));
      fx[static_cast<size_t>(oi)] -= density_weight_ * gx;
      fy[static_cast<size_t>(oi)] -= density_weight_ * gy;
    }

    // ---- region tension ----
    for (std::int64_t oi = 0; oi < nobj; ++oi) {
      const auto& obj = problem_->objects[static_cast<size_t>(oi)];
      if (obj.region < 0) continue;
      const auto& region =
          problem_->design().regions[static_cast<size_t>(obj.region)];
      const double x = placement_.x[static_cast<size_t>(oi)];
      const double y = placement_.y[static_cast<size_t>(oi)];
      const double tx = std::clamp(x, static_cast<double>(region.col_lo) + 0.25,
                                   static_cast<double>(region.col_hi) + 0.75);
      const double ty = std::clamp(y, static_cast<double>(region.row_lo) + 0.25,
                                   static_cast<double>(region.row_hi) + 0.75);
      fx[static_cast<size_t>(oi)] += options_.region_weight * (tx - x);
      fy[static_cast<size_t>(oi)] += options_.region_weight * (ty - y);
    }

    // ---- update ----
    for (std::int64_t oi = 0; oi < nobj; ++oi) {
      const double nx = noise_scale_ * options_.noise * rng_.normal();
      const double ny = noise_scale_ * options_.noise * rng_.normal();
      // Limit per-iteration displacement for stability.
      const double dx = std::clamp(options_.step * fx[static_cast<size_t>(oi)],
                                   -2.0 * bw_, 2.0 * bw_);
      const double dy = std::clamp(options_.step * fy[static_cast<size_t>(oi)],
                                   -2.0 * bh_, 2.0 * bh_);
      placement_.x[static_cast<size_t>(oi)] += dx + nx;
      placement_.y[static_cast<size_t>(oi)] += dy + ny;
      clamp_object(oi);
    }
    // Anneal the spreading force only while the placement is still
    // over-capacity; once the Fig. 6 gate is met, further strengthening
    // only perturbs a converged placement (the lookahead spreading passes
    // keep density legal regardless).
    if (overflow_target_met()) {
      density_weight_ = std::max(density_weight_ * 0.97,
                                 0.25 * options_.density_weight);
      noise_scale_ *= 0.95;
    } else {
      density_weight_ =
          std::min(density_weight_ * options_.density_growth,
                   4.0 * options_.density_weight);
    }

    // ---- lookahead spreading ----
    ++global_iter_;
    ++done;
    obs_iters.add();
    const bool last = (it == n - 1);
    if (last || global_iter_ % options_.spread_interval == 0) {
      MFA_TRACE_SCOPE("placer.spread");
      spread_macros();
      spread_cells();
    }
    if (last) {
      // One histogram sample per iterate() call, not per iteration: the
      // worst per-resource overflow in integer permille (log2 buckets make
      // 0 / <1% / coarse-over-capacity regimes distinguishable).
      const auto of = overflow();
      const double worst = *std::max_element(of.begin(), of.end());
      obs_overflow.record(static_cast<std::int64_t>(worst * 1000.0));
    }
  }
  budget_spent_seconds_ +=
      std::chrono::duration<double>(Clock::now() - t0).count();
  return done;
}

void GlobalPlacer::spread_macros() {
  const auto& device = problem_->device();
  // One pass per macro resource: assign objects to columns of their type,
  // then push excess column load (in site rows) to the nearest free column.
  for (const auto res :
       {Resource::Dsp, Resource::Bram, Resource::Uram}) {
    const auto& cols = device.columns_of(fpga::site_for_resource(res));
    if (cols.empty()) continue;
    const auto ncols = static_cast<std::int64_t>(cols.size());
    const double rows = static_cast<double>(device.rows());

    // Nearest column index for an x coordinate (cols is sorted).
    const auto nearest = [&](double x, std::int64_t lo, std::int64_t hi) {
      std::int64_t best = lo;
      double bestd = 1e30;
      for (std::int64_t c = lo; c <= hi; ++c) {
        const double d =
            std::fabs(static_cast<double>(cols[static_cast<size_t>(c)]) + 0.5 - x);
        if (d < bestd) {
          bestd = d;
          best = c;
        }
      }
      return best;
    };
    // Column index range admissible for an object (region-constrained
    // objects only see columns inside their region).
    const auto col_range = [&](const MoveObject& obj, std::int64_t& lo,
                               std::int64_t& hi) {
      lo = 0;
      hi = ncols - 1;
      if (obj.region < 0) return true;
      const auto& region =
          problem_->design().regions[static_cast<size_t>(obj.region)];
      while (lo < ncols && cols[static_cast<size_t>(lo)] < region.col_lo) ++lo;
      while (hi >= 0 && cols[static_cast<size_t>(hi)] > region.col_hi) --hi;
      return lo <= hi;
    };

    std::vector<double> load(static_cast<size_t>(ncols), 0.0);
    std::vector<std::vector<std::int64_t>> members(static_cast<size_t>(ncols));
    for (std::int64_t oi = 0; oi < problem_->num_objects(); ++oi) {
      const auto& obj = problem_->objects[static_cast<size_t>(oi)];
      if (obj.resource != res) continue;
      std::int64_t lo, hi;
      if (!col_range(obj, lo, hi)) continue;  // unsatisfiable region: skip
      const auto c = nearest(placement_.x[static_cast<size_t>(oi)], lo, hi);
      load[static_cast<size_t>(c)] += obj.area;
      members[static_cast<size_t>(c)].push_back(oi);
      placement_.x[static_cast<size_t>(oi)] =
          static_cast<double>(cols[static_cast<size_t>(c)]) + 0.5;
    }
    // Relieve overloaded columns: move the member farthest from the column
    // to the nearest column (same admissible range) with free capacity.
    for (std::int64_t c = 0; c < ncols; ++c) {
      auto& mem = members[static_cast<size_t>(c)];
      // Stable order: smallest objects leave first (cheapest to move).
      std::sort(mem.begin(), mem.end(), [&](std::int64_t a, std::int64_t b) {
        return problem_->objects[static_cast<size_t>(a)].area <
               problem_->objects[static_cast<size_t>(b)].area;
      });
      size_t next_out = 0;
      while (load[static_cast<size_t>(c)] > rows && next_out < mem.size()) {
        const auto oi = mem[next_out++];
        const auto& obj = problem_->objects[static_cast<size_t>(oi)];
        std::int64_t lo, hi;
        if (!col_range(obj, lo, hi)) continue;
        // Find nearest admissible column with room.
        std::int64_t best = -1;
        for (std::int64_t radius = 1; radius < ncols; ++radius) {
          for (const std::int64_t cand : {c - radius, c + radius}) {
            if (cand < lo || cand > hi) continue;
            if (load[static_cast<size_t>(cand)] + obj.area <= rows) {
              best = cand;
              break;
            }
          }
          if (best >= 0) break;
          if (c - radius < lo && c + radius > hi) break;
        }
        if (best < 0) break;  // nowhere to go; leave overloaded
        load[static_cast<size_t>(c)] -= obj.area;
        load[static_cast<size_t>(best)] += obj.area;
        placement_.x[static_cast<size_t>(oi)] =
            static_cast<double>(cols[static_cast<size_t>(best)]) + 0.5;
        members[static_cast<size_t>(best)].push_back(oi);
        mem[next_out - 1] = -1;  // moved away
      }
    }
    // 1-D vertical legalisation within each column (Abacus-style): keep the
    // y-order, pack without overlap, shift back if the column bottom-out
    // overflows. Column load <= rows, so a feasible packing always exists.
    for (std::int64_t c = 0; c < ncols; ++c) {
      auto& mem = members[static_cast<size_t>(c)];
      mem.erase(std::remove(mem.begin(), mem.end(), -1), mem.end());
      if (mem.empty()) continue;
      std::sort(mem.begin(), mem.end(), [&](std::int64_t a, std::int64_t b) {
        return placement_.y[static_cast<size_t>(a)] <
               placement_.y[static_cast<size_t>(b)];
      });
      double cursor = 0.0;
      for (const auto oi : mem) {
        const auto& obj = problem_->objects[static_cast<size_t>(oi)];
        double want = placement_.y[static_cast<size_t>(oi)] - 0.5;
        if (obj.region >= 0) {
          const auto& region =
              problem_->design().regions[static_cast<size_t>(obj.region)];
          want = std::clamp(want, static_cast<double>(region.row_lo),
                            static_cast<double>(region.row_hi) - obj.height + 1.0);
        }
        cursor = std::max(cursor, want);
        placement_.y[static_cast<size_t>(oi)] = cursor + 0.5;
        cursor += obj.height;
      }
      // If the packing ran past the top, shift the tail back down.
      double over = cursor - rows;
      if (over > 0.0) {
        for (auto it = mem.rbegin(); it != mem.rend() && over > 0.0; ++it) {
          const auto oi = *it;
          const auto& obj = problem_->objects[static_cast<size_t>(oi)];
          double lo_limit = 0.5;
          if (obj.region >= 0) {
            const auto& region =
                problem_->design().regions[static_cast<size_t>(obj.region)];
            lo_limit = static_cast<double>(region.row_lo) + 0.5;
          }
          const double y = placement_.y[static_cast<size_t>(oi)];
          const double ny = std::max(lo_limit, y - over);
          placement_.y[static_cast<size_t>(oi)] = ny;
          over -= (y - ny);
          over = std::max(over, 0.0);
        }
        // Re-pack upward once more to remove overlaps introduced by shifts.
        double cur = 0.0;
        for (const auto oi : mem) {
          const auto& obj = problem_->objects[static_cast<size_t>(oi)];
          const double want = placement_.y[static_cast<size_t>(oi)] - 0.5;
          cur = std::max(cur, want);
          placement_.y[static_cast<size_t>(oi)] = cur + 0.5;
          cur += obj.height;
        }
      }
    }
  }
}

void GlobalPlacer::spread_cells() {
  const auto bx = options_.bins_x;
  const auto by = options_.bins_y;
  const auto nbins = static_cast<size_t>(bx * by);
  for (const auto res : {Resource::Lut, Resource::Ff}) {
    const auto r = static_cast<size_t>(res);
    std::vector<double> usage(nbins, 0.0);
    std::vector<std::vector<std::int64_t>> members(nbins);
    for (std::int64_t oi = 0; oi < problem_->num_objects(); ++oi) {
      const auto& obj = problem_->objects[static_cast<size_t>(oi)];
      if (obj.resource != res) continue;
      const auto bxi = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(placement_.x[static_cast<size_t>(oi)] / bw_),
          0, bx - 1);
      const auto byi = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(placement_.y[static_cast<size_t>(oi)] / bh_),
          0, by - 1);
      MFA_DCHECK_BOUNDS(byi * bx + bxi, static_cast<std::int64_t>(nbins))
          << " spread_cells bin index for object " << oi;
      const auto b = static_cast<size_t>(byi * bx + bxi);
      usage[b] += obj.area;
      members[b].push_back(oi);
    }
    // Evict overflow from over-capacity bins into a homeless list.
    std::vector<std::int64_t> homeless;
    for (size_t b = 0; b < nbins; ++b) {
      if (usage[b] <= capacity_[r][b]) continue;
      auto& mem = members[b];
      // Smallest area out first: inflated (congestion-hot) objects keep
      // their spot and the surrounding small cells spill outward gradually,
      // which is exactly the spreading Eq. 11 is meant to induce.
      std::sort(mem.begin(), mem.end(), [&](std::int64_t a, std::int64_t bb) {
        return problem_->objects[static_cast<size_t>(a)].area <
               problem_->objects[static_cast<size_t>(bb)].area;
      });
      size_t next_out = 0;
      while (usage[b] > capacity_[r][b] && next_out < mem.size()) {
        const auto oi = mem[next_out++];
        usage[b] -= problem_->objects[static_cast<size_t>(oi)].area;
        homeless.push_back(oi);
      }
    }
    // Re-home each evicted object in the nearest bin with free capacity.
    for (const auto oi : homeless) {
      const auto& obj = problem_->objects[static_cast<size_t>(oi)];
      const netlist::RegionConstraint* region =
          obj.region >= 0
              ? &problem_->design().regions[static_cast<size_t>(obj.region)]
              : nullptr;
      const auto bxi = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(placement_.x[static_cast<size_t>(oi)] / bw_),
          0, bx - 1);
      const auto byi = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(placement_.y[static_cast<size_t>(oi)] / bh_),
          0, by - 1);
      const auto bin_ok = [&](std::int64_t x, std::int64_t y) {
        if (x < 0 || x >= bx || y < 0 || y >= by) return false;
        if (region) {
          // Bin centre must lie inside the region rectangle.
          const double cxs = (static_cast<double>(x) + 0.5) * bw_;
          const double cys = (static_cast<double>(y) + 0.5) * bh_;
          if (!region->contains(cxs, cys)) return false;
        }
        MFA_DCHECK_BOUNDS(y * bx + x, static_cast<std::int64_t>(nbins))
            << " spread_cells candidate bin";
        const auto b = static_cast<size_t>(y * bx + x);
        return usage[b] + obj.area <= capacity_[r][b];
      };
      std::int64_t fx = -1, fy = -1;
      for (std::int64_t radius = 0; radius < bx + by && fx < 0; ++radius) {
        for (std::int64_t dx = -radius; dx <= radius && fx < 0; ++dx) {
          for (const std::int64_t dy : {-radius + std::abs(dx),
                                        radius - std::abs(dx)}) {
            if (bin_ok(bxi + dx, byi + dy)) {
              fx = bxi + dx;
              fy = byi + dy;
              break;
            }
          }
        }
      }
      if (fx < 0) continue;  // nowhere legal; leave where it was
      MFA_DCHECK_BOUNDS(fy * bx + fx, static_cast<std::int64_t>(nbins))
          << " spread_cells re-home bin";
      const auto b = static_cast<size_t>(fy * bx + fx);
      usage[b] += obj.area;
      placement_.x[static_cast<size_t>(oi)] =
          (static_cast<double>(fx) + rng_.uniform(0.1, 0.9)) * bw_;
      placement_.y[static_cast<size_t>(oi)] =
          (static_cast<double>(fy) + rng_.uniform(0.1, 0.9)) * bh_;
      clamp_object(oi);
    }
  }
}

std::array<double, fpga::kNumResources> GlobalPlacer::overflow() const {
  // Recompute on the current placement (usage_ may be stale after moves;
  // it is a mutable cache, see placer.h).
  compute_density_maps();
  std::array<double, fpga::kNumResources> out{};
  const auto nbins = static_cast<size_t>(options_.bins_x * options_.bins_y);
  for (size_t r = 0; r < fpga::kNumResources; ++r) {
    double over = 0.0, total = 0.0;
    for (size_t b = 0; b < nbins; ++b) {
      total += usage_[r][b];
      over += std::max(0.0, usage_[r][b] - capacity_[r][b]);
    }
    out[r] = total > 0.0 ? over / total : 0.0;
  }
  return out;
}

bool GlobalPlacer::overflow_target_met() const {
  const auto of = overflow();
  const auto idx = [](Resource r) { return static_cast<size_t>(r); };
  return of[idx(Resource::Dsp)] < options_.macro_overflow_target &&
         of[idx(Resource::Bram)] < options_.macro_overflow_target &&
         of[idx(Resource::Uram)] < options_.macro_overflow_target &&
         of[idx(Resource::Lut)] < options_.cell_overflow_target &&
         of[idx(Resource::Ff)] < options_.cell_overflow_target;
}

bool GlobalPlacer::run_until_overflow_target() {
  std::int64_t done = 0;
  const std::int64_t chunk = 20;
  while (done < options_.max_iterations) {
    iterate(std::min(chunk, options_.max_iterations - done));
    done += chunk;
    if (overflow_target_met()) return true;
    if (budget_exhausted_) break;  // best partial result
  }
  return overflow_target_met();
}

double GlobalPlacer::wirelength() const {
  double total = 0.0;
  for (size_t ni = 0; ni < problem_->net_pins.size(); ++ni) {
    const auto& pins = problem_->net_pins[ni];
    double lox = 1e30, hix = -1e30, loy = 1e30, hiy = -1e30;
    for (const auto& p : pins) {
      const double x = placement_.x[static_cast<size_t>(p.obj)];
      const double y = placement_.y[static_cast<size_t>(p.obj)] + p.dy;
      lox = std::min(lox, x);
      hix = std::max(hix, x);
      loy = std::min(loy, y);
      hiy = std::max(hiy, y);
    }
    total += static_cast<double>(problem_->net_weights[ni]) *
             ((hix - lox) + (hiy - loy));
  }
  return total;
}

}  // namespace mfa::place
