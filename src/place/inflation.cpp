#include "place/inflation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace mfa::place {

InflationStats apply_inflation(PlacementProblem& problem,
                               const Placement& placement,
                               const std::vector<float>& level_map,
                               std::int64_t gw, std::int64_t gh,
                               const InflationOptions& options) {
  MFA_CHECK(gw > 0 && gh > 0) << " apply_inflation: empty level grid " << gw
                              << "x" << gh;
  MFA_CHECK_EQ(static_cast<std::int64_t>(level_map.size()), gw * gh)
      << " apply_inflation: map size mismatch";
  MFA_CHECK(placement.x.size() >= static_cast<size_t>(problem.num_objects()) &&
            placement.y.size() >= static_cast<size_t>(problem.num_objects()))
      << " apply_inflation: placement does not cover all objects";
  MFA_CHECK(options.budget_fraction >= 0.0 && options.epsilon > 0.0)
      << " apply_inflation: invalid options";
  const auto& device = problem.device();
  const double sx = static_cast<double>(gw) / static_cast<double>(device.cols());
  const double sy = static_cast<double>(gh) / static_cast<double>(device.rows());

  InflationStats stats;
  const auto nobj = problem.num_objects();
  std::vector<double> delta(static_cast<size_t>(nobj), 0.0);
  std::array<double, fpga::kNumResources> sum_area{};
  std::array<double, fpga::kNumResources> sum_delta{};

  for (std::int64_t oi = 0; oi < nobj; ++oi) {
    const auto& obj = problem.objects[static_cast<size_t>(oi)];
    const auto r = static_cast<size_t>(obj.resource);
    sum_area[r] += obj.area;
    const auto gx = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(placement.x[static_cast<size_t>(oi)] * sx),
        0, gw - 1);
    const auto gy = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(placement.y[static_cast<size_t>(oi)] * sy),
        0, gh - 1);
    const double level = level_map[static_cast<size_t>(gy * gw + gx)];
    MFA_DCHECK_FINITE(level) << " apply_inflation: level map at (" << gx
                             << ", " << gy << ")";
    if (level <= options.level_threshold) continue;  // no S_IR penalty below 4
    // Eq. 11.
    const double factor =
        std::min(std::pow(std::max(1.0, level - 2.0), 2.5), options.epsilon);
    const double est = obj.area * factor;
    delta[static_cast<size_t>(oi)] = est - obj.area;
    sum_delta[r] += delta[static_cast<size_t>(oi)];
  }

  // Eq. 12: per-resource budget scaling.
  for (size_t r = 0; r < fpga::kNumResources; ++r) {
    if (sum_delta[r] <= 0.0) {
      stats.tau[r] = 1.0;
      continue;
    }
    const double cap =
        options.budget_fraction *
        (device.area_capacity(static_cast<fpga::Resource>(r)) - sum_area[r]);
    stats.tau[r] = std::clamp(cap / sum_delta[r], 0.0, 1.0);
  }

  // Eq. 13.
  for (std::int64_t oi = 0; oi < nobj; ++oi) {
    if (delta[static_cast<size_t>(oi)] <= 0.0) continue;
    auto& obj = problem.objects[static_cast<size_t>(oi)];
    const double add =
        stats.tau[static_cast<size_t>(obj.resource)] *
        delta[static_cast<size_t>(oi)];
    obj.area += add;
    stats.area_added += add;
    ++stats.inflated_objects;
  }
  return stats;
}

}  // namespace mfa::place
