#include "place/legalizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/log.h"

namespace mfa::place {

namespace {

struct Candidate {
  std::int64_t col = -1;
  std::int64_t row = -1;
  double cost = std::numeric_limits<double>::infinity();
};

}  // namespace

LegalizeResult Legalizer::legalize_macros(const PlacementProblem& problem,
                                          Placement& placement) {
  const auto& device = problem.device();
  LegalizeResult result;

  // occupancy[col][row] for macro columns only.
  std::vector<std::vector<char>> occupied(
      static_cast<size_t>(device.cols()),
      std::vector<char>(static_cast<size_t>(device.rows()), 0));

  // Macros ordered: tall cascades first (hardest to fit), then by area.
  std::vector<std::int64_t> order;
  for (std::int64_t oi = 0; oi < problem.num_objects(); ++oi)
    if (problem.objects[static_cast<size_t>(oi)].is_macro()) order.push_back(oi);
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    const auto& oa = problem.objects[static_cast<size_t>(a)];
    const auto& ob = problem.objects[static_cast<size_t>(b)];
    // Region-constrained macros first — they have the fewest legal sites and
    // must not find their region already filled by unconstrained macros.
    const bool ra = oa.region >= 0, rb = ob.region >= 0;
    if (ra != rb) return ra;
    if (oa.height != ob.height) return oa.height > ob.height;
    return oa.area > ob.area;
  });

  for (const auto oi : order) {
    const auto& obj = problem.objects[static_cast<size_t>(oi)];
    const auto height = static_cast<std::int64_t>(std::lround(obj.height));
    const double px = placement.x[static_cast<size_t>(oi)];
    const double py = placement.y[static_cast<size_t>(oi)];
    const auto& cols = device.columns_of(fpga::site_for_resource(obj.resource));

    const netlist::RegionConstraint* region =
        obj.region >= 0
            ? &problem.design().regions[static_cast<size_t>(obj.region)]
            : nullptr;

    Candidate best;
    for (const auto col : cols) {
      if (region && (col < region->col_lo || col > region->col_hi)) continue;
      const double dx = std::fabs(static_cast<double>(col) + 0.5 - px);
      if (dx >= best.cost) continue;  // even dy=0 cannot beat best
      const std::int64_t row_lo = region ? region->row_lo : 0;
      const std::int64_t row_hi =
          (region ? region->row_hi : device.rows() - 1) - (height - 1);
      // Scan rows outward from the desired row.
      const auto want = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(std::lround(py - 0.5)), row_lo,
          std::max(row_lo, row_hi));
      for (std::int64_t radius = 0; radius <= device.rows(); ++radius) {
        bool any_in_range = false;
        for (const std::int64_t row : {want - radius, want + radius}) {
          if (row < row_lo || row > row_hi) continue;
          any_in_range = true;
          bool free = true;
          for (std::int64_t k = 0; k < height && free; ++k)
            free = !occupied[static_cast<size_t>(col)]
                            [static_cast<size_t>(row + k)];
          if (!free) continue;
          const double cost =
              dx + std::fabs(static_cast<double>(row) + 0.5 - py);
          if (cost < best.cost) best = {col, row, cost};
          break;  // nearest free row in this direction found
        }
        if (best.col == col || !any_in_range) break;
        if (radius > 0 && best.cost <
                              dx + static_cast<double>(radius) - 1.0)
          break;  // cannot improve further in this column
      }
    }

    if (best.col < 0) {
      log::warn("legalizer: no site for macro object %lld (%s h=%lld)",
                static_cast<long long>(oi), fpga::to_string(obj.resource),
                static_cast<long long>(height));
      result.success = false;
      continue;
    }
    for (std::int64_t k = 0; k < height; ++k)
      occupied[static_cast<size_t>(best.col)]
              [static_cast<size_t>(best.row + k)] = 1;
    const double nx = static_cast<double>(best.col) + 0.5;
    const double ny = static_cast<double>(best.row) + 0.5;
    result.total_displacement += std::fabs(nx - px) + std::fabs(ny - py);
    placement.x[static_cast<size_t>(oi)] = nx;
    placement.y[static_cast<size_t>(oi)] = ny;
    ++result.macros_placed;
  }
  return result;
}

std::string Legalizer::check_macros(const PlacementProblem& problem,
                                    const Placement& placement) {
  const auto& device = problem.device();
  std::vector<std::vector<char>> occupied(
      static_cast<size_t>(device.cols()),
      std::vector<char>(static_cast<size_t>(device.rows()), 0));
  for (std::int64_t oi = 0; oi < problem.num_objects(); ++oi) {
    const auto& obj = problem.objects[static_cast<size_t>(oi)];
    if (!obj.is_macro()) continue;
    const double px = placement.x[static_cast<size_t>(oi)];
    const double py = placement.y[static_cast<size_t>(oi)];
    const auto col = static_cast<std::int64_t>(std::floor(px));
    const auto row = static_cast<std::int64_t>(std::floor(py));
    const auto height = static_cast<std::int64_t>(std::lround(obj.height));
    if (!device.in_bounds(col, row) ||
        !device.in_bounds(col, row + height - 1))
      return log::format("macro %lld off device", static_cast<long long>(oi));
    if (device.column_type(col) != fpga::site_for_resource(obj.resource))
      return log::format("macro %lld on wrong column type",
                         static_cast<long long>(oi));
    if (std::fabs(px - (static_cast<double>(col) + 0.5)) > 1e-6 ||
        std::fabs(py - (static_cast<double>(row) + 0.5)) > 1e-6)
      return log::format("macro %lld not snapped to a site",
                         static_cast<long long>(oi));
    for (std::int64_t k = 0; k < height; ++k) {
      if (occupied[static_cast<size_t>(col)][static_cast<size_t>(row + k)])
        return log::format("macro %lld overlaps another macro",
                           static_cast<long long>(oi));
      occupied[static_cast<size_t>(col)][static_cast<size_t>(row + k)] = 1;
    }
    if (obj.region >= 0) {
      const auto& region =
          problem.design().regions[static_cast<size_t>(obj.region)];
      if (col < region.col_lo || col > region.col_hi || row < region.row_lo ||
          row + height - 1 > region.row_hi)
        return log::format("macro %lld escapes its region",
                           static_cast<long long>(oi));
    }
  }
  return {};
}

}  // namespace mfa::place
