// Congestion-driven instance inflation (paper §IV, Eqs. 11-13).
//
// Given a predicted congestion-level map Y over a gw x gh grid, every object
// in a grid cell with level > 3 has its target area inflated:
//   A_est = A * min( [max(1, Y - 2)]^2.5, epsilon )            (Eq. 11)
// The per-resource inflation budget is capped so total area never exceeds
// the device capacity of that resource:
//   tau_t = min( (A_t^p - sum A_i) / sum dA_i, 1 )             (Eq. 12)
//   A_update = A + tau_t * dA                                  (Eq. 13)
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "place/problem.h"

namespace mfa::place {

struct InflationStats {
  std::int64_t inflated_objects = 0;
  double area_added = 0.0;
  std::array<double, fpga::kNumResources> tau{};  // scaling per resource
};

struct InflationOptions {
  /// epsilon in Eq. 11: cap on the per-instance inflation multiplier. The
  /// paper leaves the constant unspecified; 1.3 keeps total inflated area
  /// within the spreading headroom of this library's bin sizes at the
  /// contest's 90%+ utilisations (see DESIGN.md calibration notes).
  double epsilon = 1.3;
  /// Congestion level above which inflation applies (paper: level > 3, the
  /// S_IR penalty threshold).
  double level_threshold = 3.0;
  /// Fraction of the *remaining* per-resource free area the inflation may
  /// consume (tightens Eq. 12). At the contest's 90%+ utilisations, handing
  /// inflation the full headroom leaves the spreader zero slack and degrades
  /// wirelength catastrophically; keeping half the headroom free preserves
  /// the relief effect without starving the placer.
  double budget_fraction = 0.5;
};

/// Applies Eqs. 11-13 in place: updates MoveObject::area from the congestion
/// map sampled at each object's position. `level_map` is row-major gh x gw
/// over the device ([0, cols] x [0, rows] mapped linearly to the grid).
InflationStats apply_inflation(PlacementProblem& problem,
                               const Placement& placement,
                               const std::vector<float>& level_map,
                               std::int64_t gw, std::int64_t gh,
                               const InflationOptions& options = {});

}  // namespace mfa::place
