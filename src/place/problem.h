// Placement problem construction: cascade pre-clustering (paper §IV,
// following the cascade handling of DREAMPlaceFPGA-MP [11]) and the
// cell -> movable-object mapping the placer operates on.
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/device.h"
#include "netlist/design.h"

namespace mfa::place {

/// A movable object: either a single cell or a merged cascade cluster whose
/// members are stacked vertically in cascade order.
struct MoveObject {
  std::vector<std::int32_t> cells;  // member cell ids (size 1 unless cascade)
  std::vector<double> off_y;        // vertical offset of each member
  fpga::Resource resource = fpga::Resource::Lut;
  double area = 1.0;       // current area in resource slots (inflatable)
  double base_area = 1.0;  // pre-inflation area
  double height = 1.0;     // vertical extent in sites
  std::int32_t region = -1;
  std::int32_t cascade = -1;  // source cascade id or -1

  bool is_macro() const { return fpga::is_macro_resource(resource); }
};

/// Net pin in object space.
struct ObjPin {
  std::int32_t obj;
  double dy;  // offset of the pin's cell within the object
};

class PlacementProblem {
 public:
  PlacementProblem(const netlist::Design& design,
                   const fpga::DeviceGrid& device);

  const netlist::Design& design() const { return *design_; }
  const fpga::DeviceGrid& device() const { return *device_; }

  std::vector<MoveObject> objects;
  /// cell id -> owning object id.
  std::vector<std::int32_t> object_of_cell;
  /// Per design-net pins in object space (duplicate object pins merged).
  std::vector<std::vector<ObjPin>> net_pins;
  /// Net weights aligned with net_pins.
  std::vector<float> net_weights;

  std::int64_t num_objects() const {
    return static_cast<std::int64_t>(objects.size());
  }

  /// Resets every object's area to its base area (undoes inflation).
  void reset_areas();

 private:
  const netlist::Design* design_;
  const fpga::DeviceGrid* device_;
};

/// Object positions (origin of each object, continuous site coordinates).
struct Placement {
  std::vector<double> x, y;

  /// Expands object positions to per-cell coordinates.
  void expand(const PlacementProblem& problem, std::vector<double>& cell_x,
              std::vector<double>& cell_y) const;
};

}  // namespace mfa::place
