#include "place/problem.h"

#include <algorithm>
#include <unordered_map>

namespace mfa::place {

PlacementProblem::PlacementProblem(const netlist::Design& design,
                                   const fpga::DeviceGrid& device)
    : design_(&design), device_(&device) {
  const auto ncells = design.num_cells();
  object_of_cell.assign(static_cast<size_t>(ncells), -1);

  // One object per cascade, members stacked vertically in cascade order.
  for (std::size_t si = 0; si < design.cascades.size(); ++si) {
    const auto& shape = design.cascades[si];
    MoveObject obj;
    obj.cascade = static_cast<std::int32_t>(si);
    obj.resource = design.cells[static_cast<size_t>(shape.macros[0])].resource;
    obj.area = 0.0;
    double off = 0.0;
    for (const auto id : shape.macros) {
      obj.cells.push_back(id);
      obj.off_y.push_back(off);
      off += 1.0;  // one site per macro, consecutive rows
      obj.area += design.cells[static_cast<size_t>(id)].area;
      // Region constraint of any member binds the whole cluster.
      if (design.cells[static_cast<size_t>(id)].region >= 0)
        obj.region = design.cells[static_cast<size_t>(id)].region;
      object_of_cell[static_cast<size_t>(id)] =
          static_cast<std::int32_t>(objects.size());
    }
    obj.base_area = obj.area;
    obj.height = off;
    objects.push_back(std::move(obj));
  }

  // One object per remaining cell.
  for (std::int64_t i = 0; i < ncells; ++i) {
    if (object_of_cell[static_cast<size_t>(i)] >= 0) continue;
    const auto& cell = design.cells[static_cast<size_t>(i)];
    MoveObject obj;
    obj.cells.push_back(static_cast<std::int32_t>(i));
    obj.off_y.push_back(0.0);
    obj.resource = cell.resource;
    obj.area = obj.base_area = cell.area;
    obj.height = 1.0;
    obj.region = cell.region;
    object_of_cell[static_cast<size_t>(i)] =
        static_cast<std::int32_t>(objects.size());
    objects.push_back(std::move(obj));
  }

  // Nets in object space, merging duplicate object references.
  net_pins.reserve(design.nets.size());
  net_weights.reserve(design.nets.size());
  std::unordered_map<std::int32_t, double> seen;
  for (const auto& net : design.nets) {
    seen.clear();
    std::vector<ObjPin> pins;
    for (const auto cell : net.pins) {
      const auto obj = object_of_cell[static_cast<size_t>(cell)];
      // Offset of this cell within its object.
      const auto& o = objects[static_cast<size_t>(obj)];
      double dy = 0.0;
      for (size_t k = 0; k < o.cells.size(); ++k)
        if (o.cells[k] == cell) {
          dy = o.off_y[k];
          break;
        }
      if (seen.emplace(obj, dy).second) pins.push_back({obj, dy});
    }
    if (pins.size() >= 2) {
      net_pins.push_back(std::move(pins));
      net_weights.push_back(net.weight);
    }
  }
}

void PlacementProblem::reset_areas() {
  for (auto& obj : objects) obj.area = obj.base_area;
}

void Placement::expand(const PlacementProblem& problem,
                       std::vector<double>& cell_x,
                       std::vector<double>& cell_y) const {
  const auto ncells = problem.design().num_cells();
  cell_x.assign(static_cast<size_t>(ncells), 0.0);
  cell_y.assign(static_cast<size_t>(ncells), 0.0);
  for (size_t oi = 0; oi < problem.objects.size(); ++oi) {
    const auto& obj = problem.objects[oi];
    for (size_t k = 0; k < obj.cells.size(); ++k) {
      cell_x[static_cast<size_t>(obj.cells[k])] = x[oi];
      cell_y[static_cast<size_t>(obj.cells[k])] = y[oi] + obj.off_y[k];
    }
  }
}

}  // namespace mfa::place
