// Macro legalisation (paper §IV): snaps DSP/BRAM/URAM objects — including
// merged cascade clusters — onto legal sites of the matching column type,
// keeping cascade members on consecutive rows in order and honouring region
// constraints.
#pragma once

#include <cstdint>

#include "place/problem.h"

namespace mfa::place {

struct LegalizeResult {
  bool success = true;
  double total_displacement = 0.0;  // sum of macro |dx|+|dy|
  std::int64_t macros_placed = 0;
};

class Legalizer {
 public:
  /// Legalises all macro objects in `placement` in place. Cell (LUT/FF)
  /// objects are left at their global-placement coordinates (cell placement
  /// is the downstream tool's job in the contest flow).
  static LegalizeResult legalize_macros(const PlacementProblem& problem,
                                        Placement& placement);

  /// Verifies macro legality: on-device, correct column type, integral
  /// sites, no overlap, cascades in consecutive rows, regions honoured.
  /// Returns an empty string when legal, else a diagnostic.
  static std::string check_macros(const PlacementProblem& problem,
                                  const Placement& placement);
};

}  // namespace mfa::place
