#include "netlist/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/log.h"

namespace mfa::netlist {
namespace {

using fpga::Resource;

// XCVU3P device capacities the Table I utilisations are measured against.
constexpr double kVu3pLuts = 394080.0;
constexpr double kVu3pFfs = 788160.0;
constexpr double kVu3pDsps = 2280.0;
constexpr double kVu3pBrams = 720.0;

struct PaperCounts {
  const char* name;
  double luts, ffs, dsps, brams;
};

// Table I benchmark statistics (Design_230 appears only in Table II; its
// counts are set between Design_136 and Design_190 which bracket its size).
constexpr PaperCounts kPaperCounts[] = {
    {"Design_116", 370e3, 315e3, 2052, 648},
    {"Design_120", 383e3, 315e3, 2052, 648},
    {"Design_136", 315e3, 268e3, 1870, 590},
    {"Design_156", 338e3, 291e3, 1961, 619},
    {"Design_176", 370e3, 315e3, 2052, 648},
    {"Design_180", 383e3, 315e3, 2052, 648},
    {"Design_190", 312e3, 256e3, 1824, 576},
    {"Design_197", 323e3, 268e3, 1870, 590},
    {"Design_227", 363e3, 303e3, 2006, 634},
    {"Design_230", 314e3, 262e3, 1847, 583},
    {"Design_237", 379e3, 315e3, 2052, 648},
};

DesignSpec spec_from_counts(const PaperCounts& pc) {
  DesignSpec spec;
  spec.name = pc.name;
  spec.lut_util = pc.luts / kVu3pLuts;
  spec.ff_util = pc.ffs / kVu3pFfs;
  spec.dsp_util = pc.dsps / kVu3pDsps;
  spec.bram_util = pc.brams / kVu3pBrams;
  spec.uram_util = 0.5;
  spec.seed = Rng::hash(pc.name);
  // Per-design congestion character: deterministic variation so the ten
  // designs stress the router differently (as the contest suite does).
  Rng rng(spec.seed);
  spec.clustering = rng.uniform(0.72, 0.88);
  spec.hotspot_bias = rng.uniform(0.35, 0.85);
  spec.hot_clusters = rng.uniform_int(2, 4);
  spec.num_regions = rng.uniform_int(2, 4);
  spec.cascade_fraction = rng.uniform(0.4, 0.6);
  return spec;
}

/// Net degree distribution: mostly 2-3 pin nets with a heavy-ish tail, as in
/// LUT-mapped netlists.
std::int64_t draw_net_degree(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.55) return 2;
  if (u < 0.75) return 3;
  if (u < 0.90) return rng.uniform_int(4, 6);
  if (u < 0.98) return rng.uniform_int(7, 16);
  return rng.uniform_int(17, 48);
}

}  // namespace

std::vector<DesignSpec> mlcad2023_suite() {
  std::vector<DesignSpec> specs;
  specs.reserve(std::size(kPaperCounts));
  for (const auto& pc : kPaperCounts) specs.push_back(spec_from_counts(pc));
  return specs;
}

DesignSpec mlcad2023_spec(const std::string& design_name) {
  for (const auto& pc : kPaperCounts)
    if (design_name == pc.name) return spec_from_counts(pc);
  throw std::invalid_argument(
      log::format("unknown MLCAD design '%s'", design_name.c_str()));
}

Design DesignGenerator::generate(const DesignSpec& spec,
                                 const fpga::DeviceGrid& device) {
  Rng rng(spec.seed);
  Design design;
  design.name = spec.name;

  // ---- cells, scaled from target utilisations ----
  const auto target = [&](Resource r, double util) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               util * static_cast<double>(device.resource_capacity(r))));
  };
  const std::int64_t n_lut = target(Resource::Lut, spec.lut_util);
  const std::int64_t n_ff = target(Resource::Ff, spec.ff_util);
  const std::int64_t n_dsp = target(Resource::Dsp, spec.dsp_util);
  const std::int64_t n_bram = target(Resource::Bram, spec.bram_util);
  const std::int64_t n_uram = target(Resource::Uram, spec.uram_util);

  const auto add_cells = [&](Resource r, std::int64_t n) {
    for (std::int64_t i = 0; i < n; ++i) {
      Cell c;
      c.resource = r;
      design.cells.push_back(c);
    }
  };
  add_cells(Resource::Lut, n_lut);
  add_cells(Resource::Ff, n_ff);
  add_cells(Resource::Dsp, n_dsp);
  add_cells(Resource::Bram, n_bram);
  add_cells(Resource::Uram, n_uram);
  const auto ncells = design.num_cells();

  // ---- clusters with 2-D logical layout ----
  const std::int64_t nclusters =
      std::max<std::int64_t>(4, ncells / spec.cells_per_cluster);
  const auto cgrid =
      static_cast<std::int64_t>(std::ceil(std::sqrt(static_cast<double>(nclusters))));
  // Interleave resources across clusters so macros spread over the design.
  std::vector<std::int32_t> cluster_of(static_cast<size_t>(ncells));
  std::vector<std::vector<std::int32_t>> members(static_cast<size_t>(nclusters));
  for (std::int64_t i = 0; i < ncells; ++i) {
    const auto cl = static_cast<std::int32_t>(
        rng.uniform_int(0, nclusters - 1));
    cluster_of[static_cast<size_t>(i)] = cl;
    members[static_cast<size_t>(cl)].push_back(static_cast<std::int32_t>(i));
  }

  // Hotspot clusters carry extra connectivity.
  std::vector<bool> hot(static_cast<size_t>(nclusters), false);
  for (std::int64_t h = 0; h < spec.hot_clusters; ++h)
    hot[static_cast<size_t>(rng.uniform_int(0, nclusters - 1))] = true;

  // Neighbouring cluster in logical 2-D layout (for inter-cluster nets with
  // geometric locality).
  const auto neighbour_cluster = [&](std::int32_t cl) {
    const std::int64_t cx = cl % cgrid;
    const std::int64_t cy = cl / cgrid;
    // Geometric hop distance: mostly adjacent, occasionally far.
    const std::int64_t hop = 1 + static_cast<std::int64_t>(
                                     std::floor(-std::log(std::max(
                                                    1e-9, rng.uniform())) *
                                                1.2));
    std::int64_t nx = cx + rng.uniform_int(-hop, hop);
    std::int64_t ny = cy + rng.uniform_int(-hop, hop);
    nx = std::clamp<std::int64_t>(nx, 0, cgrid - 1);
    ny = std::clamp<std::int64_t>(ny, 0, cgrid - 1);
    const auto out = static_cast<std::int32_t>(ny * cgrid + nx);
    return std::min<std::int32_t>(static_cast<std::int32_t>(nclusters - 1), out);
  };

  // ---- nets ----
  const auto pick_from_cluster = [&](std::int32_t cl) -> std::int32_t {
    const auto& m = members[static_cast<size_t>(cl)];
    if (m.empty())
      return static_cast<std::int32_t>(rng.uniform_int(0, ncells - 1));
    return m[static_cast<size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(m.size()) - 1))];
  };

  for (std::int64_t driver = 0; driver < ncells; ++driver) {
    const auto cl = cluster_of[static_cast<size_t>(driver)];
    // Hot clusters drive extra nets.
    const std::int64_t copies =
        hot[static_cast<size_t>(cl)] && rng.chance(spec.hotspot_bias) ? 2 : 1;
    for (std::int64_t rep = 0; rep < copies; ++rep) {
      Net net;
      net.pins.push_back(static_cast<std::int32_t>(driver));
      const std::int64_t degree = draw_net_degree(rng);
      for (std::int64_t s = 1; s < degree; ++s) {
        const std::int32_t sink_cluster =
            rng.chance(spec.clustering) ? cl : neighbour_cluster(cl);
        const auto sink = pick_from_cluster(sink_cluster);
        if (sink != static_cast<std::int32_t>(driver)) net.pins.push_back(sink);
      }
      if (net.pins.size() >= 2) design.nets.push_back(std::move(net));
    }
  }

  // ---- cascade shapes over macros ----
  const auto build_cascades = [&](Resource r, std::int64_t max_len) {
    std::vector<std::int32_t> pool;
    for (std::int64_t i = 0; i < ncells; ++i)
      if (design.cells[static_cast<size_t>(i)].resource == r)
        pool.push_back(static_cast<std::int32_t>(i));
    // Deterministic shuffle.
    for (std::int64_t i = static_cast<std::int64_t>(pool.size()) - 1; i > 0; --i)
      std::swap(pool[static_cast<size_t>(i)],
                pool[static_cast<size_t>(rng.uniform_int(0, i))]);
    const auto budget = static_cast<std::int64_t>(
        spec.cascade_fraction * static_cast<double>(pool.size()));
    std::int64_t used = 0;
    size_t next = 0;
    while (used < budget && next < pool.size()) {
      const std::int64_t len = std::min<std::int64_t>(
          rng.uniform_int(2, max_len),
          static_cast<std::int64_t>(pool.size() - next));
      if (len < 2) break;
      CascadeShape shape;
      const auto cascade_id = static_cast<std::int32_t>(design.cascades.size());
      for (std::int64_t k = 0; k < len; ++k) {
        const auto id = pool[next++];
        shape.macros.push_back(id);
        design.cells[static_cast<size_t>(id)].cascade = cascade_id;
      }
      design.cascades.push_back(std::move(shape));
      used += len;
    }
  };
  build_cascades(Resource::Dsp, std::min<std::int64_t>(8, device.rows()));
  build_cascades(Resource::Bram, std::min<std::int64_t>(4, device.rows()));
  build_cascades(Resource::Uram, std::min<std::int64_t>(4, device.rows()));

  // ---- region constraints ----
  for (std::int64_t ri = 0; ri < spec.num_regions; ++ri) {
    RegionConstraint region;
    const std::int64_t w = std::max<std::int64_t>(4, device.cols() / 4);
    const std::int64_t h = std::max<std::int64_t>(4, device.rows() / 4);
    region.col_lo = rng.uniform_int(0, device.cols() - w);
    region.row_lo = rng.uniform_int(0, device.rows() - h);
    region.col_hi = region.col_lo + w - 1;
    region.row_hi = region.row_lo + h - 1;
    design.regions.push_back(region);
  }
  // Assign whole clusters to regions up to a utilisation cap so the
  // constraint is satisfiable (60% of region capacity per resource).
  if (!design.regions.empty()) {
    std::vector<std::array<double, fpga::kNumResources>> budget(
        design.regions.size());
    for (size_t ri = 0; ri < design.regions.size(); ++ri) {
      const auto& region = design.regions[ri];
      for (size_t r = 0; r < fpga::kNumResources; ++r) {
        std::int64_t cap = 0;
        for (std::int64_t col = region.col_lo; col <= region.col_hi; ++col)
          cap += fpga::site_capacity(device.column_type(col),
                                     static_cast<Resource>(r)) *
                 (region.row_hi - region.row_lo + 1);
        budget[ri][r] = 0.6 * static_cast<double>(cap);
      }
    }
    for (std::int64_t cl = 0; cl < nclusters; ++cl) {
      if (!rng.chance(0.15)) continue;  // ~15% of clusters are region-bound
      const auto ri = static_cast<size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(design.regions.size()) - 1));
      // Check the cluster fits in the remaining budget.
      std::array<double, fpga::kNumResources> need{};
      for (const auto id : members[static_cast<size_t>(cl)])
        need[static_cast<size_t>(
            design.cells[static_cast<size_t>(id)].resource)] +=
            design.cells[static_cast<size_t>(id)].area;
      bool fits = true;
      for (size_t r = 0; r < fpga::kNumResources; ++r)
        fits = fits && need[r] <= budget[ri][r];
      if (!fits) continue;
      for (size_t r = 0; r < fpga::kNumResources; ++r) budget[ri][r] -= need[r];
      for (const auto id : members[static_cast<size_t>(cl)]) {
        // Cascaded macros stay unassigned: a cascade could straddle the
        // region border, which the contest rules disallow mixing.
        if (design.cells[static_cast<size_t>(id)].cascade >= 0) continue;
        design.cells[static_cast<size_t>(id)].region =
            static_cast<std::int32_t>(ri);
      }
    }
  }

  design.validate(device);
  return design;
}

}  // namespace mfa::netlist
