// Netlist representation: cells, nets, macros and the two MLCAD 2023
// constraint kinds (cascade shapes and region constraints, paper §II-A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/device.h"

namespace mfa::netlist {

/// Region constraint: assigned instances must be placed on sites within the
/// inclusive site rectangle.
struct RegionConstraint {
  std::int64_t col_lo = 0;
  std::int64_t row_lo = 0;
  std::int64_t col_hi = 0;
  std::int64_t row_hi = 0;

  bool contains(double x, double y) const {
    return x >= static_cast<double>(col_lo) &&
           x <= static_cast<double>(col_hi) + 1.0 &&
           y >= static_cast<double>(row_lo) &&
           y <= static_cast<double>(row_hi) + 1.0;
  }
  double center_x() const { return 0.5 * static_cast<double>(col_lo + col_hi + 1); }
  double center_y() const { return 0.5 * static_cast<double>(row_lo + row_hi + 1); }
};

/// Cascade shape constraint: the listed macros must occupy consecutive sites
/// of their column in the given order.
struct CascadeShape {
  std::vector<std::int32_t> macros;  // ordered cell ids, all same resource
};

struct Cell {
  fpga::Resource resource = fpga::Resource::Lut;
  float area = 1.0f;          // in units of resource slots
  std::int32_t region = -1;   // index into Design::regions, or -1
  std::int32_t cascade = -1;  // index into Design::cascades, or -1

  bool is_macro() const { return fpga::is_macro_resource(resource); }
};

struct Net {
  std::vector<std::int32_t> pins;  // cell ids (first pin is the driver)
  float weight = 1.0f;
};

/// A complete design to be placed and routed.
class Design {
 public:
  std::string name;
  std::vector<Cell> cells;
  std::vector<Net> nets;
  std::vector<RegionConstraint> regions;
  std::vector<CascadeShape> cascades;

  std::int64_t num_cells() const {
    return static_cast<std::int64_t>(cells.size());
  }
  std::int64_t num_nets() const { return static_cast<std::int64_t>(nets.size()); }
  std::int64_t num_pins() const;
  /// Number of cells of a resource class.
  std::int64_t count(fpga::Resource r) const;
  std::int64_t num_macros() const;

  /// Structural validation against a device: pin ids in range, cascades
  /// homogeneous and fitting a column, regions on-device, region demand
  /// within region capacity. Throws std::runtime_error on violation.
  void validate(const fpga::DeviceGrid& device) const;
};

}  // namespace mfa::netlist
