#include "netlist/design.h"

#include <stdexcept>

#include "common/log.h"

namespace mfa::netlist {

std::int64_t Design::num_pins() const {
  std::int64_t n = 0;
  for (const auto& net : nets) n += static_cast<std::int64_t>(net.pins.size());
  return n;
}

std::int64_t Design::count(fpga::Resource r) const {
  std::int64_t n = 0;
  for (const auto& c : cells) n += (c.resource == r);
  return n;
}

std::int64_t Design::num_macros() const {
  std::int64_t n = 0;
  for (const auto& c : cells) n += c.is_macro();
  return n;
}

void Design::validate(const fpga::DeviceGrid& device) const {
  const auto ncells = num_cells();
  for (const auto& net : nets) {
    if (net.pins.size() < 2)
      throw std::runtime_error("validate: net with fewer than 2 pins");
    for (const auto pin : net.pins)
      if (pin < 0 || pin >= ncells)
        throw std::runtime_error("validate: pin references missing cell");
  }
  for (const auto& shape : cascades) {
    if (shape.macros.empty())
      throw std::runtime_error("validate: empty cascade shape");
    const auto res = cells[static_cast<size_t>(shape.macros[0])].resource;
    if (!fpga::is_macro_resource(res))
      throw std::runtime_error("validate: cascade of non-macro resource");
    for (const auto id : shape.macros) {
      if (id < 0 || id >= ncells)
        throw std::runtime_error("validate: cascade references missing cell");
      if (cells[static_cast<size_t>(id)].resource != res)
        throw std::runtime_error("validate: mixed-resource cascade");
    }
    if (static_cast<std::int64_t>(shape.macros.size()) > device.rows())
      throw std::runtime_error("validate: cascade taller than device");
  }
  for (const auto& region : regions) {
    if (region.col_lo < 0 || region.row_lo < 0 ||
        region.col_hi >= device.cols() || region.row_hi >= device.rows() ||
        region.col_lo > region.col_hi || region.row_lo > region.row_hi)
      throw std::runtime_error("validate: region rectangle off device");
  }
  // Region capacity check per resource.
  for (std::size_t ri = 0; ri < regions.size(); ++ri) {
    const auto& region = regions[ri];
    for (std::size_t r = 0; r < fpga::kNumResources; ++r) {
      const auto res = static_cast<fpga::Resource>(r);
      double demand = 0.0;
      for (const auto& c : cells)
        if (c.region == static_cast<std::int32_t>(ri) && c.resource == res)
          demand += c.area;
      std::int64_t cap = 0;
      for (std::int64_t col = region.col_lo; col <= region.col_hi; ++col) {
        const auto st = device.column_type(col);
        cap += fpga::site_capacity(st, res) *
               (region.row_hi - region.row_lo + 1);
      }
      if (demand > static_cast<double>(cap))
        throw std::runtime_error(log::format(
            "validate: region %zu overfilled for %s (demand %.0f > cap %lld)",
            ri, fpga::to_string(res), demand, static_cast<long long>(cap)));
    }
  }
  // Cascade members must share the cascade id recorded on the cell.
  for (std::size_t si = 0; si < cascades.size(); ++si)
    for (const auto id : cascades[si].macros)
      if (cells[static_cast<size_t>(id)].cascade !=
          static_cast<std::int32_t>(si))
        throw std::runtime_error("validate: cell/cascade cross-link broken");
}

}  // namespace mfa::netlist
