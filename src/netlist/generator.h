// Synthetic benchmark generator reproducing the character of the MLCAD 2023
// macro-placement suite at library scale.
//
// The contest suite is proprietary Vivado data; this generator substitutes
// seeded synthetic designs whose statistics track Table I of the paper:
// per-design resource utilisations relative to XCVU3P capacity (the ten most
// congested designs run 79-97% LUT and ~90% DSP/BRAM utilisation), clustered
// Rent-style connectivity with hotspot clusters, cascade chains over DSP/BRAM
// macros, and rectangular region constraints.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "netlist/design.h"

namespace mfa::netlist {

struct DesignSpec {
  std::string name;
  // Target utilisation of device capacity per resource, from Table I.
  double lut_util = 0.9;
  double ff_util = 0.4;
  double dsp_util = 0.9;
  double bram_util = 0.9;
  double uram_util = 0.5;
  // Connectivity parameters.
  double clustering = 0.80;      // probability a sink stays in-cluster
  double hotspot_bias = 0.5;     // extra net density in hot clusters
  std::int64_t hot_clusters = 3; // number of congestion hotspot clusters
  std::int64_t cells_per_cluster = 150;
  double cascade_fraction = 0.5; // fraction of macros grouped into cascades
  std::int64_t num_regions = 3;
  std::uint64_t seed = 1;
};

/// Specs for the contest designs referenced by the paper (Tables I and II).
/// Utilisations are derived from Table I counts over XCVU3P capacity
/// (394,080 LUT / 788,160 FF / 2,280 DSP / 720 BRAM36).
std::vector<DesignSpec> mlcad2023_suite();

/// Spec for a single named design from the suite; throws if unknown.
DesignSpec mlcad2023_spec(const std::string& design_name);

class DesignGenerator {
 public:
  /// Generates a design matching `spec` on `device`. Deterministic in
  /// (spec.seed, device dimensions).
  static Design generate(const DesignSpec& spec,
                         const fpga::DeviceGrid& device);
};

}  // namespace mfa::netlist
