#include "models/mfa_net.h"

#include <stdexcept>

namespace mfa::models {

using namespace mfa::ops;

MfaTransformerNet::MfaTransformerNet(ModelConfig config)
    : CongestionModel(config) {
  if (config.grid % 16 != 0)
    throw std::invalid_argument("MfaTransformerNet: grid must be 16-divisible");
  Rng rng(config.seed);
  const auto C = config.base_channels;

  // Encoder: four ResNet downs, channels C, 2C, 4C, 8C (Fig. 5).
  const std::int64_t enc_ch[5] = {config.in_channels, C, 2 * C, 4 * C, 8 * C};
  for (int i = 0; i < 4; ++i) {
    down_[static_cast<size_t>(i)] = register_module(
        "down" + std::to_string(i + 1),
        std::make_shared<ResBlockDown>(enc_ch[i], enc_ch[i + 1], rng));
    if (config.use_mfa)
      mfa_[static_cast<size_t>(i)] = register_module(
          "mfa" + std::to_string(i + 1),
          std::make_shared<MfaBlock>(enc_ch[i + 1], rng,
                                     config.mfa_reduction_floor));
  }
  // Additional MFA before the transformer (§III-C3).
  if (config.use_mfa)
    mfa_[4] = register_module(
        "mfa_pre_vit",
        std::make_shared<MfaBlock>(8 * C, rng, config.mfa_reduction_floor));
  if (config.transformer_layers > 0) {
    const std::int64_t tokens = config.grid / 16;
    const std::int64_t dim =
        config.transformer_dim > 0 ? config.transformer_dim : 8 * C;
    transformer_ = register_module(
        "vit", std::make_shared<PatchTransformer>(
                   8 * C, tokens, tokens, dim, config.transformer_layers,
                   config.transformer_heads, rng));
  }

  // Decoder (Fig. 5): outputs 2C@/8, C@/4, C/2@/2, num_classes@/1.
  const std::int64_t half_c = std::max<std::int64_t>(1, C / 2);
  // Up1 consumes concat(bottleneck 8C, MFA4 8C) upsampled, plus skip MFA3 4C.
  up_conv_[0] = register_module(
      "up1", std::make_shared<ConvBnRelu>(16 * C + 4 * C, 2 * C, rng));
  up_conv_[1] = register_module(
      "up2", std::make_shared<ConvBnRelu>(2 * C + 2 * C, C, rng));
  up_conv_[2] = register_module(
      "up3", std::make_shared<ConvBnRelu>(C + C, half_c, rng));
  up_conv_[3] =
      register_module("up4", std::make_shared<ConvBnRelu>(half_c, half_c, rng));
  head_ = register_module(
      "head",
      std::make_shared<nn::Conv2d>(half_c, config.num_classes, 1, rng, 1, 0));
}

Tensor MfaTransformerNet::forward(const Tensor& features) {
  const auto mfa_or_id = [&](size_t i, const Tensor& t) {
    return mfa_[i] ? mfa_[i]->forward(t) : t;
  };
  // Encoder with MFA-enhanced skips.
  Tensor d1 = down_[0]->forward(features);  // [C,   /2]
  Tensor s1 = mfa_or_id(0, d1);
  Tensor d2 = down_[1]->forward(d1);        // [2C,  /4]
  Tensor s2 = mfa_or_id(1, d2);
  Tensor d3 = down_[2]->forward(d2);        // [4C,  /8]
  Tensor s3 = mfa_or_id(2, d3);
  Tensor d4 = down_[3]->forward(d3);        // [8C, /16]
  Tensor s4 = mfa_or_id(3, d4);

  // Bottleneck: MFA then vision transformer (global context).
  Tensor z = mfa_or_id(4, d4);
  if (transformer_) z = transformer_->forward(z);  // [8C, /16]

  // Decoder: upsample + skip concat + conv (Fig. 5 dimensions).
  Tensor u = upsample_nearest2x(concat({z, s4}, 1));       // [16C, /8]
  u = up_conv_[0]->forward(concat({u, s3}, 1));            // [2C,  /8]
  u = upsample_nearest2x(u);
  u = up_conv_[1]->forward(concat({u, s2}, 1));            // [C,   /4]
  u = upsample_nearest2x(u);
  u = up_conv_[2]->forward(concat({u, s1}, 1));            // [C/2, /2]
  u = up_conv_[3]->forward(upsample_nearest2x(u));         // [C/2, /1]
  return head_->forward(u);  // [num_classes, /1] logits (softmax in the loss)
}

MfaTransformerNet::StageShapes MfaTransformerNet::stage_shapes() const {
  StageShapes s;
  const auto C = config_.base_channels;
  const auto G = config_.grid;
  for (int i = 0; i < 4; ++i) {
    const std::int64_t scale = std::int64_t{1} << (i + 1);
    s.encoder[static_cast<size_t>(i)] = {C << i, G / scale, G / scale};
  }
  s.bottleneck = {8 * C, G / 16, G / 16};
  s.decoder[0] = {2 * C, G / 8, G / 8};
  s.decoder[1] = {C, G / 4, G / 4};
  s.decoder[2] = {std::max<std::int64_t>(1, C / 2), G / 2, G / 2};
  s.decoder[3] = {config_.num_classes, G, G};
  return s;
}

}  // namespace mfa::models
