// Baseline: plain U-Net congestion predictor [6] — double-conv encoder
// stages with max-pool downsampling, raw skip connections, no attention and
// no transformer.
#pragma once

#include "models/blocks.h"
#include "models/congestion_model.h"

namespace mfa::models {

class UNetModel final : public CongestionModel, public nn::Module {
 public:
  explicit UNetModel(ModelConfig config);
  const char* name() const override { return "unet"; }
  nn::Module& network() override { return *this; }
  Tensor forward(const Tensor& features) override;

 private:
  std::array<std::shared_ptr<ConvBnRelu>, 4> enc_;
  std::shared_ptr<ConvBnRelu> bottleneck_;
  std::array<std::shared_ptr<ConvBnRelu>, 4> dec_;
  std::shared_ptr<nn::Conv2d> head_;
};

}  // namespace mfa::models
