// Baseline: PROS 2.0 [8] — ResNet encoder + U-Net decoder trained on real
// global-routing results. Architecturally this is the paper's model without
// the MFA blocks and without the transformer bottleneck, which makes the
// ours-vs-PROS2 comparison an implicit ablation of those two components.
#pragma once

#include "models/blocks.h"
#include "models/congestion_model.h"

namespace mfa::models {

class Pros2Model final : public CongestionModel, public nn::Module {
 public:
  explicit Pros2Model(ModelConfig config);
  const char* name() const override { return "pros2"; }
  nn::Module& network() override { return *this; }
  Tensor forward(const Tensor& features) override;

 private:
  std::array<std::shared_ptr<ResBlockDown>, 4> down_;
  std::shared_ptr<ConvBnRelu> bottleneck_;
  std::array<std::shared_ptr<ConvBnRelu>, 4> up_conv_;
  std::shared_ptr<nn::Conv2d> head_;
};

}  // namespace mfa::models
