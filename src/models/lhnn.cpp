#include "models/lhnn.h"

#include <utility>

#include "common/check.h"
#include "features/features.h"

namespace mfa::models {

using namespace mfa::ops;

LhnnModel::LhnnModel(ModelConfig config) : CongestionModel(config) {
  Rng rng(config.seed);
  const std::int64_t G = config.grid;
  const std::int64_t win = config.lhnn_window;
  const std::int64_t stride = config.lhnn_stride;
  MFA_CHECK(win > 0 && win <= G)
      << " lhnn: window " << win << " on grid " << G;
  MFA_CHECK_GT(stride, 0) << " lhnn: stride";
  MFA_CHECK_GT(config.lhnn_layers, 0) << " lhnn: layers";
  const std::int64_t C = config.base_channels;
  const std::int64_t Cn =
      config.lhnn_net_channels > 0 ? config.lhnn_net_channels : C;

  // Synthetic net hypergraph: one net per window position, pins = covered
  // cells. Built row-major over window positions, then over window cells,
  // so the incidence (and with it every pinned hash) is a pure function of
  // (grid, window, stride).
  const std::int64_t nwin = (G - win) / stride + 1;
  num_nets_ = nwin * nwin;
  const std::int64_t pins = num_nets_ * win * win;
  std::vector<float> pin_cell(static_cast<std::size_t>(pins));
  std::vector<float> pin_net(static_cast<std::size_t>(pins));
  std::vector<float> degree(static_cast<std::size_t>(G * G), 0.0f);
  std::int64_t p = 0;
  for (std::int64_t wh = 0; wh < nwin; ++wh)
    for (std::int64_t ww = 0; ww < nwin; ++ww) {
      const std::int64_t net = wh * nwin + ww;
      for (std::int64_t i = 0; i < win; ++i)
        for (std::int64_t j = 0; j < win; ++j) {
          const std::int64_t cell = (wh * stride + i) * G + (ww * stride + j);
          pin_cell[static_cast<std::size_t>(p)] = static_cast<float>(cell);
          pin_net[static_cast<std::size_t>(p)] = static_cast<float>(net);
          degree[static_cast<std::size_t>(cell)] += 1.0f;
          ++p;
        }
    }
  std::vector<float> inv_deg(degree.size());
  for (std::size_t i = 0; i < degree.size(); ++i)
    inv_deg[i] = degree[i] > 0.0f ? 1.0f / degree[i] : 0.0f;
  pin_cell_ = Tensor::from_data({pins}, std::move(pin_cell));
  pin_net_ = Tensor::from_data({pins}, std::move(pin_net));
  inv_deg_ = Tensor::from_data({G * G, 1}, std::move(inv_deg));
  rudy_col_ = Tensor::from_data(
      {1}, {static_cast<float>(features::kRudy)});

  embed_ = register_module(
      "embed", std::make_shared<ConvBnRelu>(config.in_channels, C, rng));
  lattice_ = register_module("lattice", std::make_shared<ConvBnRelu>(C, C, rng));
  for (std::int64_t l = 0; l < config.lhnn_layers; ++l) {
    net_in_.push_back(register_module("net_in" + std::to_string(l),
                                      std::make_shared<nn::Linear>(C, Cn, rng)));
    net_out_.push_back(register_module(
        "net_out" + std::to_string(l), std::make_shared<nn::Linear>(Cn, C, rng)));
  }
  fuse_ = register_module("fuse", std::make_shared<ConvBnRelu>(2 * C, C, rng));
  head_ = register_module(
      "head",
      std::make_shared<nn::Conv2d>(C, config.num_classes, 1, rng, 1, 0));
  if (config.lhnn_aux_head)
    aux_head_ = register_module("aux_head",
                                std::make_shared<nn::Linear>(C, 1, rng));
}

Tensor LhnnModel::forward(const Tensor& features) {
  MFA_CHECK(features.dim() == 4 && features.size(1) == config_.in_channels)
      << " lhnn: features " << shape_str(features.shape());
  const std::int64_t N = features.size(0);
  const std::int64_t H = features.size(2);
  const std::int64_t W = features.size(3);
  MFA_CHECK(H == config_.grid && W == config_.grid)
      << " lhnn: grid mismatch, features " << shape_str(features.shape())
      << " vs configured grid " << config_.grid;
  const std::int64_t HW = H * W;
  const std::int64_t C = config_.base_channels;
  const bool want_aux =
      aux_head_ && is_training() && GradMode::enabled();

  Tensor emb = embed_->forward(features);  // [N, C, H, W]
  std::vector<Tensor> fused_samples;
  fused_samples.reserve(static_cast<std::size_t>(N));
  Tensor aux_sum;
  for (std::int64_t n = 0; n < N; ++n) {
    Tensor xs = narrow(emb, 0, n, 1);                          // [1,C,H,W]
    Tensor cells = transpose2d(reshape(xs, {C, HW}));          // [HW, C]
    Tensor net;
    for (std::size_t l = 0; l < net_in_.size(); ++l) {
      Tensor pin = gather_rows(cells, pin_cell_);              // [P, C]
      net = segment_mean(pin, pin_net_, num_nets_);            // [S, C]
      net = net_out_[l]->forward(relu(net_in_[l]->forward(net)));
      Tensor msg = segment_sum(gather_rows(net, pin_net_),     // net -> cell
                               pin_cell_, HW);                 // [HW, C]
      cells = relu(add(cells, mul(msg, inv_deg_)));            // mean + res
    }
    if (want_aux) {
      // Net-level RUDY regression: target = mean input RUDY over each
      // net's pins, a constant derived from the (non-grad) features.
      Tensor feat_cells = transpose2d(
          reshape(narrow(features, 0, n, 1), {config_.in_channels, HW}));
      Tensor rudy = index_select(feat_cells, 1, rudy_col_);    // [HW, 1]
      Tensor target =
          segment_mean(gather_rows(rudy, pin_cell_), pin_net_, num_nets_);
      Tensor pred = aux_head_->forward(net);                   // [S, 1]
      Tensor aux = mse_loss(pred, target.detach());
      aux_sum = aux_sum.defined() ? add(aux_sum, aux) : aux;
    }
    Tensor hyper = reshape(transpose2d(cells), {1, C, H, W});
    fused_samples.push_back(concat({lattice_->forward(xs), hyper}, 1));
  }
  if (want_aux && aux_sum.defined())
    aux_loss_ = mul_scalar(aux_sum, 1.0f / static_cast<float>(N));
  Tensor fused = fused_samples.size() == 1 ? fused_samples.front()
                                           : concat(fused_samples, 0);
  return head_->forward(fuse_->forward(fused));
}

Tensor LhnnModel::take_auxiliary_loss() {
  return std::exchange(aux_loss_, Tensor());
}

}  // namespace mfa::models
