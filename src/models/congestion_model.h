// Common interface of all congestion predictors compared in Table I.
#pragma once

#include <memory>
#include <string>

#include "models/config.h"
#include "nn/module.h"

namespace mfa::models {

class CongestionModel {
 public:
  virtual ~CongestionModel() = default;
  virtual const char* name() const = 0;
  /// The underlying network (for parameters/optimizer/train-eval mode).
  virtual nn::Module& network() = 0;
  /// features [N, 6, H, W] -> per-class logits [N, num_classes, H, W].
  virtual Tensor forward(const Tensor& features) = 0;

  /// Auxiliary training loss produced by the last forward(), if any (LHNN's
  /// net-level head). Move-out semantics: returns the stored scalar and
  /// clears it, so the caller owns the only reference and the tape arena is
  /// not pinned across steps. Default: none (undefined tensor). The trainer
  /// runs Tensor::backward_multi({loss, aux}) when this returns a defined
  /// tensor.
  virtual Tensor take_auxiliary_loss() { return Tensor(); }

  const ModelConfig& config() const { return config_; }

  /// Inference: argmax class per tile as a float level map [N, H, W].
  /// Switches to eval mode and back; no autograd tape is built.
  Tensor predict_levels(const Tensor& features);

 protected:
  explicit CongestionModel(ModelConfig config) : config_(config) {}
  ModelConfig config_;
};

/// Factory for the Table I model set: "ours", "unet", "pgnn", "pros2",
/// "lhnn".
std::unique_ptr<CongestionModel> make_model(const std::string& name,
                                            const ModelConfig& config);

}  // namespace mfa::models
