#include "models/pros2.h"

#include <stdexcept>

namespace mfa::models {

using namespace mfa::ops;

Pros2Model::Pros2Model(ModelConfig config) : CongestionModel(config) {
  if (config.grid % 16 != 0)
    throw std::invalid_argument("Pros2Model: grid must be 16-divisible");
  Rng rng(config.seed);
  const auto C = config.base_channels;
  const std::int64_t ch[5] = {config.in_channels, C, 2 * C, 4 * C, 8 * C};
  for (int i = 0; i < 4; ++i)
    down_[static_cast<size_t>(i)] = register_module(
        "down" + std::to_string(i + 1),
        std::make_shared<ResBlockDown>(ch[i], ch[i + 1], rng));
  bottleneck_ = register_module(
      "bottleneck", std::make_shared<ConvBnRelu>(8 * C, 8 * C, rng));
  const std::int64_t half_c = std::max<std::int64_t>(1, C / 2);
  up_conv_[0] = register_module(
      "up1", std::make_shared<ConvBnRelu>(8 * C + 4 * C, 2 * C, rng));
  up_conv_[1] = register_module(
      "up2", std::make_shared<ConvBnRelu>(2 * C + 2 * C, C, rng));
  up_conv_[2] =
      register_module("up3", std::make_shared<ConvBnRelu>(C + C, half_c, rng));
  up_conv_[3] =
      register_module("up4", std::make_shared<ConvBnRelu>(half_c, half_c, rng));
  head_ = register_module(
      "head",
      std::make_shared<nn::Conv2d>(half_c, config.num_classes, 1, rng, 1, 0));
}

Tensor Pros2Model::forward(const Tensor& features) {
  Tensor d1 = down_[0]->forward(features);  // [C,   /2]
  Tensor d2 = down_[1]->forward(d1);        // [2C,  /4]
  Tensor d3 = down_[2]->forward(d2);        // [4C,  /8]
  Tensor d4 = down_[3]->forward(d3);        // [8C, /16]
  Tensor b = bottleneck_->forward(d4);

  Tensor u = upsample_nearest2x(b);
  u = up_conv_[0]->forward(concat({u, d3}, 1));
  u = upsample_nearest2x(u);
  u = up_conv_[1]->forward(concat({u, d2}, 1));
  u = upsample_nearest2x(u);
  u = up_conv_[2]->forward(concat({u, d1}, 1));
  u = up_conv_[3]->forward(upsample_nearest2x(u));
  return head_->forward(u);
}

}  // namespace mfa::models
