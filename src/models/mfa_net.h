// The paper's model (Figs. 2 and 5): ResNet multiscale encoder, MFA blocks
// on every skip connection plus one before the bottleneck, a vision-
// transformer bottleneck, and a U-Net-style decoder that recovers the
// congestion-level map as an 8-class per-tile classification.
#pragma once

#include "models/blocks.h"
#include "models/congestion_model.h"

namespace mfa::models {

class MfaTransformerNet final : public CongestionModel, public nn::Module {
 public:
  explicit MfaTransformerNet(ModelConfig config);

  const char* name() const override { return "ours"; }
  nn::Module& network() override { return *this; }
  Tensor forward(const Tensor& features) override;

  /// Per-stage output shapes (channels, height, width) for the Fig. 5
  /// architecture self-check bench.
  struct StageShapes {
    std::array<std::array<std::int64_t, 3>, 4> encoder;  // after each Down
    std::array<std::int64_t, 3> bottleneck;
    std::array<std::array<std::int64_t, 3>, 4> decoder;  // after each Up
  };
  StageShapes stage_shapes() const;

 private:
  std::array<std::shared_ptr<ResBlockDown>, 4> down_;
  std::array<std::shared_ptr<MfaBlock>, 5> mfa_;  // 4 skips + pre-transformer
  std::shared_ptr<PatchTransformer> transformer_;
  std::array<std::shared_ptr<ConvBnRelu>, 4> up_conv_;
  std::shared_ptr<nn::Conv2d> head_;
};

}  // namespace mfa::models
