#include "models/blocks.h"

#include <algorithm>
#include <cmath>

namespace mfa::models {

using namespace mfa::ops;
using nn::BatchNorm2d;
using nn::Conv2d;

ConvBnRelu::ConvBnRelu(std::int64_t in, std::int64_t out, Rng& rng,
                       std::int64_t stride) {
  conv_ = register_module(
      "conv", std::make_shared<Conv2d>(in, out, 3, rng, stride, 1, false));
  bn_ = register_module("bn", std::make_shared<BatchNorm2d>(out));
}

Tensor ConvBnRelu::forward(const Tensor& x) {
  return relu(bn_->forward(conv_->forward(x)));
}

ResBlockDown::ResBlockDown(std::int64_t in, std::int64_t out, Rng& rng) {
  conv1_ = register_module(
      "conv1", std::make_shared<Conv2d>(in, out, 3, rng, 2, 1, false));
  bn1_ = register_module("bn1", std::make_shared<BatchNorm2d>(out));
  conv2_ = register_module(
      "conv2", std::make_shared<Conv2d>(out, out, 3, rng, 1, 1, false));
  bn2_ = register_module("bn2", std::make_shared<BatchNorm2d>(out));
  skip_ = register_module(
      "skip", std::make_shared<Conv2d>(in, out, 1, rng, 2, 0, false));
  bn_skip_ = register_module("bn_skip", std::make_shared<BatchNorm2d>(out));
}

Tensor ResBlockDown::forward(const Tensor& x) {
  Tensor main = bn2_->forward(
      conv2_->forward(relu(bn1_->forward(conv1_->forward(x)))));
  Tensor shortcut = bn_skip_->forward(skip_->forward(x));
  return relu(add(main, shortcut));
}

MfaBlock::MfaBlock(std::int64_t channels, Rng& rng,
                   std::int64_t reduction_floor) {
  // Paper: reduce channels by 1/16 for the attention branches; the floor
  // keeps a minimum width at library-scale channel counts.
  reduced_ = std::max<std::int64_t>(reduction_floor, channels / 16);
  reduce_pam_ = register_module(
      "reduce_pam",
      std::make_shared<Conv2d>(channels, reduced_, 1, rng, 1, 0, false));
  bn_pam_ = register_module("bn_pam", std::make_shared<BatchNorm2d>(reduced_));
  reduce_cam_ = register_module(
      "reduce_cam",
      std::make_shared<Conv2d>(channels, reduced_, 1, rng, 1, 0, false));
  bn_cam_ = register_module("bn_cam", std::make_shared<BatchNorm2d>(reduced_));
  pam_b_ = register_module(
      "pam_b", std::make_shared<Conv2d>(reduced_, reduced_, 1, rng, 1, 0));
  pam_c_ = register_module(
      "pam_c", std::make_shared<Conv2d>(reduced_, reduced_, 1, rng, 1, 0));
  pam_d_ = register_module(
      "pam_d", std::make_shared<Conv2d>(reduced_, reduced_, 1, rng, 1, 0));
  restore_ = register_module(
      "restore", std::make_shared<Conv2d>(reduced_, channels, 1, rng, 1, 0));
  // Attention gains start at zero so the block begins as a plain bottleneck
  // (as in DANet [14]); training learns how much attention to mix in.
  alpha_ = register_parameter("alpha", Tensor::zeros({1}));
  beta_ = register_parameter("beta", Tensor::zeros({1}));
}

float MfaBlock::alpha() const { return alpha_.data()[0]; }
float MfaBlock::beta() const { return beta_.data()[0]; }

Tensor MfaBlock::forward(const Tensor& x) {
  const std::int64_t N = x.size(0);
  const std::int64_t H = x.size(2);
  const std::int64_t W = x.size(3);
  const std::int64_t L = H * W;

  // ---- position attention branch (Eqs. 4-5) ----
  Tensor tp = relu(bn_pam_->forward(reduce_pam_->forward(x)));
  Tensor b = reshape(pam_b_->forward(tp), {N, reduced_, L});
  Tensor c = reshape(pam_c_->forward(tp), {N, reduced_, L});
  Tensor d = reshape(pam_d_->forward(tp), {N, reduced_, L});
  // P_ji = softmax_i(B_i^T . C_j): scores [N, L, L] with rows softmaxed.
  Tensor scores = matmul(transpose2d(b), c);        // [N, L, L]
  Tensor p = softmax(scores, 2);
  Tensor pam_attn = matmul(d, transpose2d(p));      // [N, r, L]
  Tensor pam = add(mul(pam_attn, alpha_), reshape(tp, {N, reduced_, L}));

  // ---- channel attention branch (Eqs. 6-7) ----
  Tensor tc = relu(bn_cam_->forward(reduce_cam_->forward(x)));
  Tensor m = reshape(tc, {N, reduced_, L});
  Tensor chan_scores = matmul(m, transpose2d(m));   // [N, r, r]
  Tensor cx = softmax(chan_scores, 2);
  Tensor cam_attn = matmul(cx, m);                  // [N, r, L]
  Tensor cam = add(mul(cam_attn, beta_), m);

  // ---- fuse and restore channels (Fig. 3) ----
  Tensor fused = reshape(add(pam, cam), {N, reduced_, H, W});
  return restore_->forward(fused);
}

PatchTransformer::PatchTransformer(std::int64_t channels,
                                   std::int64_t tokens_h,
                                   std::int64_t tokens_w, std::int64_t dim,
                                   std::int64_t depth, std::int64_t heads,
                                   Rng& rng)
    : dim_(dim), th_(tokens_h), tw_(tokens_w) {
  embed_ = register_module(
      "embed", std::make_shared<Conv2d>(channels, dim, 1, rng, 1, 0));
  unembed_ = register_module(
      "unembed", std::make_shared<Conv2d>(dim, channels, 1, rng, 1, 0));
  pos_ = register_parameter(
      "pos", Tensor::randn({1, tokens_h * tokens_w, dim}, rng, 0.02f));
  for (std::int64_t l = 0; l < depth; ++l) {
    layers_.push_back(register_module(
        "layer" + std::to_string(l),
        std::make_shared<nn::TransformerEncoderLayer>(dim, heads, 4 * dim,
                                                      rng)));
  }
}

Tensor PatchTransformer::forward(const Tensor& x) {
  const std::int64_t N = x.size(0);
  Tensor z = embed_->forward(x);                     // [N, D, th, tw]
  z = reshape(z, {N, dim_, th_ * tw_});
  z = permute(z, {0, 2, 1});                         // [N, L, D] tokens
  z = add(z, pos_);
  for (auto& layer : layers_) z = layer->forward(z);
  z = permute(z, {0, 2, 1});
  z = reshape(z, {N, dim_, th_, tw_});
  return unembed_->forward(z);
}

}  // namespace mfa::models
