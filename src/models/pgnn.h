// Baseline: PGNN [7] — pin-accessibility GNN + U-Net.
//
// The original builds a pin-proximity graph over individual pins and runs a
// GNN whose node embeddings are fused into a U-Net over grid features. At
// this library's scale, individual-pin graphs are replaced by the grid graph
// of pin clusters: every grid cell is a node carrying the pin-derived
// channels (pin RUDY, cell density, macro map), edges connect 8-neighbouring
// cells, and each GraphConv layer computes
//   X' = ReLU(W_self X + W_nbr (A_hat X))
// where A_hat X is the fixed normalised neighbourhood aggregation (a box
// filter) and the two W's are learnable 1x1 convolutions. The resulting node
// embeddings are concatenated with the six §III-B maps and fed to a U-Net,
// preserving PGNN's structure (graph-derived pin features + grid CNN).
#pragma once

#include "models/blocks.h"
#include "models/congestion_model.h"
#include "models/unet.h"

namespace mfa::models {

/// One graph-convolution layer on the grid graph (see file comment).
class GridGraphConv : public nn::Module {
 public:
  GridGraphConv(std::int64_t in, std::int64_t out, Rng& rng);
  Tensor forward(const Tensor& x) override;

 private:
  std::shared_ptr<nn::Conv2d> self_, nbr_;
  Tensor box_;  // fixed 3x3 averaging kernel (not trained)
  std::int64_t in_;
};

class PgnnModel final : public CongestionModel, public nn::Module {
 public:
  explicit PgnnModel(ModelConfig config);
  const char* name() const override { return "pgnn"; }
  nn::Module& network() override { return *this; }
  Tensor forward(const Tensor& features) override;

 private:
  std::shared_ptr<GridGraphConv> gcn1_, gcn2_;
  std::shared_ptr<UNetModel> unet_;
  std::int64_t embed_dim_;
};

}  // namespace mfa::models
