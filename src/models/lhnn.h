// Baseline: LHNN [Wang et al., DAC'22] — lattice hypergraph neural network
// for congestion prediction.
//
// The original couples two node sets: lattice nodes (grid cells) and net
// nodes (hyperedges over the cells each net touches), alternating
// cell->net and net->cell message passing, with a lattice CNN branch fused
// before the prediction head. At this library's scale — and matching the
// PGNN proxy's precedent of deriving graph structure from the grid — real
// netlist hyperedges are replaced by a fixed synthetic hypergraph: every
// `lhnn_window`-sized square window (stride `lhnn_stride`, overlapping)
// is one net whose pins are the cells it covers. The incidence is stored
// once as two pin index tensors (pin->cell, pin->net) and the rounds run
// on the sparse tensor ops:
//
//   pin   = gather_rows(cells, pin_cell)            cell -> pin
//   net   = segment_mean(pin, pin_net, S)           pin  -> net (mean)
//   net   = MLP(net)                                net transform
//   msg   = segment_sum(gather_rows(net, pin_net),  net  -> cell (mean via
//                       pin_cell, HW) * inv_degree                1/degree)
//   cells = relu(cells + msg)                       residual update
//
// The hypergraph branch is concatenated with a lattice conv branch and a
// conv head produces the per-class logits, so the model drops into the
// Table I/II harness, `flow`, and `mfa_serve` unchanged.
//
// Training-only auxiliary head (LHNN's dual-branch supervision, adapted):
// a linear head on the final net embeddings regresses each net's mean RUDY
// (computed from the input features, detached), giving the hypergraph
// branch a net-level training signal. The trainer backpropagates main and
// auxiliary losses in one pass via Tensor::backward_multi.
#pragma once

#include <vector>

#include "models/blocks.h"
#include "models/congestion_model.h"

namespace mfa::models {

class LhnnModel final : public CongestionModel, public nn::Module {
 public:
  explicit LhnnModel(ModelConfig config);
  const char* name() const override { return "lhnn"; }
  nn::Module& network() override { return *this; }
  Tensor forward(const Tensor& features) override;
  Tensor take_auxiliary_loss() override;

  /// Synthetic hypergraph shape (for tests): nets and pins.
  std::int64_t num_nets() const { return num_nets_; }
  std::int64_t num_pins() const { return pin_cell_.numel(); }

 private:
  std::shared_ptr<ConvBnRelu> embed_, lattice_, fuse_;
  std::shared_ptr<nn::Conv2d> head_;
  std::vector<std::shared_ptr<nn::Linear>> net_in_, net_out_;
  std::shared_ptr<nn::Linear> aux_head_;
  // Fixed incidence of the synthetic hypergraph (leaf index tensors).
  Tensor pin_cell_;  // [P] pin -> lattice cell id in [0, H*W)
  Tensor pin_net_;   // [P] pin -> net id in [0, num_nets_)
  Tensor inv_deg_;   // [H*W, 1] 1/(nets covering cell), 0 when uncovered
  Tensor rudy_col_;  // [1] index of the RUDY channel (index_select)
  Tensor aux_loss_;  // scalar set by forward() in training mode
  std::int64_t num_nets_ = 0;
};

}  // namespace mfa::models
