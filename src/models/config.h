// Shared configuration for all congestion-prediction models.
#pragma once

#include <cstdint>

namespace mfa::models {

struct ModelConfig {
  /// Input grid resolution (paper: 256; library default: 64). Must be a
  /// multiple of 16 (four stride-2 stages).
  std::int64_t grid = 64;
  /// Input feature channels (the six §III-B maps).
  std::int64_t in_channels = 6;
  /// Base channel count C of the first encoder stage (paper's C).
  std::int64_t base_channels = 8;
  /// Congestion-level classes (levels 0..7 -> 8-channel softmax, §III-D).
  std::int64_t num_classes = 8;
  /// Vision-transformer depth L (paper: 12; library default: 2). Zero
  /// removes the transformer bottleneck entirely (ablation).
  std::int64_t transformer_layers = 2;
  /// Ablation switch: false replaces every MFA block with a pass-through.
  bool use_mfa = true;
  /// Minimum channel width of the MFA attention branches after the paper's
  /// 1/16 reduction (the paper's C=64 keeps >=4; small configs can choose).
  std::int64_t mfa_reduction_floor = 1;
  std::int64_t transformer_heads = 4;
  // ---- LHNN lattice-hypergraph predictor ("lhnn") ----
  /// Side of the square overlapping lattice windows that act as synthetic
  /// nets (hyperedges) of the grid hypergraph.
  std::int64_t lhnn_window = 4;
  /// Stride between window origins (< window -> overlapping nets).
  std::int64_t lhnn_stride = 2;
  /// Message-passing rounds (cell -> net -> cell).
  std::int64_t lhnn_layers = 2;
  /// Hidden width of the per-net MLP (0 = base_channels).
  std::int64_t lhnn_net_channels = 0;
  /// Auxiliary net-level RUDY-regression head; trained jointly with the
  /// main loss through Tensor::backward_multi.
  bool lhnn_aux_head = true;
  /// Token dimension C_t of the transformer embedding (0 = use 8C).
  std::int64_t transformer_dim = 0;
  std::uint64_t seed = 1;
};

}  // namespace mfa::models
