// Shared building blocks for the congestion models: residual downsampling
// stages (ResNet [9]), the MFA block (paper §III-C2, Fig. 3), and the
// vision-transformer bottleneck (paper §III-C3, Fig. 4).
#pragma once

#include <memory>

#include "nn/attention.h"
#include "nn/layers.h"

namespace mfa::models {

/// conv3x3 -> BN -> ReLU.
class ConvBnRelu : public nn::Module {
 public:
  ConvBnRelu(std::int64_t in, std::int64_t out, Rng& rng,
             std::int64_t stride = 1);
  Tensor forward(const Tensor& x) override;

 private:
  std::shared_ptr<nn::Conv2d> conv_;
  std::shared_ptr<nn::BatchNorm2d> bn_;
};

/// Residual downsampling stage: halves H/W, maps in -> out channels.
/// main: conv3x3(s2)-BN-ReLU-conv3x3-BN; skip: conv1x1(s2)-BN; out: ReLU(sum).
class ResBlockDown : public nn::Module {
 public:
  ResBlockDown(std::int64_t in, std::int64_t out, Rng& rng);
  Tensor forward(const Tensor& x) override;

 private:
  std::shared_ptr<nn::Conv2d> conv1_, conv2_, skip_;
  std::shared_ptr<nn::BatchNorm2d> bn1_, bn2_, bn_skip_;
};

/// Multiscale Feature Attention block (Fig. 3): two branches — position
/// attention (PAM, Eqs. 4-5) and channel attention (CAM, Eqs. 6-7) — over a
/// 1/16-channel reduction, summed and restored to the input channel count.
class MfaBlock : public nn::Module {
 public:
  MfaBlock(std::int64_t channels, Rng& rng,
           std::int64_t reduction_floor = 1);
  Tensor forward(const Tensor& x) override;

  /// Learnable attention gains (alpha for PAM, beta for CAM); exposed for
  /// tests verifying they start at zero (identity attention).
  float alpha() const;
  float beta() const;

 private:
  std::shared_ptr<nn::Conv2d> reduce_pam_, reduce_cam_;
  std::shared_ptr<nn::BatchNorm2d> bn_pam_, bn_cam_;
  std::shared_ptr<nn::Conv2d> pam_b_, pam_c_, pam_d_;
  std::shared_ptr<nn::Conv2d> restore_;
  Tensor alpha_, beta_;
  std::int64_t reduced_;
};

/// Vision-transformer bottleneck: 1x1 embedding to C_t, flatten to tokens,
/// learnable positional embedding, L pre-LN transformer layers, unflatten
/// and 1x1 projection back to the input channel count.
class PatchTransformer : public nn::Module {
 public:
  PatchTransformer(std::int64_t channels, std::int64_t tokens_h,
                   std::int64_t tokens_w, std::int64_t dim, std::int64_t depth,
                   std::int64_t heads, Rng& rng);
  Tensor forward(const Tensor& x) override;

 private:
  std::shared_ptr<nn::Conv2d> embed_, unembed_;
  std::vector<std::shared_ptr<nn::TransformerEncoderLayer>> layers_;
  Tensor pos_;
  std::int64_t dim_, th_, tw_;
};

}  // namespace mfa::models
