#include "models/pgnn.h"

#include "features/features.h"

namespace mfa::models {

using namespace mfa::ops;

GridGraphConv::GridGraphConv(std::int64_t in, std::int64_t out, Rng& rng)
    : in_(in) {
  self_ = register_module("self",
                          std::make_shared<nn::Conv2d>(in, out, 1, rng, 1, 0));
  nbr_ = register_module(
      "nbr", std::make_shared<nn::Conv2d>(in, out, 1, rng, 1, 0, false));
  // Fixed normalised adjacency aggregation: 3x3 box filter applied per
  // channel (depthwise) — built as a [in, in, 3, 3] kernel with box weights
  // on the diagonal, excluded from parameters().
  box_ = Tensor::zeros({in, in, 3, 3});
  for (std::int64_t c = 0; c < in; ++c)
    for (std::int64_t kh = 0; kh < 3; ++kh)
      for (std::int64_t kw = 0; kw < 3; ++kw)
        box_.set({c, c, kh, kw}, 1.0f / 9.0f);
}

Tensor GridGraphConv::forward(const Tensor& x) {
  Tensor agg = conv2d(x, box_, Tensor(), 1, 1);  // A_hat X
  return relu(add(self_->forward(x), nbr_->forward(agg)));
}

PgnnModel::PgnnModel(ModelConfig config) : CongestionModel(config) {
  Rng rng(config.seed);
  embed_dim_ = std::max<std::int64_t>(2, config.base_channels / 2);
  // Pin-derived node features: macro map, pin RUDY, cell density (3 ch).
  gcn1_ = register_module("gcn1",
                          std::make_shared<GridGraphConv>(3, embed_dim_, rng));
  gcn2_ = register_module(
      "gcn2", std::make_shared<GridGraphConv>(embed_dim_, embed_dim_, rng));
  ModelConfig unet_config = config;
  unet_config.in_channels = config.in_channels + embed_dim_;
  unet_ = register_module("unet", std::make_shared<UNetModel>(unet_config));
}

Tensor PgnnModel::forward(const Tensor& features) {
  const std::int64_t N = features.size(0);
  const std::int64_t H = features.size(2);
  const std::int64_t W = features.size(3);
  (void)N;
  (void)H;
  (void)W;
  // Pin-graph node features: macro map, pin RUDY, cell density.
  Tensor macro = narrow(features, 1, features::kMacro, 1);
  Tensor pin_rudy = narrow(features, 1, features::kPinRudy, 1);
  Tensor cell_density = narrow(features, 1, features::kCellDensity, 1);
  Tensor nodes = concat({macro, pin_rudy, cell_density}, 1);
  Tensor embed = gcn2_->forward(gcn1_->forward(nodes));
  return unet_->forward(concat({features, embed}, 1));
}

}  // namespace mfa::models
