#include "models/unet.h"

#include <stdexcept>

namespace mfa::models {

using namespace mfa::ops;

UNetModel::UNetModel(ModelConfig config) : CongestionModel(config) {
  if (config.grid % 16 != 0)
    throw std::invalid_argument("UNetModel: grid must be 16-divisible");
  Rng rng(config.seed);
  const auto C = config.base_channels;
  const std::int64_t ch[5] = {config.in_channels, C, 2 * C, 4 * C, 8 * C};
  for (int i = 0; i < 4; ++i)
    enc_[static_cast<size_t>(i)] = register_module(
        "enc" + std::to_string(i + 1),
        std::make_shared<ConvBnRelu>(ch[i], ch[i + 1], rng));
  bottleneck_ = register_module(
      "bottleneck", std::make_shared<ConvBnRelu>(8 * C, 8 * C, rng));
  dec_[0] = register_module(
      "dec1", std::make_shared<ConvBnRelu>(8 * C + 8 * C, 4 * C, rng));
  dec_[1] = register_module(
      "dec2", std::make_shared<ConvBnRelu>(4 * C + 4 * C, 2 * C, rng));
  dec_[2] =
      register_module("dec3", std::make_shared<ConvBnRelu>(2 * C + 2 * C, C, rng));
  dec_[3] = register_module("dec4", std::make_shared<ConvBnRelu>(C, C, rng));
  head_ = register_module(
      "head",
      std::make_shared<nn::Conv2d>(C, config.num_classes, 1, rng, 1, 0));
}

Tensor UNetModel::forward(const Tensor& features) {
  Tensor e1 = enc_[0]->forward(features);       // [C, /1]
  Tensor p1 = max_pool2d(e1, 2, 2);             //      /2
  Tensor e2 = enc_[1]->forward(p1);             // [2C, /2]
  Tensor p2 = max_pool2d(e2, 2, 2);
  Tensor e3 = enc_[2]->forward(p2);             // [4C, /4]
  Tensor p3 = max_pool2d(e3, 2, 2);
  Tensor e4 = enc_[3]->forward(p3);             // [8C, /8]
  Tensor p4 = max_pool2d(e4, 2, 2);
  Tensor b = bottleneck_->forward(p4);          // [8C, /16]

  Tensor u = upsample_nearest2x(b);             //      /8
  u = dec_[0]->forward(concat({u, e4}, 1));
  u = upsample_nearest2x(u);
  u = dec_[1]->forward(concat({u, e3}, 1));
  u = upsample_nearest2x(u);
  u = dec_[2]->forward(concat({u, e2}, 1));
  u = upsample_nearest2x(u);
  // Note e1 is at /1; u is back at /1 as well. Plain U-Net concatenates, but
  // we follow [6] which fuses with a conv only at the top stage.
  u = dec_[3]->forward(add(u, e1));
  return head_->forward(u);
}

}  // namespace mfa::models
