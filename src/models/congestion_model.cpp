#include "models/congestion_model.h"

#include <stdexcept>

#include "common/trace.h"
#include "models/lhnn.h"
#include "models/mfa_net.h"
#include "models/pgnn.h"
#include "models/pros2.h"
#include "models/unet.h"
#include "tensor/ops.h"
#include "tensor/tape.h"

namespace mfa::models {

Tensor CongestionModel::predict_levels(const Tensor& features) {
  MFA_TRACE_SCOPE("model.predict");
  auto& net = network();
  const bool was_training = net.is_training();
  net.train(false);
  Tensor levels;
  {
    NoGradGuard guard;
    // One inference step for the tape arena: every op intermediate of this
    // forward recycles through the per-thread arena rings (nothing records
    // under NoGrad, so the scope is what keys arena service). `levels` below
    // is a plain pooled leaf and safely outlives the scope.
    tensor::ArenaScope arena_scope;
    Tensor logits = forward(features);  // [N, K, H, W]
    const std::int64_t N = logits.size(0);
    const std::int64_t H = logits.size(2);
    const std::int64_t W = logits.size(3);
    const auto arg = ops::argmax_dim(logits, 1);
    levels = Tensor::zeros({N, H, W});
    for (size_t i = 0; i < arg.size(); ++i)
      levels.data()[i] = static_cast<float>(arg[i]);
  }
  net.train(was_training);
  return levels;
}

std::unique_ptr<CongestionModel> make_model(const std::string& name,
                                            const ModelConfig& config) {
  if (name == "ours" || name == "mfa") {
    return std::make_unique<MfaTransformerNet>(config);
  }
  if (name == "unet") return std::make_unique<UNetModel>(config);
  if (name == "pgnn") return std::make_unique<PgnnModel>(config);
  if (name == "pros2") return std::make_unique<Pros2Model>(config);
  if (name == "lhnn") return std::make_unique<LhnnModel>(config);
  throw std::invalid_argument("make_model: unknown model '" + name + "'");
}

}  // namespace mfa::models
