#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "models/blocks.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/optim.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace mfa {
namespace {

using namespace mfa::ops;
using nn::Adam;
using nn::BatchNorm2d;
using nn::Conv2d;
using nn::LayerNorm;
using nn::Linear;
using nn::MultiHeadSelfAttention;
using nn::Sequential;
using nn::Sgd;
using nn::TransformerEncoderLayer;

TEST(NnLayers, Conv2dOutputShape) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, rng, /*stride=*/2, /*padding=*/1);
  Tensor x = Tensor::zeros({2, 3, 16, 16});
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 8, 8}));
}

TEST(NnLayers, Conv2dParameterCount) {
  Rng rng(1);
  Conv2d conv(4, 6, 3, rng);
  EXPECT_EQ(conv.num_parameters(), 6 * 4 * 3 * 3 + 6);
}

TEST(NnLayers, LinearShapeAndBias) {
  Rng rng(2);
  Linear lin(5, 3, rng);
  Tensor x = Tensor::zeros({4, 5});
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.shape(), (Shape{4, 3}));
  // Zero input -> output equals bias (zero-initialised).
  for (const float v : y.to_vector()) EXPECT_EQ(v, 0.0f);
}

TEST(NnLayers, LinearHandlesLeadingDims) {
  Rng rng(3);
  Linear lin(4, 7, rng);
  Tensor x = Tensor::zeros({2, 3, 4});
  EXPECT_EQ(lin.forward(x).shape(), (Shape{2, 3, 7}));
}

TEST(NnLayers, BatchNormSwitchesModes) {
  Rng rng(4);
  BatchNorm2d bn(2);
  Tensor x = Tensor::randn({4, 2, 4, 4}, rng, 3.0f);
  bn.train(true);
  Tensor y_train = bn.forward(x);
  bn.train(false);
  Tensor y_eval = bn.forward(x);
  // Running stats were updated only partially (momentum), so outputs differ.
  float diff = 0.0f;
  for (std::int64_t i = 0; i < x.numel(); ++i)
    diff += std::fabs(y_train.data()[i] - y_eval.data()[i]);
  EXPECT_GT(diff, 1.0f);
}

TEST(NnLayers, SequentialComposes) {
  Rng rng(5);
  auto seq = std::make_shared<Sequential>();
  seq->add(std::make_shared<Conv2d>(1, 4, 3, rng, 1, 1));
  seq->add(std::make_shared<nn::ReLU>());
  seq->add(std::make_shared<Conv2d>(4, 2, 3, rng, 1, 1));
  Tensor x = Tensor::zeros({1, 1, 8, 8});
  EXPECT_EQ(seq->forward(x).shape(), (Shape{1, 2, 8, 8}));
  EXPECT_EQ(seq->size(), 3u);
}

TEST(NnLayers, ParameterNamesAreQualified) {
  Rng rng(6);
  auto seq = std::make_shared<Sequential>();
  seq->add(std::make_shared<Conv2d>(1, 2, 3, rng));
  const auto names = seq->parameter_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "0.weight");
  EXPECT_EQ(names[1], "0.bias");
}

TEST(NnLayers, ZeroGradClearsAllParams) {
  Rng rng(7);
  Linear lin(3, 2, rng);
  Tensor x = Tensor::ones({1, 3});
  sum(lin.forward(x)).backward();
  bool any_nonzero = false;
  for (const auto& p : lin.parameters())
    for (const float g : p.grad().to_vector()) any_nonzero |= (g != 0.0f);
  EXPECT_TRUE(any_nonzero);
  lin.zero_grad();
  for (const auto& p : lin.parameters())
    for (const float g : p.grad().to_vector()) EXPECT_EQ(g, 0.0f);
}

TEST(NnAttention, OutputShapePreserved) {
  Rng rng(8);
  MultiHeadSelfAttention msa(8, 2, rng);
  Tensor x = Tensor::randn({2, 5, 8}, rng);
  EXPECT_EQ(msa.forward(x).shape(), (Shape{2, 5, 8}));
}

TEST(NnAttention, RejectsIndivisibleHeads) {
  Rng rng(9);
  EXPECT_THROW(MultiHeadSelfAttention(7, 2, rng), std::invalid_argument);
}

TEST(NnAttention, GradCheckThroughMsa) {
  Rng rng(10);
  MultiHeadSelfAttention msa(4, 2, rng);
  Tensor x = Tensor::randn({1, 3, 4}, rng, 0.5f, /*requires_grad=*/true);
  auto inputs = msa.parameters();
  inputs.push_back(x);
  const auto r = gradcheck(
      [&] {
        Tensor y = msa.forward(x);
        return sum(mul(y, y));
      },
      inputs, 1e-2f, 8e-2f);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(NnAttention, TransformerLayerShape) {
  Rng rng(11);
  TransformerEncoderLayer layer(8, 2, 16, rng);
  Tensor x = Tensor::randn({2, 6, 8}, rng);
  EXPECT_EQ(layer.forward(x).shape(), (Shape{2, 6, 8}));
}

TEST(NnAttention, TransformerGradFlowsToAllParams) {
  Rng rng(12);
  TransformerEncoderLayer layer(4, 2, 8, rng);
  Tensor x = Tensor::randn({1, 3, 4}, rng, 0.5f);
  sum(mul(layer.forward(x), layer.forward(x))).backward();
  for (const auto& p : layer.parameters()) {
    float norm = 0.0f;
    for (const float g : p.grad().to_vector()) norm += g * g;
    // All weight matrices should receive gradient (biases of the last layer
    // always do via residual path).
    EXPECT_GE(norm, 0.0f);
  }
}

// Full composite gradcheck through the pre-LN transformer layer: softmax
// attention, both layer norms, the FFN, and the residual adds in one graph.
TEST(NnAttention, GradCheckThroughTransformerLayer) {
  Rng rng(13);
  TransformerEncoderLayer layer(4, 2, 8, rng);
  Tensor x = Tensor::randn({1, 3, 4}, rng, 0.5f, /*requires_grad=*/true);
  auto inputs = layer.parameters();
  inputs.push_back(x);
  const auto r = gradcheck(
      [&] {
        Tensor y = layer.forward(x);
        return sum(mul(y, y));
      },
      inputs, 1e-2f, 8e-2f);
  EXPECT_TRUE(r.ok) << r.detail;
}

// Full gradcheck through the MFA dual-attention block: PAM + CAM branches,
// the channel reduction/restore convs, and both batch norms (training mode).
TEST(NnAttention, GradCheckThroughMfaBlock) {
  Rng rng(14);
  models::MfaBlock block(4, rng);
  // The attention gains start at zero (identity attention); push them off
  // zero so the PAM/CAM softmax paths carry gradient during the check.
  for (auto& p : block.parameters())
    if (p.numel() == 1) p.data()[0] = 0.5f;
  Tensor x = Tensor::randn({1, 4, 3, 3}, rng, 0.5f, /*requires_grad=*/true);
  auto inputs = block.parameters();
  inputs.push_back(x);
  const auto r = gradcheck(
      [&] {
        Tensor y = block.forward(x);
        return sum(mul(y, y));
      },
      inputs, 1e-2f, 8e-2f);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(NnOptim, SgdConvergesOnQuadratic) {
  // minimise (w - 3)^2
  Tensor w = Tensor::scalar(0.0f, /*requires_grad=*/true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    Tensor loss = mul(add_scalar(w, -3.0f), add_scalar(w, -3.0f));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.item(), 3.0f, 1e-3f);
}

TEST(NnOptim, SgdMomentumFasterThanPlain) {
  auto run = [](float momentum) {
    Tensor w = Tensor::scalar(10.0f, /*requires_grad=*/true);
    Sgd opt({w}, 0.02f, momentum);
    for (int i = 0; i < 40; ++i) {
      opt.zero_grad();
      mul(w, w).backward();
      opt.step();
    }
    return std::fabs(w.item());
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(NnOptim, AdamConvergesOnQuadratic) {
  Tensor w = Tensor::from_data({3}, {5.0f, -4.0f, 2.0f}, true);
  Tensor target = Tensor::from_data({3}, {1.0f, 2.0f, -1.0f});
  Adam opt({w}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    mse_loss(w, target).backward();
    opt.step();
  }
  for (std::int64_t i = 0; i < 3; ++i)
    EXPECT_NEAR(w.data()[i], target.data()[i], 1e-2f);
}

TEST(NnOptim, AdamWeightDecayShrinksWeights) {
  Tensor w = Tensor::scalar(1.0f, true);
  Adam opt({w}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  for (int i = 0; i < 50; ++i) {
    opt.zero_grad();
    // Constant-zero loss gradient; decay alone should shrink w.
    mul_scalar(w, 0.0f).backward();
    opt.step();
  }
  EXPECT_LT(std::fabs(w.item()), 1.0f);
}

// End-to-end sanity: a small CNN must be able to overfit a two-image
// classification toy problem — exercises conv/bn/pool/linear/CE/Adam jointly.
TEST(NnIntegration, SmallCnnOverfitsToyProblem) {
  Rng rng(13);
  auto conv1 = std::make_shared<Conv2d>(1, 4, 3, rng, 1, 1);
  auto bn1 = std::make_shared<BatchNorm2d>(4);
  auto conv2 = std::make_shared<Conv2d>(4, 2, 3, rng, 1, 1);
  Sequential net;
  net.add(conv1).add(bn1).add(std::make_shared<nn::ReLU>()).add(conv2);

  // Two 8x8 images: one with a left hotspot, one with a right hotspot.
  Tensor x = Tensor::zeros({2, 1, 8, 8});
  for (std::int64_t i = 0; i < 8; ++i) {
    x.set({0, 0, i, 1}, 1.0f);
    x.set({1, 0, i, 6}, 1.0f);
  }
  Tensor targets = Tensor::from_data({2}, {0, 1});

  Adam opt(net.parameters(), 0.02f);
  float final_loss = 1e9f;
  for (int epoch = 0; epoch < 200; ++epoch) {
    opt.zero_grad();
    Tensor feat = net.forward(x);                       // [2, 2, 8, 8]
    Tensor pooled = ops::global_avg_pool(feat);         // [2, 2, 1, 1]
    Tensor logits = reshape(pooled, {2, 2});
    Tensor loss = cross_entropy(logits, targets);
    loss.backward();
    opt.step();
    final_loss = loss.item();
  }
  EXPECT_LT(final_loss, 0.1f);
}

// A single transformer layer must be able to overfit a token-permutation
// regression task that requires cross-token communication.
TEST(NnIntegration, TransformerLearnsCrossTokenTask) {
  Rng rng(14);
  TransformerEncoderLayer layer(4, 2, 8, rng);
  // Input tokens; target = sequence-reversed tokens. Self-attention is the
  // only mechanism that can move information between positions.
  Tensor x = Tensor::randn({1, 4, 4}, rng, 1.0f);
  Tensor target = permute(x, {0, 1, 2}).detach();
  // Reverse tokens manually.
  Tensor rev = Tensor::zeros({1, 4, 4});
  for (std::int64_t l = 0; l < 4; ++l)
    for (std::int64_t d = 0; d < 4; ++d)
      rev.set({0, l, d}, x.at({0, 3 - l, d}));

  Adam opt(layer.parameters(), 0.01f);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    Tensor loss = mse_loss(layer.forward(x), rev);
    loss.backward();
    opt.step();
    if (i == 0) first = loss.item();
    last = loss.item();
  }
  EXPECT_LT(last, first * 0.2f);
}

}  // namespace
}  // namespace mfa
