#include <gtest/gtest.h>

#include <cmath>

#include "common/fault.h"
#include "netlist/generator.h"
#include "place/inflation.h"
#include "place/legalizer.h"
#include "place/placer.h"

namespace mfa::place {
namespace {

using fpga::DeviceGrid;
using fpga::Resource;
using netlist::Design;
using netlist::DesignGenerator;

DeviceGrid test_device() { return DeviceGrid::make_xcvu3p_like(60, 40); }

Design small_design(const DeviceGrid& device) {
  netlist::DesignSpec spec = netlist::mlcad2023_spec("Design_116");
  // Shrink for unit-test speed while keeping structure.
  spec.lut_util = 0.3;
  spec.ff_util = 0.15;
  spec.dsp_util = 0.6;
  spec.bram_util = 0.6;
  spec.uram_util = 0.3;
  return DesignGenerator::generate(spec, device);
}

TEST(Problem, CascadesBecomeSingleObjects) {
  const auto device = test_device();
  const auto design = small_design(device);
  const PlacementProblem problem(design, device);
  EXPECT_LT(problem.num_objects(), design.num_cells());
  for (std::size_t si = 0; si < design.cascades.size(); ++si) {
    const auto& shape = design.cascades[si];
    const auto obj = problem.object_of_cell[static_cast<size_t>(shape.macros[0])];
    for (const auto id : shape.macros)
      EXPECT_EQ(problem.object_of_cell[static_cast<size_t>(id)], obj);
    const auto& o = problem.objects[static_cast<size_t>(obj)];
    EXPECT_EQ(o.cells.size(), shape.macros.size());
    EXPECT_DOUBLE_EQ(o.height, static_cast<double>(shape.macros.size()));
    // Offsets are consecutive in order.
    for (size_t k = 0; k < o.off_y.size(); ++k)
      EXPECT_DOUBLE_EQ(o.off_y[k], static_cast<double>(k));
  }
}

TEST(Problem, EveryCellHasAnObject) {
  const auto device = test_device();
  const auto design = small_design(device);
  const PlacementProblem problem(design, device);
  for (const auto obj : problem.object_of_cell) {
    ASSERT_GE(obj, 0);
    ASSERT_LT(obj, problem.num_objects());
  }
}

TEST(Problem, ExpandRoundTripsPositions) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  Placement placement;
  placement.x.assign(problem.objects.size(), 7.5);
  placement.y.assign(problem.objects.size(), 3.25);
  std::vector<double> cx, cy;
  placement.expand(problem, cx, cy);
  ASSERT_EQ(static_cast<std::int64_t>(cx.size()), design.num_cells());
  for (std::int64_t i = 0; i < design.num_cells(); ++i) {
    EXPECT_DOUBLE_EQ(cx[static_cast<size_t>(i)], 7.5);
    const auto obj =
        problem.objects[static_cast<size_t>(
            problem.object_of_cell[static_cast<size_t>(i)])];
    (void)obj;
    EXPECT_GE(cy[static_cast<size_t>(i)], 3.25);
  }
}

TEST(Placer, InitRandomPlacesInBoundsAndInRegions) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  GlobalPlacer placer(problem, {});
  placer.init_random();
  const auto& p = placer.placement();
  for (size_t oi = 0; oi < problem.objects.size(); ++oi) {
    EXPECT_GE(p.x[oi], 0.0);
    EXPECT_LE(p.x[oi], static_cast<double>(device.cols()));
    EXPECT_GE(p.y[oi], 0.0);
    EXPECT_LE(p.y[oi], static_cast<double>(device.rows()));
    const auto& obj = problem.objects[oi];
    if (obj.region >= 0) {
      const auto& region = design.regions[static_cast<size_t>(obj.region)];
      EXPECT_TRUE(region.contains(p.x[oi], p.y[oi]));
    }
  }
}

TEST(Placer, IterationsReduceWirelength) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  PlacerOptions options;
  options.seed = 3;
  GlobalPlacer placer(problem, options);
  placer.init_random();
  const double wl0 = placer.wirelength();
  placer.iterate(60);
  EXPECT_LT(placer.wirelength(), wl0);
}

TEST(Placer, OverflowDecreasesFromClumpedStart) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  PlacerOptions options;
  options.seed = 4;
  GlobalPlacer placer(problem, options);
  placer.init_random();
  // Clump everything in one corner to force overflow.
  for (auto& x : placer.placement().x) x = 2.0;
  for (auto& y : placer.placement().y) y = 2.0;
  const auto of0 = placer.overflow();
  placer.iterate(120);
  const auto of1 = placer.overflow();
  EXPECT_LT(of1[static_cast<size_t>(Resource::Lut)],
            of0[static_cast<size_t>(Resource::Lut)]);
}

TEST(Placer, RunUntilOverflowTargetMeetsGate) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  PlacerOptions options;
  options.seed = 5;
  options.max_iterations = 600;
  GlobalPlacer placer(problem, options);
  placer.init_random();
  const bool met = placer.run_until_overflow_target();
  EXPECT_TRUE(met);
  const auto of = placer.overflow();
  EXPECT_LT(of[static_cast<size_t>(Resource::Dsp)], 0.25);
  EXPECT_LT(of[static_cast<size_t>(Resource::Lut)], 0.15);
}

TEST(Placer, NoBudgetRunsAllIterations) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  GlobalPlacer placer(problem, {});  // time_budget_seconds = 0: unlimited
  placer.init_random();
  EXPECT_EQ(placer.iterate(5), 5);
  EXPECT_FALSE(placer.budget_exhausted());
}

TEST(Placer, WallClockBudgetStopsEarlyWithPartialResult) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  PlacerOptions options;
  options.time_budget_seconds = 1e-6;  // exhausted almost immediately
  options.max_iterations = 200;
  GlobalPlacer placer(problem, options);
  placer.init_random();
  const auto done = placer.iterate(50);
  EXPECT_LT(done, 50);
  EXPECT_TRUE(placer.budget_exhausted());
  // The flag is sticky: further calls return without iterating.
  EXPECT_EQ(placer.iterate(10), 0);
  // The partial placement is still usable (everything in clamp bounds; the
  // clamp allows up to 0.75 sites of overhang for sub-site-height objects).
  const auto& p = placer.placement();
  for (size_t oi = 0; oi < problem.objects.size(); ++oi) {
    EXPECT_GE(p.x[oi], 0.0);
    EXPECT_LE(p.x[oi], static_cast<double>(device.cols()));
    EXPECT_GE(p.y[oi], 0.0);
    EXPECT_LE(p.y[oi], static_cast<double>(device.rows()) + 0.75);
  }
}

TEST(Placer, BudgetFaultForcesDeterministicExhaustion) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  auto& fi = common::FaultInjector::instance();
  fi.reset();
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  GlobalPlacer placer(problem, {});
  placer.init_random();
  fi.arm_always("place.budget");
  EXPECT_EQ(placer.iterate(10), 0);
  EXPECT_TRUE(placer.budget_exhausted());
  fi.reset();
  // Sticky even after the fault is disarmed: the caller decided the run is
  // out of budget, so the best partial result stands.
  EXPECT_EQ(placer.iterate(10), 0);
}

TEST(Legalizer, ProducesLegalMacroPlacement) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  PlacerOptions options;
  options.seed = 6;
  GlobalPlacer placer(problem, options);
  placer.init_random();
  placer.iterate(50);
  Placement placement = placer.placement();
  const auto result = Legalizer::legalize_macros(problem, placement);
  EXPECT_TRUE(result.success);
  EXPECT_GT(result.macros_placed, 0);
  EXPECT_EQ(Legalizer::check_macros(problem, placement), "");
}

TEST(Legalizer, CheckCatchesOverlap) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  Placement placement;
  placement.x.assign(problem.objects.size(), 0.0);
  placement.y.assign(problem.objects.size(), 0.0);
  // Put two DSP macros on the same site.
  const auto dsp_col = device.columns_of(fpga::SiteType::Dsp)[0];
  int found = 0;
  for (size_t oi = 0; oi < problem.objects.size() && found < 2; ++oi) {
    if (problem.objects[oi].resource == Resource::Dsp &&
        problem.objects[oi].height == 1.0) {
      placement.x[oi] = static_cast<double>(dsp_col) + 0.5;
      placement.y[oi] = 0.5;
      ++found;
    }
  }
  ASSERT_EQ(found, 2);
  EXPECT_NE(Legalizer::check_macros(problem, placement), "");
}

TEST(Inflation, NoInflationBelowThreshold) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  Placement placement;
  placement.x.assign(problem.objects.size(), 5.0);
  placement.y.assign(problem.objects.size(), 5.0);
  const std::vector<float> levels(64 * 64, 3.0f);  // at threshold, not above
  const auto stats = apply_inflation(problem, placement, levels, 64, 64);
  EXPECT_EQ(stats.inflated_objects, 0);
  EXPECT_DOUBLE_EQ(stats.area_added, 0.0);
}

TEST(Inflation, Eq11FactorApplied) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  problem.reset_areas();
  Placement placement;
  placement.x.assign(problem.objects.size(), 1.0);
  placement.y.assign(problem.objects.size(), 1.0);
  // Uniform level-4 congestion: factor = max(1, 4-2)^2.5 = 5.657; budget caps
  // the applied growth via tau.
  const std::vector<float> levels(64 * 64, 4.0f);
  const double area_before = [&] {
    double a = 0.0;
    for (const auto& o : problem.objects) a += o.area;
    return a;
  }();
  const auto stats = apply_inflation(problem, placement, levels, 64, 64);
  EXPECT_GT(stats.inflated_objects, 0);
  EXPECT_GT(stats.area_added, 0.0);
  double area_after = 0.0;
  for (const auto& o : problem.objects) area_after += o.area;
  EXPECT_NEAR(area_after, area_before + stats.area_added, 1e-6);
}

TEST(Inflation, RespectsCapacityBudget) {
  const auto device = test_device();
  // High-utilisation design: inflation budget must be tight.
  const auto design =
      DesignGenerator::generate(netlist::mlcad2023_spec("Design_116"), device);
  PlacementProblem problem(design, device);
  Placement placement;
  placement.x.assign(problem.objects.size(), 1.0);
  placement.y.assign(problem.objects.size(), 1.0);
  const std::vector<float> levels(64 * 64, 7.0f);  // extreme congestion
  apply_inflation(problem, placement, levels, 64, 64);
  for (std::size_t r = 0; r < fpga::kNumResources; ++r) {
    double total = 0.0;
    for (const auto& o : problem.objects)
      if (static_cast<std::size_t>(o.resource) == r) total += o.area;
    EXPECT_LE(total,
              device.area_capacity(static_cast<Resource>(r)) * (1.0 + 1e-9))
        << fpga::to_string(static_cast<Resource>(r));
  }
}

TEST(Inflation, MonotoneInLevel) {
  const auto device = test_device();
  const auto design = small_design(device);
  const auto run = [&](float level) {
    PlacementProblem problem(design, device);
    Placement placement;
    placement.x.assign(problem.objects.size(), 1.0);
    placement.y.assign(problem.objects.size(), 1.0);
    const std::vector<float> levels(64 * 64, level);
    return apply_inflation(problem, placement, levels, 64, 64).area_added;
  };
  EXPECT_LE(run(4.0f), run(5.0f));
  EXPECT_LE(run(5.0f), run(6.0f));
}

TEST(Inflation, ResetAreasUndoesInflation) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  Placement placement;
  placement.x.assign(problem.objects.size(), 1.0);
  placement.y.assign(problem.objects.size(), 1.0);
  const std::vector<float> levels(64 * 64, 5.0f);
  apply_inflation(problem, placement, levels, 64, 64);
  problem.reset_areas();
  for (const auto& o : problem.objects) EXPECT_DOUBLE_EQ(o.area, o.base_area);
}

TEST(Inflation, RejectsBadMapSize) {
  const auto device = test_device();
  const auto design = small_design(device);
  PlacementProblem problem(design, device);
  Placement placement;
  placement.x.assign(problem.objects.size(), 1.0);
  placement.y.assign(problem.objects.size(), 1.0);
  const std::vector<float> levels(10, 5.0f);
  EXPECT_THROW(apply_inflation(problem, placement, levels, 64, 64),
               std::invalid_argument);
}

}  // namespace
}  // namespace mfa::place
