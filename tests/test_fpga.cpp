#include <gtest/gtest.h>

#include "fpga/device.h"
#include "fpga/tile_grid.h"

namespace mfa::fpga {
namespace {

TEST(Device, ColumnPatternCoversAllTypes) {
  const DeviceGrid dev = DeviceGrid::make_xcvu3p_like();
  EXPECT_GT(dev.columns_of(SiteType::Clb).size(), 0u);
  EXPECT_GT(dev.columns_of(SiteType::Dsp).size(), 0u);
  EXPECT_GT(dev.columns_of(SiteType::Bram).size(), 0u);
  EXPECT_GT(dev.columns_of(SiteType::Uram).size(), 0u);
  // CLB columns dominate, as on the real fabric.
  EXPECT_GT(dev.columns_of(SiteType::Clb).size(),
            dev.columns_of(SiteType::Dsp).size() * 4);
}

TEST(Device, ColumnsArePure) {
  const DeviceGrid dev = DeviceGrid::make_xcvu3p_like(40, 20);
  for (std::int64_t c = 0; c < dev.cols(); ++c)
    for (std::int64_t r = 0; r < dev.rows(); ++r)
      EXPECT_EQ(dev.site_type(c, r), dev.column_type(c));
}

TEST(Device, SiteCountsConsistent) {
  const DeviceGrid dev = DeviceGrid::make_xcvu3p_like(60, 40);
  std::int64_t total = 0;
  for (std::size_t t = 0; t < kNumSiteTypes; ++t)
    total += dev.site_count(static_cast<SiteType>(t));
  EXPECT_EQ(total, dev.cols() * dev.rows());
}

TEST(Device, ResourceCapacityMatchesClbRatios) {
  const DeviceGrid dev = DeviceGrid::make_xcvu3p_like(60, 40);
  // FF capacity is exactly twice LUT capacity (8 LUT / 16 FF per CLB).
  EXPECT_EQ(dev.resource_capacity(Resource::Ff),
            2 * dev.resource_capacity(Resource::Lut));
  EXPECT_EQ(dev.resource_capacity(Resource::Dsp),
            dev.site_count(SiteType::Dsp));
  EXPECT_EQ(dev.resource_capacity(Resource::Bram),
            dev.site_count(SiteType::Bram));
}

TEST(Device, RejectsBadDimensions) {
  EXPECT_THROW(DeviceGrid(0, 10), std::invalid_argument);
  EXPECT_THROW(DeviceGrid(10, -1), std::invalid_argument);
}

TEST(Device, OutOfBoundsSiteThrows) {
  const DeviceGrid dev = DeviceGrid::make_xcvu3p_like(10, 10);
  EXPECT_THROW(dev.site_type(10, 0), std::out_of_range);
  EXPECT_THROW(dev.site_type(0, -1), std::out_of_range);
}

TEST(Device, SiteCapacityTable) {
  EXPECT_EQ(site_capacity(SiteType::Clb, Resource::Lut), 8);
  EXPECT_EQ(site_capacity(SiteType::Clb, Resource::Ff), 16);
  EXPECT_EQ(site_capacity(SiteType::Clb, Resource::Dsp), 0);
  EXPECT_EQ(site_capacity(SiteType::Dsp, Resource::Dsp), 1);
  EXPECT_EQ(site_capacity(SiteType::Bram, Resource::Bram), 1);
  EXPECT_EQ(site_capacity(SiteType::Uram, Resource::Uram), 1);
  EXPECT_EQ(site_capacity(SiteType::Dsp, Resource::Lut), 0);
}

TEST(Device, MacroResourceClassification) {
  EXPECT_FALSE(is_macro_resource(Resource::Lut));
  EXPECT_FALSE(is_macro_resource(Resource::Ff));
  EXPECT_TRUE(is_macro_resource(Resource::Dsp));
  EXPECT_TRUE(is_macro_resource(Resource::Bram));
  EXPECT_TRUE(is_macro_resource(Resource::Uram));
}

TEST(TileGrid, CoordinateMappingClampsAndScales) {
  const InterconnectTileGrid tiles(64, 64, 120, 80);
  EXPECT_EQ(tiles.tile_x(0.0), 0);
  EXPECT_EQ(tiles.tile_x(119.9), 63);
  EXPECT_EQ(tiles.tile_x(1e9), 63);
  EXPECT_EQ(tiles.tile_x(-5.0), 0);
  EXPECT_EQ(tiles.tile_y(40.0), 32);
}

TEST(TileGrid, CapacitiesByClass) {
  const InterconnectTileGrid tiles(8, 8, 16, 16, 20, 10);
  EXPECT_EQ(tiles.capacity(WireClass::Short), 20);
  EXPECT_EQ(tiles.capacity(WireClass::Global), 10);
  EXPECT_EQ(tiles.num_tiles(), 64);
}

TEST(TileGrid, RejectsBadDimensions) {
  EXPECT_THROW(InterconnectTileGrid(0, 8, 16, 16), std::invalid_argument);
}

}  // namespace
}  // namespace mfa::fpga
