#include <gtest/gtest.h>

#include "features/features.h"
#include "netlist/generator.h"

namespace mfa::features {
namespace {

using fpga::DeviceGrid;
using fpga::Resource;
using netlist::Design;

DeviceGrid test_device() { return DeviceGrid::make_xcvu3p_like(60, 40); }

/// Minimal hand-built design: 2 LUTs + 1 DSP macro, one net over all three.
Design hand_design() {
  Design design;
  design.cells.resize(3);
  design.cells[0].resource = Resource::Lut;
  design.cells[1].resource = Resource::Lut;
  design.cells[2].resource = Resource::Dsp;
  netlist::Net net;
  net.pins = {0, 1, 2};
  design.nets.push_back(net);
  return design;
}

TEST(Features, OutputShapeAndChannelCount) {
  const auto device = test_device();
  const auto design = hand_design();
  const std::vector<double> cx = {1.0, 30.0, 59.0};
  const std::vector<double> cy = {1.0, 20.0, 39.0};
  FeatureOptions options;
  options.grid_width = 32;
  options.grid_height = 16;
  const Tensor f = extract_features(design, device, cx, cy, options);
  EXPECT_EQ(f.shape(), (Shape{kNumChannels, 16, 32}));
}

TEST(Features, MacroMapMarksOnlyMacros) {
  const auto device = test_device();
  const auto design = hand_design();
  const std::vector<double> cx = {1.0, 1.0, 59.0};
  const std::vector<double> cy = {1.0, 1.0, 39.0};
  FeatureOptions options;
  options.normalize = false;
  const Tensor f = extract_features(design, device, cx, cy, options);
  // DSP at (59, 39) -> grid (62..63, 62..63) region; LUTs at low corner.
  float macro_sum = 0.0f, cell_sum = 0.0f;
  for (std::int64_t i = 0; i < 64 * 64; ++i) {
    macro_sum += f.data()[kMacro * 64 * 64 + i];
    cell_sum += f.data()[kCellDensity * 64 * 64 + i];
  }
  EXPECT_FLOAT_EQ(macro_sum, 1.0f);
  EXPECT_FLOAT_EQ(cell_sum, 2.0f);
}

TEST(Features, RudyIsSuperpositionOfHAndV) {
  const auto device = test_device();
  const auto design =
      netlist::DesignGenerator::generate(netlist::mlcad2023_spec("Design_136"),
                                         device);
  std::vector<double> cx(static_cast<size_t>(design.num_cells()));
  std::vector<double> cy(cx.size());
  Rng rng(7);
  for (auto& v : cx) v = rng.uniform(0.0, 60.0);
  for (auto& v : cy) v = rng.uniform(0.0, 40.0);
  FeatureOptions options;
  options.normalize = false;
  const Tensor f = extract_features(design, device, cx, cy, options);
  const std::int64_t hw = options.grid_height * options.grid_width;
  for (std::int64_t i = 0; i < hw; ++i)
    EXPECT_NEAR(f.data()[kRudy * hw + i],
                f.data()[kHorizNetDensity * hw + i] +
                    f.data()[kVertNetDensity * hw + i],
                1e-4f);
}

TEST(Features, AllMapsNonNegative) {
  const auto device = test_device();
  const auto design =
      netlist::DesignGenerator::generate(netlist::mlcad2023_spec("Design_190"),
                                         device);
  std::vector<double> cx(static_cast<size_t>(design.num_cells()), 0.0);
  std::vector<double> cy(cx.size(), 0.0);
  Rng rng(9);
  for (auto& v : cx) v = rng.uniform(0.0, 60.0);
  for (auto& v : cy) v = rng.uniform(0.0, 40.0);
  const Tensor f = extract_features(design, device, cx, cy);
  for (std::int64_t i = 0; i < f.numel(); ++i)
    EXPECT_GE(f.data()[i], 0.0f);
}

TEST(Features, NormalizationBoundsChannelsToUnit) {
  const auto device = test_device();
  const auto design =
      netlist::DesignGenerator::generate(netlist::mlcad2023_spec("Design_227"),
                                         device);
  std::vector<double> cx(static_cast<size_t>(design.num_cells()), 0.0);
  std::vector<double> cy(cx.size(), 0.0);
  Rng rng(11);
  for (auto& v : cx) v = rng.uniform(0.0, 60.0);
  for (auto& v : cy) v = rng.uniform(0.0, 40.0);
  const Tensor f = extract_features(design, device, cx, cy);
  float mx = 0.0f;
  for (std::int64_t i = 0; i < f.numel(); ++i)
    mx = std::max(mx, f.data()[i]);
  EXPECT_LE(mx, 1.0f + 1e-6f);
  EXPECT_GT(mx, 0.99f);  // at least one channel hits its max
}

TEST(Features, HotspotShowsUpInRudy) {
  const auto device = test_device();
  const auto design =
      netlist::DesignGenerator::generate(netlist::mlcad2023_spec("Design_116"),
                                         device);
  std::vector<double> cx(static_cast<size_t>(design.num_cells()));
  std::vector<double> cy(cx.size());
  Rng rng(13);
  // Everything in a small square -> RUDY mass concentrated there.
  for (auto& v : cx) v = rng.uniform(10.0, 20.0);
  for (auto& v : cy) v = rng.uniform(10.0, 20.0);
  FeatureOptions options;
  options.normalize = false;
  const Tensor f = extract_features(design, device, cx, cy, options);
  const std::int64_t hw = 64 * 64;
  double inside = 0.0, outside = 0.0;
  for (std::int64_t gy = 0; gy < 64; ++gy)
    for (std::int64_t gx = 0; gx < 64; ++gx) {
      const double v = f.data()[kRudy * hw + gy * 64 + gx];
      // Device (10..20, 10..20) -> grid x in [10,22), y in [16,32).
      if (gx >= 10 && gx < 22 && gy >= 16 && gy < 32)
        inside += v;
      else
        outside += v;
    }
  EXPECT_GT(inside, outside);
}

TEST(Features, CoordinateSizeMismatchThrows) {
  const auto device = test_device();
  const auto design = hand_design();
  const std::vector<double> cx = {1.0, 2.0};  // one short
  const std::vector<double> cy = {1.0, 2.0, 3.0};
  EXPECT_THROW(extract_features(design, device, cx, cy),
               std::invalid_argument);
}

TEST(Features, ChannelNamesAreStable) {
  EXPECT_STREQ(channel_name(kMacro), "macro");
  EXPECT_STREQ(channel_name(kRudy), "rudy");
  EXPECT_STREQ(channel_name(kPinRudy), "pin_rudy");
  EXPECT_STREQ(channel_name(kCellDensity), "cell_density");
}

}  // namespace
}  // namespace mfa::features
