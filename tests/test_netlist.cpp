#include <gtest/gtest.h>

#include <set>

#include "netlist/design.h"
#include "netlist/generator.h"

namespace mfa::netlist {
namespace {

using fpga::DeviceGrid;
using fpga::Resource;

DeviceGrid test_device() { return DeviceGrid::make_xcvu3p_like(60, 40); }

TEST(Generator, SuiteContainsAllPaperDesigns) {
  const auto suite = mlcad2023_suite();
  EXPECT_EQ(suite.size(), 11u);  // Tables I and II union
  std::set<std::string> names;
  for (const auto& s : suite) names.insert(s.name);
  for (const char* n :
       {"Design_116", "Design_120", "Design_136", "Design_156", "Design_176",
        "Design_180", "Design_190", "Design_197", "Design_227", "Design_230",
        "Design_237"})
    EXPECT_TRUE(names.count(n)) << n;
}

TEST(Generator, SpecLookupThrowsOnUnknown) {
  EXPECT_NO_THROW(mlcad2023_spec("Design_116"));
  EXPECT_THROW(mlcad2023_spec("Design_999"), std::invalid_argument);
}

TEST(Generator, UtilisationsTrackTableOne) {
  // Design_116: 370K/394K LUT, 315K/788K FF, 2052/2280 DSP, 648/720 BRAM.
  const auto spec = mlcad2023_spec("Design_116");
  EXPECT_NEAR(spec.lut_util, 0.939, 0.01);
  EXPECT_NEAR(spec.ff_util, 0.400, 0.01);
  EXPECT_NEAR(spec.dsp_util, 0.900, 0.01);
  EXPECT_NEAR(spec.bram_util, 0.900, 0.01);
}

TEST(Generator, GeneratedCountsMatchSpec) {
  const auto device = test_device();
  const auto spec = mlcad2023_spec("Design_116");
  const Design design = DesignGenerator::generate(spec, device);
  EXPECT_NEAR(static_cast<double>(design.count(Resource::Lut)),
              spec.lut_util * static_cast<double>(
                                  device.resource_capacity(Resource::Lut)),
              2.0);
  EXPECT_NEAR(static_cast<double>(design.count(Resource::Dsp)),
              spec.dsp_util * static_cast<double>(
                                  device.resource_capacity(Resource::Dsp)),
              2.0);
  // Demand never exceeds capacity (the generator targets utilisation < 1).
  for (std::size_t r = 0; r < fpga::kNumResources; ++r) {
    const auto res = static_cast<Resource>(r);
    EXPECT_LE(design.count(res), device.resource_capacity(res));
  }
}

TEST(Generator, DeterministicPerSeed) {
  const auto device = test_device();
  const auto spec = mlcad2023_spec("Design_120");
  const Design a = DesignGenerator::generate(spec, device);
  const Design b = DesignGenerator::generate(spec, device);
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (std::int64_t i = 0; i < a.num_nets(); ++i)
    EXPECT_EQ(a.nets[static_cast<size_t>(i)].pins,
              b.nets[static_cast<size_t>(i)].pins);
}

TEST(Generator, DifferentDesignsDiffer) {
  const auto device = test_device();
  const Design a =
      DesignGenerator::generate(mlcad2023_spec("Design_116"), device);
  const Design b =
      DesignGenerator::generate(mlcad2023_spec("Design_180"), device);
  EXPECT_NE(a.num_nets(), b.num_nets());
}

TEST(Generator, CascadesAreHomogeneousAndLinked) {
  const auto device = test_device();
  const Design design =
      DesignGenerator::generate(mlcad2023_spec("Design_136"), device);
  EXPECT_GT(design.cascades.size(), 0u);
  for (std::size_t si = 0; si < design.cascades.size(); ++si) {
    const auto& shape = design.cascades[si];
    EXPECT_GE(shape.macros.size(), 2u);
    const auto res = design.cells[static_cast<size_t>(shape.macros[0])].resource;
    EXPECT_TRUE(fpga::is_macro_resource(res));
    for (const auto id : shape.macros) {
      EXPECT_EQ(design.cells[static_cast<size_t>(id)].resource, res);
      EXPECT_EQ(design.cells[static_cast<size_t>(id)].cascade,
                static_cast<std::int32_t>(si));
    }
  }
}

TEST(Generator, CascadeFractionRoughlyRespected) {
  const auto device = test_device();
  const auto spec = mlcad2023_spec("Design_156");
  const Design design = DesignGenerator::generate(spec, device);
  std::int64_t in_cascade = 0, macros = 0;
  for (const auto& c : design.cells) {
    if (!c.is_macro()) continue;
    ++macros;
    in_cascade += (c.cascade >= 0);
  }
  const double frac = static_cast<double>(in_cascade) /
                      static_cast<double>(macros);
  EXPECT_GT(frac, spec.cascade_fraction - 0.2);
  EXPECT_LT(frac, spec.cascade_fraction + 0.2);
}

TEST(Generator, RegionsExistAndValidate) {
  const auto device = test_device();
  const Design design =
      DesignGenerator::generate(mlcad2023_spec("Design_176"), device);
  EXPECT_GT(design.regions.size(), 0u);
  std::int64_t assigned = 0;
  for (const auto& c : design.cells) assigned += (c.region >= 0);
  EXPECT_GT(assigned, 0);
  EXPECT_NO_THROW(design.validate(device));
}

TEST(Generator, NetsHaveAtLeastTwoPins) {
  const auto device = test_device();
  const Design design =
      DesignGenerator::generate(mlcad2023_spec("Design_190"), device);
  for (const auto& net : design.nets) EXPECT_GE(net.pins.size(), 2u);
  // Average degree in a plausible LUT-netlist range.
  const double avg = static_cast<double>(design.num_pins()) /
                     static_cast<double>(design.num_nets());
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 6.0);
}

TEST(DesignValidate, CatchesBrokenStructures) {
  const auto device = test_device();
  Design design;
  design.cells.resize(4);
  Net net;
  net.pins = {0, 9};  // missing cell
  design.nets.push_back(net);
  EXPECT_THROW(design.validate(device), std::runtime_error);

  design.nets[0].pins = {0, 1};
  EXPECT_NO_THROW(design.validate(device));

  CascadeShape bad;
  bad.macros = {0};  // LUT cascade is illegal
  design.cells[0].cascade = 0;
  design.cascades.push_back(bad);
  EXPECT_THROW(design.validate(device), std::runtime_error);
}

TEST(DesignValidate, CatchesOffDeviceRegion) {
  const auto device = test_device();
  Design design;
  design.cells.resize(2);
  Net net;
  net.pins = {0, 1};
  design.nets.push_back(net);
  RegionConstraint region;
  region.col_lo = 0;
  region.row_lo = 0;
  region.col_hi = device.cols();  // one past the edge
  region.row_hi = 2;
  design.regions.push_back(region);
  EXPECT_THROW(design.validate(device), std::runtime_error);
}

TEST(Design, CountsAndStats) {
  Design design;
  design.cells.resize(5);
  design.cells[0].resource = Resource::Lut;
  design.cells[1].resource = Resource::Lut;
  design.cells[2].resource = Resource::Dsp;
  design.cells[3].resource = Resource::Bram;
  design.cells[4].resource = Resource::Ff;
  EXPECT_EQ(design.count(Resource::Lut), 2);
  EXPECT_EQ(design.count(Resource::Dsp), 1);
  EXPECT_EQ(design.num_macros(), 2);
}

}  // namespace
}  // namespace mfa::netlist
