// Tests for the storage sanitizer (common/sanitize.h + the hooks in
// tensor/storage.cpp and common/thread_pool.cpp).
//
// The four defect classes — redzone overrun, stale-handle lifetime, declared
// parallel-write overlap, and refcount discipline — are each manufactured
// deliberately and must be caught DETERMINISTICALLY: the same defect, the
// same report, under MFA_THREADS 1 and 4 (the suite runs every detection
// test at both pool sizes). A clean 2-epoch training run must report zero
// violations while the checker demonstrably looked (redzone_checks > 0).
//
// The defects are manufactured through the sanitize_* test hooks on Storage,
// which keep the underlying memory valid (blocks recycle into the pool's
// free lists) — exactly the corruption family ASan cannot see. The pool is
// forced ON for those tests: with MFA_POOL=off a released block is a real
// heap free and touching it would be genuine UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/sanitize.h"
#include "common/thread_pool.h"
#include "models/congestion_model.h"
#include "tensor/ops.h"
#include "tensor/storage.h"
#include "tensor/tensor.h"
#include "train/dataset.h"
#include "train/trainer.h"

namespace mfa {
namespace {

using tensor::Storage;
using tensor::StoragePool;

/// Forces pool + checker on (throwing mode), pins the thread-pool size, and
/// restores the ambient configuration on scope exit. Counters are reset so
/// each test asserts on its own violations only.
class SanitizeEnv {
 public:
  explicit SanitizeEnv(int threads)
      : pool_prev_(StoragePool::instance().enabled()),
        san_prev_(sanitize::enabled()),
        throw_prev_(sanitize::throw_on_violation()),
        threads_prev_(common::ThreadPool::instance().size()) {
    StoragePool::instance().set_enabled(true);
    sanitize::set_enabled(true);
    sanitize::set_throw_on_violation(true);
    sanitize::reset_counts();
    common::ThreadPool::instance().resize_for_testing(threads);
  }
  ~SanitizeEnv() {
    common::ThreadPool::instance().resize_for_testing(threads_prev_);
    sanitize::set_throw_on_violation(throw_prev_);
    sanitize::set_enabled(san_prev_);
    StoragePool::instance().set_enabled(pool_prev_);
    common::FaultInjector::instance().reset();
  }

 private:
  bool pool_prev_;
  bool san_prev_;
  bool throw_prev_;
  int threads_prev_;
};

/// Runs `fn`, which must throw check::CheckError, and returns the message.
template <typename Fn>
std::string capture_violation(Fn&& fn) {
  try {
    fn();
  } catch (const check::CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a sanitizer CheckError, none was thrown";
  return {};
}

class SanitizeDetect : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    if (!sanitize::compiled_in())
      GTEST_SKIP() << "storage sanitizer compiled out (NDEBUG build)";
  }
};

// ---- defect class 1: redzone overrun ------------------------------------

TEST_P(SanitizeDetect, RedzoneOverrunIsCaught) {
  const SanitizeEnv env(GetParam());
  Storage s = Storage::full(32, 0.0f);  // exact bucket: capacity == 32
  s.data()[32] = 1.0f;                  // one float past the end
  const std::string msg =
      capture_violation([&] { s.verify_guards(); });
  EXPECT_NE(msg.find("sanitize[redzone]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("past the end"), std::string::npos) << msg;
  EXPECT_EQ(sanitize::counts().redzone, 1);
  // The report repainted the zone: the next check is clean (one report per
  // corruption, not one per sweep).
  EXPECT_NO_THROW(s.verify_guards());
  EXPECT_EQ(sanitize::counts().redzone, 1);
}

TEST_P(SanitizeDetect, RedzoneUnderrunIsCaught) {
  const SanitizeEnv env(GetParam());
  Storage s = Storage::full(64, 0.0f);
  s.data()[-1] = -1.0f;  // into the leading guard zone
  const std::string msg =
      capture_violation([&] { s.verify_guards(); });
  EXPECT_NE(msg.find("sanitize[redzone]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("before float 0"), std::string::npos) << msg;
  EXPECT_EQ(sanitize::counts().redzone, 1);
}

TEST_P(SanitizeDetect, CachedBlockSweepFindsStaleWriteIntoReleasedBlock) {
  const SanitizeEnv env(GetParam());
  Storage s = Storage::full(256, 0.0f);
  float* stale = s.data();
  s.reset();             // block parks on a free list, memory stays mapped
  stale[256] = 3.0f;     // write through the stale pointer past the end
  EXPECT_THROW(StoragePool::instance().verify_cached_guards(),
               check::CheckError);
  EXPECT_EQ(sanitize::counts().redzone, 1);
}

// ---- defect class 2: stale-handle lifetime ------------------------------

TEST_P(SanitizeDetect, StaleHandleReadIsCaught) {
  const SanitizeEnv env(GetParam());
  Storage s = Storage::full(64, 1.0f);
  s.sanitize_corrupt_release();          // block recycles under the handle
  Storage t = Storage::full(64, 2.0f);   // typically reacquires that block
  const std::string msg = capture_violation([&] { (void)s.data(); });
  EXPECT_NE(msg.find("sanitize[lifetime]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("generation"), std::string::npos) << msg;
  EXPECT_EQ(sanitize::counts().lifetime, 1);
  s.sanitize_abandon();  // re-balance before scope exit
}

TEST_P(SanitizeDetect, StaleHandleReportNamesTheCurrentOp) {
  const SanitizeEnv env(GetParam());
  Storage s = Storage::full(64, 1.0f);
  s.sanitize_corrupt_release();
  std::string msg;
  {
    const sanitize::OpScope op_scope("conv2d", 7);
    msg = capture_violation([&] { (void)s.begin(); });
  }
  EXPECT_NE(msg.find("op conv2d"), std::string::npos) << msg;
  EXPECT_NE(msg.find("tape node #7"), std::string::npos) << msg;
  s.sanitize_abandon();
}

// ---- defect class 3: overlapping parallel writes ------------------------

TEST_P(SanitizeDetect, OverlappingParallelWritesAreCaught) {
  const SanitizeEnv env(GetParam());
  constexpr std::int64_t kN = 1 << 20;
  Storage out = Storage::full(kN, 0.0f);
  float* p = out.data();
  // Buggy kernel: every chunk declares (and would write) [0, end) instead of
  // its own [begin, end) — the classic forgotten-offset bug. The overlap is
  // declared, so it is reported even though no two chunks ever actually
  // interleaved on this schedule.
  const std::string msg = capture_violation([&] {
    parallel_for(kN, [&](std::int64_t, std::int64_t i1) {
      sanitize::note_parallel_write(p, 0, i1);
    });
  });
  EXPECT_NE(msg.find("sanitize[race]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("overlapping parallel writes"), std::string::npos) << msg;
  EXPECT_EQ(sanitize::counts().race, 1);
}

TEST_P(SanitizeDetect, DisjointParallelWritesAreClean) {
  const SanitizeEnv env(GetParam());
  constexpr std::int64_t kN = 1 << 20;
  Storage out = Storage::full(kN, 0.0f);
  float* p = out.data();
  EXPECT_NO_THROW(parallel_for(kN, [&](std::int64_t i0, std::int64_t i1) {
    sanitize::note_parallel_write(p, i0, i1);
    for (std::int64_t i = i0; i < i1; ++i) p[i] = 1.0f;
  }));
  EXPECT_EQ(sanitize::counts().race, 0);
}

TEST(SanitizeSchedule, RaceReportIsIdenticalForEveryPoolSize) {
  if (!sanitize::compiled_in())
    GTEST_SKIP() << "storage sanitizer compiled out (NDEBUG build)";
  // The same buggy kernel on the same buffer must produce byte-identical
  // reports with 1 worker and 4 workers: chunk identity is the chunk's begin
  // index under a fixed virtual partition, never a thread id or a schedule
  // accident.
  constexpr std::int64_t kN = 1 << 20;
  std::string reports[2];
  const int sizes[2] = {1, 4};
  const SanitizeEnv outer(1);
  Storage out = Storage::full(kN, 0.0f);  // keep one buffer: same address
  float* p = out.data();
  for (int i = 0; i < 2; ++i) {
    common::ThreadPool::instance().resize_for_testing(sizes[i]);
    reports[i] = capture_violation([&] {
      parallel_for(kN, [&](std::int64_t, std::int64_t i1) {
        sanitize::note_parallel_write(p, 0, i1);
      });
    });
  }
  EXPECT_EQ(reports[0], reports[1]);
}

TEST(SanitizeSchedule, OverlappingScatterRaceReportIsByteIdentical) {
  if (!sanitize::compiled_in())
    GTEST_SKIP() << "storage sanitizer compiled out (NDEBUG build)";
  // A buggy variant of the slot-partitioned scatter accumulation
  // (tensor/ops_sparse.cpp): each slot declares the WHOLE accumulator
  // instead of its own [slot*rd, (slot+1)*rd) stripe — the forgotten-offset
  // bug the real kernel's note_parallel_write guards against. The report
  // must be byte-identical across pool sizes, because slot identity comes
  // from the fixed virtual partition, not the worker schedule.
  constexpr std::int64_t kSlots = 16;
  constexpr std::int64_t kRd = 8 * 4;  // rows x row width
  std::string reports[2];
  const int sizes[2] = {1, 4};
  const SanitizeEnv outer(1);
  Storage acc = Storage::full(kSlots * kRd, 0.0f);  // one buffer: same address
  float* av = acc.data();
  for (int i = 0; i < 2; ++i) {
    common::ThreadPool::instance().resize_for_testing(sizes[i]);
    reports[i] = capture_violation([&] {
      parallel_for(
          kSlots,
          [&](std::int64_t, std::int64_t s1) {
            sanitize::note_parallel_write(av, 0, s1 * kRd);
          },
          /*grain=*/1);
    });
  }
  EXPECT_NE(reports[0].find("sanitize[race]"), std::string::npos)
      << reports[0];
  EXPECT_EQ(reports[0], reports[1]);
}

TEST(SanitizeSchedule, RealScatterOpsReportZeroRacesUnderParallelPool) {
  if (!sanitize::compiled_in())
    GTEST_SKIP() << "storage sanitizer compiled out (NDEBUG build)";
  // The shipping sparse ops must pass their own declared-write audit: a
  // forward+backward pass over every reduction-bearing op with 4 workers
  // reports zero violations while the race checker demonstrably ran.
  const SanitizeEnv env(4);
  Rng rng(23);
  Tensor x = Tensor::randn({64, 8}, rng, 1.0f, /*requires_grad=*/true);
  std::vector<float> ids(256);
  for (auto& id : ids) id = static_cast<float>(rng.uniform_int(0, 63));
  const Tensor index = Tensor::from_data({256}, std::move(ids));
  Tensor pin = ops::gather_rows(x, index);
  Tensor net = ops::segment_mean(pin, index, 64);
  Tensor cells = ops::scatter_add_rows(ops::gather_rows(net, index), index, 64);
  ops::sum(ops::mul(cells, cells)).backward();
  const auto c = sanitize::counts();
  EXPECT_EQ(c.race, 0) << "declared parallel writes overlap in a sparse op";
  EXPECT_EQ(c.total(), 0);
}

// ---- defect class 4: refcount discipline --------------------------------

TEST_P(SanitizeDetect, DoubleReleaseIsCaught) {
  const SanitizeEnv env(GetParam());
  Storage s = Storage::full(128, 0.0f);
  s.sanitize_corrupt_release();  // refcount 1 -> 0, block recycles
  const std::string msg =
      capture_violation([&] { s.sanitize_corrupt_release(); });
  EXPECT_NE(msg.find("sanitize[refcount]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("double release"), std::string::npos) << msg;
  EXPECT_EQ(sanitize::counts().refcount, 1);
  s.sanitize_abandon();
}

TEST_P(SanitizeDetect, LeakAuditReportsGrowthPastBaseline) {
  const SanitizeEnv env(GetParam());
  auto& pool = StoragePool::instance();
  const std::int64_t baseline = pool.stats().live_floats;
  Storage s = Storage::full(1024, 0.0f);
  const std::string msg = capture_violation(
      [&] { pool.audit_leaks(baseline, "LeakAudit test scope"); });
  EXPECT_NE(msg.find("sanitize[leak]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("LeakAudit test scope"), std::string::npos) << msg;
  EXPECT_EQ(sanitize::counts().leak, 1);
  s.reset();
  EXPECT_NO_THROW(pool.audit_leaks(baseline, "LeakAudit test scope"));
  EXPECT_EQ(sanitize::counts().leak, 1);
}

// ---- self-test via fault injection --------------------------------------

TEST_P(SanitizeDetect, FaultInjectedRedzoneReportFiresWithoutRealCorruption) {
  const SanitizeEnv env(GetParam());
  Storage s = Storage::full(32, 0.0f);
  common::FaultInjector::instance().arm_once("sanitize.redzone_corrupt");
  const std::string msg =
      capture_violation([&] { s.verify_guards(); });
  EXPECT_NE(msg.find("fault-injected self-test"), std::string::npos) << msg;
  EXPECT_EQ(sanitize::counts().redzone, 1);
  EXPECT_NO_THROW(s.verify_guards());  // disarmed after the single fire
}

// ---- count-only mode ----------------------------------------------------

TEST_P(SanitizeDetect, CountOnlyModeRecordsWithoutThrowing) {
  const SanitizeEnv env(GetParam());
  sanitize::set_throw_on_violation(false);
  Storage s = Storage::full(32, 0.0f);
  s.data()[32] = 1.0f;
  EXPECT_NO_THROW(s.verify_guards());
  EXPECT_EQ(sanitize::counts().redzone, 1);
}

// ---- clean pipeline: zero violations ------------------------------------

TEST_P(SanitizeDetect, CleanTwoEpochTrainReportsZeroViolations) {
  const SanitizeEnv env(GetParam());
  Rng rng(17);
  std::vector<train::Sample> samples;
  for (int i = 0; i < 4; ++i) {
    train::Sample s;
    s.features = Tensor::uniform({6, 32, 32}, rng, 0.0f, 1.0f);
    s.label = Tensor::zeros({32, 32});
    const float* src = s.features.data() + 3 * 32 * 32;
    for (std::int64_t j = 0; j < 32 * 32; ++j)
      s.label.data()[j] = src[j] > 0.5f ? 2.0f : 0.0f;
    samples.push_back(std::move(s));
  }
  models::ModelConfig config;
  config.grid = 32;
  config.base_channels = 4;
  config.transformer_layers = 1;
  config.seed = 11;
  auto model = models::make_model("ours", config);
  train::TrainOptions topt;
  topt.epochs = 2;
  topt.batch_size = 2;
  topt.seed = 1;
  topt.resume = false;
  sanitize::reset_counts();
  train::Trainer::fit(*model, samples, topt);
  StoragePool::instance().verify_cached_guards();
  const auto c = sanitize::counts();
  EXPECT_EQ(c.total(), 0)
      << "redzone=" << c.redzone << " lifetime=" << c.lifetime
      << " race=" << c.race << " refcount=" << c.refcount
      << " leak=" << c.leak;
  EXPECT_GT(c.redzone_checks, 0)
      << "the checker must have actually swept guard zones during training";
}

INSTANTIATE_TEST_SUITE_P(Threads, SanitizeDetect, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "threads_" + std::to_string(info.param);
                         });

// ---- compile gate -------------------------------------------------------

TEST(Sanitize, CompileGateMatchesBuildMode) {
#if !defined(NDEBUG) || defined(MFA_FORCE_SANITIZE_STORAGE)
  EXPECT_TRUE(sanitize::compiled_in());
#else
  EXPECT_FALSE(sanitize::compiled_in());
  // Everything must be inert no-ops: enabling is refused, hooks do nothing.
  sanitize::set_enabled(true);
  EXPECT_FALSE(sanitize::enabled());
  Storage s = Storage::full(32, 0.0f);
  EXPECT_NO_THROW(s.verify_guards());
  EXPECT_EQ(sanitize::counts().total(), 0);
  EXPECT_EQ(sanitize::counts().redzone_checks, 0);
#endif
}

TEST(Sanitize, ObsRegistryExportsViolationCounters) {
  if (!sanitize::compiled_in())
    GTEST_SKIP() << "storage sanitizer compiled out (NDEBUG build)";
  const SanitizeEnv env(1);
  sanitize::set_throw_on_violation(false);
  Storage s = Storage::full(32, 0.0f);
  s.data()[32] = 1.0f;
  s.verify_guards();
  const std::string json = obs::Registry::instance().metrics_json();
  EXPECT_NE(json.find("sanitize.violations_redzone"), std::string::npos)
      << json;
  EXPECT_NE(json.find("sanitize.redzone_checks"), std::string::npos) << json;
}

}  // namespace
}  // namespace mfa
