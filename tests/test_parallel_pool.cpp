// Persistent thread-pool behaviour: lazy construction, the n <= grain fast
// path, nested-region inlining, exception propagation from real workers,
// determinism across pool sizes, reuse after CheckError, and a concurrent
// submission stress run (exercised under TSan by the CI matrix).
//
// Tests that need actual workers resize the pool (this repo's CI box has one
// core, so the default pool is size 1) and restore the previous size before
// returning.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace mfa {
namespace {

using common::ThreadPool;

/// Restores the pool size a test changed, even on assertion failure.
class PoolSizeGuard {
 public:
  explicit PoolSizeGuard(int size) : previous_(ThreadPool::instance().size()) {
    ThreadPool::instance().resize_for_testing(size);
  }
  ~PoolSizeGuard() { ThreadPool::instance().resize_for_testing(previous_); }

 private:
  int previous_;
};

// Must run before anything in this process enters a large parallel region:
// gtest runs each TEST in its own process under ctest discovery, so the
// assertion is reliable there (and harmless if the whole binary is run by
// hand, where an earlier test may already have built the pool).
TEST(PoolFastPath, SmallRangeNeverConstructsPool) {
  const bool pool_was_up = ThreadPool::initialized();
  std::vector<int> hit(100, 0);
  parallel_for(
      100,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) hit[static_cast<size_t>(i)] = 1;
      },
      /*grain=*/1024);
  for (int h : hit) EXPECT_EQ(h, 1);
  if (!pool_was_up)
    EXPECT_FALSE(ThreadPool::initialized())
        << "n <= grain must not touch (or lazily build) the pool";
}

TEST(Pool, JobsRunCountsOnlyDispatchedRegions) {
  const PoolSizeGuard guard(4);
  auto& pool = ThreadPool::instance();
  const std::uint64_t before = pool.jobs_run();
  std::atomic<std::int64_t> sum{0};
  parallel_for(
      512, [&](std::int64_t b, std::int64_t e) { sum += e - b; },
      /*grain=*/1024);
  EXPECT_EQ(pool.jobs_run(), before) << "inline run must not hit the scheduler";
  parallel_for(
      4096, [&](std::int64_t b, std::int64_t e) { sum += e - b; },
      /*grain=*/64);
  EXPECT_EQ(pool.jobs_run(), before + 1);
  EXPECT_EQ(sum.load(), 512 + 4096);
}

TEST(Pool, SizeClampsLikeMfaThreads) {
  const int previous = ThreadPool::instance().size();
  ThreadPool::instance().resize_for_testing(100000);
  EXPECT_EQ(ThreadPool::instance().size(), 256);
  ThreadPool::instance().resize_for_testing(0);
  EXPECT_EQ(ThreadPool::instance().size(), 1);
  ThreadPool::instance().resize_for_testing(previous);
}

TEST(Pool, NestedParallelForRunsInline) {
  const PoolSizeGuard guard(4);
  std::atomic<int> outer_chunks{0};
  std::atomic<int> nested_violations{0};
  parallel_for(
      8,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          outer_chunks.fetch_add(1);
          const auto outer_thread = std::this_thread::get_id();
          int inner_calls = 0;
          parallel_for(
              100000,
              [&](std::int64_t ib, std::int64_t ie) {
                ++inner_calls;
                // Inline means: one invocation, full range, same thread,
                // flagged as inside a region.
                if (ib != 0 || ie != 100000) nested_violations.fetch_add(1);
                if (std::this_thread::get_id() != outer_thread)
                  nested_violations.fetch_add(1);
                if (!ThreadPool::in_parallel_region())
                  nested_violations.fetch_add(1);
              },
              /*grain=*/1);
          if (inner_calls != 1) nested_violations.fetch_add(1);
        }
      },
      /*grain=*/1);
  EXPECT_EQ(outer_chunks.load(), 8);
  EXPECT_EQ(nested_violations.load(), 0);
}

TEST(Pool, ExceptionPropagatesFromWorkerThread) {
  const PoolSizeGuard guard(4);
  EXPECT_THROW(
      parallel_for(
          4096,
          [](std::int64_t b, std::int64_t) {
            if (b == 0) throw std::runtime_error("boom from a pool worker");
          },
          /*grain=*/16),
      std::runtime_error);
}

TEST(Pool, SurvivesCheckErrorAndStaysReusable) {
  const PoolSizeGuard guard(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        parallel_for(
            4096,
            [](std::int64_t b, std::int64_t) {
              MFA_CHECK(b != 0) << " synthetic invariant failure in worker";
            },
            /*grain=*/16),
        check::CheckError);
    // The pool must come back for normal work immediately afterwards.
    std::atomic<long long> sum{0};
    parallel_for(
        4096,
        [&](std::int64_t b, std::int64_t e) {
          long long local = 0;
          for (std::int64_t i = b; i < e; ++i) local += i;
          sum += local;
        },
        /*grain=*/16);
    EXPECT_EQ(sum.load(), 4096LL * 4095 / 2) << "round " << round;
  }
}

TEST(Pool, KernelsBitIdenticalAcrossPoolSizes) {
  // The GEMM/conv kernels promise a fixed per-element reduction order, so a
  // size-1 pool (the MFA_THREADS=1 configuration) must reproduce the
  // parallel results bit for bit — forward and backward.
  const auto compute = [] {
    Rng rng(7);
    Tensor a = Tensor::randn({37, 53}, rng);
    Tensor b = Tensor::randn({53, 41}, rng);
    a.set_requires_grad(true);
    Tensor mm = ops::matmul(a, b);
    Tensor x = Tensor::randn({3, 5, 12, 12}, rng);
    Tensor w = Tensor::randn({7, 5, 3, 3}, rng, 0.1f, /*requires_grad=*/true);
    x.set_requires_grad(true);
    Tensor y = ops::conv2d(x, w, Tensor(), 1, 1);
    ops::sum(ops::add(ops::mul(y, y), ops::sum(mm))).backward();
    std::vector<float> out = y.to_vector();
    const auto append = [&](const Tensor& t) {
      const auto v = t.to_vector();
      out.insert(out.end(), v.begin(), v.end());
    };
    append(mm);
    append(a.grad());
    append(x.grad());
    append(w.grad());
    return out;
  };
  std::vector<float> parallel_result, serial_result;
  {
    const PoolSizeGuard guard(4);
    parallel_result = compute();
  }
  {
    const PoolSizeGuard guard(1);
    serial_result = compute();
  }
  ASSERT_EQ(parallel_result.size(), serial_result.size());
  ASSERT_EQ(std::memcmp(parallel_result.data(), serial_result.data(),
                        parallel_result.size() * sizeof(float)),
            0)
      << "pool size must not change any bit of the kernel results";
}

TEST(Pool, ConcurrentCallersStress) {
  // Several top-level threads race parallel_for submissions: one wins the
  // pool, the rest run inline. Results must be right either way, and the
  // TSan CI configuration watches the hand-off. Also covered: pool reuse
  // under rapid back-to-back regions.
  const PoolSizeGuard guard(3);
  constexpr int kCallers = 4;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        std::atomic<long long> sum{0};
        parallel_for(
            4096,
            [&](std::int64_t b, std::int64_t e) {
              long long local = 0;
              for (std::int64_t i = b; i < e; ++i) local += i;
              sum += local;
            },
            /*grain=*/64);
        if (sum.load() != 4096LL * 4095 / 2) failures.fetch_add(1);
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Scratch, ArenaReusesThreadLocalBuffers) {
  float* first = kernels::scratch(0, 128);
  ASSERT_NE(first, nullptr);
  first[0] = 42.0f;
  // Same slot, no growth: same buffer (grow-only contract).
  EXPECT_EQ(kernels::scratch(0, 64), first);
  EXPECT_EQ(kernels::scratch(0, 128), first);
  // Distinct slots never alias.
  float* other = kernels::scratch(1, 128);
  EXPECT_NE(other, first);
  // Growth may move the buffer but must keep it usable at the new size.
  float* grown = kernels::scratch(0, 4096);
  grown[4095] = 1.0f;
  EXPECT_EQ(grown[4095], 1.0f);
  EXPECT_THROW(kernels::scratch(kernels::kScratchSlots, 8), check::CheckError);
  EXPECT_THROW(kernels::scratch(-1, 8), check::CheckError);
}

TEST(Scratch, WorkersGetPrivateBuffers) {
  const PoolSizeGuard guard(4);
  // Each participating thread must see its own arena: write a distinct tag
  // through the slot and verify no other thread's tag leaks in.
  std::atomic<int> clashes{0};
  parallel_for(
      64,
      [&](std::int64_t b, std::int64_t e) {
        float* buf = kernels::scratch(2, 16);
        const float tag =
            static_cast<float>(std::hash<std::thread::id>{}(
                std::this_thread::get_id()) %
                               100003);
        for (int i = 0; i < 16; ++i) buf[i] = tag;
        for (std::int64_t it = b; it < e; ++it) {
          for (int i = 0; i < 16; ++i)
            if (buf[i] != tag) clashes.fetch_add(1);
        }
      },
      /*grain=*/1);
  EXPECT_EQ(clashes.load(), 0);
}

}  // namespace
}  // namespace mfa
