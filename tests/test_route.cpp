#include <gtest/gtest.h>

#include <cmath>

#include "common/fault.h"
#include "netlist/generator.h"
#include "place/placer.h"
#include "route/router.h"
#include "route/score.h"

namespace mfa::route {
namespace {

using fpga::DeviceGrid;
using netlist::Design;

DeviceGrid test_device() { return DeviceGrid::make_xcvu3p_like(60, 40); }

Design tiny_design(const DeviceGrid& device, double scale = 0.25) {
  netlist::DesignSpec spec = netlist::mlcad2023_spec("Design_116");
  spec.lut_util *= scale;
  spec.ff_util *= scale;
  spec.dsp_util *= scale;
  spec.bram_util *= scale;
  spec.uram_util *= scale;
  return netlist::DesignGenerator::generate(spec, device);
}

/// Spreads cells uniformly at random (a crude but legal placement).
void random_positions(const Design& design, const DeviceGrid& device,
                      Rng& rng, std::vector<double>& cx,
                      std::vector<double>& cy) {
  cx.resize(static_cast<size_t>(design.num_cells()));
  cy.resize(static_cast<size_t>(design.num_cells()));
  for (auto& v : cx) v = rng.uniform(0.0, static_cast<double>(device.cols()));
  for (auto& v : cy) v = rng.uniform(0.0, static_cast<double>(device.rows()));
}

TEST(CongestionGrid, DemandAccumulates) {
  const fpga::InterconnectTileGrid tiles(8, 8, 60, 40, 10, 5);
  CongestionGrid grid(tiles);
  grid.add_demand(WireClass::Short, Direction::East, 2, 3, 4.0);
  grid.add_demand(WireClass::Short, Direction::East, 2, 3, 1.0);
  EXPECT_DOUBLE_EQ(grid.demand(WireClass::Short, Direction::East, 2, 3), 5.0);
  EXPECT_DOUBLE_EQ(grid.utilisation(WireClass::Short, Direction::East, 2, 3),
                   0.5);
  EXPECT_DOUBLE_EQ(grid.demand(WireClass::Global, Direction::East, 2, 3), 0.0);
  EXPECT_EQ(grid.overused_count(), 0);
  grid.add_demand(WireClass::Global, Direction::North, 1, 1, 6.0);
  EXPECT_EQ(grid.overused_count(), 1);
  grid.clear();
  EXPECT_DOUBLE_EQ(grid.max_utilisation(2, 3), 0.0);
}

TEST(CongestionLevels, CleanGridHasLevelZero) {
  const fpga::InterconnectTileGrid tiles(16, 16, 60, 40);
  const CongestionGrid grid(tiles);
  const auto analysis = analyze_congestion(grid);
  for (const auto v : analysis.label) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(analysis.design_level(WireClass::Short, Direction::East), 0);
}

TEST(CongestionLevels, SingleHotTileIsLevelOne) {
  const fpga::InterconnectTileGrid tiles(16, 16, 60, 40, 10, 5);
  CongestionGrid grid(tiles);
  grid.add_demand(WireClass::Short, Direction::East, 5, 5, 10.0);  // util 1.0
  const auto analysis = analyze_congestion(grid);
  EXPECT_EQ(analysis.label[5 * 16 + 5], 1.0f);
  EXPECT_EQ(analysis.label[5 * 16 + 6], 0.0f);
  EXPECT_EQ(analysis.design_level(WireClass::Short, Direction::East), 1);
}

TEST(CongestionLevels, SaturatedRegionRaisesLevel) {
  const fpga::InterconnectTileGrid tiles(16, 16, 60, 40, 10, 5);
  CongestionGrid grid(tiles);
  // Saturate an aligned 4x4 block -> level 3 (window 2^2).
  for (std::int64_t y = 4; y < 8; ++y)
    for (std::int64_t x = 4; x < 8; ++x)
      grid.add_demand(WireClass::Short, Direction::East, x, y, 10.0);
  const auto analysis = analyze_congestion(grid);
  EXPECT_EQ(analysis.label[5 * 16 + 5], 3.0f);
  EXPECT_EQ(analysis.design_level(WireClass::Short, Direction::East), 3);
}

TEST(CongestionLevels, LevelMonotoneInDemand) {
  const fpga::InterconnectTileGrid tiles(16, 16, 60, 40, 10, 5);
  auto level_for = [&](double demand) {
    CongestionGrid grid(tiles);
    for (std::int64_t y = 0; y < 8; ++y)
      for (std::int64_t x = 0; x < 8; ++x)
        grid.add_demand(WireClass::Short, Direction::East, x, y, demand);
    return analyze_congestion(grid).design_level(WireClass::Short,
                                                 Direction::East);
  };
  EXPECT_LE(level_for(4.0), level_for(9.5));
  EXPECT_LE(level_for(9.5), level_for(20.0));
}

TEST(Router, RoutesAllConnections) {
  const auto device = test_device();
  const auto design = tiny_design(device);
  GlobalRouter router(design, device);
  Rng rng(1);
  std::vector<double> cx, cy;
  random_positions(design, device, rng, cx, cy);
  router.initial_route(cx, cy);
  EXPECT_GT(router.num_connections(), 0);
  EXPECT_GT(router.routed_wirelength(), 0.0);
}

TEST(Router, DemandConservation) {
  // Total injected demand equals total manhattan length of connections.
  const auto device = test_device();
  const auto design = tiny_design(device, 0.1);
  GlobalRouter router(design, device);
  Rng rng(2);
  std::vector<double> cx, cy;
  random_positions(design, device, rng, cx, cy);
  router.initial_route(cx, cy);
  const auto& grid = router.congestion();
  double total_demand = 0.0;
  for (size_t w = 0; w < fpga::kNumWireClasses; ++w)
    for (size_t d = 0; d < fpga::kNumDirections; ++d)
      for (std::int64_t gy = 0; gy < grid.height(); ++gy)
        for (std::int64_t gx = 0; gx < grid.width(); ++gx)
          total_demand += grid.demand(static_cast<WireClass>(w),
                                      static_cast<Direction>(d), gx, gy);
  EXPECT_NEAR(total_demand, router.routed_wirelength(), 1e-6);
}

TEST(Router, DetailedRouteReducesOveruse) {
  // Moderately congested placement: negotiation should resolve most of the
  // overuse. (On hopeless placements PathFinder detours legitimately spread
  // overuse across more tiles, so this invariant only holds when the demand
  // is actually routable.)
  const auto device = test_device();
  const auto design = tiny_design(device, 1.0);
  GlobalRouter router(design, device);
  place::PlacementProblem problem(design, device);
  place::PlacerOptions popt;
  popt.seed = 3;
  place::GlobalPlacer placer(problem, popt);
  placer.init_random();
  placer.iterate(100);
  std::vector<double> cx, cy;
  placer.placement().expand(problem, cx, cy);
  router.initial_route(cx, cy);
  const auto before = router.congestion().overused_count();
  const auto iterations = router.detailed_route();
  const auto after = router.congestion().overused_count();
  EXPECT_GT(before, 0);
  EXPECT_GE(iterations, 1);
  EXPECT_LT(after, before);
}

TEST(Router, DetailedRouteReportsCapOnHopelessPlacement) {
  // Everything compressed into a sliver: unroutable; the router must give up
  // with the iteration cap rather than loop forever.
  const auto device = test_device();
  const auto design = tiny_design(device, 0.6);
  RouterOptions options;
  options.max_detailed_iterations = 8;
  GlobalRouter router(design, device, options);
  Rng rng(3);
  std::vector<double> cx, cy;
  random_positions(design, device, rng, cx, cy);
  for (auto& v : cx) v = 5.0 + 0.15 * v;
  for (auto& v : cy) v = 5.0 + 0.15 * v;
  router.initial_route(cx, cy);
  EXPECT_EQ(router.detailed_route(), 8);
}

TEST(Router, CleanPlacementNeedsNoDetailedIterations) {
  const auto device = test_device();
  const auto design = tiny_design(device, 0.05);
  GlobalRouter router(design, device);
  Rng rng(4);
  std::vector<double> cx, cy;
  random_positions(design, device, rng, cx, cy);
  router.initial_route(cx, cy);
  if (router.congestion().overused_count() == 0)
    EXPECT_EQ(router.detailed_route(), 0);
}

TEST(Router, WallClockBudgetStopsNegotiationEarly) {
  // Same hopeless clumped placement as above, but with a tiny wall-clock
  // budget: the router must hand back its best partial routing instead of
  // burning all 8 negotiation rounds.
  const auto device = test_device();
  const auto design = tiny_design(device, 0.6);
  RouterOptions options;
  options.max_detailed_iterations = 8;
  options.time_budget_seconds = 1e-9;
  GlobalRouter router(design, device, options);
  Rng rng(3);
  std::vector<double> cx, cy;
  random_positions(design, device, rng, cx, cy);
  for (auto& v : cx) v = 5.0 + 0.15 * v;
  for (auto& v : cy) v = 5.0 + 0.15 * v;
  router.initial_route(cx, cy);
  ASSERT_GT(router.congestion().overused_count(), 0);
  const auto iterations = router.detailed_route();
  EXPECT_LT(iterations, 8);
  EXPECT_TRUE(router.budget_exhausted());
  // Every connection is still routed: only further negotiation was skipped.
  EXPECT_GT(router.num_connections(), 0);
  EXPECT_GT(router.routed_wirelength(), 0.0);
}

TEST(Router, NoBudgetNeverReportsExhaustion) {
  const auto device = test_device();
  const auto design = tiny_design(device, 0.25);
  GlobalRouter router(design, device);  // time_budget_seconds = 0: unlimited
  Rng rng(4);
  std::vector<double> cx, cy;
  random_positions(design, device, rng, cx, cy);
  router.initial_route(cx, cy);
  router.detailed_route();
  EXPECT_FALSE(router.budget_exhausted());
}

TEST(Router, BudgetFaultStopsNegotiationDeterministically) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  auto& fi = common::FaultInjector::instance();
  fi.reset();
  const auto device = test_device();
  const auto design = tiny_design(device, 0.6);
  GlobalRouter router(design, device);
  Rng rng(3);
  std::vector<double> cx, cy;
  random_positions(design, device, rng, cx, cy);
  for (auto& v : cx) v = 5.0 + 0.15 * v;
  for (auto& v : cy) v = 5.0 + 0.15 * v;
  router.initial_route(cx, cy);
  ASSERT_GT(router.congestion().overused_count(), 0);
  fi.arm_always("route.budget");
  EXPECT_EQ(router.detailed_route(), 0);
  EXPECT_TRUE(router.budget_exhausted());
  fi.reset();
  // A fresh initial_route clears the flag for the next attempt.
  router.initial_route(cx, cy);
  EXPECT_FALSE(router.budget_exhausted());
}

TEST(Router, PeakUtilisationHigherWhenClumped) {
  // Compressing the same placement into a quarter of the device raises the
  // local routing-demand density: expected connection length shrinks
  // linearly with the region size while the area shrinks quadratically.
  const auto device = test_device();
  const auto design = tiny_design(device, 0.05);
  Rng rng(5);
  std::vector<double> cx, cy;
  random_positions(design, device, rng, cx, cy);

  const auto peak_util = [&](const std::vector<double>& xs,
                             const std::vector<double>& ys) {
    GlobalRouter router(design, device);
    router.initial_route(xs, ys);
    const auto& grid = router.congestion();
    double peak = 0.0;
    for (std::int64_t gy = 0; gy < grid.height(); ++gy)
      for (std::int64_t gx = 0; gx < grid.width(); ++gx)
        peak = std::max(peak, grid.max_utilisation(gx, gy));
    return peak;
  };

  const double spread_peak = peak_util(cx, cy);
  auto cx2 = cx;
  auto cy2 = cy;
  for (auto& v : cx2) v = 10.0 + 0.5 * v;
  for (auto& v : cy2) v = 8.0 + 0.5 * v;
  const double clump_peak = peak_util(cx2, cy2);
  EXPECT_GT(clump_peak, spread_peak);
}

TEST(Score, SIrIsOneWhenAllLevelsBelowFour) {
  CongestionAnalysis analysis;
  for (auto& per_class : analysis.levels)
    for (auto& lm : per_class) lm.design_level = 3;
  EXPECT_DOUBLE_EQ(score::s_ir(analysis), 1.0);
}

TEST(Score, SIrQuadraticPenalty) {
  CongestionAnalysis analysis;
  for (auto& per_class : analysis.levels)
    for (auto& lm : per_class) lm.design_level = 0;
  // One direction at level 5 (short): penalty (5-3)^2 = 4.
  analysis.levels[static_cast<size_t>(WireClass::Short)]
                 [static_cast<size_t>(Direction::East)]
                     .design_level = 5;
  EXPECT_DOUBLE_EQ(score::s_ir(analysis), 5.0);
}

TEST(Score, SDrFloorsAtFiveAndCompresses) {
  EXPECT_DOUBLE_EQ(score::s_dr(0), 5.0);
  EXPECT_DOUBLE_EQ(score::s_dr(7), 8.0);   // 5 + ceil(7/2.5)
  EXPECT_DOUBLE_EQ(score::s_dr(24), 15.0);  // worst case lands at 15
}

TEST(Score, SScoreComposition) {
  // T_macro below 10 minutes leaves the multiplier at 1 (paper §V-C).
  EXPECT_DOUBLE_EQ(score::s_score(5.0, 40.0, 0.5), 20.0);
  // Above 10 minutes the factor kicks in.
  EXPECT_DOUBLE_EQ(score::s_score(12.0, 40.0, 0.5), 3.0 * 20.0);
}

TEST(Score, TPrGrowsWithCongestion) {
  EXPECT_LT(score::t_pr_hours(1.0, 5.0, 1000.0, 100),
            score::t_pr_hours(9.0, 15.0, 1000.0, 100));
}

// Property sweep: S_IR penalties only start above level 3.
class SirLevelSweep : public ::testing::TestWithParam<int> {};

TEST_P(SirLevelSweep, PenaltyOnlyAboveThree) {
  const int level = GetParam();
  CongestionAnalysis analysis;
  for (auto& per_class : analysis.levels)
    for (auto& lm : per_class) lm.design_level = 0;
  analysis.levels[0][0].design_level = level;
  const double expected =
      1.0 + std::pow(std::max(0, level - 3), 2.0);
  EXPECT_DOUBLE_EQ(score::s_ir(analysis), expected);
}

INSTANTIATE_TEST_SUITE_P(Levels, SirLevelSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mfa::route
