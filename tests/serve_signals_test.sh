#!/usr/bin/env bash
# Script-level check of mfa_serve's two-stage signal handling:
#   1. one SIGINT mid-run  -> graceful drain: clients stop, in-flight work
#      completes, the request accounting balances, exit status 0;
#   2. two SIGINTs         -> forced exit with status 130;
#   3. SIGTERM behaves like SIGINT (stage one).
# Usage: serve_signals_test.sh <path-to-mfa_serve>
set -euo pipefail

BIN="${1:?usage: serve_signals_test.sh <mfa_serve binary>}"
out="$(mktemp)"
trap 'rm -f "${out}"' EXIT

# Client pacing keeps the run alive until a signal lands. The forced-exit
# scenario uses a much longer pace so the clients are guaranteed to still be
# mid-sleep (i.e. the process is still draining) when the second signal fires.
run_paced() {
  MFA_SERVE_CLIENTS=2 MFA_SERVE_REQUESTS=1000 MFA_SERVE_PACE_MS="${1:-200}" \
  MFA_SERVE_SWAP=0 "${BIN}" >"${out}" 2>&1 &
}

fail() {
  echo "serve_signals_test: $1" >&2
  echo "--- driver output ---" >&2
  cat "${out}" >&2
  exit 1
}

echo "[1/3] SIGINT drains gracefully"
run_paced; pid=$!
sleep 1
kill -INT "${pid}"
rc=0; wait "${pid}" || rc=$?
[ "${rc}" -eq 0 ] || fail "graceful drain exited ${rc}, want 0"
grep -q "drain requested" "${out}" || fail "missing drain marker"
grep -q "drained clean" "${out}" || fail "request accounting did not balance"

echo "[2/3] second SIGINT forces exit"
run_paced 5000; pid=$!
sleep 1
kill -INT "${pid}"
sleep 0.05
kill -INT "${pid}" 2>/dev/null || fail "process exited before the forced-exit signal"
rc=0; wait "${pid}" || rc=$?
[ "${rc}" -eq 130 ] || fail "forced exit returned ${rc}, want 130"

echo "[3/3] SIGTERM drains gracefully"
run_paced; pid=$!
sleep 1
kill -TERM "${pid}"
rc=0; wait "${pid}" || rc=$?
[ "${rc}" -eq 0 ] || fail "SIGTERM drain exited ${rc}, want 0"
grep -q "drained clean" "${out}" || fail "SIGTERM accounting did not balance"

echo "serve_signals_test: all scenarios passed"
