// Golden end-to-end determinism gate.
//
// Runs the full pipeline — synthetic netlist -> 2-epoch training -> model
// congestion prediction -> inflation -> further placement -> legalisation ->
// routing -> congestion analysis — at a fixed seed, and hashes the final
// placement coordinates plus the congestion-level map with FNV-1a. The hash
// must be bit-identical across MFA_EXEC in {seq, graph} x MFA_THREADS in
// {1, 4} x MFA_POOL in {on, off}: this turns the PR 3 (thread-count
// invariance), PR 4 (pool bitwise-transparency), and PR 9 (parallel graph
// executor determinism) claims into one durable regression gate, with the
// observability layer live while it runs (spans and counters must never
// perturb numerics).
//
// The whole matrix runs once per supported GEMM variant (scalar/avx2/avx512,
// see tensor/gemm.h), and the hash is additionally pinned per variant to
// constants captured on the CI box. If an intentional numeric change (new
// placer schedule, different feature normalisation, ...) moves one, every
// thread/pool configuration must still agree; update the matching
// kGoldenHashPerVariant entry to the value printed in the failure message.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "features/features.h"
#include "models/congestion_model.h"
#include "netlist/generator.h"
#include "place/inflation.h"
#include "place/legalizer.h"
#include "place/placer.h"
#include "route/router.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/storage.h"
#include "tensor/tape.h"
#include "train/dataset.h"
#include "train/trainer.h"

namespace mfa {
namespace {

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;
  void bytes(const void* p, size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  }
  void f64(double v) { bytes(&v, sizeof(v)); }
  void f32(float v) { bytes(&v, sizeof(v)); }
  void i32(std::int32_t v) { bytes(&v, sizeof(v)); }
};

// One full pipeline run at fixed seeds; returns the FNV-1a hash of the final
// placement and the routed congestion-level map. Everything that could
// perturb determinism (placer RNG, trainer shuffle, model init) is seeded
// explicitly; wall-clock-dependent paths (budgets) are left disabled.
std::uint64_t run_pipeline_hash() {
  const auto device = fpga::DeviceGrid::make_xcvu3p_like(40, 32);
  netlist::DesignSpec spec = netlist::mlcad2023_spec("Design_116");
  spec.lut_util *= 0.4;
  spec.ff_util *= 0.4;
  spec.dsp_util *= 0.6;
  spec.bram_util *= 0.6;

  // ---- stage 1: dataset from synthetic placements ----
  train::DatasetOptions dopt;
  dopt.grid = 32;
  dopt.placements_per_design = 2;
  dopt.augment_rotations = false;
  dopt.placer_iterations = 40;
  dopt.seed = 7;
  const auto samples =
      train::DatasetBuilder::build_for_design(spec, device, dopt);

  // ---- stage 2: 2-epoch training ----
  models::ModelConfig config;
  config.grid = 32;
  config.base_channels = 4;
  config.transformer_layers = 1;
  config.seed = 3;
  auto model = models::make_model("ours", config);
  train::TrainOptions topt;
  topt.epochs = 2;
  topt.batch_size = 2;
  topt.seed = 1;
  topt.resume = false;
  train::Trainer::fit(*model, samples, topt);

  // ---- stage 3: place, predict, inflate, place more ----
  const auto design = netlist::DesignGenerator::generate(spec, device);
  place::PlacementProblem problem(design, device);
  place::PlacerOptions popt;
  popt.seed = 5;
  place::GlobalPlacer placer(problem, popt);
  placer.init_random();
  placer.iterate(40);

  std::vector<double> cx, cy;
  placer.placement().expand(problem, cx, cy);
  features::FeatureOptions fopt;
  fopt.grid_width = 32;
  fopt.grid_height = 32;
  Tensor feats = features::extract_features(design, device, cx, cy, fopt);
  Tensor batched =
      ops::reshape(feats, {1, feats.size(0), feats.size(1), feats.size(2)});
  Tensor pred = model->predict_levels(batched);
  std::vector<float> levels(pred.data(), pred.data() + pred.numel());

  place::apply_inflation(problem, placer.placement(), levels, 32, 32,
                         place::InflationOptions{});
  placer.iterate(15);

  // ---- stage 4: legalise ----
  place::Placement placement = placer.placement();
  place::Legalizer::legalize_macros(problem, placement);
  placement.expand(problem, cx, cy);

  // ---- stage 5: route + analyse ----
  route::RouterOptions ropt = route::calibrated_router_options(device, 32, 32);
  route::GlobalRouter router(design, device, ropt);
  router.initial_route(cx, cy);
  router.detailed_route();
  const route::CongestionAnalysis analysis = router.analyze();

  Fnv1a fnv;
  for (double v : cx) fnv.f64(v);
  for (double v : cy) fnv.f64(v);
  for (const auto& per_class : analysis.levels) {
    for (const auto& lm : per_class) {
      fnv.i32(lm.design_level);
      for (std::int32_t l : lm.level) fnv.i32(l);
    }
  }
  for (float v : analysis.label) fnv.f32(v);
  return fnv.h;
}

// Per-GEMM-variant pinned hashes, captured on the CI box (x86-64, gcc 12, no
// -ffast-math anywhere in the build). Within a variant the fixed reduction
// order makes the result independent of optimisation level, thread count,
// pool mode, and tile parameters; across variants the hash MAY differ (the
// SIMD kernels use single-rounded FMA where the scalar ones use mul+add), so
// each compiled variant pins its own constant. At this seed all three
// happen to coincide: the hashed quantities (placement coordinates, discrete
// congestion levels) sit behind thresholded decisions the sub-ulp GEMM
// differences do not flip. If a variant's kernel numerics change
// intentionally, update only that entry.
constexpr std::uint64_t kGoldenHashPerVariant[kernels::kNumVariants] = {
    0xb60d3b1dc5309ff8ULL,  // scalar
    0xb60d3b1dc5309ff8ULL,  // avx2
    0xb60d3b1dc5309ff8ULL,  // avx512
};

struct GoldenConfig {
  int threads;
  bool pool;
  tensor::Executor exec;
};

TEST(Golden, EndToEndHashIsBitIdenticalAcrossThreadPoolAndExecConfigs) {
  auto& thread_pool = common::ThreadPool::instance();
  auto& storage_pool = tensor::StoragePool::instance();
  auto& tape = tensor::Tape::current();
  const bool pool_was_enabled = storage_pool.enabled();
  const tensor::Executor exec_prev = tape.executor();

  // Full cross of MFA_EXEC x MFA_THREADS x MFA_POOL: the graph executor's
  // level-parallel backward (and the tape arena riding under both modes)
  // must be bitwise invisible in the end-to-end result.
  const GoldenConfig configs[] = {
      {1, true, tensor::Executor::kSeq},
      {4, true, tensor::Executor::kSeq},
      {1, false, tensor::Executor::kSeq},
      {4, false, tensor::Executor::kSeq},
      {1, true, tensor::Executor::kGraph},
      {4, true, tensor::Executor::kGraph},
      {1, false, tensor::Executor::kGraph},
      {4, false, tensor::Executor::kGraph},
  };
  for (int v = 0; v < kernels::kNumVariants; ++v) {
    if (!kernels::variant_supported(static_cast<kernels::Variant>(v))) {
      continue;
    }
    ASSERT_TRUE(kernels::set_variant_override(v));
    std::vector<std::uint64_t> hashes;
    for (const auto& cfg : configs) {
      thread_pool.resize_for_testing(cfg.threads);
      storage_pool.set_enabled(cfg.pool);
      tape.set_executor_for_testing(cfg.exec);
      hashes.push_back(run_pipeline_hash());
    }
    // Restore the ambient configuration before asserting.
    thread_pool.resize_for_testing(1);
    storage_pool.set_enabled(pool_was_enabled);
    tape.set_executor_for_testing(exec_prev);

    const char* vname =
        kernels::variant_name(static_cast<kernels::Variant>(v));
    for (size_t i = 1; i < hashes.size(); ++i) {
      EXPECT_EQ(hashes[0], hashes[i])
          << "[" << vname << "] pipeline hash diverged between config 0 "
          << "(threads=1, pool=on, exec=seq) and config " << i
          << " (threads=" << configs[i].threads
          << ", pool=" << (configs[i].pool ? "on" : "off") << ", exec="
          << (configs[i].exec == tensor::Executor::kSeq ? "seq" : "graph")
          << ")";
    }
    EXPECT_EQ(hashes[0], kGoldenHashPerVariant[v])
        << "[" << vname << "] golden pipeline hash changed. If this is an "
        << "intentional numeric change, update kGoldenHashPerVariant["
        << v << "] in tests/test_golden.cpp to 0x" << std::hex << hashes[0]
        << "; otherwise bisect the regression.";
  }
  kernels::set_variant_override(-1);

  // The run happened with the observability layer live: the pipeline spans
  // must have been recorded (proof the instrumentation was active while the
  // numerics stayed bit-identical).
  if (obs::enabled()) {
    bool saw_placer = false, saw_router = false, saw_trainer = false;
    for (const auto& e : obs::trace_snapshot()) {
      if (std::strcmp(e.name, "placer.iterate") == 0) saw_placer = true;
      if (std::strcmp(e.name, "router.detailed_route") == 0) saw_router = true;
      if (std::strcmp(e.name, "trainer.fit") == 0) saw_trainer = true;
    }
    EXPECT_TRUE(saw_placer);
    EXPECT_TRUE(saw_router);
    EXPECT_TRUE(saw_trainer);
  }
}

// ---- LHNN golden gate ----------------------------------------------------
//
// Same determinism contract, aimed at the sparse-op stack: a 2-epoch LHNN
// fit (cell->net gather, net->lattice scatter, multi-root backward through
// the auxiliary net head) followed by predict_levels, hashing the predicted
// level map AND every trained parameter. This pins the slot-partitioned
// scatter accumulation and the multi-root union plan the same way the main
// gate pins the dense stack.

std::uint64_t run_lhnn_hash(const std::vector<train::Sample>& samples) {
  models::ModelConfig config;
  config.grid = 32;
  config.base_channels = 4;
  config.transformer_layers = 1;
  config.seed = 3;
  auto model = models::make_model("lhnn", config);
  train::TrainOptions topt;
  topt.epochs = 2;
  topt.batch_size = 2;
  topt.seed = 1;
  topt.resume = false;
  train::Trainer::fit(*model, samples, topt);

  Tensor batched = ops::reshape(
      samples[0].features,
      {1, samples[0].features.size(0), samples[0].features.size(1),
       samples[0].features.size(2)});
  Tensor pred = model->predict_levels(batched);

  Fnv1a fnv;
  for (std::int64_t i = 0; i < pred.numel(); ++i) fnv.f32(pred.data()[i]);
  for (const Tensor& p : model->network().parameters())
    for (std::int64_t i = 0; i < p.numel(); ++i) fnv.f32(p.data()[i]);
  return fnv.h;
}

// Pinned per GEMM variant like kGoldenHashPerVariant. Unlike the main gate
// this hash covers raw trained parameters (not threshold-protected discrete
// levels), so the scalar variant legitimately differs from the FMA-using
// SIMD variants; avx2 and avx512 coincide because the LHNN shapes at C=4
// stay under the avx512 kernel's width threshold.
constexpr std::uint64_t kLhnnHashPerVariant[kernels::kNumVariants] = {
    0xb81e388c702e2a79ULL,  // scalar
    0xa3246cf14d139a14ULL,  // avx2
    0xa3246cf14d139a14ULL,  // avx512
};

TEST(Golden, LhnnTrainPredictHashIsBitIdenticalAcrossConfigs) {
  auto& thread_pool = common::ThreadPool::instance();
  auto& storage_pool = tensor::StoragePool::instance();
  auto& tape = tensor::Tape::current();
  const bool pool_was_enabled = storage_pool.enabled();
  const tensor::Executor exec_prev = tape.executor();

  // Dataset built once outside the matrix: its placer/feature path is
  // covered by the main gate; this test isolates the model stack.
  const auto device = fpga::DeviceGrid::make_xcvu3p_like(40, 32);
  netlist::DesignSpec spec = netlist::mlcad2023_spec("Design_116");
  spec.lut_util *= 0.4;
  spec.ff_util *= 0.4;
  spec.dsp_util *= 0.6;
  spec.bram_util *= 0.6;
  train::DatasetOptions dopt;
  dopt.grid = 32;
  dopt.placements_per_design = 2;
  dopt.augment_rotations = false;
  dopt.placer_iterations = 40;
  dopt.seed = 7;
  const auto samples =
      train::DatasetBuilder::build_for_design(spec, device, dopt);

  const GoldenConfig configs[] = {
      {1, true, tensor::Executor::kSeq},
      {4, true, tensor::Executor::kSeq},
      {1, false, tensor::Executor::kSeq},
      {4, false, tensor::Executor::kSeq},
      {1, true, tensor::Executor::kGraph},
      {4, true, tensor::Executor::kGraph},
      {1, false, tensor::Executor::kGraph},
      {4, false, tensor::Executor::kGraph},
  };
  for (int v = 0; v < kernels::kNumVariants; ++v) {
    if (!kernels::variant_supported(static_cast<kernels::Variant>(v))) {
      continue;
    }
    ASSERT_TRUE(kernels::set_variant_override(v));
    std::vector<std::uint64_t> hashes;
    for (const auto& cfg : configs) {
      thread_pool.resize_for_testing(cfg.threads);
      storage_pool.set_enabled(cfg.pool);
      tape.set_executor_for_testing(cfg.exec);
      hashes.push_back(run_lhnn_hash(samples));
    }
    thread_pool.resize_for_testing(1);
    storage_pool.set_enabled(pool_was_enabled);
    tape.set_executor_for_testing(exec_prev);

    const char* vname =
        kernels::variant_name(static_cast<kernels::Variant>(v));
    for (size_t i = 1; i < hashes.size(); ++i) {
      EXPECT_EQ(hashes[0], hashes[i])
          << "[" << vname << "] LHNN hash diverged between config 0 and "
          << "config " << i << " (threads=" << configs[i].threads
          << ", pool=" << (configs[i].pool ? "on" : "off") << ", exec="
          << (configs[i].exec == tensor::Executor::kSeq ? "seq" : "graph")
          << ")";
    }
    EXPECT_EQ(hashes[0], kLhnnHashPerVariant[v])
        << "[" << vname << "] LHNN golden hash changed. If intentional, "
        << "update kLhnnHashPerVariant[" << v
        << "] in tests/test_golden.cpp to 0x" << std::hex << hashes[0]
        << "; otherwise bisect the regression.";
  }
  kernels::set_variant_override(-1);
}

}  // namespace
}  // namespace mfa
