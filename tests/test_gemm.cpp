// Dispatched-GEMM kernel family tests (tensor/gemm.h).
//
// Covers, per compiled-and-supported variant (scalar / avx2 / avx512):
//  * correctness of all three kernels against a double-precision reference
//    on edge shapes (0, 1, 3, tile-1, tile, tile+1, large prime) plus a
//    packing-sized shape;
//  * bit-identical results across MFA_THREADS {1, 4}, across tile
//    parameters, and across the pack / no-pack decision — the determinism
//    contract of gemm_tiles.h;
//  * dispatch control: MFA_SIMD resolution (pure resolver + live env),
//    override honored for supported variants and rejected gracefully for
//    unsupported ones;
//  * the 64-byte alignment guarantee of the kernels::scratch arena;
//  * the tuned-tile cache: fingerprinting, render/parse round-trip, and the
//    corrupt / foreign-host fallback paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/gemm_tune.h"

namespace mfa {
namespace {

using kernels::GemmTiles;
using kernels::Variant;

using GemmFn = void (*)(const float*, const float*, float*, std::int64_t,
                        std::int64_t, std::int64_t);

struct Op {
  const char* name;
  GemmFn fn;
};

const Op kOps[] = {
    {"nn", kernels::gemm_nn},
    {"nt", kernels::gemm_nt},
    {"tn", kernels::gemm_tn},
};

/// Restores dispatch overrides and the ambient pool size on scope exit.
struct DispatchGuard {
  ~DispatchGuard() {
    kernels::set_variant_override(-1);
    for (int v = 0; v < kernels::kNumVariants; ++v)
      kernels::set_tiles_override(static_cast<Variant>(v), nullptr);
    common::ThreadPool::instance().resize_for_testing(1);
  }
};

std::vector<Variant> supported_variants() {
  std::vector<Variant> out;
  for (int v = 0; v < kernels::kNumVariants; ++v)
    if (kernels::variant_supported(static_cast<Variant>(v)))
      out.push_back(static_cast<Variant>(v));
  return out;
}

std::vector<float> random_vec(std::int64_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Double-precision reference for all three layouts; accumulates into C.
void ref_gemm(const char* op, const std::vector<float>& A,
              const std::vector<float>& B, std::vector<float>* C,
              std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t l = 0; l < k; ++l) {
        const double a = std::strcmp(op, "tn") == 0 ? A[l * m + i]
                                                    : A[i * k + l];
        const double b = std::strcmp(op, "nt") == 0 ? B[j * k + l]
                                                    : B[l * n + j];
        s += a * b;
      }
      (*C)[i * n + j] += static_cast<float>(s);
    }
}

void expect_close(const std::vector<float>& got, const std::vector<float>& want,
                  std::int64_t k, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  // Error budget: k float roundings against a double reference.
  const double tol = 1e-5 * (1.0 + std::sqrt(static_cast<double>(k)));
  for (size_t i = 0; i < got.size(); ++i) {
    const double denom = std::max(1.0, std::abs(static_cast<double>(want[i])));
    ASSERT_NEAR(got[i], want[i], tol * denom) << what << " at " << i;
  }
}

TEST(GemmCorrectness, AllKernelsMatchDoubleReferenceOnEdgeShapes) {
  DispatchGuard guard;
  // 0 = empty, 1/3 = sub-vector tails, 15/16/17 = around the AVX-512 lane
  // count (and past AVX2's 8), 97 = large prime that tiles never divide.
  const std::int64_t dims[] = {0, 1, 3, 15, 16, 17, 97};
  for (Variant v : supported_variants()) {
    ASSERT_TRUE(kernels::set_variant_override(static_cast<int>(v)));
    for (const Op& op : kOps) {
      for (std::int64_t m : dims)
        for (std::int64_t k : dims)
          for (std::int64_t n : dims) {
            const auto A = random_vec(std::max<std::int64_t>(m * k, 1), 1);
            const auto B = random_vec(std::max<std::int64_t>(k * n, 1), 2);
            auto C = random_vec(std::max<std::int64_t>(m * n, 1), 3);
            C.resize(static_cast<size_t>(m * n));
            auto want = C;
            op.fn(A.data(), B.data(), C.data(), m, k, n);
            ref_gemm(op.name, A, B, &want, m, k, n);
            expect_close(C, want, k,
                         std::string(kernels::variant_name(v)) + " " +
                             op.name + " m=" + std::to_string(m) +
                             " k=" + std::to_string(k) +
                             " n=" + std::to_string(n));
          }
    }
  }
}

TEST(GemmCorrectness, PackedPathMatchesReferenceOnLargeShape) {
  DispatchGuard guard;
  const std::int64_t m = 64, k = 256, n = 640;  // k*n > default pack_min
  for (Variant v : supported_variants()) {
    ASSERT_TRUE(kernels::set_variant_override(static_cast<int>(v)));
    const auto A = random_vec(m * k, 11);
    const auto B = random_vec(k * n, 12);
    auto C = std::vector<float>(static_cast<size_t>(m * n), 0.5f);
    auto want = C;
    kernels::gemm_nn(A.data(), B.data(), C.data(), m, k, n);
    ref_gemm("nn", A, B, &want, m, k, n);
    expect_close(C, want, k,
                 std::string("packed nn ") + kernels::variant_name(v));
  }
}

std::vector<float> run_once(const Op& op, Variant v, const GemmTiles* tiles,
                            int threads, std::int64_t m, std::int64_t k,
                            std::int64_t n) {
  EXPECT_TRUE(kernels::set_variant_override(static_cast<int>(v)));
  kernels::set_tiles_override(v, tiles);
  common::ThreadPool::instance().resize_for_testing(threads);
  const auto A = random_vec(
      std::max<std::int64_t>(std::strcmp(op.name, "tn") == 0 ? k * m : m * k,
                             1),
      21);
  const auto B = random_vec(std::max<std::int64_t>(k * n, 1), 22);
  std::vector<float> C(static_cast<size_t>(m * n), 0.25f);
  op.fn(A.data(), B.data(), C.data(), m, k, n);
  return C;
}

TEST(GemmDeterminism, BitIdenticalAcrossThreadCounts) {
  DispatchGuard guard;
  const std::int64_t m = 128, k = 64, n = 96;
  for (Variant v : supported_variants()) {
    for (const Op& op : kOps) {
      const auto one = run_once(op, v, nullptr, 1, m, k, n);
      const auto four = run_once(op, v, nullptr, 4, m, k, n);
      ASSERT_EQ(0, std::memcmp(one.data(), four.data(),
                               one.size() * sizeof(float)))
          << kernels::variant_name(v) << " " << op.name
          << ": threads 1 vs 4 diverged";
    }
  }
}

TEST(GemmDeterminism, BitIdenticalAcrossTileParametersAndPacking) {
  DispatchGuard guard;
  const std::int64_t m = 96, k = 80, n = 112;
  // Configs straddle every lever: register tile shape, panel sizes,
  // pack_min at both extremes (0 = always pack, huge = never pack), and
  // pack_min_a at both extremes (A panel always / never copied).
  GemmTiles configs[6];
  configs[0] = GemmTiles{};
  configs[1].mr = 1;
  configs[1].nv = 1;
  configs[1].nc = 64;
  configs[1].kc = 32;
  configs[1].pack_min = 0;
  configs[1].pack_min_a = 0;
  configs[2].mr = 8;
  configs[2].nv = 4;
  configs[2].nc = 128;
  configs[2].kc = 48;
  configs[2].pack_min = 0;
  configs[2].pack_min_a = std::int64_t{1} << 40;
  configs[3].mr = 2;
  configs[3].nv = 2;
  configs[3].nc = 4096;
  configs[3].kc = 8192;
  configs[3].pack_min = std::int64_t{1} << 40;
  configs[4].mr = 4;
  configs[4].nv = 2;
  configs[4].nc = 48;
  configs[4].kc = 16;
  configs[4].pack_min = 1;
  configs[4].pack_min_a = 1;
  configs[5] = GemmTiles{};
  configs[5].pack_min = 0;
  configs[5].pack_min_a = 0;
  for (Variant v : supported_variants()) {
    for (const Op& op : kOps) {
      const auto base = run_once(op, v, &configs[0], 1, m, k, n);
      for (size_t c = 1; c < 6; ++c) {
        const auto got = run_once(op, v, &configs[c], 1, m, k, n);
        ASSERT_EQ(0, std::memcmp(base.data(), got.data(),
                                 base.size() * sizeof(float)))
            << kernels::variant_name(v) << " " << op.name
            << ": tile config " << c << " changed the bits";
      }
    }
  }
}

TEST(GemmDispatch, ResolveVariantPicksWidestAndHonoursForcing) {
  using kernels::detail::resolve_variant;
  EXPECT_EQ(Variant::kAvx512, resolve_variant(nullptr, true, true));
  EXPECT_EQ(Variant::kAvx2, resolve_variant(nullptr, true, false));
  EXPECT_EQ(Variant::kScalar, resolve_variant(nullptr, false, false));
  EXPECT_EQ(Variant::kAvx512, resolve_variant("", true, true));
  EXPECT_EQ(Variant::kAvx512, resolve_variant("auto", true, true));
  EXPECT_EQ(Variant::kScalar, resolve_variant("scalar", true, true));
  EXPECT_EQ(Variant::kAvx2, resolve_variant("avx2", true, true));
  EXPECT_EQ(Variant::kAvx512, resolve_variant("avx512", true, true));
  // Forced ISA the host lacks degrades to the widest supported, not a crash.
  EXPECT_EQ(Variant::kScalar, resolve_variant("avx2", false, false));
  EXPECT_EQ(Variant::kAvx2, resolve_variant("avx512", true, false));
  EXPECT_EQ(Variant::kScalar, resolve_variant("avx512", false, false));
  // Unrecognised values keep the widest supported variant.
  EXPECT_EQ(Variant::kAvx512, resolve_variant("sse9", true, true));
  EXPECT_EQ(Variant::kScalar, resolve_variant("sse9", false, false));
}

TEST(GemmDispatch, StartupResolutionMatchesLiveEnvironment) {
  // With MFA_SIMD set (the scripts/ci.sh MFA_SIMD=scalar pass), this pins
  // the live dispatch to what the resolver says; without it, it still
  // asserts startup agreement between cpuid and the chosen variant.
  const Variant expect = kernels::detail::resolve_variant(
      std::getenv("MFA_SIMD"), kernels::variant_supported(Variant::kAvx2),
      kernels::variant_supported(Variant::kAvx512));
  kernels::set_variant_override(-1);
  EXPECT_EQ(expect, kernels::active_variant());
}

TEST(GemmDispatch, OverrideHonoredForSupportedRejectedForUnsupported) {
  DispatchGuard guard;
  for (Variant v : supported_variants()) {
    EXPECT_TRUE(kernels::set_variant_override(static_cast<int>(v)));
    EXPECT_EQ(v, kernels::active_variant());
  }
  EXPECT_FALSE(kernels::set_variant_override(kernels::kNumVariants));
  EXPECT_FALSE(kernels::set_variant_override(99));
  for (int v = 0; v < kernels::kNumVariants; ++v) {
    if (!kernels::variant_supported(static_cast<Variant>(v))) {
      EXPECT_FALSE(kernels::set_variant_override(v));
    }
  }
  EXPECT_TRUE(kernels::set_variant_override(-1));
}

TEST(GemmScratch, AllSlotsAre64ByteAlignedAndGrowOnly) {
  for (int slot = 0; slot < kernels::kScratchSlots; ++slot) {
    float* small = kernels::scratch(slot, 7);
    ASSERT_NE(nullptr, small);
    EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(small) % 64)
        << "slot " << slot;
    // Growing re-allocates but stays aligned; a smaller request reuses the
    // grown buffer.
    float* big = kernels::scratch(slot, 4096);
    EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(big) % 64)
        << "slot " << slot;
    big[0] = 1.0f;
    big[4095] = 2.0f;
    EXPECT_EQ(big, kernels::scratch(slot, 64)) << "slot " << slot;
  }
}

TEST(GemmObs, DispatchVariantTilesAndCountersAreExported) {
  DispatchGuard guard;
  // One call guarantees the gemm.calls counter cell exists and counts.
  const auto A = random_vec(4, 31);
  const auto B = random_vec(4, 32);
  std::vector<float> C(4, 0.0f);
  kernels::gemm_nn(A.data(), B.data(), C.data(), 2, 2, 2);

  const std::string json = obs::Registry::instance().metrics_json();
  const std::string dispatch_entry =
      "\"gemm.dispatch\":" +
      std::to_string(static_cast<int>(kernels::active_variant()));
  EXPECT_NE(std::string::npos, json.find(dispatch_entry)) << json;
  const std::string tuned_entry =
      std::string("\"gemm.tuned\":") +
      (kernels::tuned_tiles_loaded() ? "1" : "0");
  EXPECT_NE(std::string::npos, json.find(tuned_entry)) << json;
  const GemmTiles t = kernels::variant_tiles(kernels::active_variant());
  EXPECT_NE(std::string::npos,
            json.find("\"gemm.tiles.mr\":" + std::to_string(t.mr)));
  EXPECT_NE(std::string::npos,
            json.find("\"gemm.tiles.nc\":" + std::to_string(t.nc)));
  EXPECT_NE(std::string::npos, json.find("\"gemm.supported.avx2\":"));
  EXPECT_NE(std::string::npos, json.find("\"gemm.calls\":"));

  // The source tracks a live override.
  for (Variant v : supported_variants()) {
    ASSERT_TRUE(kernels::set_variant_override(static_cast<int>(v)));
    const std::string after = obs::Registry::instance().metrics_json();
    EXPECT_NE(std::string::npos,
              after.find("\"gemm.dispatch\":" +
                         std::to_string(static_cast<int>(v))));
  }
}

TEST(GemmObs, PackedPanelCounterCountsOnlyPackedCalls) {
  DispatchGuard guard;
  if (!obs::enabled()) GTEST_SKIP() << "MFA_OBS off";
  const auto before = obs::counter("gemm.packed_panels").value();
  // Small shape: below any sane pack_min, must not pack.
  const auto A = random_vec(8 * 8, 41);
  const auto B = random_vec(8 * 8, 42);
  std::vector<float> C(8 * 8, 0.0f);
  kernels::gemm_nn(A.data(), B.data(), C.data(), 8, 8, 8);
  EXPECT_EQ(before, obs::counter("gemm.packed_panels").value());

  // Force packing via tiles on a SIMD variant (the scalar strips never
  // pack); skip on a scalar-only host.
  const auto vs = supported_variants();
  if (vs.back() == Variant::kScalar) GTEST_SKIP() << "no SIMD variant";
  GemmTiles t;
  t.pack_min = 0;
  ASSERT_TRUE(kernels::set_variant_override(static_cast<int>(vs.back())));
  kernels::set_tiles_override(vs.back(), &t);
  const auto big_a = random_vec(32 * 64, 43);
  const auto big_b = random_vec(64 * 96, 44);
  std::vector<float> big_c(32 * 96, 0.0f);
  kernels::gemm_nn(big_a.data(), big_b.data(), big_c.data(), 32, 64, 96);
  EXPECT_GT(obs::counter("gemm.packed_panels").value(), before);
}

// ---- tuned-tile cache ----------------------------------------------------

TEST(GemmTune, FingerprintIsStableAndSensitive) {
  const std::string a = kernels::tune::fingerprint_of("cpu-a", 8);
  EXPECT_EQ(16u, a.size());
  EXPECT_EQ(a, kernels::tune::fingerprint_of("cpu-a", 8));
  EXPECT_NE(a, kernels::tune::fingerprint_of("cpu-b", 8));
  EXPECT_NE(a, kernels::tune::fingerprint_of("cpu-a", 4));
  const auto host = kernels::tune::host_id();
  EXPECT_EQ(host.fingerprint,
            kernels::tune::fingerprint_of(host.cpu, host.cores));
}

TEST(GemmTune, RenderParseRoundTripPreservesTiles) {
  kernels::tune::HostId host;
  host.cpu = "Test CPU \"quoted\"";
  host.cores = 12;
  host.fingerprint = kernels::tune::fingerprint_of(host.cpu, host.cores);
  kernels::tune::TunedTable table;
  table.have[0] = true;
  table.tiles[0] = GemmTiles{};
  table.have[2] = true;
  table.tiles[2].mr = 8;
  table.tiles[2].nv = 4;
  table.tiles[2].nc = 1024;
  table.tiles[2].kc = 128;
  table.tiles[2].pack_min = 65536;
  table.tiles[2].pack_min_a = 4096;

  const std::string text = kernels::tune::render(host, table);
  kernels::tune::TunedTable parsed;
  std::string fp, err;
  ASSERT_TRUE(kernels::tune::parse_text(text, &parsed, &fp, &err)) << err;
  EXPECT_EQ(host.fingerprint, fp);
  EXPECT_TRUE(parsed.have[0]);
  EXPECT_FALSE(parsed.have[1]);
  ASSERT_TRUE(parsed.have[2]);
  EXPECT_EQ(8, parsed.tiles[2].mr);
  EXPECT_EQ(4, parsed.tiles[2].nv);
  EXPECT_EQ(1024, parsed.tiles[2].nc);
  EXPECT_EQ(128, parsed.tiles[2].kc);
  EXPECT_EQ(65536, parsed.tiles[2].pack_min);
  EXPECT_EQ(4096, parsed.tiles[2].pack_min_a);
}

TEST(GemmTune, CorruptAndOutOfBoundsInputsAreRejected) {
  kernels::tune::TunedTable table;
  std::string fp, err;
  const char* bad[] = {
      "",
      "not json",
      "{",
      "{\"fingerprint\": \"x\"",
      "{\"fingerprint\": \"x\"} trailing",
      "{\"variants\": {\"scalar\": {\"mr\": 4}}}",  // no fingerprint
      "{\"fingerprint\": \"x\", \"variants\": {\"mmx\": {\"mr\": 4}}}",
      // mr=5 fails the sanity bounds:
      "{\"fingerprint\": \"x\", \"variants\": {\"avx2\": {\"mr\": 5, "
      "\"nv\": 2, \"nc\": 512, \"kc\": 256, \"pack_min\": 0}}}",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(kernels::tune::parse_text(text, &table, &fp, &err))
        << "accepted: " << text;
  }
  EXPECT_FALSE(kernels::tune::parse_file("/nonexistent/gemm_tuned.json",
                                         &table, &fp, &err));
  EXPECT_EQ("missing", err);
}

TEST(GemmTune, WriteFileRoundTripsThroughParseFile) {
  const auto dir = std::filesystem::temp_directory_path() / "mfa_gemm_tune";
  const std::string path = (dir / "cache.json").string();
  std::filesystem::remove_all(dir);

  const auto host = kernels::tune::host_id();
  kernels::tune::TunedTable table;
  table.have[0] = true;
  table.tiles[0].nc = 768;
  std::string err;
  ASSERT_TRUE(kernels::tune::write_file(path, host, table, &err)) << err;

  kernels::tune::TunedTable parsed;
  std::string fp;
  ASSERT_TRUE(kernels::tune::parse_file(path, &parsed, &fp, &err)) << err;
  EXPECT_EQ(host.fingerprint, fp);
  ASSERT_TRUE(parsed.have[0]);
  EXPECT_EQ(768, parsed.tiles[0].nc);
  std::filesystem::remove_all(dir);
}

TEST(GemmTune, TilesSaneBounds) {
  GemmTiles t;
  EXPECT_TRUE(kernels::tune::tiles_sane(t));
  t.mr = 5;
  EXPECT_FALSE(kernels::tune::tiles_sane(t));
  t.mr = 8;
  t.nv = 3;
  EXPECT_FALSE(kernels::tune::tiles_sane(t));
  t.nv = 4;
  t.nc = 8;
  EXPECT_FALSE(kernels::tune::tiles_sane(t));
  t.nc = 16;
  t.kc = 4;
  EXPECT_FALSE(kernels::tune::tiles_sane(t));
  t.kc = 8;
  t.pack_min = -1;
  EXPECT_FALSE(kernels::tune::tiles_sane(t));
  t.pack_min = 0;
  EXPECT_TRUE(kernels::tune::tiles_sane(t));
  t.pack_min_a = -1;
  EXPECT_FALSE(kernels::tune::tiles_sane(t));
  t.pack_min_a = 0;
  EXPECT_TRUE(kernels::tune::tiles_sane(t));
}

}  // namespace
}  // namespace mfa
