#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/fault.h"
#include "flow/flow.h"
#include "netlist/generator.h"
#include "nn/layers.h"

namespace mfa::flow {
namespace {

using fpga::DeviceGrid;
using netlist::Design;

/// A predictor that always blows up with an invariant failure, standing in
/// for a model whose numeric stack tripped a CheckError mid-inference.
class BrokenPredictor : public models::CongestionModel {
 public:
  BrokenPredictor()
      : models::CongestionModel(models::ModelConfig{}), rng_(1), net_(1, 1, rng_) {}
  const char* name() const override { return "broken"; }
  nn::Module& network() override { return net_; }
  Tensor forward(const Tensor&) override {
    throw check::CheckError("broken predictor: synthetic invariant failure");
  }

 private:
  Rng rng_;
  nn::Linear net_;
};

DeviceGrid test_device() { return DeviceGrid::make_xcvu3p_like(60, 40); }

Design small_design(const DeviceGrid& device) {
  netlist::DesignSpec spec = netlist::mlcad2023_spec("Design_116");
  spec.lut_util = 0.3;
  spec.ff_util = 0.15;
  spec.dsp_util = 0.6;
  spec.bram_util = 0.6;
  spec.uram_util = 0.3;
  return netlist::DesignGenerator::generate(spec, device);
}

FlowOptions fast_options() {
  FlowOptions options;
  options.placer.max_iterations = 60;
  options.inflation_rounds = 1;
  options.post_inflation_iterations = 15;
  return options;
}

TEST(Strategies, NamesRoundTrip) {
  EXPECT_EQ(strategy_from_name("utda"), Strategy::Utda);
  EXPECT_EQ(strategy_from_name("SEU"), Strategy::Seu);
  EXPECT_EQ(strategy_from_name("mpku"), Strategy::MpkuImprove);
  EXPECT_EQ(strategy_from_name("ours"), Strategy::Ours);
  EXPECT_THROW(strategy_from_name("vivado"), std::invalid_argument);
  EXPECT_STREQ(to_string(Strategy::Utda), "UTDA");
  EXPECT_STREQ(to_string(Strategy::MpkuImprove), "MPKU-Improve");
}

TEST(Strategies, QuantileLevelsMonotoneInDemand) {
  std::vector<float> demand(1000);
  for (size_t i = 0; i < demand.size(); ++i)
    demand[i] = static_cast<float>(i);
  const auto levels = quantile_levels(demand);
  for (size_t i = 1; i < levels.size(); ++i)
    EXPECT_GE(levels[i], levels[i - 1]);
  EXPECT_EQ(levels.front(), 0.0f);
  EXPECT_EQ(levels.back(), 6.0f);
}

TEST(Strategies, QuantileLevelsFractionBounded) {
  std::vector<float> demand(4096);
  Rng rng(1);
  for (auto& v : demand) v = static_cast<float>(rng.uniform());
  const auto levels = quantile_levels(demand);
  std::int64_t above3 = 0;
  for (const auto l : levels) above3 += (l > 3.0f);
  // Inflation targets (level > 3) are ~7% of tiles by construction.
  EXPECT_GT(above3, 4096 * 0.03);
  EXPECT_LT(above3, 4096 * 0.12);
}

TEST(Strategies, AnalyticLevelsForOursThrows) {
  Tensor features = Tensor::zeros({6, 8, 8});
  EXPECT_THROW(analytic_levels(Strategy::Ours, features), std::logic_error);
}

TEST(Strategies, SeuDiffersFromUtdaWhenPinsDiverge) {
  Rng rng(2);
  Tensor features = Tensor::uniform({6, 16, 16}, rng, 0.0f, 1.0f);
  const auto utda = analytic_levels(Strategy::Utda, features);
  const auto seu = analytic_levels(Strategy::Seu, features);
  EXPECT_NE(utda, seu);
}

TEST(Flow, AnalyticStrategiesProduceScores) {
  const auto device = test_device();
  const auto design = small_design(device);
  RoutabilityDrivenPlacer flow(design, device, fast_options());
  const FlowResult result = flow.run(Strategy::Utda);
  EXPECT_GE(result.s_ir, 1.0);
  EXPECT_GE(result.s_dr, 5.0);
  EXPECT_DOUBLE_EQ(result.s_r, result.s_ir * result.s_dr);
  EXPECT_GT(result.s_score, 0.0);
  EXPECT_GT(result.t_pr_hours, 0.0);
  EXPECT_GT(result.routed_wirelength, 0.0);
  EXPECT_LT(result.t_macro_minutes, 10.0);  // no Eq. 3 runtime penalty
}

TEST(Flow, OursRequiresModel) {
  const auto device = test_device();
  const auto design = small_design(device);
  RoutabilityDrivenPlacer flow(design, device, fast_options());
  EXPECT_THROW(flow.run(Strategy::Ours, nullptr), std::invalid_argument);
}

TEST(Flow, OursRunsWithUntrainedModel) {
  const auto device = test_device();
  const auto design = small_design(device);
  RoutabilityDrivenPlacer flow(design, device, fast_options());
  models::ModelConfig config;
  config.grid = 64;
  config.base_channels = 4;
  config.transformer_layers = 1;
  auto model = models::make_model("ours", config);
  const FlowResult result = flow.run(Strategy::Ours, model.get());
  EXPECT_GE(result.s_r, 5.0);
}

TEST(Flow, InflationTargetsCongestion) {
  // With inflation enabled the flow must actually inflate something on a
  // congested design (quantile strategies always mark ~7% of tiles).
  const auto device = test_device();
  const auto design = small_design(device);
  RoutabilityDrivenPlacer flow(design, device, fast_options());
  const FlowResult result = flow.run(Strategy::Seu);
  EXPECT_GT(result.inflated_objects, 0);
}

TEST(Flow, BrokenPredictorFallsBackToAnalyticEstimate) {
  // A predictor that dies mid-inference must not kill the flow: the round
  // degrades to the analytic quantile estimate and the run completes with
  // valid scores plus an incident record.
  const auto device = test_device();
  const auto design = small_design(device);
  RoutabilityDrivenPlacer flow(design, device, fast_options());
  BrokenPredictor model;
  const FlowResult result = flow.run(Strategy::Ours, &model);
  EXPECT_GE(result.s_ir, 1.0);
  EXPECT_GE(result.s_dr, 5.0);
  EXPECT_GT(result.s_score, 0.0);
  EXPECT_GT(result.routed_wirelength, 0.0);
  EXPECT_GT(result.inflated_objects, 0);  // the analytic fallback inflates
  ASSERT_EQ(result.incidents.size(), 1u);
  EXPECT_EQ(result.incidents[0].stage, "predict");
  EXPECT_EQ(result.incidents[0].round, 0);
  EXPECT_NE(result.incidents[0].detail.find("analytic fallback"),
            std::string::npos);
}

TEST(Flow, PredictorNanFaultFallsBackToAnalyticEstimate) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  auto& fi = common::FaultInjector::instance();
  fi.reset();
  const auto device = test_device();
  const auto design = small_design(device);
  RoutabilityDrivenPlacer flow(design, device, fast_options());
  models::ModelConfig config;
  config.grid = 64;
  config.base_channels = 4;
  config.transformer_layers = 1;
  auto model = models::make_model("ours", config);
  fi.arm_always("flow.predictor_nan");
  const FlowResult result = flow.run(Strategy::Ours, model.get());
  fi.reset();
  EXPECT_GE(result.s_r, 5.0);
  ASSERT_EQ(result.incidents.size(), 1u);
  EXPECT_EQ(result.incidents[0].stage, "predict");
  EXPECT_NE(result.incidents[0].detail.find("non-finite"), std::string::npos);
}

TEST(Flow, CleanRunHasNoIncidents) {
  const auto device = test_device();
  const auto design = small_design(device);
  RoutabilityDrivenPlacer flow(design, device, fast_options());
  const FlowResult result = flow.run(Strategy::Utda);
  EXPECT_TRUE(result.incidents.empty());
  EXPECT_FALSE(result.budget_exhausted);
}

TEST(Flow, BudgetExhaustionIsReportedWithPartialScores) {
  const auto device = test_device();
  const auto design = small_design(device);
  FlowOptions options = fast_options();
  options.placer.time_budget_seconds = 1e-6;
  options.router.time_budget_seconds = 1e-9;
  RoutabilityDrivenPlacer flow(design, device, options);
  const FlowResult result = flow.run(Strategy::Utda);
  // The flow still completes end-to-end and produces scores for the best
  // partial placement/routing it had time for.
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_GE(result.incidents.size(), 1u);
  for (const auto& incident : result.incidents)
    EXPECT_TRUE(incident.stage == "place" || incident.stage == "route");
  EXPECT_GE(result.s_ir, 1.0);
  EXPECT_GE(result.s_dr, 5.0);
  EXPECT_GT(result.routed_wirelength, 0.0);
  EXPECT_TRUE(std::isfinite(result.s_score));
}

TEST(Flow, PredictorBudgetFallsBackToAnalyticForLaterRounds) {
  // Round 0 spends the (tiny) predictor budget; round 1 must degrade to the
  // analytic estimate, record the cut, and still finish with valid scores.
  const auto device = test_device();
  const auto design = small_design(device);
  FlowOptions options = fast_options();
  options.inflation_rounds = 2;
  options.predictor_time_budget_seconds = 1e-12;
  RoutabilityDrivenPlacer flow(design, device, options);
  models::ModelConfig config;
  config.grid = 64;
  config.base_channels = 4;
  config.transformer_layers = 1;
  auto model = models::make_model("ours", config);
  const FlowResult result = flow.run(Strategy::Ours, model.get());
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_GE(result.s_r, 5.0);
  bool saw_predict_budget_cut = false;
  for (const auto& incident : result.incidents)
    if (incident.stage == "predict" &&
        incident.detail.find("budget") != std::string::npos) {
      saw_predict_budget_cut = true;
      EXPECT_GE(incident.round, 1) << "round 0 must run before the budget "
                                      "can be spent";
    }
  EXPECT_TRUE(saw_predict_budget_cut);
}

TEST(Flow, PredictorBudgetFaultForcesAnalyticEveryRound) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  auto& fi = common::FaultInjector::instance();
  fi.reset();
  const auto device = test_device();
  const auto design = small_design(device);
  RoutabilityDrivenPlacer flow(design, device, fast_options());
  models::ModelConfig config;
  config.grid = 64;
  config.base_channels = 4;
  config.transformer_layers = 1;
  auto model = models::make_model("ours", config);
  fi.arm_always("flow.predict_budget");
  const FlowResult result = flow.run(Strategy::Ours, model.get());
  fi.reset();
  EXPECT_TRUE(result.budget_exhausted);
  ASSERT_EQ(result.incidents.size(), 1u);
  EXPECT_EQ(result.incidents[0].stage, "predict");
  EXPECT_EQ(result.incidents[0].round, 0);
  EXPECT_NE(result.incidents[0].detail.find("budget"), std::string::npos);
  EXPECT_GT(result.inflated_objects, 0);  // the analytic fallback inflates
}

TEST(Flow, DeterministicForFixedOptions) {
  const auto device = test_device();
  const auto design = small_design(device);
  RoutabilityDrivenPlacer flow(design, device, fast_options());
  const FlowResult a = flow.run(Strategy::Utda);
  const FlowResult b = flow.run(Strategy::Utda);
  EXPECT_DOUBLE_EQ(a.s_r, b.s_r);
  EXPECT_DOUBLE_EQ(a.routed_wirelength, b.routed_wirelength);
}

TEST(Flow, SeedChangesPlacement) {
  const auto device = test_device();
  const auto design = small_design(device);
  FlowOptions options = fast_options();
  RoutabilityDrivenPlacer flow_a(design, device, options);
  options.placer.seed = 999;
  RoutabilityDrivenPlacer flow_b(design, device, options);
  const FlowResult a = flow_a.run(Strategy::Utda);
  const FlowResult b = flow_b.run(Strategy::Utda);
  EXPECT_NE(a.routed_wirelength, b.routed_wirelength);
}

}  // namespace
}  // namespace mfa::flow
