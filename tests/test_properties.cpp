// Parameterised property sweeps across seeds, designs and option values
// (TEST_P): invariants that must hold for every point of the sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "netlist/generator.h"
#include "place/inflation.h"
#include "place/legalizer.h"
#include "place/placer.h"
#include "route/router.h"
#include "route/score.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace mfa {
namespace {

fpga::DeviceGrid small_device() {
  return fpga::DeviceGrid::make_xcvu3p_like(40, 32);
}

netlist::DesignSpec shrunk(const char* name) {
  netlist::DesignSpec spec = netlist::mlcad2023_spec(name);
  spec.lut_util *= 0.4;
  spec.ff_util *= 0.4;
  spec.dsp_util *= 0.6;
  spec.bram_util *= 0.6;
  return spec;
}

// ---- every suite design generates and validates ----

class AllDesigns : public ::testing::TestWithParam<const char*> {};

TEST_P(AllDesigns, GeneratesAndValidates) {
  const auto device = small_device();
  const auto design = netlist::DesignGenerator::generate(
      netlist::mlcad2023_spec(GetParam()), device);
  EXPECT_NO_THROW(design.validate(device));
  EXPECT_GT(design.num_cells(), 0);
  EXPECT_GT(design.num_nets(), 0);
  EXPECT_GT(design.num_macros(), 0);
  // Utilisation within capacity for every resource.
  for (std::size_t r = 0; r < fpga::kNumResources; ++r) {
    const auto res = static_cast<fpga::Resource>(r);
    EXPECT_LE(design.count(res), device.resource_capacity(res))
        << fpga::to_string(res);
  }
}

INSTANTIATE_TEST_SUITE_P(Mlcad2023, AllDesigns,
                         ::testing::Values("Design_116", "Design_120",
                                           "Design_136", "Design_156",
                                           "Design_176", "Design_180",
                                           "Design_190", "Design_197",
                                           "Design_227", "Design_230",
                                           "Design_237"));

// ---- placer invariants across seeds ----

class PlacerSeeds : public ::testing::TestWithParam<int> {};

TEST_P(PlacerSeeds, LegalisesAndMeetsGate) {
  const auto device = small_device();
  const auto design =
      netlist::DesignGenerator::generate(shrunk("Design_136"), device);
  place::PlacementProblem problem(design, device);
  place::PlacerOptions options;
  options.seed = static_cast<std::uint64_t>(GetParam());
  options.max_iterations = 200;
  place::GlobalPlacer placer(problem, options);
  placer.init_random();
  EXPECT_TRUE(placer.run_until_overflow_target());
  place::Placement placement = placer.placement();
  EXPECT_TRUE(place::Legalizer::legalize_macros(problem, placement).success);
  EXPECT_EQ(place::Legalizer::check_macros(problem, placement), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacerSeeds, ::testing::Values(1, 2, 3, 7, 42));

// ---- inflation monotone in epsilon ----

class InflationEpsilon : public ::testing::TestWithParam<double> {};

TEST_P(InflationEpsilon, AreaMonotoneInEpsilon) {
  const auto device = small_device();
  const auto design =
      netlist::DesignGenerator::generate(shrunk("Design_116"), device);
  const auto area_for = [&](double eps) {
    place::PlacementProblem problem(design, device);
    place::Placement placement;
    placement.x.assign(problem.objects.size(), 5.0);
    placement.y.assign(problem.objects.size(), 5.0);
    const std::vector<float> levels(32 * 32, 5.0f);
    place::InflationOptions options;
    options.epsilon = eps;
    return place::apply_inflation(problem, placement, levels, 32, 32, options)
        .area_added;
  };
  const double eps = GetParam();
  EXPECT_LE(area_for(eps), area_for(eps + 0.5) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, InflationEpsilon,
                         ::testing::Values(1.0, 1.3, 2.0, 4.0));

// ---- S_IR non-increasing as router capacity grows ----

class RouterCapacity : public ::testing::TestWithParam<int> {};

TEST_P(RouterCapacity, SirNonIncreasingInCapacity) {
  const auto device = small_device();
  const auto design =
      netlist::DesignGenerator::generate(shrunk("Design_190"), device);
  place::PlacementProblem problem(design, device);
  place::PlacerOptions popt;
  popt.seed = 4;
  place::GlobalPlacer placer(problem, popt);
  placer.init_random();
  placer.iterate(60);
  std::vector<double> cx, cy;
  placer.placement().expand(problem, cx, cy);

  const auto s_ir_for = [&](std::int64_t cap) {
    route::RouterOptions options;
    options.grid_width = 32;
    options.grid_height = 32;
    options.short_capacity = cap;
    options.global_capacity = cap;
    route::GlobalRouter router(design, device, options);
    router.initial_route(cx, cy);
    return route::score::s_ir(router.analyze());
  };
  const int cap = GetParam();
  EXPECT_GE(s_ir_for(cap), s_ir_for(cap * 2));
}

INSTANTIATE_TEST_SUITE_P(Capacities, RouterCapacity,
                         ::testing::Values(8, 16, 24, 40));

// ---- calibrated capacities scale with tile width ----

class CalibratedGrid : public ::testing::TestWithParam<int> {};

TEST_P(CalibratedGrid, CapacityInverselyProportionalToGrid) {
  const auto device = fpga::DeviceGrid::make_xcvu3p_like(60, 40);
  const auto grid = GetParam();
  const auto options =
      route::calibrated_router_options(device, grid, grid);
  // capacity * grid is approximately constant (= 24 * 64 at calibration).
  EXPECT_NEAR(static_cast<double>(options.short_capacity * grid),
              24.0 * 64.0, static_cast<double>(grid));
  EXPECT_GT(options.short_capacity, options.global_capacity);
}

INSTANTIATE_TEST_SUITE_P(Grids, CalibratedGrid,
                         ::testing::Values(16, 32, 64, 128));

// ---- sparse reductions bitwise thread-count independent ------------------
//
// The scatter-family ops accumulate through a fixed slot partition of the
// index dimension (tensor/ops_sparse.cpp), so the float summation order is a
// function of the problem SIZE only, never of MFA_THREADS. Sweeping sizes
// covers both slotting regimes: M < 16 (fewer slots than the cap) and
// M >= 16 (full 16-way partition).

class SparseSizes : public ::testing::TestWithParam<int> {};

TEST_P(SparseSizes, ScatterAndSegmentSumBitwiseAcrossThreadCounts) {
  const std::int64_t m = GetParam();
  const std::int64_t rows = std::max<std::int64_t>(2, m / 3);
  Rng rng(static_cast<std::uint64_t>(1000 + m));
  std::vector<float> ids(static_cast<std::size_t>(m));
  for (auto& id : ids)
    id = static_cast<float>(rng.uniform_int(0, rows - 1));  // heavy duplication
  const Tensor index = Tensor::from_data({m}, std::move(ids));
  Tensor src = Tensor::randn({m, 5}, rng, 1.0f, /*requires_grad=*/true);

  auto& pool = common::ThreadPool::instance();
  const int threads_prev = pool.size();
  std::vector<std::vector<float>> runs;
  for (const int threads : {1, 2, 3, 8}) {
    pool.resize_for_testing(threads);
    src.zero_grad();
    Tensor scat = ops::scatter_add_rows(src, index, rows);
    Tensor seg = ops::segment_sum(ops::mul(src, src), index, rows);
    ops::sum(ops::mul(scat, ops::add_scalar(seg, 1.0f))).backward();
    std::vector<float> bits = scat.to_vector();
    const auto sv = seg.to_vector();
    const auto gv = src.grad().to_vector();
    bits.insert(bits.end(), sv.begin(), sv.end());
    bits.insert(bits.end(), gv.begin(), gv.end());
    runs.push_back(std::move(bits));
  }
  pool.resize_for_testing(threads_prev);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[0].size(), runs[i].size());
    EXPECT_EQ(0, std::memcmp(runs[0].data(), runs[i].data(),
                             runs[0].size() * sizeof(float)))
        << "m=" << m << ": thread config " << i << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseSizes,
                         ::testing::Values(1, 7, 15, 16, 100, 1000));

}  // namespace
}  // namespace mfa
