#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/check.h"
#include "common/fault.h"
#include "nn/layers.h"
#include "train/dataset.h"
#include "train/metrics.h"
#include "train/trainer.h"

namespace mfa::train {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory, removed on destruction.
struct TempDir {
  explicit TempDir(const char* tag)
      : path((fs::temp_directory_path() / (std::string("mfa_train_") + tag))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

/// Synthetic per-pixel dataset (labels follow a thresholded feature channel).
std::vector<Sample> synthetic_samples(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> samples;
  for (int i = 0; i < n; ++i) {
    Sample s;
    s.features = Tensor::uniform({6, 32, 32}, rng, 0.0f, 1.0f);
    s.label = Tensor::zeros({32, 32});
    const float* rudy = s.features.data() + 3 * 32 * 32;
    for (std::int64_t j = 0; j < 32 * 32; ++j)
      s.label.data()[j] = rudy[j] > 0.5f ? 2.0f : 0.0f;
    samples.push_back(std::move(s));
  }
  return samples;
}

models::ModelConfig tiny_config() {
  models::ModelConfig config;
  config.grid = 32;
  config.base_channels = 4;
  config.transformer_layers = 1;
  config.seed = 11;
  return config;
}

TEST(Metrics, PerfectPrediction) {
  Tensor label = Tensor::from_data({2, 2}, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(metrics::accuracy(label, label), 1.0);
  EXPECT_DOUBLE_EQ(metrics::r_squared(label, label), 1.0);
  EXPECT_DOUBLE_EQ(metrics::nrms(label, label), 0.0);
}

TEST(Metrics, AccuracyCountsMatches) {
  Tensor label = Tensor::from_data({4}, {0, 1, 2, 3});
  Tensor pred = Tensor::from_data({4}, {0, 1, 0, 0});
  EXPECT_DOUBLE_EQ(metrics::accuracy(pred, label), 0.5);
}

TEST(Metrics, RSquaredMeanPredictorIsZero) {
  Tensor label = Tensor::from_data({4}, {0, 2, 4, 6});
  Tensor pred = Tensor::from_data({4}, {3, 3, 3, 3});  // label mean
  EXPECT_NEAR(metrics::r_squared(pred, label), 0.0, 1e-9);
}

TEST(Metrics, RSquaredCanBeNegative) {
  Tensor label = Tensor::from_data({4}, {0, 2, 4, 6});
  Tensor pred = Tensor::from_data({4}, {6, 4, 2, 0});  // anti-correlated
  EXPECT_LT(metrics::r_squared(pred, label), 0.0);
}

TEST(Metrics, NrmsNormalisedByRange) {
  Tensor label = Tensor::from_data({2}, {0, 4});
  Tensor pred = Tensor::from_data({2}, {1, 3});  // RMSE = 1, range = 4
  EXPECT_NEAR(metrics::nrms(pred, label), 0.25, 1e-6);
}

TEST(Metrics, RejectsMismatchedSizes) {
  Tensor a = Tensor::zeros({3});
  Tensor b = Tensor::zeros({4});
  EXPECT_THROW(metrics::accuracy(a, b), std::invalid_argument);
  EXPECT_THROW(metrics::r_squared(a, b), std::invalid_argument);
  EXPECT_THROW(metrics::nrms(a, b), std::invalid_argument);
}

TEST(Rotation, FourRotationsAreIdentity) {
  Rng rng(1);
  Tensor t = Tensor::randn({3, 8, 8}, rng);
  Tensor r = rotate90(rotate90(rotate90(rotate90(t, 1), 1), 1), 1);
  EXPECT_EQ(r.to_vector(), t.to_vector());
}

TEST(Rotation, Rotate90MovesCorner) {
  Tensor t = Tensor::zeros({1, 4, 4});
  t.set({0, 0, 3}, 1.0f);  // top-right
  Tensor r = rotate90(t, 1);
  // 90 CCW: top-right -> top-left.
  EXPECT_EQ(r.at({0, 0, 0}), 1.0f);
}

TEST(Rotation, Rotate180IsDoubleApplication) {
  Rng rng(2);
  Tensor t = Tensor::randn({2, 6, 6}, rng);
  EXPECT_EQ(rotate90(t, 2).to_vector(),
            rotate90(rotate90(t, 1), 1).to_vector());
}

TEST(Rotation, HandlesLabelMapsWithoutChannels) {
  Tensor t = Tensor::zeros({4, 4});
  t.set({1, 2}, 5.0f);
  Tensor r = rotate90(t, 2);
  EXPECT_EQ(r.at({2, 1}), 5.0f);
}

TEST(Dataset, BuildsExpectedSampleCount) {
  const auto device = fpga::DeviceGrid::make_xcvu3p_like(40, 32);
  netlist::DesignSpec spec = netlist::mlcad2023_spec("Design_116");
  spec.lut_util = 0.2;
  spec.ff_util = 0.1;
  DatasetOptions options;
  options.placements_per_design = 2;
  options.grid = 32;
  options.placer_iterations = 30;
  const auto samples =
      DatasetBuilder::build_for_design(spec, device, options);
  EXPECT_EQ(samples.size(), 8u);  // 2 placements x 4 rotations
  for (const auto& s : samples) {
    EXPECT_EQ(s.features.shape(), (Shape{6, 32, 32}));
    EXPECT_EQ(s.label.shape(), (Shape{32, 32}));
    for (std::int64_t i = 0; i < s.label.numel(); ++i) {
      EXPECT_GE(s.label.data()[i], 0.0f);
      EXPECT_LE(s.label.data()[i], 7.0f);
    }
  }
}

TEST(Dataset, RotatedCopiesShareLevelHistogram) {
  const auto device = fpga::DeviceGrid::make_xcvu3p_like(40, 32);
  netlist::DesignSpec spec = netlist::mlcad2023_spec("Design_120");
  spec.lut_util = 0.2;
  spec.ff_util = 0.1;
  DatasetOptions options;
  options.placements_per_design = 1;
  options.grid = 32;
  options.placer_iterations = 30;
  const auto samples =
      DatasetBuilder::build_for_design(spec, device, options);
  ASSERT_EQ(samples.size(), 4u);
  auto histogram = [](const Tensor& t) {
    std::array<std::int64_t, 8> h{};
    for (std::int64_t i = 0; i < t.numel(); ++i)
      ++h[static_cast<size_t>(t.data()[i])];
    return h;
  };
  const auto h0 = histogram(samples[0].label);
  for (size_t k = 1; k < 4; ++k)
    EXPECT_EQ(histogram(samples[k].label), h0);
}

TEST(Dataset, DeterministicPerSeed) {
  const auto device = fpga::DeviceGrid::make_xcvu3p_like(40, 32);
  netlist::DesignSpec spec = netlist::mlcad2023_spec("Design_136");
  spec.lut_util = 0.15;
  spec.ff_util = 0.08;
  DatasetOptions options;
  options.placements_per_design = 1;
  options.grid = 32;
  options.placer_iterations = 20;
  const auto a = DatasetBuilder::build_for_design(spec, device, options);
  const auto b = DatasetBuilder::build_for_design(spec, device, options);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].features.to_vector(), b[0].features.to_vector());
  EXPECT_EQ(a[0].label.to_vector(), b[0].label.to_vector());
}

TEST(Dataset, SplitKeepsRotationGroupsTogether) {
  std::vector<Sample> all(16);  // 4 placements x 4 rotations
  for (size_t i = 0; i < all.size(); ++i) {
    all[i].features = Tensor::full({1, 1, 1}, static_cast<float>(i / 4));
    all[i].label = Tensor::full({1, 1}, static_cast<float>(i / 4));
  }
  std::vector<Sample> train, eval;
  DatasetBuilder::split(all, 2, train, eval);
  EXPECT_EQ(train.size(), 8u);
  EXPECT_EQ(eval.size(), 8u);
  // Every eval sample comes from placements 1 and 3 (odd groups).
  for (const auto& s : eval) {
    const float id = s.label.item();
    EXPECT_TRUE(id == 1.0f || id == 3.0f);
  }
}

TEST(Trainer, StackBatchLaysOutSamples) {
  std::vector<Sample> samples(2);
  samples[0].features = Tensor::full({1, 2, 2}, 1.0f);
  samples[0].label = Tensor::full({2, 2}, 3.0f);
  samples[1].features = Tensor::full({1, 2, 2}, 2.0f);
  samples[1].label = Tensor::full({2, 2}, 5.0f);
  Tensor features, labels;
  stack_batch(samples, {0, 1}, 0, 2, features, labels);
  EXPECT_EQ(features.shape(), (Shape{2, 1, 2, 2}));
  EXPECT_EQ(labels.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(features.at({0, 0, 0, 0}), 1.0f);
  EXPECT_EQ(features.at({1, 0, 0, 0}), 2.0f);
  EXPECT_EQ(labels.at({1, 1, 1}), 5.0f);
}

TEST(Trainer, FitReducesLossOnTinyProblem) {
  models::ModelConfig config;
  config.grid = 32;
  config.base_channels = 4;
  config.transformer_layers = 1;
  // U-Net keeps a full-resolution path, so it can learn this per-pixel rule.
  auto model = models::make_model("unet", config);

  // Synthetic dataset: labels follow the RUDY channel thresholded.
  Rng rng(3);
  std::vector<Sample> samples;
  for (int i = 0; i < 6; ++i) {
    Sample s;
    s.features = Tensor::uniform({6, 32, 32}, rng, 0.0f, 1.0f);
    s.label = Tensor::zeros({32, 32});
    const float* rudy = s.features.data() + 3 * 32 * 32;
    for (std::int64_t j = 0; j < 32 * 32; ++j)
      s.label.data()[j] = rudy[j] > 0.5f ? 2.0f : 0.0f;
    samples.push_back(std::move(s));
  }
  TrainOptions options;
  options.epochs = 1;
  options.batch_size = 2;
  options.learning_rate = 5e-3f;
  const double loss1 = Trainer::fit(*model, samples, options);
  options.epochs = 40;
  const double loss2 = Trainer::fit(*model, samples, options);
  EXPECT_LT(loss2, loss1);

  const auto result = Trainer::evaluate(*model, samples);
  EXPECT_GT(result.acc, 0.6);
}

TEST(Trainer, CheckpointsAndResumesWithinTolerance) {
  const auto samples = synthetic_samples(6, 3);
  TrainOptions options;
  options.epochs = 8;
  options.batch_size = 2;
  options.learning_rate = 5e-3f;
  options.seed = 5;

  // Uninterrupted reference run.
  auto full_model = models::make_model("unet", tiny_config());
  TempDir full_dir("full");
  options.checkpoint_dir = full_dir.path;
  const auto full = Trainer::fit_resumable(*full_model, samples, options);
  EXPECT_EQ(full.epochs_run, 8);
  EXPECT_EQ(full.start_epoch, 0);
  EXPECT_GT(full.checkpoints_written, 0);
  EXPECT_TRUE(fs::exists(checkpoint_path(full_dir.path, 7)));

  // Same seed, interrupted after 4 epochs, then resumed to completion.
  auto resumed_model = models::make_model("unet", tiny_config());
  TempDir resume_dir("resume");
  options.checkpoint_dir = resume_dir.path;
  options.epochs = 4;
  const auto first = Trainer::fit_resumable(*resumed_model, samples, options);
  EXPECT_EQ(first.epochs_run, 4);
  options.epochs = 8;
  const auto second = Trainer::fit_resumable(*resumed_model, samples, options);
  EXPECT_EQ(second.start_epoch, 4) << "should resume after the last snapshot";
  EXPECT_EQ(second.epochs_run, 4);

  // Interruption must not change the outcome materially (acceptance: within
  // 5% of the uninterrupted run's final loss at the same seed).
  EXPECT_NEAR(second.final_loss, full.final_loss,
              0.05 * std::max(std::abs(full.final_loss), 1e-6));
}

TEST(Trainer, ResumeFromSkipsCorruptLatestCheckpoint) {
  Rng rng(1);
  nn::Linear module(4, 3, rng);
  TempDir dir("corrupt");
  nn::CheckpointMeta meta;
  meta.epoch = 1;
  nn::save_checkpoint(module, checkpoint_path(dir.path, 1), meta);
  const auto good = module.parameters()[0].to_vector();
  // A newer snapshot that was cut off mid-write (no CRC): must be rejected
  // and the previous epoch used instead.
  module.parameters()[0].fill_(9.0f);
  meta.epoch = 2;
  const auto latest = checkpoint_path(dir.path, 2);
  nn::save_checkpoint(module, latest, meta);
  fs::resize_file(latest, fs::file_size(latest) / 2);
  // A stray temp file from an interrupted atomic save must be ignored too.
  { FILE* f = std::fopen((latest + ".tmp").c_str(), "wb"); std::fclose(f); }

  nn::Linear fresh(4, 3, rng);
  nn::CheckpointMeta loaded;
  const auto path = resume_from(fresh, dir.path, &loaded);
  EXPECT_EQ(path, checkpoint_path(dir.path, 1));
  EXPECT_EQ(loaded.epoch, 1);
  EXPECT_EQ(fresh.parameters()[0].to_vector(), good);
}

TEST(Trainer, ResumeFromEmptyOrMissingDirReturnsNothing) {
  Rng rng(1);
  nn::Linear module(4, 3, rng);
  EXPECT_EQ(resume_from(module, ""), "");
  EXPECT_EQ(resume_from(module, "/tmp/mfa_train_no_such_dir_xyz"), "");
  TempDir dir("empty");
  EXPECT_EQ(resume_from(module, dir.path), "");
}

TEST(Trainer, RollbackExhaustionKeepsLastGoodParameters) {
  const auto samples = synthetic_samples(4, 7);
  auto model = models::make_model("unet", tiny_config());
  TrainOptions options;
  options.epochs = 6;
  options.batch_size = 2;
  options.learning_rate = 5e-3f;
  // Absurdly tight spike threshold: every epoch after the first counts as
  // diverged, so the rollback machinery runs out deterministically.
  options.divergence_factor = 1e-6;
  options.max_rollbacks = 3;
  const auto report = Trainer::fit_resumable(*model, samples, options);
  EXPECT_TRUE(report.diverged);
  EXPECT_EQ(report.rollbacks, 3);
  EXPECT_EQ(report.epochs_run, 1);  // only the first epoch completed
  // Each rollback halves the learning rate.
  EXPECT_FLOAT_EQ(report.final_learning_rate, 5e-3f / 8.0f);
  EXPECT_TRUE(std::isfinite(report.final_loss));
  // The last good snapshot was restored, so predictions stay finite.
  Rng rng(2);
  Tensor x = Tensor::uniform({1, 6, 32, 32}, rng, 0.0f, 1.0f);
  const auto pred = model->predict_levels(x).to_vector();
  for (const float v : pred) EXPECT_TRUE(std::isfinite(v));
}

TEST(Trainer, CrashMidEpochThenResumeCompletes) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  auto& fi = common::FaultInjector::instance();
  fi.reset();
  const auto samples = synthetic_samples(6, 3);  // 3 batches per epoch
  auto model = models::make_model("unet", tiny_config());
  TempDir dir("crash");
  TrainOptions options;
  options.epochs = 4;
  options.batch_size = 2;
  options.learning_rate = 5e-3f;
  options.checkpoint_dir = dir.path;
  // Crash in the middle of epoch 2 (8th batch overall): epochs 0-1 have
  // checkpoints on disk, epoch 2's work is lost.
  fi.arm_nth("trainer.crash", 8);
  EXPECT_THROW(Trainer::fit_resumable(*model, samples, options),
               std::runtime_error);
  fi.reset();
  // The "restarted process": a fresh model resumes from the epoch-1 snapshot
  // and finishes the remaining epochs.
  auto restarted = models::make_model("unet", tiny_config());
  const auto report = Trainer::fit_resumable(*restarted, samples, options);
  EXPECT_EQ(report.start_epoch, 2);
  EXPECT_EQ(report.epochs_run, 2);
  EXPECT_FALSE(report.diverged);
  EXPECT_TRUE(std::isfinite(report.final_loss));
}

TEST(Trainer, InjectedNanGradientRollsBackAndRecovers) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  auto& fi = common::FaultInjector::instance();
  fi.reset();
  const bool prev = check::finite_grad_checks_enabled();
  check::set_finite_grad_checks(true);
  const auto samples = synthetic_samples(4, 9);
  auto model = models::make_model("unet", tiny_config());
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 2;
  options.learning_rate = 5e-3f;
  options.max_rollbacks = 2;
  // One poisoned gradient in the first epoch: the finite-grad guard turns it
  // into a CheckError, the trainer rolls back and retries cleanly.
  fi.arm_once("tensor.nan_grad");
  const auto report = Trainer::fit_resumable(*model, samples, options);
  fi.reset();
  check::set_finite_grad_checks(prev);
  EXPECT_EQ(report.rollbacks, 1);
  EXPECT_FALSE(report.diverged);
  EXPECT_EQ(report.epochs_run, 3);
  EXPECT_TRUE(std::isfinite(report.final_loss));
}

TEST(Trainer, TimeBudgetStopsTrainingAndReportsIt) {
  auto model = models::make_model("unet", tiny_config());
  const auto samples = synthetic_samples(2, 21);
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 2;
  // A budget far below one epoch: fit must stop at the first boundary check,
  // keep whatever parameters it has, and report the cut instead of throwing.
  options.time_budget_seconds = 1e-9;
  const auto report = Trainer::fit_resumable(*model, samples, options);
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_LT(report.epochs_run, options.epochs);
  EXPECT_FALSE(report.diverged);

  // No budget: the same setup trains to completion with the flag clear.
  options.time_budget_seconds = 0.0;
  const auto full = Trainer::fit_resumable(*model, samples, options);
  EXPECT_FALSE(full.budget_exhausted);
  EXPECT_EQ(full.epochs_run, options.epochs);
}

TEST(Trainer, BudgetFaultPointStopsFitImmediately) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  auto& fi = common::FaultInjector::instance();
  fi.reset();
  fi.arm_always("trainer.budget");
  auto model = models::make_model("unet", tiny_config());
  const auto samples = synthetic_samples(2, 22);
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 2;
  const auto report = Trainer::fit_resumable(*model, samples, options);
  fi.reset();
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_EQ(report.epochs_run, 0);
}

TEST(Trainer, LastGoodSpillWrittenEveryHealthyEpochAndUsedOnResume) {
  const auto samples = synthetic_samples(4, 3);
  auto model = models::make_model("unet", tiny_config());
  TempDir dir("spill");
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 2;
  options.learning_rate = 5e-3f;
  // A huge interval keeps periodic snapshots away except the final-epoch
  // one, isolating the last-good spill.
  options.checkpoint_interval = 100;
  options.checkpoint_dir = dir.path;
  const auto first = Trainer::fit_resumable(*model, samples, options);
  EXPECT_EQ(first.last_good_spills, 3);
  EXPECT_TRUE(fs::exists(last_good_path(dir.path)));
  // Simulate a crash that lost the periodic final-epoch checkpoint but not
  // the per-epoch spill: resume must pick the spill up and skip straight to
  // epoch 3.
  fs::remove(checkpoint_path(dir.path, 2));
  auto restarted = models::make_model("unet", tiny_config());
  options.epochs = 5;
  const auto second = Trainer::fit_resumable(*restarted, samples, options);
  EXPECT_EQ(second.start_epoch, 3)
      << "resume should have adopted the last-good spill";
  EXPECT_EQ(second.epochs_run, 2);
}

TEST(Trainer, LastGoodSpillDisabledWritesNothing) {
  const auto samples = synthetic_samples(4, 3);
  auto model = models::make_model("unet", tiny_config());
  TempDir dir("nospill");
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 2;
  options.checkpoint_dir = dir.path;
  options.spill_last_good = false;
  const auto report = Trainer::fit_resumable(*model, samples, options);
  EXPECT_EQ(report.last_good_spills, 0);
  EXPECT_FALSE(fs::exists(last_good_path(dir.path)));
}

TEST(Trainer, StaleLastGoodSpillDoesNotClobberNewerCheckpoint) {
  const auto samples = synthetic_samples(4, 3);
  auto model = models::make_model("unet", tiny_config());
  TempDir dir("stale");
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 2;
  options.checkpoint_dir = dir.path;
  Trainer::fit_resumable(*model, samples, options);
  // Age the spill: make it claim an older epoch than the newest periodic
  // checkpoint (epoch 1). Resume must ignore it.
  nn::CheckpointMeta stale;
  stale.epoch = 0;
  stale.learning_rate = 99.0f;
  nn::save_checkpoint(model->network(), last_good_path(dir.path), stale);
  auto restarted = models::make_model("unet", tiny_config());
  options.epochs = 4;
  const auto report = Trainer::fit_resumable(*restarted, samples, options);
  EXPECT_EQ(report.start_epoch, 2)
      << "the newer periodic checkpoint must win over a stale spill";
  EXPECT_NE(report.final_learning_rate, 99.0f);
}

TEST(Trainer, CrashMidEpochRecoversFromSpillAlone) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  auto& fi = common::FaultInjector::instance();
  fi.reset();
  const auto samples = synthetic_samples(6, 3);  // 3 batches per epoch
  auto model = models::make_model("unet", tiny_config());
  TempDir dir("spillcrash");
  TrainOptions options;
  options.epochs = 4;
  options.batch_size = 2;
  options.learning_rate = 5e-3f;
  options.checkpoint_dir = dir.path;
  // No periodic snapshot ever fires before the crash (interval 100, and the
  // final epoch dies): the spill is the ONLY recovery state on disk.
  options.checkpoint_interval = 100;
  fi.arm_nth("trainer.crash", 11);  // mid-epoch 4 (11th batch overall)
  EXPECT_THROW(Trainer::fit_resumable(*model, samples, options),
               std::runtime_error);
  fi.reset();
  EXPECT_FALSE(fs::exists(checkpoint_path(dir.path, 0)));
  EXPECT_TRUE(fs::exists(last_good_path(dir.path)));
  auto restarted = models::make_model("unet", tiny_config());
  const auto report = Trainer::fit_resumable(*restarted, samples, options);
  EXPECT_EQ(report.start_epoch, 3)
      << "epochs 0-2 survived the crash via the last-good spill";
  EXPECT_EQ(report.epochs_run, 1);
  EXPECT_TRUE(std::isfinite(report.final_loss));
}

TEST(Trainer, EvaluateEmptySetReturnsZeros) {
  models::ModelConfig config;
  config.grid = 32;
  config.base_channels = 4;
  auto model = models::make_model("unet", config);
  const auto result = Trainer::evaluate(*model, {});
  EXPECT_EQ(result.acc, 0.0);
}

}  // namespace
}  // namespace mfa::train
