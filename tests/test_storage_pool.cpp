// Tests for the pooled tensor storage layer (tensor/storage.h): handle
// semantics, free-list recycling, bit-identical numerics with the pool on
// vs off, steady-state high-water bounds, grad release during backward(),
// and a concurrency stress meant to run under the TSan preset too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "models/congestion_model.h"
#include "tensor/ops.h"
#include "tensor/storage.h"
#include "train/trainer.h"

namespace mfa::tensor {
namespace {

/// Restores the pool's enabled flag on scope exit (tests toggle it, and the
/// singleton outlives every test).
struct PoolEnabledGuard {
  PoolEnabledGuard() : prev(StoragePool::instance().enabled()) {}
  ~PoolEnabledGuard() { StoragePool::instance().set_enabled(prev); }
  bool prev;
};

TEST(Storage, AssignFillCopyBasics) {
  Storage s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.data(), nullptr);
  s.assign(10, 1.5f);
  ASSERT_EQ(s.size(), 10u);
  for (const float v : s) EXPECT_EQ(v, 1.5f);
  s.fill(2.0f);
  EXPECT_EQ(s[9], 2.0f);
  const std::vector<float> src = {1, 2, 3, 4};
  s.copy_from(src.data(), 4);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.to_vector(), src);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(Storage, CopyHandleSharesUntilReassigned) {
  Storage a = Storage::full(8, 3.0f);
  EXPECT_FALSE(a.shared());
  Storage b = a;
  EXPECT_TRUE(a.shared());
  EXPECT_TRUE(b.shared());
  EXPECT_EQ(a.data(), b.data()) << "copying a handle must share the block";
  // assign() on a shared handle detaches: the sibling keeps the old block.
  b.assign(8, 7.0f);
  EXPECT_NE(a.data(), b.data());
  EXPECT_FALSE(a.shared());
  EXPECT_EQ(a[0], 3.0f);
  EXPECT_EQ(b[0], 7.0f);
  // copy_from() on a shared handle also detaches (deep-copy semantics).
  Storage c = a;
  c.copy_from(b);
  EXPECT_NE(c.data(), a.data());
  EXPECT_EQ(c[0], 7.0f);
  EXPECT_EQ(a[0], 3.0f);
}

TEST(Storage, MoveTransfersOwnership) {
  Storage a = Storage::full(16, 1.0f);
  const float* p = a.data();
  Storage b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): spec'd empty
  Storage c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_FALSE(c.shared());
}

TEST(StoragePool, ReleasedBlockIsReusedNotReallocated) {
  PoolEnabledGuard guard;
  auto& pool = StoragePool::instance();
  pool.set_enabled(true);
  pool.trim();
  pool.reset_stats();
  { Storage s = Storage::full(1000, 0.0f); }  // release parks the block
  auto st = pool.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.releases, 1u);
  // Same bucket (1000 -> 1024 floats) must come back from the free list.
  Storage t = Storage::full(700, 0.0f);
  st = pool.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u) << "second acquisition must not hit the heap";
}

TEST(StoragePool, DisabledBypassesFreeLists) {
  PoolEnabledGuard guard;
  auto& pool = StoragePool::instance();
  pool.set_enabled(false);
  pool.reset_stats();
  { Storage s = Storage::full(1000, 0.0f); }
  { Storage s = Storage::full(1000, 0.0f); }
  const auto st = pool.stats();
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, 2u) << "every acquisition must be a heap allocation";
  EXPECT_EQ(st.heap_frees, 2u) << "every release must free immediately";
  EXPECT_EQ(st.releases, 0u);
}

TEST(StoragePool, ToggleWithOutstandingBuffersIsSafe) {
  PoolEnabledGuard guard;
  auto& pool = StoragePool::instance();
  pool.set_enabled(true);
  Storage pooled = Storage::full(64, 1.0f);  // bucket-tagged block
  pool.set_enabled(false);
  Storage heap = Storage::full(64, 2.0f);  // exact heap block (bucket -1)
  pool.set_enabled(true);
  // Both release under the opposite flag than they were acquired with; the
  // origin tag on the block keeps the accounting straight (no crash, no
  // double free — ASan would catch either).
  heap.reset();
  pool.set_enabled(false);
  pooled.reset();
}

TEST(StoragePool, ZeroSizeAssignHoldsNoBlock) {
  PoolEnabledGuard guard;
  auto& pool = StoragePool::instance();
  pool.set_enabled(true);
  pool.reset_stats();
  Storage s;
  s.assign(0, 0.0f);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.data(), nullptr);
  EXPECT_EQ(pool.stats().misses, 0u);
}

// ---- numerics: pool on vs off must be bit-identical ----

namespace {

models::ModelConfig tiny_config() {
  models::ModelConfig config;
  config.grid = 32;
  config.base_channels = 4;
  config.transformer_layers = 1;
  config.seed = 11;
  return config;
}

std::vector<train::Sample> tiny_samples(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<train::Sample> samples;
  for (int i = 0; i < n; ++i) {
    train::Sample s;
    s.features = Tensor::uniform({6, 32, 32}, rng, 0.0f, 1.0f);
    s.label = Tensor::zeros({32, 32});
    const float* rudy = s.features.data() + 3 * 32 * 32;
    for (std::int64_t j = 0; j < 32 * 32; ++j)
      s.label.data()[j] = rudy[j] > 0.5f ? 2.0f : 0.0f;
    samples.push_back(std::move(s));
  }
  return samples;
}

/// Trains a fresh tiny model for two epochs and returns (final loss, all
/// parameter bytes) for bitwise comparison.
std::pair<double, std::vector<float>> train_fingerprint() {
  auto model = models::make_model("unet", tiny_config());
  train::TrainOptions options;
  options.epochs = 2;
  options.batch_size = 2;
  options.learning_rate = 5e-3f;
  options.seed = 5;
  const auto report =
      train::Trainer::fit_resumable(*model, tiny_samples(4, 3), options);
  std::vector<float> params;
  for (const auto& p : model->network().parameters()) {
    const auto v = p.to_vector();
    params.insert(params.end(), v.begin(), v.end());
  }
  return {report.final_loss, std::move(params)};
}

}  // namespace

TEST(StoragePool, TrainStepBitIdenticalPoolOnVsOff) {
  PoolEnabledGuard guard;
  auto& pool = StoragePool::instance();
  pool.set_enabled(true);
  const auto with_pool = train_fingerprint();
  pool.set_enabled(false);
  const auto without_pool = train_fingerprint();
  // Bit-identical: recycling buffers must not perturb a single ulp.
  EXPECT_EQ(with_pool.first, without_pool.first);
  ASSERT_EQ(with_pool.second.size(), without_pool.second.size());
  EXPECT_EQ(std::memcmp(with_pool.second.data(), without_pool.second.data(),
                        with_pool.second.size() * sizeof(float)),
            0)
      << "parameters diverged between pool on and off";
}

TEST(StoragePool, HighWaterStableAcrossEpochsNoLeak) {
  PoolEnabledGuard guard;
  auto& pool = StoragePool::instance();
  pool.set_enabled(true);
  auto model = models::make_model("unet", tiny_config());
  const auto samples = tiny_samples(4, 3);
  train::TrainOptions options;
  options.batch_size = 2;
  options.learning_rate = 5e-3f;
  options.seed = 5;
  const auto run_epochs = [&](std::int64_t n) {
    options.epochs = n;
    train::Trainer::fit_resumable(*model, samples, options);
  };
  run_epochs(2);  // warm-up: populates the free lists
  pool.reset_stats();
  run_epochs(6);  // steady state
  const auto st = pool.stats();
  const auto first_mark = st.live_floats_high_water;
  pool.reset_stats();
  run_epochs(6);  // identical workload again
  // No leak: the high-water mark over a second batch of identical epochs
  // must not exceed the first batch's (reset_stats re-bases the mark on the
  // current gauge, so monotonic growth — even one leaked buffer per epoch —
  // would show up here).
  EXPECT_LE(pool.stats().live_floats_high_water, first_mark)
      << "live high-water grew across identical epochs: buffers are leaking";
  // Steady state must be dominated by free-list hits, not heap traffic.
  EXPECT_GT(st.hits, st.misses * 10)
      << "steady-state epochs should almost never touch the heap";
}

TEST(StoragePool, BackwardReleasesIntermediateGradsKeepsLeafGrads) {
  Rng rng(3);
  Tensor x = Tensor::uniform({4, 4}, rng, -1.0f, 1.0f, /*requires_grad=*/true);
  Tensor h = ops::relu(x);
  Tensor y = ops::mul(h, h);
  Tensor loss = ops::sum(y);
  loss.backward();
  // Intermediate tape nodes were retired during backward(): their gradient
  // buffers are back in the pool, not held until graph destruction.
  EXPECT_TRUE(h.impl()->grad.empty());
  EXPECT_TRUE(y.impl()->grad.empty());
  EXPECT_TRUE(loss.impl()->grad.empty());
  // The leaf keeps its gradient for the optimizer.
  ASSERT_EQ(x.impl()->grad.size(), x.impl()->data.size());
  const auto gx = x.grad().to_vector();
  const auto xv = x.to_vector();
  for (size_t i = 0; i < xv.size(); ++i) {
    const float expected = xv[i] > 0.0f ? 2.0f * xv[i] : 0.0f;
    EXPECT_NEAR(gx[i], expected, 1e-6f);
  }
}

TEST(StoragePool, ConcurrentParallelForAllocationStress) {
  // Meant for the TSan preset as much as the default build: many bodies
  // acquiring/releasing concurrently exercise the thread-cache front-end and
  // the global free-list under contention (blocks may be freed on another
  // thread than they were acquired on via the handoff vector below).
  PoolEnabledGuard guard;
  auto& pool = StoragePool::instance();
  pool.set_enabled(true);
  constexpr std::int64_t kTasks = 256;
  std::vector<Storage> handoff(static_cast<size_t>(kTasks));
  parallel_for(
      kTasks,
      [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t i = b0; i < b1; ++i) {
          Storage local = Storage::full(64 + (i % 7) * 100, 1.0f);
          Storage shared_copy = local;  // refcount traffic
          shared_copy.fill(static_cast<float>(i));
          handoff[static_cast<size_t>(i)] = std::move(local);
        }
      },
      /*grain=*/8);
  // Release every block from this thread, regardless of acquiring thread.
  for (auto& s : handoff) {
    ASSERT_FALSE(s.empty());
    s.reset();
  }
  // Counters must balance: everything acquired was released exactly once.
  const auto st = pool.stats();
  EXPECT_GE(st.live_floats, 0);
  EXPECT_GE(st.cached_floats, 0);
}

}  // namespace
}  // namespace mfa::tensor
