#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/log.h"
#include "common/parallel.h"

namespace mfa {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  }, /*grain=*/16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(0, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::int64_t seen_b = -1, seen_e = -1;
  parallel_for(1, [&](std::int64_t b, std::int64_t e) {
    seen_b = b;
    seen_e = e;
  });
  EXPECT_EQ(seen_b, 0);
  EXPECT_EQ(seen_e, 1);
}

TEST(ParallelFor, ChunksAreDisjointAndOrderedWithinChunk) {
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  std::mutex m;
  parallel_for(100, [&](std::int64_t b, std::int64_t e) {
    const std::lock_guard<std::mutex> lock(m);
    ranges.emplace_back(b, e);
  }, /*grain=*/10);
  std::int64_t total = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_LT(b, e);
    total += e - b;
  }
  EXPECT_EQ(total, 100);
}

TEST(ParallelFor, SumMatchesSequential) {
  std::vector<double> data(4096);
  std::iota(data.begin(), data.end(), 0.0);
  std::atomic<long long> sum{0};
  parallel_for(static_cast<std::int64_t>(data.size()),
               [&](std::int64_t b, std::int64_t e) {
                 long long local = 0;
                 for (std::int64_t i = b; i < e; ++i)
                   local += static_cast<long long>(data[static_cast<size_t>(i)]);
                 sum += local;
               }, 64);
  EXPECT_EQ(sum.load(), 4096LL * 4095 / 2);
}

TEST(Log, FormatProducesPrintfOutput) {
  EXPECT_EQ(log::format("x=%d y=%.1f s=%s", 3, 2.5, "hi"), "x=3 y=2.5 s=hi");
  EXPECT_EQ(log::format("empty"), "empty");
}

TEST(Log, LevelRoundTrips) {
  const auto prev = log::level();
  log::set_level(log::Level::Error);
  EXPECT_EQ(log::level(), log::Level::Error);
  log::set_level(log::Level::Off);
  EXPECT_EQ(log::level(), log::Level::Off);
  // Emitting below the threshold must be a no-op (just exercise the path).
  log::debug("suppressed %d", 1);
  log::info("suppressed %d", 2);
  log::set_level(prev);
}

}  // namespace
}  // namespace mfa
