#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/parallel.h"

namespace mfa {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  }, /*grain=*/16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(0, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::int64_t seen_b = -1, seen_e = -1;
  parallel_for(1, [&](std::int64_t b, std::int64_t e) {
    seen_b = b;
    seen_e = e;
  });
  EXPECT_EQ(seen_b, 0);
  EXPECT_EQ(seen_e, 1);
}

TEST(ParallelFor, ChunksAreDisjointAndOrderedWithinChunk) {
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  std::mutex m;
  parallel_for(100, [&](std::int64_t b, std::int64_t e) {
    const std::lock_guard<std::mutex> lock(m);
    ranges.emplace_back(b, e);
  }, /*grain=*/10);
  std::int64_t total = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_LT(b, e);
    total += e - b;
  }
  EXPECT_EQ(total, 100);
}

TEST(ParallelFor, SumMatchesSequential) {
  std::vector<double> data(4096);
  std::iota(data.begin(), data.end(), 0.0);
  std::atomic<long long> sum{0};
  parallel_for(static_cast<std::int64_t>(data.size()),
               [&](std::int64_t b, std::int64_t e) {
                 long long local = 0;
                 for (std::int64_t i = b; i < e; ++i)
                   local += static_cast<long long>(data[static_cast<size_t>(i)]);
                 sum += local;
               }, 64);
  EXPECT_EQ(sum.load(), 4096LL * 4095 / 2);
}

TEST(Log, FormatProducesPrintfOutput) {
  EXPECT_EQ(log::format("x=%d y=%.1f s=%s", 3, 2.5, "hi"), "x=3 y=2.5 s=hi");
  EXPECT_EQ(log::format("empty"), "empty");
}

TEST(Log, LevelRoundTrips) {
  const auto prev = log::level();
  log::set_level(log::Level::Error);
  EXPECT_EQ(log::level(), log::Level::Error);
  log::set_level(log::Level::Off);
  EXPECT_EQ(log::level(), log::Level::Off);
  // Emitting below the threshold must be a no-op (just exercise the path).
  log::debug("suppressed %d", 1);
  log::info("suppressed %d", 2);
  log::set_level(prev);
}

// Regression for the PR 3-era line shearing: the sink used three separate
// stdio calls per message ("[tag] ", body, '\n'), so messages emitted from
// parallel_for workers could interleave mid-line. The sink now formats the
// whole line into one buffer and emits it with a single write(2) append, so
// every line in the captured stream must be intact. The test redirects
// stderr (fd 2) to a file, hammers the logger from many threads, and checks
// each captured line against the exact set of expected lines.
TEST(Log, ConcurrentLoggersDoNotShearLines) {
  const std::string path = ::testing::TempDir() + "log_shear_capture.txt";
  const int kThreads = 8;
  const int kLines = 200;

  const int saved_fd = dup(STDERR_FILENO);
  ASSERT_GE(saved_fd, 0);
  FILE* capture = std::fopen(path.c_str(), "wb");
  ASSERT_NE(capture, nullptr);
  ASSERT_GE(dup2(fileno(capture), STDERR_FILENO), 0);

  const auto prev = log::level();
  log::set_level(log::Level::Info);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kLines; ++i)
          log::info("shear-check thread=%d line=%d payload=%s", t, i,
                    "abcdefghijklmnopqrstuvwxyz0123456789");
      });
    }
    for (auto& th : threads) th.join();
  }
  log::set_level(prev);

  // Restore stderr before asserting, so gtest failure output is visible.
  fflush(nullptr);
  dup2(saved_fd, STDERR_FILENO);
  close(saved_fd);
  std::fclose(capture);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<int> seen(static_cast<size_t>(kThreads) * kLines, 0);
  std::string line;
  std::int64_t total = 0;
  while (std::getline(in, line)) {
    ++total;
    int t = -1, i = -1;
    char payload[64] = {0};
    const int matched =
        std::sscanf(line.c_str(),
                    "[info] shear-check thread=%d line=%d payload=%63s", &t,
                    &i, payload);
    ASSERT_EQ(matched, 3) << "sheared or malformed line: \"" << line << "\"";
    ASSERT_STREQ(payload, "abcdefghijklmnopqrstuvwxyz0123456789")
        << "sheared payload in line: \"" << line << "\"";
    ASSERT_TRUE(t >= 0 && t < kThreads && i >= 0 && i < kLines);
    ++seen[static_cast<size_t>(t) * kLines + i];
  }
  in.close();
  std::remove(path.c_str());
  EXPECT_EQ(total, static_cast<std::int64_t>(kThreads) * kLines);
  for (int v : seen) EXPECT_EQ(v, 1);
}

}  // namespace
}  // namespace mfa
