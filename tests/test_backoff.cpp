#include "common/backoff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace mfa::common {
namespace {

std::vector<double> drain(Backoff& backoff) {
  std::vector<double> delays;
  while (auto d = backoff.next_delay_seconds()) delays.push_back(*d);
  return delays;
}

TEST(Backoff, SameSeedReplaysTheExactSchedule) {
  BackoffOptions opt;
  Backoff a(opt, 42);
  Backoff b(opt, 42);
  EXPECT_EQ(drain(a), drain(b));
}

TEST(Backoff, ResetReplaysFromTheStart) {
  Backoff backoff(BackoffOptions{}, 7);
  const auto first = drain(backoff);
  backoff.reset();
  EXPECT_EQ(backoff.retries(), 0);
  EXPECT_EQ(drain(backoff), first);
}

TEST(Backoff, DifferentSeedsDecorrelate) {
  BackoffOptions opt;
  Backoff a(opt, 1);
  Backoff b(opt, 2);
  EXPECT_NE(drain(a), drain(b));
}

TEST(Backoff, RespectsBudgetAndStaysExhausted) {
  BackoffOptions opt;
  opt.max_retries = 3;
  Backoff backoff(opt, 5);
  EXPECT_EQ(drain(backoff).size(), 3u);
  EXPECT_EQ(backoff.retries(), 3);
  // Exhausted stays exhausted.
  EXPECT_FALSE(backoff.next_delay_seconds().has_value());
  EXPECT_EQ(backoff.retries(), 3);
}

TEST(Backoff, DelaysStayInsideTheDecorrelatedEnvelope) {
  BackoffOptions opt;
  opt.base_seconds = 1e-3;
  opt.max_seconds = 0.05;
  opt.multiplier = 3.0;
  opt.max_retries = 64;
  Backoff backoff(opt, 99);
  double prev = 0.0;
  int n = 0;
  while (auto d = backoff.next_delay_seconds()) {
    EXPECT_GE(*d, opt.base_seconds);
    EXPECT_LE(*d, opt.max_seconds);
    if (n > 0) {
      // Decorrelated jitter: each delay is drawn from
      // [base, min(max, prev * multiplier)].
      EXPECT_LE(*d, std::max(opt.base_seconds,
                             std::min(opt.max_seconds, prev * opt.multiplier)));
    }
    prev = *d;
    ++n;
  }
  EXPECT_EQ(n, 64);
}

TEST(Backoff, FirstDelayComesFromTheBaseWindow) {
  // The first draw comes from [base, base * multiplier]: fast enough that a
  // single transient blip costs at most a few milliseconds.
  BackoffOptions opt;
  opt.base_seconds = 2e-3;
  opt.multiplier = 3.0;
  Backoff backoff(opt, 12345);
  const auto d = backoff.next_delay_seconds();
  ASSERT_TRUE(d.has_value());
  EXPECT_GE(*d, opt.base_seconds);
  EXPECT_LE(*d, opt.base_seconds * opt.multiplier);
}

TEST(Backoff, PinnedScheduleIsPlatformStable) {
  // Golden sequence: xoshiro256** seeded via Rng is platform-independent, so
  // this exact schedule must reproduce everywhere. If this test breaks, the
  // retry timing of every adopter (serve, checkpoint) silently changed.
  BackoffOptions opt;
  opt.base_seconds = 1e-3;
  opt.max_seconds = 0.25;
  opt.multiplier = 3.0;
  opt.max_retries = 5;
  Backoff a(opt, 2026);
  Backoff b(opt, 2026);
  const auto first = drain(a);
  ASSERT_EQ(first.size(), 5u);
  // Self-golden: a fresh instance with the same seed reproduces each element
  // bit-for-bit (no tolerance).
  const auto again = drain(b);
  for (size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i], again[i]) << "delay " << i << " not bit-identical";
  // Envelope sanity for this specific seed: the first delay sits in the
  // base window and everything stays under the cap.
  EXPECT_LE(first[0], opt.base_seconds * opt.multiplier);
  EXPECT_LE(*std::max_element(first.begin(), first.end()), opt.max_seconds);
}

TEST(Backoff, RejectsNonsenseOptions) {
  BackoffOptions bad;
  bad.base_seconds = 0.0;
  EXPECT_THROW(Backoff(bad, 1), check::CheckError);
  bad = {};
  bad.max_seconds = 1e-4;  // below base
  EXPECT_THROW(Backoff(bad, 1), check::CheckError);
  bad = {};
  bad.multiplier = 0.5;  // must grow
  EXPECT_THROW(Backoff(bad, 1), check::CheckError);
  bad = {};
  bad.max_retries = -1;
  EXPECT_THROW(Backoff(bad, 1), check::CheckError);
}

}  // namespace
}  // namespace mfa::common
