// Gradient verification for every differentiable op: analytic vs central
// finite differences via mfa::gradcheck.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace mfa {
namespace {

using namespace mfa::ops;

void expect_gradcheck(const std::function<Tensor()>& fn,
                      const std::vector<Tensor>& inputs, float tol = 5e-2f) {
  const GradCheckResult r = gradcheck(fn, inputs, 1e-2f, tol);
  EXPECT_TRUE(r.ok) << r.detail << " (max_abs=" << r.max_abs_err
                    << " max_rel=" << r.max_rel_err << ")";
}

Tensor make_input(Shape shape, std::uint64_t seed, float stddev = 1.0f) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng, stddev, /*requires_grad=*/true);
}

TEST(Autograd, Add) {
  Tensor a = make_input({2, 3}, 1);
  Tensor b = make_input({2, 3}, 2);
  expect_gradcheck([&] { return sum(mul(add(a, b), add(a, b))); }, {a, b});
}

TEST(Autograd, BroadcastAdd) {
  Tensor a = make_input({2, 3}, 3);
  Tensor b = make_input({3}, 4);
  expect_gradcheck([&] { return sum(mul(add(a, b), add(a, b))); }, {a, b});
}

TEST(Autograd, BroadcastMulColumn) {
  Tensor a = make_input({3, 2}, 5);
  Tensor b = make_input({3, 1}, 6);
  expect_gradcheck([&] { return sum(mul(a, b)); }, {a, b});
}

TEST(Autograd, Div) {
  Tensor a = make_input({2, 2}, 7);
  Tensor b = make_input({2, 2}, 8);
  // Keep denominators away from zero.
  for (std::int64_t i = 0; i < b.numel(); ++i)
    b.data()[i] = 2.0f + std::fabs(b.data()[i]);
  expect_gradcheck([&] { return sum(div(a, b)); }, {a, b});
}

TEST(Autograd, ExpLogSqrt) {
  Tensor a = make_input({6}, 9);
  for (std::int64_t i = 0; i < a.numel(); ++i)
    a.data()[i] = 0.5f + std::fabs(a.data()[i]);
  expect_gradcheck([&] { return sum(ops::log(ops::exp(ops::sqrt(a)))); }, {a});
}

TEST(Autograd, PowScalar) {
  Tensor a = make_input({5}, 10);
  for (std::int64_t i = 0; i < a.numel(); ++i)
    a.data()[i] = 0.5f + std::fabs(a.data()[i]);
  expect_gradcheck([&] { return sum(pow_scalar(a, 2.5f)); }, {a});
}

TEST(Autograd, ActivationFunctions) {
  Tensor a = make_input({8}, 11);
  // Keep values away from the ReLU kink where FD is ill-defined.
  for (std::int64_t i = 0; i < a.numel(); ++i)
    if (std::fabs(a.data()[i]) < 0.15f) a.data()[i] = 0.3f;
  expect_gradcheck([&] { return sum(relu(a)); }, {a});
  expect_gradcheck([&] { return sum(leaky_relu(a)); }, {a});
  expect_gradcheck([&] { return sum(sigmoid(a)); }, {a});
  expect_gradcheck([&] { return sum(ops::tanh(a)); }, {a});
  expect_gradcheck([&] { return sum(gelu(a)); }, {a});
}

TEST(Autograd, Matmul2D) {
  Tensor a = make_input({3, 4}, 12);
  Tensor b = make_input({4, 2}, 13);
  expect_gradcheck([&] { return sum(mul(matmul(a, b), matmul(a, b))); },
                   {a, b});
}

TEST(Autograd, MatmulBatched) {
  Tensor a = make_input({2, 2, 3}, 14);
  Tensor b = make_input({2, 3, 2}, 15);
  expect_gradcheck([&] { return sum(matmul(a, b)); }, {a, b});
}

TEST(Autograd, MatmulBatchedSharedRhs) {
  Tensor a = make_input({2, 2, 3}, 16);
  Tensor b = make_input({3, 2}, 17);
  expect_gradcheck([&] { return sum(mul(matmul(a, b), matmul(a, b))); },
                   {a, b});
}

TEST(Autograd, ReshapePermute) {
  Tensor a = make_input({2, 3, 2}, 18);
  expect_gradcheck(
      [&] {
        Tensor r = reshape(a, {2, 6});
        Tensor p = permute(a, {2, 0, 1});
        return add(sum(mul(r, r)), sum(mul(p, p)));
      },
      {a});
}

TEST(Autograd, ConcatNarrow) {
  Tensor a = make_input({2, 2}, 19);
  Tensor b = make_input({2, 3}, 20);
  expect_gradcheck(
      [&] {
        Tensor c = concat({a, b}, 1);
        Tensor n = narrow(c, 1, 1, 3);
        return sum(mul(n, n));
      },
      {a, b});
}

TEST(Autograd, SumMeanDims) {
  Tensor a = make_input({3, 4}, 21);
  expect_gradcheck(
      [&] {
        return add(sum(mul(sum_dim(a, 0), sum_dim(a, 0))),
                   sum(mul(mean_dim(a, 1), mean_dim(a, 1))));
      },
      {a});
}

TEST(Autograd, MaxDim) {
  Tensor a = make_input({3, 5}, 22, 3.0f);
  expect_gradcheck([&] { return sum(mul(max_dim(a, 1), max_dim(a, 1))); }, {a});
}

TEST(Autograd, Softmax) {
  Tensor a = make_input({2, 6}, 23);
  Tensor w = make_input({2, 6}, 24);
  expect_gradcheck([&] { return sum(mul(softmax(a, 1), w)); }, {a, w});
}

TEST(Autograd, LogSoftmax) {
  Tensor a = make_input({2, 6}, 25);
  Tensor w = make_input({2, 6}, 26);
  expect_gradcheck([&] { return sum(mul(log_softmax(a, 1), w)); }, {a, w});
}

TEST(Autograd, CrossEntropy2D) {
  Tensor logits = make_input({4, 5}, 27);
  Tensor targets = Tensor::from_data({4}, {0, 2, 4, 1});
  expect_gradcheck([&] { return cross_entropy(logits, targets); }, {logits});
}

TEST(Autograd, CrossEntropy4D) {
  Tensor logits = make_input({1, 3, 2, 2}, 28);
  Tensor targets = Tensor::from_data({1, 2, 2}, {0, 1, 2, 1});
  expect_gradcheck([&] { return cross_entropy(logits, targets); }, {logits});
}

TEST(Autograd, MseLoss) {
  Tensor p = make_input({6}, 29);
  Tensor t = make_input({6}, 30);
  expect_gradcheck([&] { return mse_loss(p, t); }, {p, t});
}

TEST(Autograd, Conv2d) {
  Tensor x = make_input({2, 2, 4, 4}, 31);
  Tensor w = make_input({3, 2, 3, 3}, 32, 0.5f);
  Tensor b = make_input({3}, 33);
  expect_gradcheck(
      [&] {
        Tensor y = conv2d(x, w, b, 1, 1);
        return sum(mul(y, y));
      },
      {x, w, b});
}

TEST(Autograd, Conv2dStride2) {
  Tensor x = make_input({1, 2, 6, 6}, 34);
  Tensor w = make_input({2, 2, 3, 3}, 35, 0.5f);
  expect_gradcheck([&] { return sum(conv2d(x, w, Tensor(), 2, 1)); }, {x, w});
}

TEST(Autograd, MaxPool) {
  Tensor x = make_input({1, 2, 4, 4}, 36, 3.0f);
  expect_gradcheck(
      [&] {
        Tensor y = max_pool2d(x, 2, 2);
        return sum(mul(y, y));
      },
      {x});
}

TEST(Autograd, AvgPool) {
  Tensor x = make_input({1, 2, 4, 4}, 37);
  expect_gradcheck(
      [&] {
        Tensor y = avg_pool2d(x, 2, 2);
        return sum(mul(y, y));
      },
      {x});
}

TEST(Autograd, UpsampleNearest) {
  Tensor x = make_input({1, 2, 3, 3}, 38);
  expect_gradcheck(
      [&] {
        Tensor y = upsample_nearest2x(x);
        return sum(mul(y, y));
      },
      {x});
}

TEST(Autograd, GlobalAvgPool) {
  Tensor x = make_input({2, 3, 4, 4}, 39);
  expect_gradcheck(
      [&] {
        Tensor y = global_avg_pool(x);
        return sum(mul(y, y));
      },
      {x});
}

TEST(Autograd, BatchNormTraining) {
  Tensor x = make_input({2, 2, 3, 3}, 40);
  Tensor gamma = make_input({2}, 41);
  Tensor beta = make_input({2}, 42);
  expect_gradcheck(
      [&] {
        Tensor rm = Tensor::zeros({2});
        Tensor rv = Tensor::ones({2});
        Tensor y = ops::batch_norm2d(x, gamma, beta, rm, rv, /*training=*/true);
        return sum(mul(y, y));
      },
      {x, gamma, beta}, /*tol=*/8e-2f);
}

TEST(Autograd, BatchNormEval) {
  Tensor x = make_input({2, 2, 3, 3}, 43);
  Tensor gamma = make_input({2}, 44);
  Tensor beta = make_input({2}, 45);
  Tensor rm = Tensor::from_data({2}, {0.5f, -0.5f});
  Tensor rv = Tensor::from_data({2}, {2.0f, 3.0f});
  expect_gradcheck(
      [&] {
        Tensor y =
            ops::batch_norm2d(x, gamma, beta, rm, rv, /*training=*/false);
        return sum(mul(y, y));
      },
      {x, gamma, beta});
}

TEST(Autograd, LayerNorm) {
  Tensor x = make_input({3, 8}, 46, 2.0f);
  Tensor gamma = make_input({8}, 47);
  Tensor beta = make_input({8}, 48);
  expect_gradcheck(
      [&] {
        Tensor y = ops::layer_norm(x, gamma, beta);
        return sum(mul(y, y));
      },
      {x, gamma, beta}, /*tol=*/8e-2f);
}

// The batch_norm2d / layer_norm backward closures capture the pooled mean /
// inv_std Storage blocks by value; those blocks come from the StoragePool
// and must stay pinned (refcounted) until backward runs. Churn the pool
// between forward and backward: if the closures' blocks were wrongly
// recycled, the churn tensors would overwrite them and the analytic
// gradients would diverge from the numeric ones.
TEST(Autograd, BatchNormPooledStatsSurvivePoolChurn) {
  Tensor x = make_input({2, 2, 3, 3}, 60);
  Tensor gamma = make_input({2}, 61);
  Tensor beta = make_input({2}, 62);
  expect_gradcheck(
      [&] {
        Tensor rm = Tensor::zeros({2});
        Tensor rv = Tensor::ones({2});
        Tensor y = ops::batch_norm2d(x, gamma, beta, rm, rv, /*training=*/true);
        // Same size class as the captured per-channel mean/inv_std blocks.
        for (int i = 0; i < 16; ++i) {
          Tensor churn = Tensor::zeros({2});
          churn.data()[0] = 123.0f;
        }
        return sum(mul(y, y));
      },
      {x, gamma, beta}, /*tol=*/8e-2f);
}

TEST(Autograd, LayerNormPooledStatsSurvivePoolChurn) {
  Tensor x = make_input({3, 8}, 63, 2.0f);
  Tensor gamma = make_input({8}, 64);
  Tensor beta = make_input({8}, 65);
  expect_gradcheck(
      [&] {
        Tensor y = ops::layer_norm(x, gamma, beta);
        // Same size class as the captured per-row mean/inv_std blocks.
        for (int i = 0; i < 16; ++i) {
          Tensor churn = Tensor::zeros({3});
          churn.data()[0] = 123.0f;
        }
        return sum(mul(y, y));
      },
      {x, gamma, beta}, /*tol=*/8e-2f);
}

TEST(Autograd, ClampMin) {
  Tensor a = make_input({8}, 49);
  for (std::int64_t i = 0; i < a.numel(); ++i)
    if (std::fabs(a.data()[i] - 0.2f) < 0.15f) a.data()[i] = 1.0f;
  expect_gradcheck([&] { return sum(mul(clamp_min(a, 0.2f), clamp_min(a, 0.2f))); },
                   {a});
}

TEST(Autograd, DiamondGraphAccumulates) {
  // y = a*a + a*a via two distinct paths; grad must be 4a.
  Tensor a = make_input({3}, 50);
  Tensor l = add(mul(a, a), mul(a, a));
  sum(l).backward();
  for (std::int64_t i = 0; i < 3; ++i)
    EXPECT_NEAR(a.grad().data()[i], 4.0f * a.data()[i], 1e-4f);
}

TEST(Autograd, NoGradGuardSkipsTape) {
  Tensor a = make_input({3}, 51);
  {
    NoGradGuard guard;
    Tensor y = mul(a, a);
    EXPECT_FALSE(y.requires_grad());
  }
  Tensor y = mul(a, a);
  EXPECT_TRUE(y.requires_grad());
}

TEST(Autograd, BackwardRequiresScalar) {
  Tensor a = make_input({3}, 52);
  Tensor y = mul(a, a);
  EXPECT_THROW(y.backward(), std::logic_error);
}

TEST(Autograd, ZeroGradClearsAccumulation) {
  Tensor a = make_input({2}, 53);
  sum(mul(a, a)).backward();
  const float g0 = a.grad().data()[0];
  a.zero_grad();
  sum(mul(a, a)).backward();
  EXPECT_NEAR(a.grad().data()[0], g0, 1e-6f);
}

// Transformer-style attention block assembled from primitives must be
// differentiable end to end.
TEST(Autograd, ScaledDotProductAttentionComposite) {
  Tensor q = make_input({1, 3, 4}, 54, 0.5f);
  Tensor k = make_input({1, 3, 4}, 55, 0.5f);
  Tensor v = make_input({1, 3, 4}, 56, 0.5f);
  expect_gradcheck(
      [&] {
        Tensor scores = matmul(q, transpose2d(k)) * (1.0f / 2.0f);
        Tensor attn = softmax(scores, 2);
        Tensor out = matmul(attn, v);
        return sum(mul(out, out));
      },
      {q, k, v});
}

}  // namespace
}  // namespace mfa
