// mfa::serve::Server unit tests: admission control, batching equivalence,
// deadlines, hot weight swap, crash containment, and drain-on-shutdown.
// Concurrency stress lives in test_serve_soak.cpp (label: soak).
#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "flow/strategies.h"
#include "models/congestion_model.h"
#include "nn/snapshot.h"
#include "tensor/ops.h"

namespace mfa::serve {
namespace {

using common::FaultInjector;

models::ModelConfig small_config(std::uint64_t seed = 11) {
  models::ModelConfig config;
  config.grid = 16;
  config.base_channels = 2;
  config.transformer_layers = 1;
  config.transformer_heads = 2;
  config.seed = seed;
  return config;
}

std::unique_ptr<models::CongestionModel> small_model(std::uint64_t seed = 11) {
  return models::make_model("ours", small_config(seed));
}

Tensor features(std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::uniform({6, 16, 16}, rng, 0.0f, 1.0f);
}

std::vector<float> direct_levels(std::uint64_t model_seed,
                                 const Tensor& feats) {
  auto model = small_model(model_seed);
  Tensor batched = ops::reshape(feats, {1, 6, 16, 16});
  return model->predict_levels(batched).to_vector();
}

class ServeTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(ServeTest, SingleRequestMatchesDirectModelBitIdentically) {
  Server server(small_model(), ServerOptions{});
  const Tensor feats = features(3);
  Response r = server.predict({feats});
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_FALSE(r.retryable);
  EXPECT_EQ(r.batch_size, 1);
  EXPECT_EQ(r.weights_version, 1u);
  EXPECT_EQ(r.levels.shape(), (Shape{16, 16}));
  EXPECT_EQ(r.levels.to_vector(), direct_levels(11, feats));
}

TEST_F(ServeTest, BatchedRequestsEachMatchTheirDirectResult) {
  ServerOptions opt;
  opt.max_batch = 8;
  opt.max_batch_wait_seconds = 0.05;  // generous: let the batch actually form
  Server server(small_model(), opt);
  server.pause_worker_for_testing(true);

  constexpr int kN = 8;
  std::vector<std::future<Response>> futures;
  std::vector<Tensor> feats;
  for (int i = 0; i < kN; ++i) {
    feats.push_back(features(100 + static_cast<std::uint64_t>(i)));
    futures.push_back(server.submit({feats.back()}));
  }
  server.pause_worker_for_testing(false);

  for (int i = 0; i < kN; ++i) {
    Response r = futures[static_cast<size_t>(i)].get();
    ASSERT_EQ(r.status, Status::kOk) << "request " << i;
    EXPECT_EQ(r.batch_size, kN) << "batch did not coalesce";
    // Batched inference must be bit-identical to one-at-a-time inference:
    // every per-sample op computes each output element independently.
    EXPECT_EQ(r.levels.to_vector(),
              direct_levels(11, feats[static_cast<size_t>(i)]))
        << "request " << i;
  }
  EXPECT_EQ(server.stats().batches, 1);
}

TEST_F(ServeTest, RejectsMalformedFeatureTensors) {
  Server server(small_model(), ServerOptions{});
  EXPECT_THROW(server.submit({Tensor()}), check::CheckError);
  EXPECT_THROW(server.submit({Tensor::zeros({6, 16})}), check::CheckError);
  EXPECT_THROW(server.submit({Tensor::zeros({5, 16, 16})}),
               check::CheckError);
}

TEST_F(ServeTest, ShedsWhenTheQueueIsFullAndRetryIsDeterministic) {
  ServerOptions opt;
  opt.max_queue_depth = 2;
  Server server(small_model(), opt);
  server.pause_worker_for_testing(true);

  auto f1 = server.submit({features(1)});
  auto f2 = server.submit({features(2)});
  Response shed = server.predict({features(3)});  // queue full: immediate
  EXPECT_EQ(shed.status, Status::kShed);
  EXPECT_TRUE(shed.retryable);
  EXPECT_NE(shed.reason.find("queue full"), std::string::npos);
  EXPECT_FALSE(shed.levels.defined());

  // predict_with_retry resubmits after a backoff delay; once the worker is
  // released the queue drains and the retried request is served.
  std::thread release([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.pause_worker_for_testing(false);
  });
  common::BackoffOptions bopt;
  bopt.base_seconds = 5e-3;
  bopt.max_seconds = 0.2;
  bopt.max_retries = 50;
  Response retried =
      server.predict_with_retry({features(4)}, bopt, /*seed=*/9);
  release.join();
  EXPECT_EQ(retried.status, Status::kOk);
  EXPECT_EQ(f1.get().status, Status::kOk);
  EXPECT_EQ(f2.get().status, Status::kOk);
  EXPECT_GE(server.stats().shed, 1);
}

TEST_F(ServeTest, ExpiredDeadlineDegradesToAnalyticFallback) {
  ServerOptions opt;
  opt.default_deadline_seconds = 1e-4;
  Server server(small_model(), opt);
  server.pause_worker_for_testing(true);
  auto f = server.submit({features(5)});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // let it expire
  server.pause_worker_for_testing(false);

  Response r = f.get();
  ASSERT_EQ(r.status, Status::kFallback);
  ASSERT_EQ(r.incidents.size(), 1u);
  EXPECT_NE(r.incidents[0].find("deadline"), std::string::npos);
  // The degraded answer is exactly the flow's analytic estimate.
  EXPECT_EQ(r.levels.to_vector(),
            flow::analytic_levels(flow::Strategy::Utda, features(5)));
  EXPECT_EQ(server.stats().fallbacks, 1);

  // A request with an explicit generous deadline is unaffected.
  Request generous{features(6)};
  generous.deadline_seconds = 60.0;
  EXPECT_EQ(server.predict(std::move(generous)).status, Status::kOk);
}

TEST_F(ServeTest, SwapWeightsPublishesAtomicallyAndServesNewModel) {
  Server server(small_model(11), ServerOptions{});
  const Tensor feats = features(7);
  EXPECT_EQ(server.predict({feats}).levels.to_vector(),
            direct_levels(11, feats));

  auto donor = small_model(22);
  const std::uint64_t version =
      server.swap_weights(nn::snapshot_parameters(donor->network()));
  EXPECT_EQ(version, 2u);

  Response r = server.predict({feats});
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.weights_version, 2u);
  EXPECT_EQ(server.weights_version(), 2u);
  EXPECT_EQ(r.levels.to_vector(), direct_levels(22, feats));
  EXPECT_EQ(server.stats().swaps, 1);
}

TEST_F(ServeTest, SwapRejectsWrongArchitectureAndKeepsServing) {
  Server server(small_model(11), ServerOptions{});
  auto wrong = models::make_model("unet", small_config());
  EXPECT_THROW(server.swap_weights(nn::snapshot_parameters(wrong->network())),
               nn::SnapshotError);
  EXPECT_EQ(server.stats().swap_rejects, 1);
  EXPECT_EQ(server.weights_version(), 1u);
  const Tensor feats = features(8);
  Response r = server.predict({feats});
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.levels.to_vector(), direct_levels(11, feats));
}

TEST_F(ServeTest, ShutdownDrainsAndFlushesQueuedRequests) {
  Server server(small_model(), ServerOptions{});
  server.pause_worker_for_testing(true);
  std::vector<std::future<Response>> queued;
  for (int i = 0; i < 3; ++i)
    queued.push_back(server.submit({features(static_cast<std::uint64_t>(i))}));
  server.shutdown();  // worker paused: all three must flush, none lost

  for (auto& f : queued) {
    Response r = f.get();
    EXPECT_EQ(r.status, Status::kShuttingDown);
    EXPECT_FALSE(r.retryable);
  }
  // Post-shutdown submissions resolve immediately with the same status.
  Response late = server.predict({features(9)});
  EXPECT_EQ(late.status, Status::kShuttingDown);
  EXPECT_FALSE(server.accepting());

  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, 4);
  EXPECT_EQ(s.shutdown_rejected, 4);
  EXPECT_EQ(s.ok + s.fallbacks + s.shed + s.shutdown_rejected, s.submitted);
  server.shutdown();  // idempotent
}

TEST_F(ServeTest, InFlightBatchCompletesDuringShutdown) {
  ServerOptions opt;
  opt.max_batch_wait_seconds = 0.0;
  Server server(small_model(), opt);
  auto f = server.submit({features(10)});
  // Shutdown must wait for the in-flight/queued request rather than dropping
  // it; whichever side of the pickup race we land on, the future resolves
  // terminally.
  server.shutdown();
  Response r = f.get();
  EXPECT_TRUE(r.status == Status::kOk || r.status == Status::kShuttingDown);
}

// ---- fault-injection paths (Debug builds only) ----

TEST_F(ServeTest, QueueFullFaultShedsOneRequest) {
  if (!FaultInjector::compiled_in()) GTEST_SKIP() << "NDEBUG build";
  Server server(small_model(), ServerOptions{});
  FaultInjector::instance().arm_once("serve.queue_full");
  Response r = server.predict({features(11)});
  EXPECT_EQ(r.status, Status::kShed);
  EXPECT_TRUE(r.retryable);
  // The next request admits normally.
  EXPECT_EQ(server.predict({features(12)}).status, Status::kOk);
}

TEST_F(ServeTest, BatchFailurePoisonsOnlyThatBatchAndWorkerRestarts) {
  if (!FaultInjector::compiled_in()) GTEST_SKIP() << "NDEBUG build";
  Server server(small_model(), ServerOptions{});
  FaultInjector::instance().arm_once("serve.batch_failure");

  Response poisoned = server.predict({features(13)});
  ASSERT_EQ(poisoned.status, Status::kFallback);
  ASSERT_EQ(poisoned.incidents.size(), 1u);
  EXPECT_NE(poisoned.incidents[0].find("crash"), std::string::npos);
  EXPECT_EQ(poisoned.levels.to_vector(),
            flow::analytic_levels(flow::Strategy::Utda, features(13)));

  // Containment: the worker restarted with known-good weights and the next
  // request is served by the model, bit-identical to the pre-crash path.
  const Tensor feats = features(14);
  Response next = server.predict({feats});
  ASSERT_EQ(next.status, Status::kOk);
  EXPECT_EQ(next.levels.to_vector(), direct_levels(11, feats));
  const ServerStats s = server.stats();
  EXPECT_EQ(s.worker_restarts, 1);
  EXPECT_EQ(s.fallbacks, 1);
  EXPECT_EQ(s.ok, 1);
}

TEST_F(ServeTest, SwapCorruptFaultIsCaughtByValidation) {
  if (!FaultInjector::compiled_in()) GTEST_SKIP() << "NDEBUG build";
  Server server(small_model(11), ServerOptions{});
  auto donor = small_model(22);
  FaultInjector::instance().arm_once("serve.swap_corrupt");
  EXPECT_THROW(server.swap_weights(nn::snapshot_parameters(donor->network())),
               nn::SnapshotError);
  EXPECT_EQ(server.weights_version(), 1u);
  // The corrupted snapshot never reached the serving weights.
  const Tensor feats = features(15);
  EXPECT_EQ(server.predict({feats}).levels.to_vector(),
            direct_levels(11, feats));
}

TEST_F(ServeTest, SlowWorkerFaultOnlyAddsLatency) {
  if (!FaultInjector::compiled_in()) GTEST_SKIP() << "NDEBUG build";
  Server server(small_model(), ServerOptions{});
  FaultInjector::instance().arm_once("serve.slow_worker");
  Response r = server.predict({features(16)});
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_GE(r.total_seconds, 0.05);
}

}  // namespace
}  // namespace mfa::serve
