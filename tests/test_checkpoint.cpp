#include "nn/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/fault.h"
#include "models/congestion_model.h"
#include "nn/layers.h"
#include "tensor/ops.h"

namespace mfa::nn {
namespace {

std::string temp_path(const char* tag) {
  return std::string("/tmp/mfa_ckpt_") + tag + ".bin";
}

TEST(Checkpoint, RoundTripsLinear) {
  Rng rng(1);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);  // different init (rng advanced)
  const auto path = temp_path("linear");
  save_checkpoint(a, path);
  load_checkpoint(b, path);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(pa[i].to_vector(), pb[i].to_vector());
  std::remove(path.c_str());
}

TEST(Checkpoint, RoundTripsFullModelAndPredictions) {
  models::ModelConfig config;
  config.grid = 32;
  config.base_channels = 4;
  config.transformer_layers = 1;
  config.seed = 3;
  auto a = models::make_model("ours", config);
  config.seed = 99;  // fresh weights
  auto b = models::make_model("ours", config);

  Rng rng(5);
  Tensor x = Tensor::uniform({1, 6, 32, 32}, rng, 0.0f, 1.0f);
  const auto path = temp_path("model");
  save_checkpoint(a->network(), path);
  load_checkpoint(b->network(), path);
  // Identical predictions after the load.
  EXPECT_EQ(a->predict_levels(x).to_vector(),
            b->predict_levels(x).to_vector());
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  Rng rng(1);
  Linear a(4, 3, rng);
  Linear wrong(4, 5, rng);
  const auto path = temp_path("mismatch");
  save_checkpoint(a, path);
  EXPECT_THROW(load_checkpoint(wrong, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingFileAndBadMagic) {
  Rng rng(1);
  Linear a(4, 3, rng);
  EXPECT_THROW(load_checkpoint(a, "/tmp/mfa_ckpt_nonexistent.bin"),
               std::runtime_error);
  const auto path = temp_path("garbage");
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_checkpoint(a, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsWrongParameterCount) {
  Rng rng(1);
  Linear a(4, 3, rng);
  Linear no_bias(4, 3, rng, /*bias=*/false);
  const auto path = temp_path("count");
  save_checkpoint(a, path);
  EXPECT_THROW(load_checkpoint(no_bias, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTruncationAtEveryLength) {
  Rng rng(1);
  Linear a(4, 3, rng);
  const auto path = temp_path("full");
  save_checkpoint(a, path);
  // Read the full file back, then try every strictly shorter prefix: each
  // one must be rejected (magic, header, name, shape, or tensor data cut).
  std::string bytes;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
      bytes.append(buf, got);
    std::fclose(f);
  }
  std::remove(path.c_str());
  ASSERT_GT(bytes.size(), 16u);
  const auto trunc_path = temp_path("trunc");
  // Step through prefix lengths (every byte near boundaries is cheap here:
  // the file is tiny, so just test all of them).
  for (size_t len = 0; len < bytes.size(); ++len) {
    FILE* f = std::fopen(trunc_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, len, f);
    std::fclose(f);
    Linear fresh(4, 3, rng);
    EXPECT_THROW(load_checkpoint(fresh, trunc_path), std::runtime_error)
        << "prefix length " << len << " of " << bytes.size();
  }
  // The untruncated file still loads.
  {
    FILE* f = std::fopen(trunc_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
  Linear fresh(4, 3, rng);
  EXPECT_NO_THROW(load_checkpoint(fresh, trunc_path));
  std::remove(trunc_path.c_str());
}

TEST(Checkpoint, MetaRoundTrips) {
  Rng rng(1);
  Linear a(4, 3, rng);
  const auto path = temp_path("meta");
  CheckpointMeta meta;
  meta.epoch = 17;
  meta.learning_rate = 2.5e-4f;
  save_checkpoint(a, path, meta);
  Linear b(4, 3, rng);
  CheckpointMeta loaded;
  load_checkpoint(b, path, &loaded);
  EXPECT_EQ(loaded.epoch, 17);
  EXPECT_FLOAT_EQ(loaded.learning_rate, 2.5e-4f);
  // A checkpoint saved without metadata reports the defaults.
  save_checkpoint(a, path);
  CheckpointMeta none;
  load_checkpoint(b, path, &none);
  EXPECT_EQ(none.epoch, -1);
  std::remove(path.c_str());
}

TEST(Checkpoint, AtomicSaveLeavesNoTempFile) {
  Rng rng(1);
  Linear a(4, 3, rng);
  const auto path = temp_path("atomic");
  save_checkpoint(a, path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Checkpoint, CrcRejectsEverySingleBitFlip) {
  Rng rng(1);
  Linear a(2, 2, rng);
  const auto path = temp_path("bitflip");
  save_checkpoint(a, path);
  std::string bytes;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
      bytes.append(buf, got);
    std::fclose(f);
  }
  // Flip one bit per byte position and require a load failure each time —
  // this is exactly the torn-write / bit-rot scenario the footer exists for.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(corrupt.data(), 1, corrupt.size(), f);
    std::fclose(f);
    Linear fresh(2, 2, rng);
    EXPECT_THROW(load_checkpoint(fresh, path), std::runtime_error)
        << "bit flip at byte " << i << " went undetected";
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, TornWriteFaultIsCaughtAtLoad) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  common::FaultInjector::instance().reset();
  Rng rng(1);
  Linear a(4, 3, rng);
  const auto path = temp_path("torn");
  common::FaultInjector::instance().arm_once("checkpoint.torn_write");
  save_checkpoint(a, path);
  common::FaultInjector::instance().reset();
  Linear fresh(4, 3, rng);
  EXPECT_THROW(load_checkpoint(fresh, path), std::runtime_error);
  // The next (un-faulted) save repairs the file in place.
  save_checkpoint(a, path);
  EXPECT_NO_THROW(load_checkpoint(fresh, path));
  std::remove(path.c_str());
}

TEST(Checkpoint, CrashBeforeRenamePreservesPreviousFile) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  common::FaultInjector::instance().reset();
  Rng rng(1);
  Linear a(4, 3, rng);
  const auto path = temp_path("crash");
  save_checkpoint(a, path);  // good version on disk
  const auto good = a.parameters()[0].to_vector();
  // Mutate the weights, then crash during the next save: the destination
  // must still hold the previous complete snapshot.
  a.parameters()[0].fill_(123.0f);
  common::FaultInjector::instance().arm_once("checkpoint.crash_before_rename");
  EXPECT_THROW(save_checkpoint(a, path), std::runtime_error);
  common::FaultInjector::instance().reset();
  Linear b(4, 3, rng);
  EXPECT_NO_THROW(load_checkpoint(b, path));
  EXPECT_EQ(b.parameters()[0].to_vector(), good);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(Checkpoint, TransientIoFailureIsRetriedToSuccess) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  common::FaultInjector::instance().reset();
  Rng rng(1);
  Linear a(4, 3, rng);
  const auto path = temp_path("transient_once");
  // One transient failure: the deterministic backoff retries past it and
  // the save still lands atomically.
  common::FaultInjector::instance().arm_nth("checkpoint.transient_io", 1);
  save_checkpoint(a, path);
  common::FaultInjector::instance().reset();
  Linear b(4, 3, rng);
  EXPECT_NO_THROW(load_checkpoint(b, path));
  EXPECT_EQ(b.parameters()[0].to_vector(), a.parameters()[0].to_vector());
  // The retry cleaned up after itself: no temp litter.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Checkpoint, PersistentTransientFailureExhaustsTheRetryBudget) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  common::FaultInjector::instance().reset();
  Rng rng(1);
  Linear a(4, 3, rng);
  const auto path = temp_path("transient_always");
  save_checkpoint(a, path);  // good version on disk
  common::FaultInjector::instance().arm_always("checkpoint.transient_io");
  try {
    save_checkpoint(a, path);
    FAIL() << "persistent transient failure did not surface";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("persisted"), std::string::npos);
  }
  // Initial attempt + every budgeted retry actually ran.
  EXPECT_EQ(
      common::FaultInjector::instance().fire_count("checkpoint.transient_io"),
      4);
  common::FaultInjector::instance().reset();
  // The previous checkpoint survives (atomicity held across all retries).
  Linear b(4, 3, rng);
  EXPECT_NO_THROW(load_checkpoint(b, path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Checkpoint, CrashFaultIsNotRetried) {
  if (!common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  common::FaultInjector::instance().reset();
  Rng rng(1);
  Linear a(4, 3, rng);
  const auto path = temp_path("crash_no_retry");
  // A simulated crash is a permanent error: exactly one attempt, no backoff
  // masking — otherwise the crash-recovery tests would be testing the retry
  // loop instead of crash atomicity.
  common::FaultInjector::instance().arm_always(
      "checkpoint.crash_before_rename");
  EXPECT_THROW(save_checkpoint(a, path), std::runtime_error);
  EXPECT_EQ(common::FaultInjector::instance().fire_count(
                "checkpoint.crash_before_rename"),
            1);
  common::FaultInjector::instance().reset();
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(Checkpoint, RejectsTrailingGarbage) {
  Rng rng(1);
  Linear a(4, 3, rng);
  const auto path = temp_path("trailing");
  save_checkpoint(a, path);
  {
    FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("extra", f);
    std::fclose(f);
  }
  Linear fresh(4, 3, rng);
  EXPECT_THROW(load_checkpoint(fresh, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mfa::nn
