// Concurrency soak for mfa::serve::Server (ctest label: soak).
//
// N client threads x M requests each, across MFA-thread-pool widths {1, 4},
// with fault injection raining on the admission queue and the batch worker.
// The invariants pinned here are the serving layer's whole contract:
//   * zero lost responses — every submitted future resolves terminally,
//   * zero duplicated responses — submitted == ok+fallback+shed+shutdown,
//   * answers are real — every ok/fallback response carries a level map,
//   * the model path stays bit-identical to direct Model::predict under
//     arbitrary interleaving, batching, sheds, and contained crashes.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "models/congestion_model.h"
#include "serve/server.h"
#include "tensor/ops.h"

namespace mfa::serve {
namespace {

using common::FaultInjector;

models::ModelConfig small_config(std::uint64_t seed = 11) {
  models::ModelConfig config;
  config.grid = 16;
  config.base_channels = 2;
  config.transformer_layers = 1;
  config.transformer_heads = 2;
  config.seed = seed;
  return config;
}

Tensor features(std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::uniform({6, 16, 16}, rng, 0.0f, 1.0f);
}

struct SoakTally {
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> fallback{0};
  std::atomic<std::int64_t> shed{0};
  std::atomic<std::int64_t> shutting_down{0};
  std::atomic<std::int64_t> undefined_levels{0};
  std::atomic<std::int64_t> mismatches{0};
};

// One full soak round at the current thread-pool width. Returns the tally.
void run_soak(bool with_faults, int clients, int per_client,
              SoakTally& tally) {
  // Reference results computed on a twin model, one per distinct feature
  // seed (feature seed = client index, so batches mix distinct requests).
  auto reference = models::make_model("ours", small_config());
  std::map<int, std::vector<float>> expected;
  for (int c = 0; c < clients; ++c) {
    Tensor batched = ops::reshape(features(static_cast<std::uint64_t>(c)),
                                  {1, 6, 16, 16});
    expected[c] = reference->predict_levels(batched).to_vector();
  }

  ServerOptions opt;
  opt.max_queue_depth = 8;  // small on purpose: sheds must actually happen
  opt.max_batch = 4;
  opt.max_batch_wait_seconds = 5e-4;
  Server server(models::make_model("ours", small_config()), opt);

  if (with_faults && FaultInjector::compiled_in()) {
    FaultInjector::instance().arm_probability("serve.queue_full", 0.05, 91);
    FaultInjector::instance().arm_probability("serve.batch_failure", 0.05,
                                              92);
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      common::BackoffOptions bopt;
      bopt.base_seconds = 1e-4;
      bopt.max_seconds = 2e-3;
      bopt.max_retries = 3;  // bounded: exhausted retries count as sheds
      for (int m = 0; m < per_client; ++m) {
        Request req{features(static_cast<std::uint64_t>(c))};
        if (m % 4 == 3) req.deadline_seconds = 1e-6;  // some always expire
        Response r = server.predict_with_retry(
            req, bopt, static_cast<std::uint64_t>(c * 1000 + m));
        switch (r.status) {
          case Status::kOk:
            tally.ok.fetch_add(1);
            if (!r.levels.defined()) tally.undefined_levels.fetch_add(1);
            else if (r.levels.to_vector() != expected.at(c))
              tally.mismatches.fetch_add(1);
            break;
          case Status::kFallback:
            tally.fallback.fetch_add(1);
            if (!r.levels.defined()) tally.undefined_levels.fetch_add(1);
            break;
          case Status::kShed:
            tally.shed.fetch_add(1);
            break;
          case Status::kShuttingDown:
            tally.shutting_down.fetch_add(1);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  FaultInjector::instance().reset();

  // Terminal-resolution invariant on the server's own books: nothing lost,
  // nothing double-counted. (Client retries resubmit, so server-side
  // `submitted` >= client request count; the identity must still balance.)
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, s.ok + s.fallbacks + s.shed + s.shutdown_rejected);
  EXPECT_GE(s.submitted, static_cast<std::int64_t>(clients) * per_client);

  // The server survived the soak: a final clean request is served by the
  // model, and shutdown still drains.
  Response last = server.predict({features(0)});
  EXPECT_EQ(last.status, Status::kOk);
  EXPECT_EQ(last.levels.to_vector(), expected[0]);
  server.shutdown();
  const ServerStats end = server.stats();
  EXPECT_EQ(end.submitted,
            end.ok + end.fallbacks + end.shed + end.shutdown_rejected);
}

class ServeSoak : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    common::ThreadPool::instance().resize_for_testing(GetParam());
  }
  void TearDown() override {
    FaultInjector::instance().reset();
    common::ThreadPool::instance().resize_for_testing(1);
  }
};

TEST_P(ServeSoak, EveryRequestResolvesExactlyOnceUnderLoad) {
  SoakTally tally;
  const int clients = 4;
  const int per_client = 24;
  run_soak(/*with_faults=*/true, clients, per_client, tally);

  const std::int64_t total = tally.ok + tally.fallback + tally.shed +
                             tally.shutting_down;
  EXPECT_EQ(total, static_cast<std::int64_t>(clients) * per_client)
      << "lost or duplicated responses";
  EXPECT_EQ(tally.shutting_down.load(), 0);  // server never shut down early
  EXPECT_EQ(tally.undefined_levels.load(), 0);
  EXPECT_EQ(tally.mismatches.load(), 0)
      << "batched serving diverged from direct Model::predict";
  EXPECT_GT(tally.ok.load(), 0);
  EXPECT_GT(tally.fallback.load(), 0);  // the 1e-6 s deadlines must expire
}

TEST_P(ServeSoak, FaultFreeSoakServesEverythingBitIdentically) {
  SoakTally tally;
  const int clients = 4;
  const int per_client = 12;
  // Deep queue + no faults: nothing may shed, nothing may crash. (Deadline
  // requests in run_soak still degrade, which is correct behaviour.)
  auto reference = models::make_model("ours", small_config());
  std::map<int, std::vector<float>> expected;
  for (int c = 0; c < clients; ++c) {
    Tensor batched = ops::reshape(features(static_cast<std::uint64_t>(c)),
                                  {1, 6, 16, 16});
    expected[c] = reference->predict_levels(batched).to_vector();
  }
  ServerOptions opt;
  opt.max_queue_depth = 256;
  opt.max_batch = 8;
  opt.max_batch_wait_seconds = 1e-3;
  Server server(models::make_model("ours", small_config()), opt);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int m = 0; m < per_client; ++m) {
        Response r = server.predict({features(static_cast<std::uint64_t>(c))});
        if (r.status != Status::kOk) {
          tally.shed.fetch_add(1);
          continue;
        }
        tally.ok.fetch_add(1);
        if (r.levels.to_vector() != expected.at(c)) tally.mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tally.shed.load(), 0);
  EXPECT_EQ(tally.mismatches.load(), 0);
  EXPECT_EQ(tally.ok.load(), static_cast<std::int64_t>(clients) * per_client);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, s.ok);
  EXPECT_GT(s.batches, 0);
  EXPECT_LE(s.batches, s.ok);  // batching actually coalesced some requests
}

INSTANTIATE_TEST_SUITE_P(ThreadWidths, ServeSoak, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "threads_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mfa::serve
