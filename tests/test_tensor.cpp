#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include <stdexcept>

#include "common/check.h"
#include "tensor/ops.h"

namespace mfa {
namespace {

using namespace mfa::ops;

TEST(Tensor, FactoriesProduceExpectedValues) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (const float v : z.to_vector()) EXPECT_EQ(v, 0.0f);

  Tensor o = Tensor::ones({4});
  for (const float v : o.to_vector()) EXPECT_EQ(v, 1.0f);

  Tensor f = Tensor::full({2, 2}, 3.5f);
  for (const float v : f.to_vector()) EXPECT_EQ(v, 3.5f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor::from_data({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_data({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t = Tensor::zeros({2, 3, 4});
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_THROW(t.size(3), mfa::check::CheckError);
}

TEST(Tensor, AtAndSetRoundTrip) {
  Tensor t = Tensor::zeros({2, 3});
  t.set({1, 2}, 7.0f);
  EXPECT_EQ(t.at({1, 2}), 7.0f);
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_THROW(t.at({2, 0}), mfa::check::CheckError);
}

TEST(Tensor, ItemRequiresScalar) {
  EXPECT_EQ(Tensor::scalar(2.5f).item(), 2.5f);
  EXPECT_THROW(Tensor::zeros({2}).item(), std::logic_error);
}

TEST(Tensor, RandnDeterministicPerSeed) {
  Rng r1(3), r2(3);
  Tensor a = Tensor::randn({10}, r1);
  Tensor b = Tensor::randn({10}, r2);
  EXPECT_EQ(a.to_vector(), b.to_vector());
}

TEST(Tensor, DetachSharesNothing) {
  Tensor a = Tensor::ones({3}, /*requires_grad=*/true);
  Tensor d = a.detach();
  EXPECT_FALSE(d.requires_grad());
  d.data()[0] = 9.0f;
  EXPECT_EQ(a.at({0}), 1.0f);
}

TEST(TensorOps, AddSameShape) {
  Tensor a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_data({2, 2}, {10, 20, 30, 40});
  Tensor c = a + b;
  EXPECT_EQ(c.to_vector(), (std::vector<float>{11, 22, 33, 44}));
}

TEST(TensorOps, BroadcastAddRowVector) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_data({3}, {10, 20, 30});
  Tensor c = a + b;
  EXPECT_EQ(c.to_vector(), (std::vector<float>{11, 22, 33, 14, 25, 36}));
}

TEST(TensorOps, BroadcastMulColumn) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_data({2, 1}, {2, 3});
  Tensor c = a * b;
  EXPECT_EQ(c.to_vector(), (std::vector<float>{2, 4, 6, 12, 15, 18}));
}

TEST(TensorOps, BroadcastShapeMismatchThrows) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({4});
  EXPECT_THROW(add(a, b), std::invalid_argument);
}

TEST(TensorOps, Matmul2D) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.to_vector(), (std::vector<float>{58, 64, 139, 154}));
}

TEST(TensorOps, MatmulBatched) {
  Tensor a = Tensor::from_data({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_data({2, 2, 1}, {1, 1, 2, 2});
  Tensor c = matmul(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 1, 1}));
  EXPECT_EQ(c.to_vector(), (std::vector<float>{3, 14}));
}

TEST(TensorOps, MatmulBatchedSharedRhs) {
  Tensor a = Tensor::from_data({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_data({2, 1}, {1, 1});
  Tensor c = matmul(a, b);
  ASSERT_EQ(c.shape(), (Shape{2, 1, 1}));
  EXPECT_EQ(c.to_vector(), (std::vector<float>{3, 7}));
}

TEST(TensorOps, MatmulShapeMismatchThrows) {
  EXPECT_THROW(matmul(Tensor::zeros({2, 3}), Tensor::zeros({4, 2})),
               std::invalid_argument);
}

TEST(TensorOps, ReshapeWithInference) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = reshape(a, {3, -1});
  ASSERT_EQ(b.shape(), (Shape{3, 2}));
  EXPECT_EQ(b.to_vector(), a.to_vector());
  EXPECT_THROW(reshape(a, {4, 2}), std::invalid_argument);
}

TEST(TensorOps, PermuteTransposes) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = permute(a, {1, 0});
  ASSERT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.to_vector(), (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(TensorOps, PermuteNCHWToTokens) {
  // [1, 2, 2, 2] -> [1, 2*2, 2] tokens-by-channel as the ViT embedding does.
  Tensor a = Tensor::from_data({1, 2, 2, 2}, {0, 1, 2, 3, 10, 11, 12, 13});
  Tensor t = permute(reshape(a, {1, 2, 4}), {0, 2, 1});
  ASSERT_EQ(t.shape(), (Shape{1, 4, 2}));
  EXPECT_EQ(t.to_vector(),
            (std::vector<float>{0, 10, 1, 11, 2, 12, 3, 13}));
}

TEST(TensorOps, ConcatDim1) {
  Tensor a = Tensor::from_data({2, 1}, {1, 2});
  Tensor b = Tensor::from_data({2, 2}, {3, 4, 5, 6});
  Tensor c = concat({a, b}, 1);
  ASSERT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.to_vector(), (std::vector<float>{1, 3, 4, 2, 5, 6}));
}

TEST(TensorOps, NarrowSelectsSlice) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = narrow(a, 1, 1, 2);
  ASSERT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.to_vector(), (std::vector<float>{2, 3, 5, 6}));
  EXPECT_THROW(narrow(a, 1, 2, 2), mfa::check::CheckError);
}

TEST(TensorOps, Reductions) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(sum(a).item(), 21.0f);
  EXPECT_FLOAT_EQ(mean(a).item(), 3.5f);
  Tensor s0 = sum_dim(a, 0);
  EXPECT_EQ(s0.to_vector(), (std::vector<float>{5, 7, 9}));
  Tensor s1 = sum_dim(a, 1, /*keepdim=*/true);
  ASSERT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_EQ(s1.to_vector(), (std::vector<float>{6, 15}));
  Tensor m = max_dim(a, 1);
  EXPECT_EQ(m.to_vector(), (std::vector<float>{3, 6}));
  EXPECT_EQ(argmax_dim(a, 1), (std::vector<std::int64_t>{2, 2}));
}

TEST(TensorOps, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Tensor a = Tensor::randn({4, 7}, rng, 3.0f);
  Tensor s = softmax(a, 1);
  for (std::int64_t r = 0; r < 4; ++r) {
    float acc = 0.0f;
    for (std::int64_t c = 0; c < 7; ++c) acc += s.at({r, c});
    EXPECT_NEAR(acc, 1.0f, 1e-5f);
  }
}

TEST(TensorOps, SoftmaxStableForLargeLogits) {
  Tensor a = Tensor::from_data({1, 2}, {1000.0f, 1001.0f});
  Tensor s = softmax(a, 1);
  EXPECT_NEAR(s.at({0, 0}) + s.at({0, 1}), 1.0f, 1e-5f);
  EXPECT_GT(s.at({0, 1}), s.at({0, 0}));
}

TEST(TensorOps, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(9);
  Tensor a = Tensor::randn({3, 5}, rng);
  Tensor ls = log_softmax(a, 1);
  Tensor s = softmax(a, 1);
  for (std::int64_t i = 0; i < a.numel(); ++i)
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-5f);
}

TEST(TensorOps, Conv2dIdentityKernel) {
  Tensor x = Tensor::from_data({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w = Tensor::zeros({1, 1, 3, 3});
  w.set({0, 0, 1, 1}, 1.0f);  // centre tap
  Tensor y = conv2d(x, w, Tensor(), /*stride=*/1, /*padding=*/1);
  ASSERT_EQ(y.shape(), x.shape());
  EXPECT_EQ(y.to_vector(), x.to_vector());
}

TEST(TensorOps, Conv2dStrideHalvesSpatialDims) {
  Tensor x = Tensor::ones({2, 3, 8, 8});
  Rng rng(1);
  Tensor w = Tensor::randn({5, 3, 3, 3}, rng);
  Tensor y = conv2d(x, w, Tensor(), /*stride=*/2, /*padding=*/1);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 4, 4}));
}

TEST(TensorOps, Conv2dBiasAdds) {
  Tensor x = Tensor::zeros({1, 1, 2, 2});
  Tensor w = Tensor::zeros({2, 1, 1, 1});
  Tensor b = Tensor::from_data({2}, {1.5f, -2.0f});
  Tensor y = conv2d(x, w, b);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(y.data()[i], 1.5f);
    EXPECT_EQ(y.data()[4 + i], -2.0f);
  }
}

TEST(TensorOps, MaxPoolPicksMaxima) {
  Tensor x = Tensor::from_data({1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 7});
  Tensor y = max_pool2d(x, 2, 2);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_EQ(y.to_vector(), (std::vector<float>{5, 8}));
}

TEST(TensorOps, AvgPoolAverages) {
  Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 2, 3, 6});
  Tensor y = avg_pool2d(x, 2, 2);
  EXPECT_FLOAT_EQ(y.item(), 3.0f);
}

TEST(TensorOps, UpsampleNearestDoubles) {
  Tensor x = Tensor::from_data({1, 1, 1, 2}, {1, 2});
  Tensor y = upsample_nearest2x(x);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 2, 4}));
  EXPECT_EQ(y.to_vector(), (std::vector<float>{1, 1, 2, 2, 1, 1, 2, 2}));
}

TEST(TensorOps, CrossEntropyPerfectPredictionNearZero) {
  Tensor logits = Tensor::from_data({2, 3}, {20, 0, 0, 0, 20, 0});
  Tensor targets = Tensor::from_data({2}, {0, 1});
  EXPECT_NEAR(cross_entropy(logits, targets).item(), 0.0f, 1e-4f);
}

TEST(TensorOps, CrossEntropyUniformIsLogC) {
  Tensor logits = Tensor::zeros({1, 8});
  Tensor targets = Tensor::from_data({1}, {3});
  EXPECT_NEAR(cross_entropy(logits, targets).item(), std::log(8.0f), 1e-5f);
}

TEST(TensorOps, CrossEntropyRejectsBadTarget) {
  Tensor logits = Tensor::zeros({1, 4});
  Tensor targets = Tensor::from_data({1}, {4});
  EXPECT_THROW(cross_entropy(logits, targets), mfa::check::CheckError);
}

TEST(TensorOps, MseLossZeroWhenEqual) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  EXPECT_FLOAT_EQ(mse_loss(a, a).item(), 0.0f);
  Tensor b = Tensor::from_data({3}, {2, 3, 4});
  EXPECT_FLOAT_EQ(mse_loss(a, b).item(), 1.0f);
}

TEST(TensorOps, BatchNormEvalUsesRunningStats) {
  Tensor x = Tensor::from_data({1, 1, 1, 2}, {2.0f, 4.0f});
  Tensor gamma = Tensor::ones({1});
  Tensor beta = Tensor::zeros({1});
  Tensor rm = Tensor::from_data({1}, {3.0f});
  Tensor rv = Tensor::from_data({1}, {1.0f});
  Tensor y = ops::batch_norm2d(x, gamma, beta, rm, rv, /*training=*/false);
  EXPECT_NEAR(y.data()[0], -1.0f, 1e-3f);
  EXPECT_NEAR(y.data()[1], 1.0f, 1e-3f);
}

TEST(TensorOps, BatchNormTrainingNormalises) {
  Rng rng(17);
  Tensor x = Tensor::randn({4, 2, 8, 8}, rng, 5.0f);
  Tensor gamma = Tensor::ones({2});
  Tensor beta = Tensor::zeros({2});
  Tensor rm = Tensor::zeros({2});
  Tensor rv = Tensor::ones({2});
  Tensor y = ops::batch_norm2d(x, gamma, beta, rm, rv, /*training=*/true);
  // Per-channel mean ~0, var ~1.
  for (std::int64_t c = 0; c < 2; ++c) {
    double acc = 0.0, sq = 0.0;
    std::int64_t count = 0;
    for (std::int64_t n = 0; n < 4; ++n)
      for (std::int64_t i = 0; i < 64; ++i) {
        const float v = y.data()[(n * 2 + c) * 64 + i];
        acc += v;
        sq += v * v;
        ++count;
      }
    EXPECT_NEAR(acc / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-2);
  }
}

TEST(TensorOps, LayerNormNormalisesRows) {
  Rng rng(23);
  Tensor x = Tensor::randn({3, 16}, rng, 4.0f);
  Tensor gamma = Tensor::ones({16});
  Tensor beta = Tensor::zeros({16});
  Tensor y = ops::layer_norm(x, gamma, beta);
  for (std::int64_t r = 0; r < 3; ++r) {
    double acc = 0.0, sq = 0.0;
    for (std::int64_t i = 0; i < 16; ++i) {
      const float v = y.at({r, i});
      acc += v;
      sq += v * v;
    }
    EXPECT_NEAR(acc / 16, 0.0, 1e-4);
    EXPECT_NEAR(sq / 16, 1.0, 1e-2);
  }
}

TEST(TensorOps, GlobalAvgPool) {
  Tensor x = Tensor::from_data({1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
  Tensor y = ops::global_avg_pool(x);
  ASSERT_EQ(y.shape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(y.data()[0], 2.5f);
  EXPECT_FLOAT_EQ(y.data()[1], 10.0f);
}

TEST(TensorInPlace, AddScaledAccumulates) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  Tensor b = Tensor::from_data({3}, {10, 20, 30});
  a.add_(b, 0.5f);
  EXPECT_EQ(a.to_vector(), (std::vector<float>{6, 12, 18}));
  EXPECT_THROW(a.add_(Tensor::zeros({2})), std::invalid_argument);
}

TEST(TensorInPlace, MulAndFill) {
  Tensor a = Tensor::from_data({2}, {2, 4});
  a.mul_(1.5f);
  EXPECT_EQ(a.to_vector(), (std::vector<float>{3, 6}));
  a.fill_(7.0f);
  EXPECT_EQ(a.to_vector(), (std::vector<float>{7, 7}));
}

TEST(TensorInPlace, CopyFromChecksSize) {
  Tensor a = Tensor::zeros({4});
  Tensor b = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  a.copy_from(b);  // same element count, different shape is fine
  EXPECT_EQ(a.to_vector(), b.to_vector());
  EXPECT_THROW(a.copy_from(Tensor::zeros({3})), std::invalid_argument);
}

TEST(TensorOps, ClampMinThresholds) {
  Tensor a = Tensor::from_data({4}, {-2, -0.5f, 0.5f, 2});
  Tensor y = clamp_min(a, 0.0f);
  EXPECT_EQ(y.to_vector(), (std::vector<float>{0, 0, 0.5f, 2}));
}

TEST(TensorOps, PowScalarMatchesRepeatedMul) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  Tensor y = pow_scalar(a, 2.0f);
  EXPECT_EQ(y.to_vector(), (std::vector<float>{1, 4, 9}));
}

}  // namespace
}  // namespace mfa
