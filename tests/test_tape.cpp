// Tests for the autograd tape + graph executor (tensor/tape.h).
//
// The contract under test: MFA_EXEC=graph schedules independent backward
// branches across the ThreadPool yet stays BIT-identical to the sequential
// walk — for any thread count, pool mode, fusion on/off — because the
// planner serialises the consumers of every shared grad-requiring tensor in
// sequential execution order (chain edges) and only fuses execution-adjacent
// sole-consumer elementwise pairs. The tape arena must recycle intermediate
// buffers across steps without perturbing numerics, keep escaped tensors
// alive, and give memory back when the workload shrinks. Diagnostics (race
// tracking, finite-grad scans) pin the sequential walk so their reports are
// schedule-independent across MFA_EXEC modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/sanitize.h"
#include "common/thread_pool.h"
#include "nn/optim.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/storage.h"
#include "tensor/tape.h"
#include "tensor/tensor.h"

namespace mfa {
namespace {

using ops::add;
using ops::conv2d;
using ops::mul;
using ops::relu;
using ops::sum;
using tensor::Executor;
using tensor::StoragePool;
using tensor::Tape;

/// Pins the executor mode, fusion, arena, and pool-thread count for a test
/// body; restores everything on exit. The tape knobs are thread-local, so
/// this configures exactly the thread the graphs are built and run on.
class TapeEnv {
 public:
  TapeEnv(Executor exec, int threads, bool fusion = true, bool arena = true)
      : exec_prev_(Tape::current().executor()),
        fusion_prev_(Tape::current().fusion_enabled()),
        arena_prev_(Tape::current().arena_enabled()),
        threads_prev_(common::ThreadPool::instance().size()) {
    Tape::current().set_executor_for_testing(exec);
    Tape::current().set_fusion_for_testing(fusion);
    Tape::current().set_arena_for_testing(arena);
    common::ThreadPool::instance().resize_for_testing(threads);
  }
  ~TapeEnv() {
    common::ThreadPool::instance().resize_for_testing(threads_prev_);
    Tape::current().set_arena_for_testing(arena_prev_);
    Tape::current().set_fusion_for_testing(fusion_prev_);
    Tape::current().set_executor_for_testing(exec_prev_);
  }

 private:
  Executor exec_prev_;
  bool fusion_prev_;
  bool arena_prev_;
  int threads_prev_;
};

Tensor make_input(Shape shape, int seed, float scale = 1.0f) {
  Rng rng(static_cast<std::uint64_t>(seed));
  return Tensor::randn(std::move(shape), rng, scale, /*requires_grad=*/true);
}

/// A wide graph: `branches` independent relu(w_i * x_i) arms joined by a
/// balanced add tree. Each arm's backward tasks are heavy enough for the
/// level dispatcher to fan out, and the arms share no grad-requiring tensor,
/// so they land in one level.
Tensor wide_branch_loss(const std::vector<Tensor>& ws,
                        const std::vector<Tensor>& xs) {
  std::vector<Tensor> arms;
  arms.reserve(ws.size());
  for (size_t i = 0; i < ws.size(); ++i)
    arms.push_back(sum(relu(mul(ws[i], xs[i]))));
  while (arms.size() > 1) {
    std::vector<Tensor> next;
    for (size_t i = 0; i + 1 < arms.size(); i += 2)
      next.push_back(add(arms[i], arms[i + 1]));
    if (arms.size() % 2 == 1) next.push_back(arms.back());
    arms.swap(next);
  }
  return arms.front();
}

/// Gradients of `params` after backward of fn(), as flat bytes for bitwise
/// comparison.
std::vector<float> grads_after_backward(const std::function<Tensor()>& fn,
                                        std::vector<Tensor>& params) {
  for (auto& p : params) p.zero_grad();
  fn().backward();
  std::vector<float> flat;
  for (auto& p : params) {
    const auto g = p.grad().to_vector();
    flat.insert(flat.end(), g.begin(), g.end());
  }
  return flat;
}

// ---- correctness: gradcheck under the graph executor --------------------

TEST(TapeGraph, DiamondGraphGradchecksUnderGraphExecutor) {
  const TapeEnv env(Executor::kGraph, 4);
  Tensor a = make_input({64}, 11, 0.5f);
  const auto result = gradcheck(
      [&] {
        // Two distinct paths from one tensor, re-joined: the planner must
        // chain both consumers of `a` and both writers into its grad.
        // Smooth ops only — a relu kink near zero would dominate the
        // finite-difference error.
        Tensor left = mul(a, a);
        Tensor right = ops::tanh(a);
        return sum(add(mul(left, right), left));
      },
      {a}, /*eps=*/1e-2f, /*tol=*/5e-2f);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(TapeGraph, SharedSubexpressionAccumulatesIdenticallyToSeq) {
  // s = a*a feeds three consumers; every scatter into s.grad (and then into
  // a.grad) must accumulate in the sequential walk's order, bit for bit.
  Tensor a = make_input({4096}, 12, 0.5f);
  Tensor b = make_input({4096}, 13, 0.5f);
  std::vector<Tensor> params = {a, b};
  const auto build = [&] {
    Tensor s = mul(a, a);
    return sum(add(add(mul(s, b), relu(s)), mul(s, s)));
  };
  std::vector<float> seq_grads, graph_grads;
  {
    const TapeEnv env(Executor::kSeq, 1);
    seq_grads = grads_after_backward(build, params);
  }
  {
    const TapeEnv env(Executor::kGraph, 4);
    graph_grads = grads_after_backward(build, params);
  }
  ASSERT_EQ(seq_grads.size(), graph_grads.size());
  for (size_t i = 0; i < seq_grads.size(); ++i)
    ASSERT_EQ(seq_grads[i], graph_grads[i]) << "grad diverged at " << i;
}

TEST(TapeGraph, ConvTrainStepBitIdenticalSeqVsGraphAndFusionOnOff) {
  // A conv+elementwise composite trained for a few steps: parameters must
  // stay bitwise equal between MFA_EXEC modes and with fusion on/off.
  const auto run = [](Executor exec, int threads,
                      bool fusion) -> std::vector<float> {
    const TapeEnv env(exec, threads, fusion);
    Rng rng(99);
    Tensor x = Tensor::randn({2, 3, 8, 8}, rng, 1.0f);
    Tensor w = Tensor::randn({4, 3, 3, 3}, rng, 0.3f, true);
    Tensor bias = Tensor::zeros({4}, true);
    std::vector<Tensor> params = {w, bias};
    nn::Sgd opt(params, 0.05f);
    for (int step = 0; step < 3; ++step) {
      opt.zero_grad();
      Tensor y = relu(conv2d(x, w, bias, 1, 1));
      sum(mul(y, y)).backward();
      opt.step();
    }
    std::vector<float> flat;
    for (const auto& p : params) {
      const auto v = p.to_vector();
      flat.insert(flat.end(), v.begin(), v.end());
    }
    return flat;
  };
  const auto baseline = run(Executor::kSeq, 1, true);
  EXPECT_EQ(baseline, run(Executor::kGraph, 1, true));
  EXPECT_EQ(baseline, run(Executor::kGraph, 4, true));
  EXPECT_EQ(baseline, run(Executor::kGraph, 4, false));
  EXPECT_EQ(baseline, run(Executor::kSeq, 4, false));
}

// ---- scheduling: the plan actually fuses and parallelises ---------------

TEST(TapeGraph, ElementwiseChainFusesIntoOneTask) {
  const TapeEnv env(Executor::kGraph, 1);
  Tensor a = make_input({256}, 14);
  // add -> relu -> mul(scalar): a pure elementwise chain with sole
  // consumers; the planner must merge it rather than schedule 1-node tasks.
  sum(ops::mul_scalar(relu(add(a, a)), 0.5f)).backward();
  const auto& plan = Tape::current().last_plan();
  EXPECT_GT(plan.fused_nodes, 0) << "no elementwise pair was fused";
  EXPECT_LT(plan.tasks, plan.nodes);
}

TEST(TapeGraph, IndependentBranchesShareALevel) {
  const TapeEnv env(Executor::kGraph, 4);
  std::vector<Tensor> ws, xs;
  for (int i = 0; i < 4; ++i) {
    ws.push_back(make_input({4096}, 20 + i, 0.5f));
    // Non-grad inputs: shared by nothing, written by nothing.
    Rng rng(static_cast<std::uint64_t>(40 + i));
    xs.push_back(Tensor::randn({4096}, rng, 0.5f));
  }
  wide_branch_loss(ws, xs).backward();
  const auto& plan = Tape::current().last_plan();
  EXPECT_GT(plan.parallel_levels, 0)
      << "no level fanned out across the pool (tasks=" << plan.tasks
      << ", levels=" << plan.levels << ")";
  EXPECT_GE(plan.parallel_tasks, 4);
}

// ---- bookkeeping: zero-alloc steady state -------------------------------

TEST(TapeGraph, PlanBookkeepingStopsAllocatingAfterWarmup) {
  const TapeEnv env(Executor::kGraph, 4);
  std::vector<Tensor> ws, xs;
  for (int i = 0; i < 4; ++i) {
    ws.push_back(make_input({1024}, 60 + i, 0.5f));
    Rng rng(static_cast<std::uint64_t>(80 + i));
    xs.push_back(Tensor::randn({1024}, rng, 0.5f));
  }
  wide_branch_loss(ws, xs).backward();  // warm-up sizes every plan vector
  const std::int64_t after_warmup = Tape::current().plan_grow_events();
  for (int step = 0; step < 5; ++step) {
    for (auto& w : ws) w.zero_grad();
    wide_branch_loss(ws, xs).backward();
  }
  EXPECT_EQ(Tape::current().plan_grow_events(), after_warmup)
      << "backward() bookkeeping grew a plan vector in the steady state";
}

// ---- arena: recycling, pinning, trimming --------------------------------

TEST(TapeArenaTest, SteadyStateReusesEntriesAndTrimsAfterShrink) {
  if (!StoragePool::instance().enabled())
    GTEST_SKIP() << "pool disabled (MFA_POOL=off): arena is bypassed";
  const TapeEnv env(Executor::kGraph, 1);
  auto& arena = Tape::current().arena();
  arena.clear();
  std::vector<Tensor> ws, xs;
  for (int i = 0; i < 2; ++i) {
    ws.push_back(make_input({2048}, 90 + i, 0.5f));
    Rng rng(static_cast<std::uint64_t>(95 + i));
    xs.push_back(Tensor::randn({2048}, rng, 0.5f));
  }
  wide_branch_loss(ws, xs).backward();
  const std::int64_t entries_after_one = arena.entries();
  const std::int64_t floats_after_one = arena.held_floats();
  EXPECT_GT(entries_after_one, 0);
  // Steady state: identical steps must not grow the arena at all.
  for (int step = 0; step < 6; ++step) {
    for (auto& w : ws) w.zero_grad();
    wide_branch_loss(ws, xs).backward();
  }
  EXPECT_EQ(arena.entries(), entries_after_one);
  EXPECT_EQ(arena.held_floats(), floats_after_one);
  // Shrink the workload: after two small steps (high-water window), the big
  // entries must have been given back.
  Tensor small_w = make_input({64}, 97);
  Rng rng(98);
  Tensor small_x = Tensor::randn({64}, rng, 0.5f);
  for (int step = 0; step < 3; ++step) {
    small_w.zero_grad();
    sum(relu(mul(small_w, small_x))).backward();
  }
  EXPECT_LT(arena.held_floats(), floats_after_one);
  arena.clear();
}

TEST(TapeArenaTest, EscapedIntermediatePinsItsBufferAcrossRetire) {
  if (!StoragePool::instance().enabled())
    GTEST_SKIP() << "pool disabled (MFA_POOL=off): arena is bypassed";
  const TapeEnv env(Executor::kGraph, 1);
  Tensor a = make_input({512}, 30, 0.5f);
  Tensor y = mul(a, a);  // intermediate drawn from the arena
  sum(y).backward();     // retires the tape; y's handle must pin its entry
  const std::vector<float> snapshot = y.to_vector();
  // Run more steps over the same bucket size: the pinned entry must never be
  // handed out while y lives.
  for (int step = 0; step < 4; ++step) {
    a.zero_grad();
    sum(relu(mul(a, a))).backward();
  }
  EXPECT_EQ(y.to_vector(), snapshot);
  // Once y drops, its entry is reusable (or trimmable) again.
  y = Tensor();
  for (int step = 0; step < 3; ++step) {
    a.zero_grad();
    sum(relu(mul(a, a))).backward();
  }
}

TEST(TapeArenaTest, TrainStepBitIdenticalArenaOnVsOff) {
  const auto run = [](bool arena) -> std::vector<float> {
    const TapeEnv env(Executor::kGraph, 4, /*fusion=*/true, arena);
    Rng rng(77);
    Tensor w = Tensor::randn({2048}, rng, 0.5f, true);
    Tensor x = Tensor::randn({2048}, rng, 0.5f);
    std::vector<Tensor> params = {w};
    nn::Sgd opt(params, 0.1f);
    for (int step = 0; step < 4; ++step) {
      opt.zero_grad();
      sum(relu(mul(w, x))).backward();
      opt.step();
    }
    return w.to_vector();
  };
  EXPECT_EQ(run(true), run(false));
}

// ---- diagnostics force the sequential walk ------------------------------

TEST(TapeSanitize, RaceReportIsByteIdenticalAcrossExecModes) {
  if (!sanitize::compiled_in())
    GTEST_SKIP() << "storage sanitizer compiled out (NDEBUG build)";
  // A backward closure with the classic forgotten-offset bug: every chunk
  // declares [0, end). With race tracking armed, the executor must pin the
  // sequential walk in BOTH exec modes, so the report (op name, tape node,
  // chunk ids) is byte-identical — never a worker-task schedule accident.
  const bool pool_prev = StoragePool::instance().enabled();
  const bool san_prev = sanitize::enabled();
  StoragePool::instance().set_enabled(true);
  sanitize::set_enabled(true);
  sanitize::set_throw_on_violation(true);
  sanitize::reset_counts();
  // One tensor shared by both runs: the report names the faulting buffer by
  // address, and `a`'s grad storage persists across backward calls, so the
  // two reports can only match if the executor pins one canonical schedule.
  Tensor a = make_input({1 << 20}, 55);
  const auto buggy_loss = [](const Tensor& in) {
    Tensor y = Tensor::make_result(
        in.shape(), {in}, [in](detail::TensorImpl& o) {
          auto ai = in.impl();
          ai->ensure_grad();
          float* ga = ai->grad.data();
          const auto n = static_cast<std::int64_t>(o.data.size());
          parallel_for(n, [&](std::int64_t, std::int64_t i1) {
            sanitize::note_parallel_write(ga, 0, i1);  // forgotten offset
          });
        });
    return sum(y);
  };
  std::string reports[2];
  const Executor modes[2] = {Executor::kSeq, Executor::kGraph};
  for (int i = 0; i < 2; ++i) {
    const TapeEnv env(modes[i], 4);
    a.zero_grad();
    try {
      buggy_loss(a).backward();
      ADD_FAILURE() << "expected a race violation, none was thrown";
    } catch (const check::CheckError& e) {
      reports[i] = e.what();
    }
  }
  EXPECT_FALSE(reports[0].empty());
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_NE(reports[0].find("sanitize[race]"), std::string::npos)
      << reports[0];
  sanitize::reset_counts();
  sanitize::set_enabled(san_prev);
  StoragePool::instance().set_enabled(pool_prev);
}

TEST(TapeSanitize, ParallelBackwardRunsCleanWithSanitizerArmed) {
  if (!sanitize::compiled_in())
    GTEST_SKIP() << "storage sanitizer compiled out (NDEBUG build)";
  // TSan-facing stress: redzone/lifetime/refcount checks stay armed while
  // race tracking is OFF, so the graph executor genuinely fans backward
  // tasks across 4 workers with the checker watching the pooled buffers.
  const bool pool_prev = StoragePool::instance().enabled();
  const bool san_prev = sanitize::enabled();
  StoragePool::instance().set_enabled(true);
  sanitize::set_enabled(true);
  sanitize::set_race_tracking(false);
  sanitize::set_throw_on_violation(true);
  sanitize::reset_counts();
  {
    const TapeEnv env(Executor::kGraph, 4);
    std::vector<Tensor> ws, xs;
    for (int i = 0; i < 4; ++i) {
      ws.push_back(make_input({8192}, 70 + i, 0.5f));
      Rng rng(static_cast<std::uint64_t>(75 + i));
      xs.push_back(Tensor::randn({8192}, rng, 0.5f));
    }
    std::int64_t parallel_tasks = 0;
    for (int step = 0; step < 8; ++step) {
      for (auto& w : ws) w.zero_grad();
      wide_branch_loss(ws, xs).backward();
      parallel_tasks += Tape::current().last_plan().parallel_tasks;
    }
    EXPECT_GT(parallel_tasks, 0)
        << "stress never exercised a parallel level";
    Tape::current().arena().verify_guards();
  }
  const auto counts = sanitize::counts();
  EXPECT_EQ(counts.total(), 0)
      << "sanitizer violations during parallel backward";
  EXPECT_GT(counts.redzone_checks, 0)
      << "checker never actually verified a redzone";
  sanitize::set_race_tracking(true);
  sanitize::set_enabled(san_prev);
  StoragePool::instance().set_enabled(pool_prev);
}

// ---- retire semantics ---------------------------------------------------

TEST(TapeRetire, RetiredGraphSurvivorActsAsLeaf) {
  const TapeEnv env(Executor::kGraph, 4);
  Tensor a = make_input({8}, 88);
  Tensor y = mul(a, a);
  sum(y).backward();
  EXPECT_EQ(Tape::current().recorded_nodes(), 0) << "tape not retired";
  // A survivor of the retired graph acts as a leaf in the next graph:
  // gradient flow stops at it instead of re-running retired closures.
  a.zero_grad();
  Tensor z = sum(mul(y, y));
  z.backward();
  const auto ga = a.grad().to_vector();
  for (const float g : ga) EXPECT_EQ(g, 0.0f);
  const auto gy = y.grad().to_vector();
  EXPECT_EQ(gy.size(), static_cast<size_t>(y.numel()));
}

TEST(TapeRetire, BackwardFromLeafLeavesRecordedGraphLive) {
  const TapeEnv env(Executor::kGraph, 1);
  Tensor a = make_input({16}, 89);
  Tensor loss = sum(mul(a, a));
  // A detached scalar backward must not retire the recorded graph.
  Tensor detached = Tensor::scalar(3.0f, true);
  detached.backward();
  EXPECT_GT(Tape::current().recorded_nodes(), 0);
  a.zero_grad();
  loss.backward();  // the real graph still executes fully
  const auto ga = a.grad().to_vector();
  const auto av = a.to_vector();
  for (size_t i = 0; i < ga.size(); ++i)
    EXPECT_NEAR(ga[i], 2.0f * av[i], 1e-4f);
}

// ---- multi-root backward (Tensor::backward_multi) ------------------------

/// Two scalar heads over a shared trunk: head1 = sum(relu(w*x)),
/// head2 = sum((w*x)^2) — both consume the same intermediate, so the union
/// graph exercises shared-parent chain edges between the heads' closures.
void two_head_graph(Tensor& w, Tensor& x, Tensor& head1, Tensor& head2) {
  Tensor trunk = mul(w, x);
  head1 = sum(relu(trunk));
  head2 = sum(mul(trunk, trunk));
}

TEST(TapeMultiRoot, TwoHeadGradsBitwiseIdenticalSeqVsGraph) {
  std::vector<std::vector<float>> runs;
  for (const Executor exec : {Executor::kSeq, Executor::kGraph}) {
    for (const int threads : {1, 4}) {
      const TapeEnv env(exec, threads);
      Tensor w = make_input({256}, 101, 0.5f);
      Tensor x = make_input({256}, 102, 0.5f);
      Tensor head1, head2;
      two_head_graph(w, x, head1, head2);
      Tensor::backward_multi({head1, head2});
      std::vector<float> flat = w.grad().to_vector();
      const auto gx = x.grad().to_vector();
      flat.insert(flat.end(), gx.begin(), gx.end());
      runs.push_back(std::move(flat));
    }
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[0].size(), runs[i].size());
    EXPECT_EQ(0, std::memcmp(runs[0].data(), runs[i].data(),
                             runs[0].size() * sizeof(float)))
        << "config " << i << " diverged from seq/t1";
  }
}

TEST(TapeMultiRoot, MatchesBackwardOfExplicitSum) {
  // d(h1 + h2)/dθ computed by one multi-root pass must equal the gradient
  // of the literal sum node: the add's backward scatters the same seed the
  // multi-root path plants directly.
  const TapeEnv env(Executor::kGraph, 4);
  Tensor w1 = make_input({64}, 103, 0.5f);
  Tensor x1 = make_input({64}, 104, 0.5f);
  Tensor h1a, h2a;
  two_head_graph(w1, x1, h1a, h2a);
  Tensor::backward_multi({h1a, h2a});
  const auto gw_multi = w1.grad().to_vector();

  Tensor w2 = make_input({64}, 103, 0.5f);
  Tensor x2 = make_input({64}, 104, 0.5f);
  Tensor h1b, h2b;
  two_head_graph(w2, x2, h1b, h2b);
  add(h1b, h2b).backward();
  const auto gw_sum = w2.grad().to_vector();
  ASSERT_EQ(gw_multi.size(), gw_sum.size());
  EXPECT_EQ(0, std::memcmp(gw_multi.data(), gw_sum.data(),
                           gw_multi.size() * sizeof(float)));
}

TEST(TapeMultiRoot, DuplicateRootAccumulatesItsSeed) {
  const TapeEnv env(Executor::kSeq, 1);
  Tensor a = make_input({32}, 105, 0.5f);
  Tensor loss = sum(mul(a, a));
  Tensor::backward_multi({loss, loss});
  const auto g = a.grad().to_vector();
  const auto av = a.to_vector();
  // Seed 2.0 -> gradient 2 * 2a, exactly (power-of-two scaling).
  for (size_t i = 0; i < g.size(); ++i)
    EXPECT_EQ(g[i], 4.0f * av[i]);
}

TEST(TapeMultiRoot, LeafRootIsSeededWhileTapedRootPropagates) {
  const TapeEnv env(Executor::kGraph, 1);
  Tensor a = make_input({16}, 107, 0.5f);
  Tensor leaf = Tensor::scalar(2.0f, /*requires_grad=*/true);
  Tensor loss = sum(mul(a, a));
  Tensor::backward_multi({loss, leaf});
  EXPECT_EQ(leaf.grad().item(), 1.0f);
  const auto g = a.grad().to_vector();
  const auto av = a.to_vector();
  for (size_t i = 0; i < g.size(); ++i) EXPECT_EQ(g[i], 2.0f * av[i]);
}

TEST(TapeMultiRoot, InteriorRootReceivesSeedOnTopOfScatteredGradient) {
  // head2 depends on head1's subgraph THROUGH trunk, and head1 itself is a
  // root: an interior-ish mix. Use y = sum(x^2), roots {y, z} with
  // z = sum(relu(x)): gradient = 2x + relu'(x).
  const TapeEnv env(Executor::kSeq, 1);
  Tensor x = make_input({64}, 109, 0.5f);
  Tensor y = sum(mul(x, x));
  Tensor z = sum(relu(x));
  Tensor::backward_multi({y, z});
  const auto g = x.grad().to_vector();
  const auto xv = x.to_vector();
  for (size_t i = 0; i < g.size(); ++i)
    EXPECT_NEAR(g[i], 2.0f * xv[i] + (xv[i] > 0.0f ? 1.0f : 0.0f), 1e-5f);
}

TEST(TapeMultiRoot, UnionPlanCountsSharedSubgraphOnce) {
  const TapeEnv env(Executor::kGraph, 1);
  Tensor w = make_input({64}, 111, 0.5f);
  Tensor x = make_input({64}, 112, 0.5f);
  Tensor head1, head2;
  two_head_graph(w, x, head1, head2);
  // Nodes: mul(trunk), relu, sum(h1), mul(sq), sum(h2) = 5 — the shared
  // trunk appears once in the union plan, not per root.
  Tensor::backward_multi({head1, head2});
  EXPECT_EQ(Tape::current().last_plan().nodes, 5);
}

TEST(TapeMultiRoot, PlanBookkeepingStaysZeroAllocAfterWarmup) {
  const TapeEnv env(Executor::kGraph, 4);
  auto run = [&] {
    Tensor w = make_input({128}, 113, 0.5f);
    Tensor x = make_input({128}, 114, 0.5f);
    Tensor head1, head2;
    two_head_graph(w, x, head1, head2);
    Tensor::backward_multi({head1, head2});
  };
  run();
  run();
  const std::int64_t after_warmup = Tape::current().plan_grow_events();
  for (int i = 0; i < 3; ++i) run();
  EXPECT_EQ(Tape::current().plan_grow_events(), after_warmup)
      << "multi-root planning must reuse the plan scratch vectors";
}

}  // namespace
}  // namespace mfa
