// Schema and semantics tests for the mfa::obs observability layer
// (common/metrics.h + common/trace.h): counter/gauge/histogram behaviour,
// thread-shard drain correctness under parallel_for stress, Chrome-trace
// JSON round-trips through a minimal parser, and the disabled mode's
// record-nothing / allocate-nothing contract.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "tensor/storage.h"

namespace obs = mfa::obs;

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — just enough structure to validate
// the exporters' output byte streams without a JSON dependency. Numbers are
// stored as doubles, objects as sorted maps; parse errors throw.
// ---------------------------------------------------------------------------
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage");
    return v;
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) +
                             ": " + why);
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.str] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    expect('"');
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        char e = peek();
        ++pos_;
        switch (e) {
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            v.str += static_cast<char>(
                std::stoi(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("unsupported escape");
        }
      } else {
        v.str += c;
      }
    }
    ++pos_;
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    JsonValue v;
    v.kind = JsonValue::Kind::Null;
    return v;
  }

  JsonValue number() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

// Restores the runtime toggle even when a test body fails mid-way.
struct EnabledGuard {
  bool prev = obs::enabled();
  ~EnabledGuard() { obs::set_enabled(prev); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Counter / gauge / histogram semantics
// ---------------------------------------------------------------------------

TEST(ObsCounter, AddsAndReads) {
  obs::Counter c = obs::counter("obs_test.counter_basic");
  const std::int64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
  // Same name resolves to the same cell.
  obs::Counter same = obs::counter("obs_test.counter_basic");
  same.add(8);
  EXPECT_EQ(c.value(), before + 50);
}

TEST(ObsGauge, LastWriteWins) {
  obs::Gauge g = obs::gauge("obs_test.gauge");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(ObsHistogram, BucketLayoutIsLog2) {
  // bucket 0 <- v <= 0; bucket b >= 1 <- [2^(b-1), 2^b - 1].
  EXPECT_EQ(obs::histogram_bucket(-5), 0);
  EXPECT_EQ(obs::histogram_bucket(0), 0);
  EXPECT_EQ(obs::histogram_bucket(1), 1);
  EXPECT_EQ(obs::histogram_bucket(2), 2);
  EXPECT_EQ(obs::histogram_bucket(3), 2);
  EXPECT_EQ(obs::histogram_bucket(4), 3);
  EXPECT_EQ(obs::histogram_bucket(7), 3);
  EXPECT_EQ(obs::histogram_bucket(1023), 10);
  EXPECT_EQ(obs::histogram_bucket(1024), 11);
  EXPECT_EQ(obs::histogram_bucket(std::int64_t{1} << 62),
            obs::kHistogramBuckets - 1);
}

TEST(ObsHistogram, RecordsCountSumMinMax) {
  obs::Histogram h = obs::histogram("obs_test.hist_semantics");
  const std::int64_t count0 = h.count();
  h.record(3);
  h.record(100);
  h.record(0);
  h.record(-7);  // clamps to 0
  obs::HistogramStats s = h.snapshot();
  EXPECT_EQ(s.count, count0 + 4);
  EXPECT_EQ(s.sum, 103);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 100);
  ASSERT_EQ(static_cast<int>(s.buckets.size()), obs::kHistogramBuckets);
  EXPECT_EQ(s.buckets[obs::histogram_bucket(0)], 2);  // the 0 and the -7
  EXPECT_EQ(s.buckets[obs::histogram_bucket(3)], 1);
  EXPECT_EQ(s.buckets[obs::histogram_bucket(100)], 1);
}

TEST(ObsRegistry, ResetZeroesButKeepsHandles) {
  obs::Counter c = obs::counter("obs_test.reset_counter");
  obs::Histogram h = obs::histogram("obs_test.reset_hist");
  c.add(5);
  h.record(9);
  obs::Registry::instance().reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  // Handles stay usable after reset.
  c.add(2);
  EXPECT_EQ(c.value(), 2);
}

// ---------------------------------------------------------------------------
// Thread-shard drain under parallel_for (run under TSan in CI config 3)
// ---------------------------------------------------------------------------

TEST(ObsSharding, ParallelForIncrementsAreExact) {
  obs::Counter c = obs::counter("obs_test.shard_stress");
  const std::int64_t before = c.value();
  const std::int64_t n = 100000;
  const int rounds = 5;
  for (int r = 0; r < rounds; ++r) {
    // grain 1 forces real fan-out across pool workers, each of which bumps
    // its thread-local shard slot; value() after the join must see every
    // increment (central + live shards).
    mfa::parallel_for(
        n, [&](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) c.add();
        },
        /*grain=*/256);
    EXPECT_EQ(c.value(), before + (r + 1) * n);
  }
}

TEST(ObsSharding, WorkerThreadCountersSurviveThreadExit) {
  // Threads that die drain their shard into the central cell; spawn fresh
  // threads (not pool workers, which persist) and verify nothing is lost.
  obs::Counter c = obs::counter("obs_test.shard_exit");
  const std::int64_t before = c.value();
  for (int round = 0; round < 3; ++round) {
    std::thread t([&] { c.add(10); });
    t.join();
  }
  EXPECT_EQ(c.value(), before + 30);
}

// ---------------------------------------------------------------------------
// Trace ring + Chrome JSON round-trip
// ---------------------------------------------------------------------------

TEST(ObsTrace, ChromeJsonRoundTripsThroughParser) {
  EnabledGuard guard;
  obs::set_enabled(true);
  obs::trace_reset();
  {
    MFA_TRACE_SCOPE("obs_test.outer");
    MFA_TRACE_SCOPE("obs_test.inner");
  }
  const std::string doc = obs::chrome_trace_json();
  JsonValue root = parse_json(doc);
  ASSERT_TRUE(root.has("traceEvents"));
  const auto& events = root.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  bool saw_outer = false, saw_inner = false;
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").str, "X");
    EXPECT_EQ(e.at("pid").number, 1.0);
    EXPECT_GE(e.at("dur").number, 0.0);
    EXPECT_GE(e.at("ts").number, 0.0);
    if (e.at("name").str == "obs_test.outer") saw_outer = true;
    if (e.at("name").str == "obs_test.inner") saw_inner = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  // Events come out sorted by start time: outer opened first.
  EXPECT_EQ(events[0].at("name").str, "obs_test.outer");
}

TEST(ObsTrace, WriteChromeTraceProducesLoadableFile) {
  EnabledGuard guard;
  obs::set_enabled(true);
  obs::trace_reset();
  {
    MFA_TRACE_SCOPE("obs_test.file_span");
  }
  const std::string path = ::testing::TempDir() + "obs_trace_roundtrip.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue root = parse_json(buf.str());
  ASSERT_EQ(root.at("traceEvents").array.size(), 1u);
  EXPECT_EQ(root.at("traceEvents").array[0].at("name").str,
            "obs_test.file_span");
  std::remove(path.c_str());
}

TEST(ObsTrace, RingWrapKeepsMostRecentSpans) {
  EnabledGuard guard;
  obs::set_enabled(true);
  obs::trace_reset(/*new_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    MFA_TRACE_SCOPE("obs_test.wrap");
  }
  EXPECT_EQ(obs::trace_total_recorded(), 20);
  EXPECT_EQ(obs::trace_snapshot().size(), 8u);
  // Still a valid Chrome document after wrapping.
  JsonValue root = parse_json(obs::chrome_trace_json());
  EXPECT_EQ(root.at("traceEvents").array.size(), 8u);
  obs::trace_reset(/*new_capacity=*/65536);
}

TEST(ObsTrace, ScopeFeedsSameNamedHistogram) {
  EnabledGuard guard;
  obs::set_enabled(true);
  obs::Histogram h = obs::histogram("obs_test.span_hist");
  const std::int64_t before = h.count();
  for (int i = 0; i < 4; ++i) {
    MFA_TRACE_SCOPE("obs_test.span_hist");
  }
  EXPECT_EQ(h.count(), before + 4);
}

TEST(ObsTrace, ConcurrentSpansFromWorkersAreWellFormed) {
  EnabledGuard guard;
  obs::set_enabled(true);
  obs::trace_reset();
  mfa::parallel_for(
      4096, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          MFA_TRACE_SCOPE("obs_test.worker_span");
        }
      },
      /*grain=*/64);
  EXPECT_EQ(obs::trace_total_recorded(), 4096);
  JsonValue root = parse_json(obs::chrome_trace_json());
  for (const auto& e : root.at("traceEvents").array) {
    EXPECT_EQ(e.at("name").str, "obs_test.worker_span");
    EXPECT_GE(e.at("tid").number, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Metrics JSON snapshot
// ---------------------------------------------------------------------------

TEST(ObsSnapshot, MetricsJsonParsesAndCarriesAllMetricKinds) {
  obs::counter("obs_test.snap_counter").add(7);
  obs::gauge("obs_test.snap_gauge").set(2.5);
  obs::histogram("obs_test.snap_hist").record(5);
  const std::string doc = obs::Registry::instance().metrics_json();
  JsonValue root = parse_json(doc);
  EXPECT_GE(root.at("obs_test.snap_counter").number, 7.0);
  EXPECT_DOUBLE_EQ(root.at("obs_test.snap_gauge").number, 2.5);
  const JsonValue& hist = root.at("obs_test.snap_hist");
  EXPECT_GE(hist.at("count").number, 1.0);
  EXPECT_GE(hist.at("sum").number, 5.0);
  EXPECT_TRUE(hist.has("buckets"));
}

TEST(ObsSnapshot, AdoptsStoragePoolAndThreadPoolSources) {
  // Touch both subsystems so their ctors (and source registrations) ran.
  (void)mfa::tensor::StoragePool::instance().stats();
  (void)mfa::common::ThreadPool::instance().size();
  JsonValue root = parse_json(obs::Registry::instance().metrics_json());
  EXPECT_TRUE(root.has("storage_pool.hits"));
  EXPECT_TRUE(root.has("storage_pool.misses"));
  EXPECT_TRUE(root.has("thread_pool.size"));
  EXPECT_TRUE(root.has("thread_pool.jobs"));
  EXPECT_GE(root.at("thread_pool.size").number, 1.0);
}

TEST(ObsSnapshot, ThrowingSourceDegradesToPartialSnapshot) {
  obs::Registry::instance().register_source("obs_test_bad_source", [] {
    throw std::runtime_error("deliberately broken source");
    return std::vector<std::pair<std::string, double>>{};
  });
  obs::counter("obs_test.partial_survivor").add(1);
  // Must not throw, must still parse, and must flag the failure.
  const std::string doc = obs::Registry::instance().metrics_json();
  JsonValue root = parse_json(doc);
  EXPECT_TRUE(root.has("obs_test.partial_survivor"));
  EXPECT_GE(root.at("obs.export_errors").number, 1.0);
  // Replace the broken source with a healthy no-op so later tests (and the
  // golden flow) see a clean registry again.
  obs::Registry::instance().register_source("obs_test_bad_source", [] {
    return std::vector<std::pair<std::string, double>>{};
  });
  obs::Registry::instance().reset();
}

TEST(ObsSnapshot, ExportFaultPointYieldsPartialSnapshotNotCrash) {
  if (!mfa::common::FaultInjector::compiled_in())
    GTEST_SKIP() << "fault injection compiled out (Release build)";
  // The fault point sits in the per-source pull loop, so the registry needs
  // at least one source: ctest runs each test in its own process, where the
  // StoragePool/ThreadPool singletons (the usual sources) may never have
  // been constructed.
  obs::Registry::instance().register_source("obs_test_faulted_source", [] {
    return std::vector<std::pair<std::string, double>>{{"ok", 1.0}};
  });
  auto& inj = mfa::common::FaultInjector::instance();
  inj.arm_always("obs.export");
  std::string doc;
  ASSERT_NO_THROW(doc = obs::Registry::instance().metrics_json());
  JsonValue root = parse_json(doc);
  EXPECT_GE(root.at("obs.export_errors").number, 1.0);
  inj.reset();
  obs::Registry::instance().reset();
}

// ---------------------------------------------------------------------------
// Disabled mode: records nothing, allocates nothing
// ---------------------------------------------------------------------------

TEST(ObsDisabled, RecordsNothingAndAllocatesNothing) {
  EnabledGuard guard;
  // Warm up: make sure the cells, the thread pool, and the trace ring exist
  // before measuring, so the disabled path is steady-state.
  obs::Counter c = obs::counter("obs_test.disabled_counter");
  obs::Histogram h = obs::histogram("obs_test.disabled_hist");
  obs::Gauge g = obs::gauge("obs_test.disabled_gauge");
  obs::set_enabled(true);
  {
    MFA_TRACE_SCOPE("obs_test.disabled_span");
  }
  c.add(0);

  obs::set_enabled(false);
  const std::int64_t c0 = c.value();
  const std::int64_t h0 = h.count();
  const double g0 = g.value();
  const std::int64_t spans0 = obs::trace_total_recorded();
  const auto pool0 = mfa::tensor::StoragePool::instance().stats();

  for (int i = 0; i < 1000; ++i) {
    c.add(3);
    h.record(i);
    g.set(static_cast<double>(i));
    MFA_TRACE_SCOPE("obs_test.disabled_span");
  }

  EXPECT_EQ(c.value(), c0);
  EXPECT_EQ(h.count(), h0);
  EXPECT_DOUBLE_EQ(g.value(), g0);
  EXPECT_EQ(obs::trace_total_recorded(), spans0);
  // No allocation traffic reached the tensor allocator either: the pool's
  // counters (hits/misses/releases) are bit-identical across 1000 disabled
  // record calls.
  const auto pool1 = mfa::tensor::StoragePool::instance().stats();
  EXPECT_EQ(pool1.hits, pool0.hits);
  EXPECT_EQ(pool1.misses, pool0.misses);
  EXPECT_EQ(pool1.releases, pool0.releases);
  EXPECT_EQ(pool1.live_floats, pool0.live_floats);
}

TEST(ObsDisabled, ReenableResumesRecordingOnExistingHandles) {
  EnabledGuard guard;
  obs::Counter c = obs::counter("obs_test.reenable");
  obs::set_enabled(false);
  c.add(100);
  obs::set_enabled(true);
  const std::int64_t before = c.value();
  c.add(1);
  EXPECT_EQ(c.value(), before + 1);
}
