#include "common/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mfa::common {
namespace {

/// Resets the singleton around every test so armed points never leak.
class Fault : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
  FaultInjector& fi() { return FaultInjector::instance(); }
};

TEST_F(Fault, UnarmedPointNeverFiresAndRecordsNothing) {
  for (int i = 0; i < 5; ++i)
    EXPECT_FALSE(fi().should_fire("test.unarmed"));
  EXPECT_EQ(fi().hit_count("test.unarmed"), 0);
  EXPECT_EQ(fi().fire_count("test.unarmed"), 0);
  EXPECT_TRUE(fi().stats().empty());
}

TEST_F(Fault, OnceFiresExactlyOnFirstHit) {
  fi().arm_once("test.once");
  EXPECT_TRUE(fi().should_fire("test.once"));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fi().should_fire("test.once"));
  EXPECT_EQ(fi().hit_count("test.once"), 11);
  EXPECT_EQ(fi().fire_count("test.once"), 1);
}

TEST_F(Fault, NthFiresExactlyOnNthHit) {
  fi().arm_nth("test.nth", 3);
  EXPECT_FALSE(fi().should_fire("test.nth"));
  EXPECT_FALSE(fi().should_fire("test.nth"));
  EXPECT_TRUE(fi().should_fire("test.nth"));
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(fi().should_fire("test.nth"));
  EXPECT_EQ(fi().fire_count("test.nth"), 1);
}

TEST_F(Fault, AlwaysFiresEveryHitUntilDisarmed) {
  fi().arm_always("test.always");
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(fi().should_fire("test.always"));
  fi().disarm("test.always");
  EXPECT_FALSE(fi().should_fire("test.always"));
  EXPECT_EQ(fi().fire_count("test.always"), 4);
}

TEST_F(Fault, ProbabilityPatternIsDeterministicForAFixedSeed) {
  const auto pattern = [&](std::uint64_t seed) {
    fi().reset();
    fi().arm_probability("test.prob", 0.3, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(fi().should_fire("test.prob"));
    return fired;
  };
  const auto a = pattern(42);
  const auto b = pattern(42);
  EXPECT_EQ(a, b) << "same seed must reproduce the exact fire pattern";
  const auto c = pattern(43);
  EXPECT_NE(a, c) << "different seeds should give different patterns";
  // Roughly the requested rate (0.3 over 200 draws; generous bounds).
  const auto fires = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 30);
  EXPECT_LT(fires, 90);
}

TEST_F(Fault, ProbabilityPatternIsIndependentOfOtherPoints) {
  // Interleaving hits on an unrelated point must not shift the pattern:
  // the trigger hashes (seed, own hit index), not a shared stream.
  fi().arm_probability("test.prob", 0.5, 7);
  std::vector<bool> alone;
  for (int i = 0; i < 64; ++i) alone.push_back(fi().should_fire("test.prob"));
  fi().reset();
  fi().arm_probability("test.prob", 0.5, 7);
  fi().arm_always("test.noise");
  std::vector<bool> interleaved;
  for (int i = 0; i < 64; ++i) {
    (void)fi().should_fire("test.noise");
    interleaved.push_back(fi().should_fire("test.prob"));
  }
  EXPECT_EQ(alone, interleaved);
}

TEST_F(Fault, ProbabilityExtremes) {
  fi().arm_probability("test.never", 0.0, 1);
  fi().arm_probability("test.surely", 1.0, 1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(fi().should_fire("test.never"));
    EXPECT_TRUE(fi().should_fire("test.surely"));
  }
}

TEST_F(Fault, ResetClearsEverything) {
  fi().arm_always("test.a");
  (void)fi().should_fire("test.a");
  fi().reset();
  EXPECT_FALSE(fi().should_fire("test.a"));
  EXPECT_EQ(fi().hit_count("test.a"), 0);
  EXPECT_TRUE(fi().stats().empty());
}

TEST_F(Fault, StatsReportArmedPoints) {
  fi().arm_nth("test.s", 2);
  (void)fi().should_fire("test.s");
  (void)fi().should_fire("test.s");
  const auto stats = fi().stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "test.s");
  EXPECT_EQ(stats[0].hits, 2);
  EXPECT_EQ(stats[0].fires, 1);
}

TEST_F(Fault, MacroRespectsCompiledInMode) {
  // In fault-enabled builds the macro consults the registry; in Release it
  // is the literal `false` and the registry never sees the hit.
  fi().arm_always("test.macro");
  const bool fired = MFA_FAULT_POINT("test.macro");
  if (FaultInjector::compiled_in()) {
    EXPECT_TRUE(fired);
    EXPECT_EQ(fi().hit_count("test.macro"), 1);
  } else {
    EXPECT_FALSE(fired);
    EXPECT_EQ(fi().hit_count("test.macro"), 0);
  }
}

}  // namespace
}  // namespace mfa::common
