// Cross-module integration tests: the full data path from generator to
// trained prediction, and placement-quality properties of the flow.
#include <gtest/gtest.h>

#include <cmath>

#include "flow/flow.h"
#include "netlist/generator.h"
#include "place/legalizer.h"
#include "route/score.h"
#include "train/dataset.h"
#include "train/trainer.h"

namespace mfa {
namespace {

fpga::DeviceGrid test_device() {
  return fpga::DeviceGrid::make_xcvu3p_like(40, 32);
}

netlist::DesignSpec small_spec(const char* name) {
  netlist::DesignSpec spec = netlist::mlcad2023_spec(name);
  spec.lut_util *= 0.4;
  spec.ff_util *= 0.4;
  spec.dsp_util *= 0.6;
  spec.bram_util *= 0.6;
  return spec;
}

TEST(Integration, DatasetToTrainingImprovesOverChance) {
  const auto device = test_device();
  train::DatasetOptions dopt;
  dopt.grid = 32;
  dopt.placements_per_design = 3;
  dopt.placer_iterations = 60;
  auto samples = train::DatasetBuilder::build_for_design(
      small_spec("Design_116"), device, dopt);
  std::vector<train::Sample> train_set, eval_set;
  train::DatasetBuilder::split(samples, 3, train_set, eval_set);
  ASSERT_FALSE(train_set.empty());
  ASSERT_FALSE(eval_set.empty());

  models::ModelConfig config;
  config.grid = 32;
  config.base_channels = 4;
  config.transformer_layers = 1;
  auto model = models::make_model("ours", config);
  const auto before = train::Trainer::evaluate(*model, eval_set);
  train::TrainOptions topt;
  topt.epochs = 35;  // past the plateau-escape point at this scale
  topt.learning_rate = 3e-3f;
  train::Trainer::fit(*model, train_set, topt);
  const auto after = train::Trainer::evaluate(*model, eval_set);
  EXPECT_GT(after.acc, before.acc);
  EXPECT_LT(after.nrms, before.nrms + 1e-9);
}

TEST(Integration, FlowLegalisesAndScoresAllStrategies) {
  const auto device = test_device();
  const auto design =
      netlist::DesignGenerator::generate(small_spec("Design_190"), device);
  flow::FlowOptions options;
  options.placer.max_iterations = 80;
  options.min_gp_iterations = 60;
  options.post_inflation_iterations = 10;
  flow::RoutabilityDrivenPlacer placer_flow(design, device, options);
  for (const auto strategy :
       {flow::Strategy::Utda, flow::Strategy::Seu,
        flow::Strategy::MpkuImprove}) {
    const auto result = placer_flow.run(strategy);
    EXPECT_GE(result.s_ir, 1.0) << flow::to_string(strategy);
    EXPECT_GE(result.s_dr, 5.0) << flow::to_string(strategy);
    EXPECT_GT(result.s_score, 0.0) << flow::to_string(strategy);
  }
}

TEST(Integration, ConvergedPlacementBeatsEarlyStop) {
  // More GP iterations must not make routed congestion dramatically worse;
  // typically they improve it. Compare a 15-iteration placement with a
  // 150-iteration one on the same seed.
  const auto device = test_device();
  const auto design =
      netlist::DesignGenerator::generate(small_spec("Design_227"), device);
  const auto route_score = [&](std::int64_t iterations) {
    place::PlacementProblem problem(design, device);
    place::PlacerOptions popt;
    popt.seed = 5;
    place::GlobalPlacer placer(problem, popt);
    placer.init_random();
    placer.iterate(iterations);
    place::Placement placement = placer.placement();
    place::Legalizer::legalize_macros(problem, placement);
    std::vector<double> cx, cy;
    placement.expand(problem, cx, cy);
    route::RouterOptions ropt;
    ropt.grid_width = 32;
    ropt.grid_height = 32;
    ropt.short_capacity = 48;  // 32-grid tiles are ~2x wider than 64-grid
    ropt.global_capacity = 40;
    route::GlobalRouter router(design, device, ropt);
    router.initial_route(cx, cy);
    double total = 0.0;
    for (const auto v : router.analyze().label) total += v;
    return total;
  };
  EXPECT_LE(route_score(150), route_score(15) * 1.05);
}

TEST(Integration, CascadesStayIntactThroughWholeFlow) {
  const auto device = test_device();
  const auto design =
      netlist::DesignGenerator::generate(small_spec("Design_156"), device);
  place::PlacementProblem problem(design, device);
  place::PlacerOptions popt;
  popt.seed = 9;
  place::GlobalPlacer placer(problem, popt);
  placer.init_random();
  placer.iterate(60);
  place::Placement placement = placer.placement();
  ASSERT_TRUE(place::Legalizer::legalize_macros(problem, placement).success);
  ASSERT_EQ(place::Legalizer::check_macros(problem, placement), "");
  // Expand and verify each cascade occupies consecutive rows of one column.
  std::vector<double> cx, cy;
  placement.expand(problem, cx, cy);
  for (const auto& shape : design.cascades) {
    const double col = cx[static_cast<size_t>(shape.macros[0])];
    for (size_t k = 0; k < shape.macros.size(); ++k) {
      EXPECT_DOUBLE_EQ(cx[static_cast<size_t>(shape.macros[k])], col);
      EXPECT_NEAR(cy[static_cast<size_t>(shape.macros[k])],
                  cy[static_cast<size_t>(shape.macros[0])] +
                      static_cast<double>(k),
                  1e-9);
    }
  }
}

TEST(Integration, RegionConstrainedCellsConvergeIntoRegions) {
  const auto device = test_device();
  const auto design =
      netlist::DesignGenerator::generate(small_spec("Design_176"), device);
  place::PlacementProblem problem(design, device);
  place::PlacerOptions popt;
  popt.seed = 11;
  place::GlobalPlacer placer(problem, popt);
  placer.init_random();
  placer.iterate(100);
  const auto& placement = placer.placement();
  std::int64_t total = 0, inside = 0;
  for (size_t oi = 0; oi < problem.objects.size(); ++oi) {
    const auto& obj = problem.objects[oi];
    if (obj.region < 0) continue;
    ++total;
    const auto& region = design.regions[static_cast<size_t>(obj.region)];
    inside += region.contains(placement.x[oi], placement.y[oi]);
  }
  if (total > 0)
    EXPECT_GT(static_cast<double>(inside) / static_cast<double>(total), 0.9);
}

TEST(Integration, ScoreMonotoneInCongestion) {
  // A placement that routes with higher congestion levels must never get a
  // better (lower) S_IR.
  route::CongestionAnalysis low, high;
  for (auto& per_class : low.levels)
    for (auto& lm : per_class) lm.design_level = 3;
  for (auto& per_class : high.levels)
    for (auto& lm : per_class) lm.design_level = 6;
  EXPECT_LT(route::score::s_ir(low), route::score::s_ir(high));
}

}  // namespace
}  // namespace mfa
