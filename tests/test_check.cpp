// Tests for the MFA_CHECK invariant subsystem (src/common/check.h):
// macro semantics, message content, operand evaluation counts, DCHECK
// elision, the parallel_for exception path, and the finite-gradient guard.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace {

using mfa::Tensor;
using mfa::check::CheckError;

std::string message_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const CheckError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected CheckError";
  return {};
}

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(MFA_CHECK(1 + 1 == 2) << "never rendered");
  EXPECT_NO_THROW(MFA_CHECK_EQ(3, 3));
  EXPECT_NO_THROW(MFA_CHECK_LT(2, 3) << "context");
  EXPECT_NO_THROW(MFA_CHECK_BOUNDS(0, 1));
  EXPECT_NO_THROW(MFA_CHECK_FINITE(0.5f));
}

TEST(Check, FailureThrowsCheckError) {
  EXPECT_THROW(MFA_CHECK(false), CheckError);
  EXPECT_THROW(MFA_CHECK_EQ(1, 2), CheckError);
  EXPECT_THROW(MFA_CHECK_GE(1, 2) << " extra", CheckError);
  // CheckError is an invalid_argument (and so a logic_error).
  EXPECT_THROW(MFA_CHECK(false), std::invalid_argument);
  EXPECT_THROW(MFA_CHECK(false), std::logic_error);
}

TEST(Check, MessageCarriesFileExpressionAndContext) {
  const std::string msg =
      message_of([] { MFA_CHECK(2 < 1) << " while testing " << 42; });
  EXPECT_NE(msg.find("test_check.cpp"), std::string::npos) << msg;
  EXPECT_NE(msg.find("check failed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2 < 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("while testing 42"), std::string::npos) << msg;
}

TEST(Check, ComparisonMessageCarriesBothValues) {
  const std::string msg = message_of([] {
    const int lhs = 7, rhs = 9;
    MFA_CHECK_EQ(lhs, rhs) << " in test";
  });
  EXPECT_NE(msg.find("lhs == rhs"), std::string::npos) << msg;
  EXPECT_NE(msg.find("(7 vs 9)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("in test"), std::string::npos) << msg;
}

TEST(Check, ShapeMessageUsesCanonicalFormat) {
  const std::string msg = message_of([] {
    const std::vector<std::int64_t> a{2, 3}, b{4, 5, 6};
    MFA_CHECK_SHAPE(a, b) << " conv weight";
  });
  EXPECT_NE(msg.find("[2, 3]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("[4, 5, 6]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("conv weight"), std::string::npos) << msg;
}

TEST(Check, BoundsAndFiniteMessages) {
  const std::string bmsg = message_of([] { MFA_CHECK_BOUNDS(5, 3); });
  EXPECT_NE(bmsg.find("index 5"), std::string::npos) << bmsg;
  EXPECT_NE(bmsg.find("size 3"), std::string::npos) << bmsg;
  const std::string fmsg = message_of([] {
    const float bad = std::nanf("");
    MFA_CHECK_FINITE(bad);
  });
  EXPECT_NE(fmsg.find("is finite"), std::string::npos) << fmsg;
}

TEST(Check, OperandsEvaluateExactlyOnce) {
  int calls = 0;
  const auto count = [&calls] { return ++calls; };
  MFA_CHECK_GE(count(), 1) << "should pass";
  EXPECT_EQ(calls, 1);
  calls = 0;
  EXPECT_THROW(MFA_CHECK_LT(count(), 1), CheckError);
  EXPECT_EQ(calls, 1);
}

TEST(Check, SafeInUnbracedIfElse) {
  // Compile-time property: the macros must bind cleanly without braces.
  const auto probe = [](bool flag) {
    if (flag)
      MFA_CHECK_EQ(1, 1) << "then-branch";
    else
      MFA_CHECK_EQ(2, 2) << "else-branch";
  };
  EXPECT_NO_THROW(probe(true));
  EXPECT_NO_THROW(probe(false));
}

TEST(Check, DcheckMatchesBuildMode) {
#if MFA_DCHECK_IS_ON
  EXPECT_THROW(MFA_DCHECK(false), CheckError);
  EXPECT_THROW(MFA_DCHECK_EQ(1, 2), CheckError);
  int calls = 0;
  EXPECT_THROW(MFA_DCHECK_GT(([&] { return ++calls; })(), 5), CheckError);
  EXPECT_EQ(calls, 1);
#else
  // Compiled out: never throws and never evaluates its operands.
  int calls = 0;
  EXPECT_NO_THROW(MFA_DCHECK(false));
  EXPECT_NO_THROW(MFA_DCHECK_GT(([&] { return ++calls; })(), 5));
  EXPECT_EQ(calls, 0);
#endif
}

TEST(Check, CheckAllFiniteNamesOffendingIndex) {
  const float ok[3] = {1.0f, 2.0f, 3.0f};
  EXPECT_NO_THROW(mfa::check::check_all_finite(ok, 3, "ok buffer"));
  const float bad[3] = {1.0f, std::numeric_limits<float>::infinity(), 3.0f};
  try {
    mfa::check::check_all_finite(bad, 3, "grad of layer1");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("index 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("grad of layer1"), std::string::npos) << msg;
  }
}

// ---- acceptance criterion: a deliberate tensor shape mismatch throws
// CheckError whose message contains BOTH shapes via shape_str ----

TEST(Check, TensorShapeMismatchMessageShowsBothShapes) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({4, 5});
  try {
    Tensor c = mfa::ops::add(a, b);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(mfa::shape_str({2, 3})), std::string::npos) << msg;
    EXPECT_NE(msg.find(mfa::shape_str({4, 5})), std::string::npos) << msg;
  }
}

TEST(Check, MseLossShapeMismatchShowsBothShapes) {
  Tensor pred = Tensor::zeros({2, 3});
  Tensor target = Tensor::zeros({3, 2});
  try {
    mfa::ops::mse_loss(pred, target);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("[2, 3]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[3, 2]"), std::string::npos) << msg;
  }
}

TEST(Check, BackwardRequiresScalarRoot) {
  Tensor a = Tensor::ones({2, 2});
  a.set_requires_grad(true);
  Tensor y = mfa::ops::mul(a, a);
  EXPECT_THROW(y.backward(), CheckError);
}

// ---- finite-gradient guard ----

TEST(Check, FiniteGradGuardCatchesNaNGradients) {
  mfa::check::set_finite_grad_checks(true);
  Tensor a = Tensor::from_data({2}, {0.0f, 1.0f});
  a.set_requires_grad(true);
  // log(0) = -inf forward; backward 1/0 = inf gradient.
  Tensor y = mfa::ops::sum(mfa::ops::log(a));
  EXPECT_THROW(y.backward(), CheckError);
  mfa::check::set_finite_grad_checks(false);
  // Guard off: same graph back-propagates without throwing.
  Tensor b = Tensor::from_data({2}, {0.0f, 1.0f});
  b.set_requires_grad(true);
  Tensor z = mfa::ops::sum(mfa::ops::log(b));
  EXPECT_NO_THROW(z.backward());
}

// ---- parallel_for exception propagation (satellite of the same PR) ----

TEST(Check, ParallelForPropagatesWorkerException) {
  EXPECT_THROW(
      mfa::parallel_for(
          1000,
          [](std::int64_t begin, std::int64_t end) {
            for (std::int64_t i = begin; i < end; ++i)
              if (i == 617) throw std::runtime_error("worker 617");
          },
          /*grain=*/64),
      std::runtime_error);
}

TEST(Check, ParallelForExceptionStress) {
  // Many rounds with throwing workers: joins must stay clean (no terminate,
  // no deadlock) and every round must surface the failure.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    bool threw = false;
    try {
      mfa::parallel_for(
          256,
          [&](std::int64_t begin, std::int64_t end) {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (begin == 0) throw std::invalid_argument("boom");
            (void)end;
          },
          /*grain=*/16);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "round " << round;
    EXPECT_GE(ran.load(), 1);
  }
}

TEST(Check, ParallelForStillComputesWhenNoThrow) {
  std::vector<int> hit(1000, 0);
  mfa::parallel_for(
      1000,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i)
          hit[static_cast<size_t>(i)] = 1;
      },
      /*grain=*/64);
  for (int h : hit) EXPECT_EQ(h, 1);
}

}  // namespace
