#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace mfa {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NormalHasApproxUnitMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.fork(1);
  Rng child2 = parent.fork(1);
  // Two forks with the same tag at different parent states differ.
  EXPECT_NE(child.next_u64(), child2.next_u64());
}

TEST(Rng, ForkDeterministicGivenParentState) {
  Rng p1(5), p2(5);
  Rng c1 = p1.fork(3);
  Rng c2 = p2.fork(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, HashStableAndSensitive) {
  EXPECT_EQ(Rng::hash("Design_116"), Rng::hash("Design_116"));
  EXPECT_NE(Rng::hash("Design_116"), Rng::hash("Design_120"));
  EXPECT_NE(Rng::hash(""), Rng::hash("a"));
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace mfa
