#include <gtest/gtest.h>

#include <cmath>

#include "models/blocks.h"
#include "models/congestion_model.h"
#include "models/mfa_net.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace mfa::models {
namespace {

using namespace mfa::ops;

ModelConfig small_config() {
  ModelConfig config;
  config.grid = 32;
  config.base_channels = 4;
  config.transformer_layers = 1;
  config.transformer_heads = 2;
  config.seed = 11;
  return config;
}

TEST(Blocks, ResBlockDownHalvesAndMapsChannels) {
  Rng rng(1);
  ResBlockDown block(6, 12, rng);
  Tensor x = Tensor::zeros({2, 6, 16, 16});
  EXPECT_EQ(block.forward(x).shape(), (Shape{2, 12, 8, 8}));
}

TEST(Blocks, MfaBlockPreservesShape) {
  Rng rng(2);
  MfaBlock block(32, rng);
  Tensor x = Tensor::zeros({1, 32, 8, 8});
  EXPECT_EQ(block.forward(x).shape(), (Shape{1, 32, 8, 8}));
}

TEST(Blocks, MfaBlockAttentionGainsStartAtZero) {
  Rng rng(3);
  MfaBlock block(16, rng);
  EXPECT_EQ(block.alpha(), 0.0f);
  EXPECT_EQ(block.beta(), 0.0f);
}

TEST(Blocks, MfaBlockGainsReceiveGradient) {
  Rng rng(4);
  MfaBlock block(16, rng);
  Tensor x = Tensor::randn({1, 16, 4, 4}, rng, 1.0f);
  Tensor y = block.forward(x);
  sum(mul(y, y)).backward();
  // alpha/beta are the 2 scalar params; after one backward they have grads
  // flowing (possibly tiny but defined).
  const auto params = block.parameters();
  const auto names = block.parameter_names();
  bool saw_alpha = false;
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "alpha" || names[i] == "beta") {
      saw_alpha = true;
      EXPECT_EQ(params[i].numel(), 1);
    }
  }
  EXPECT_TRUE(saw_alpha);
}

TEST(Blocks, PatchTransformerRoundTripsShape) {
  Rng rng(5);
  PatchTransformer vit(16, 4, 4, 8, 2, 2, rng);
  Tensor x = Tensor::randn({2, 16, 4, 4}, rng);
  EXPECT_EQ(vit.forward(x).shape(), (Shape{2, 16, 4, 4}));
}

class ModelZoo : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelZoo, ForwardShapeMatchesClassesAndGrid) {
  auto model = make_model(GetParam(), small_config());
  Tensor x = Tensor::zeros({2, 6, 32, 32});
  Tensor logits = model->forward(x);
  EXPECT_EQ(logits.shape(), (Shape{2, 8, 32, 32}));
}

TEST_P(ModelZoo, PredictLevelsInRange) {
  auto model = make_model(GetParam(), small_config());
  Rng rng(6);
  Tensor x = Tensor::uniform({1, 6, 32, 32}, rng, 0.0f, 1.0f);
  Tensor levels = model->predict_levels(x);
  EXPECT_EQ(levels.shape(), (Shape{1, 32, 32}));
  for (std::int64_t i = 0; i < levels.numel(); ++i) {
    EXPECT_GE(levels.data()[i], 0.0f);
    EXPECT_LE(levels.data()[i], 7.0f);
    EXPECT_EQ(levels.data()[i], std::floor(levels.data()[i]));
  }
}

TEST_P(ModelZoo, PredictRestoresTrainingMode) {
  auto model = make_model(GetParam(), small_config());
  model->network().train(true);
  Tensor x = Tensor::zeros({1, 6, 32, 32});
  model->predict_levels(x);
  EXPECT_TRUE(model->network().is_training());
}

TEST_P(ModelZoo, DeterministicConstructionPerSeed) {
  auto a = make_model(GetParam(), small_config());
  auto b = make_model(GetParam(), small_config());
  const auto pa = a->network().parameters();
  const auto pb = b->network().parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i)
    EXPECT_EQ(pa[i].to_vector(), pb[i].to_vector());
}

TEST_P(ModelZoo, GradientsReachFirstLayer) {
  auto model = make_model(GetParam(), small_config());
  Rng rng(7);
  Tensor x = Tensor::uniform({1, 6, 32, 32}, rng, 0.0f, 1.0f);
  Tensor targets = Tensor::zeros({1, 32, 32});
  Tensor loss = cross_entropy(model->forward(x), targets);
  loss.backward();
  const auto params = model->network().parameters();
  double total = 0.0;
  for (const auto& p : params)
    for (const float g : p.grad().to_vector()) total += std::fabs(g);
  EXPECT_GT(total, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelZoo,
                         ::testing::Values("ours", "unet", "pgnn", "pros2"));

TEST(ModelFactory, RejectsUnknownName) {
  EXPECT_THROW(make_model("resnet50", small_config()), std::invalid_argument);
}

TEST(ModelFactory, RejectsBadGrid) {
  ModelConfig config = small_config();
  config.grid = 30;  // not divisible by 16
  EXPECT_THROW(make_model("ours", config), std::invalid_argument);
}

TEST(MfaNet, StageShapesMatchFig5) {
  ModelConfig config;
  config.grid = 64;
  config.base_channels = 8;
  MfaTransformerNet net(config);
  const auto shapes = net.stage_shapes();
  // Encoder: [C,H/2,W/2] .. [8C,H/16,W/16].
  EXPECT_EQ(shapes.encoder[0], (std::array<std::int64_t, 3>{8, 32, 32}));
  EXPECT_EQ(shapes.encoder[1], (std::array<std::int64_t, 3>{16, 16, 16}));
  EXPECT_EQ(shapes.encoder[2], (std::array<std::int64_t, 3>{32, 8, 8}));
  EXPECT_EQ(shapes.encoder[3], (std::array<std::int64_t, 3>{64, 4, 4}));
  EXPECT_EQ(shapes.bottleneck, (std::array<std::int64_t, 3>{64, 4, 4}));
  // Decoder: [2C,H/8], [C,H/4], [C/2,H/2], [classes,H].
  EXPECT_EQ(shapes.decoder[0], (std::array<std::int64_t, 3>{16, 8, 8}));
  EXPECT_EQ(shapes.decoder[1], (std::array<std::int64_t, 3>{8, 16, 16}));
  EXPECT_EQ(shapes.decoder[2], (std::array<std::int64_t, 3>{4, 32, 32}));
  EXPECT_EQ(shapes.decoder[3], (std::array<std::int64_t, 3>{8, 64, 64}));
}

TEST(MfaNet, HasMoreParametersThanPros2Twin) {
  // Ours = PROS2 + MFA blocks + transformer: strictly more capacity.
  const auto config = small_config();
  const auto ours = make_model("ours", config);
  const auto pros2 = make_model("pros2", config);
  EXPECT_GT(ours->network().num_parameters(),
            pros2->network().num_parameters());
}

TEST(MfaNet, TransformerDepthGrowsParameters) {
  ModelConfig shallow = small_config();
  shallow.transformer_layers = 1;
  ModelConfig deep = small_config();
  deep.transformer_layers = 3;
  EXPECT_GT(make_model("ours", deep)->network().num_parameters(),
            make_model("ours", shallow)->network().num_parameters());
}

// Overfit check: the full model must be able to memorise a single sample.
TEST(MfaNet, OverfitsSingleSample) {
  ModelConfig config = small_config();
  auto model = make_model("ours", config);
  Rng rng(8);
  Tensor x = Tensor::uniform({1, 6, 32, 32}, rng, 0.0f, 1.0f);
  // Target: a quadrant pattern of levels.
  Tensor y = Tensor::zeros({1, 32, 32});
  for (std::int64_t i = 0; i < 32; ++i)
    for (std::int64_t j = 0; j < 32; ++j)
      y.set({0, i, j}, static_cast<float>((i < 16 ? 0 : 1) + (j < 16 ? 0 : 2)));
  nn::Adam opt(model->network().parameters(), 3e-3f);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 300; ++step) {
    opt.zero_grad();
    Tensor loss = cross_entropy(model->forward(x), y);
    loss.backward();
    opt.step();
    if (step == 0) first = loss.item();
    last = loss.item();
  }
  EXPECT_LT(last, first * 0.5f);
}

}  // namespace
}  // namespace mfa::models
