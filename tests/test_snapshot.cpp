// Weight-snapshot manifest validation, zero-copy install, and the
// checkpoint-to-snapshot load path (including the typed rejection of
// wrong-architecture and duplicate-entry checkpoint files).
#include "nn/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "models/congestion_model.h"
#include "nn/checkpoint.h"
#include "tensor/ops.h"

namespace mfa::nn {
namespace {

models::ModelConfig small_config(std::uint64_t seed = 11) {
  models::ModelConfig config;
  config.grid = 16;
  config.base_channels = 2;
  config.transformer_layers = 1;
  config.transformer_heads = 2;
  config.seed = seed;
  return config;
}

std::string temp_path(const char* tag) {
  return std::string("/tmp/mfa_snap_") + tag + ".bin";
}

Tensor small_features(std::uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::uniform({1, 6, 16, 16}, rng, 0.0f, 1.0f);
}

TEST(Snapshot, RoundTripsParametersBetweenModels) {
  auto a = models::make_model("ours", small_config(11));
  auto b = models::make_model("ours", small_config(22));  // different init
  const Tensor features = small_features();
  const auto before = b->predict_levels(features).to_vector();

  WeightSnapshot snap = snapshot_parameters(a->network());
  validate_snapshot(snap, b->network());
  install_snapshot(snap, b->network());

  const auto from_a = a->predict_levels(features).to_vector();
  const auto from_b = b->predict_levels(features).to_vector();
  EXPECT_EQ(from_a, from_b);
  EXPECT_NE(before, from_b);  // the swap actually changed the weights
}

TEST(Snapshot, InstallSharesStorageWithoutCopying) {
  auto model = models::make_model("ours", small_config());
  WeightSnapshot snap = snapshot_parameters(model->network());
  install_snapshot(snap, model->network());
  // After install the module's parameters read the snapshot's blocks: same
  // underlying pointer, not a float copy.
  const auto params = model->network().parameters();
  const auto names = model->network().parameter_names();
  for (const auto& e : snap.entries) {
    for (size_t i = 0; i < params.size(); ++i) {
      if (names[i] != e.name) continue;
      EXPECT_EQ(params[i].impl()->data.data(), e.data.data())
          << "parameter '" << e.name << "' was copied, not shared";
    }
  }
}

TEST(Snapshot, SnapshotIsIsolatedFromLaterTraining) {
  auto model = models::make_model("ours", small_config());
  WeightSnapshot snap = snapshot_parameters(model->network());
  const auto pinned = snap.entries.front().data.data()[0];
  // Mutating the live model must not write through the snapshot (it deep
  // copied at capture time).
  auto params = model->network().parameters();
  params.front().data()[0] += 1.0f;
  EXPECT_EQ(snap.entries.front().data.data()[0], pinned);
}

TEST(Snapshot, ValidateRejectsEveryManifestMismatch) {
  auto model = models::make_model("ours", small_config());
  const WeightSnapshot good = snapshot_parameters(model->network());

  {
    WeightSnapshot s = good;
    s.entries.pop_back();
    try {
      validate_snapshot(s, model->network());
      FAIL() << "count mismatch accepted";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.kind(), SnapshotError::Kind::kCountMismatch);
    }
  }
  {
    WeightSnapshot s = good;
    s.entries[1] = s.entries[0];  // duplicate + unknown replaced slot
    try {
      validate_snapshot(s, model->network());
      FAIL() << "duplicate entry accepted";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.kind(), SnapshotError::Kind::kDuplicateName);
    }
  }
  {
    WeightSnapshot s = good;
    s.entries[0].name += ".renamed";
    try {
      validate_snapshot(s, model->network());
      FAIL() << "unknown parameter accepted";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.kind(), SnapshotError::Kind::kUnknownParameter);
    }
  }
  {
    WeightSnapshot s = good;
    s.entries[0].shape.push_back(1);  // same numel, extra axis
    try {
      validate_snapshot(s, model->network());
      FAIL() << "rank mismatch accepted";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.kind(), SnapshotError::Kind::kRankMismatch);
    }
  }
  {
    WeightSnapshot s = good;
    // Find an entry with rank >= 2 and swap two unequal dims if possible;
    // otherwise just perturb a dim. Either way numel-compatible storage
    // stays, so only the shape check can catch it.
    for (auto& e : s.entries) {
      if (e.shape.size() < 1) continue;
      e.shape[0] += 1;
      e.data.assign(shape_numel(e.shape), 0.0f);
      break;
    }
    try {
      validate_snapshot(s, model->network());
      FAIL() << "shape mismatch accepted";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.kind(), SnapshotError::Kind::kShapeMismatch);
    }
  }
  {
    WeightSnapshot s = good;
    s.entries[0].data.assign(
        static_cast<std::int64_t>(s.entries[0].data.size()) + 1, 0.0f);
    try {
      validate_snapshot(s, model->network());
      FAIL() << "size mismatch accepted";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.kind(), SnapshotError::Kind::kSizeMismatch);
    }
  }
  // And the untouched manifest still validates.
  EXPECT_NO_THROW(validate_snapshot(good, model->network()));
}

TEST(Snapshot, LoadSnapshotRoundTripsThroughACheckpointFile) {
  const std::string path = temp_path("snap_roundtrip.ckpt");
  auto a = models::make_model("ours", small_config(11));
  CheckpointMeta meta;
  meta.epoch = 17;
  meta.learning_rate = 0.125f;
  save_checkpoint(a->network(), path, meta);

  WeightSnapshot snap = load_snapshot(path);
  EXPECT_EQ(snap.meta.epoch, 17);
  EXPECT_EQ(snap.meta.learning_rate, 0.125f);

  auto b = models::make_model("ours", small_config(22));
  validate_snapshot(snap, b->network());
  install_snapshot(snap, b->network());
  const Tensor features = small_features();
  EXPECT_EQ(a->predict_levels(features).to_vector(),
            b->predict_levels(features).to_vector());
  std::remove(path.c_str());
}

TEST(Snapshot, WrongArchitectureCheckpointIsRejectedBeforeInstall) {
  // The serving bugfix this suite pins: a checkpoint from a *different*
  // model must be rejected by the manifest (typed error), never partially
  // or silently loaded.
  const std::string path = temp_path("snap_wrong_arch.ckpt");
  auto unet = models::make_model("unet", small_config());
  save_checkpoint(unet->network(), path);

  auto ours = models::make_model("ours", small_config());
  WeightSnapshot snap = load_snapshot(path);  // parsing alone is fine
  EXPECT_THROW(validate_snapshot(snap, ours->network()), SnapshotError);
  std::remove(path.c_str());
}

// Builds a syntactically valid MFACKPT2 image with one entry per given name
// (each shape [2], floats {1,2}) and a correct CRC footer.
std::string write_checkpoint_with_names(const char* tag,
                                        const std::vector<std::string>& names) {
  std::string image = "MFACKPT2";
  const auto put = [&image](const void* p, size_t n) {
    image.append(reinterpret_cast<const char*>(p), n);
  };
  const std::uint32_t has_meta = 0;
  put(&has_meta, 4);
  const std::uint64_t count = names.size();
  put(&count, 8);
  for (const auto& name : names) {
    const std::uint32_t name_len = static_cast<std::uint32_t>(name.size());
    put(&name_len, 4);
    image += name;
    const std::uint32_t rank = 1;
    put(&rank, 4);
    const std::int64_t dim = 2;
    put(&dim, 8);
    const float data[2] = {1.0f, 2.0f};
    put(data, 8);
  }
  const std::uint32_t crc = crc32(image.data(), image.size());
  put(&crc, 4);
  const std::string path = temp_path(tag);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  out.close();
  return path;
}

struct TwoParam : Module {
  Tensor w = register_parameter(
      "w", Tensor::from_data({2}, {0.0f, 0.0f}, /*requires_grad=*/true));
  Tensor b = register_parameter(
      "b", Tensor::from_data({2}, {0.0f, 0.0f}, /*requires_grad=*/true));
  Tensor forward(const Tensor& x) override { return x; }
};

TEST(Snapshot, DuplicateEntriesInACheckpointFileAreRejectedTyped) {
  const std::string path = write_checkpoint_with_names("dup_snap", {"w", "w"});
  try {
    load_snapshot(path);
    FAIL() << "duplicate-entry checkpoint parsed into a snapshot";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kDuplicateName);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadCheckpointRejectsDuplicateEntries) {
  // The silent-load bug this pins: a file holding {w, w} passes the count
  // check against a {w, b} module, loads w twice (second write wins) and
  // leaves b silently at its initialised value. The duplicate guard must
  // reject it with a typed error instead.
  const std::string path = write_checkpoint_with_names("dup_load", {"w", "w"});
  TwoParam module;
  try {
    load_checkpoint(module, path);
    FAIL() << "duplicate-entry checkpoint loaded silently";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kDuplicateName);
  }
  // b was never touched by the rejected load.
  EXPECT_EQ(module.b.to_vector(), (std::vector<float>{0.0f, 0.0f}));

  // The equivalent well-formed file still loads.
  const std::string good =
      write_checkpoint_with_names("dup_good", {"w", "b"});
  EXPECT_NO_THROW(load_checkpoint(module, good));
  EXPECT_EQ(module.w.to_vector(), (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(module.b.to_vector(), (std::vector<float>{1.0f, 2.0f}));
  std::remove(path.c_str());
  std::remove(good.c_str());
}

TEST(Snapshot, LoadSnapshotVerifiesCrcAndTruncation) {
  const std::string path = temp_path("snap_corrupt.ckpt");
  auto model = models::make_model("ours", small_config());
  save_checkpoint(model->network(), path);

  // Flip one byte in the middle: the CRC footer must catch it.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(64);
    char b = 0;
    f.seekg(64);
    f.read(&b, 1);
    b ^= 0x20;
    f.seekp(64);
    f.write(&b, 1);
  }
  EXPECT_THROW(load_snapshot(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mfa::nn
