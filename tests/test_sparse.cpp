// Test battery for the sparse op family (tensor/ops_sparse.cpp) and the
// LHNN lattice-hypergraph predictor built on it.
//
// The contract under test mirrors the dense kernels': every op gradchecks,
// and every scatter-style reduction is BIT-identical across MFA_EXEC in
// {seq, graph} x MFA_THREADS in {1, 4} x MFA_POOL in {on, off}, because the
// accumulation runs through a fixed slot partition of the index dimension
// (never a thread-count-dependent one). Index hardening: out-of-range ids
// throw check::CheckError in every build type (validated during the decode
// pass); non-integral ids are a Debug-only MFA_DCHECK.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "models/congestion_model.h"
#include "models/lhnn.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "tensor/storage.h"
#include "tensor/tape.h"
#include "tensor/tensor.h"

namespace mfa {
namespace {

using ops::add_scalar;
using ops::gather_rows;
using ops::index_select;
using ops::mul;
using ops::relu;
using ops::scatter_add_rows;
using ops::segment_mean;
using ops::segment_sum;
using ops::sum;
using tensor::Executor;
using tensor::StoragePool;
using tensor::Tape;

/// Pins executor mode and pool-thread count; restores on exit (same idiom as
/// test_tape's TapeEnv — the tape knobs are thread-local).
class SparseEnv {
 public:
  SparseEnv(Executor exec, int threads, bool fusion = true)
      : exec_prev_(Tape::current().executor()),
        fusion_prev_(Tape::current().fusion_enabled()),
        threads_prev_(common::ThreadPool::instance().size()) {
    Tape::current().set_executor_for_testing(exec);
    Tape::current().set_fusion_for_testing(fusion);
    common::ThreadPool::instance().resize_for_testing(threads);
  }
  ~SparseEnv() {
    common::ThreadPool::instance().resize_for_testing(threads_prev_);
    Tape::current().set_fusion_for_testing(fusion_prev_);
    Tape::current().set_executor_for_testing(exec_prev_);
  }

 private:
  Executor exec_prev_;
  bool fusion_prev_;
  int threads_prev_;
};

Tensor index_of(std::vector<float> ids) {
  const auto n = static_cast<std::int64_t>(ids.size());
  return Tensor::from_data({n}, std::move(ids));
}

Tensor make_input(Shape shape, int seed, float scale = 1.0f) {
  Rng rng(static_cast<std::uint64_t>(seed));
  return Tensor::randn(std::move(shape), rng, scale, /*requires_grad=*/true);
}

// ---- forward semantics ---------------------------------------------------

TEST(SparseForward, GatherRowsCopiesSelectedRows) {
  Tensor x = Tensor::from_data({4, 2}, {0, 1, 10, 11, 20, 21, 30, 31});
  Tensor out = gather_rows(x, index_of({2, 0, 2, 3}));
  ASSERT_EQ(out.shape(), (Shape{4, 2}));
  EXPECT_EQ(out.to_vector(),
            (std::vector<float>{20, 21, 0, 1, 20, 21, 30, 31}));
}

TEST(SparseForward, ScatterAddAccumulatesDuplicatesAndZerosUntouchedRows) {
  Tensor src = Tensor::from_data({3, 2}, {1, 2, 10, 20, 100, 200});
  Tensor out = scatter_add_rows(src, index_of({1, 1, 0}), 3);
  ASSERT_EQ(out.shape(), (Shape{3, 2}));
  EXPECT_EQ(out.to_vector(), (std::vector<float>{100, 200, 11, 22, 0, 0}));
}

TEST(SparseForward, SegmentSumAndMeanHandleEmptySegments) {
  Tensor src = Tensor::from_data({4, 1}, {1, 3, 5, 7});
  Tensor s = segment_sum(src, index_of({0, 2, 0, 2}), 4);
  EXPECT_EQ(s.to_vector(), (std::vector<float>{6, 0, 10, 0}));
  Tensor m = segment_mean(src, index_of({0, 2, 0, 2}), 4);
  // Empty segments (1 and 3) stay exactly zero under the mean too.
  EXPECT_EQ(m.to_vector(), (std::vector<float>{3, 0, 5, 0}));
}

TEST(SparseForward, IndexSelectGathersAlongInnerDim) {
  // x [2, 3, 2]: value = 100*r + 10*j + k.
  std::vector<float> vals;
  for (std::int64_t r = 0; r < 2; ++r)
    for (std::int64_t j = 0; j < 3; ++j)
      for (std::int64_t k = 0; k < 2; ++k)
        vals.push_back(static_cast<float>(100 * r + 10 * j + k));
  Tensor x = Tensor::from_data({2, 3, 2}, vals);
  Tensor out = index_select(x, 1, index_of({2, 0}));
  ASSERT_EQ(out.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(out.to_vector(),
            (std::vector<float>{20, 21, 0, 1, 120, 121, 100, 101}));
  // Negative dim resolves like the reductions do.
  Tensor last = index_select(x, -1, index_of({1}));
  ASSERT_EQ(last.shape(), (Shape{2, 3, 1}));
  EXPECT_EQ(last.to_vector(), (std::vector<float>{1, 11, 21, 101, 111, 121}));
}

TEST(SparseForward, EmptyIndexProducesEmptyGatherAndZeroScatter) {
  Tensor x = make_input({3, 2}, 5);
  Tensor g = gather_rows(x, Tensor::zeros({0}));
  EXPECT_EQ(g.shape(), (Shape{0, 2}));
  Tensor s = scatter_add_rows(Tensor::zeros({0, 2}), Tensor::zeros({0}), 3);
  EXPECT_EQ(s.to_vector(), (std::vector<float>{0, 0, 0, 0, 0, 0}));
  // Backward through an empty gather is a no-op, not a crash.
  x.zero_grad();
  sum(g).backward();
  EXPECT_EQ(x.grad().to_vector(), (std::vector<float>{0, 0, 0, 0, 0, 0}));
}

// ---- gradcheck battery ---------------------------------------------------

// Index patterns the battery sweeps: duplicates, a permutation, out-of-order
// repeats, and a pattern leaving rows/segments unreferenced. Ids stay valid
// for a row extent of 5 and an index length of 6 (scatter/segment sources).
const std::vector<std::vector<float>> kPatterns = {
    {0, 0, 0, 1, 1, 2},  // heavy duplication
    {4, 2, 0, 1, 3, 2},  // out-of-order with a repeat
    {3, 4, 1, 0, 2, 3},  // near-permutation
    {0, 2, 0, 2, 0, 2},  // rows 1, 3, 4 never referenced
};

class SparseGradcheck
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  Executor exec() const {
    return std::get<0>(GetParam()) == 0 ? Executor::kSeq : Executor::kGraph;
  }
  int threads() const { return std::get<1>(GetParam()); }
};

TEST_P(SparseGradcheck, GatherRows) {
  const SparseEnv env(exec(), threads());
  for (const auto& pattern : kPatterns) {
    Tensor x = make_input({5, 3}, 11, 0.5f);
    const auto result = gradcheck(
        [&] {
          Tensor g = gather_rows(x, index_of(pattern));
          return sum(mul(g, g));
        },
        {x});
    EXPECT_TRUE(result.ok) << result.detail;
  }
}

TEST_P(SparseGradcheck, ScatterAddRows) {
  const SparseEnv env(exec(), threads());
  for (const auto& pattern : kPatterns) {
    Tensor src = make_input({6, 2}, 13, 0.5f);
    const auto result = gradcheck(
        [&] {
          Tensor s = scatter_add_rows(src, index_of(pattern), 5);
          return sum(mul(s, s));
        },
        {src});
    EXPECT_TRUE(result.ok) << result.detail;
  }
}

TEST_P(SparseGradcheck, SegmentSumAndMean) {
  const SparseEnv env(exec(), threads());
  for (const auto& pattern : kPatterns) {
    Tensor src = make_input({6, 2}, 17, 0.5f);
    const auto sum_result = gradcheck(
        [&] {
          Tensor s = segment_sum(src, index_of(pattern), 5);
          return sum(mul(s, s));
        },
        {src});
    EXPECT_TRUE(sum_result.ok) << sum_result.detail;
    const auto mean_result = gradcheck(
        [&] {
          Tensor m = segment_mean(src, index_of(pattern), 5);
          return sum(mul(m, m));
        },
        {src});
    EXPECT_TRUE(mean_result.ok) << mean_result.detail;
  }
}

TEST_P(SparseGradcheck, IndexSelectInnerDim) {
  const SparseEnv env(exec(), threads());
  for (const auto& pattern : kPatterns) {
    Tensor x = make_input({2, 5, 3}, 19, 0.5f);
    const auto result = gradcheck(
        [&] {
          Tensor g = index_select(x, 1, index_of(pattern));
          return sum(mul(g, g));
        },
        {x});
    EXPECT_TRUE(result.ok) << result.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ExecThreads, SparseGradcheck,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(1, 4)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == 0 ? "seq" : "graph") +
             "_t" + std::to_string(std::get<1>(info.param));
    });

// ---- tape-fusion interaction ---------------------------------------------

TEST(SparseFusion, ElementwiseChainDoesNotFuseAcrossScatter) {
  // add_scalar -> relu (both elementwise) feed a scatter_add_rows, whose
  // backward is a reduction: the planner may fuse the chain internally but
  // must stop at the scatter node (it is not flagged elementwise).
  const SparseEnv env(Executor::kGraph, 4, /*fusion=*/true);
  const Tensor idx = index_of({1, 1, 0, 3, 1, 2});
  auto run = [&](Executor exec) {
    const SparseEnv inner(exec, 4);
    Tensor src = make_input({6, 2}, 23, 0.5f);
    src.zero_grad();
    Tensor y = relu(add_scalar(src, 0.3f));
    Tensor s = scatter_add_rows(y, idx, 4);
    sum(mul(s, s)).backward();
    return src.grad().to_vector();
  };
  const auto graph_grads = run(Executor::kGraph);
  // Exactly the relu<-add_scalar link fused; four tasks remain (sum-of-
  // squares root, mul, scatter, fused chain), proving the chain did not
  // merge into (or across) the reduction node.
  EXPECT_EQ(Tape::current().last_plan().fused_nodes, 1);
  EXPECT_EQ(Tape::current().last_plan().tasks, 4);
  const auto seq_grads = run(Executor::kSeq);
  ASSERT_EQ(graph_grads.size(), seq_grads.size());
  EXPECT_EQ(0, std::memcmp(graph_grads.data(), seq_grads.data(),
                           graph_grads.size() * sizeof(float)));
}

// ---- bitwise determinism across the config matrix ------------------------

struct SparseConfig {
  int threads;
  bool pool;
  Executor exec;
};

/// Forward + backward of a composite graph using all four reduction-bearing
/// ops; returns output data and input gradients as one flat float vector
/// for bitwise comparison.
std::vector<float> sparse_pipeline_bits(int seed) {
  Tensor x = make_input({8, 4}, seed, 0.5f);
  const Tensor idx = index_of({7, 3, 3, 0, 5, 3, 7, 1, 1, 2, 6, 4});
  const Tensor seg = index_of({0, 4, 2, 2, 0, 1, 4, 4, 3, 1, 0, 2});
  x.zero_grad();
  Tensor pin = gather_rows(x, idx);                  // [12, 4]
  Tensor net = segment_mean(pin, seg, 5);            // [5, 4]
  Tensor back = gather_rows(net, seg);               // [12, 4]
  Tensor cells = scatter_add_rows(back, idx, 8);     // [8, 4]
  Tensor out = segment_sum(mul(cells, cells), index_of({0, 1, 0, 1, 0, 1, 0, 1}), 2);
  sum(out).backward();
  std::vector<float> bits = cells.to_vector();
  const auto g = x.grad().to_vector();
  bits.insert(bits.end(), g.begin(), g.end());
  return bits;
}

TEST(SparseDeterminism, BitwiseIdenticalAcrossThreadsPoolAndExec) {
  auto& thread_pool = common::ThreadPool::instance();
  auto& storage_pool = StoragePool::instance();
  auto& tape = Tape::current();
  const bool pool_prev = storage_pool.enabled();
  const Executor exec_prev = tape.executor();
  const int threads_prev = thread_pool.size();

  const SparseConfig configs[] = {
      {1, true, Executor::kSeq},   {4, true, Executor::kSeq},
      {1, false, Executor::kSeq},  {4, false, Executor::kSeq},
      {1, true, Executor::kGraph}, {4, true, Executor::kGraph},
      {1, false, Executor::kGraph}, {4, false, Executor::kGraph},
  };
  for (const int seed : {3, 29, 71}) {
    std::vector<std::vector<float>> runs;
    for (const auto& cfg : configs) {
      thread_pool.resize_for_testing(cfg.threads);
      storage_pool.set_enabled(cfg.pool);
      tape.set_executor_for_testing(cfg.exec);
      runs.push_back(sparse_pipeline_bits(seed));
    }
    thread_pool.resize_for_testing(threads_prev);
    storage_pool.set_enabled(pool_prev);
    tape.set_executor_for_testing(exec_prev);
    for (size_t i = 1; i < runs.size(); ++i) {
      ASSERT_EQ(runs[0].size(), runs[i].size());
      EXPECT_EQ(0, std::memcmp(runs[0].data(), runs[i].data(),
                               runs[0].size() * sizeof(float)))
          << "seed " << seed << ": config " << i << " (threads="
          << configs[i].threads << ", pool=" << (configs[i].pool ? "on" : "off")
          << ", exec=" << (configs[i].exec == Executor::kSeq ? "seq" : "graph")
          << ") diverged from config 0";
    }
  }
}

// ---- index hardening -----------------------------------------------------

TEST(SparseHardening, OutOfRangeIdsThrowCheckErrorInEveryBuild) {
  Tensor x = make_input({4, 2}, 31);
  // Too-high id, negative id: both are caught by the always-on decode-pass
  // MFA_CHECK, including in NDEBUG builds (the inner kernels stay
  // unchecked — that is the documented Release fast path).
  EXPECT_THROW((void)gather_rows(x, index_of({0, 4})), check::CheckError);
  EXPECT_THROW((void)gather_rows(x, index_of({-1})), check::CheckError);
  Tensor src = make_input({3, 2}, 37);
  EXPECT_THROW((void)scatter_add_rows(src, index_of({0, 1, 3}), 3),
               check::CheckError);
  EXPECT_THROW((void)segment_sum(src, index_of({0, -2, 1}), 3),
               check::CheckError);
  EXPECT_THROW((void)segment_mean(src, index_of({5, 0, 1}), 3),
               check::CheckError);
  EXPECT_THROW((void)index_select(x, 1, index_of({2})), check::CheckError);
}

TEST(SparseHardening, MalformedArgumentsThrowCheckError) {
  Tensor x = make_input({4, 2}, 41);
  Tensor src = make_input({3, 2}, 43);
  // Index must be 1-D.
  EXPECT_THROW((void)gather_rows(x, Tensor::zeros({2, 2})),
               check::CheckError);
  // Index length must match the source rows for scatter/segment ops.
  EXPECT_THROW((void)scatter_add_rows(src, index_of({0, 1}), 3),
               check::CheckError);
  // num_rows must be positive.
  EXPECT_THROW((void)scatter_add_rows(src, index_of({0, 1, 2}), 0),
               check::CheckError);
  // index_select dim must be in range.
  EXPECT_THROW((void)index_select(x, 2, index_of({0})), check::CheckError);
}

TEST(SparseHardening, NonIntegralIdsAreADebugCheck) {
  if (!MFA_DCHECK_IS_ON)
    GTEST_SKIP() << "MFA_DCHECK compiled out (NDEBUG build)";
  Tensor x = make_input({4, 2}, 47);
  EXPECT_THROW((void)gather_rows(x, index_of({1.5f})), check::CheckError);
}

// ---- LHNN predictor ------------------------------------------------------

models::ModelConfig lhnn_config() {
  models::ModelConfig config;
  config.grid = 16;
  config.base_channels = 4;
  config.seed = 9;
  return config;
}

TEST(Lhnn, ForwardShapesAndHypergraphSize) {
  auto model = models::make_model("lhnn", lhnn_config());
  auto* lhnn = dynamic_cast<models::LhnnModel*>(model.get());
  ASSERT_NE(lhnn, nullptr);
  // Windows of 4 at stride 2 on a 16-grid: 7x7 nets, 16 pins each.
  EXPECT_EQ(lhnn->num_nets(), 49);
  EXPECT_EQ(lhnn->num_pins(), 49 * 16);
  Rng rng(2);
  Tensor feats = Tensor::randn({2, 6, 16, 16}, rng, 1.0f);
  Tensor logits = model->forward(feats);
  EXPECT_EQ(logits.shape(), (Shape{2, 8, 16, 16}));
  Tensor levels = model->predict_levels(feats);
  EXPECT_EQ(levels.shape(), (Shape{2, 16, 16}));
}

TEST(Lhnn, AuxiliaryLossOnlyInTrainingModeWithMoveOutSemantics) {
  auto model = models::make_model("lhnn", lhnn_config());
  Rng rng(3);
  Tensor feats = Tensor::randn({1, 6, 16, 16}, rng, 1.0f);
  model->network().train(true);
  (void)model->forward(feats);
  Tensor aux = model->take_auxiliary_loss();
  ASSERT_TRUE(aux.defined());
  EXPECT_EQ(aux.numel(), 1);
  // Move-out: a second take returns nothing.
  EXPECT_FALSE(model->take_auxiliary_loss().defined());
  // Inference path (predict_levels runs under NoGrad + eval): no aux loss.
  (void)model->predict_levels(feats);
  EXPECT_FALSE(model->take_auxiliary_loss().defined());
}

/// One full LHNN training step (CE + auxiliary head, multi-root backward);
/// returns every parameter gradient as flat floats.
std::vector<float> lhnn_step_grads() {
  auto model = models::make_model("lhnn", lhnn_config());
  Rng rng(5);
  Tensor feats = Tensor::randn({2, 6, 16, 16}, rng, 1.0f);
  std::vector<float> label_vals(2 * 16 * 16);
  for (auto& v : label_vals)
    v = static_cast<float>(rng.next_u64() % 8);
  Tensor labels = Tensor::from_data({2, 16, 16}, label_vals);
  model->network().train(true);
  model->network().zero_grad();
  Tensor logits = model->forward(feats);
  Tensor loss = ops::cross_entropy(logits, labels);
  Tensor aux = model->take_auxiliary_loss();
  EXPECT_TRUE(aux.defined());
  Tensor::backward_multi({loss, aux});
  std::vector<float> flat;
  for (auto& p : model->network().parameters()) {
    const auto g = p.grad().to_vector();
    flat.insert(flat.end(), g.begin(), g.end());
  }
  return flat;
}

TEST(Lhnn, TrainStepBitwiseAcrossExecAndThreads) {
  const SparseEnv base(Executor::kSeq, 1);
  const auto reference = lhnn_step_grads();
  ASSERT_FALSE(reference.empty());
  bool any_nonzero = false;
  for (float g : reference) any_nonzero = any_nonzero || g != 0.0f;
  EXPECT_TRUE(any_nonzero);
  for (const Executor exec : {Executor::kSeq, Executor::kGraph}) {
    for (const int threads : {1, 4}) {
      const SparseEnv env(exec, threads);
      const auto grads = lhnn_step_grads();
      ASSERT_EQ(reference.size(), grads.size());
      EXPECT_EQ(0, std::memcmp(reference.data(), grads.data(),
                               reference.size() * sizeof(float)))
          << "exec=" << (exec == Executor::kSeq ? "seq" : "graph")
          << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace mfa
