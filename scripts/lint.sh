#!/usr/bin/env bash
# Lint gate: clang-tidy (warnings-as-errors profile) + header self-containment.
#
# Usage: scripts/lint.sh [build-dir]
#
# Two independent checks, both must pass:
#
#   1. clang-tidy over every src/**/*.cpp with the curated profile in
#      .clang-tidy. The WarningsAsErrors subset there (use-after-move,
#      dangling handles, sizeof traps, ...) turns findings into a non-zero
#      exit; everything else is advisory output. Skipped with a warning when
#      clang-tidy is not installed (CI containers without LLVM still pass) —
#      the header check below runs regardless, it only needs g++.
#
#   2. Header self-containment: every public header under src/ must compile
#      standalone (g++ -fsyntax-only) — no hidden dependency on includes a
#      particular .cpp happens to pull in first. This is the check that
#      actually gates on minimal toolchains, so a header that forgets its
#      own <cstdint> fails CI even where clang-tidy is unavailable.
#
# A configured build dir with compile_commands.json is required for the
# clang-tidy step; lint.sh configures one itself if missing.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

status=0

# ---- 1. clang-tidy -------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing; configuring..."
    cmake -B "${BUILD_DIR}" -S . >/dev/null
  fi
  mapfile -t sources < <(find src -name '*.cpp' | sort)
  echo "lint.sh: clang-tidy over ${#sources[@]} files (WarningsAsErrors per .clang-tidy)..."
  for f in "${sources[@]}"; do
    clang-tidy -p "${BUILD_DIR}" --quiet "$f" || status=1
  done
else
  echo "lint.sh: WARNING: clang-tidy not found on PATH; skipping static analysis." >&2
  echo "lint.sh:          (header self-containment still runs below.)" >&2
fi

# ---- 2. header self-containment ------------------------------------------
# Each header is included from a one-line wrapper TU (not compiled as the
# main file directly: that trips gcc's "#pragma once in main file" warning,
# which would be a false positive under -Werror).
mapfile -t headers < <(find src -name '*.h' | sort)
echo "lint.sh: header self-containment over ${#headers[@]} headers..."
hdr_fail=0
for h in "${headers[@]}"; do
  if ! echo "#include \"${h#src/}\"" \
      | g++ -std=c++20 -Wall -Wextra -Werror -fsyntax-only -I src -x c++ -; then
    echo "lint.sh: header not self-contained: $h" >&2
    hdr_fail=1
  fi
done
if [[ $hdr_fail -ne 0 ]]; then
  status=1
else
  echo "lint.sh: all headers self-contained."
fi

if [[ $status -ne 0 ]]; then
  echo "lint.sh: FAILED (see findings above)." >&2
else
  echo "lint.sh: clean."
fi
exit $status
