#!/usr/bin/env bash
# Benchmark-regression harness for the tensor hot path.
#
# Runs bench_micro (google-benchmark) with JSON output and writes
# BENCH_micro.json at the repo root: the raw current run plus a
# per-benchmark comparison against the committed baseline
# (bench/baseline.json, captured on this box before the kernel rewrite).
# Committing both files gives every checkout a before/after record and
# lets CI flag kernel regressions without re-measuring the old code.
#
# Usage: scripts/bench.sh [--smoke] [--check] [--filter REGEX] [build-dir]
#   --smoke    one repetition with a tiny min-time: proves the binary runs
#              and the JSON pipeline works without burning CI minutes.
#              Numbers are NOT meaningful; output goes to
#              <build-dir>/BENCH_micro.smoke.json so the committed
#              BENCH_micro.json is never clobbered by throwaway data.
#   --check    exit non-zero if any baseline benchmark regressed by more
#              than 25% (ignored in --smoke mode).
#   --filter   forwarded to --benchmark_filter (default: run everything).
#   build-dir  CMake build tree to use (default: build).
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
CHECK=0
FILTER=""
BUILD_DIR=build
while [ "$#" -gt 0 ]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --check) CHECK=1 ;;
    --filter) FILTER="$2"; shift ;;
    -*) echo "bench.sh: unknown flag: $1" >&2; exit 2 ;;
    *) BUILD_DIR="$1" ;;
  esac
  shift
done

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S . >/dev/null
fi
cmake --build "${BUILD_DIR}" --target bench_micro -j"$(nproc)"

RAW="${BUILD_DIR}/bench_micro_raw.json"
OUT="BENCH_micro.json"
ARGS=(--benchmark_out="${RAW}" --benchmark_out_format=json)
if [ "${SMOKE}" = 1 ]; then
  OUT="${BUILD_DIR}/BENCH_micro.smoke.json"
  ARGS+=(--benchmark_repetitions=1 --benchmark_min_time=0.01)
fi
if [ -n "${FILTER}" ]; then
  ARGS+=(--benchmark_filter="${FILTER}")
fi
"${BUILD_DIR}/bench/bench_micro" "${ARGS[@]}"

SMOKE="${SMOKE}" CHECK="${CHECK}" RAW="${RAW}" OUT="${OUT}" python3 - <<'PY'
import json, os, sys

smoke = os.environ["SMOKE"] == "1"
check = os.environ["CHECK"] == "1" and not smoke
raw = json.load(open(os.environ["RAW"]))
out_path = os.environ["OUT"]

baseline = {}
baseline_date = None
try:
    base = json.load(open("bench/baseline.json"))
    baseline_date = base.get("context", {}).get("date")
    baseline = {b["name"]: b for b in base.get("benchmarks", [])}
except FileNotFoundError:
    pass

comparison = []
regressions = []
for b in raw.get("benchmarks", []):
    old = baseline.get(b["name"])
    if old is None:
        continue
    speedup = old["real_time"] / b["real_time"] if b["real_time"] else None
    comparison.append({
        "name": b["name"],
        "baseline_real_time_ns": old["real_time"],
        "current_real_time_ns": b["real_time"],
        "speedup_vs_baseline": round(speedup, 3) if speedup else None,
    })
    if check and speedup is not None and speedup < 0.8:
        regressions.append((b["name"], speedup))

doc = {
    "context": raw.get("context", {}),
    "smoke": smoke,
    "baseline": {"file": "bench/baseline.json", "date": baseline_date},
    "comparison": comparison,
    "benchmarks": raw.get("benchmarks", []),
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

if comparison and not smoke:
    width = max(len(c["name"]) for c in comparison)
    print(f"\n{'benchmark':<{width}}  {'baseline ns':>14}  {'current ns':>14}  speedup")
    for c in comparison:
        print(f"{c['name']:<{width}}  {c['baseline_real_time_ns']:>14.0f}"
              f"  {c['current_real_time_ns']:>14.0f}"
              f"  {c['speedup_vs_baseline']:>6.2f}x")
print(f"\nbench.sh: wrote {out_path}")

if regressions:
    for name, s in regressions:
        print(f"bench.sh: REGRESSION {name}: {s:.2f}x of baseline", file=sys.stderr)
    sys.exit(1)
PY
