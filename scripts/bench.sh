#!/usr/bin/env bash
# Benchmark-regression harness for the tensor hot path.
#
# Runs bench_micro (google-benchmark) with JSON output and writes
# BENCH_micro.json at the repo root: the raw current run plus a
# per-benchmark comparison against the committed baseline
# (bench/baseline.json). Committing both files gives every checkout a
# before/after record and lets CI flag kernel regressions without
# re-measuring the old code.
#
# The JSON records a host fingerprint (core count, CPU model). Time
# thresholds are only meaningful on the box that captured the baseline, so
# --check warns and skips them when the fingerprints differ. The allocation
# check below is host-independent and always enforced under --check.
#
# Allocation check: the pool-counter benchmarks (Conv2dTrainStep,
# PredictLevels) are re-run with MFA_POOL=off and the steady-state
# heap_allocs_per_iter counters are compared; with the pool on they must be
# at most 10% of the pool-off count (>= 90% fewer heap allocations).
#
# Usage: scripts/bench.sh [--smoke] [--check] [--filter REGEX] [build-dir]
#   --smoke    one repetition with a tiny min-time: proves the binary runs
#              and the JSON pipeline works without burning CI minutes.
#              Numbers are NOT meaningful; output goes to
#              <build-dir>/BENCH_micro.smoke.json so the committed
#              BENCH_micro.json is never clobbered by throwaway data.
#   --check    exit non-zero if any baseline benchmark regressed by more
#              than 25% (skipped off-host) or if the pool allocation
#              reduction fails (ignored in --smoke mode).
#   --filter   forwarded to --benchmark_filter (default: run everything).
#   build-dir  CMake build tree to use (default: build).
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
CHECK=0
FILTER=""
BUILD_DIR=build
while [ "$#" -gt 0 ]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --check) CHECK=1 ;;
    --filter) FILTER="$2"; shift ;;
    -*) echo "bench.sh: unknown flag: $1" >&2; exit 2 ;;
    *) BUILD_DIR="$1" ;;
  esac
  shift
done

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  cmake -B "${BUILD_DIR}" -S . >/dev/null
fi
cmake --build "${BUILD_DIR}" --target bench_micro -j"$(nproc)"

RAW="${BUILD_DIR}/bench_micro_raw.json"
RAW_OFF="${BUILD_DIR}/bench_micro_pool_off.json"
OUT="BENCH_micro.json"
ARGS=(--benchmark_out="${RAW}" --benchmark_out_format=json)
if [ "${SMOKE}" = 1 ]; then
  OUT="${BUILD_DIR}/BENCH_micro.smoke.json"
  ARGS+=(--benchmark_repetitions=1 --benchmark_min_time=0.01)
fi
if [ -n "${FILTER}" ]; then
  ARGS+=(--benchmark_filter="${FILTER}")
fi
"${BUILD_DIR}/bench/bench_micro" "${ARGS[@]}"

# Second pass, pool disabled, counter benchmarks only: captures the heap
# allocation count the pool is supposed to eliminate.
ALLOC_ARGS=(--benchmark_out="${RAW_OFF}" --benchmark_out_format=json
            --benchmark_filter='Conv2dTrainStep|PredictLevels')
if [ "${SMOKE}" = 1 ]; then
  ALLOC_ARGS+=(--benchmark_repetitions=1 --benchmark_min_time=0.01)
fi
MFA_POOL=off "${BUILD_DIR}/bench/bench_micro" "${ALLOC_ARGS[@]}"

SMOKE="${SMOKE}" CHECK="${CHECK}" RAW="${RAW}" RAW_OFF="${RAW_OFF}" \
OUT="${OUT}" python3 - <<'PY'
import json, os, sys

smoke = os.environ["SMOKE"] == "1"
check = os.environ["CHECK"] == "1" and not smoke
raw = json.load(open(os.environ["RAW"]))
raw_off = json.load(open(os.environ["RAW_OFF"]))
out_path = os.environ["OUT"]

def host_fingerprint():
    cpu = None
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    cpu = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {"cores": os.cpu_count(), "cpu": cpu}

host = host_fingerprint()

baseline = {}
baseline_date = None
baseline_host = None
try:
    base = json.load(open("bench/baseline.json"))
    baseline_date = base.get("context", {}).get("date")
    baseline_host = base.get("host")
    baseline = {b["name"]: b for b in base.get("benchmarks", [])}
except FileNotFoundError:
    pass

# Time thresholds only mean something on the baseline's own hardware.
same_host = baseline_host == host
if check and baseline and not same_host:
    print("bench.sh: WARNING host fingerprint differs from bench/baseline.json"
          f" (baseline {baseline_host}, current {host});"
          " skipping time-regression thresholds", file=sys.stderr)

comparison = []
regressions = []
for b in raw.get("benchmarks", []):
    old = baseline.get(b["name"])
    if old is None:
        continue
    speedup = old["real_time"] / b["real_time"] if b["real_time"] else None
    comparison.append({
        "name": b["name"],
        "baseline_real_time_ns": old["real_time"],
        "current_real_time_ns": b["real_time"],
        "speedup_vs_baseline": round(speedup, 3) if speedup else None,
    })
    if check and same_host and speedup is not None and speedup < 0.8:
        regressions.append((b["name"], speedup))

# Steady-state allocation check: pool-on heap allocations per iteration must
# be <= 10% of pool-off (hardware-independent, so enforced on any host).
off_allocs = {b["name"]: b.get("heap_allocs_per_iter")
              for b in raw_off.get("benchmarks", [])}
allocation_check = []
alloc_failures = []
for b in raw.get("benchmarks", []):
    if b["name"] not in off_allocs:
        continue
    on = b.get("heap_allocs_per_iter")
    off = off_allocs[b["name"]]
    if on is None or off is None:
        continue
    ratio = (on / off) if off else (0.0 if on == 0 else None)
    entry = {
        "name": b["name"],
        "heap_allocs_per_iter_pool_on": on,
        "heap_allocs_per_iter_pool_off": off,
        "pool_hits_per_iter": b.get("pool_hits_per_iter"),
        "on_off_ratio": round(ratio, 4) if ratio is not None else None,
    }
    allocation_check.append(entry)
    if ratio is None or ratio > 0.1:
        alloc_failures.append((b["name"], on, off))

doc = {
    "context": raw.get("context", {}),
    "host": host,
    "smoke": smoke,
    "baseline": {"file": "bench/baseline.json", "date": baseline_date,
                 "same_host": same_host if baseline else None},
    "comparison": comparison,
    "allocation_check": allocation_check,
    "benchmarks": raw.get("benchmarks", []),
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

if comparison and not smoke:
    width = max(len(c["name"]) for c in comparison)
    print(f"\n{'benchmark':<{width}}  {'baseline ns':>14}  {'current ns':>14}  speedup")
    for c in comparison:
        print(f"{c['name']:<{width}}  {c['baseline_real_time_ns']:>14.0f}"
              f"  {c['current_real_time_ns']:>14.0f}"
              f"  {c['speedup_vs_baseline']:>6.2f}x")
for a in allocation_check:
    print(f"bench.sh: {a['name']}: heap allocs/iter"
          f" {a['heap_allocs_per_iter_pool_on']:.2f} (pool on) vs"
          f" {a['heap_allocs_per_iter_pool_off']:.2f} (pool off)")
print(f"\nbench.sh: wrote {out_path}")

failed = False
if regressions:
    for name, s in regressions:
        print(f"bench.sh: REGRESSION {name}: {s:.2f}x of baseline", file=sys.stderr)
    failed = True
if check and alloc_failures:
    for name, on, off in alloc_failures:
        print(f"bench.sh: ALLOCATION CHECK FAILED {name}: {on:.2f} allocs/iter"
              f" with pool vs {off:.2f} without (need <= 10%)", file=sys.stderr)
    failed = True
if failed:
    sys.exit(1)
PY
